// Ablation: global vs gossip (partial) knowledge (§6).
//
// §4 assumes "immediate global knowledge of all buffers"; §6 proposes a
// BitTorrent-like rotating-neighbour exchange. This bench sweeps the
// gossip fanout and reports overhead, view staleness, and the classical
// control traffic in real encoded bytes — the §2 "classical overheads"
// the paper says both approaches must account for.
//
// Usage: ablation_knowledge [--csv] [--quick]
#include <iostream>
#include <string>

#include "common.hpp"
#include "core/gossip.hpp"

int main(int argc, char** argv) {
  using namespace poq;
  const bool quick = bench::has_flag(argc, argv, "--quick");

  const std::size_t nodes = 25;
  const std::size_t requests = quick ? 30 : 100;
  const std::uint32_t seeds = quick ? 1 : 3;

  std::cout << "Ablation: knowledge model (global vs rotating gossip)\n"
            << "(random-grid |N| = " << nodes
            << ", D = 1, 35 consumer pairs, " << requests
            << " requests, run to completion, mean of " << seeds << " seeds)\n\n";

  util::Table table({"knowledge", "overhead(paper)", "rounds", "view age",
                     "ctl msgs", "ctl KiB", "KiB/request"});

  // Global-knowledge reference.
  {
    util::RunningStats overhead;
    util::RunningStats rounds;
    for (std::uint32_t rep = 0; rep < seeds; ++rep) {
      const std::uint64_t seed = 5000 + rep;
      util::Rng topo_rng(seed);
      const graph::Graph graph = graph::make_random_connected_grid(nodes, topo_rng);
      util::Rng workload_rng = topo_rng.fork(42);
      const core::Workload workload =
          core::make_uniform_workload(nodes, 35, requests, workload_rng);
      core::BalancingConfig config;
      config.seed = seed;
      config.max_rounds = 400000;
      const core::BalancingResult result =
          core::run_balancing(graph, workload, config);
      if (!result.completed) continue;
      overhead.add(result.swap_overhead_paper());
      rounds.add(static_cast<double>(result.rounds));
    }
    table.add_row({"global",
                   overhead.count() ? util::format_double(overhead.mean(), 2)
                                    : "starved",
                   rounds.count() ? util::format_double(rounds.mean(), 0) : "-",
                   "0.0", "0", "0.0", "0.0"});
  }

  for (const std::uint32_t fanout : {1u, 2u, 4u, 8u}) {
    util::RunningStats overhead;
    util::RunningStats rounds;
    util::RunningStats age;
    util::RunningStats messages;
    util::RunningStats kibibytes;
    for (std::uint32_t rep = 0; rep < seeds; ++rep) {
      const std::uint64_t seed = 5000 + rep;
      util::Rng topo_rng(seed);
      const graph::Graph graph = graph::make_random_connected_grid(nodes, topo_rng);
      util::Rng workload_rng = topo_rng.fork(42);
      const core::Workload workload =
          core::make_uniform_workload(nodes, 35, requests, workload_rng);
      core::GossipConfig config;
      config.base.seed = seed;
      config.base.max_rounds = 400000;
      config.fanout = fanout;
      const core::GossipResult result = core::run_gossip(graph, workload, config);
      if (!result.base.completed) continue;
      overhead.add(result.base.swap_overhead_paper());
      rounds.add(static_cast<double>(result.base.rounds));
      age.add(result.mean_view_age);
      messages.add(static_cast<double>(result.control_messages));
      kibibytes.add(static_cast<double>(result.control_bytes) / 1024.0);
    }
    const double per_request =
        kibibytes.count() ? kibibytes.mean() / static_cast<double>(requests) : 0.0;
    table.add_row(
        {"gossip-fanout-" + std::to_string(fanout),
         overhead.count() ? util::format_double(overhead.mean(), 2) : "starved",
         rounds.count() ? util::format_double(rounds.mean(), 0) : "-",
         age.count() ? util::format_double(age.mean(), 1) : "-",
         messages.count() ? util::format_double(messages.mean(), 0) : "-",
         kibibytes.count() ? util::format_double(kibibytes.mean(), 1) : "-",
         util::format_double(per_request, 1)});
  }

  bench::emit(table, argc, argv);
  std::cout << "\nview age = mean staleness (rounds) of the beneficiary "
               "counts used at swap decisions (global knowledge = 0).\n";
  return 0;
}
