// Ablation: classical-latency sensitivity of the distributed protocol.
//
// §2: "Both planned-path and path-oblivious approaches will need to
// account for this classical transmission, as well as any additional
// classical coordination ... to learn about the status of the distributed
// state of Bell pairs." This bench runs the belief-based distributed
// implementation of §4 and sweeps the per-hop classical latency, showing
// how stale knowledge turns into mis-targeted swaps and consumption
// conflicts — and what the control plane costs in bytes.
//
// Usage: ablation_latency [--csv] [--quick]
#include <iostream>
#include <string>

#include "common.hpp"
#include "core/distributed.hpp"

int main(int argc, char** argv) {
  using namespace poq;
  const bool quick = bench::has_flag(argc, argv, "--quick");

  const std::size_t nodes = 16;
  const double duration = quick ? 100.0 : 400.0;
  const std::uint32_t seeds = quick ? 1 : 3;

  std::cout << "Distributed balancing vs classical latency (torus |N| = "
            << nodes << ", duration " << duration << ", mean of " << seeds
            << " seeds)\n\n";

  util::Table table({"latency/hop", "satisfied", "stale swaps %", "conflicts %",
                     "view age", "ctl KiB", "KiB/satisfied"});

  for (const double latency : {0.0, 0.05, 0.2, 0.5, 1.0, 2.0}) {
    util::RunningStats satisfied;
    util::RunningStats stale;
    util::RunningStats conflicts;
    util::RunningStats age;
    util::RunningStats kib;
    for (std::uint32_t rep = 0; rep < seeds; ++rep) {
      const std::uint64_t seed = 6000 + rep;
      util::Rng workload_rng(seed);
      const core::Workload workload =
          core::make_uniform_workload(nodes, 10, 1000000, workload_rng);
      const graph::Graph graph = graph::make_torus_grid(nodes);
      core::DistributedConfig config;
      config.latency_per_hop = latency;
      config.duration = duration;
      config.seed = seed;
      const core::DistributedResult result =
          core::run_distributed(graph, workload, config);
      satisfied.add(static_cast<double>(result.requests_satisfied));
      stale.add(100.0 * result.stale_swap_fraction());
      conflicts.add(100.0 * result.conflict_fraction());
      age.add(result.decision_view_age.mean());
      kib.add(static_cast<double>(result.control_bytes) / 1024.0);
    }
    const double per_request =
        satisfied.mean() > 0.0 ? kib.mean() / satisfied.mean() : 0.0;
    table.add_row({util::format_double(latency, 2),
                   util::format_double(satisfied.mean(), 0),
                   util::format_double(stale.mean(), 1),
                   util::format_double(conflicts.mean(), 1),
                   util::format_double(age.mean(), 2),
                   util::format_double(kib.mean(), 0),
                   util::format_double(per_request, 2)});
  }
  bench::emit(table, argc, argv);
  std::cout << "\nstale swaps = swaps whose true far endpoints differed from "
               "the intended beneficiary (belief staleness made physical);\n"
               "conflicts = consumption handshakes rejected because the "
               "partner qubit had already been spent.\n";
  return 0;
}
