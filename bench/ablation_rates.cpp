// Ablation: rate insensitivity (§5).
//
// "All nodes perform the swapping process at an identical rate. We found
// that varying this rate did not significantly alter the results" — this
// bench sweeps the per-node swap-attempt rate and the per-edge generation
// rate and reports the overhead, verifying (and bounding) that claim in
// our reproduction.
//
// Usage: ablation_rates [--csv] [--quick]
#include <iostream>
#include <string>

#include "common.hpp"
#include "core/balancing_sim.hpp"

int main(int argc, char** argv) {
  using namespace poq;
  const bool quick = bench::has_flag(argc, argv, "--quick");

  const std::size_t nodes = 25;
  const std::size_t requests = quick ? 40 : 120;
  const std::uint32_t seeds = quick ? 1 : 3;

  std::cout << "Ablation: sensitivity to process rates\n"
            << "(random-grid |N| = " << nodes
            << ", D = 1, 35 consumer pairs, " << requests
            << " requests, run to completion, mean of " << seeds << " seeds)\n\n";

  util::Table table({"swap attempts/node/round", "generation/edge/round",
                     "overhead(paper)", "rounds"});

  const std::vector<std::uint32_t> swap_rates = {1, 2, 4, 8};
  const std::vector<double> generation_rates = {0.25, 0.5, 1.0, 2.0};

  const auto run_cell = [&](std::uint32_t swap_rate, double generation_rate) {
    util::RunningStats overhead;
    util::RunningStats rounds;
    for (std::uint32_t rep = 0; rep < seeds; ++rep) {
      const std::uint64_t seed = 4000 + rep;
      util::Rng topo_rng(seed);
      const graph::Graph graph = graph::make_random_connected_grid(nodes, topo_rng);
      util::Rng workload_rng = topo_rng.fork(42);
      const core::Workload workload =
          core::make_uniform_workload(nodes, 35, requests, workload_rng);
      core::BalancingConfig config;
      config.seed = seed;
      config.swaps_per_node_per_round = swap_rate;
      config.generation_per_edge_per_round = generation_rate;
      config.max_rounds = 400000;
      const core::BalancingResult result =
          core::run_balancing(graph, workload, config);
      if (!result.completed) continue;
      overhead.add(result.swap_overhead_paper());
      rounds.add(static_cast<double>(result.rounds));
    }
    table.add_row({std::to_string(swap_rate), util::format_double(generation_rate, 2),
                   overhead.count() ? util::format_double(overhead.mean(), 2)
                                    : "starved",
                   rounds.count() ? util::format_double(rounds.mean(), 0) : "-"});
  };

  // Swap-rate sweep at the paper's generation rate.
  for (const std::uint32_t rate : swap_rates) run_cell(rate, 1.0);
  // Generation-rate sweep at the paper's swap rate.
  for (const double rate : generation_rates) {
    if (rate != 1.0) run_cell(1, rate);
  }

  bench::emit(table, argc, argv);
  std::cout << "\nExpected: the swap-rate rows barely move (the paper's "
               "claim); generation rate shifts completion time, not "
               "overhead, until it is too low to serve the demand.\n";
  return 0;
}
