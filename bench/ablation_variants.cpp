// Ablation: §6 protocol variants against the plain §4 balancer.
//
// Variants:
//   * distance-penalized swapping (detour_slack in {0, 2}) — "reducing the
//     likelihood that node i, very distant from both x and y ...
//     implements a swap between x and y";
//   * hybrid oblivious + minimal planning — assemble the head request by
//     nested swapping over the entanglement graph when it is blocked.
//
// Usage: ablation_variants [--csv] [--quick]
#include <iostream>
#include <string>

#include "common.hpp"
#include "core/hybrid.hpp"

int main(int argc, char** argv) {
  using namespace poq;
  const bool quick = bench::has_flag(argc, argv, "--quick");

  const std::size_t nodes = 25;
  const std::size_t requests = quick ? 40 : 120;
  const std::uint32_t seeds = quick ? 1 : 3;
  const std::vector<double> distillation_values =
      quick ? std::vector<double>{1.0, 2.0} : std::vector<double>{1.0, 2.0, 3.0};

  std::cout << "Ablation: Section 6 variants vs the plain max-min balancer\n"
            << "(random-grid |N| = " << nodes << ", 35 consumer pairs, "
            << requests << " requests, run to completion, mean of " << seeds
            << " seeds)\n\n";

  util::Table table({"D", "variant", "overhead(paper)", "mean wait", "rounds",
                     "assists"});

  struct VariantRow {
    std::string name;
    util::RunningStats overhead;
    util::RunningStats wait;
    util::RunningStats rounds;
    util::RunningStats assists;
  };

  for (const double d : distillation_values) {
    std::vector<VariantRow> rows;
    rows.push_back({"plain", {}, {}, {}, {}});
    rows.push_back({"detour-slack-0", {}, {}, {}, {}});
    rows.push_back({"detour-slack-2", {}, {}, {}, {}});
    rows.push_back({"hybrid", {}, {}, {}, {}});

    for (std::uint32_t rep = 0; rep < seeds; ++rep) {
      const std::uint64_t seed = 3000 + rep;
      util::Rng topo_rng(seed);
      const graph::Graph graph = graph::make_random_connected_grid(nodes, topo_rng);
      util::Rng workload_rng = topo_rng.fork(42);
      const core::Workload workload =
          core::make_uniform_workload(nodes, 35, requests, workload_rng);

      core::BalancingConfig base;
      base.distillation = d;
      base.seed = seed;
      base.max_rounds = 400000;

      const auto record = [&](VariantRow& row, const core::BalancingResult& result,
                              double assists) {
        if (!result.completed) return;
        row.overhead.add(result.swap_overhead_paper());
        row.wait.add(result.head_wait_rounds.mean());
        row.rounds.add(static_cast<double>(result.rounds));
        row.assists.add(assists);
      };

      record(rows[0], core::run_balancing(graph, workload, base), 0.0);

      core::BalancingConfig tight = base;
      tight.policy.detour_slack = 0;
      record(rows[1], core::run_balancing(graph, workload, tight), 0.0);

      core::BalancingConfig loose = base;
      loose.policy.detour_slack = 2;
      record(rows[2], core::run_balancing(graph, workload, loose), 0.0);

      core::HybridConfig hybrid;
      hybrid.base = base;
      const core::HybridResult assisted = core::run_hybrid(graph, workload, hybrid);
      record(rows[3], assisted.base,
             static_cast<double>(assisted.assists_succeeded));
    }

    for (VariantRow& row : rows) {
      table.add_row(
          {util::format_double(d, 0), row.name,
           row.overhead.count() ? util::format_double(row.overhead.mean(), 2)
                                : "starved",
           row.wait.count() ? util::format_double(row.wait.mean(), 1) : "-",
           row.rounds.count() ? util::format_double(row.rounds.mean(), 0) : "-",
           row.assists.count() ? util::format_double(row.assists.mean(), 0) : "-"});
    }
  }
  bench::emit(table, argc, argv);
  return 0;
}
