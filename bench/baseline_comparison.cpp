// Baseline comparison: executable planned-path protocols vs the
// path-oblivious balancer on identical workloads.
//
// §5 argues the swap-overhead scoring is conservative because "practical
// planned-path approaches need not always take the shortest swapping
// path" and the balancer's leftover swaps remain useful. This bench runs
// the connection-oriented ([20]-style) and connectionless ([32]-style)
// baselines and the balancer on the same finite request sequences and
// reports swap overhead (both denominators) and service latency.
//
// Usage: baseline_comparison [--csv] [--quick]
#include <iostream>
#include <string>

#include "common.hpp"
#include "core/balancing_sim.hpp"
#include "core/planned_path.hpp"

int main(int argc, char** argv) {
  using namespace poq;
  const bool quick = bench::has_flag(argc, argv, "--quick");

  const std::size_t nodes = 25;
  const std::size_t requests = quick ? 40 : 120;
  const std::uint32_t seeds = quick ? 1 : 3;
  const std::vector<double> distillation_values =
      quick ? std::vector<double>{1.0, 2.0} : std::vector<double>{1.0, 2.0, 3.0};

  std::cout << "Planned-path baselines vs path-oblivious balancing\n"
            << "(random-grid |N| = " << nodes << ", 35 consumer pairs, "
            << requests << " in-order requests, run to completion, mean of "
            << seeds << " seeds)\n\n";

  util::Table table({"D", "protocol", "overhead(paper)", "overhead(exact)",
                     "mean wait [rounds]", "rounds"});

  for (const double d : distillation_values) {
    util::RunningStats balancer_paper;
    util::RunningStats balancer_exact;
    util::RunningStats balancer_wait;
    util::RunningStats balancer_rounds;
    util::RunningStats oriented_paper;
    util::RunningStats oriented_exact;
    util::RunningStats oriented_wait;
    util::RunningStats oriented_rounds;
    util::RunningStats connless_paper;
    util::RunningStats connless_exact;
    util::RunningStats connless_wait;
    util::RunningStats connless_rounds;

    for (std::uint32_t rep = 0; rep < seeds; ++rep) {
      const std::uint64_t seed = 2000 + rep;
      util::Rng topo_rng(seed);
      const graph::Graph graph = graph::make_random_connected_grid(nodes, topo_rng);
      util::Rng workload_rng = topo_rng.fork(42);
      const core::Workload workload =
          core::make_uniform_workload(nodes, 35, requests, workload_rng);

      core::BalancingConfig balancing;
      balancing.distillation = d;
      balancing.seed = seed;
      balancing.max_rounds = 400000;
      const core::BalancingResult oblivious =
          core::run_balancing(graph, workload, balancing);
      if (oblivious.completed) {
        balancer_paper.add(oblivious.swap_overhead_paper());
        balancer_exact.add(oblivious.swap_overhead_exact());
        balancer_wait.add(oblivious.head_wait_rounds.mean());
        balancer_rounds.add(static_cast<double>(oblivious.rounds));
      }

      core::PlannedPathConfig oriented;
      oriented.distillation = d;
      oriented.seed = seed;
      oriented.window = 4;
      const core::PlannedPathResult reserved =
          core::run_planned_path(graph, workload, oriented);
      if (reserved.completed) {
        oriented_paper.add(reserved.swap_overhead_paper());
        oriented_exact.add(reserved.swap_overhead_exact());
        oriented_wait.add(reserved.service_rounds.mean());
        oriented_rounds.add(static_cast<double>(reserved.rounds));
      }

      core::PlannedPathConfig connless = oriented;
      connless.mode = core::PlannedPathMode::kConnectionless;
      const core::PlannedPathResult competing =
          core::run_planned_path(graph, workload, connless);
      if (competing.completed) {
        connless_paper.add(competing.swap_overhead_paper());
        connless_exact.add(competing.swap_overhead_exact());
        connless_wait.add(competing.service_rounds.mean());
        connless_rounds.add(static_cast<double>(competing.rounds));
      }
    }

    const auto emit_row = [&](const std::string& name, util::RunningStats& paper,
                              util::RunningStats& exact, util::RunningStats& wait,
                              util::RunningStats& rounds) {
      table.add_row({util::format_double(d, 0), name,
                     paper.count() ? util::format_double(paper.mean(), 2) : "n/a",
                     exact.count() ? util::format_double(exact.mean(), 2) : "n/a",
                     wait.count() ? util::format_double(wait.mean(), 1) : "n/a",
                     rounds.count() ? util::format_double(rounds.mean(), 0) : "n/a"});
    };
    emit_row("oblivious", balancer_paper, balancer_exact, balancer_wait,
             balancer_rounds);
    emit_row("conn-oriented", oriented_paper, oriented_exact, oriented_wait,
             oriented_rounds);
    emit_row("connectionless", connless_paper, connless_exact, connless_wait,
             connless_rounds);
  }
  bench::emit(table, argc, argv);
  std::cout << "\nPlanned-path protocols execute the exact nested schedule, so "
               "their overhead(exact) is 1.00 by construction;\n"
               "overhead(paper) > 1 for them quantifies how much the paper's "
               "published s() recurrence undercounts true nested cost.\n";
  return 0;
}
