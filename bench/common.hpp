// Shared experiment harness helpers for the figure benches, built on the
// unified scenario API (scenario::registry + SweepRunner).
//
// Protocol (matching §5's semantics): a fixed simulated-time budget, a
// request backlog that never drains, strict in-order satisfaction, and the
// swap-overhead ratio computed over the consumption events that were
// satisfied ("the sum over c covers all consumption events that were
// satisfied in simulation"). Cells average several independent
// topology/workload draws; cells whose runs satisfied nothing are
// reported as starved.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "graph/topology.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace poq::bench {

/// The paper's §5 setup: 35 consumer pairs, in-order request sequence.
struct FigureSetup {
  std::size_t consumer_pairs = 35;
  /// Backlog length; large enough that the sequence never drains within
  /// the round budget.
  std::size_t backlog = 1000000;
  /// Fixed simulated-round budget per run.
  std::uint32_t round_budget = 6000;
  std::uint32_t seeds = 3;  // repetitions averaged per cell
};

struct CellResult {
  util::RunningStats overhead_paper;
  util::RunningStats overhead_exact;
  util::RunningStats satisfied;
  std::uint32_t starved_runs = 0;  // runs that satisfied nothing costed
};

/// The balancing ScenarioSpec a figure cell runs (exposed so sweep
/// drivers can batch many cells through one SweepRunner call).
inline scenario::ScenarioSpec balancing_cell_spec(graph::TopologyFamily family,
                                                  std::size_t n, double distillation,
                                                  const FigureSetup& setup,
                                                  std::uint64_t base_seed = 1000) {
  scenario::ScenarioSpec spec;
  spec.protocol = "balancing";
  spec.topology = graph::family_name(family);
  spec.nodes = n;
  spec.consumer_pairs = setup.consumer_pairs;  // instantiate clamps to C(n,2)
  spec.requests = setup.backlog;
  spec.seed = base_seed;
  spec.knobs["distillation"] = distillation;
  spec.knobs["max-rounds"] = static_cast<std::int64_t>(setup.round_budget);
  return spec;
}

/// Map a sweep aggregate back onto the historical cell shape.
inline CellResult cell_from_aggregate(const scenario::CellAggregate& aggregate) {
  CellResult cell;
  if (aggregate.has("overhead_paper")) cell.overhead_paper = aggregate.at("overhead_paper");
  if (aggregate.has("overhead_exact")) cell.overhead_exact = aggregate.at("overhead_exact");
  if (aggregate.has("satisfied")) cell.satisfied = aggregate.at("satisfied");
  if (aggregate.has("starved")) {
    cell.starved_runs = static_cast<std::uint32_t>(aggregate.at("starved").sum() + 0.5);
  }
  return cell;
}

/// One figure cell: balancing on `family` over n nodes at distillation D,
/// averaged over `setup.seeds` independent topology/workload draws.
inline CellResult run_balancing_cell(graph::TopologyFamily family, std::size_t n,
                                     double distillation, const FigureSetup& setup,
                                     std::uint64_t base_seed = 1000) {
  scenario::SweepOptions options;
  options.seeds_per_cell = setup.seeds;
  options.threads = 1;  // single cell; table benches stay serial
  const scenario::SweepRunner runner(options);
  const std::vector<scenario::CellAggregate> aggregates =
      runner.run({balancing_cell_spec(family, n, distillation, setup, base_seed)});
  return cell_from_aggregate(aggregates.front());
}

/// Format a cell mean, flagging starved repetitions.
inline std::string cell_text(const CellResult& cell, bool exact = false) {
  if (cell.overhead_paper.count() == 0) return "starved";
  const auto& stats = exact ? cell.overhead_exact : cell.overhead_paper;
  std::string text = util::format_double(stats.mean(), 2);
  if (cell.starved_runs > 0) text += "*";
  return text;
}

/// Emit table and optional CSV based on argv.
inline void emit(const util::Table& table, int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") csv = true;
  }
  if (csv) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
  }
}

[[maybe_unused]] inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

}  // namespace poq::bench
