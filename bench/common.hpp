// Shared experiment harness helpers for the figure benches.
//
// Protocol (matching §5's semantics): a fixed simulated-time budget, a
// request backlog that never drains, strict in-order satisfaction, and the
// swap-overhead ratio computed over the consumption events that were
// satisfied ("the sum over c covers all consumption events that were
// satisfied in simulation"). Cells average several independent
// topology/workload draws; cells whose runs satisfied nothing are
// reported as starved.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/balancing_sim.hpp"
#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace poq::bench {

/// The paper's §5 setup: 35 consumer pairs, in-order request sequence.
struct FigureSetup {
  std::size_t consumer_pairs = 35;
  /// Backlog length; large enough that the sequence never drains within
  /// the round budget.
  std::size_t backlog = 1000000;
  /// Fixed simulated-round budget per run.
  std::uint32_t round_budget = 6000;
  std::uint32_t seeds = 3;  // repetitions averaged per cell
};

struct CellResult {
  util::RunningStats overhead_paper;
  util::RunningStats overhead_exact;
  util::RunningStats satisfied;
  std::uint32_t starved_runs = 0;  // runs that satisfied nothing costed
};

/// One figure cell: balancing on `family` over n nodes at distillation D,
/// averaged over `setup.seeds` independent topology/workload draws.
inline CellResult run_balancing_cell(graph::TopologyFamily family, std::size_t n,
                                     double distillation, const FigureSetup& setup,
                                     std::uint64_t base_seed = 1000) {
  CellResult cell;
  for (std::uint32_t rep = 0; rep < setup.seeds; ++rep) {
    const std::uint64_t seed = base_seed + rep;
    util::Rng topo_rng(seed);
    const graph::Graph graph = graph::make_topology(family, n, topo_rng);
    util::Rng workload_rng = topo_rng.fork(42);
    // The paper draws 35 consumer pairs from all C(n,2) pairs; n = 9
    // cannot support that many, so clamp.
    const std::size_t max_pairs = n * (n - 1) / 2;
    const core::Workload workload = core::make_uniform_workload(
        n, std::min(setup.consumer_pairs, max_pairs), setup.backlog, workload_rng);
    core::BalancingConfig config;
    config.distillation = distillation;
    config.seed = seed;
    config.max_rounds = setup.round_budget;
    const core::BalancingResult result =
        core::run_balancing(graph, workload, config);
    cell.satisfied.add(static_cast<double>(result.requests_satisfied));
    if (result.denominator_paper <= 0.0) {
      ++cell.starved_runs;
      continue;
    }
    cell.overhead_paper.add(result.swap_overhead_paper());
    cell.overhead_exact.add(result.swap_overhead_exact());
  }
  return cell;
}

/// Format a cell mean, flagging starved repetitions.
inline std::string cell_text(const CellResult& cell, bool exact = false) {
  if (cell.overhead_paper.count() == 0) return "starved";
  const auto& stats = exact ? cell.overhead_exact : cell.overhead_paper;
  std::string text = util::format_double(stats.mean(), 2);
  if (cell.starved_runs > 0) text += "*";
  return text;
}

/// Emit table and optional CSV based on argv.
inline void emit(const util::Table& table, int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") csv = true;
  }
  if (csv) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
  }
}

[[maybe_unused]] inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

}  // namespace poq::bench
