// §3.2 physics bridge: deriving the abstract D_{x,y} from link fidelity.
//
// The paper treats D as a free parameter ("an expected number D_{x,y} of
// distillations"). This bench grounds it: for raw link fidelities and
// target fidelities, it computes the expected raw-pair overhead of nested
// BBPSSW and of entanglement pumping, the end-to-end fidelity of swap
// chains without distillation, and the storage budget decoherence allows
// — the quantities that motivate Fig. 4's D sweep.
//
// Usage: distillation_cost [--csv]
#include <iostream>
#include <string>

#include "common.hpp"
#include "quantum/distillation.hpp"
#include "quantum/werner.hpp"

int main(int argc, char** argv) {
  using namespace poq;

  std::cout << "Deriving the paper's D from physics (nested BBPSSW vs "
               "pumping)\n\n";
  util::Table cost({"raw F", "target F", "D (nested)", "rounds", "D (pumping)",
                    "out F"});
  for (const double raw : {0.80, 0.85, 0.90, 0.95, 0.99}) {
    for (const double target : {0.90, 0.95, 0.99}) {
      const quantum::DistillationCost nested =
          quantum::nested_distillation_cost(raw, target);
      const quantum::DistillationCost pumped = quantum::pumping_cost(raw, target);
      cost.add_row({util::format_double(raw, 2), util::format_double(target, 2),
                    nested.reachable
                        ? util::format_double(nested.expected_raw_pairs, 2)
                        : "unreachable",
                    nested.reachable ? std::to_string(nested.rounds) : "-",
                    pumped.reachable
                        ? util::format_double(pumped.expected_raw_pairs, 2)
                        : "unreachable",
                    nested.reachable
                        ? util::format_double(nested.output_fidelity, 4)
                        : "-"});
    }
  }
  bench::emit(cost, argc, argv);

  std::cout << "\nEnd-to-end fidelity of an undistilled swap chain (why long "
               "paths need distillation at all):\n\n";
  util::Table chain({"segments", "F=0.99 links", "F=0.95 links", "F=0.90 links"});
  for (const unsigned segments : {1u, 2u, 4u, 8u, 16u, 32u}) {
    chain.add_row({std::to_string(segments),
                   util::format_double(quantum::chain_fidelity(0.99, segments), 4),
                   util::format_double(quantum::chain_fidelity(0.95, segments), 4),
                   util::format_double(quantum::chain_fidelity(0.90, segments), 4)});
  }
  bench::emit(chain, argc, argv);

  std::cout << "\nStorage budget under decoherence F(t) = 1/4 + (F0 - 1/4) "
               "e^{-t/T} (time until F drops to 0.85, units of T):\n\n";
  util::Table storage({"F0", "time to 0.85 [T]"});
  for (const double f0 : {0.99, 0.95, 0.90, 0.87}) {
    storage.add_row(
        {util::format_double(f0, 2),
         util::format_double(quantum::time_to_fidelity(f0, 0.85, 1.0), 3)});
  }
  bench::emit(storage, argc, argv);
  std::cout << "\nReading: D(nested) is the value the balancer's D knob "
               "should take for a given hardware fidelity / application "
               "target; the paper sweeps D = 1..5, i.e. raw links around "
               "0.9-0.95 against a 0.95-0.99 target.\n";
  return 0;
}
