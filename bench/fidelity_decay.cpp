// Ablation: realistic coherence (§3.2 / §6).
//
// Eq. 3 folds decoherence losses into a survival factor L and §6 admits
// the models are "oversimplified". This bench runs the fidelity-aware
// event simulation — explicit Werner decay, probabilistic BBPSSW,
// fidelity-composing swaps — and reports the *realized* L and D for a
// sweep of memory time constants, plus the §6 coherence-aware pairing
// policy ablation (freshest vs oldest pairing).
//
// Usage: fidelity_decay [--csv] [--quick]
#include <iostream>
#include <string>

#include "common.hpp"
#include "core/fidelity_sim.hpp"

int main(int argc, char** argv) {
  using namespace poq;
  const bool quick = bench::has_flag(argc, argv, "--quick");

  const std::size_t nodes = 16;
  util::Rng topo_rng(99);
  const graph::Graph graph = graph::make_random_connected_grid(nodes, topo_rng);
  util::Rng workload_rng = topo_rng.fork(1);
  const core::Workload workload =
      core::make_uniform_workload(nodes, 12, 100000, workload_rng);

  std::cout << "Fidelity-aware simulation: realized survival L and "
               "distillation overhead D vs memory quality\n"
            << "(random-grid |N| = " << nodes
            << ", raw F = 0.97, usable F = 0.70, app F = 0.80, duration "
            << (quick ? 200 : 600) << ")\n\n";

  util::Table table({"T (memory)", "policy", "satisfied", "L (survival)",
                     "D (realized)", "mean consumed F", "mean age at use"});

  const std::vector<double> time_constants =
      quick ? std::vector<double>{10.0, 50.0, 200.0}
            : std::vector<double>{10.0, 25.0, 50.0, 100.0, 200.0, 1000.0};

  for (const double time_constant : time_constants) {
    for (const core::PairingPolicy policy :
         {core::PairingPolicy::kFreshest, core::PairingPolicy::kOldest}) {
      core::FidelitySimConfig config;
      config.memory_time_constant = time_constant;
      config.policy = policy;
      config.duration = quick ? 200.0 : 600.0;
      config.seed = 31;
      const core::FidelitySimResult result =
          core::run_fidelity_sim(graph, workload, config);
      table.add_row(
          {util::format_double(time_constant, 0),
           policy == core::PairingPolicy::kFreshest ? "freshest" : "oldest",
           std::to_string(result.requests_satisfied),
           util::format_double(result.realized_survival(), 3),
           util::format_double(result.realized_distillation_overhead(), 2),
           result.consumed_fidelity.count()
               ? util::format_double(result.consumed_fidelity.mean(), 4)
               : "-",
           result.storage_age_at_use.count()
               ? util::format_double(result.storage_age_at_use.mean(), 2)
               : "-"});
    }
  }
  bench::emit(table, argc, argv);
  std::cout << "\nReading: longer memory raises L toward 1 and throughput "
               "with it; the paper's Eq. 3 survival factor is this L. The "
               "freshest-first pairing of §6 pays off under short "
               "memories.\n";
  return 0;
}
