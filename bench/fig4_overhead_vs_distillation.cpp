// Figure 4 reproduction: swap overhead vs distillation overhead D.
//
// Paper: "|N| = 25, varying D" — swap overhead of the max-min balancer
// over 35 consumer pairs with an in-order request sequence, three
// generation graphs. Expected shape: "the overhead grows exponentially as
// D is increased", driven by the balancer straying from the nested
// ordering and by starvation of long-distance requests (§6).
//
// Protocol: fixed round budget, backlog of requests, overhead over the
// satisfied consumption events (see bench/common.hpp).
//
// Usage: fig4_overhead_vs_distillation [--csv] [--quick]
#include <iostream>
#include <string>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace poq;
  const bool quick = bench::has_flag(argc, argv, "--quick");

  bench::FigureSetup setup;
  setup.round_budget = quick ? 2000 : 6000;
  setup.seeds = quick ? 1 : 3;

  const std::size_t nodes = 25;
  const std::vector<double> distillation_values = quick
      ? std::vector<double>{1.0, 2.0, 3.0}
      : std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<graph::TopologyFamily> families = {
      graph::TopologyFamily::kCycle, graph::TopologyFamily::kRandomGrid,
      graph::TopologyFamily::kFullGrid};

  std::cout << "Figure 4: swap overhead vs distillation overhead D\n"
            << "(|N| = " << nodes << ", " << setup.consumer_pairs
            << " consumer pairs, round budget " << setup.round_budget
            << ", mean of " << setup.seeds << " seeds)\n"
            << "overhead = swaps performed / sum_c s(l(c)) over satisfied "
               "consumptions\n\n";

  std::vector<std::string> header{"D"};
  for (const auto family : families) {
    header.push_back(graph::family_name(family));
    header.push_back("sat/run");
  }
  util::Table table(header);

  for (const double d : distillation_values) {
    std::vector<std::string> row{util::format_double(d, 0)};
    for (const auto family : families) {
      const bench::CellResult cell =
          bench::run_balancing_cell(family, nodes, d, setup);
      row.push_back(bench::cell_text(cell));
      row.push_back(util::format_double(cell.satisfied.mean(), 0));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, argc, argv);
  std::cout << "\nsat/run = consumption requests satisfied within the budget "
               "(starvation indicator).\n"
               "*: some repetitions satisfied nothing; 'starved' = all did.\n";
  return 0;
}
