// Figure 5 reproduction: swap overhead vs network size |N|.
//
// Paper: "D = 1, varying |N|" — same setup as Fig. 4 with distillation
// fixed at 1. Expected shape: "the overhead is expected to grow slowly as
// the number of nodes in the graph is increased."
//
// Usage: fig5_overhead_vs_nodes [--csv] [--quick]
#include <iostream>
#include <string>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace poq;
  const bool quick = bench::has_flag(argc, argv, "--quick");

  bench::FigureSetup setup;
  setup.round_budget = quick ? 1000 : 3000;
  setup.seeds = quick ? 1 : 3;

  const double distillation = 1.0;
  const std::vector<std::size_t> sizes = quick
      ? std::vector<std::size_t>{9, 16, 25}
      : std::vector<std::size_t>{9, 16, 25, 36, 49, 64, 81, 100};
  const std::vector<graph::TopologyFamily> families = {
      graph::TopologyFamily::kCycle, graph::TopologyFamily::kRandomGrid,
      graph::TopologyFamily::kFullGrid};

  std::cout << "Figure 5: swap overhead vs network size |N|\n"
            << "(D = 1, " << setup.consumer_pairs
            << " consumer pairs, round budget " << setup.round_budget
            << ", mean of " << setup.seeds << " seeds)\n\n";

  std::vector<std::string> header{"|N|"};
  for (const auto family : families) {
    header.push_back(graph::family_name(family));
    header.push_back("sat/run");
  }
  util::Table table(header);

  for (const std::size_t n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    for (const auto family : families) {
      const bench::CellResult cell =
          bench::run_balancing_cell(family, n, distillation, setup);
      row.push_back(bench::cell_text(cell));
      row.push_back(util::format_double(cell.satisfied.mean(), 0));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, argc, argv);
  std::cout << "\nsat/run = consumption requests satisfied within the budget.\n"
               "*: some repetitions satisfied nothing; 'starved' = all did.\n";
  return 0;
}
