// §3 LP reproduction: the path-oblivious steady-state program under every
// §3.3 objective, with the §3.2 extensions (distillation D, survival L,
// QEC thinning R).
//
// The paper presents the LP as the asymptotic-capability analysis tool; it
// reports no LP table of its own, so this harness prints the quantities
// the formulation defines: achieved objective, total generation /
// consumption / swap rates, solver effort, and a locality profile of the
// chosen swap rates (how far the swapping repeater sits from the pair it
// serves — path-obliviousness made visible).
//
// Usage: lp_steady_state [--csv] [--quick]
#include <chrono>
#include <iostream>
#include <string>

#include "common.hpp"
#include "core/lp_formulation.hpp"
#include "graph/shortest_path.hpp"

namespace {

using namespace poq;

core::SteadyStateSpec make_spec(const graph::Graph& graph, double capacity,
                                const std::vector<core::NodePair>& demands,
                                double kappa) {
  core::SteadyStateSpec spec;
  spec.node_count = graph.node_count();
  for (const graph::Edge& edge : graph.edges()) {
    spec.generation_capacity.push_back(
        core::RatedPair{core::NodePair(edge.a(), edge.b()), capacity});
  }
  for (const core::NodePair& pair : demands) {
    spec.demand.push_back(core::RatedPair{pair, kappa});
  }
  return spec;
}

std::string objective_name(core::SteadyStateObjective objective) {
  switch (objective) {
    case core::SteadyStateObjective::kMinTotalGeneration: return "min sum g";
    case core::SteadyStateObjective::kMinMaxGeneration: return "min max g";
    case core::SteadyStateObjective::kMaxTotalConsumption: return "max sum c";
    case core::SteadyStateObjective::kMaxMinConsumption: return "max min c";
    case core::SteadyStateObjective::kMaxConcurrentScale: return "max alpha";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  const std::size_t nodes = quick ? 9 : 16;

  util::Rng topo_rng(7);
  const graph::Graph graph = graph::make_random_connected_grid(nodes, topo_rng);
  util::Rng demand_rng = topo_rng.fork(13);
  const core::Workload workload = core::make_uniform_workload(
      nodes, quick ? 4 : 8, 1, demand_rng);

  std::cout << "Section 3 steady-state LP on a random-grid generation graph\n"
            << "(|N| = " << nodes << ", gamma = 1 per generation edge, "
            << workload.pairs.size() << " demand pairs, kappa = 0.25 each)\n\n";

  // --- all objectives, base parameters ---
  util::Table objectives_table({"objective", "status", "objective value",
                                "sum g", "sum c", "sum sigma", "iters [ms]"});
  for (const auto objective :
       {core::SteadyStateObjective::kMinTotalGeneration,
        core::SteadyStateObjective::kMinMaxGeneration,
        core::SteadyStateObjective::kMaxTotalConsumption,
        core::SteadyStateObjective::kMaxMinConsumption,
        core::SteadyStateObjective::kMaxConcurrentScale}) {
    const core::SteadyStateLp lp(make_spec(graph, 1.0, workload.pairs, 0.25));
    const auto start = std::chrono::steady_clock::now();
    const core::SteadyStateSolution solution = lp.solve(objective);
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    objectives_table.add_row(
        {objective_name(objective), lp::status_name(solution.status),
         util::format_double(solution.objective, 4),
         util::format_double(solution.total_generation, 3),
         util::format_double(solution.total_consumption, 3),
         util::format_double(solution.total_swap_rate, 3),
         util::format_double(elapsed, 1)});
  }
  bench::emit(objectives_table, argc, argv);

  // --- Section 3.2 extensions: D, L, R sweeps under min-total-generation ---
  std::cout << "\nSection 3.2 extensions (min sum g; demand fixed at kappa = "
               "0.05 so high-D cases stay feasible):\n\n";
  util::Table extension_table({"D", "L", "R(QEC)", "status", "sum g", "sum sigma"});
  const double kappa = 0.05;
  struct Case {
    double d, l, r;
  };
  for (const Case c : {Case{1, 1, 1}, Case{2, 1, 1}, Case{3, 1, 1},
                       Case{1, 0.8, 1}, Case{1, 0.5, 1}, Case{1, 1, 2},
                       Case{1, 1, 4}, Case{2, 0.8, 2}}) {
    core::SteadyStateSpec spec = make_spec(graph, 50.0, workload.pairs, kappa);
    spec.distillation = core::PairMatrix(c.d);
    spec.survival = core::PairMatrix(c.l);
    spec.qec_overhead = c.r;
    const core::SteadyStateLp lp(std::move(spec));
    const core::SteadyStateSolution solution =
        lp.solve(core::SteadyStateObjective::kMinTotalGeneration);
    extension_table.add_row({util::format_double(c.d, 0),
                             util::format_double(c.l, 2),
                             util::format_double(c.r, 0),
                             lp::status_name(solution.status),
                             util::format_double(solution.total_generation, 3),
                             util::format_double(solution.total_swap_rate, 3)});
  }
  bench::emit(extension_table, argc, argv);

  // --- swap locality profile: how path-oblivious is the optimum? ---
  std::cout << "\nSwap locality at the min-generation optimum (distance of "
               "the repeater i from the served pair (x,y)):\n\n";
  const core::SteadyStateLp lp(make_spec(graph, 1.0, workload.pairs, 0.25));
  const core::SteadyStateSolution solution =
      lp.solve(core::SteadyStateObjective::kMinTotalGeneration);
  const auto distances = graph::all_pairs_distances(graph);
  util::Table locality({"repeater detour (hops)", "swap rate share"});
  std::vector<double> by_detour(16, 0.0);
  double total = 0.0;
  for (const core::SwapRate& swap : solution.swap_rates) {
    const std::uint32_t via = distances[swap.pair.first][swap.repeater] +
                              distances[swap.repeater][swap.pair.second];
    const std::uint32_t direct = distances[swap.pair.first][swap.pair.second];
    const std::size_t detour = std::min<std::size_t>(via - direct, 15);
    by_detour[detour] += swap.rate;
    total += swap.rate;
  }
  for (std::size_t detour = 0; detour < by_detour.size(); ++detour) {
    if (by_detour[detour] <= 0.0) continue;
    locality.add_row({std::to_string(detour),
                      util::format_double(by_detour[detour] / total, 3)});
  }
  bench::emit(locality, argc, argv);
  std::cout << "\n(detour 0 = repeater on a shortest x-y path; the optimum "
               "may legitimately use off-path repeaters when edges "
               "congest.)\n";
  return 0;
}
