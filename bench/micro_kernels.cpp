// Microbenchmarks for poqnet's hot kernels (google-benchmark).
//
// These guard the costs that dominate the figure harnesses: the §4
// best-swap scan, ledger updates, shortest paths, the simplex solver and
// the statevector kernels.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "core/balancing_sim.hpp"
#include "core/distributed.hpp"
#include "core/ledger.hpp"
#include "core/lp_formulation.hpp"
#include "core/maxmin_balancer.hpp"
#include "core/workload.hpp"
#include "graph/shortest_path.hpp"
#include "graph/topology.hpp"
#include "quantum/circuits.hpp"
#include "quantum/gates.hpp"
#include "sim/network_state.hpp"
#include "util/rng.hpp"

namespace {

using namespace poq;

void BM_LedgerAddRemove(benchmark::State& state) {
  core::PairLedger ledger(64);
  util::Rng rng(1);
  for (auto _ : state) {
    const auto x = static_cast<core::NodeId>(rng.uniform_index(64));
    auto y = static_cast<core::NodeId>(rng.uniform_index(64));
    if (y == x) y = (y + 1) % 64;
    ledger.add(x, y);
    ledger.remove(x, y);
  }
}
BENCHMARK(BM_LedgerAddRemove);

/// Keyed stream derivation, scalar vs batched: the batch hoists the
/// (seed, a, b) sponge prefix and loops one mix per entity, so the
/// per-stream cost should drop well below the scalar 4-fold derivation.
void BM_KeyedDeriveScalar(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<util::Rng> streams(count, util::Rng(0));
  std::uint64_t round = 0;
  for (auto _ : state) {
    for (std::size_t e = 0; e < count; ++e) {
      streams[e] = util::Rng::keyed(42, 7, round, e);
    }
    benchmark::DoNotOptimize(streams.data());
    ++round;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_KeyedDeriveScalar)->Arg(1024)->Arg(16384);

void BM_KeyedDeriveBatch(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<util::Rng> streams(count, util::Rng(0));
  std::uint64_t round = 0;
  for (auto _ : state) {
    util::Rng::keyed_batch(42, 7, round, 0, streams);
    benchmark::DoNotOptimize(streams.data());
    ++round;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_KeyedDeriveBatch)->Arg(1024)->Arg(16384);

/// Per-entity Bernoulli decisions, branching scalar path (full stream
/// construction + uniform_double compare) vs the branch-free batched
/// integer-threshold loop. Both produce bit-identical decisions.
void BM_BernoulliScalar(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> flags(count, 0);
  std::uint64_t round = 0;
  for (auto _ : state) {
    for (std::size_t e = 0; e < count; ++e) {
      util::Rng rng = util::Rng::keyed(42, 7, round, e);
      flags[e] = rng.bernoulli(0.37) ? 1 : 0;
    }
    benchmark::DoNotOptimize(flags.data());
    ++round;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_BernoulliScalar)->Arg(1024)->Arg(16384);

void BM_BernoulliBatchBranchFree(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> flags(count, 0);
  std::uint64_t round = 0;
  for (auto _ : state) {
    util::Rng::bernoulli_batch(42, 7, round, 0, 0.37, flags);
    benchmark::DoNotOptimize(flags.data());
    ++round;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_BernoulliBatchBranchFree)->Arg(1024)->Arg(16384);

/// Batched canonical ledger merge vs edge-by-edge adds on the megascale
/// generation shape (every edge +1 per round over a fixed grid).
void ledger_generate_bench(benchmark::State& state, bool batched) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng topo_rng(3);
  const graph::Graph graph = graph::make_random_connected_grid(n, topo_rng);
  core::PairLedger ledger(n);
  ledger.enable_dirty_tracking();
  const std::span<const graph::Edge> edges(graph.edges());
  for (auto _ : state) {
    if (batched) {
      benchmark::DoNotOptimize(ledger.add_edges(edges, 1));
    } else {
      for (const graph::Edge& edge : edges) ledger.add(edge.a(), edge.b(), 1);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(edges.size()));
}

void BM_LedgerGenerateMergeScalar(benchmark::State& state) {
  ledger_generate_bench(state, /*batched=*/false);
}
BENCHMARK(BM_LedgerGenerateMergeScalar)->Arg(1024)->Arg(10000);

void BM_LedgerGenerateMergeBatched(benchmark::State& state) {
  ledger_generate_bench(state, /*batched=*/true);
}
BENCHMARK(BM_LedgerGenerateMergeBatched)->Arg(1024)->Arg(10000);

void BM_BestSwapScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::PairLedger ledger(n);
  util::Rng rng(7);
  // Dense-ish ledger: every node entangled with ~n/2 partners.
  for (core::NodeId x = 0; x < n; ++x) {
    for (core::NodeId y = x + 1; y < n; ++y) {
      if (rng.bernoulli(0.5)) ledger.add(x, y, 1 + static_cast<std::uint32_t>(rng.uniform_index(5)));
    }
  }
  const core::MaxMinBalancer balancer((core::DistillationMatrix(1.0)));
  core::NodeId node = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(balancer.best_swap(ledger, node));
    node = (node + 1) % static_cast<core::NodeId>(n);
  }
}
BENCHMARK(BM_BestSwapScan)->Arg(25)->Arg(49)->Arg(100);

void BM_LedgerPartnerChurn(benchmark::State& state) {
  // CSR partner-arena in-place insert/erase: every iteration flips one
  // pair between 0 and 1, forcing a sorted-row insert and erase.
  core::PairLedger ledger(64);
  util::Rng rng(2);
  for (core::NodeId x = 0; x < 64; ++x) {
    for (core::NodeId y = x + 1; y < 64; ++y) {
      if (rng.bernoulli(0.3)) ledger.add(x, y);
    }
  }
  util::Rng pick(3);
  for (auto _ : state) {
    const auto x = static_cast<core::NodeId>(pick.uniform_index(64));
    auto y = static_cast<core::NodeId>(pick.uniform_index(64));
    if (y == x) y = (y + 1) % 64;
    if (ledger.count(x, y) == 0) {
      ledger.add(x, y);
    } else {
      ledger.remove(x, y, ledger.count(x, y));
    }
  }
}
BENCHMARK(BM_LedgerPartnerChurn);

void BM_LedgerPartnersScan(benchmark::State& state) {
  core::PairLedger ledger(128);
  util::Rng rng(4);
  for (core::NodeId x = 0; x < 128; ++x) {
    for (core::NodeId y = x + 1; y < 128; ++y) {
      if (rng.bernoulli(0.25)) ledger.add(x, y);
    }
  }
  core::NodeId node = 0;
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const core::NodeId y : ledger.partners(node)) sum += y;
    benchmark::DoNotOptimize(sum);
    node = (node + 1) % 128;
  }
}
BENCHMARK(BM_LedgerPartnersScan);

/// Decide-kernel cost per round, dirty-set vs full rescan: a warmed-up
/// NetworkState where each iteration dirties only a few nodes (range(1))
/// out of n (range(0)) before re-deciding — the steady-state shape the
/// BENCH_hotpath suite measures end to end.
void decide_kernel_bench(benchmark::State& state, bool incremental) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dirty_per_round = static_cast<std::size_t>(state.range(1));
  util::Rng topo_rng(3);
  const graph::Graph graph = graph::make_random_connected_grid(n, topo_rng);
  sim::TickConcurrency tick;
  tick.mode = sim::TickMode::kSharded;
  tick.threads = 1;
  tick.incremental_decide = incremental;
  sim::NetworkState net(graph, 1, tick);
  net.ledger().set_reader_threshold(2);
  util::Rng fill(7);
  for (core::NodeId x = 0; x < n; ++x) {
    for (core::NodeId y = x + 1; y < n; ++y) {
      if (fill.bernoulli(0.3)) {
        net.ledger().add(x, y, 1 + static_cast<std::uint32_t>(fill.uniform_index(4)));
      }
    }
  }
  const core::MaxMinBalancer balancer((core::DistillationMatrix(1.0)));
  const auto decide = [&](core::NodeId x, core::MaxMinBalancer::Scratch& s) {
    return balancer.best_swap(net.ledger(), x, s);
  };
  net.decide_swaps(decide);  // warm the candidate cache
  util::Rng touch(9);
  for (auto _ : state) {
    for (std::size_t k = 0; k < dirty_per_round; ++k) {
      const auto x = static_cast<core::NodeId>(touch.uniform_index(n));
      auto y = static_cast<core::NodeId>(touch.uniform_index(n));
      if (y == x) y = static_cast<core::NodeId>((y + 1) % n);
      net.ledger().add(x, y, 2);
      net.ledger().remove(x, y, 2);
    }
    net.decide_swaps(decide);
    benchmark::DoNotOptimize(net.candidates().data());
  }
}

void BM_DecideKernelDirtySet(benchmark::State& state) {
  decide_kernel_bench(state, /*incremental=*/true);
}
BENCHMARK(BM_DecideKernelDirtySet)->Args({100, 4})->Args({225, 4});

void BM_DecideKernelFullRescan(benchmark::State& state) {
  decide_kernel_bench(state, /*incremental=*/false);
}
BENCHMARK(BM_DecideKernelFullRescan)->Args({100, 4})->Args({225, 4});

/// Per-run control-plane cost of the distributed protocol at growing n
/// (cycle topology, constant degree): sparse CountUpdate messages to
/// believed partners should keep the measured bytes-per-epoch roughly
/// linear in n — the counter lands in the bench's user counters, so the
/// n=64 -> n=256 pair makes a dense n^2 rebroadcast regression visible
/// as a superlinear jump, alongside the wall-time per epoch.
void BM_DistributedControlPlane(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph graph = graph::make_cycle(n);
  util::Rng workload_rng(5);
  const core::Workload workload =
      core::make_uniform_workload(n, 10, 100000, workload_rng);
  core::DistributedConfig config;
  config.seed = 9;
  config.duration = 25.0;
  const auto epochs = std::ceil(config.duration / config.dt);
  double bytes_per_epoch = 0.0;
  for (auto _ : state) {
    const core::DistributedResult result =
        core::run_distributed(graph, workload, config);
    bytes_per_epoch = static_cast<double>(result.control_bytes) / epochs;
    benchmark::DoNotOptimize(result.control_messages);
  }
  state.counters["bytes_per_epoch"] = bytes_per_epoch;
  state.counters["bytes_per_epoch_per_node"] =
      bytes_per_epoch / static_cast<double>(n);
}
BENCHMARK(BM_DistributedControlPlane)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_BalancingRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng topo_rng(3);
  const graph::Graph graph = graph::make_random_connected_grid(n, topo_rng);
  util::Rng workload_rng(5);
  const core::Workload workload = core::make_uniform_workload(
      n, std::min<std::size_t>(35, n * (n - 1) / 2), 1000000, workload_rng);
  core::BalancingConfig config;
  core::BalancingSimulation sim(graph, workload, config);
  for (auto _ : state) {
    sim.step_round();
  }
}
BENCHMARK(BM_BalancingRound)->Arg(25)->Arg(49);

void BM_AllPairsBfs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph graph = graph::make_torus_grid(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::all_pairs_distances(graph));
  }
}
BENCHMARK(BM_AllPairsBfs)->Arg(25)->Arg(100);

void BM_SteadyStateLpMinGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::SteadyStateSpec spec;
  spec.node_count = n;
  const graph::Graph graph = graph::make_cycle(n);
  for (const graph::Edge& edge : graph.edges()) {
    spec.generation_capacity.push_back(
        core::RatedPair{core::NodePair(edge.a(), edge.b()), 100.0});
  }
  spec.demand.push_back(core::RatedPair{core::NodePair(0, static_cast<core::NodeId>(n / 2)), 1.0});
  const core::SteadyStateLp lp(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp.solve(core::SteadyStateObjective::kMinTotalGeneration));
  }
}
BENCHMARK(BM_SteadyStateLpMinGeneration)->Arg(6)->Arg(10)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_StatevectorCnotLadder(benchmark::State& state) {
  const auto qubits = static_cast<unsigned>(state.range(0));
  quantum::Statevector sv(qubits);
  sv.apply(quantum::gates::hadamard(), 0);
  for (auto _ : state) {
    for (unsigned q = 0; q + 1 < qubits; ++q) sv.apply_cnot(q, q + 1);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
}
BENCHMARK(BM_StatevectorCnotLadder)->Arg(10)->Arg(16)->Arg(20);

void BM_SwapChainFourHops(benchmark::State& state) {
  util::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantum::swap_chain(4, {2, 1, 3}, rng));
  }
}
BENCHMARK(BM_SwapChainFourHops);

}  // namespace
