// Microbenchmarks for poqnet's hot kernels (google-benchmark).
//
// These guard the costs that dominate the figure harnesses: the §4
// best-swap scan, ledger updates, shortest paths, the simplex solver and
// the statevector kernels.
#include <benchmark/benchmark.h>

#include "core/balancing_sim.hpp"
#include "core/ledger.hpp"
#include "core/lp_formulation.hpp"
#include "core/maxmin_balancer.hpp"
#include "core/workload.hpp"
#include "graph/shortest_path.hpp"
#include "graph/topology.hpp"
#include "quantum/circuits.hpp"
#include "quantum/gates.hpp"
#include "util/rng.hpp"

namespace {

using namespace poq;

void BM_LedgerAddRemove(benchmark::State& state) {
  core::PairLedger ledger(64);
  util::Rng rng(1);
  for (auto _ : state) {
    const auto x = static_cast<core::NodeId>(rng.uniform_index(64));
    auto y = static_cast<core::NodeId>(rng.uniform_index(64));
    if (y == x) y = (y + 1) % 64;
    ledger.add(x, y);
    ledger.remove(x, y);
  }
}
BENCHMARK(BM_LedgerAddRemove);

void BM_BestSwapScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::PairLedger ledger(n);
  util::Rng rng(7);
  // Dense-ish ledger: every node entangled with ~n/2 partners.
  for (core::NodeId x = 0; x < n; ++x) {
    for (core::NodeId y = x + 1; y < n; ++y) {
      if (rng.bernoulli(0.5)) ledger.add(x, y, 1 + static_cast<std::uint32_t>(rng.uniform_index(5)));
    }
  }
  const core::MaxMinBalancer balancer((core::DistillationMatrix(1.0)));
  core::NodeId node = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(balancer.best_swap(ledger, node));
    node = (node + 1) % static_cast<core::NodeId>(n);
  }
}
BENCHMARK(BM_BestSwapScan)->Arg(25)->Arg(49)->Arg(100);

void BM_BalancingRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng topo_rng(3);
  const graph::Graph graph = graph::make_random_connected_grid(n, topo_rng);
  util::Rng workload_rng(5);
  const core::Workload workload = core::make_uniform_workload(
      n, std::min<std::size_t>(35, n * (n - 1) / 2), 1000000, workload_rng);
  core::BalancingConfig config;
  core::BalancingSimulation sim(graph, workload, config);
  for (auto _ : state) {
    sim.step_round();
  }
}
BENCHMARK(BM_BalancingRound)->Arg(25)->Arg(49);

void BM_AllPairsBfs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph graph = graph::make_torus_grid(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::all_pairs_distances(graph));
  }
}
BENCHMARK(BM_AllPairsBfs)->Arg(25)->Arg(100);

void BM_SteadyStateLpMinGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::SteadyStateSpec spec;
  spec.node_count = n;
  const graph::Graph graph = graph::make_cycle(n);
  for (const graph::Edge& edge : graph.edges()) {
    spec.generation_capacity.push_back(
        core::RatedPair{core::NodePair(edge.a(), edge.b()), 100.0});
  }
  spec.demand.push_back(core::RatedPair{core::NodePair(0, static_cast<core::NodeId>(n / 2)), 1.0});
  const core::SteadyStateLp lp(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp.solve(core::SteadyStateObjective::kMinTotalGeneration));
  }
}
BENCHMARK(BM_SteadyStateLpMinGeneration)->Arg(6)->Arg(10)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_StatevectorCnotLadder(benchmark::State& state) {
  const auto qubits = static_cast<unsigned>(state.range(0));
  quantum::Statevector sv(qubits);
  sv.apply(quantum::gates::hadamard(), 0);
  for (auto _ : state) {
    for (unsigned q = 0; q + 1 < qubits; ++q) sv.apply_cnot(q, q + 1);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
}
BENCHMARK(BM_StatevectorCnotLadder)->Arg(10)->Arg(16)->Arg(20);

void BM_SwapChainFourHops(benchmark::State& state) {
  util::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantum::swap_chain(4, {2, 1, 3}, rng));
  }
}
BENCHMARK(BM_SwapChainFourHops);

}  // namespace
