// Scaling down the control plane: balancing with BitTorrent-style
// rotating-neighbour gossip instead of global buffer knowledge (§6),
// with the classical overhead measured in real encoded bytes (§2).
//
//   ./build/examples/gossip_grid
#include <iostream>

#include "core/gossip.hpp"
#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main() {
  using namespace poq;

  util::Rng rng(77);
  const graph::Graph graph = graph::make_random_connected_grid(49, rng);
  util::Rng workload_rng = rng.fork(3);
  const core::Workload workload = core::make_uniform_workload(49, 35, 80, workload_rng);

  std::cout << "7x7 random-grid, 35 consumer pairs, 80 in-order requests\n\n";

  // Global-knowledge reference (the paper's §4 assumption).
  core::BalancingConfig base;
  base.seed = 5;
  base.max_rounds = 100000;
  const core::BalancingResult global = core::run_balancing(graph, workload, base);
  std::cout << "global knowledge:   rounds=" << global.rounds << "  overhead="
            << util::format_double(global.swap_overhead_paper(), 2)
            << "  control bytes=0 (assumed free)\n";

  // Gossip with increasing fanout: each node sends its count row to
  // `fanout` rotating peers plus one random optimistic peer per round;
  // messages travel with per-hop latency, so views are stale.
  for (const std::uint32_t fanout : {1u, 3u, 6u}) {
    core::GossipConfig config;
    config.base = base;
    config.fanout = fanout;
    const core::GossipResult result = core::run_gossip(graph, workload, config);
    std::cout << "gossip fanout " << fanout << ":    rounds="
              << result.base.rounds << "  overhead="
              << util::format_double(result.base.swap_overhead_paper(), 2)
              << "  view age="
              << util::format_double(result.mean_view_age, 1) << " rounds"
              << "  control="
              << util::format_double(
                     static_cast<double>(result.control_bytes) / 1024.0, 1)
              << " KiB ("
              << result.control_messages << " msgs)\n";
  }

  std::cout << "\nStale views cost extra swaps (mis-targeted balancing) but "
               "the protocol still completes;\nfanout trades classical "
               "bandwidth against balancing efficiency - the §6 conjecture "
               "made measurable.\n";
  return 0;
}
