// Starvation and the §6 hybrid fix.
//
// The paper observed that "consumption requests between nodes who are
// close on the generation graph would usurp the Bell pairs needed to form
// the longer paths" and proposed hybrid oblivious + minimal planning: when
// the head request is blocked, assemble it by nested swapping over a
// shortest path in the *entanglement* graph. This example builds a
// workload that interleaves one far pair with many near pairs and compares
// the plain balancer against the hybrid.
//
//   ./build/examples/hybrid_routing
#include <iostream>

#include "core/hybrid.hpp"
#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "util/strings.hpp"

int main() {
  using namespace poq;

  const graph::Graph graph = graph::make_cycle(16);

  // Far pair (0, 8) is diameter-distant; near pairs are adjacent. The
  // sequence hammers near pairs and sprinkles far requests between them.
  core::Workload workload;
  workload.pairs = {core::NodePair(0, 8), core::NodePair(3, 4),
                    core::NodePair(10, 11), core::NodePair(6, 7)};
  for (int block = 0; block < 12; ++block) {
    workload.sequence.push_back(0);  // the far request
    for (std::uint32_t near = 1; near <= 3; ++near) {
      workload.sequence.push_back(near);
      workload.sequence.push_back(near);
    }
  }
  std::cout << "cycle |N| = 16; " << workload.request_count()
            << " requests; far pair (0,8) at distance 8 interleaved with "
               "adjacent pairs\n\n";

  core::BalancingConfig base;
  base.seed = 11;
  base.distillation = 1.0;
  base.max_rounds = 100000;

  const core::BalancingResult plain = core::run_balancing(graph, workload, base);
  std::cout << "plain balancer:  rounds=" << plain.rounds
            << "  mean head wait=" << util::format_double(plain.head_wait_rounds.mean(), 1)
            << "  max head wait=" << util::format_double(plain.head_wait_rounds.max(), 0)
            << "  overhead=" << util::format_double(plain.swap_overhead_paper(), 2)
            << '\n';

  core::HybridConfig hybrid;
  hybrid.base = base;
  hybrid.max_assist_hops = 8;
  const core::HybridResult assisted = core::run_hybrid(graph, workload, hybrid);
  std::cout << "hybrid (assist): rounds=" << assisted.base.rounds << "  mean head wait="
            << util::format_double(assisted.base.head_wait_rounds.mean(), 1)
            << "  max head wait="
            << util::format_double(assisted.base.head_wait_rounds.max(), 0)
            << "  overhead="
            << util::format_double(assisted.base.swap_overhead_paper(), 2) << '\n';
  std::cout << "  assists attempted=" << assisted.assists_attempted
            << " succeeded=" << assisted.assists_succeeded
            << " extra swaps=" << util::format_double(assisted.assist_swaps, 0)
            << '\n';

  std::cout << "\nThe hybrid satisfies blocked far requests from pairs the "
               "balancer already seeded nearby,\ntrading a few extra swaps "
               "for much lower head-of-line waiting.\n";
  return 0;
}
