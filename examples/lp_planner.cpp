// Capacity planning with the §3 steady-state LP: given a physical
// architecture (generation capacities) and a teleportation demand matrix,
// compute the optimal swap-rate program and what it costs in generation —
// with and without QEC overhead and distillation.
//
//   ./build/examples/lp_planner
#include <algorithm>
#include <iostream>

#include "core/lp_formulation.hpp"
#include "graph/topology.hpp"
#include "util/strings.hpp"

int main() {
  using namespace poq;

  // A 4x4 torus backbone: every adjacent pair can generate 1 pair/sec.
  const graph::Graph backbone = graph::make_torus_grid(16);
  core::SteadyStateSpec spec;
  spec.node_count = 16;
  for (const graph::Edge& edge : backbone.edges()) {
    spec.generation_capacity.push_back(
        core::RatedPair{core::NodePair(edge.a(), edge.b()), 1.0});
  }
  // Three teleportation applications with different demand rates.
  spec.demand = {
      core::RatedPair{core::NodePair(0, 10), 0.30},   // diagonal, far
      core::RatedPair{core::NodePair(3, 12), 0.20},
      core::RatedPair{core::NodePair(1, 2), 0.40},    // adjacent
  };

  const core::SteadyStateLp planner(spec);
  std::cout << "Steady-state LP: " << planner.sigma_variable_count()
            << " swap-rate variables over 16 nodes\n\n";

  const core::SteadyStateSolution plan =
      planner.solve(core::SteadyStateObjective::kMinTotalGeneration);
  std::cout << "min-total-generation plan: " << lp::status_name(plan.status)
            << "\n  total generation rate: "
            << util::format_double(plan.total_generation, 3)
            << " pairs/sec\n  total swap rate:       "
            << util::format_double(plan.total_swap_rate, 3) << " swaps/sec\n";

  // The busiest swap rules of the program.
  auto rates = plan.swap_rates;
  std::sort(rates.begin(), rates.end(),
            [](const core::SwapRate& a, const core::SwapRate& b) {
              return a.rate > b.rate;
            });
  std::cout << "  top swap rules (sigma_i(x,y) = rate):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(8, rates.size()); ++i) {
    std::cout << "    sigma_" << rates[i].repeater << "(" << rates[i].pair.first
              << "," << rates[i].pair.second
              << ") = " << util::format_double(rates[i].rate, 3) << '\n';
  }

  // What if the demand doubles? Find the largest uniform scale alpha.
  const core::SteadyStateSolution scale =
      planner.solve(core::SteadyStateObjective::kMaxConcurrentScale);
  std::cout << "\nlargest concurrent demand scale alpha = "
            << util::format_double(scale.objective, 3)
            << "  (alpha >= 1 means the demand fits " << "with headroom)\n";

  // The §3.2 extensions: QEC thinning R and distillation D raise the bill.
  std::cout << "\ngeneration bill under Section 3.2 extensions "
               "(min-total-generation):\n";
  for (const auto& [label, d, r] :
       {std::tuple<const char*, double, double>{"bare (D=1, R=1)", 1.0, 1.0},
        std::tuple<const char*, double, double>{"distilled (D=2)", 2.0, 1.0},
        std::tuple<const char*, double, double>{"QEC (R=3)", 1.0, 3.0},
        std::tuple<const char*, double, double>{"distilled + QEC", 2.0, 3.0}}) {
    core::SteadyStateSpec variant = spec;
    variant.distillation = core::PairMatrix(d);
    variant.qec_overhead = r;
    // Headroom so the distilled variants stay feasible.
    for (core::RatedPair& edge : variant.generation_capacity) edge.rate = 20.0;
    const core::SteadyStateLp lp(std::move(variant));
    const core::SteadyStateSolution solution =
        lp.solve(core::SteadyStateObjective::kMinTotalGeneration);
    std::cout << "  " << util::pad_right(label, 18) << " -> "
              << (solution.status == lp::SolveStatus::kOptimal
                      ? util::format_double(solution.total_generation, 3) +
                            " pairs/sec"
                      : std::string(lp::status_name(solution.status)))
              << '\n';
  }
  return 0;
}
