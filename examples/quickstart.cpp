// Quickstart: build a quantum network, balance Bell pairs path-obliviously,
// serve teleportation demand, and read the paper's swap-overhead metric.
//
//   cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/balancing_sim.hpp"
#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main() {
  using namespace poq;

  // 1. A generation graph: which node pairs can create Bell pairs directly.
  //    Here: the paper's randomly-connected wraparound grid over 25 nodes.
  util::Rng rng(/*seed=*/2025);
  const graph::Graph generation_graph = graph::make_random_connected_grid(25, rng);
  std::cout << "generation graph: " << generation_graph.node_count() << " nodes, "
            << generation_graph.edge_count() << " generation edges\n";

  // 2. A consumption workload: 35 consumer pairs drawn from all 300
  //    possible pairs, and 200 in-order teleportation requests over them.
  util::Rng workload_rng = rng.fork(1);
  const core::Workload workload =
      core::make_uniform_workload(25, 35, 200, workload_rng);
  std::cout << "workload: " << workload.pairs.size() << " consumer pairs, "
            << workload.request_count() << " requests\n";

  // 3. Run the path-oblivious max-min balancer (paper §4/§5): per round,
  //    every generation edge emits a Bell pair, every node performs its
  //    best *preferable* swap, and the head-of-line request consumes as
  //    soon as its pair count covers the distillation cost.
  core::BalancingConfig config;
  config.distillation = 1.0;  // the paper's D knob
  config.seed = 7;
  const core::BalancingResult result =
      core::run_balancing(generation_graph, workload, config);

  // 4. Read the results.
  std::cout << "\ncompleted: " << (result.completed ? "yes" : "no") << '\n'
            << "rounds: " << result.rounds << '\n'
            << "Bell pairs generated: " << result.pairs_generated << '\n'
            << "swaps performed: " << result.swaps_performed << '\n'
            << "swap overhead (paper s):  "
            << util::format_double(result.swap_overhead_paper(), 2) << '\n'
            << "swap overhead (exact s):  "
            << util::format_double(result.swap_overhead_exact(), 2) << '\n'
            << "mean head-of-line wait:   "
            << util::format_double(result.head_wait_rounds.mean(), 1)
            << " rounds\n";
  std::cout << "\nAn overhead of k means the balancer performed k swaps for "
               "every swap an oracle running\nnested swapping over shortest "
               "paths would need for the same satisfied requests.\n";
  return 0;
}
