// Quickstart for the unified scenario API.
//
// Three steps:
//   1. describe an experiment as a ScenarioSpec (topology family, node
//      count, workload shape, seed, per-protocol knobs);
//   2. run any registered protocol on it via scenario::registry();
//   3. fan a grid of specs across threads with scenario::SweepRunner —
//      aggregation is deterministic, so thread count never changes the
//      numbers, only the wall clock.
//
// Build: part of the default CMake build; run ./scenario_sweep
#include <iostream>
#include <vector>

#include "scenario/protocol.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"
#include "util/strings.hpp"

int main() {
  using namespace poq;

  // --- 1. one spec, one protocol -----------------------------------------
  scenario::ScenarioSpec spec;
  spec.topology = "random-grid";
  spec.nodes = 25;
  spec.consumer_pairs = 35;
  spec.requests = 60;
  spec.seed = 7;
  spec.knobs["distillation"] = 2.0;  // validated against the knob schema

  const scenario::RunMetrics balancing =
      scenario::registry().run("balancing", spec);
  std::cout << "balancing on a 25-node random grid (D = 2):\n"
            << "  completed=" << balancing.label("completed")
            << " rounds=" << balancing.scalar("rounds")
            << " overhead_paper="
            << util::format_double(balancing.scalar("overhead_paper"), 3)
            << "\n\n";

  // --- 2. the same spec under a different protocol ------------------------
  scenario::ScenarioSpec planned = spec;
  planned.knobs.clear();
  planned.knobs["mode"] = std::string("connectionless");
  const scenario::RunMetrics baseline =
      scenario::registry().run("planned", planned);
  std::cout << "planned-path (connectionless) on the identical workload:\n"
            << "  completed=" << baseline.label("completed")
            << " overhead_paper="
            << util::format_double(baseline.scalar("overhead_paper"), 3)
            << "\n\n";

  // --- 3. a parallel grid sweep -------------------------------------------
  std::vector<scenario::ScenarioSpec> grid;
  for (const std::size_t n : {std::size_t{9}, std::size_t{16}, std::size_t{25}}) {
    scenario::ScenarioSpec cell = spec;
    cell.nodes = n;
    cell.requests = 40;
    grid.push_back(cell);
  }
  scenario::SweepOptions options;
  options.seeds_per_cell = 3;  // cell seeds: spec.seed + {0, 1, 2}
  options.threads = 0;         // 0 = hardware concurrency
  const scenario::SweepRunner runner(options);
  std::cout << "sweep |N| in {9, 16, 25}, 3 seeds per cell:\n";
  for (const scenario::CellAggregate& cell : runner.run(grid)) {
    std::cout << "  nodes=" << cell.spec.nodes;
    if (cell.has("overhead_paper")) {
      std::cout << " overhead_paper_mean="
                << util::format_double(cell.at("overhead_paper").mean(), 3)
                << " (over " << cell.at("overhead_paper").count() << " runs)";
    } else {
      std::cout << " starved";
    }
    std::cout << '\n';
  }
  // Machine-readable form of any cell: cell.to_json().dump(2).
  return 0;
}
