// The paper's Figs. 1-3 on exact quantum state: teleportation, a single
// entanglement swap, and a repeater chain whose swaps run in arbitrary
// order — including the paper's scenario where a middle repeater swaps
// before its neighbours have even established entanglement.
//
//   ./build/examples/teleport_chain
#include <iostream>
#include <vector>

#include "quantum/circuits.hpp"
#include "quantum/gates.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main() {
  using namespace poq;
  util::Rng rng(42);

  // --- Fig. 1: teleportation ---------------------------------------------
  std::cout << "Fig. 1 - teleportation of psi = cos(0.6)|0> + e^{i0.8} "
               "sin(0.6)|1>\n";
  quantum::Statevector reference(1);
  reference.apply(quantum::gates::rotation_y(1.2), 0);
  reference.apply(quantum::gates::rotation_z(0.8), 0);

  quantum::Statevector state(3);  // qubit 0 = psi, 1-2 = Bell channel
  state.apply(quantum::gates::rotation_y(1.2), 0);
  state.apply(quantum::gates::rotation_z(0.8), 0);
  state.prepare_bell_phi_plus(1, 2);
  const quantum::BellMeasurement bits = quantum::teleport(state, 0, 1, 2, rng);
  std::cout << "  classical bits sent: z=" << bits.z_bit << " x=" << bits.x_bit
            << " (the paper's '2 bits of classical information')\n";
  std::cout << "  P(destination=1) = "
            << util::format_double(state.probability_one(2), 6)
            << "  vs original " << util::format_double(reference.probability_one(0), 6)
            << '\n';

  // --- Fig. 2: one swap ----------------------------------------------------
  std::cout << "\nFig. 2 - entanglement swap A <- C -> B\n";
  const quantum::Statevector swapped = quantum::swap_chain(2, {1}, rng);
  std::cout << "  fidelity of (A,B) with Phi+ after the swap: "
            << util::format_double(
                   swapped.fidelity_with(quantum::phi_plus_reference()), 6)
            << '\n';

  // --- Fig. 3: swap order is arbitrary ------------------------------------
  std::cout << "\nFig. 3 - 5-hop repeater chain, R3 swaps FIRST (before R1/R2 "
               "hold any end-to-end state)\n";
  for (const std::vector<unsigned>& order :
       {std::vector<unsigned>{3, 1, 2, 4}, std::vector<unsigned>{1, 2, 3, 4},
        std::vector<unsigned>{4, 3, 2, 1}, std::vector<unsigned>{2, 4, 1, 3}}) {
    const quantum::Statevector result = quantum::swap_chain(5, order, rng);
    std::cout << "  order {";
    for (unsigned r : order) std::cout << ' ' << 'R' << r;
    std::cout << " }  end-to-end fidelity = "
              << util::format_double(
                     result.fidelity_with(quantum::phi_plus_reference()), 6)
              << '\n';
  }
  std::cout << "\nEvery order yields a perfect Phi+ between origin and "
               "destination - the property (\"any shuffle of the order ... "
               "will succeed\") that makes path-oblivious swapping possible.\n";
  return 0;
}
