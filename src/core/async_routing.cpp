#include "core/async_routing.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/ledger.hpp"
#include "graph/shortest_path.hpp"
#include "sim/parallel_engine.hpp"
#include "sim/vertex_program.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::core {

namespace {

/// One in-flight request. Tokens live in a flat arena; the vertex-program
/// messages and the per-node waiting queues carry indices into it.
struct Token {
  NodeId src = 0;
  NodeId dst = 0;
  double arrival_time = 0.0;
  std::uint64_t deadline_epoch = 0;
  std::uint32_t hops = 0;
};

class Driver {
 public:
  Driver(const graph::Graph& graph, const Workload& workload,
         const AsyncRoutingConfig& config)
      : graph_(graph),
        workload_(workload),
        config_(config),
        n_(static_cast<NodeId>(graph.node_count())),
        distances_(graph::all_pairs_distances(graph)),
        ledger_(n_),
        waiting_(n_),
        blocked_(n_, 0),
        pool_(config.tick.mode == sim::TickMode::kSharded
                  ? std::make_unique<sim::ParallelTickEngine>(config.tick.threads)
                  : nullptr),
        vp_(n_, pool_.get(),
            pool_ ? pool_->resolve_shards(config.tick.shards, n_) : 1) {
    timeout_epochs_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(config.timeout / config.dt)));
    if (config.faults.enabled()) {
      fault_plan_.emplace(graph, config.faults, config.seed);
    }
  }

  AsyncRoutingResult run() {
    const auto epochs =
        static_cast<std::uint64_t>(std::ceil(config_.duration / config_.dt));
    for (std::uint64_t epoch = 0; epoch < epochs; ++epoch) {
      util::this_thread_check_cancelled();
      epoch_ = epoch;
      now_ = static_cast<double>(epoch + 1) * config_.dt;
      fault_phase();
      apply_phase();
      generate();
      admit_arrivals();
      route();
      vp_.signals().reset_budget();
    }
    result_.control_messages = vp_.messages_sent();
    if (fault_plan_) {
      const sim::FaultStats& fault_stats = fault_plan_->stats();
      result_.availability = fault_stats.availability();
      result_.fault_rounds_degraded = fault_stats.degraded_rounds;
      result_.node_crashes = fault_stats.node_crashes;
      result_.link_downs = fault_stats.link_downs;
    }
    return std::move(result_);
  }

 private:
  using Program = sim::VertexProgram<std::uint32_t>;

  [[nodiscard]] std::uint64_t handoff_delay(NodeId a, NodeId b) const {
    const double latency =
        config_.latency_per_hop * static_cast<double>(distances_[a][b]);
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::floor(latency / config_.dt + 0.5)));
  }

  /// Fault phase (serial): advance the plan, destroy crashed nodes' pairs
  /// via the ledger's canonical remove path, track degraded episodes.
  void fault_phase() {
    if (!fault_plan_) return;
    const std::vector<NodeId>& crashed = fault_plan_->advance(epoch_);
    for (const NodeId x : crashed) {
      const std::span<const NodeId> row = ledger_.partners(x);
      purge_partners_.assign(row.begin(), row.end());
      for (const NodeId y : purge_partners_) {
        const std::uint32_t count = ledger_.count(x, y);
        if (count == 0) continue;
        ledger_.remove(x, y, count);
        result_.pairs_purged_by_faults += count;
        vp_.signals().signal(y);  // its routing options shrank
      }
      vp_.signals().signal(x);
    }
    const bool degraded = fault_plan_->degraded();
    if (degraded) {
      in_degraded_episode_ = true;
    } else if (in_degraded_episode_) {
      in_degraded_episode_ = false;
      awaiting_recovery_ = true;
      episode_end_ = now_;
    }
    round_degraded_ = degraded;
  }

  /// Deliver token handoffs: the apply kernel appends each arriving token
  /// to its junction's waiting queue and signals the junction.
  void apply_phase() {
    const std::vector<std::uint32_t>& active = vp_.deliver(epoch_);
    if (active.empty()) return;
    vp_.run_kernel([&](std::size_t shard, Program::Context& ctx) {
      const auto [begin, end] = sim::ParallelTickEngine::shard_range(
          active.size(), vp_.shard_count(), shard);
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId v = active[i];
        for (const std::uint32_t token : vp_.inbox(v)) {
          waiting_[v].push_back(token);
        }
        ctx.signal(v);
      }
    });
  }

  void generate() {
    const auto& edges = graph_.edges();
    // Batched per-edge draw: poisson_batch derives the per-(epoch, edge)
    // keyed streams with the sponge prefix hoisted once, bit-identical to
    // the scalar keyed + poisson loop.
    // Under faults the rate scales by the degradation factor and downed
    // edges drop their draw (per-edge keyed streams: nothing else shifts).
    const double rate = config_.generation_rate * config_.dt *
                        (fault_plan_ ? fault_plan_->rate_factor() : 1.0);
    const bool masked = fault_plan_ && fault_plan_->any_edge_down();
    born_scratch_.resize(edges.size());
    util::Rng::poisson_batch(config_.seed, sim::stream_tag::kGeneration,
                             epoch_, 0, rate, born_scratch_);
    for (std::size_t index = 0; index < edges.size(); ++index) {
      if (masked && !fault_plan_->edge_up(index)) continue;
      const std::uint64_t born = born_scratch_[index];
      if (born == 0) continue;
      const graph::Edge& edge = edges[index];
      ledger_.add(edge.a(), edge.b(), static_cast<std::uint32_t>(born));
      vp_.signals().signal(edge.a());
      vp_.signals().signal(edge.b());
      result_.pairs_generated += born;
    }
  }

  void admit_arrivals() {
    util::Rng rng =
        util::Rng::keyed(config_.seed, sim::stream_tag::kArrival, epoch_, 0);
    const std::uint64_t arrivals =
        rng.poisson(config_.arrival_rate * config_.dt);
    for (std::uint64_t k = 0; k < arrivals; ++k) {
      if (next_request_ >= workload_.request_count()) return;
      const NodePair& request = workload_.request(next_request_++);
      ++result_.requests_arrived;
      Token token;
      token.src = request.first;
      token.dst = request.second;
      token.arrival_time = now_;
      token.deadline_epoch = epoch_ + timeout_epochs_;
      const auto id = static_cast<std::uint32_t>(tokens_.size());
      tokens_.push_back(token);
      waiting_[request.first].push_back(id);
      vp_.signals().signal(request.first);
    }
  }

  /// Greedy step: the entangled partner of `u` strictly closer to `dst`,
  /// closest first, smallest id on ties. n_ when no segment helps.
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dst) const {
    const std::uint32_t from_here = distances_[u][dst];
    NodeId best = n_;
    std::uint32_t best_distance = from_here;
    for (const NodeId v : ledger_.partners(u)) {
      const std::uint32_t through = distances_[v][dst];
      if (through < best_distance) {
        best_distance = through;
        best = v;
      }
    }
    return best;
  }

  /// The continuous resolution walk, in canonical rotating order. Each
  /// waiting token tries one greedy step; junctions whose last attempt
  /// blocked are skipped until signaled (counts or waiting set changed) —
  /// a token's step is a pure function of exactly that state, so the skip
  /// never changes results.
  void route() {
    const auto first = static_cast<NodeId>(epoch_ % n_);
    for (NodeId offset = 0; offset < n_; ++offset) {
      const NodeId u = (first + offset) % n_;
      std::vector<std::uint32_t>& queue = waiting_[u];
      if (queue.empty()) {
        blocked_[u] = 0;
        continue;
      }
      expire(queue);
      if (fault_plan_ && !fault_plan_->node_up(u)) {
        // Crashed: tokens wait (expiring on timeout) until recovery.
        // blocked_ stays 0 so the node is re-examined once it is back up.
        blocked_[u] = 0;
        continue;
      }
      if (config_.tick.incremental_decide && blocked_[u] != 0 &&
          !vp_.signals().test(u)) {
        continue;  // blocked and nothing it reads changed: still blocked
      }
      std::size_t keep = 0;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        const std::uint32_t id = queue[i];
        if (!step(u, id)) queue[keep++] = id;
      }
      queue.resize(keep);
      blocked_[u] = queue.empty() ? 0 : 1;
      // Clear after the walk: everything marked so far (including this
      // node's own consumption) was read live by the steps above, so the
      // remaining tokens are blocked against the post-change counts.
      vp_.signals().clear(u);
    }
  }

  void expire(std::vector<std::uint32_t>& queue) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (epoch_ >= tokens_[queue[i]].deadline_epoch) {
        ++result_.requests_dropped;
      } else {
        queue[keep++] = queue[i];
      }
    }
    queue.resize(keep);
  }

  /// Try one greedy move of token `id` waiting at `u`. True if the token
  /// left `u` (moved or completed).
  bool step(NodeId u, std::uint32_t id) {
    Token& token = tokens_[id];
    if (u == token.dst) {  // degenerate src == dst request
      complete(token);
      return true;
    }
    const NodeId v = next_hop(u, token.dst);
    if (v == n_) return false;
    ledger_.remove(u, v);
    ++result_.pairs_consumed;
    vp_.signals().signal(u);
    vp_.signals().signal(v);
    if (u != token.src) ++result_.swaps;  // junction chained two segments
    ++token.hops;
    if (v == token.dst) {
      complete(token);
      return true;
    }
    vp_.send(v, handoff_delay(u, v), id);
    return true;
  }

  void complete(const Token& token) {
    ++result_.requests_satisfied;
    if (round_degraded_) ++result_.delivered_under_fault;
    if (awaiting_recovery_) {
      result_.time_to_recover.add(now_ - episode_end_);
      awaiting_recovery_ = false;
    }
    result_.request_latency.add(now_ - token.arrival_time);
    result_.request_hops.add(static_cast<double>(token.hops));
  }

  const graph::Graph& graph_;
  const Workload& workload_;
  const AsyncRoutingConfig& config_;
  NodeId n_;
  std::vector<std::vector<std::uint32_t>> distances_;

  PairLedger ledger_;
  std::vector<Token> tokens_;
  std::vector<std::vector<std::uint32_t>> waiting_;
  /// Nonzero while the node's last routing attempt left tokens waiting.
  std::vector<std::uint8_t> blocked_;
  std::size_t next_request_ = 0;
  std::uint64_t timeout_epochs_ = 1;

  std::unique_ptr<sim::ParallelTickEngine> pool_;
  Program vp_;

  std::uint64_t epoch_ = 0;
  double now_ = 0.0;
  /// Per-edge generation draws (resized once, reused every epoch).
  std::vector<std::uint64_t> born_scratch_;
  // Fault phase state (engaged only when config.faults.enabled()).
  std::optional<sim::FaultPlan> fault_plan_;
  std::vector<NodeId> purge_partners_;
  bool round_degraded_ = false;
  bool in_degraded_episode_ = false;
  bool awaiting_recovery_ = false;
  double episode_end_ = 0.0;
  AsyncRoutingResult result_;
};

}  // namespace

AsyncRoutingResult run_async_routing(const graph::Graph& generation_graph,
                                     const Workload& workload,
                                     const AsyncRoutingConfig& config) {
  require(generation_graph.node_count() >= 2,
          "run_async_routing: need at least 2 nodes");
  require(config.latency_per_hop >= 0.0, "run_async_routing: negative latency");
  require(config.dt > 0.0, "run_async_routing: dt must be positive");
  require(config.timeout > 0.0, "run_async_routing: timeout must be positive");
  require(config.arrival_rate >= 0.0, "run_async_routing: negative arrival rate");
  return Driver(generation_graph, workload, config).run();
}

}  // namespace poq::core
