// Asynchronous entanglement routing (after Yang et al., "Asynchronous
// Entanglement Routing for the Quantum Internet").
//
// The paper's protocols resolve consumption in global rounds or a single
// head-of-line handshake. Here requests arrive continuously via a Poisson
// stream and route independently: each request is a token that starts at
// its source and greedily follows currently-entangled segments toward its
// destination — at every node it consumes one Bell pair toward the
// entangled neighbor closest (in generation-graph hops) to the
// destination, strictly decreasing the remaining distance. Junction nodes
// chain consecutive segments by entanglement swapping; the token handoff
// to the next junction is a classical message that crosses the fabric
// with per-hop latency. A token that finds no useful segment waits where
// it is until local pair counts change, and is dropped on timeout.
//
// Runs on the sim::VertexProgram substrate: token handoffs are the typed
// messages, the apply kernel (sharded across the ParallelTickEngine pool)
// enqueues arrivals, and the signaled-set drives the retry discipline —
// a blocked node is re-examined only when its pair counts or waiting set
// changed (decide=incremental), which is result-identical to retrying
// every epoch (decide=full) because a token's routing step is a pure
// function of exactly that state.
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "core/workload.hpp"
#include "graph/graph.hpp"
#include "sim/fault_plan.hpp"
#include "sim/parallel_engine.hpp"
#include "util/stats.hpp"

namespace poq::core {

struct AsyncRoutingConfig {
  /// Poisson arrival rate of consumption requests (per time unit). Each
  /// arrival takes the next request of the workload sequence; the stream
  /// stops when the sequence is exhausted.
  double arrival_rate = 0.5;
  /// Poisson Bell-pair generation rate per generation edge.
  double generation_rate = 1.0;
  /// Classical latency per generation-graph hop (time units) for token
  /// handoff messages.
  double latency_per_hop = 0.1;
  /// A token still waiting this long after its arrival is dropped.
  double timeout = 50.0;
  /// Epoch length (time units) of the vertex-program loop.
  double dt = 0.25;
  double duration = 400.0;
  std::uint64_t seed = 1;
  /// Intra-run engine knobs (vertex-program substrate; results are
  /// bit-identical for every mode/threads/shards/decide setting).
  sim::TickConcurrency tick;

  /// Fault-injection plan (one fault round per epoch). A crash destroys
  /// the Bell pairs at the node's links and halts its routing steps while
  /// down; waiting tokens are classical and survive (they still expire on
  /// timeout). Disabled by default (bit-identical historical path).
  sim::FaultConfig faults;
};

struct AsyncRoutingResult {
  std::uint64_t requests_arrived = 0;
  std::uint64_t requests_satisfied = 0;
  std::uint64_t requests_dropped = 0;
  /// Entanglement swaps performed at junction nodes (every segment
  /// consumed at a node other than the token's source chains two
  /// segments).
  std::uint64_t swaps = 0;
  std::uint64_t pairs_generated = 0;
  std::uint64_t pairs_consumed = 0;
  /// Token handoff messages (one per junction-to-junction move).
  std::uint64_t control_messages = 0;

  /// Arrival-to-completion latency of satisfied requests.
  util::RunningStats request_latency;
  /// Segments consumed per satisfied request.
  util::RunningStats request_hops;

  /// Fault-injection resilience counters (zero / availability 1 when
  /// faults are disabled — the historical metric set is untouched).
  double availability = 1.0;
  std::uint64_t fault_rounds_degraded = 0;
  std::uint64_t delivered_under_fault = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t link_downs = 0;
  std::uint64_t pairs_purged_by_faults = 0;
  /// Simulated time from the end of each degraded episode to the next
  /// satisfied request.
  util::RunningStats time_to_recover;

  [[nodiscard]] double satisfied_fraction() const {
    return requests_arrived == 0
               ? 0.0
               : static_cast<double>(requests_satisfied) /
                     static_cast<double>(requests_arrived);
  }
  [[nodiscard]] double drop_fraction() const {
    return requests_arrived == 0
               ? 0.0
               : static_cast<double>(requests_dropped) /
                     static_cast<double>(requests_arrived);
  }
};

/// Run asynchronous routing of `workload`'s request sequence (arrival
/// order, continuously resolved) over `generation_graph`.
[[nodiscard]] AsyncRoutingResult run_async_routing(
    const graph::Graph& generation_graph, const Workload& workload,
    const AsyncRoutingConfig& config);

}  // namespace poq::core
