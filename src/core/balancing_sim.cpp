#include "core/balancing_sim.hpp"

#include <cmath>

#include "core/nested.hpp"
#include "graph/shortest_path.hpp"
#include "util/error.hpp"

namespace poq::core {

namespace {

/// Probabilistic rounding of a fractional amount.
std::uint32_t rounded_amount(double value, util::Rng& rng) {
  const double floor_part = std::floor(value);
  auto amount = static_cast<std::uint32_t>(floor_part);
  const double frac = value - floor_part;
  if (frac > 0.0 && rng.bernoulli(frac)) ++amount;
  return amount;
}

}  // namespace

BalancingSimulation::BalancingSimulation(const graph::Graph& generation_graph,
                                         const Workload& workload,
                                         const BalancingConfig& config)
    : generation_graph_(generation_graph),
      workload_(workload),
      config_(config),
      distances_(graph::all_pairs_distances(generation_graph)),
      ledger_(generation_graph.node_count()),
      balancer_(DistillationMatrix(config.distillation), config.policy, &distances_),
      generation_rng_(util::Rng(config.seed).fork(1)),
      swap_rng_(util::Rng(config.seed).fork(2)),
      consume_rng_(util::Rng(config.seed).fork(3)) {
  require(config.distillation >= 0.0, "BalancingConfig: D must be >= 0");
  require(config.generation_per_edge_per_round >= 0.0,
          "BalancingConfig: generation rate must be >= 0");
  require(generation_graph.node_count() >= 3,
          "BalancingSimulation: need at least 3 nodes to swap");
  for (const NodePair& pair : workload.pairs) {
    require(pair.second < generation_graph.node_count(),
            "BalancingSimulation: workload references unknown node");
    require(distances_[pair.first][pair.second] != graph::kUnreachable,
            "BalancingSimulation: consumer pair disconnected");
  }
  if (config_.tick.mode == sim::TickMode::kSharded) {
    pool_ = std::make_unique<sim::ParallelTickEngine>(config_.tick.threads);
    const std::size_t shards = pool_->resolve_shards(
        config_.tick.shards, generation_graph_.node_count());
    shard_scratch_.resize(shards);
    generation_amounts_.assign(generation_graph_.edge_count(), 0);
    candidates_.assign(generation_graph_.node_count(), std::nullopt);
  }
}

bool BalancingSimulation::finished() const {
  return head_ >= workload_.request_count() || result_.rounds >= config_.max_rounds;
}

void BalancingSimulation::begin_round() { ++result_.rounds; }

void BalancingSimulation::generation_phase() {
  if (config_.tick.mode == sim::TickMode::kSharded) {
    sharded_generation_phase();
    return;
  }
  for (const graph::Edge& edge : generation_graph_.edges()) {
    const std::uint32_t amount =
        rounded_amount(config_.generation_per_edge_per_round, generation_rng_);
    if (amount == 0) continue;
    ledger_.add(edge.a(), edge.b(), amount);
    result_.pairs_generated += amount;
  }
}

void BalancingSimulation::sharded_generation_phase() {
  // Each edge draws from its own counter-based stream keyed on
  // (seed, round, edge), so the draws are identical however the edge range
  // is partitioned. Workers fill disjoint slices of generation_amounts_;
  // the ledger merge below runs on the caller in canonical edge order
  // (adds commute, but a fixed order keeps the ledger internals
  // single-threaded).
  const std::size_t edge_count = generation_graph_.edge_count();
  const double rate = config_.generation_per_edge_per_round;
  const double whole = std::floor(rate);
  const double frac = rate - whole;
  const auto whole_amount = static_cast<std::uint32_t>(whole);
  const std::size_t shards = shard_scratch_.size();
  pool_->run_shards(shards, [&](std::size_t shard) {
    const auto [begin, end] =
        sim::ParallelTickEngine::shard_range(edge_count, shards, shard);
    for (std::size_t e = begin; e < end; ++e) {
      std::uint32_t amount = whole_amount;
      if (frac > 0.0) {
        util::Rng edge_rng = util::Rng::keyed(config_.seed,
                                              sim::stream_tag::kGeneration,
                                              result_.rounds, e);
        if (edge_rng.bernoulli(frac)) ++amount;
      }
      generation_amounts_[e] = amount;
    }
  });
  const auto& edges = generation_graph_.edges();
  for (std::size_t e = 0; e < edge_count; ++e) {
    const std::uint32_t amount = generation_amounts_[e];
    if (amount == 0) continue;
    ledger_.add(edges[e].a(), edges[e].b(), amount);
    result_.pairs_generated += amount;
  }
}

void BalancingSimulation::swap_phase() {
  if (config_.tick.mode == sim::TickMode::kSharded) {
    sharded_swap_phase();
    return;
  }
  const auto first =
      static_cast<NodeId>(result_.rounds % generation_graph_.node_count());
  const SweepStats stats = run_swap_sweep(
      balancer_, ledger_, first, config_.swaps_per_node_per_round, swap_rng_);
  result_.swaps_performed += stats.swaps;
  result_.pairs_spent_on_swaps += stats.pairs_consumed;
  result_.pairs_produced_by_swaps += stats.pairs_produced;
}

void BalancingSimulation::sharded_swap_phase() {
  // Synchronous-round semantics: every node picks its best preferable swap
  // against the frozen post-generation ledger (the expensive O(P^2) scan,
  // fanned across node shards), then the choices are committed on the
  // caller in canonical rotating order. A commit re-checks preferability
  // against the live ledger, so choices invalidated by an earlier commit
  // of the same sub-sweep are skipped — the merge order, not the worker
  // schedule, decides every conflict. Fractional-D rounding draws come
  // from per-(round, node, attempt) streams, consumed only on commit.
  const auto node_count = static_cast<NodeId>(ledger_.node_count());
  const auto first = static_cast<NodeId>(result_.rounds % node_count);
  const std::size_t shards = shard_scratch_.size();
  for (std::uint32_t attempt = 0; attempt < config_.swaps_per_node_per_round;
       ++attempt) {
    pool_->run_shards(shards, [&](std::size_t shard) {
      const auto [begin, end] =
          sim::ParallelTickEngine::shard_range(node_count, shards, shard);
      MaxMinBalancer::Scratch& scratch = shard_scratch_[shard];
      for (std::size_t x = begin; x < end; ++x) {
        candidates_[x] =
            balancer_.best_swap(ledger_, static_cast<NodeId>(x), scratch);
      }
    });
    bool any_committed = false;
    for (NodeId offset = 0; offset < node_count; ++offset) {
      const auto x = static_cast<NodeId>((first + offset) % node_count);
      const std::optional<SwapCandidate>& candidate = candidates_[x];
      if (!candidate) continue;
      if (!balancer_.is_preferable(ledger_, x, candidate->left, candidate->right)) {
        continue;  // an earlier commit consumed the pairs this choice needed
      }
      // Key packs (attempt, round) without collision: rounds is 32-bit.
      util::Rng commit_rng = util::Rng::keyed(
          config_.seed, sim::stream_tag::kSwap,
          (static_cast<std::uint64_t>(attempt) << 32) | result_.rounds, x);
      const auto execution = balancer_.execute_swap(ledger_, x, candidate->left,
                                                    candidate->right, commit_rng);
      ++result_.swaps_performed;
      result_.pairs_spent_on_swaps +=
          execution.consumed_left + execution.consumed_right;
      ++result_.pairs_produced_by_swaps;
      any_committed = true;
    }
    if (!any_committed) break;  // a fixed point for this round
  }
}

void BalancingSimulation::consumption_phase() {
  while (head_ < workload_.request_count()) {
    const NodePair& pair = workload_.request(head_);
    const double need = balancer_.distillation().at(pair.first, pair.second);
    // A consumption event uses (and destroys) D_{x,y} pairs (§3.2's r-).
    const auto need_ceiling = static_cast<std::uint32_t>(std::ceil(need));
    if (ledger_.count(pair.first, pair.second) < std::max(1u, need_ceiling)) break;
    const std::uint32_t amount =
        std::max(1u, rounded_amount(need, consume_rng_));
    ledger_.remove(pair.first, pair.second,
                   std::min(amount, ledger_.count(pair.first, pair.second)));
    result_.pairs_consumed += amount;
    ++result_.requests_satisfied;
    const std::uint32_t hops = distances_[pair.first][pair.second];
    result_.denominator_paper += nested_swap_cost_paper(hops, config_.distillation);
    result_.denominator_exact += nested_swap_cost_exact(hops, config_.distillation);
    result_.head_wait_rounds.add(static_cast<double>(result_.rounds - head_since_));
    ++head_;
    head_since_ = result_.rounds;
  }
  if (head_ >= workload_.request_count()) result_.completed = true;
}

void BalancingSimulation::step_round() {
  begin_round();
  generation_phase();
  swap_phase();
  consumption_phase();
}

BalancingResult BalancingSimulation::run() {
  // Requests may already be satisfiable at round 0 (e.g. adjacent pairs
  // after the first generation round); the loop handles that naturally.
  while (!finished()) step_round();
  return result_;
}

BalancingResult run_balancing(const graph::Graph& generation_graph,
                              const Workload& workload,
                              const BalancingConfig& config) {
  BalancingSimulation simulation(generation_graph, workload, config);
  return simulation.run();
}

}  // namespace poq::core
