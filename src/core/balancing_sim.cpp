#include "core/balancing_sim.hpp"

#include <cmath>

#include "core/nested.hpp"
#include "graph/shortest_path.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

namespace poq::core {

namespace {

/// Probabilistic rounding of a fractional amount.
std::uint32_t rounded_amount(double value, util::Rng& rng) {
  const double floor_part = std::floor(value);
  auto amount = static_cast<std::uint32_t>(floor_part);
  const double frac = value - floor_part;
  if (frac > 0.0 && rng.bernoulli(frac)) ++amount;
  return amount;
}

}  // namespace

BalancingSimulation::BalancingSimulation(const graph::Graph& generation_graph,
                                         const Workload& workload,
                                         const BalancingConfig& config)
    : generation_graph_(generation_graph),
      workload_(workload),
      config_(config),
      distances_(graph::all_pairs_distances(generation_graph)),
      state_(generation_graph, config.seed, config.tick),
      balancer_(DistillationMatrix(config.distillation), config.policy, &distances_),
      generation_rng_(util::Rng(config.seed).fork(1)),
      swap_rng_(util::Rng(config.seed).fork(2)),
      consume_rng_(util::Rng(config.seed).fork(3)) {
  require(config.distillation >= 0.0, "BalancingConfig: D must be >= 0");
  require(config.generation_per_edge_per_round >= 0.0,
          "BalancingConfig: generation rate must be >= 0");
  // Uniform distillation: a partner is eligible for the §4 scan only from
  // count ceil(D + 1) (the smallest integer C with C - D >= 1), which
  // lets the incremental decide skip marking for mutations no decision
  // can observe.
  state_.ledger().set_reader_threshold(
      static_cast<std::uint32_t>(std::ceil(config.distillation + 1.0)));
  require(generation_graph.node_count() >= 3,
          "BalancingSimulation: need at least 3 nodes to swap");
  for (const NodePair& pair : workload.pairs) {
    require(pair.second < generation_graph.node_count(),
            "BalancingSimulation: workload references unknown node");
    require(distances_[pair.first][pair.second] != graph::kUnreachable,
            "BalancingSimulation: consumer pair disconnected");
  }
}

bool BalancingSimulation::finished() const {
  return head_ >= workload_.request_count() || result_.rounds >= config_.max_rounds;
}

void BalancingSimulation::begin_round() { ++result_.rounds; }

void BalancingSimulation::generation_phase() {
  // Sequential mode consumes generation_rng_ edge by edge (the legacy
  // single-stream loop); sharded mode ignores it in favor of per-(round,
  // edge) keyed streams. Both live in the generation kernel.
  result_.pairs_generated += state_.generate(
      result_.rounds, config_.generation_per_edge_per_round, &generation_rng_);
}

void BalancingSimulation::swap_phase() {
  if (config_.tick.mode == sim::TickMode::kSharded) {
    sharded_swap_phase();
    return;
  }
  const auto first =
      static_cast<NodeId>(result_.rounds % generation_graph_.node_count());
  // The sequential sweep fuses decide and commit per node; attribute the
  // whole sweep to the decide timer (the best-swap scans dominate it).
  const sim::PhaseStopwatch stopwatch(state_.timers().decide_ns);
  const SweepStats stats = run_swap_sweep(
      balancer_, ledger(), first, config_.swaps_per_node_per_round, swap_rng_);
  result_.swaps_performed += stats.swaps;
  result_.pairs_spent_on_swaps += stats.pairs_consumed;
  result_.pairs_produced_by_swaps += stats.pairs_produced;
}

void BalancingSimulation::sharded_swap_phase() {
  // Synchronous-round semantics: every node picks its best preferable swap
  // against the frozen post-generation ledger (the expensive O(P^2) scan,
  // fanned across node shards), then the choices go through the two-level
  // commit — disjoint node triples commit in parallel, conflicting swaps
  // serialize in canonical rotating order with preferability re-checks —
  // so the merge order, not the worker schedule, decides every conflict.
  // Fractional-D rounding draws come from per-(round, node, attempt)
  // streams, consumed only on commit.
  const auto node_count = static_cast<NodeId>(state_.node_count());
  const auto first = static_cast<NodeId>(result_.rounds % node_count);
  for (std::uint32_t attempt = 0; attempt < config_.swaps_per_node_per_round;
       ++attempt) {
    state_.decide_swaps([&](NodeId x, MaxMinBalancer::Scratch& scratch) {
      return balancer_.best_swap(ledger(), x, scratch);
    });
    const sim::NetworkState::CommitStats stats = state_.commit_swaps(
        balancer_, first, result_.rounds, attempt,
        [&](NodeId x, const SwapCandidate& candidate) {
          // An earlier commit of the same component may have consumed the
          // pairs this choice needed.
          return balancer_.is_preferable(ledger(), x, candidate.left,
                                         candidate.right);
        });
    result_.swaps_performed += stats.swaps;
    result_.pairs_spent_on_swaps += stats.pairs_consumed;
    result_.pairs_produced_by_swaps += stats.pairs_produced;
    if (stats.swaps == 0) break;  // a fixed point for this round
  }
}

void BalancingSimulation::consumption_phase() {
  while (head_ < workload_.request_count()) {
    const NodePair& pair = workload_.request(head_);
    const double need = balancer_.distillation().at(pair.first, pair.second);
    // A consumption event uses (and destroys) D_{x,y} pairs (§3.2's r-).
    const auto need_ceiling = static_cast<std::uint32_t>(std::ceil(need));
    if (ledger().count(pair.first, pair.second) < std::max(1u, need_ceiling)) break;
    const std::uint32_t amount =
        std::max(1u, rounded_amount(need, consume_rng_));
    ledger().remove(pair.first, pair.second,
                    std::min(amount, ledger().count(pair.first, pair.second)));
    result_.pairs_consumed += amount;
    ++result_.requests_satisfied;
    const std::uint32_t hops = distances_[pair.first][pair.second];
    result_.denominator_paper += nested_swap_cost_paper(hops, config_.distillation);
    result_.denominator_exact += nested_swap_cost_exact(hops, config_.distillation);
    result_.head_wait_rounds.add(static_cast<double>(result_.rounds - head_since_));
    ++head_;
    head_since_ = result_.rounds;
  }
  if (head_ >= workload_.request_count()) result_.completed = true;
}

void BalancingSimulation::step_round() {
  begin_round();
  generation_phase();
  swap_phase();
  consumption_phase();
}

BalancingResult BalancingSimulation::run() {
  // Requests may already be satisfiable at round 0 (e.g. adjacent pairs
  // after the first generation round); the loop handles that naturally.
  while (!finished()) {
    util::this_thread_check_cancelled();
    step_round();
  }
  return result();
}

BalancingResult run_balancing(const graph::Graph& generation_graph,
                              const Workload& workload,
                              const BalancingConfig& config) {
  BalancingSimulation simulation(generation_graph, workload, config);
  return simulation.run();
}

}  // namespace poq::core
