#include "core/balancing_sim.hpp"

#include <algorithm>
#include <cmath>

#include "core/nested.hpp"
#include "graph/shortest_path.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

namespace poq::core {

namespace {

/// Probabilistic rounding of a fractional amount.
std::uint32_t rounded_amount(double value, util::Rng& rng) {
  const double floor_part = std::floor(value);
  auto amount = static_cast<std::uint32_t>(floor_part);
  const double frac = value - floor_part;
  if (frac > 0.0 && rng.bernoulli(frac)) ++amount;
  return amount;
}

}  // namespace

BalancingSimulation::BalancingSimulation(const graph::Graph& generation_graph,
                                         const Workload& workload,
                                         const BalancingConfig& config)
    : generation_graph_(generation_graph),
      workload_(workload),
      config_(config),
      oracle_(generation_graph),
      state_(generation_graph, config.seed, config.tick),
      // The dense distance matrix is materialized only when the decide
      // kernel actually reads it (detour slack); megascale runs stay
      // O(nodes + edges).
      balancer_(DistillationMatrix(config.distillation), config.policy,
                config.policy.detour_slack ? &oracle_.dense() : nullptr),
      generation_rng_(util::Rng(config.seed).fork(1)),
      swap_rng_(util::Rng(config.seed).fork(2)),
      consume_rng_(util::Rng(config.seed).fork(3)) {
  require(config.distillation >= 0.0, "BalancingConfig: D must be >= 0");
  require(config.generation_per_edge_per_round >= 0.0,
          "BalancingConfig: generation rate must be >= 0");
  require(config.arrival_rate >= 0.0,
          "BalancingConfig: arrival rate must be >= 0");
  // Uniform distillation: a partner is eligible for the §4 scan only from
  // count ceil(D + 1) (the smallest integer C with C - D >= 1), which
  // lets the incremental decide skip marking for mutations no decision
  // can observe.
  state_.ledger().set_reader_threshold(
      static_cast<std::uint32_t>(std::ceil(config.distillation + 1.0)));
  require(generation_graph.node_count() >= 3,
          "BalancingSimulation: need at least 3 nodes to swap");
  if (config_.faults.enabled()) {
    fault_plan_.emplace(generation_graph, config_.faults, config_.seed);
    state_.set_fault_plan(&*fault_plan_);
  }
  const std::size_t n = generation_graph.node_count();
  pool_size_ = config_.consumer_pool > 0
                   ? static_cast<std::size_t>(config_.consumer_pool)
                   : n * (n - 1) / 2;
  for (const NodePair& pair : workload.pairs) {
    require(pair.second < generation_graph.node_count(),
            "BalancingSimulation: workload references unknown node");
    require(oracle_.distance(pair.first, pair.second) != graph::kUnreachable,
            "BalancingSimulation: consumer pair disconnected");
  }
}

bool BalancingSimulation::finished() const {
  if (result_.rounds >= config_.max_rounds) return true;
  if (streaming()) {
    return config_.max_requests > 0 &&
           result_.requests_satisfied >= config_.max_requests;
  }
  return head_ >= workload_.request_count();
}

void BalancingSimulation::begin_round() { ++result_.rounds; }

void BalancingSimulation::fault_phase() {
  if (!fault_plan_) return;
  // Serial phase between the round boundary and the generation kernel:
  // the plan's keyed streams make the trajectory identical at every
  // threads/shards setting, and the crash purges run through the ledger's
  // canonical remove path (reader marks included).
  const std::vector<NodeId>& crashed = fault_plan_->advance(result_.rounds);
  for (const NodeId x : crashed) {
    result_.pairs_purged_by_faults += state_.purge_node(x);
  }
  round_degraded_ = fault_plan_->degraded();
  if (round_degraded_) {
    in_degraded_episode_ = true;
  } else if (in_degraded_episode_) {
    // Episode over: measure rounds until delivery resumes.
    in_degraded_episode_ = false;
    awaiting_recovery_ = true;
    episode_end_round_ = result_.rounds;
  }
}

void BalancingSimulation::generation_phase() {
  // Sequential mode consumes generation_rng_ edge by edge (the legacy
  // single-stream loop); sharded mode ignores it in favor of per-(round,
  // edge) keyed streams. Both live in the generation kernel.
  result_.pairs_generated += state_.generate(
      result_.rounds, config_.generation_per_edge_per_round, &generation_rng_);
}

void BalancingSimulation::swap_phase() {
  if (config_.tick.mode == sim::TickMode::kSharded) {
    sharded_swap_phase();
    return;
  }
  const auto first =
      static_cast<NodeId>(result_.rounds % generation_graph_.node_count());
  // The sequential sweep fuses decide and commit per node; attribute the
  // whole sweep to the decide timer (the best-swap scans dominate it).
  const sim::PhaseStopwatch stopwatch(state_.timers().decide_ns);
  const SweepStats stats = run_swap_sweep(
      balancer_, ledger(), first, config_.swaps_per_node_per_round, swap_rng_);
  result_.swaps_performed += stats.swaps;
  result_.pairs_spent_on_swaps += stats.pairs_consumed;
  result_.pairs_produced_by_swaps += stats.pairs_produced;
}

void BalancingSimulation::sharded_swap_phase() {
  // Synchronous-round semantics: every node picks its best preferable swap
  // against the frozen post-generation ledger (the expensive O(P^2) scan,
  // fanned across node shards), then the choices go through the two-level
  // commit — disjoint node triples commit in parallel, conflicting swaps
  // serialize in canonical rotating order with preferability re-checks —
  // so the merge order, not the worker schedule, decides every conflict.
  // Fractional-D rounding draws come from per-(round, node, attempt)
  // streams, consumed only on commit.
  const auto node_count = static_cast<NodeId>(state_.node_count());
  const auto first = static_cast<NodeId>(result_.rounds % node_count);
  for (std::uint32_t attempt = 0; attempt < config_.swaps_per_node_per_round;
       ++attempt) {
    state_.decide_swaps([&](NodeId x, MaxMinBalancer::Scratch& scratch) {
      return balancer_.best_swap(ledger(), x, scratch);
    });
    const sim::NetworkState::CommitStats stats = state_.commit_swaps(
        balancer_, first, result_.rounds, attempt,
        [&](NodeId x, const SwapCandidate& candidate) {
          // An earlier commit of the same component may have consumed the
          // pairs this choice needed.
          return balancer_.is_preferable(ledger(), x, candidate.left,
                                         candidate.right);
        });
    result_.swaps_performed += stats.swaps;
    result_.pairs_spent_on_swaps += stats.pairs_consumed;
    result_.pairs_produced_by_swaps += stats.pairs_produced;
    if (stats.swaps == 0) break;  // a fixed point for this round
  }
}

NodePair BalancingSimulation::pool_pair(std::uint64_t j) const {
  // Derived, not stored: pair j of the virtual pool comes from its own
  // keyed stream, so any pool size (millions of consumer pairs) costs
  // nothing and the draw is independent of when j is first referenced.
  util::Rng rng =
      util::Rng::keyed(config_.seed, sim::stream_tag::kConsumerPair, j, 0);
  const std::size_t n = generation_graph_.node_count();
  const auto u = static_cast<NodeId>(rng.uniform_index(n));
  auto v = static_cast<NodeId>(rng.uniform_index(n - 1));
  if (v >= u) ++v;  // skip u: uniform over the other n-1 nodes
  return NodePair(u, v);
}

std::optional<NodePair> BalancingSimulation::head_pair() const {
  if (streaming()) {
    if (pending_.empty()) return std::nullopt;
    return pool_pair(pending_.front());
  }
  if (head_ >= workload_.request_count()) return std::nullopt;
  return workload_.request(head_);
}

void BalancingSimulation::arrival_phase() {
  // Serial phase, one keyed stream per round: arrivals are deterministic
  // at every threads/shards setting and independent of the round's other
  // draws.
  util::Rng rng = util::Rng::keyed(config_.seed,
                                   sim::stream_tag::kConsumerArrival,
                                   result_.rounds, 0);
  const std::uint64_t arrivals = rng.poisson(config_.arrival_rate);
  for (std::uint64_t i = 0; i < arrivals; ++i) {
    pending_.push_back(rng.uniform_index(pool_size_));
  }
  result_.requests_arrived += arrivals;
}

void BalancingSimulation::consumption_phase() {
  if (streaming()) arrival_phase();
  while (true) {
    const std::optional<NodePair> head = head_pair();
    if (!head) break;
    const NodePair pair = *head;
    const double need = balancer_.distillation().at(pair.first, pair.second);
    // A consumption event uses (and destroys) D_{x,y} pairs (§3.2's r-).
    const auto need_ceiling = static_cast<std::uint32_t>(std::ceil(need));
    if (ledger().count(pair.first, pair.second) < std::max(1u, need_ceiling)) break;
    const std::uint32_t amount =
        std::max(1u, rounded_amount(need, consume_rng_));
    ledger().remove(pair.first, pair.second,
                    std::min(amount, ledger().count(pair.first, pair.second)));
    result_.pairs_consumed += amount;
    ++result_.requests_satisfied;
    if (round_degraded_) ++result_.delivered_under_fault;
    if (awaiting_recovery_) {
      result_.time_to_recover.add(
          static_cast<double>(result_.rounds - episode_end_round_));
      awaiting_recovery_ = false;
    }
    // Satisfied pairs are connected by construction (their count was
    // nonzero), so the hop lookup is total; the lazy oracle caches the
    // few rows the consumer set actually touches.
    const std::uint32_t hops = oracle_.distance(pair.first, pair.second);
    result_.denominator_paper += nested_swap_cost_paper(hops, config_.distillation);
    result_.denominator_exact += nested_swap_cost_exact(hops, config_.distillation);
    result_.head_wait_rounds.add(static_cast<double>(result_.rounds - head_since_));
    if (streaming()) {
      pending_.pop_front();
    } else {
      ++head_;
    }
    head_since_ = result_.rounds;
    if (streaming() && config_.max_requests > 0 &&
        result_.requests_satisfied >= config_.max_requests) {
      result_.completed = true;
      break;
    }
  }
  if (streaming()) {
    result_.backlog = pending_.size();
    result_.backlog_peak = std::max(result_.backlog_peak, result_.backlog);
  } else if (head_ >= workload_.request_count()) {
    result_.completed = true;
  }
}

std::uint64_t BalancingSimulation::memory_bytes() const {
  return state_.memory_bytes() + oracle_.memory_bytes() +
         pending_.size() * sizeof(std::uint64_t);
}

void BalancingSimulation::step_round() {
  begin_round();
  fault_phase();
  generation_phase();
  swap_phase();
  consumption_phase();
}

BalancingResult BalancingSimulation::run() {
  // Requests may already be satisfiable at round 0 (e.g. adjacent pairs
  // after the first generation round); the loop handles that naturally.
  while (!finished()) {
    util::this_thread_check_cancelled();
    step_round();
  }
  return result();
}

BalancingResult run_balancing(const graph::Graph& generation_graph,
                              const Workload& workload,
                              const BalancingConfig& config) {
  BalancingSimulation simulation(generation_graph, workload, config);
  return simulation.run();
}

}  // namespace poq::core
