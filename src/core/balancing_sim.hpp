// Round-based evaluation driver (§5).
//
// Reproduces the paper's simulation loop: per round every generation edge
// produces Bell pairs, every node gets an equal chance to perform its
// best preferable swap ("all nodes perform the swapping process at an
// identical rate"), and the head of the consumption-request sequence is
// satisfied as soon as its pair count covers the distillation cost
// (requests "must be satisfied in the order of the sequence").
//
// The reported *swap overhead* is (swaps performed) / sum_c s(l(c)) over
// satisfied consumption events, where s is the paper's nested-swapping
// cost and l(c) the generation-graph shortest-path hop count; the
// denominator under the exact nested cost is also tracked.
//
// Two tick engines drive the round (config.tick.mode): the legacy
// sequential loop, and the sharded deterministic engine
// (sim::ParallelTickEngine) whose generation/swap phases fan across a
// worker pool with counter-based per-entity RNG streams — results are
// bit-identical for every threads/shards setting (see
// docs/ARCHITECTURE.md for the determinism contract).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/ledger.hpp"
#include "core/maxmin_balancer.hpp"
#include "core/types.hpp"
#include "core/workload.hpp"
#include "graph/graph.hpp"
#include "graph/shortest_path.hpp"
#include "sim/network_state.hpp"
#include "sim/parallel_engine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace poq::core {

struct BalancingConfig {
  /// Uniform distillation overhead D (the paper's swept parameter).
  double distillation = 1.0;
  /// Swap attempts per node per round (rate knob; paper: results were
  /// insensitive to it).
  std::uint32_t swaps_per_node_per_round = 1;
  /// Bell pairs generated per generation edge per round (g = 1 in §5);
  /// fractional rates use Bernoulli rounding.
  double generation_per_edge_per_round = 1.0;
  /// Hard stop to guard against starvation (counts as incomplete).
  std::uint32_t max_rounds = 50000;
  std::uint64_t seed = 1;
  /// §6 policy knobs (distance-penalized swapping).
  BalancerPolicy policy;
  /// Intra-run engine selection (sequential legacy loop vs the sharded
  /// deterministic engine) plus its threads/shards knobs.
  sim::TickConcurrency tick;

  // --- streaming workload (0 = fixed-sequence mode) --------------------
  /// Expected new consumption requests per round: each round draws
  /// Poisson(arrival_rate) arrivals from a per-round keyed stream and
  /// assigns each one a uniformly random pair from the virtual consumer
  /// pool. Requests keep the paper's head-of-line semantics; the fixed
  /// workload sequence is ignored while streaming.
  double arrival_rate = 0.0;
  /// Virtual consumer-pair pool size for streaming mode (0 = C(n,2)).
  /// Pool pairs are derived lazily from keyed streams — the pool is never
  /// materialized, so millions of simulated consumer pairs cost nothing.
  std::uint64_t consumer_pool = 0;
  /// Streaming stop condition: finish after satisfying this many requests
  /// (0 = run until max_rounds).
  std::uint64_t max_requests = 0;

  /// Fault-injection plan (node churn, link up/down, rate degradation).
  /// Disabled by default; when disabled the simulation takes its
  /// historical fault-free path bit for bit.
  sim::FaultConfig faults;
};

struct BalancingResult {
  std::uint64_t swaps_performed = 0;
  std::uint64_t pairs_generated = 0;
  std::uint64_t pairs_consumed = 0;
  /// Donor pairs destroyed as swap inputs (distillation included).
  std::uint64_t pairs_spent_on_swaps = 0;
  /// Pairs produced by swaps (one per swap).
  std::uint64_t pairs_produced_by_swaps = 0;
  std::uint64_t requests_satisfied = 0;
  std::uint32_t rounds = 0;
  bool completed = false;
  /// Paper / exact nested-cost denominators over satisfied requests.
  double denominator_paper = 0.0;
  double denominator_exact = 0.0;
  /// Rounds each satisfied request spent at the head of the queue.
  util::RunningStats head_wait_rounds;
  /// Streaming-mode counters (zero in fixed-sequence mode): total
  /// requests that arrived, and the pending backlog when the run ended.
  std::uint64_t requests_arrived = 0;
  std::uint64_t backlog = 0;
  /// Fault-injection resilience counters (all zero with availability 1
  /// when faults are disabled — the historical metric set is untouched).
  double availability = 1.0;
  std::uint64_t fault_rounds_degraded = 0;
  /// Requests satisfied during degraded rounds (the paper's
  /// delivered-under-fault ordering reads this).
  std::uint64_t delivered_under_fault = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t link_downs = 0;
  std::uint64_t pairs_purged_by_faults = 0;
  /// Peak pending backlog over the run (streaming mode).
  std::uint64_t backlog_peak = 0;
  /// Rounds from the end of each degraded episode to the next satisfied
  /// request — how fast delivery recovers once the churn pauses.
  util::RunningStats time_to_recover;
  /// Cumulative wall-clock per phase kernel (observability only — outside
  /// the determinism contract). The sequential engine's fused swap sweep
  /// is attributed to the decide phase.
  sim::PhaseTimers phase;

  [[nodiscard]] double swap_overhead_paper() const {
    return denominator_paper > 0.0
               ? static_cast<double>(swaps_performed) / denominator_paper
               : 0.0;
  }
  [[nodiscard]] double swap_overhead_exact() const {
    return denominator_exact > 0.0
               ? static_cast<double>(swaps_performed) / denominator_exact
               : 0.0;
  }
};

/// The round-based simulator, decomposed into phases so protocol variants
/// (hybrid seeding, gossip knowledge) can reuse the mechanics.
class BalancingSimulation {
 public:
  BalancingSimulation(const graph::Graph& generation_graph, const Workload& workload,
                      const BalancingConfig& config);

  /// One full round: generate, swap sweep, consume.
  void step_round();

  /// Run rounds until every request is satisfied or max_rounds is hit.
  BalancingResult run();

  [[nodiscard]] bool finished() const;

  // --- individual phases, public for protocol variants ---
  /// Fault phase: advance the fault plan to this round, purge crashed
  /// nodes' pairs, track degraded-episode boundaries. Runs between
  /// begin_round and the generation kernel; a no-op when faults are
  /// disabled. Protocol variants driving their own loops (gossip, hybrid)
  /// call it at the same point.
  void fault_phase();
  void generation_phase();
  void swap_phase();
  void consumption_phase();
  void begin_round();  // bookkeeping: increments the round counter

  [[nodiscard]] PairLedger& ledger() { return state_.ledger(); }
  [[nodiscard]] const PairLedger& ledger() const { return state_.ledger(); }
  /// The shared phase-kernel substrate (ledger + pool + keyed streams);
  /// protocol variants (gossip) drive their own decide/commit kernels
  /// through it.
  [[nodiscard]] sim::NetworkState& state() { return state_; }
  /// Result snapshot; syncs the per-phase timers from the substrate and
  /// the resilience counters from the fault plan.
  [[nodiscard]] const BalancingResult& result() {
    result_.phase = state_.timers();
    if (fault_plan_) {
      const sim::FaultStats& fault_stats = fault_plan_->stats();
      result_.availability = fault_stats.availability();
      result_.fault_rounds_degraded = fault_stats.degraded_rounds;
      result_.node_crashes = fault_stats.node_crashes;
      result_.link_downs = fault_stats.link_downs;
    }
    return result_;
  }
  [[nodiscard]] const MaxMinBalancer& balancer() const { return balancer_; }
  [[nodiscard]] std::uint32_t round() const { return result_.rounds; }
  [[nodiscard]] std::size_t head_request() const { return head_; }
  [[nodiscard]] util::Rng& consume_rng() { return consume_rng_; }

  /// Whether requests stream in over time (config.arrival_rate > 0)
  /// instead of replaying the fixed workload sequence.
  [[nodiscard]] bool streaming() const { return config_.arrival_rate > 0.0; }
  /// The head-of-line consumer pair, if any request is waiting. Protocol
  /// variants (hybrid assists) use this instead of indexing the fixed
  /// workload so they work in both modes.
  [[nodiscard]] std::optional<NodePair> head_pair() const;
  /// Consumer pair j of the virtual streaming pool, derived lazily from
  /// its keyed stream (never materialized).
  [[nodiscard]] NodePair pool_pair(std::uint64_t j) const;

  /// Record `extra` additional swaps performed by a protocol variant
  /// (e.g. hybrid path assembly) so overhead accounting stays honest.
  void record_extra_swaps(std::uint64_t extra) { result_.swaps_performed += extra; }

  /// All-pairs generation-graph hop distances (shared with variants).
  /// Materializes the dense O(n^2) matrix on first call — gossip's
  /// per-message latency lookups need it; everything else reads hop
  /// counts through the lazy oracle and never pays n^2.
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& distances() {
    return oracle_.dense();
  }

  /// Deterministic logical bytes held by the simulation (substrate +
  /// distance cache + pending-request queue). See
  /// sim::NetworkState::memory_bytes.
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  // --- sharded-engine swap phase (sim::TickMode::kSharded): decide +
  // two-level commit kernels on the NetworkState ---
  void sharded_swap_phase();
  /// Streaming mode: enqueue this round's Poisson arrivals.
  void arrival_phase();

  const graph::Graph& generation_graph_;
  const Workload& workload_;
  BalancingConfig config_;
  graph::DistanceOracle oracle_;
  sim::NetworkState state_;
  MaxMinBalancer balancer_;
  util::Rng generation_rng_;
  util::Rng swap_rng_;
  util::Rng consume_rng_;
  BalancingResult result_;
  std::size_t head_ = 0;          // index of the head-of-line request
  std::uint32_t head_since_ = 0;  // round the current head became head
  // Streaming mode: pool indices of pending requests, arrival order.
  std::deque<std::uint64_t> pending_;
  std::size_t pool_size_ = 0;
  // Fault phase state (engaged only when config.faults.enabled()).
  std::optional<sim::FaultPlan> fault_plan_;
  bool round_degraded_ = false;
  bool in_degraded_episode_ = false;
  bool awaiting_recovery_ = false;
  std::uint32_t episode_end_round_ = 0;
};

/// Convenience wrapper: build the simulation and run to completion.
[[nodiscard]] BalancingResult run_balancing(const graph::Graph& generation_graph,
                                            const Workload& workload,
                                            const BalancingConfig& config);

}  // namespace poq::core
