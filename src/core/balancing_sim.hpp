// Round-based evaluation driver (§5).
//
// Reproduces the paper's simulation loop: per round every generation edge
// produces Bell pairs, every node gets an equal chance to perform its
// best preferable swap ("all nodes perform the swapping process at an
// identical rate"), and the head of the consumption-request sequence is
// satisfied as soon as its pair count covers the distillation cost
// (requests "must be satisfied in the order of the sequence").
//
// The reported *swap overhead* is (swaps performed) / sum_c s(l(c)) over
// satisfied consumption events, where s is the paper's nested-swapping
// cost and l(c) the generation-graph shortest-path hop count; the
// denominator under the exact nested cost is also tracked.
//
// Two tick engines drive the round (config.tick.mode): the legacy
// sequential loop, and the sharded deterministic engine
// (sim::ParallelTickEngine) whose generation/swap phases fan across a
// worker pool with counter-based per-entity RNG streams — results are
// bit-identical for every threads/shards setting (see
// docs/ARCHITECTURE.md for the determinism contract).
#pragma once

#include <cstdint>
#include <vector>

#include "core/ledger.hpp"
#include "core/maxmin_balancer.hpp"
#include "core/types.hpp"
#include "core/workload.hpp"
#include "graph/graph.hpp"
#include "sim/network_state.hpp"
#include "sim/parallel_engine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace poq::core {

struct BalancingConfig {
  /// Uniform distillation overhead D (the paper's swept parameter).
  double distillation = 1.0;
  /// Swap attempts per node per round (rate knob; paper: results were
  /// insensitive to it).
  std::uint32_t swaps_per_node_per_round = 1;
  /// Bell pairs generated per generation edge per round (g = 1 in §5);
  /// fractional rates use Bernoulli rounding.
  double generation_per_edge_per_round = 1.0;
  /// Hard stop to guard against starvation (counts as incomplete).
  std::uint32_t max_rounds = 50000;
  std::uint64_t seed = 1;
  /// §6 policy knobs (distance-penalized swapping).
  BalancerPolicy policy;
  /// Intra-run engine selection (sequential legacy loop vs the sharded
  /// deterministic engine) plus its threads/shards knobs.
  sim::TickConcurrency tick;
};

struct BalancingResult {
  std::uint64_t swaps_performed = 0;
  std::uint64_t pairs_generated = 0;
  std::uint64_t pairs_consumed = 0;
  /// Donor pairs destroyed as swap inputs (distillation included).
  std::uint64_t pairs_spent_on_swaps = 0;
  /// Pairs produced by swaps (one per swap).
  std::uint64_t pairs_produced_by_swaps = 0;
  std::uint64_t requests_satisfied = 0;
  std::uint32_t rounds = 0;
  bool completed = false;
  /// Paper / exact nested-cost denominators over satisfied requests.
  double denominator_paper = 0.0;
  double denominator_exact = 0.0;
  /// Rounds each satisfied request spent at the head of the queue.
  util::RunningStats head_wait_rounds;
  /// Cumulative wall-clock per phase kernel (observability only — outside
  /// the determinism contract). The sequential engine's fused swap sweep
  /// is attributed to the decide phase.
  sim::PhaseTimers phase;

  [[nodiscard]] double swap_overhead_paper() const {
    return denominator_paper > 0.0
               ? static_cast<double>(swaps_performed) / denominator_paper
               : 0.0;
  }
  [[nodiscard]] double swap_overhead_exact() const {
    return denominator_exact > 0.0
               ? static_cast<double>(swaps_performed) / denominator_exact
               : 0.0;
  }
};

/// The round-based simulator, decomposed into phases so protocol variants
/// (hybrid seeding, gossip knowledge) can reuse the mechanics.
class BalancingSimulation {
 public:
  BalancingSimulation(const graph::Graph& generation_graph, const Workload& workload,
                      const BalancingConfig& config);

  /// One full round: generate, swap sweep, consume.
  void step_round();

  /// Run rounds until every request is satisfied or max_rounds is hit.
  BalancingResult run();

  [[nodiscard]] bool finished() const;

  // --- individual phases, public for protocol variants ---
  void generation_phase();
  void swap_phase();
  void consumption_phase();
  void begin_round();  // bookkeeping: increments the round counter

  [[nodiscard]] PairLedger& ledger() { return state_.ledger(); }
  [[nodiscard]] const PairLedger& ledger() const { return state_.ledger(); }
  /// The shared phase-kernel substrate (ledger + pool + keyed streams);
  /// protocol variants (gossip) drive their own decide/commit kernels
  /// through it.
  [[nodiscard]] sim::NetworkState& state() { return state_; }
  /// Result snapshot; syncs the per-phase timers from the substrate.
  [[nodiscard]] const BalancingResult& result() {
    result_.phase = state_.timers();
    return result_;
  }
  [[nodiscard]] const MaxMinBalancer& balancer() const { return balancer_; }
  [[nodiscard]] std::uint32_t round() const { return result_.rounds; }
  [[nodiscard]] std::size_t head_request() const { return head_; }
  [[nodiscard]] util::Rng& consume_rng() { return consume_rng_; }

  /// Record `extra` additional swaps performed by a protocol variant
  /// (e.g. hybrid path assembly) so overhead accounting stays honest.
  void record_extra_swaps(std::uint64_t extra) { result_.swaps_performed += extra; }

  /// All-pairs generation-graph hop distances (shared with variants).
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& distances() const {
    return distances_;
  }

 private:
  // --- sharded-engine swap phase (sim::TickMode::kSharded): decide +
  // two-level commit kernels on the NetworkState ---
  void sharded_swap_phase();

  const graph::Graph& generation_graph_;
  const Workload& workload_;
  BalancingConfig config_;
  std::vector<std::vector<std::uint32_t>> distances_;
  sim::NetworkState state_;
  MaxMinBalancer balancer_;
  util::Rng generation_rng_;
  util::Rng swap_rng_;
  util::Rng consume_rng_;
  BalancingResult result_;
  std::size_t head_ = 0;          // index of the head-of-line request
  std::uint32_t head_since_ = 0;  // round the current head became head
};

/// Convenience wrapper: build the simulation and run to completion.
[[nodiscard]] BalancingResult run_balancing(const graph::Graph& generation_graph,
                                            const Workload& workload,
                                            const BalancingConfig& config);

}  // namespace poq::core
