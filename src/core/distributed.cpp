#include "core/distributed.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <variant>
#include <vector>

#include "graph/shortest_path.hpp"
#include "net/message.hpp"
#include "sim/parallel_engine.hpp"
#include "sim/vertex_program.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::core {

namespace {

using QubitId = std::uint64_t;
constexpr QubitId kDead = UINT64_MAX;
constexpr std::uint64_t kNeverDirty = UINT64_MAX;

/// Ground truth: qubits never move; entanglement is a symmetric partner
/// relation that swaps rewire and measurements sever.
class Truth {
 public:
  QubitId create(NodeId holder) {
    holders_.push_back(holder);
    partners_.push_back(kDead);
    return holders_.size() - 1;
  }

  void entangle(QubitId a, QubitId b) {
    partners_[a] = b;
    partners_[b] = a;
  }

  void measure(QubitId q) {
    if (partners_[q] != kDead) partners_[partners_[q]] = kDead;
    partners_[q] = kDead;
  }

  [[nodiscard]] QubitId partner(QubitId q) const { return partners_[q]; }
  [[nodiscard]] bool alive(QubitId q) const { return partners_[q] != kDead; }
  [[nodiscard]] NodeId holder(QubitId q) const { return holders_[q]; }

 private:
  std::vector<NodeId> holders_;
  std::vector<QubitId> partners_;
};

/// What one node believes about the qubits it holds.
struct Belief {
  NodeId partner_node = 0;
  QubitId partner_qubit = kDead;
};

class NodeState {
 public:
  explicit NodeState(std::size_t node_count) : by_partner_(node_count) {}

  void learn(QubitId qubit, NodeId partner_node, QubitId partner_qubit) {
    forget(qubit);
    beliefs_[qubit] = Belief{partner_node, partner_qubit};
    by_partner_[partner_node].push_back(qubit);
  }

  void forget(QubitId qubit) {
    const auto it = beliefs_.find(qubit);
    if (it == beliefs_.end()) return;
    auto& list = by_partner_[it->second.partner_node];
    list.erase(std::find(list.begin(), list.end(), qubit));
    beliefs_.erase(it);
  }

  [[nodiscard]] bool knows(QubitId qubit) const { return beliefs_.contains(qubit); }

  [[nodiscard]] const Belief* belief(QubitId qubit) const {
    const auto it = beliefs_.find(qubit);
    return it == beliefs_.end() ? nullptr : &it->second;
  }

  /// Believed count of pairs shared with `partner`, excluding `locked`.
  [[nodiscard]] std::uint32_t count(NodeId partner, QubitId locked) const {
    const auto& list = by_partner_[partner];
    auto size = static_cast<std::uint32_t>(list.size());
    if (locked != kDead &&
        std::find(list.begin(), list.end(), locked) != list.end()) {
      --size;
    }
    return size;
  }

  /// First believed qubit toward `partner` that is not `locked`.
  [[nodiscard]] QubitId pick(NodeId partner, QubitId locked) const {
    for (QubitId q : by_partner_[partner]) {
      if (q != locked) return q;
    }
    return kDead;
  }

  /// Every qubit this node believes it holds, ascending (canonical order
  /// for the crash purge, independent of the hash map's iteration order).
  [[nodiscard]] std::vector<QubitId> believed_qubits() const {
    std::vector<QubitId> result;
    result.reserve(beliefs_.size());
    for (const auto& [qubit, belief] : beliefs_) result.push_back(qubit);
    std::sort(result.begin(), result.end());
    return result;
  }

  /// Partners with at least one believed pair (ascending).
  [[nodiscard]] std::vector<NodeId> partners(QubitId locked) const {
    std::vector<NodeId> result;
    for (NodeId y = 0; y < by_partner_.size(); ++y) {
      if (count(y, locked) > 0) result.push_back(y);
    }
    return result;
  }

 private:
  std::unordered_map<QubitId, Belief> beliefs_;
  std::vector<std::vector<QubitId>> by_partner_;
};

/// One node's sparse view of other nodes' count rows: only the entries
/// some reporter actually messaged, instead of the former dense
/// n-squared matrix per node.
struct ViewState {
  /// (reporter << 32 | peer) -> last reported count (zeros erased).
  std::unordered_map<std::uint64_t, std::uint32_t> count;
  /// reporter -> send time of its freshest report.
  std::unordered_map<NodeId, double> time;

  [[nodiscard]] static std::uint64_t key(NodeId reporter, NodeId peer) {
    return (static_cast<std::uint64_t>(reporter) << 32) | peer;
  }
  [[nodiscard]] std::uint32_t count_of(NodeId reporter, NodeId peer) const {
    const auto it = count.find(key(reporter, peer));
    return it == count.end() ? 0 : it->second;
  }
  [[nodiscard]] double time_of(NodeId reporter) const {
    const auto it = time.find(reporter);
    return it == time.end() ? 0.0 : it->second;
  }
};

/// A node's cached swap decision (the §4 rule evaluated against its
/// beliefs and views). Pure function of (beliefs, views, locked qubit),
/// so under decide=incremental it is recomputed only when the node is
/// signaled — same results, fewer scans.
struct Candidate {
  NodeId left = 0;
  NodeId right = 0;
  QubitId q1 = kDead;
  QubitId q2 = kDead;
  double vt_left = 0.0;
  double vt_right = 0.0;
};

struct ShardStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// The vertex-program driver. Each epoch of length dt runs:
///   1. deliver + parallel apply kernel (views, pair repointing; consume
///      handshake messages deferred to the serial phase),
///   2. serial consume resolution,
///   3. serial ground-truth generation,
///   4. parallel report/decide kernel over all nodes,
///   5. serial swap-commit walk in canonical rotating order — a node
///      whose readable state changed earlier in the walk re-scans live,
///      replicating "a scan at time t sees all earlier events",
///   6. the head consumer's periodic offer.
/// Sub-epoch message latencies (delay rounds to 0 epochs) are applied
/// inline by the serial phases; everything else is mailed through the
/// VertexProgram with its canonical merge order.
class Driver {
 public:
  Driver(const graph::Graph& graph, const Workload& workload,
         const DistributedConfig& config)
      : graph_(graph),
        workload_(workload),
        config_(config),
        n_(static_cast<NodeId>(graph.node_count())),
        distances_(graph::all_pairs_distances(graph)),
        nodes_(n_, NodeState(n_)),
        views_(n_),
        last_reported_(n_),
        candidates_(n_),
        scanned_(n_, 0),
        serial_dirty_(n_, kNeverDirty),
        pool_(config.tick.mode == sim::TickMode::kSharded
                  ? std::make_unique<sim::ParallelTickEngine>(config.tick.threads)
                  : nullptr),
        vp_(n_, pool_.get(),
            pool_ ? pool_->resolve_shards(config.tick.shards, n_) : 1),
        shard_stats_(vp_.shard_count()),
        deferred_consume_(vp_.shard_count()) {
    if (config.faults.enabled()) {
      fault_plan_.emplace(graph, config.faults, config.seed);
    }
  }

  DistributedResult run() {
    const auto epochs =
        static_cast<std::uint64_t>(std::ceil(config_.duration / config_.dt));
    const auto retry_epochs = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(config_.consume_retry_interval / config_.dt)));
    for (std::uint64_t epoch = 0; epoch < epochs; ++epoch) {
      util::this_thread_check_cancelled();
      epoch_ = epoch;
      now_ = static_cast<double>(epoch + 1) * config_.dt;
      fault_phase();
      apply_phase();
      resolve_consume();
      generate();
      report_and_decide();
      commit();
      if (epoch % retry_epochs == 0) try_offer();
      vp_.signals().reset_budget();
    }
    if (fault_plan_) {
      const sim::FaultStats& fault_stats = fault_plan_->stats();
      result_.availability = fault_stats.availability();
      result_.fault_rounds_degraded = fault_stats.degraded_rounds;
      result_.node_crashes = fault_stats.node_crashes;
      result_.link_downs = fault_stats.link_downs;
    }
    return std::move(result_);
  }

 private:
  using Program = sim::VertexProgram<net::Message>;

  [[nodiscard]] std::uint64_t delay_epochs(NodeId a, NodeId b) const {
    const double latency =
        config_.latency_per_hop * static_cast<double>(distances_[a][b]);
    return static_cast<std::uint64_t>(std::floor(latency / config_.dt + 0.5));
  }

  void account_serial(const net::Message& message) {
    ++result_.control_messages;
    result_.control_bytes += net::encoded_size(message);
  }

  /// A serial mutation of `v` after this epoch's decide kernel: the
  /// commit walk re-scans `v` live, and the signal invalidates the cache
  /// for future epochs.
  void mark_serial(NodeId v) {
    serial_dirty_[v] = epoch_;
    vp_.signals().signal(v);
  }

  // --- phase 0: fault injection (serial) ------------------------------

  void fault_phase() {
    if (!fault_plan_) return;
    const std::vector<NodeId>& crashed = fault_plan_->advance(epoch_);
    for (const NodeId x : crashed) purge_crashed(x);
    const bool degraded = fault_plan_->degraded();
    if (degraded) {
      in_degraded_episode_ = true;
    } else if (in_degraded_episode_) {
      in_degraded_episode_ = false;
      awaiting_recovery_ = true;
      episode_end_ = now_;
    }
    round_degraded_ = degraded;
  }

  /// Crash purge: measure every qubit x holds. Heralded loss — the *true*
  /// far endpoint's holder (not the possibly stale believed partner)
  /// forgets its half through the reliable control plane, preserving the
  /// invariant that believed unlocked qubits are truth-alive. Both ends
  /// are marked serial so cached decisions recompute.
  void purge_crashed(NodeId x) {
    const std::vector<QubitId> qubits = nodes_[x].believed_qubits();
    for (const QubitId q : qubits) {
      if (!truth_.alive(q)) {
        // A locked qubit already measured by the responder's accept, or
        // the far half of a pair whose near half this loop purged first.
        nodes_[x].forget(q);
        continue;
      }
      const QubitId far = truth_.partner(q);
      const NodeId far_holder = truth_.holder(far);
      truth_.measure(q);  // severs both ends
      nodes_[x].forget(q);
      if (nodes_[far_holder].knows(far)) nodes_[far_holder].forget(far);
      mark_serial(far_holder);
      ++result_.pairs_purged_by_faults;
    }
    mark_serial(x);
  }

  // --- phase 1: deliver + apply ---------------------------------------

  void apply_phase() {
    const std::vector<std::uint32_t>& active = vp_.deliver(epoch_);
    for (auto& deferred : deferred_consume_) deferred.clear();
    if (active.empty()) return;
    vp_.run_kernel([&](std::size_t shard, Program::Context& ctx) {
      const auto [begin, end] = sim::ParallelTickEngine::shard_range(
          active.size(), vp_.shard_count(), shard);
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId x = active[i];
        for (const net::Message& message : vp_.inbox(x)) {
          if (const auto* counts = std::get_if<net::CountUpdate>(&message)) {
            apply_count_update(x, *counts);
            ctx.signal(x);
          } else if (const auto* pair = std::get_if<net::PairUpdate>(&message)) {
            // Obsolete if the recipient already measured this qubit itself.
            if (nodes_[x].knows(pair->qubit)) {
              nodes_[x].learn(pair->qubit, pair->new_partner,
                              pair->new_partner_qubit);
              ctx.signal(x);
            }
          } else {
            // Consume handshake: touches the global head-of-line state, so
            // it resolves in the serial phase (canonical shard order).
            deferred_consume_[shard].push_back(message);
          }
        }
      }
    });
  }

  void apply_count_update(NodeId x, const net::CountUpdate& update) {
    ViewState& view = views_[x];
    for (const net::CountUpdate::Entry& entry : update.entries) {
      const std::uint64_t key = ViewState::key(update.reporter, entry.peer);
      if (entry.count == 0) {
        view.count.erase(key);
      } else {
        view.count[key] = entry.count;
      }
    }
    view.time[update.reporter] =
        static_cast<double>(update.version + 1) * config_.dt;
  }

  // --- phase 2: consume handshake (serial) ----------------------------

  void resolve_consume() {
    for (const std::vector<net::Message>& deferred : deferred_consume_) {
      for (const net::Message& message : deferred) {
        if (const auto* offer = std::get_if<net::ConsumeOffer>(&message)) {
          handle_offer(*offer);
        } else if (const auto* reply = std::get_if<net::ConsumeReply>(&message)) {
          handle_reply(*reply);
        }
      }
    }
  }

  void handle_offer(const net::ConsumeOffer& offer) {
    NodeState& responder = nodes_[offer.to];
    net::ConsumeReply reply;
    reply.from = offer.to;
    reply.to = offer.from;
    reply.request_id = offer.request_id;
    const bool valid =
        responder.knows(offer.responder_qubit) &&
        truth_.alive(offer.responder_qubit) &&
        truth_.partner(offer.responder_qubit) == offer.initiator_qubit;
    reply.accept = valid;
    if (valid) {
      responder.forget(offer.responder_qubit);
      truth_.measure(offer.responder_qubit);  // severs both ends
      mark_serial(offer.to);
    }
    account_serial(reply);
    const std::uint64_t delay = delay_epochs(offer.to, offer.from);
    if (delay == 0) {
      handle_reply(reply);
    } else {
      vp_.send(reply.to, delay, reply);
    }
  }

  void handle_reply(const net::ConsumeReply& reply) {
    offer_in_flight_ = false;
    NodeState& initiator = nodes_[reply.to];
    mark_serial(reply.to);  // the lock (and possibly beliefs) changed
    if (reply.accept) {
      // Responder measured its half at accept time; finish locally.
      truth_.measure(offered_qubit_);
      initiator.forget(offered_qubit_);
      offered_qubit_ = kDead;
      ++result_.requests_satisfied;
      if (round_degraded_) ++result_.delivered_under_fault;
      if (awaiting_recovery_) {
        result_.time_to_recover.add(now_ - episode_end_);
        awaiting_recovery_ = false;
      }
      result_.request_latency.add(now_ - head_since_);
      ++head_;
      head_since_ = now_;
      return;
    }
    // Conflict: our belief was stale; the pending PairUpdate will repair
    // it. Unlock the qubit and let the retry timer try again.
    ++result_.consume_conflicts;
    offered_qubit_ = kDead;
  }

  void try_offer() {
    if (offer_in_flight_ || head_ >= workload_.request_count()) return;
    const NodePair& request = workload_.request(head_);
    NodeState& initiator = nodes_[request.first];
    const QubitId qubit = initiator.pick(request.second, kDead);
    if (qubit == kDead) return;  // nothing believed toward the partner yet
    const Belief* belief = initiator.belief(qubit);
    net::ConsumeOffer offer;
    offer.from = request.first;
    offer.to = request.second;
    offer.request_id = head_;
    offer.initiator_qubit = qubit;
    offer.responder_qubit = belief->partner_qubit;
    offered_qubit_ = qubit;
    offer_in_flight_ = true;
    vp_.signals().signal(request.first);  // the lock changes its counts
    account_serial(offer);
    const std::uint64_t delay = delay_epochs(offer.from, offer.to);
    if (delay == 0) {
      handle_offer(offer);
    } else {
      vp_.send(offer.to, delay, offer);
    }
  }

  // --- phase 3: generation (serial, ground truth) ---------------------

  void generate() {
    const auto& edges = graph_.edges();
    // Batched per-edge draw (bit-identical to the scalar keyed + poisson
    // loop; the sponge prefix is hoisted once per epoch). Under faults the
    // rate scales by the degradation factor and downed edges drop their
    // draw (per-edge keyed streams: no other edge's stream shifts).
    const double rate = config_.generation_rate * config_.dt *
                        (fault_plan_ ? fault_plan_->rate_factor() : 1.0);
    const bool masked = fault_plan_ && fault_plan_->any_edge_down();
    born_scratch_.resize(edges.size());
    util::Rng::poisson_batch(config_.seed, sim::stream_tag::kGeneration,
                             epoch_, 0, rate, born_scratch_);
    for (std::size_t index = 0; index < edges.size(); ++index) {
      if (masked && !fault_plan_->edge_up(index)) continue;
      const std::uint64_t born = born_scratch_[index];
      for (std::uint64_t k = 0; k < born; ++k) {
        const graph::Edge& edge = edges[index];
        const QubitId qa = truth_.create(edge.a());
        const QubitId qb = truth_.create(edge.b());
        truth_.entangle(qa, qb);
        nodes_[edge.a()].learn(qa, edge.b(), qb);
        nodes_[edge.b()].learn(qb, edge.a(), qa);
        vp_.signals().signal(edge.a());
        vp_.signals().signal(edge.b());
        ++result_.pairs_generated;
      }
    }
  }

  // --- phase 4: report + decide (parallel kernel) ---------------------

  void report_and_decide() {
    vp_.run_kernel([&](std::size_t shard, Program::Context& ctx) {
      ShardStats& stats = shard_stats_[shard];
      const auto [begin, end] =
          sim::ParallelTickEngine::shard_range(n_, vp_.shard_count(), shard);
      for (NodeId x = static_cast<NodeId>(begin); x < end; ++x) {
        scanned_[x] = 0;
        // A crashed node neither reports nor scans; its streams are keyed
        // per (epoch, node), so skipping shifts nothing else. The masks
        // only change in the serial fault phase, so the kernel reads a
        // frozen plan.
        if (fault_plan_ && !fault_plan_->node_up(x)) continue;
        util::Rng report_rng =
            util::Rng::keyed(config_.seed, sim::stream_tag::kReport, epoch_, x);
        if (report_rng.poisson(config_.report_rate * config_.dt) > 0) {
          send_report(x, ctx, stats);
        }
        util::Rng scan_rng =
            util::Rng::keyed(config_.seed, sim::stream_tag::kScan, epoch_, x);
        if (scan_rng.poisson(config_.scan_rate * config_.dt) > 0) {
          scanned_[x] = 1;
          if (!config_.tick.incremental_decide || vp_.signals().test(x)) {
            candidates_[x] = compute_candidate(x);
            vp_.signals().clear(x);
          }
        }
      }
    });
    for (ShardStats& stats : shard_stats_) {
      result_.control_messages += stats.messages;
      result_.control_bytes += stats.bytes;
      stats = ShardStats{};
    }
  }

  /// Report x's count row to its current believed partners. Entries are
  /// the union of the currently nonzero peers and the peers of the last
  /// report (so a count that dropped to zero decays at its readers);
  /// everything is sparse — cost is O(partners), not O(n).
  void send_report(NodeId x, Program::Context& ctx, ShardStats& stats) {
    const std::vector<NodeId> current = nodes_[x].partners(offered_qubit_);
    net::CountUpdate update;
    update.reporter = x;
    update.version = epoch_;
    const std::vector<NodeId>& previous = last_reported_[x];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < current.size() || j < previous.size()) {
      NodeId peer;
      if (j >= previous.size() || (i < current.size() && current[i] <= previous[j])) {
        if (j < previous.size() && previous[j] == current[i]) ++j;
        peer = current[i++];
      } else {
        peer = previous[j++];
      }
      update.entries.push_back(
          net::CountUpdate::Entry{peer, nodes_[x].count(peer, offered_qubit_)});
    }
    last_reported_[x] = current;
    if (current.empty()) return;  // nobody reads this row any more
    const std::uint64_t bytes = net::encoded_size(net::Message(update));
    for (const NodeId target : current) {
      ++stats.messages;
      stats.bytes += bytes;
      ctx.send(target, delay_epochs(x, target), update);
    }
  }

  /// The §4 swap rule on believed own counts and viewed beneficiary
  /// counts (D = 1): pick the candidate pair (a, b) with the smallest
  /// viewed beneficiary count whose caps allow the swap.
  [[nodiscard]] std::optional<Candidate> compute_candidate(NodeId x) const {
    const QubitId locked = offered_qubit_;
    const std::vector<NodeId> partner_list = nodes_[x].partners(locked);
    const ViewState& view = views_[x];
    NodeId best_left = n_;
    NodeId best_right = n_;
    std::uint32_t best_beneficiary = UINT32_MAX;
    for (std::size_t i = 0; i < partner_list.size(); ++i) {
      const NodeId a = partner_list[i];
      const double cap_a = static_cast<double>(nodes_[x].count(a, locked)) - 1.0;
      if (cap_a < 1.0) continue;
      for (std::size_t j = i + 1; j < partner_list.size(); ++j) {
        const NodeId b = partner_list[j];
        const double cap_b = static_cast<double>(nodes_[x].count(b, locked)) - 1.0;
        if (cap_b < 1.0) continue;
        // Freshest first-hand report about the (a, b) pair.
        const std::uint32_t beneficiary = view.time_of(a) >= view.time_of(b)
                                              ? view.count_of(a, b)
                                              : view.count_of(b, a);
        if (static_cast<double>(beneficiary) + 1.0 > std::min(cap_a, cap_b)) {
          continue;
        }
        if (beneficiary < best_beneficiary) {
          best_beneficiary = beneficiary;
          best_left = a;
          best_right = b;
        }
      }
    }
    if (best_left == n_) return std::nullopt;
    Candidate candidate;
    candidate.left = best_left;
    candidate.right = best_right;
    candidate.q1 = nodes_[x].pick(best_left, locked);
    candidate.q2 = nodes_[x].pick(best_right, locked);
    ensure(candidate.q1 != kDead && candidate.q2 != kDead,
           "distributed: belief lists corrupt");
    candidate.vt_left = view.time_of(best_left);
    candidate.vt_right = view.time_of(best_right);
    return candidate;
  }

  // --- phase 5: swap commit (serial, canonical rotating order) --------

  void commit() {
    const auto first = static_cast<NodeId>(epoch_ % n_);
    for (NodeId offset = 0; offset < n_; ++offset) {
      const NodeId x = (first + offset) % n_;
      if (scanned_[x] == 0) continue;
      std::optional<Candidate> candidate = candidates_[x];
      if (serial_dirty_[x] == epoch_) {
        // x's readable state changed after the decide kernel (an earlier
        // commit in this walk, or this epoch's consume resolution): its
        // scan happens live, seeing all earlier events of the epoch.
        candidate = compute_candidate(x);
      }
      if (!candidate.has_value()) continue;
      execute_swap(x, *candidate);
    }
  }

  void execute_swap(NodeId x, const Candidate& candidate) {
    // Physics: measure both local qubits; their true far partners become
    // entangled with each other, whatever the beliefs said. (Believed
    // unlocked qubits are always truth-alive: measurement is only ever
    // performed by a qubit's own holder, which forgets it on the spot.)
    const QubitId far1 = truth_.partner(candidate.q1);
    const QubitId far2 = truth_.partner(candidate.q2);
    truth_.measure(candidate.q1);
    truth_.measure(candidate.q2);
    truth_.entangle(far1, far2);
    nodes_[x].forget(candidate.q1);
    nodes_[x].forget(candidate.q2);
    mark_serial(x);
    ++result_.swaps;
    const NodeId actual_u = truth_.holder(far1);
    const NodeId actual_v = truth_.holder(far2);
    if (NodePair(actual_u, actual_v) != NodePair(candidate.left, candidate.right)) {
      ++result_.stale_swaps;
    }
    result_.decision_view_age.add(
        now_ - std::max(candidate.vt_left, candidate.vt_right));
    // Notify the true endpoints, with the 2 classical bits (Fig. 2).
    util::Rng bits =
        util::Rng::keyed(config_.seed, sim::stream_tag::kSwapBits, epoch_, x);
    for (const auto& [endpoint, qubit, partner_node, partner_qubit] :
         {std::tuple{actual_u, far1, actual_v, far2},
          std::tuple{actual_v, far2, actual_u, far1}}) {
      net::PairUpdate update;
      update.to = endpoint;
      update.new_partner = partner_node;
      update.qubit = qubit;
      update.new_partner_qubit = partner_qubit;
      update.z_bit = bits.bernoulli(0.5);
      update.x_bit = bits.bernoulli(0.5);
      account_serial(update);
      const std::uint64_t delay = delay_epochs(x, endpoint);
      if (delay == 0) {
        // Sub-epoch latency: the repointing lands within this epoch, so
        // later nodes in the walk (and this epoch's consume) see it.
        if (nodes_[endpoint].knows(update.qubit)) {
          nodes_[endpoint].learn(update.qubit, update.new_partner,
                                 update.new_partner_qubit);
          mark_serial(endpoint);
        }
      } else {
        vp_.send(endpoint, delay, update);
      }
    }
  }

  const graph::Graph& graph_;
  const Workload& workload_;
  const DistributedConfig& config_;
  NodeId n_;
  std::vector<std::vector<std::uint32_t>> distances_;

  Truth truth_;
  std::vector<NodeState> nodes_;
  std::vector<ViewState> views_;
  /// Peers with nonzero counts in each node's last report (ascending).
  std::vector<std::vector<NodeId>> last_reported_;
  std::vector<std::optional<Candidate>> candidates_;
  std::vector<std::uint8_t> scanned_;
  /// Last epoch whose serial phases mutated the node after decide.
  std::vector<std::uint64_t> serial_dirty_;

  std::unique_ptr<sim::ParallelTickEngine> pool_;
  Program vp_;
  std::vector<ShardStats> shard_stats_;
  std::vector<std::vector<net::Message>> deferred_consume_;

  // Consumption handshake state (head-of-line, so at most one in flight).
  std::size_t head_ = 0;
  double head_since_ = 0.0;
  QubitId offered_qubit_ = kDead;  // initiator's locked qubit
  bool offer_in_flight_ = false;

  std::uint64_t epoch_ = 0;
  double now_ = 0.0;
  /// Per-edge generation draws (resized once, reused every epoch).
  std::vector<std::uint64_t> born_scratch_;
  // Fault phase state (engaged only when config.faults.enabled()).
  std::optional<sim::FaultPlan> fault_plan_;
  bool round_degraded_ = false;
  bool in_degraded_episode_ = false;
  bool awaiting_recovery_ = false;
  double episode_end_ = 0.0;
  DistributedResult result_;
};

}  // namespace

DistributedResult run_distributed(const graph::Graph& generation_graph,
                                  const Workload& workload,
                                  const DistributedConfig& config) {
  const auto n = static_cast<NodeId>(generation_graph.node_count());
  require(n >= 3, "run_distributed: need at least 3 nodes");
  require(config.latency_per_hop >= 0.0, "run_distributed: negative latency");
  require(config.dt > 0.0, "run_distributed: dt must be positive");
  return Driver(generation_graph, workload, config).run();
}

}  // namespace poq::core
