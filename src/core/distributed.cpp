#include "core/distributed.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "graph/shortest_path.hpp"
#include "net/message.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace poq::core {

namespace {

using QubitId = std::uint64_t;
constexpr QubitId kDead = UINT64_MAX;

/// Ground truth: qubits never move; entanglement is a symmetric partner
/// relation that swaps rewire and measurements sever.
class Truth {
 public:
  QubitId create(NodeId holder) {
    holders_.push_back(holder);
    partners_.push_back(kDead);
    return holders_.size() - 1;
  }

  void entangle(QubitId a, QubitId b) {
    partners_[a] = b;
    partners_[b] = a;
  }

  void measure(QubitId q) {
    if (partners_[q] != kDead) partners_[partners_[q]] = kDead;
    partners_[q] = kDead;
  }

  [[nodiscard]] QubitId partner(QubitId q) const { return partners_[q]; }
  [[nodiscard]] bool alive(QubitId q) const { return partners_[q] != kDead; }
  [[nodiscard]] NodeId holder(QubitId q) const { return holders_[q]; }

 private:
  std::vector<NodeId> holders_;
  std::vector<QubitId> partners_;
};

/// What one node believes about the qubits it holds.
struct Belief {
  NodeId partner_node = 0;
  QubitId partner_qubit = kDead;
};

class NodeState {
 public:
  explicit NodeState(std::size_t node_count) : by_partner_(node_count) {}

  void learn(QubitId qubit, NodeId partner_node, QubitId partner_qubit) {
    forget(qubit);
    beliefs_[qubit] = Belief{partner_node, partner_qubit};
    by_partner_[partner_node].push_back(qubit);
  }

  void forget(QubitId qubit) {
    const auto it = beliefs_.find(qubit);
    if (it == beliefs_.end()) return;
    auto& list = by_partner_[it->second.partner_node];
    list.erase(std::find(list.begin(), list.end(), qubit));
    beliefs_.erase(it);
  }

  [[nodiscard]] bool knows(QubitId qubit) const { return beliefs_.contains(qubit); }

  [[nodiscard]] const Belief* belief(QubitId qubit) const {
    const auto it = beliefs_.find(qubit);
    return it == beliefs_.end() ? nullptr : &it->second;
  }

  /// Believed count of pairs shared with `partner`, excluding `locked`.
  [[nodiscard]] std::uint32_t count(NodeId partner, QubitId locked) const {
    const auto& list = by_partner_[partner];
    auto size = static_cast<std::uint32_t>(list.size());
    if (locked != kDead &&
        std::find(list.begin(), list.end(), locked) != list.end()) {
      --size;
    }
    return size;
  }

  /// First believed qubit toward `partner` that is not `locked`.
  [[nodiscard]] QubitId pick(NodeId partner, QubitId locked) const {
    for (QubitId q : by_partner_[partner]) {
      if (q != locked) return q;
    }
    return kDead;
  }

  /// Partners with at least one believed pair.
  [[nodiscard]] std::vector<NodeId> partners(QubitId locked) const {
    std::vector<NodeId> result;
    for (NodeId y = 0; y < by_partner_.size(); ++y) {
      if (count(y, locked) > 0) result.push_back(y);
    }
    return result;
  }

 private:
  std::unordered_map<QubitId, Belief> beliefs_;
  std::vector<std::vector<QubitId>> by_partner_;
};

}  // namespace

DistributedResult run_distributed(const graph::Graph& generation_graph,
                                  const Workload& workload,
                                  const DistributedConfig& config) {
  const auto n = static_cast<NodeId>(generation_graph.node_count());
  require(n >= 3, "run_distributed: need at least 3 nodes");
  require(config.latency_per_hop >= 0.0, "run_distributed: negative latency");

  sim::Engine engine(config.seed);
  util::Rng decision_rng = engine.rng().fork(0xD157);
  Truth truth;
  DistributedResult result;

  const auto distances = graph::all_pairs_distances(generation_graph);
  std::vector<NodeState> nodes(n, NodeState(n));

  // Count views: view_count[x][reporter*n + peer], refreshed by CountUpdate.
  std::vector<std::vector<std::uint32_t>> view_count(
      n, std::vector<std::uint32_t>(static_cast<std::size_t>(n) * n, 0));
  std::vector<std::vector<double>> view_time(n, std::vector<double>(n, 0.0));

  // Consumption handshake state (head-of-line, so at most one in flight).
  std::size_t head = 0;
  double head_since = 0.0;
  QubitId offered_qubit = kDead;  // initiator's locked qubit
  bool offer_in_flight = false;

  const auto account = [&result](const net::Message& message) {
    ++result.control_messages;
    result.control_bytes += net::encoded_size(message);
  };
  const auto latency = [&](NodeId a, NodeId b) {
    return std::max(1e-9, config.latency_per_hop * distances[a][b]);
  };

  // --- message handlers -----------------------------------------------
  const auto deliver_pair_update = [&](const net::PairUpdate& update) {
    NodeState& node = nodes[update.to];
    // Obsolete if the recipient already measured this qubit itself.
    if (!node.knows(update.qubit)) return;
    node.learn(update.qubit, update.new_partner, update.new_partner_qubit);
  };

  std::function<void()> try_offer;  // forward declaration for retries

  const auto deliver_consume_reply = [&](const net::ConsumeReply& reply) {
    offer_in_flight = false;
    NodeState& initiator = nodes[reply.to];
    if (reply.accept) {
      // Responder measured its half at accept time; finish locally.
      truth.measure(offered_qubit);
      initiator.forget(offered_qubit);
      offered_qubit = kDead;
      ++result.requests_satisfied;
      result.request_latency.add(engine.now() - head_since);
      ++head;
      head_since = engine.now();
      return;
    }
    // Conflict: our belief was stale; the pending PairUpdate will repair
    // it. Unlock the qubit and let the retry timer try again.
    ++result.consume_conflicts;
    offered_qubit = kDead;
  };

  const auto deliver_consume_offer = [&](const net::ConsumeOffer& offer) {
    NodeState& responder = nodes[offer.to];
    net::ConsumeReply reply;
    reply.from = offer.to;
    reply.to = offer.from;
    reply.request_id = offer.request_id;
    const bool valid = responder.knows(offer.responder_qubit) &&
                       truth.alive(offer.responder_qubit) &&
                       truth.partner(offer.responder_qubit) == offer.initiator_qubit;
    reply.accept = valid;
    if (valid) {
      responder.forget(offer.responder_qubit);
      truth.measure(offer.responder_qubit);  // severs both ends
    }
    account(reply);
    const double delay = latency(offer.to, offer.from);
    engine.after(delay, [&, reply] { deliver_consume_reply(reply); });
  };

  try_offer = [&] {
    if (offer_in_flight || head >= workload.request_count()) return;
    const NodePair& request = workload.request(head);
    NodeState& initiator = nodes[request.first];
    const QubitId qubit = initiator.pick(request.second, kDead);
    if (qubit == kDead) return;  // nothing believed toward the partner yet
    const Belief* belief = initiator.belief(qubit);
    net::ConsumeOffer offer;
    offer.from = request.first;
    offer.to = request.second;
    offer.request_id = head;
    offer.initiator_qubit = qubit;
    offer.responder_qubit = belief->partner_qubit;
    offered_qubit = qubit;
    offer_in_flight = true;
    account(offer);
    engine.after(latency(offer.from, offer.to),
                 [&, offer] { deliver_consume_offer(offer); });
  };

  // --- processes --------------------------------------------------------
  for (const graph::Edge& edge : generation_graph.edges()) {
    engine.poisson_process(config.generation_rate, [&, edge] {
      const QubitId qa = truth.create(edge.a());
      const QubitId qb = truth.create(edge.b());
      truth.entangle(qa, qb);
      nodes[edge.a()].learn(qa, edge.b(), qb);
      nodes[edge.b()].learn(qb, edge.a(), qa);
      ++result.pairs_generated;
      return true;
    });
  }

  for (NodeId x = 0; x < n; ++x) {
    // Count reporting: broadcast this node's believed row to everyone.
    engine.poisson_process(config.report_rate, [&, x] {
      net::CountUpdate update;
      update.reporter = x;
      update.version = static_cast<std::uint64_t>(engine.now() * 1e6);
      for (NodeId peer = 0; peer < n; ++peer) {
        if (peer == x) continue;
        update.entries.push_back(
            net::CountUpdate::Entry{peer, nodes[x].count(peer, offered_qubit)});
      }
      for (NodeId target = 0; target < n; ++target) {
        if (target == x) continue;
        account(update);
        const double now = engine.now();
        engine.after(latency(x, target), [&, update, target, now] {
          for (const auto& entry : update.entries) {
            view_count[target][static_cast<std::size_t>(update.reporter) * n +
                               entry.peer] = entry.count;
          }
          view_time[target][update.reporter] = now;
        });
      }
      return true;
    });

    // Swap scans: the §4 rule on believed own counts and viewed
    // beneficiary counts (D = 1).
    engine.poisson_process(config.scan_rate, [&, x] {
      const QubitId locked = offered_qubit;
      const std::vector<NodeId> partner_list = nodes[x].partners(locked);
      NodeId best_left = n;
      NodeId best_right = n;
      std::uint32_t best_beneficiary = UINT32_MAX;
      for (std::size_t i = 0; i < partner_list.size(); ++i) {
        const NodeId a = partner_list[i];
        const double cap_a = static_cast<double>(nodes[x].count(a, locked)) - 1.0;
        if (cap_a < 1.0) continue;
        for (std::size_t j = i + 1; j < partner_list.size(); ++j) {
          const NodeId b = partner_list[j];
          const double cap_b = static_cast<double>(nodes[x].count(b, locked)) - 1.0;
          if (cap_b < 1.0) continue;
          // Freshest first-hand report about the (a, b) pair.
          const std::uint32_t beneficiary =
              view_time[x][a] >= view_time[x][b]
                  ? view_count[x][static_cast<std::size_t>(a) * n + b]
                  : view_count[x][static_cast<std::size_t>(b) * n + a];
          if (static_cast<double>(beneficiary) + 1.0 > std::min(cap_a, cap_b)) {
            continue;
          }
          if (beneficiary < best_beneficiary) {
            best_beneficiary = beneficiary;
            best_left = a;
            best_right = b;
          }
        }
      }
      if (best_left == n) return true;
      result.decision_view_age.add(
          engine.now() -
          std::max(view_time[x][best_left], view_time[x][best_right]));

      const QubitId q1 = nodes[x].pick(best_left, locked);
      const QubitId q2 = nodes[x].pick(best_right, locked);
      ensure(q1 != kDead && q2 != kDead, "distributed: belief lists corrupt");
      // Physics: measure both local qubits; their true far partners become
      // entangled with each other, whatever the beliefs said.
      const QubitId far1 = truth.partner(q1);
      const QubitId far2 = truth.partner(q2);
      truth.measure(q1);
      truth.measure(q2);
      truth.entangle(far1, far2);
      nodes[x].forget(q1);
      nodes[x].forget(q2);
      ++result.swaps;
      const NodeId actual_u = truth.holder(far1);
      const NodeId actual_v = truth.holder(far2);
      if (NodePair(actual_u, actual_v) != NodePair(best_left, best_right)) {
        ++result.stale_swaps;
      }
      // Notify the true endpoints, with the 2 classical bits (Fig. 2).
      for (const auto& [endpoint, qubit, partner_node, partner_qubit] :
           {std::tuple{actual_u, far1, actual_v, far2},
            std::tuple{actual_v, far2, actual_u, far1}}) {
        net::PairUpdate update;
        update.to = endpoint;
        update.new_partner = partner_node;
        update.qubit = qubit;
        update.new_partner_qubit = partner_qubit;
        update.z_bit = decision_rng.bernoulli(0.5);
        update.x_bit = decision_rng.bernoulli(0.5);
        account(update);
        engine.after(latency(x, endpoint),
                     [&, update] { deliver_pair_update(update); });
      }
      return true;
    });
  }

  engine.every(config.consume_retry_interval, [&] {
    try_offer();
    return true;
  });

  engine.run(config.duration);
  return result;
}

}  // namespace poq::core
