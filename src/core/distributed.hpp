// Distributed §4 balancing with an explicit classical control plane.
//
// The round-based simulator gives every node "immediate global knowledge
// of all buffers" (§4). Here that assumption is dropped: nodes hold
// *beliefs* about their own qubits' partners and *views* of other nodes'
// counts, both updated only by classical messages (CountUpdate,
// PairUpdate, the consume handshake) that cross the fabric with per-hop
// latency. Physics is evaluated on ground truth: a swap measures the
// repeater's two qubits whatever they are actually entangled with, so
// stale beliefs produce swaps whose real beneficiary differs from the
// intended one, and consumption handshakes can fail when the far end's
// qubit was already spent. The simulator measures exactly the costs §2
// worries about: control bytes, belief staleness, mis-targeted swaps and
// consumption conflicts, as a function of classical latency.
//
// Runs on the sim::VertexProgram substrate: count rows travel as sparse
// CountUpdate messages to a node's current believed partners (signaled on
// change) instead of dense n-squared view matrices rebroadcast to all,
// and the per-epoch apply/report/decide kernels shard across the
// ParallelTickEngine pool under the canonical message-merge order, so
// engine/threads/shards/decide are real — and result-invariant — knobs.
//
// Distillation is out of scope here (D = 1): the consistency questions
// are orthogonal to the distillation cascade, which the round-based
// simulator covers.
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "core/workload.hpp"
#include "graph/graph.hpp"
#include "sim/fault_plan.hpp"
#include "sim/parallel_engine.hpp"
#include "util/stats.hpp"

namespace poq::core {

struct DistributedConfig {
  /// Poisson Bell-pair generation rate per generation edge.
  double generation_rate = 1.0;
  /// Poisson rate of per-node swap scans.
  double scan_rate = 1.0;
  /// Poisson rate at which each node reports its count row to its
  /// believed partners.
  double report_rate = 1.0;
  /// Classical latency per generation-graph hop (time units).
  double latency_per_hop = 0.1;
  /// How often the head consumer retries its handshake.
  double consume_retry_interval = 0.25;
  double duration = 400.0;
  /// Epoch length (time units) of the vertex-program loop: event rates are
  /// discretized per epoch and message latencies round to whole epochs
  /// (sub-epoch latency resolves within the sending epoch's serial phase).
  double dt = 0.25;
  std::uint64_t seed = 1;
  /// Intra-run engine knobs. kSharded fans the apply and report/decide
  /// kernels across a worker pool; results are bit-identical for every
  /// mode/threads/shards/decide setting (vertex-program canonical merge).
  sim::TickConcurrency tick;

  /// Fault-injection plan (one fault round per epoch). A crash measures
  /// every qubit the node holds — heralded loss: the true far endpoint's
  /// holder forgets its half through the reliable control plane — and
  /// halts the node's generation, scans and reports while down. Disabled
  /// by default (bit-identical historical path).
  sim::FaultConfig faults;
};

struct DistributedResult {
  std::uint64_t pairs_generated = 0;
  std::uint64_t swaps = 0;
  /// Swaps whose actual far endpoints differed from the decision's
  /// intended beneficiary (stale belief at the repeater).
  std::uint64_t stale_swaps = 0;
  std::uint64_t requests_satisfied = 0;
  /// Consumption handshakes that failed (partner qubit gone or moved).
  std::uint64_t consume_conflicts = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t control_bytes = 0;

  util::RunningStats request_latency;
  /// Age (time units) of the beneficiary views used at swap decisions.
  util::RunningStats decision_view_age;

  /// Fault-injection resilience counters (zero / availability 1 when
  /// faults are disabled — the historical metric set is untouched).
  double availability = 1.0;
  std::uint64_t fault_rounds_degraded = 0;
  std::uint64_t delivered_under_fault = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t link_downs = 0;
  std::uint64_t pairs_purged_by_faults = 0;
  /// Simulated time from the end of each degraded episode to the next
  /// satisfied request.
  util::RunningStats time_to_recover;

  [[nodiscard]] double stale_swap_fraction() const {
    return swaps == 0 ? 0.0
                      : static_cast<double>(stale_swaps) / static_cast<double>(swaps);
  }
  [[nodiscard]] double conflict_fraction() const {
    const double attempts = static_cast<double>(requests_satisfied) +
                            static_cast<double>(consume_conflicts);
    return attempts == 0.0 ? 0.0
                           : static_cast<double>(consume_conflicts) / attempts;
  }
};

/// Run the distributed protocol on `workload` (head-of-line order) over
/// `generation_graph`.
[[nodiscard]] DistributedResult run_distributed(const graph::Graph& generation_graph,
                                                const Workload& workload,
                                                const DistributedConfig& config);

}  // namespace poq::core
