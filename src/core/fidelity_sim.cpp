#include "core/fidelity_sim.hpp"

#include <algorithm>
#include <vector>

#include "core/ledger.hpp"
#include "core/maxmin_balancer.hpp"
#include "quantum/distillation.hpp"
#include "quantum/werner.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace poq::core {

double FidelitySimResult::realized_distillation_overhead() const {
  const double products =
      static_cast<double>(swaps - swap_outputs_discarded) +
      static_cast<double>(distillations);
  if (products <= 0.0) return 0.0;
  const double inputs = 2.0 * static_cast<double>(swaps + distillations +
                                                  distillation_failures);
  return inputs / products;
}

namespace {

/// One stored Bell pair: when it was created and at what fidelity.
struct StoredPair {
  double created = 0.0;
  double initial_fidelity = 1.0;
};

/// All stored pairs plus a mirrored usable-count ledger so the §4
/// preferability logic can be reused unchanged.
class Storage {
 public:
  Storage(std::size_t node_count, const FidelitySimConfig& config)
      : node_count_(node_count), config_(config), counts_(node_count),
        pairs_(node_count * (node_count - 1) / 2) {}

  [[nodiscard]] PairLedger& counts() { return counts_; }

  [[nodiscard]] double fidelity_now(const StoredPair& pair, double now) const {
    return quantum::decohered_fidelity(pair.initial_fidelity, now - pair.created,
                                       config_.memory_time_constant);
  }

  /// Drop pairs of (x,y) that decohered below the usable threshold.
  /// Returns how many were dropped.
  std::uint64_t purge(NodeId x, NodeId y, double now) {
    auto& bucket = pairs_[index(x, y)];
    std::uint64_t dropped = 0;
    for (std::size_t i = bucket.size(); i-- > 0;) {
      if (fidelity_now(bucket[i], now) < config_.usable_fidelity) {
        bucket.erase(bucket.begin() + static_cast<long>(i));
        counts_.remove(x, y, 1);
        ++dropped;
      }
    }
    return dropped;
  }

  void add(NodeId x, NodeId y, double now, double fidelity) {
    pairs_[index(x, y)].push_back(StoredPair{now, fidelity});
    counts_.add(x, y, 1);
  }

  [[nodiscard]] bool empty(NodeId x, NodeId y) const {
    return pairs_[index(x, y)].empty();
  }

  /// Remove and return the pair chosen by `policy`; bucket must be
  /// non-empty (callers check via the mirrored counts).
  StoredPair take(NodeId x, NodeId y, double now, PairingPolicy policy) {
    auto& bucket = pairs_[index(x, y)];
    ensure(!bucket.empty(), "fidelity_sim: take from empty bucket");
    std::size_t chosen = 0;
    for (std::size_t i = 1; i < bucket.size(); ++i) {
      if (policy == PairingPolicy::kFreshest
              ? fidelity_now(bucket[i], now) > fidelity_now(bucket[chosen], now)
              : bucket[i].created < bucket[chosen].created) {
        chosen = i;
      }
    }
    const StoredPair pair = bucket[chosen];
    bucket.erase(bucket.begin() + static_cast<long>(chosen));
    counts_.remove(x, y, 1);
    return pair;
  }

  /// Best current fidelity of the (x,y) bucket (0 when empty).
  [[nodiscard]] double best_fidelity(NodeId x, NodeId y, double now) const {
    const auto& bucket = pairs_[index(x, y)];
    double best = 0.0;
    for (const StoredPair& pair : bucket) {
      best = std::max(best, fidelity_now(pair, now));
    }
    return best;
  }

  [[nodiscard]] std::uint64_t total_pairs() const { return counts_.total_pairs(); }

 private:
  [[nodiscard]] std::size_t index(NodeId x, NodeId y) const {
    if (x > y) std::swap(x, y);
    return static_cast<std::size_t>(x) * (2 * node_count_ - x - 1) / 2 + (y - x - 1);
  }

  std::size_t node_count_;
  const FidelitySimConfig& config_;
  PairLedger counts_;
  std::vector<std::vector<StoredPair>> pairs_;
};

}  // namespace

FidelitySimResult run_fidelity_sim(const graph::Graph& generation_graph,
                                   const Workload& workload,
                                   const FidelitySimConfig& config) {
  require(config.raw_fidelity > config.usable_fidelity,
          "fidelity_sim: raw pairs must be usable when fresh");
  require(config.duration > 0.0, "fidelity_sim: duration must be positive");
  const std::size_t n = generation_graph.node_count();
  require(n >= 3, "fidelity_sim: need at least 3 nodes");

  sim::Engine engine(config.seed);
  Storage storage(n, config);
  FidelitySimResult result;
  util::Rng decision_rng = engine.rng().fork(0xF1DE);

  // The swap decision rule is the §4 preferability predicate with D = 1:
  // distillation is explicit here, not folded into the counts.
  const MaxMinBalancer balancer{DistillationMatrix(1.0)};

  std::size_t head = 0;
  double head_since = 0.0;

  const auto purge_node = [&](NodeId x) {
    const double now = engine.now();
    // Copy: purge mutates the partner list.
    const auto partner_list = storage.counts().partners(x);
    const std::vector<NodeId> partner_copy(partner_list.begin(), partner_list.end());
    for (NodeId y : partner_copy) result.pairs_decayed += storage.purge(x, y, now);
  };

  const auto try_consume = [&] {
    const double now = engine.now();
    while (head < workload.request_count()) {
      const NodePair& pair = workload.request(head);
      result.pairs_decayed += storage.purge(pair.first, pair.second, now);
      if (storage.best_fidelity(pair.first, pair.second, now) < config.app_fidelity) {
        break;
      }
      const StoredPair used =
          storage.take(pair.first, pair.second, now, PairingPolicy::kFreshest);
      result.consumed_fidelity.add(storage.fidelity_now(used, now));
      result.storage_age_at_use.add(now - used.created);
      result.request_latency.add(now - head_since);
      ++result.requests_satisfied;
      ++head;
      head_since = now;
    }
  };

  // Poisson generation per edge.
  for (const graph::Edge& edge : generation_graph.edges()) {
    engine.poisson_process(config.generation_rate, [&, edge] {
      storage.add(edge.a(), edge.b(), engine.now(), config.raw_fidelity);
      ++result.pairs_generated;
      return true;
    });
  }

  // Per-node swap/distill scans.
  for (NodeId x = 0; x < n; ++x) {
    engine.poisson_process(config.scan_rate, [&, x] {
      const double now = engine.now();
      purge_node(x);
      const auto candidate = balancer.best_swap(storage.counts(), x);
      if (candidate) {
        const StoredPair left = storage.take(x, candidate->left, now, config.policy);
        const StoredPair right =
            storage.take(x, candidate->right, now, config.policy);
        const double fused = quantum::swap_fidelity(storage.fidelity_now(left, now),
                                                    storage.fidelity_now(right, now));
        ++result.swaps;
        if (fused >= config.usable_fidelity) {
          storage.add(candidate->left, candidate->right, now, fused);
        } else {
          ++result.swap_outputs_discarded;
        }
        return true;
      }
      if (!config.distillation_enabled) return true;
      // No preferable swap: boost a weak pair type instead. Pick the
      // partner whose best pair is furthest below the application target
      // but still distillable.
      NodeId best_peer = x;
      double worst_best = config.app_fidelity;
      for (NodeId y : storage.counts().partners(x)) {
        if (storage.counts().count(x, y) < 2) continue;
        const double best = storage.best_fidelity(x, y, now);
        if (best > quantum::kDistillableThreshold && best < worst_best) {
          worst_best = best;
          best_peer = y;
        }
      }
      if (best_peer == x) return true;
      const StoredPair a = storage.take(x, best_peer, now, config.policy);
      const StoredPair b = storage.take(x, best_peer, now, config.policy);
      const quantum::DistillationStep step = quantum::bbpssw(
          storage.fidelity_now(a, now), storage.fidelity_now(b, now));
      if (decision_rng.bernoulli(step.success_probability) &&
          step.output_fidelity >= config.usable_fidelity) {
        storage.add(x, best_peer, now, step.output_fidelity);
        ++result.distillations;
      } else {
        ++result.distillation_failures;
      }
      return true;
    });
  }

  // Head-of-line consumption check, frequent relative to the scan rate.
  engine.every(0.25 / config.scan_rate, [&] {
    try_consume();
    return true;
  });

  engine.run(config.duration);
  result.pairs_in_storage_at_end = storage.total_pairs();
  return result;
}

}  // namespace poq::core
