#include "core/fidelity_sim.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "core/ledger.hpp"
#include "core/maxmin_balancer.hpp"
#include "quantum/distillation.hpp"
#include "quantum/werner.hpp"
#include "sim/engine.hpp"
#include "sim/network_state.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

namespace poq::core {

double FidelitySimResult::realized_distillation_overhead() const {
  const double products =
      static_cast<double>(swaps - swap_outputs_discarded) +
      static_cast<double>(distillations);
  if (products <= 0.0) return 0.0;
  const double inputs = 2.0 * static_cast<double>(swaps + distillations +
                                                  distillation_failures);
  return inputs / products;
}

namespace {

sim::DecayModel decay_model(const FidelitySimConfig& config) {
  return sim::DecayModel{config.memory_time_constant, config.usable_fidelity};
}

/// Head-of-line consumption against the tracked-pair state; shared by
/// both engines (the sequential engine calls it on a timer, the sharded
/// engine at every slice boundary).
struct Consumer {
  const Workload& workload;
  const FidelitySimConfig& config;
  sim::NetworkState& state;
  FidelitySimResult& result;
  std::size_t head = 0;
  double head_since = 0.0;
  // Fault-episode tracking (both engines feed note_fault_round).
  bool degraded_now = false;
  bool in_degraded_episode = false;
  bool awaiting_recovery = false;
  double episode_end = 0.0;

  /// Record this fault round's degraded flag and episode boundaries.
  void note_fault_round(bool degraded, double now) {
    degraded_now = degraded;
    if (degraded) {
      in_degraded_episode = true;
    } else if (in_degraded_episode) {
      in_degraded_episode = false;
      awaiting_recovery = true;
      episode_end = now;
    }
  }

  void try_consume(double now) {
    while (head < workload.request_count()) {
      const NodePair& pair = workload.request(head);
      result.pairs_decayed += state.purge_pair_type(pair.first, pair.second, now);
      if (state.best_fidelity(pair.first, pair.second, now) < config.app_fidelity) {
        break;
      }
      const sim::TrackedPair used =
          state.take_pair(pair.first, pair.second, now, /*freshest=*/true);
      result.consumed_fidelity.add(state.fidelity_now(used, now));
      result.storage_age_at_use.add(now - used.created);
      result.request_latency.add(now - head_since);
      ++result.requests_satisfied;
      if (degraded_now) ++result.delivered_under_fault;
      if (awaiting_recovery) {
        result.time_to_recover.add(now - episode_end);
        awaiting_recovery = false;
      }
      ++head;
      head_since = now;
    }
  }
};

/// The distillation target at x when no swap is preferable: the partner
/// whose best pair is furthest below the application target but still
/// distillable (and has a spare copy). Returns x when none qualifies.
NodeId pick_distill_peer(const sim::NetworkState& state,
                         const FidelitySimConfig& config, NodeId x, double now) {
  NodeId best_peer = x;
  double worst_best = config.app_fidelity;
  for (NodeId y : state.ledger().partners(x)) {
    if (state.ledger().count(x, y) < 2) continue;
    const double best = state.best_fidelity(x, y, now);
    if (best > quantum::kDistillableThreshold && best < worst_best) {
      worst_best = best;
      best_peer = y;
    }
  }
  return best_peer;
}

FidelitySimResult run_fidelity_sequential(const graph::Graph& generation_graph,
                                          const Workload& workload,
                                          const FidelitySimConfig& config) {
  const std::size_t n = generation_graph.node_count();
  sim::Engine engine(config.seed);
  sim::NetworkState state(generation_graph, config.seed, config.tick,
                          decay_model(config));
  FidelitySimResult result;
  util::Rng decision_rng = engine.rng().fork(0xF1DE);

  // The swap decision rule is the §4 preferability predicate with D = 1:
  // distillation is explicit here, not folded into the counts.
  const MaxMinBalancer balancer{DistillationMatrix(1.0)};

  Consumer consumer{workload, config, state, result};

  // Fault plan: advanced on a timer of the slice width (one fault round
  // per 0.25/scan_rate of simulated time, matching the sharded engine's
  // slice cadence). Rate degradation thins accepted generation arrivals
  // from a dedicated fork so the base processes' draws are untouched.
  std::optional<sim::FaultPlan> fault_plan;
  if (config.faults.enabled()) {
    fault_plan.emplace(generation_graph, config.faults, config.seed);
  }
  util::Rng fault_thin_rng = engine.rng().fork(0xFA17);

  const auto purge_node = [&](NodeId x) {
    const double now = engine.now();
    // Copy: purge mutates the partner list.
    const auto partner_list = state.ledger().partners(x);
    const std::vector<NodeId> partner_copy(partner_list.begin(), partner_list.end());
    for (NodeId y : partner_copy) {
      result.pairs_decayed += state.purge_pair_type(x, y, now);
    }
  };

  // Poisson generation per edge. Under faults an arrival on a downed edge
  // is dropped, and rate degradation thins the survivors (accept with
  // probability rate_factor — an exact Poisson rate scaling).
  const auto& graph_edges = generation_graph.edges();
  for (std::size_t e = 0; e < graph_edges.size(); ++e) {
    const graph::Edge edge = graph_edges[e];
    engine.poisson_process(config.generation_rate, [&, edge, e] {
      if (fault_plan) {
        if (!fault_plan->edge_up(e)) return true;
        const double factor = fault_plan->rate_factor();
        if (factor < 1.0 && !fault_thin_rng.bernoulli(factor)) return true;
      }
      state.add_pair(edge.a(), edge.b(), engine.now(), config.raw_fidelity);
      ++result.pairs_generated;
      return true;
    });
  }

  // Per-node swap/distill scans.
  const bool freshest = config.policy == PairingPolicy::kFreshest;
  for (NodeId x = 0; x < n; ++x) {
    engine.poisson_process(config.scan_rate, [&, x] {
      if (fault_plan && !fault_plan->node_up(x)) return true;  // crashed
      const double now = engine.now();
      purge_node(x);
      const auto candidate = balancer.best_swap(state.ledger(), x);
      if (candidate) {
        const sim::TrackedPair left =
            state.take_pair(x, candidate->left, now, freshest);
        const sim::TrackedPair right =
            state.take_pair(x, candidate->right, now, freshest);
        const double fused = quantum::swap_fidelity(state.fidelity_now(left, now),
                                                    state.fidelity_now(right, now));
        ++result.swaps;
        if (fused >= config.usable_fidelity) {
          state.add_pair(candidate->left, candidate->right, now, fused);
        } else {
          ++result.swap_outputs_discarded;
        }
        return true;
      }
      if (!config.distillation_enabled) return true;
      // No preferable swap: boost a weak pair type instead.
      const NodeId best_peer = pick_distill_peer(state, config, x, now);
      if (best_peer == x) return true;
      const sim::TrackedPair a = state.take_pair(x, best_peer, now, freshest);
      const sim::TrackedPair b = state.take_pair(x, best_peer, now, freshest);
      const quantum::DistillationStep step = quantum::bbpssw(
          state.fidelity_now(a, now), state.fidelity_now(b, now));
      if (decision_rng.bernoulli(step.success_probability) &&
          step.output_fidelity >= config.usable_fidelity) {
        state.add_pair(x, best_peer, now, step.output_fidelity);
        ++result.distillations;
      } else {
        ++result.distillation_failures;
      }
      return true;
    });
  }

  // Head-of-line consumption check, frequent relative to the scan rate.
  engine.every(0.25 / config.scan_rate, [&] {
    consumer.try_consume(engine.now());
    return true;
  });

  // Fault rounds on the same cadence: advance the plan, purge crashed
  // nodes' stored pairs, note episode boundaries for the consumer.
  if (fault_plan) {
    std::uint64_t fault_round = 0;
    fault_plan->advance(fault_round);
    consumer.note_fault_round(fault_plan->degraded(), 0.0);
    engine.every(0.25 / config.scan_rate, [&] {
      ++fault_round;
      const std::vector<NodeId>& crashed = fault_plan->advance(fault_round);
      for (const NodeId x : crashed) {
        result.pairs_purged_by_faults += state.purge_node(x);
      }
      consumer.note_fault_round(fault_plan->degraded(), engine.now());
      return true;
    });
  }

  engine.run(config.duration);
  result.pairs_in_storage_at_end = state.ledger().total_pairs();
  if (fault_plan) {
    const sim::FaultStats& fault_stats = fault_plan->stats();
    result.availability = fault_stats.availability();
    result.fault_rounds_degraded = fault_stats.degraded_rounds;
    result.node_crashes = fault_stats.node_crashes;
    result.link_downs = fault_stats.link_downs;
  }
  return result;
}

/// Sharded fidelity: the same physics as fixed time slices of phase
/// kernels. Per slice: decohere (sharded per-bucket purge) -> generate
/// (per-edge Poisson arrivals from keyed streams, merged in canonical
/// edge order) -> decide (per-node scan events drawn from keyed streams,
/// decisions computed against the slice snapshot across node shards) ->
/// commit (all scan events executed serially in canonical (timestamp,
/// node id) order, each re-validated against the live state) -> consume
/// (head-of-line at the slice boundary). Every draw is keyed per (slice,
/// entity[, event]) so results are bit-identical for every threads/shards
/// setting.
FidelitySimResult run_fidelity_sharded(const graph::Graph& generation_graph,
                                       const Workload& workload,
                                       const FidelitySimConfig& config) {
  const std::size_t n = generation_graph.node_count();
  sim::NetworkState state(generation_graph, config.seed, config.tick,
                          decay_model(config));
  const MaxMinBalancer balancer{DistillationMatrix(1.0)};
  // The swap rule runs at D = 1: partners are eligible from count 2, so
  // marking for the cached best_swap can skip sub-threshold mutations.
  state.ledger().set_reader_threshold(2);
  FidelitySimResult result;
  Consumer consumer{workload, config, state, result};
  const bool freshest = config.policy == PairingPolicy::kFreshest;

  // Fault plan: one fault round per slice. Advanced serially at the slice
  // start, so every shard reads the same up/down masks and rate factor.
  std::optional<sim::FaultPlan> fault_plan;
  if (config.faults.enabled()) {
    fault_plan.emplace(generation_graph, config.faults, config.seed);
  }

  // Slice width mirrors the sequential consumption-check cadence; it is a
  // semantic constant of the sharded discipline, not a tuning knob.
  const double dt = 0.25 / config.scan_rate;
  const auto slices =
      static_cast<std::uint64_t>(std::ceil(config.duration / dt));

  /// A node's slice decision, computed against the slice snapshot: either
  /// a swap candidate or a distillation peer (peer == node when neither).
  struct NodeDecision {
    std::optional<SwapCandidate> swap;
    NodeId distill_peer = 0;
  };
  const std::size_t edge_count = generation_graph.edge_count();
  std::vector<std::vector<double>> edge_arrivals(edge_count);
  std::vector<std::vector<double>> node_scans(n);
  // Flat per-entity stream buffers: each shard batch-derives its keyed
  // streams into its slice (Rng::keyed_batch hoists the per-slice sponge
  // prefix; every element is bit-identical to the scalar derivation).
  std::vector<util::Rng> edge_rngs(edge_count);
  std::vector<util::Rng> node_rngs(n);
  std::vector<NodeDecision> decisions(n);
  std::vector<MaxMinBalancer::Scratch> shard_scratch(state.shard_count());
  for (MaxMinBalancer::Scratch& scratch : shard_scratch) scratch.reserve(n);
  // Incremental decide: cache each node's count-based best_swap and
  // recompute it only when the ledger's dirty bit says a count the node
  // reads changed since its last computation (generation merges, commits,
  // purges — every mutation funnels through the ledger). The distill-peer
  // fallback reads time-varying fidelities, so it is never cached.
  const bool incremental = config.tick.incremental_decide;
  std::vector<std::optional<SwapCandidate>> swap_cache(n);

  struct ScanEvent {
    double time = 0.0;
    NodeId node = 0;
    std::uint32_t index = 0;  // per-node event index within the slice
  };
  std::vector<ScanEvent> events;

  for (std::uint64_t s = 0; s < slices; ++s) {
    util::this_thread_check_cancelled();
    const double t0 = static_cast<double>(s) * dt;
    const double t1 = std::min(config.duration, t0 + dt);
    const double span = t1 - t0;

    // 0. Fault phase (serial): advance the plan to this slice, destroy
    // crashed nodes' stored pairs (purged, not decayed), note episode
    // boundaries for the consumer.
    if (fault_plan) {
      const std::vector<NodeId>& crashed = fault_plan->advance(s);
      for (const NodeId x : crashed) {
        result.pairs_purged_by_faults += state.purge_node(x);
      }
      consumer.note_fault_round(fault_plan->degraded(), t0);
    }
    const bool masked = fault_plan && fault_plan->any_edge_down();
    const double generation_rate =
        config.generation_rate * (fault_plan ? fault_plan->rate_factor() : 1.0);

    // 1. Decohere kernel: purge every bucket at the slice start. The
    // slice boundary is also the marking-epoch boundary for the cached
    // best_swap dirty bits (fidelity clears bits per scanned node, so it
    // resets the budget explicitly instead of draining).
    state.ledger().reset_marking_budget();
    result.pairs_decayed += state.decohere_all(t0);

    // 2. Generation kernel: per-edge Poisson arrivals from streams keyed
    // (seed, generation-tag, slice, edge); merged in canonical edge order.
    {
      const sim::PhaseStopwatch stopwatch(state.timers().generate_ns);
      state.pool().run_shards(state.shard_count(), [&](std::size_t shard) {
        const auto [begin, end] = sim::ParallelTickEngine::shard_range(
            edge_count, state.shard_count(), shard);
        util::Rng::keyed_batch(
            config.seed, sim::stream_tag::kGeneration, s, begin,
            std::span<util::Rng>(edge_rngs.data() + begin, end - begin));
        for (std::size_t e = begin; e < end; ++e) {
          edge_arrivals[e].clear();
          // A downed edge skips its draw entirely — its stream is keyed
          // per (slice, edge), so no other edge's stream shifts.
          if (masked && !fault_plan->edge_up(e)) continue;
          util::Rng& rng = edge_rngs[e];
          const std::uint64_t arrivals = rng.poisson(generation_rate * span);
          for (std::uint64_t k = 0; k < arrivals; ++k) {
            edge_arrivals[e].push_back(t0 + rng.uniform_double() * span);
          }
          std::sort(edge_arrivals[e].begin(), edge_arrivals[e].end());
        }
      });
      const auto& edges = generation_graph.edges();
      for (std::size_t e = 0; e < edge_count; ++e) {
        for (const double t : edge_arrivals[e]) {
          state.add_pair(edges[e].a(), edges[e].b(), t, config.raw_fidelity);
          ++result.pairs_generated;
        }
      }
    }

    // 3. Decide kernel: per-node scan times from streams keyed (seed,
    // event-tag, slice, node), and the node's decision against the
    // post-generation snapshot, fanned across node shards. The count-based
    // best_swap comes from the per-node cache unless the node is dirty; an
    // unchanged readable view implies an unchanged decision, so this is
    // exactly the full recomputation.
    {
      const sim::PhaseStopwatch stopwatch(state.timers().decide_ns);
      state.pool().run_shards(state.shard_count(), [&](std::size_t shard) {
        const auto [begin, end] = sim::ParallelTickEngine::shard_range(
            n, state.shard_count(), shard);
        MaxMinBalancer::Scratch& scratch = shard_scratch[shard];
        util::Rng::keyed_batch(
            config.seed, sim::stream_tag::kEventTimes, s, begin,
            std::span<util::Rng>(node_rngs.data() + begin, end - begin));
        for (std::size_t node = begin; node < end; ++node) {
          const auto x = static_cast<NodeId>(node);
          node_scans[x].clear();
          if (fault_plan && !fault_plan->node_up(x)) {
            decisions[x] = NodeDecision{std::nullopt, x};  // crashed: no scans
            continue;
          }
          util::Rng& rng = node_rngs[node];
          const std::uint64_t scans = rng.poisson(config.scan_rate * span);
          for (std::uint64_t k = 0; k < scans; ++k) {
            node_scans[x].push_back(t0 + rng.uniform_double() * span);
          }
          std::sort(node_scans[x].begin(), node_scans[x].end());
          decisions[x] = NodeDecision{std::nullopt, x};
          if (node_scans[x].empty()) continue;
          if (incremental && !state.ledger().dirty(x)) {
            decisions[x].swap = swap_cache[x];
          } else {
            state.ledger().clear_dirty(x);
            swap_cache[x] = balancer.best_swap(state.ledger(), x, scratch);
            decisions[x].swap = swap_cache[x];
          }
          if (!decisions[x].swap && config.distillation_enabled) {
            decisions[x].distill_peer = pick_distill_peer(state, config, x, t0);
          }
        }
      });
    }

    // 4. Commit kernel: all scan events in canonical order — ascending
    // timestamp, ties broken by node id then per-node event index. The
    // (node, index) pair is unique, so sorting on the full key is a total
    // order and an in-place std::sort lands the same permutation a stable
    // time-only sort of the node-major insertion order would — without
    // stable_sort's per-slice temporary buffer.
    {
      const sim::PhaseStopwatch stopwatch(state.timers().commit_ns);
      events.clear();
      for (NodeId x = 0; x < static_cast<NodeId>(n); ++x) {
        for (std::size_t k = 0; k < node_scans[x].size(); ++k) {
          events.push_back(ScanEvent{node_scans[x][k], x,
                                     static_cast<std::uint32_t>(k)});
        }
      }
      std::sort(events.begin(), events.end(),
                [](const ScanEvent& lhs, const ScanEvent& rhs) {
                  if (lhs.time != rhs.time) return lhs.time < rhs.time;
                  if (lhs.node != rhs.node) return lhs.node < rhs.node;
                  return lhs.index < rhs.index;
                });
      for (const ScanEvent& event : events) {
        const NodeId x = event.node;
        const double now = event.time;
        // Lazy purge of x's buckets at the event time (mirrors the
        // sequential scan handler).
        const auto partner_list = state.ledger().partners(x);
        const std::vector<NodeId> partner_copy(partner_list.begin(),
                                               partner_list.end());
        for (NodeId y : partner_copy) {
          result.pairs_decayed += state.purge_pair_type(x, y, now);
        }
        const NodeDecision& decision = decisions[x];
        if (decision.swap) {
          const SwapCandidate& candidate = *decision.swap;
          // Re-validate against the live state: an earlier commit or purge
          // may have consumed the pairs the slice decision relied on.
          if (!balancer.is_preferable(state.ledger(), x, candidate.left,
                                      candidate.right)) {
            continue;
          }
          const sim::TrackedPair left =
              state.take_pair(x, candidate.left, now, freshest);
          const sim::TrackedPair right =
              state.take_pair(x, candidate.right, now, freshest);
          const double fused = quantum::swap_fidelity(
              state.fidelity_now(left, now), state.fidelity_now(right, now));
          ++result.swaps;
          if (fused >= config.usable_fidelity) {
            state.add_pair(candidate.left, candidate.right, now, fused);
          } else {
            ++result.swap_outputs_discarded;
          }
          continue;
        }
        if (decision.distill_peer == x) continue;
        const NodeId peer = decision.distill_peer;
        if (state.ledger().count(x, peer) < 2) continue;  // decision went stale
        const sim::TrackedPair a = state.take_pair(x, peer, now, freshest);
        const sim::TrackedPair b = state.take_pair(x, peer, now, freshest);
        const quantum::DistillationStep step =
            quantum::bbpssw(state.fidelity_now(a, now), state.fidelity_now(b, now));
        // Success draw keyed per (slice, node, event) so it is consumed only
        // by this event, wherever the slice boundaries fall.
        util::Rng draw = util::Rng::keyed(
            config.seed, sim::stream_tag::kEventDraw,
            (s << 20) | event.index, x);
        if (draw.bernoulli(step.success_probability) &&
            step.output_fidelity >= config.usable_fidelity) {
          state.add_pair(x, peer, now, step.output_fidelity);
          ++result.distillations;
        } else {
          ++result.distillation_failures;
        }
      }
    }

    // 5. Consumption kernel at the slice boundary.
    consumer.try_consume(t1);
  }

  result.pairs_in_storage_at_end = state.ledger().total_pairs();
  result.phase = state.timers();
  if (fault_plan) {
    const sim::FaultStats& fault_stats = fault_plan->stats();
    result.availability = fault_stats.availability();
    result.fault_rounds_degraded = fault_stats.degraded_rounds;
    result.node_crashes = fault_stats.node_crashes;
    result.link_downs = fault_stats.link_downs;
  }
  return result;
}

}  // namespace

FidelitySimResult run_fidelity_sim(const graph::Graph& generation_graph,
                                   const Workload& workload,
                                   const FidelitySimConfig& config) {
  require(config.raw_fidelity > config.usable_fidelity,
          "fidelity_sim: raw pairs must be usable when fresh");
  require(config.duration > 0.0, "fidelity_sim: duration must be positive");
  require(config.scan_rate > 0.0, "fidelity_sim: scan rate must be positive");
  require(generation_graph.node_count() >= 3, "fidelity_sim: need at least 3 nodes");
  if (config.tick.mode == sim::TickMode::kSharded) {
    return run_fidelity_sharded(generation_graph, workload, config);
  }
  return run_fidelity_sequential(generation_graph, workload, config);
}

}  // namespace poq::core
