// Fidelity-aware continuous-time simulation (§3.2 / §6 "realistic
// coherence, QEC and distillation overheads").
//
// The round-based evaluation abstracts distillation and loss into the
// scalars D and L. This simulator drops the abstraction: every stored
// Bell pair carries its creation time and creation fidelity; storage
// decoheres it (F(t) = 1/4 + (F0 - 1/4) e^{-t/T}); pairs that sink below
// the usability threshold are discarded (realizing L empirically); swaps
// compose Werner fidelities; and BBPSSW distillation runs explicitly with
// probabilistic success (realizing D empirically). The §6 pairing
// suggestion — "avoiding combining Bell pairs with short expected
// remaining coherence times with those that have longer times" — is a
// policy knob.
//
// Two engines drive it (config.tick.mode). The sequential path runs on
// the deterministic event engine (sim::Engine): Poisson pair generation
// per edge, Poisson swap/distill scans per node, head-of-line
// consumption. The sharded path re-expresses the same physics as phase
// kernels over sim::NetworkState in fixed time slices: per-node event
// sharding draws each entity's Poisson event times from counter-based
// keyed streams, decisions are computed against the slice snapshot in
// parallel, and commits execute in canonical (timestamp, node id) order
// — so results are bit-identical for every threads/shards setting (they
// differ from the sequential event-interleaved discipline).
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "core/workload.hpp"
#include "graph/graph.hpp"
#include "sim/fault_plan.hpp"
#include "sim/parallel_engine.hpp"
#include "util/stats.hpp"

namespace poq::core {

/// Which stored pairs a swap (or distillation) consumes first.
enum class PairingPolicy {
  kFreshest,  // highest current fidelity first (coherence-aware, §6)
  kOldest,    // FIFO: drain the oldest pairs first
};

struct FidelitySimConfig {
  /// Poisson Bell-pair generation rate per generation edge.
  double generation_rate = 1.0;
  /// Fidelity of freshly generated elementary pairs. Multi-hop service
  /// needs headroom: an h-hop swap chain lands at 1/4 + 3/4 p^h with
  /// p = (4F-1)/3, so e.g. four hops of 0.97 links yield ~0.89.
  double raw_fidelity = 0.97;
  /// Poisson rate of per-node swap/distill scans.
  double scan_rate = 1.0;
  /// Memory decoherence time constant T (simulation time units).
  double memory_time_constant = 50.0;
  /// Below this fidelity a stored pair is useless and discarded.
  double usable_fidelity = 0.70;
  /// Consumption (teleportation) requires at least this fidelity.
  double app_fidelity = 0.80;
  /// Run BBPSSW distillation when a pair type has spare low pairs.
  bool distillation_enabled = true;
  PairingPolicy policy = PairingPolicy::kFreshest;
  /// Simulated duration.
  double duration = 500.0;
  std::uint64_t seed = 1;
  /// Intra-run engine selection (sequential event loop vs the sharded
  /// slice-kernel engine) plus its threads/shards knobs.
  sim::TickConcurrency tick;

  /// Fault-injection plan. A fault "round" here is one slice of width
  /// 0.25/scan_rate — the sharded engine advances the plan at every slice
  /// boundary and the sequential engine on a timer of the same period, so
  /// MTBF/MTTR knobs mean the same timescale under both engines. A crash
  /// destroys the node's stored tracked pairs (counted as purged, not
  /// decayed) and halts generation and scans at that node; a downed link
  /// halts generation only. Disabled by default (bit-identical historical
  /// path).
  sim::FaultConfig faults;
};

struct FidelitySimResult {
  std::uint64_t pairs_generated = 0;
  std::uint64_t pairs_decayed = 0;        // discarded below usable_fidelity
  std::uint64_t swaps = 0;
  std::uint64_t swap_outputs_discarded = 0;  // swap result below usable
  std::uint64_t distillations = 0;
  std::uint64_t distillation_failures = 0;
  std::uint64_t requests_satisfied = 0;
  std::uint64_t pairs_in_storage_at_end = 0;

  /// Empirical L of Eq. 3: fraction of created pairs (generated + swap
  /// outputs) that survived to be used rather than decaying.
  [[nodiscard]] double realized_survival() const {
    const double created =
        static_cast<double>(pairs_generated) + static_cast<double>(swaps);
    if (created <= 0.0) return 1.0;
    return 1.0 - static_cast<double>(pairs_decayed) / created;
  }

  /// Empirical D of Eq. 4: pairs destroyed per useful output
  /// (swap inputs + distillation inputs per swap output + distilled pair).
  [[nodiscard]] double realized_distillation_overhead() const;

  util::RunningStats consumed_fidelity;   // fidelity at consumption time
  util::RunningStats request_latency;     // head-of-line wait per request
  util::RunningStats storage_age_at_use;  // how long used pairs sat in memory

  /// Fault-injection resilience counters (zero / availability 1 when
  /// faults are disabled — the historical metric set is untouched).
  double availability = 1.0;
  std::uint64_t fault_rounds_degraded = 0;
  std::uint64_t delivered_under_fault = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t link_downs = 0;
  std::uint64_t pairs_purged_by_faults = 0;
  /// Simulated time from the end of each degraded episode to the next
  /// satisfied request.
  util::RunningStats time_to_recover;

  /// Cumulative wall-clock per slice kernel (sharded engine only; the
  /// sequential event loop is fused and leaves these at zero).
  /// Observability only — outside the determinism contract.
  sim::PhaseTimers phase;
};

/// Run the fidelity-aware simulation of `workload` (head-of-line request
/// order) over `generation_graph`.
[[nodiscard]] FidelitySimResult run_fidelity_sim(const graph::Graph& generation_graph,
                                                 const Workload& workload,
                                                 const FidelitySimConfig& config);

}  // namespace poq::core
