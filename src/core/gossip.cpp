#include "core/gossip.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "sim/network_state.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

namespace poq::core {

namespace {

/// Per-node stale views of everyone else's count rows.
class KnowledgeBase {
 public:
  KnowledgeBase(std::size_t node_count)
      : node_count_(node_count),
        counts_(node_count * node_count * node_count, 0),
        age_(node_count * node_count, 0) {}

  /// Install reporter's row as seen by `owner` at `round`.
  void install(NodeId owner, NodeId reporter, const std::vector<std::uint32_t>& row,
               std::uint32_t round) {
    for (NodeId peer = 0; peer < node_count_; ++peer) {
      counts_[flat(owner, reporter, peer)] = row[peer];
    }
    age_[static_cast<std::size_t>(owner) * node_count_ + reporter] = round;
  }

  [[nodiscard]] std::uint32_t view(NodeId owner, NodeId a, NodeId b) const {
    // Freshest of the two first-hand reports about the (a, b) pair.
    const std::uint32_t age_a = report_round(owner, a);
    const std::uint32_t age_b = report_round(owner, b);
    return age_a >= age_b ? counts_[flat(owner, a, b)] : counts_[flat(owner, b, a)];
  }

  [[nodiscard]] std::uint32_t report_round(NodeId owner, NodeId reporter) const {
    return age_[static_cast<std::size_t>(owner) * node_count_ + reporter];
  }

 private:
  [[nodiscard]] std::size_t flat(NodeId owner, NodeId reporter, NodeId peer) const {
    return (static_cast<std::size_t>(owner) * node_count_ + reporter) * node_count_ +
           peer;
  }

  std::size_t node_count_;
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint32_t> age_;  // round of last report, per (owner, reporter)
};

/// Rotating-window gossip targets of node x at `round` (+ one optimistic
/// peer drawn from `rng`). Shared by both engines; only the rng stream
/// discipline differs (sequential: one shared stream consumed in node
/// order; sharded: a per-(round, node) keyed stream).
std::vector<NodeId> gossip_targets(NodeId x, std::uint32_t round, NodeId node_count,
                                   const GossipConfig& config, util::Rng& rng) {
  std::vector<NodeId> targets;
  for (std::uint32_t k = 0; k < config.fanout; ++k) {
    const auto offset = 1 + (static_cast<std::uint64_t>(round) * config.fanout + k) %
                                (node_count - 1);
    targets.push_back(static_cast<NodeId>((x + offset) % node_count));
  }
  if (config.optimistic_peer) {
    NodeId random_peer = x;
    while (random_peer == x) {
      random_peer = static_cast<NodeId>(rng.uniform_index(node_count));
    }
    targets.push_back(random_peer);
  }
  return targets;
}

/// Node x's true count row as the wire message both engines send.
net::CountUpdate count_update_of(const PairLedger& ledger, NodeId x,
                                 NodeId node_count, std::uint32_t round) {
  net::CountUpdate update;
  update.reporter = x;
  update.version = round;
  update.entries.reserve(node_count - 1);
  for (NodeId peer = 0; peer < node_count; ++peer) {
    if (peer == x) continue;
    update.entries.push_back(
        net::CountUpdate::Entry{peer, ledger.count(x, peer)});
  }
  return update;
}

/// Sharded gossip: the same §6 protocol expressed as phase kernels over
/// the shared NetworkState. Per round: generation kernel (keyed per-edge
/// streams) -> send kernel (canonical node order; the optimistic peer
/// draws from a per-(round, node) keyed stream) -> message-merge kernel
/// (deliveries applied in canonical (send round, sender, target) order)
/// -> decide kernel (best preferable swap under stale views, fanned over
/// node shards against the frozen ledger) -> two-level commit (re-checked
/// against live own counts and the frozen view). Results are
/// bit-identical for every threads/shards setting; they differ from the
/// sequential path, whose in-sweep visibility and shared swap stream are
/// inherently serial.
GossipResult run_gossip_sharded(const graph::Graph& generation_graph,
                                const Workload& workload,
                                const GossipConfig& config) {
  BalancingSimulation sim(generation_graph, workload, config.base);
  sim::NetworkState& state = sim.state();
  const auto node_count = static_cast<NodeId>(generation_graph.node_count());

  KnowledgeBase knowledge(node_count);
  const auto& distances = sim.distances();

  /// One count row in flight: due round, canonical (sender, target) key.
  /// The row is immutable once sent, so the (fanout+1) copies of a
  /// round's report share one allocation.
  struct PendingUpdate {
    double due = 0.0;
    NodeId sender = 0;
    NodeId target = 0;
    std::uint32_t version = 0;
    std::shared_ptr<const std::vector<std::uint32_t>> row;
  };
  std::vector<PendingUpdate> pending;

  GossipResult result;
  double view_age_total = 0.0;
  std::uint64_t view_age_samples = 0;

  while (!sim.finished()) {
    util::this_thread_check_cancelled();
    sim.begin_round();
    sim.fault_phase();
    const auto round = static_cast<std::uint32_t>(sim.round());
    const double now = static_cast<double>(round);

    sim.generation_phase();

    // 1. Send kernel: count rows to the rotating window (+ one optimistic
    // peer from a keyed stream), in canonical node order.
    for (NodeId x = 0; x < node_count; ++x) {
      util::Rng peer_rng = util::Rng::keyed(config.base.seed,
                                            sim::stream_tag::kGossip, round, x);
      const std::vector<NodeId> targets =
          gossip_targets(x, round, node_count, config, peer_rng);
      const net::CountUpdate update =
          count_update_of(sim.ledger(), x, node_count, round);
      std::vector<std::uint32_t> row_values(node_count, 0);
      for (const auto& entry : update.entries) row_values[entry.peer] = entry.count;
      const auto row = std::make_shared<const std::vector<std::uint32_t>>(
          std::move(row_values));
      const std::size_t bytes = net::encoded_size(update);
      for (NodeId target : targets) {
        ++result.control_messages;
        result.control_bytes += bytes;
        pending.push_back(PendingUpdate{
            now + config.latency_per_hop * static_cast<double>(distances[x][target]),
            x, target, round, row});
      }
    }

    // 2. Merge kernel: everything due by this round installs in insertion
    // order — send round, then canonical sender, then target. A report's
    // latency to a fixed target never varies, so per (owner, reporter)
    // installs are already in send order; the canonical order fixes the
    // rest deterministically.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      PendingUpdate& message = pending[i];
      if (message.due <= now) {
        knowledge.install(message.target, message.sender, *message.row,
                          message.version);
        // An install changes what the owner reads at decide time (its
        // beneficiary views, including the freshness tie-break), so the
        // incremental decide must re-run it even if no ledger count it
        // reads moved.
        sim.ledger().mark_dirty(message.target);
        continue;
      }
      if (kept != i) pending[kept] = std::move(message);
      ++kept;
    }
    pending.resize(kept);

    // 3. Decide + two-level commit under stale beneficiary views. The
    // decide scan reads the frozen post-generation ledger; the commit
    // re-check reads live own counts but keeps the decision's view count
    // (views do not move during a sweep).
    const auto first = static_cast<NodeId>(round % node_count);
    for (std::uint32_t attempt = 0; attempt < config.base.swaps_per_node_per_round;
         ++attempt) {
      state.decide_swaps([&](NodeId x, MaxMinBalancer::Scratch& scratch) {
        return sim.balancer().best_swap_with_view(
            sim.ledger(), x,
            [&](NodeId a, NodeId b) { return knowledge.view(x, a, b); }, scratch);
      });
      const sim::NetworkState::CommitStats stats = state.commit_swaps(
          sim.balancer(), first, round, attempt,
          [&](NodeId x, const SwapCandidate& candidate) {
            return sim.balancer().is_preferable_given_beneficiary(
                sim.ledger(), x, candidate.left, candidate.right,
                candidate.beneficiary_count);
          },
          [&](const sim::NetworkState::CommittedSwap& swap) {
            view_age_total +=
                round - std::max(knowledge.report_round(swap.node, swap.candidate.left),
                                 knowledge.report_round(swap.node, swap.candidate.right));
            ++view_age_samples;
          });
      sim.record_extra_swaps(stats.swaps);
      if (stats.swaps == 0) break;
    }

    sim.consumption_phase();
  }

  result.base = sim.result();
  result.mean_view_age =
      view_age_samples > 0 ? view_age_total / static_cast<double>(view_age_samples)
                           : 0.0;
  return result;
}

}  // namespace

GossipResult run_gossip(const graph::Graph& generation_graph, const Workload& workload,
                        const GossipConfig& config) {
  require(config.fanout >= 1, "GossipConfig: fanout must be >= 1");
  if (config.base.tick.mode == sim::TickMode::kSharded) {
    return run_gossip_sharded(generation_graph, workload, config);
  }
  BalancingSimulation sim(generation_graph, workload, config.base);
  const auto node_count = static_cast<NodeId>(generation_graph.node_count());

  KnowledgeBase knowledge(node_count);
  util::Rng gossip_rng = util::Rng(config.base.seed).fork(7);
  util::Rng swap_rng = util::Rng(config.base.seed).fork(8);

  const auto& distances = sim.distances();
  net::ClassicalFabric fabric([&](net::NodeId src, net::NodeId dst) {
    return config.latency_per_hop * static_cast<double>(distances[src][dst]);
  });

  GossipResult result;
  double view_age_total = 0.0;
  std::uint64_t view_age_samples = 0;

  while (!sim.finished()) {
    util::this_thread_check_cancelled();
    sim.begin_round();
    sim.fault_phase();
    const auto round = static_cast<std::uint32_t>(sim.round());
    const double now = static_cast<double>(round);

    sim.generation_phase();

    // 1. Send count rows to the rotating window (+ optimistic peer).
    for (NodeId x = 0; x < node_count; ++x) {
      const std::vector<NodeId> targets =
          gossip_targets(x, round, node_count, config, gossip_rng);
      const net::CountUpdate update =
          count_update_of(sim.ledger(), x, node_count, round);
      for (NodeId target : targets) {
        fabric.send(x, target, now, update);
      }
    }

    // 2. Deliver everything due by this round.
    while (auto envelope = fabric.poll(now)) {
      const auto& update = std::get<net::CountUpdate>(envelope->message);
      std::vector<std::uint32_t> row(node_count, 0);
      for (const auto& entry : update.entries) row[entry.peer] = entry.count;
      knowledge.install(envelope->dst, update.reporter, row,
                        static_cast<std::uint32_t>(update.version));
    }

    // 3. Swap sweep with stale beneficiary views.
    const NodeId first = static_cast<NodeId>(round % node_count);
    for (NodeId offset = 0; offset < node_count; ++offset) {
      const NodeId x = static_cast<NodeId>((first + offset) % node_count);
      for (std::uint32_t attempt = 0;
           attempt < config.base.swaps_per_node_per_round; ++attempt) {
        const auto candidate = sim.balancer().best_swap_with_view(
            sim.ledger(), x, [&](NodeId a, NodeId b) {
              return knowledge.view(x, a, b);
            });
        if (!candidate) break;
        view_age_total += round - std::max(knowledge.report_round(x, candidate->left),
                                           knowledge.report_round(x, candidate->right));
        ++view_age_samples;
        sim.balancer().execute_swap(sim.ledger(), x, candidate->left,
                                    candidate->right, swap_rng);
        sim.record_extra_swaps(1);
      }
    }

    sim.consumption_phase();
  }

  const net::TrafficStats traffic = fabric.stats(net::MessageType::kCountUpdate);
  result.base = sim.result();
  result.control_messages = traffic.messages;
  result.control_bytes = traffic.bytes;
  result.mean_view_age =
      view_age_samples > 0 ? view_age_total / static_cast<double>(view_age_samples)
                           : 0.0;
  return result;
}

}  // namespace poq::core
