// Partial-knowledge balancing via count gossip (§6).
//
// §4 assumes "immediate global knowledge of all buffers"; §6 suggests "a
// BitTorrent-like approach ... where each node knows only the status of a
// rotating but small number of neighbors, would intuitively scale well."
// GossipSimulation implements that: each round every node sends its true
// count row to a rotating window of peers (plus one random optimistic
// peer), messages travel over the classical fabric with hop-distance
// latency, and swap decisions read *stale views* for beneficiary counts
// (a node's own counts are always ground truth — it owns those qubits).
// Classical overhead is accounted in encoded bytes per message.
//
// Two tick engines drive the round (config.base.tick.mode): the legacy
// sequential loop, and the sharded phase-kernel path — deterministic
// per-round message merge in canonical sender order, swap decisions
// fanned over node shards against the frozen ledger, and the two-level
// commit — whose results are bit-identical for every threads/shards
// setting (see docs/ARCHITECTURE.md).
#pragma once

#include <cstdint>

#include "core/balancing_sim.hpp"

namespace poq::core {

struct GossipConfig {
  BalancingConfig base;
  /// Rotating peers contacted per round (the unchoke window size).
  std::uint32_t fanout = 2;
  /// Also contact one uniformly random peer per round ("optimistic
  /// unchoke").
  bool optimistic_peer = true;
  /// Classical latency per generation-graph hop, in rounds.
  double latency_per_hop = 1.0;
};

struct GossipResult {
  BalancingResult base;
  std::uint64_t control_messages = 0;
  std::uint64_t control_bytes = 0;
  /// Mean age (rounds) of the beneficiary views actually used at swap
  /// decisions; 0 would be the paper's global-knowledge assumption.
  double mean_view_age = 0.0;
};

[[nodiscard]] GossipResult run_gossip(const graph::Graph& generation_graph,
                                      const Workload& workload,
                                      const GossipConfig& config);

}  // namespace poq::core
