#include "core/hybrid.hpp"

#include <cmath>

#include "core/planned_path.hpp"
#include "graph/shortest_path.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

namespace poq::core {

namespace {

/// Try to produce the head request's pairs by nested swapping along a
/// shortest entanglement-graph path. Returns the swaps spent, or 0 if no
/// viable path exists.
double attempt_assist(BalancingSimulation& sim, const NodePair& pair,
                      double distillation, std::uint32_t max_hops) {
  PairLedger& ledger = sim.ledger();
  graph::Graph entanglement = ledger.entanglement_graph(1);
  // A direct pair that exists but is too weak to consume would be found as
  // a 1-edge "path"; route around it so the assist can top the count up.
  entanglement.remove_edge(pair.first, pair.second);
  const auto path = graph::shortest_path(entanglement, pair.first, pair.second);
  if (!path || path->size() < 3) return 0.0;
  const std::size_t hops = path->size() - 1;
  if (hops > max_hops) return 0.0;

  // Consumption will destroy D raw (x,y) pairs, so the assist must
  // manufacture ceil(D) of them; top-level usable_need = 1 already yields
  // D raw top pairs in compute_nested_demand's accounting.
  NestedDemand demand = compute_nested_demand(hops, distillation);
  for (std::size_t k = 0; k + 1 < path->size(); ++k) {
    const auto have = ledger.count((*path)[k], (*path)[k + 1]);
    if (static_cast<double>(have) < std::ceil(demand.edge_raw_demand[k])) {
      return 0.0;  // some span pair cannot cover its share
    }
  }
  // Execute: consume the span pairs, credit the end-to-end raw pairs.
  for (std::size_t k = 0; k + 1 < path->size(); ++k) {
    ledger.remove((*path)[k], (*path)[k + 1],
                  static_cast<std::uint32_t>(std::ceil(demand.edge_raw_demand[k])));
  }
  const auto produced =
      static_cast<std::uint32_t>(std::max(1.0, std::ceil(distillation)));
  ledger.add(pair.first, pair.second, produced);
  return demand.swap_count;
}

}  // namespace

HybridResult run_hybrid(const graph::Graph& generation_graph, const Workload& workload,
                        const HybridConfig& config) {
  BalancingSimulation sim(generation_graph, workload, config.base);
  HybridResult result;

  while (!sim.finished()) {
    util::this_thread_check_cancelled();
    sim.begin_round();
    sim.fault_phase();
    sim.generation_phase();
    sim.swap_phase();

    // Assist the head request if it is still blocked after balancing.
    // head_pair() serves both modes: the fixed-sequence cursor and the
    // streaming pending queue.
    if (const std::optional<NodePair> head = sim.head_pair()) {
      const NodePair& pair = *head;
      const auto need = static_cast<std::uint32_t>(
          std::max(1.0, std::ceil(config.base.distillation)));
      if (sim.ledger().count(pair.first, pair.second) < need) {
        ++result.assists_attempted;
        const double spent = attempt_assist(sim, pair, config.base.distillation,
                                            config.max_assist_hops);
        if (spent > 0.0) {
          ++result.assists_succeeded;
          result.assist_swaps += spent;
          sim.record_extra_swaps(static_cast<std::uint64_t>(std::llround(spent)));
        }
      }
    }

    sim.consumption_phase();
  }

  result.base = sim.result();
  return result;
}

}  // namespace poq::core
