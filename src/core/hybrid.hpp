// Hybrid oblivious + minimal planning (§6).
//
// "Path-oblivious can also be viewed as a 'seeding' for requests. If the
// Bell pair is not immediately available upon consumption request, the
// consuming pair can then find a shortest path among the existing Bell
// pairs (which could be much shorter than their shortest path on the
// underlying graph)." The hybrid driver runs the normal balancing rounds
// and, whenever the head request is blocked, tries to assemble its pair
// by nested swapping over a shortest path in the *entanglement* graph —
// consuming existing counts, not generation edges. This mitigates the
// starvation the paper observed on long paths.
//
// The balancing rounds inherit config.base.tick, so the hybrid driver
// runs on the sharded deterministic engine whenever its base does; the
// assist step itself is sequential (it routes over the live ledger
// between the swap and consumption phases).
#pragma once

#include <cstdint>

#include "core/balancing_sim.hpp"

namespace poq::core {

struct HybridConfig {
  BalancingConfig base;
  /// Assist only when the entanglement path has at most this many hops
  /// (long paths would cost more than waiting for the balancer).
  std::uint32_t max_assist_hops = 8;
};

struct HybridResult {
  BalancingResult base;
  std::uint64_t assists_attempted = 0;
  std::uint64_t assists_succeeded = 0;
  double assist_swaps = 0.0;
};

[[nodiscard]] HybridResult run_hybrid(const graph::Graph& generation_graph,
                                      const Workload& workload,
                                      const HybridConfig& config);

}  // namespace poq::core
