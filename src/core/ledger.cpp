#include "core/ledger.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace poq::core {

namespace {

/// Relaxed atomic view of a plain byte/word the two-level commit may touch
/// from concurrent workers. Phase barriers order everything else.
template <typename T>
std::atomic_ref<T> relaxed(T& value) {
  return std::atomic_ref<T>(value);
}

/// Index of y in the sorted partner list, or npos when absent.
std::size_t partner_slot(const std::vector<NodeId>& partners, NodeId y) {
  const auto it = std::lower_bound(partners.begin(), partners.end(), y);
  if (it == partners.end() || *it != y) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - partners.begin());
}

}  // namespace

PairLedger::PairLedger(std::size_t node_count)
    : node_count_(node_count),
      rows_(node_count),
      min_histogram_(kMinHistogramCap + 1),
      histogram_delta_(kMinHistogramCap + 1, 0) {
  require(node_count >= 2, "PairLedger: need at least 2 nodes");
  // Small networks pre-reserve the dense worst case so steady-state
  // mutation never allocates; megascale networks grow rows amortized.
  if (node_count <= kFullReserveNodeLimit) {
    for (Row& row : rows_) {
      row.partners.reserve(node_count - 1);
      row.counts.reserve(node_count - 1);
    }
  }
  // Every unordered pair starts at count 0.
  min_histogram_[0].store(
      static_cast<std::uint64_t>(node_count) * (node_count - 1) / 2,
      std::memory_order_relaxed);
}

void PairLedger::check(NodeId x, NodeId y) const {
  require(x < node_count_ && y < node_count_, "PairLedger: node out of range");
  require(x != y, "PairLedger: no self-pairs (g(x,x) = c(x,x) = 0)");
}

std::uint32_t PairLedger::row_count(NodeId x, NodeId y) const {
  const Row& row = rows_[x];
  const std::size_t slot = partner_slot(row.partners, y);
  return slot == static_cast<std::size_t>(-1) ? 0 : row.counts[slot];
}

std::uint32_t PairLedger::count(NodeId x, NodeId y) const {
  check(x, y);
  // Search the smaller row; both rows belong to the pair's endpoints, so
  // under the two-level commit this never reads a row a concurrent
  // component may be mutating.
  return rows_[x].partners.size() <= rows_[y].partners.size()
             ? row_count(x, y)
             : row_count(y, x);
}

std::uint32_t PairLedger::degree(NodeId x) const {
  require(x < node_count_, "PairLedger::degree: node out of range");
  return static_cast<std::uint32_t>(rows_[x].partners.size());
}

void PairLedger::histogram_move(std::uint32_t from, std::uint32_t to) {
  const std::uint32_t from_bucket = std::min(from, kMinHistogramCap);
  const std::uint32_t to_bucket = std::min(to, kMinHistogramCap);
  if (from_bucket == to_bucket) return;
  min_histogram_[from_bucket].fetch_sub(1, std::memory_order_relaxed);
  min_histogram_[to_bucket].fetch_add(1, std::memory_order_relaxed);
  // Keep the hint a lower bound on the true minimum: a pair landing below
  // it drags it down; it is only ever raised by a quiescent query.
  std::uint32_t hint = min_hint_.load(std::memory_order_relaxed);
  while (to_bucket < hint &&
         !min_hint_.compare_exchange_weak(hint, to_bucket,
                                          std::memory_order_relaxed)) {
  }
}

void PairLedger::mark_pair_readers(NodeId x, NodeId y, std::uint32_t before,
                                   std::uint32_t after) {
  if (mark_overflow_.load(std::memory_order_relaxed) != 0) return;
  // The endpoints read C_x(y) (eligibility + donor capacity) only once it
  // can reach the eligibility threshold; below it, the scan consults the
  // count solely through the threshold predicate, which this move left
  // false on both sides.
  if (before >= reader_threshold_ || after >= reader_threshold_) {
    mark_dirty(x);
    mark_dirty(y);
  }
  if (dirty_count_.load(std::memory_order_relaxed) == node_count_) return;
  // The other readers of C_x(y) are the nodes holding *eligible* pairs
  // toward both x and y (they see its exact value as a beneficiary
  // count, at any magnitude). Scan the smaller row; membership and
  // eligibility in the other row are O(log deg) probes. Under the
  // two-level commit only the component owning {x, y} mutates these rows,
  // so the scan never races a concurrent writer.
  NodeId small = x;
  NodeId big = y;
  if (rows_[big].partners.size() < rows_[small].partners.size()) {
    std::swap(small, big);
  }
  const Row& row = rows_[small];
  const auto deg = static_cast<std::uint32_t>(row.partners.size());
  // Precision has a per-epoch budget; once the scans have cost more than
  // O(n) this epoch, latch everything-dirty and stop paying (dense
  // regimes re-decide everything anyway).
  if (mark_budget_.fetch_sub(deg, std::memory_order_relaxed) -
          static_cast<std::int64_t>(deg) <=
      0) {
    mark_overflow_.store(1, std::memory_order_relaxed);
    return;
  }
  for (std::uint32_t i = 0; i < deg; ++i) {
    const NodeId z = row.partners[i];
    if (z != big && row.counts[i] >= reader_threshold_ &&
        row_count(big, z) >= reader_threshold_) {
      mark_dirty(z);
    }
  }
}

std::uint32_t PairLedger::bump_pair(NodeId x, NodeId y, std::uint32_t amount) {
  Row& row_x = rows_[x];
  Row& row_y = rows_[y];
  const auto it_x = std::lower_bound(row_x.partners.begin(),
                                     row_x.partners.end(), y);
  std::uint32_t before = 0;
  if (it_x == row_x.partners.end() || *it_x != y) {
    const auto slot_x = static_cast<std::size_t>(it_x - row_x.partners.begin());
    row_x.partners.insert(it_x, y);
    row_x.counts.insert(row_x.counts.begin() + static_cast<long>(slot_x),
                        amount);
    const auto it_y = std::lower_bound(row_y.partners.begin(),
                                       row_y.partners.end(), x);
    const auto slot_y = static_cast<std::size_t>(it_y - row_y.partners.begin());
    row_y.partners.insert(it_y, x);
    row_y.counts.insert(row_y.counts.begin() + static_cast<long>(slot_y),
                        amount);
  } else {
    const auto slot_x = static_cast<std::size_t>(it_x - row_x.partners.begin());
    before = row_x.counts[slot_x];
    row_x.counts[slot_x] = before + amount;
    const std::size_t slot_y = partner_slot(row_y.partners, x);
    row_y.counts[slot_y] = before + amount;
  }
  return before;
}

void PairLedger::add(NodeId x, NodeId y, std::uint32_t amount) {
  check(x, y);
  if (amount == 0) return;
  const std::uint32_t before = bump_pair(x, y, amount);
  total_.fetch_add(amount, std::memory_order_relaxed);
  histogram_move(before, before + amount);
  if (!dirty_.empty()) mark_pair_readers(x, y, before, before + amount);
}

template <typename AmountOf>
std::uint64_t PairLedger::add_edges_impl(std::span<const graph::Edge> edges,
                                         AmountOf amount_of) {
  // Per-edge work is the same row mutation and (when tracking is on) the
  // same reader marking, in the same order, as the scalar add loop — the
  // mark-budget trajectory and the dirty frontier are bit-identical. The
  // global bookkeeping (total, histogram moves, min hint) commutes across
  // the batch and nothing reads it mid-merge, so it accumulates locally
  // and flushes once.
  std::uint64_t added = 0;
  std::uint32_t lowest_to = UINT32_MAX;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const NodeId x = edges[i].a();
    const NodeId y = edges[i].b();
    check(x, y);
    const std::uint32_t amount = amount_of(i);
    if (amount == 0) continue;
    const std::uint32_t before = bump_pair(x, y, amount);
    const std::uint32_t after = before + amount;
    added += amount;
    const std::uint32_t from = std::min(before, kMinHistogramCap);
    const std::uint32_t to = std::min(after, kMinHistogramCap);
    if (from != to) {
      --histogram_delta_[from];
      ++histogram_delta_[to];
      lowest_to = std::min(lowest_to, to);
    }
    if (!dirty_.empty()) mark_pair_readers(x, y, before, after);
  }
  if (added == 0) return 0;
  total_.fetch_add(added, std::memory_order_relaxed);
  for (std::uint32_t bucket = 0; bucket <= kMinHistogramCap; ++bucket) {
    const std::int64_t delta = histogram_delta_[bucket];
    if (delta != 0) {
      min_histogram_[bucket].fetch_add(static_cast<std::uint64_t>(delta),
                                       std::memory_order_relaxed);
      histogram_delta_[bucket] = 0;
    }
  }
  // Sequential histogram_moves end the hint at min(hint, all to-buckets);
  // one CAS-lower to the batch minimum lands on the same value.
  std::uint32_t hint = min_hint_.load(std::memory_order_relaxed);
  while (lowest_to < hint &&
         !min_hint_.compare_exchange_weak(hint, lowest_to,
                                          std::memory_order_relaxed)) {
  }
  return added;
}

std::uint64_t PairLedger::add_edges(std::span<const graph::Edge> edges,
                                    std::uint32_t amount) {
  return add_edges_impl(edges, [amount](std::size_t) { return amount; });
}

std::uint64_t PairLedger::add_edges(std::span<const graph::Edge> edges,
                                    std::span<const std::uint32_t> amounts) {
  require(amounts.size() == edges.size(),
          "PairLedger::add_edges: amounts must match edges");
  const std::uint32_t* data = amounts.data();
  return add_edges_impl(edges, [data](std::size_t i) { return data[i]; });
}

std::uint64_t PairLedger::add_edges(std::span<const graph::Edge> edges,
                                    std::uint32_t base,
                                    std::span<const std::uint8_t> extra) {
  require(extra.size() == edges.size(),
          "PairLedger::add_edges: extra flags must match edges");
  const std::uint8_t* data = extra.data();
  return add_edges_impl(edges, [base, data](std::size_t i) {
    return base + static_cast<std::uint32_t>(data[i]);
  });
}

void PairLedger::remove(NodeId x, NodeId y, std::uint32_t amount) {
  check(x, y);
  if (amount == 0) return;
  Row& row_x = rows_[x];
  Row& row_y = rows_[y];
  const std::size_t slot_x = partner_slot(row_x.partners, y);
  require(slot_x != static_cast<std::size_t>(-1) &&
              row_x.counts[slot_x] >= amount,
          "PairLedger::remove: count underflow");
  const std::uint32_t before = row_x.counts[slot_x];
  const std::uint32_t after = before - amount;
  row_x.counts[slot_x] = after;
  const std::size_t slot_y = partner_slot(row_y.partners, x);
  row_y.counts[slot_y] = after;
  total_.fetch_sub(amount, std::memory_order_relaxed);
  histogram_move(before, after);
  if (!dirty_.empty()) mark_pair_readers(x, y, before, after);
  if (after == 0) {
    row_x.partners.erase(row_x.partners.begin() + static_cast<long>(slot_x));
    row_x.counts.erase(row_x.counts.begin() + static_cast<long>(slot_x));
    row_y.partners.erase(row_y.partners.begin() + static_cast<long>(slot_y));
    row_y.counts.erase(row_y.counts.begin() + static_cast<long>(slot_y));
  }
}

std::span<const NodeId> PairLedger::partners(NodeId x) const {
  require(x < node_count_, "PairLedger::partners: node out of range");
  return {rows_[x].partners.data(), rows_[x].partners.size()};
}

std::uint32_t PairLedger::minimum_pair_count() const {
  std::uint32_t bucket = min_hint_.load(std::memory_order_relaxed);
  while (bucket < kMinHistogramCap &&
         min_histogram_[bucket].load(std::memory_order_relaxed) == 0) {
    ++bucket;
  }
  min_hint_.store(bucket, std::memory_order_relaxed);
  if (bucket < kMinHistogramCap) return bucket;
  // Every pair count is >= the histogram cap, so every unordered pair is
  // live in some row: the exact minimum comes from the row scan (rare —
  // it means every pair holds 256+ pairs).
  std::uint32_t minimum = UINT32_MAX;
  for (NodeId x = 0; x < node_count_; ++x) {
    const Row& row = rows_[x];
    for (std::size_t i = 0; i < row.partners.size(); ++i) {
      if (row.partners[i] > x) minimum = std::min(minimum, row.counts[i]);
    }
  }
  return minimum;
}

graph::Graph PairLedger::entanglement_graph(std::uint32_t threshold) const {
  graph::Graph result(node_count_);
  for (NodeId x = 0; x < node_count_; ++x) {
    const Row& row = rows_[x];
    for (std::size_t i = 0; i < row.partners.size(); ++i) {
      if (row.partners[i] > x && row.counts[i] >= threshold) {
        result.add_edge(x, row.partners[i]);
      }
    }
  }
  return result;
}

std::uint64_t PairLedger::memory_bytes() const {
  // Logical accounting with fixed constants: per-node row headers (two
  // vector headers + the dirty slot) plus live entries (partner id +
  // count, both symmetric copies counted) plus the histogram.
  constexpr std::uint64_t kPerNodeBytes = 56;
  constexpr std::uint64_t kPerEntryBytes =
      sizeof(NodeId) + sizeof(std::uint32_t);
  std::uint64_t bytes = kPerNodeBytes * node_count_;
  for (const Row& row : rows_) bytes += kPerEntryBytes * row.partners.size();
  bytes += (kMinHistogramCap + 1) * sizeof(std::uint64_t);
  return bytes;
}

void PairLedger::enable_dirty_tracking() {
  if (!dirty_.empty()) return;
  dirty_.assign(node_count_, 0);
  mark_budget_.store(
      kMarkingBudgetPerNode * static_cast<std::int64_t>(node_count_),
      std::memory_order_relaxed);
  mark_all_dirty();
}

void PairLedger::reset_marking_budget() {
  if (dirty_.empty()) return;
  // Marks were skipped while the overflow latch was up, so converting the
  // latch back to bits must be conservative: everything dirty.
  if (mark_overflow_.load(std::memory_order_relaxed) != 0) {
    mark_all_dirty();
    mark_overflow_.store(0, std::memory_order_relaxed);
  }
  mark_budget_.store(
      kMarkingBudgetPerNode * static_cast<std::int64_t>(node_count_),
      std::memory_order_relaxed);
}

void PairLedger::set_reader_threshold(std::uint32_t minimum_eligible_count) {
  require(minimum_eligible_count >= 1,
          "PairLedger: reader threshold must be >= 1");
  reader_threshold_ = minimum_eligible_count;
}

void PairLedger::mark_dirty(NodeId x) {
  if (dirty_.empty()) return;
  // Dirty bits are monotone within a marking epoch (only serial phase
  // boundaries clear them), so an already-set bit needs no RMW — the
  // common re-mark in a hot merge is a plain load. Two concurrent callers
  // passing the load still race benignly on the exchange: exactly one
  // sees 0 and bumps the count.
  auto bit = relaxed(dirty_[x]);
  if (bit.load(std::memory_order_relaxed) != 0) return;
  if (bit.exchange(1, std::memory_order_relaxed) == 0) {
    dirty_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PairLedger::mark_all_dirty() {
  if (dirty_.empty()) return;
  std::fill(dirty_.begin(), dirty_.end(), 1);
  dirty_count_.store(node_count_, std::memory_order_relaxed);
}

void PairLedger::clear_dirty(NodeId x) {
  if (dirty_.empty()) return;
  if (relaxed(dirty_[x]).exchange(0, std::memory_order_relaxed) == 1) {
    dirty_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::size_t PairLedger::drain_dirty(std::vector<NodeId>& out) {
  if (dirty_.empty()) return 0;
  mark_budget_.store(
      kMarkingBudgetPerNode * static_cast<std::int64_t>(node_count_),
      std::memory_order_relaxed);
  if (mark_overflow_.load(std::memory_order_relaxed) != 0) {
    // The epoch overflowed: marks were latched, not recorded — the whole
    // network is the frontier.
    mark_overflow_.store(0, std::memory_order_relaxed);
    std::fill(dirty_.begin(), dirty_.end(), 0);
    dirty_count_.store(0, std::memory_order_relaxed);
    for (NodeId x = 0; x < node_count_; ++x) out.push_back(x);
    return node_count_;
  }
  if (dirty_count_.load(std::memory_order_relaxed) == 0) return 0;
  std::size_t appended = 0;
  for (NodeId x = 0; x < node_count_; ++x) {
    if (dirty_[x] != 0) {
      dirty_[x] = 0;
      out.push_back(x);
      ++appended;
    }
  }
  dirty_count_.store(0, std::memory_order_relaxed);
  return appended;
}

}  // namespace poq::core
