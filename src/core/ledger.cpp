#include "core/ledger.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace poq::core {

namespace {

/// Relaxed atomic view of a plain byte/word the two-level commit may touch
/// from concurrent workers. Phase barriers order everything else.
template <typename T>
std::atomic_ref<T> relaxed(T& value) {
  return std::atomic_ref<T>(value);
}

}  // namespace

PairLedger::PairLedger(std::size_t node_count)
    : node_count_(node_count),
      row_stride_(node_count - 1),
      counts_(node_count * node_count, 0),
      partner_arena_(node_count * (node_count - 1), 0),
      degree_(node_count, 0),
      min_histogram_(kMinHistogramCap + 1) {
  require(node_count >= 2, "PairLedger: need at least 2 nodes");
  // Every unordered pair starts at count 0.
  min_histogram_[0].store(
      static_cast<std::uint64_t>(node_count) * (node_count - 1) / 2,
      std::memory_order_relaxed);
}

void PairLedger::check(NodeId x, NodeId y) const {
  require(x < node_count_ && y < node_count_, "PairLedger: node out of range");
  require(x != y, "PairLedger: no self-pairs (g(x,x) = c(x,x) = 0)");
}

std::uint32_t PairLedger::count(NodeId x, NodeId y) const {
  check(x, y);
  return counts_[index(x, y)];
}

std::uint32_t PairLedger::degree(NodeId x) const {
  require(x < node_count_, "PairLedger::degree: node out of range");
  return degree_[x];
}

void PairLedger::insert_partner(NodeId x, NodeId y) {
  NodeId* row = partner_row(x);
  NodeId* end = row + degree_[x];
  NodeId* pos = std::lower_bound(row, end, y);
  std::copy_backward(pos, end, end + 1);
  *pos = y;
  ++degree_[x];
}

void PairLedger::erase_partner(NodeId x, NodeId y) {
  NodeId* row = partner_row(x);
  NodeId* end = row + degree_[x];
  NodeId* pos = std::lower_bound(row, end, y);
  std::copy(pos + 1, end, pos);
  --degree_[x];
}

void PairLedger::histogram_move(std::uint32_t from, std::uint32_t to) {
  const std::uint32_t from_bucket = std::min(from, kMinHistogramCap);
  const std::uint32_t to_bucket = std::min(to, kMinHistogramCap);
  if (from_bucket == to_bucket) return;
  min_histogram_[from_bucket].fetch_sub(1, std::memory_order_relaxed);
  min_histogram_[to_bucket].fetch_add(1, std::memory_order_relaxed);
  // Keep the hint a lower bound on the true minimum: a pair landing below
  // it drags it down; it is only ever raised by a quiescent query.
  std::uint32_t hint = min_hint_.load(std::memory_order_relaxed);
  while (to_bucket < hint &&
         !min_hint_.compare_exchange_weak(hint, to_bucket,
                                          std::memory_order_relaxed)) {
  }
}

void PairLedger::mark_pair_readers(NodeId x, NodeId y, std::uint32_t before,
                                   std::uint32_t after) {
  if (mark_overflow_.load(std::memory_order_relaxed) != 0) return;
  // The endpoints read C_x(y) (eligibility + donor capacity) only once it
  // can reach the eligibility threshold; below it, the scan consults the
  // count solely through the threshold predicate, which this move left
  // false on both sides.
  if (before >= reader_threshold_ || after >= reader_threshold_) {
    mark_dirty(x);
    mark_dirty(y);
  }
  if (dirty_count_.load(std::memory_order_relaxed) == node_count_) return;
  // The other readers of C_x(y) are the nodes holding *eligible* pairs
  // toward both x and y (they see its exact value as a beneficiary
  // count, at any magnitude). Scan the smaller partner row; membership
  // and eligibility in the other row are O(1) matrix probes. Under the
  // two-level commit only the component owning {x, y} mutates these rows,
  // so the scan never races a concurrent writer.
  NodeId small = x;
  NodeId big = y;
  if (degree_[big] < degree_[small]) std::swap(small, big);
  const NodeId* row = partner_row(small);
  const std::uint32_t deg = degree_[small];
  // Precision has a per-epoch budget; once the scans have cost more than
  // O(n) this epoch, latch everything-dirty and stop paying (dense
  // regimes re-decide everything anyway).
  if (mark_budget_.fetch_sub(deg, std::memory_order_relaxed) -
          static_cast<std::int64_t>(deg) <=
      0) {
    mark_overflow_.store(1, std::memory_order_relaxed);
    return;
  }
  for (std::uint32_t i = 0; i < deg; ++i) {
    const NodeId z = row[i];
    if (z != big && counts_[index(small, z)] >= reader_threshold_ &&
        counts_[index(big, z)] >= reader_threshold_) {
      mark_dirty(z);
    }
  }
}

void PairLedger::add(NodeId x, NodeId y, std::uint32_t amount) {
  check(x, y);
  if (amount == 0) return;
  std::uint32_t& forward = counts_[index(x, y)];
  if (forward == 0) {
    insert_partner(x, y);
    insert_partner(y, x);
  }
  const std::uint32_t before = forward;
  forward += amount;
  counts_[index(y, x)] = forward;
  total_.fetch_add(amount, std::memory_order_relaxed);
  histogram_move(before, forward);
  if (!dirty_.empty()) mark_pair_readers(x, y, before, forward);
}

void PairLedger::remove(NodeId x, NodeId y, std::uint32_t amount) {
  check(x, y);
  if (amount == 0) return;
  std::uint32_t& forward = counts_[index(x, y)];
  require(forward >= amount, "PairLedger::remove: count underflow");
  const std::uint32_t before = forward;
  forward -= amount;
  counts_[index(y, x)] = forward;
  total_.fetch_sub(amount, std::memory_order_relaxed);
  histogram_move(before, forward);
  if (!dirty_.empty()) mark_pair_readers(x, y, before, forward);
  if (forward == 0) {
    erase_partner(x, y);
    erase_partner(y, x);
  }
}

std::span<const NodeId> PairLedger::partners(NodeId x) const {
  require(x < node_count_, "PairLedger::partners: node out of range");
  return {partner_row(x), degree_[x]};
}

std::uint32_t PairLedger::minimum_pair_count() const {
  std::uint32_t bucket = min_hint_.load(std::memory_order_relaxed);
  while (bucket < kMinHistogramCap &&
         min_histogram_[bucket].load(std::memory_order_relaxed) == 0) {
    ++bucket;
  }
  min_hint_.store(bucket, std::memory_order_relaxed);
  if (bucket < kMinHistogramCap) return bucket;
  // Every pair count is >= the histogram cap: the exact minimum needs the
  // dense scan (rare — it means every unordered pair holds 256+ pairs).
  std::uint32_t minimum = UINT32_MAX;
  for (NodeId x = 0; x < node_count_; ++x) {
    for (NodeId y = static_cast<NodeId>(x + 1); y < node_count_; ++y) {
      minimum = std::min(minimum, counts_[index(x, y)]);
    }
  }
  return minimum;
}

graph::Graph PairLedger::entanglement_graph(std::uint32_t threshold) const {
  graph::Graph result(node_count_);
  for (NodeId x = 0; x < node_count_; ++x) {
    for (NodeId y : partners(x)) {
      if (y > x && counts_[index(x, y)] >= threshold) result.add_edge(x, y);
    }
  }
  return result;
}

void PairLedger::enable_dirty_tracking() {
  if (!dirty_.empty()) return;
  dirty_.assign(node_count_, 0);
  mark_budget_.store(
      kMarkingBudgetPerNode * static_cast<std::int64_t>(node_count_),
      std::memory_order_relaxed);
  mark_all_dirty();
}

void PairLedger::reset_marking_budget() {
  if (dirty_.empty()) return;
  // Marks were skipped while the overflow latch was up, so converting the
  // latch back to bits must be conservative: everything dirty.
  if (mark_overflow_.load(std::memory_order_relaxed) != 0) {
    mark_all_dirty();
    mark_overflow_.store(0, std::memory_order_relaxed);
  }
  mark_budget_.store(
      kMarkingBudgetPerNode * static_cast<std::int64_t>(node_count_),
      std::memory_order_relaxed);
}

void PairLedger::set_reader_threshold(std::uint32_t minimum_eligible_count) {
  require(minimum_eligible_count >= 1,
          "PairLedger: reader threshold must be >= 1");
  reader_threshold_ = minimum_eligible_count;
}

void PairLedger::mark_dirty(NodeId x) {
  if (dirty_.empty()) return;
  if (relaxed(dirty_[x]).exchange(1, std::memory_order_relaxed) == 0) {
    dirty_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PairLedger::mark_all_dirty() {
  if (dirty_.empty()) return;
  std::fill(dirty_.begin(), dirty_.end(), 1);
  dirty_count_.store(node_count_, std::memory_order_relaxed);
}

void PairLedger::clear_dirty(NodeId x) {
  if (dirty_.empty()) return;
  if (relaxed(dirty_[x]).exchange(0, std::memory_order_relaxed) == 1) {
    dirty_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::size_t PairLedger::drain_dirty(std::vector<NodeId>& out) {
  if (dirty_.empty()) return 0;
  mark_budget_.store(
      kMarkingBudgetPerNode * static_cast<std::int64_t>(node_count_),
      std::memory_order_relaxed);
  if (mark_overflow_.load(std::memory_order_relaxed) != 0) {
    // The epoch overflowed: marks were latched, not recorded — the whole
    // network is the frontier.
    mark_overflow_.store(0, std::memory_order_relaxed);
    std::fill(dirty_.begin(), dirty_.end(), 0);
    dirty_count_.store(0, std::memory_order_relaxed);
    for (NodeId x = 0; x < node_count_; ++x) out.push_back(x);
    return node_count_;
  }
  if (dirty_count_.load(std::memory_order_relaxed) == 0) return 0;
  std::size_t appended = 0;
  for (NodeId x = 0; x < node_count_; ++x) {
    if (dirty_[x] != 0) {
      dirty_[x] = 0;
      out.push_back(x);
      ++appended;
    }
  }
  dirty_count_.store(0, std::memory_order_relaxed);
  return appended;
}

}  // namespace poq::core
