#include "core/ledger.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace poq::core {

PairLedger::PairLedger(std::size_t node_count)
    : node_count_(node_count),
      counts_(node_count * node_count, 0),
      partners_(node_count) {
  require(node_count >= 2, "PairLedger: need at least 2 nodes");
}

void PairLedger::check(NodeId x, NodeId y) const {
  require(x < node_count_ && y < node_count_, "PairLedger: node out of range");
  require(x != y, "PairLedger: no self-pairs (g(x,x) = c(x,x) = 0)");
}

std::uint32_t PairLedger::count(NodeId x, NodeId y) const {
  check(x, y);
  return counts_[index(x, y)];
}

void PairLedger::add(NodeId x, NodeId y, std::uint32_t amount) {
  check(x, y);
  if (amount == 0) return;
  std::uint32_t& forward = counts_[index(x, y)];
  if (forward == 0) {
    auto insert_sorted = [](std::vector<NodeId>& list, NodeId value) {
      list.insert(std::lower_bound(list.begin(), list.end(), value), value);
    };
    insert_sorted(partners_[x], y);
    insert_sorted(partners_[y], x);
  }
  forward += amount;
  counts_[index(y, x)] = forward;
  total_.fetch_add(amount, std::memory_order_relaxed);
}

void PairLedger::remove(NodeId x, NodeId y, std::uint32_t amount) {
  check(x, y);
  if (amount == 0) return;
  std::uint32_t& forward = counts_[index(x, y)];
  require(forward >= amount, "PairLedger::remove: count underflow");
  forward -= amount;
  counts_[index(y, x)] = forward;
  total_.fetch_sub(amount, std::memory_order_relaxed);
  if (forward == 0) {
    auto erase_sorted = [](std::vector<NodeId>& list, NodeId value) {
      list.erase(std::lower_bound(list.begin(), list.end(), value));
    };
    erase_sorted(partners_[x], y);
    erase_sorted(partners_[y], x);
  }
}

std::span<const NodeId> PairLedger::partners(NodeId x) const {
  require(x < node_count_, "PairLedger::partners: node out of range");
  return partners_[x];
}

std::uint32_t PairLedger::minimum_pair_count() const {
  std::uint32_t minimum = UINT32_MAX;
  for (NodeId x = 0; x < node_count_; ++x) {
    for (NodeId y = x + 1; y < node_count_; ++y) {
      minimum = std::min(minimum, counts_[index(x, y)]);
      if (minimum == 0) return 0;
    }
  }
  return minimum;
}

graph::Graph PairLedger::entanglement_graph(std::uint32_t threshold) const {
  graph::Graph result(node_count_);
  for (NodeId x = 0; x < node_count_; ++x) {
    for (NodeId y : partners_[x]) {
      if (y > x && counts_[index(x, y)] >= threshold) result.add_edge(x, y);
    }
  }
  return result;
}

}  // namespace poq::core
