// Network-wide Bell-pair count state C_x(y).
//
// §4: "each node x maintains a count C_x(y) of the number of Bell pairs it
// stores that are shared with each y in the network (note C_x(y) =
// C_y(x))". Bell pairs between the same endpoints are interchangeable, so
// a symmetric count matrix is the complete state. PairLedger is that
// matrix plus per-node partner sets for fast swap-candidate enumeration,
// and doubles as the instantaneous entanglement graph (§6).
//
// Hot-path layout: the counts live in per-node sparse rows — two parallel
// sorted arrays (partner ids + counts) per node, so memory is
// O(nodes + live pair types), never O(n^2). Below kFullReserveNodeLimit
// nodes every row pre-reserves the dense worst case, so steady-state
// add/remove never allocates (the zero-allocation hot-path contract);
// above it rows grow amortized — the megascale regime, where a dense
// reserve would itself be the n^2 allocation this layout exists to avoid.
// The ledger also maintains two incremental structures:
//
//   * a count-of-counts histogram (bucketed at kMinHistogramCap) backing
//     minimum_pair_count() without the O(n^2) matrix scan — the dense
//     scan remains only as the fallback when every pair count has
//     overflowed the histogram range;
//   * an optional per-node dirty set for the incremental swap-decide
//     kernel: when enabled, every count mutation marks exactly the nodes
//     whose readable state changed — the two endpoints (they own the
//     counts) plus the common partners of the changed pair (the nodes
//     that read C_x(y) as a §4 beneficiary count). An unchanged readable
//     view implies an unchanged best-swap decision, so a decide kernel
//     that re-runs only over the dirty frontier is exactly equivalent to
//     a full rescan (sim::NetworkState::decide_swaps leans on this).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "graph/graph.hpp"

namespace poq::core {

/// Symmetric Bell-pair counts over a fixed node set.
class PairLedger {
 public:
  explicit PairLedger(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const { return node_count_; }

  [[nodiscard]] std::uint32_t count(NodeId x, NodeId y) const;

  /// Add `amount` pairs between x and y (x != y).
  void add(NodeId x, NodeId y, std::uint32_t amount = 1);

  /// Batched canonical-order merge: exactly equivalent to calling
  /// add(edges[i].a(), edges[i].b(), amount) for i ascending — same rows, same
  /// reader marks in the same order, same histogram/min-hint/total — but
  /// with the global bookkeeping accumulated in pre-sized local scratch
  /// and applied once per batch instead of once per edge. This is the
  /// generation merge's hot path. Serial phase contexts only:
  /// total_pairs()/minimum_pair_count() are not coherent mid-call.
  /// Returns the total amount added.
  std::uint64_t add_edges(std::span<const graph::Edge> edges,
                          std::uint32_t amount = 1);

  /// Per-edge amounts variant (amounts.size() == edges.size()); zero
  /// amounts are skipped exactly like add(x, y, 0).
  std::uint64_t add_edges(std::span<const graph::Edge> edges,
                          std::span<const std::uint32_t> amounts);

  /// Bernoulli-rounding variant: edge i adds base + extra[i] pairs
  /// (extra holds 0/1 flags, e.g. a batched fractional-rate draw).
  std::uint64_t add_edges(std::span<const graph::Edge> edges,
                          std::uint32_t base,
                          std::span<const std::uint8_t> extra);

  /// Remove `amount` pairs; requires count(x, y) >= amount.
  void remove(NodeId x, NodeId y, std::uint32_t amount = 1);

  /// Total pairs currently stored (each pair counted once).
  [[nodiscard]] std::uint64_t total_pairs() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Nodes y with count(x, y) > 0, ascending.
  [[nodiscard]] std::span<const NodeId> partners(NodeId x) const;

  /// Number of partners of x (the length of partners(x)).
  [[nodiscard]] std::uint32_t degree(NodeId x) const;

  /// Smallest count over all (unordered) node pairs, including zeroes.
  /// Served from the incremental count histogram; falls back to the dense
  /// matrix scan only when every pair count is >= kMinHistogramCap.
  /// Like count(), exact when no commit phase is in flight.
  [[nodiscard]] std::uint32_t minimum_pair_count() const;

  /// Snapshot of pairs with count >= threshold as an undirected graph
  /// (the entanglement graph the hybrid protocol routes over, §6).
  [[nodiscard]] graph::Graph entanglement_graph(std::uint32_t threshold = 1) const;

  // --- incremental-decide dirty set ------------------------------------
  // Disabled (and free) by default; sim::NetworkState enables it for the
  // sharded phase-kernel engine. Marking may run concurrently from the
  // two-level commit's disjoint components (marks are relaxed atomic
  // set-bits); draining/clearing is a serial phase operation.

  /// Turn on dirty tracking; every node starts dirty.
  void enable_dirty_tracking();
  [[nodiscard]] bool dirty_tracking() const { return !dirty_.empty(); }
  /// Minimum count at which a partner becomes *eligible* for the §4 scan
  /// (the smallest integer C with C - D >= 1, i.e. ceil(D + 1) for a
  /// uniform distillation D). Tightens the marking: a node reads a
  /// partner's exact count only once that partner is eligible, and it
  /// reads a beneficiary count C_x(y) only when both x and y are eligible
  /// partners — so a mutation that stays strictly below the threshold on
  /// both sides marks no endpoint, and beneficiary readers are filtered
  /// by their own eligibility toward the pair. The default (1) assumes
  /// nothing (any nonzero count may be read) and is always safe; callers
  /// with a uniform D may raise it. Protocol-exact, not a heuristic:
  /// under-threshold counts are consulted only through the >= threshold
  /// predicate itself, which such a mutation cannot flip.
  void set_reader_threshold(std::uint32_t minimum_eligible_count);
  [[nodiscard]] std::uint32_t reader_threshold() const {
    return reader_threshold_;
  }
  [[nodiscard]] bool dirty(NodeId x) const {
    return !dirty_.empty() &&
           (mark_overflow_.load(std::memory_order_relaxed) != 0 ||
            dirty_[x] != 0);
  }
  /// Currently dirty nodes (0 when tracking is off; node_count when the
  /// marking epoch overflowed and everything counts as dirty).
  [[nodiscard]] std::size_t dirty_count() const {
    if (dirty_.empty()) return 0;
    if (mark_overflow_.load(std::memory_order_relaxed) != 0) {
      return node_count_;
    }
    return dirty_count_.load(std::memory_order_relaxed);
  }
  /// Mark one node dirty (e.g. a gossip view install changed what the
  /// node would read at decide time). No-op when tracking is off.
  void mark_dirty(NodeId x);
  void mark_all_dirty();
  /// Clear one node's bit: the caller has just recomputed its decision.
  void clear_dirty(NodeId x);
  /// Append the dirty nodes (ascending) to `out`, clearing their bits.
  /// Returns how many were appended. Serial contexts only. Starts a new
  /// marking epoch (see kMarkingBudgetPerNode).
  std::size_t drain_dirty(std::vector<NodeId>& out);
  /// Start a new marking epoch without draining (consumers that clear
  /// bits node by node, like the fidelity slice kernels, call this at
  /// their serial phase boundary). If the previous epoch overflowed its
  /// budget, every node is re-marked dirty first. Serial contexts only.
  void reset_marking_budget();

  /// Precise reader marking is itself O(min-degree) per mutation; in
  /// dense regimes (every node's counts moving every round) that work
  /// buys nothing — everything ends up dirty anyway. Each marking epoch
  /// (decide-to-decide) therefore has a probe budget of
  /// kMarkingBudgetPerNode * node_count; once spent, the ledger latches
  /// "everything dirty" and marking becomes O(1) per mutation for the
  /// rest of the epoch. Over-marking is always safe (dirty nodes just
  /// recompute), so this bounds the marking overhead at O(n) per epoch
  /// without touching the equivalence proof. Sparse steady states never
  /// come close to the budget.
  static constexpr std::int64_t kMarkingBudgetPerNode = 8;

  /// Histogram range for minimum_pair_count maintenance: counts at or
  /// above the cap share one overflow bucket.
  static constexpr std::uint32_t kMinHistogramCap = 256;

  /// Below this node count every row pre-reserves node_count-1 slots
  /// (dense worst case, <= ~8 MB total) so steady-state mutation never
  /// allocates; above it rows grow amortized and memory stays
  /// O(nodes + live pair types).
  static constexpr std::size_t kFullReserveNodeLimit = 1024;

  /// Deterministic logical memory accounting: element counts times fixed
  /// per-element constants (sizes, not capacities), so the value is
  /// bit-identical across compilers/allocators and bench gates can
  /// compare it at 1e-9 tolerance.
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  /// One node's pairs: sorted partner ids with parallel counts. Both
  /// symmetric entries of a pair are maintained (C_x(y) = C_y(x)).
  struct Row {
    std::vector<NodeId> partners;
    std::vector<std::uint32_t> counts;
  };

  void check(NodeId x, NodeId y) const;
  /// Count of (x, y) read from x's row (0 when absent).
  [[nodiscard]] std::uint32_t row_count(NodeId x, NodeId y) const;
  /// The row mutation shared by add and add_edges: insert-or-increment
  /// both symmetric entries by `amount` (> 0); returns the count before.
  std::uint32_t bump_pair(NodeId x, NodeId y, std::uint32_t amount);
  /// Shared body of the add_edges overloads; `amount_of(i)` yields the
  /// i-th edge's amount.
  template <typename AmountOf>
  std::uint64_t add_edges_impl(std::span<const graph::Edge> edges,
                               AmountOf amount_of);
  /// Move one unordered pair between histogram buckets + maintain the
  /// lower-bound hint. Relaxed atomics: safe under the two-level commit.
  void histogram_move(std::uint32_t from, std::uint32_t to);
  /// Mark everything that reads C_x(y) as it moves before -> after: the
  /// endpoints (unless the count stays strictly under the reader
  /// threshold on both sides) and the eligible common partners.
  void mark_pair_readers(NodeId x, NodeId y, std::uint32_t before,
                         std::uint32_t after);

  std::size_t node_count_;
  std::vector<Row> rows_;                       // sparse symmetric counts
  /// Atomic so the two-level swap commit may mutate node-disjoint entries
  /// from concurrent workers (the rows they touch are disjoint then; the
  /// running total is the one shared word). Relaxed is enough: the
  /// commit's phase barrier orders everything else.
  std::atomic<std::uint64_t> total_{0};

  /// count value -> number of unordered pairs holding it (counts >=
  /// kMinHistogramCap collapse into the last bucket). Relaxed atomics for
  /// the same reason as total_.
  std::vector<std::atomic<std::uint64_t>> min_histogram_;
  /// Lower bound on the true minimum; raised only at quiescent queries.
  mutable std::atomic<std::uint32_t> min_hint_{0};

  // Dirty set (empty vector = tracking off).
  std::vector<std::uint8_t> dirty_;             // relaxed atomic_ref marks
  std::atomic<std::size_t> dirty_count_{0};
  std::uint32_t reader_threshold_ = 1;
  /// Probes left in this marking epoch; overflow latches all-dirty.
  std::atomic<std::int64_t> mark_budget_{0};
  std::atomic<std::uint8_t> mark_overflow_{0};

  /// add_edges scratch: per-bucket histogram deltas accumulated over a
  /// batch and flushed once (pre-sized to kMinHistogramCap + 1, zeroed
  /// after each flush — the batch path never allocates).
  std::vector<std::int64_t> histogram_delta_;
};

}  // namespace poq::core
