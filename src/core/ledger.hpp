// Network-wide Bell-pair count state C_x(y).
//
// §4: "each node x maintains a count C_x(y) of the number of Bell pairs it
// stores that are shared with each y in the network (note C_x(y) =
// C_y(x))". Bell pairs between the same endpoints are interchangeable, so
// a symmetric count matrix is the complete state. PairLedger is that
// matrix plus per-node partner sets for fast swap-candidate enumeration,
// and doubles as the instantaneous entanglement graph (§6).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "graph/graph.hpp"

namespace poq::core {

/// Symmetric Bell-pair counts over a fixed node set.
class PairLedger {
 public:
  explicit PairLedger(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const { return node_count_; }

  [[nodiscard]] std::uint32_t count(NodeId x, NodeId y) const;

  /// Add `amount` pairs between x and y (x != y).
  void add(NodeId x, NodeId y, std::uint32_t amount = 1);

  /// Remove `amount` pairs; requires count(x, y) >= amount.
  void remove(NodeId x, NodeId y, std::uint32_t amount = 1);

  /// Total pairs currently stored (each pair counted once).
  [[nodiscard]] std::uint64_t total_pairs() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Nodes y with count(x, y) > 0, ascending.
  [[nodiscard]] std::span<const NodeId> partners(NodeId x) const;

  /// Smallest count over all (unordered) node pairs, including zeroes.
  [[nodiscard]] std::uint32_t minimum_pair_count() const;

  /// Snapshot of pairs with count >= threshold as an undirected graph
  /// (the entanglement graph the hybrid protocol routes over, §6).
  [[nodiscard]] graph::Graph entanglement_graph(std::uint32_t threshold = 1) const;

 private:
  [[nodiscard]] std::size_t index(NodeId x, NodeId y) const {
    return static_cast<std::size_t>(x) * node_count_ + y;
  }
  void check(NodeId x, NodeId y) const;

  std::size_t node_count_;
  std::vector<std::uint32_t> counts_;           // dense symmetric matrix
  std::vector<std::vector<NodeId>> partners_;   // sorted nonzero partners
  /// Atomic so the two-level swap commit may mutate node-disjoint entries
  /// from concurrent workers (counts_/partners_ slots are disjoint then;
  /// the running total is the one shared word). Relaxed is enough: the
  /// commit's phase barrier orders everything else.
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace poq::core
