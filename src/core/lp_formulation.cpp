#include "core/lp_formulation.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::core {

namespace {

constexpr lp::VarId kNoVar = std::numeric_limits<lp::VarId>::max();

/// Triangular index of the unordered pair (x < y) among C(n,2) pairs.
std::size_t pair_index(std::size_t n, NodeId x, NodeId y) {
  if (x > y) std::swap(x, y);
  return static_cast<std::size_t>(x) * (2 * n - x - 1) / 2 + (y - x - 1);
}

}  // namespace

struct SteadyStateLp::Build {
  lp::LpModel model;
  std::vector<lp::VarId> sigma;      // [center * P + pair_index]
  std::vector<lp::VarId> gen_vars;   // aligned with spec.generation_capacity
  std::vector<lp::VarId> cons_vars;  // aligned with spec.demand (empty when pinned)
  lp::VarId aux = kNoVar;            // M / t / alpha, depending on objective
};

SteadyStateLp::SteadyStateLp(SteadyStateSpec spec) : spec_(std::move(spec)) {
  require(spec_.node_count >= 3, "SteadyStateLp: need at least 3 nodes");
  require(spec_.qec_overhead >= 1.0, "SteadyStateLp: QEC overhead R must be >= 1");
  for (const RatedPair& entry : spec_.generation_capacity) {
    require(entry.pair.second < spec_.node_count, "SteadyStateLp: bad node id");
    require(entry.rate > 0.0, "SteadyStateLp: gamma entries must be positive");
  }
  for (const RatedPair& entry : spec_.demand) {
    require(entry.pair.second < spec_.node_count, "SteadyStateLp: bad node id");
    require(entry.rate >= 0.0, "SteadyStateLp: kappa must be non-negative");
  }
}

std::size_t SteadyStateLp::sigma_variable_count() const {
  const std::size_t n = spec_.node_count;
  return n * ((n - 1) * (n - 2) / 2);
}

SteadyStateLp::Build SteadyStateLp::build(SteadyStateObjective objective) const {
  const std::size_t n = spec_.node_count;
  const std::size_t pairs = n * (n - 1) / 2;
  const bool demand_pinned =
      objective == SteadyStateObjective::kMinTotalGeneration ||
      objective == SteadyStateObjective::kMinMaxGeneration;
  const bool demand_scaled = objective == SteadyStateObjective::kMaxConcurrentScale;

  Build build;
  lp::LpModel& model = build.model;

  // --- sigma_i({a,b}) variables ---
  build.sigma.assign(n * pairs, kNoVar);
  for (NodeId center = 0; center < n; ++center) {
    for (NodeId a = 0; a < n; ++a) {
      if (a == center) continue;
      for (NodeId b = a + 1; b < n; ++b) {
        if (b == center) continue;
        build.sigma[center * pairs + pair_index(n, a, b)] = model.add_nonnegative(
            util::str_cat("sigma_", center, "(", a, ",", b, ")"));
      }
    }
  }

  // --- g variables (bounded by gamma) ---
  build.gen_vars.reserve(spec_.generation_capacity.size());
  for (const RatedPair& entry : spec_.generation_capacity) {
    build.gen_vars.push_back(model.add_variable(
        0.0, entry.rate,
        util::str_cat("g(", entry.pair.first, ",", entry.pair.second, ")")));
  }

  // --- c variables (or pinned / scaled demand) ---
  if (!demand_pinned && !demand_scaled) {
    build.cons_vars.reserve(spec_.demand.size());
    for (const RatedPair& entry : spec_.demand) {
      build.cons_vars.push_back(model.add_variable(
          0.0, entry.rate,
          util::str_cat("c(", entry.pair.first, ",", entry.pair.second, ")")));
    }
  }
  if (demand_scaled) {
    build.aux = model.add_nonnegative("alpha");
  }

  // --- steady-state rows: one per unordered pair ---
  std::vector<lp::LinearExpr> rows(pairs);
  std::vector<double> rhs(pairs, 0.0);

  // Swap terms: sigma_c({a,b}) arrives at (a,b) with +L_ab, departs from
  // (c,a) with -D_ca and from (c,b) with -D_cb (Eqs. 3-4).
  for (NodeId center = 0; center < n; ++center) {
    for (NodeId a = 0; a < n; ++a) {
      if (a == center) continue;
      for (NodeId b = a + 1; b < n; ++b) {
        if (b == center) continue;
        const lp::VarId var = build.sigma[center * pairs + pair_index(n, a, b)];
        rows[pair_index(n, a, b)].push_back(
            lp::Term{var, spec_.survival.at(a, b)});
        rows[pair_index(n, center, a)].push_back(
            lp::Term{var, -spec_.distillation.at(center, a)});
        rows[pair_index(n, center, b)].push_back(
            lp::Term{var, -spec_.distillation.at(center, b)});
      }
    }
  }

  // Generation arrivals, thinned by QEC: +L g / R.
  for (std::size_t e = 0; e < spec_.generation_capacity.size(); ++e) {
    const NodePair& pair = spec_.generation_capacity[e].pair;
    rows[pair_index(n, pair.first, pair.second)].push_back(lp::Term{
        build.gen_vars[e],
        spec_.survival.at(pair.first, pair.second) / spec_.qec_overhead});
  }

  // Consumption departures: -D c (variable, pinned constant, or alpha-scaled).
  for (std::size_t d = 0; d < spec_.demand.size(); ++d) {
    const NodePair& pair = spec_.demand[d].pair;
    const double overhead = spec_.distillation.at(pair.first, pair.second);
    const std::size_t row = pair_index(n, pair.first, pair.second);
    if (demand_pinned) {
      rhs[row] += overhead * spec_.demand[d].rate;
    } else if (demand_scaled) {
      rows[row].push_back(lp::Term{build.aux, -overhead * spec_.demand[d].rate});
    } else {
      rows[row].push_back(lp::Term{build.cons_vars[d], -overhead});
    }
  }

  for (std::size_t r = 0; r < pairs; ++r) {
    model.add_constraint(std::move(rows[r]), lp::Relation::kGreaterEqual, rhs[r]);
  }

  // --- objective ---
  switch (objective) {
    case SteadyStateObjective::kMinTotalGeneration:
      model.set_objective_sense(lp::Sense::kMinimize);
      for (lp::VarId v : build.gen_vars) model.set_objective_coefficient(v, 1.0);
      break;
    case SteadyStateObjective::kMinMaxGeneration: {
      model.set_objective_sense(lp::Sense::kMinimize);
      build.aux = model.add_nonnegative("max_generation");
      for (lp::VarId v : build.gen_vars) {
        model.add_constraint({lp::Term{v, 1.0}, lp::Term{build.aux, -1.0}},
                             lp::Relation::kLessEqual, 0.0);
      }
      model.set_objective_coefficient(build.aux, 1.0);
      break;
    }
    case SteadyStateObjective::kMaxTotalConsumption:
      model.set_objective_sense(lp::Sense::kMaximize);
      for (lp::VarId v : build.cons_vars) model.set_objective_coefficient(v, 1.0);
      break;
    case SteadyStateObjective::kMaxMinConsumption: {
      model.set_objective_sense(lp::Sense::kMaximize);
      build.aux = model.add_nonnegative("min_consumption");
      for (lp::VarId v : build.cons_vars) {
        model.add_constraint({lp::Term{v, 1.0}, lp::Term{build.aux, -1.0}},
                             lp::Relation::kGreaterEqual, 0.0);
      }
      model.set_objective_coefficient(build.aux, 1.0);
      break;
    }
    case SteadyStateObjective::kMaxConcurrentScale:
      model.set_objective_sense(lp::Sense::kMaximize);
      model.set_objective_coefficient(build.aux, 1.0);
      break;
  }
  return build;
}

SteadyStateSolution SteadyStateLp::solve(SteadyStateObjective objective,
                                         const lp::SimplexOptions& options) const {
  const Build built = build(objective);
  const lp::Solution raw = lp::solve(built.model, options);

  SteadyStateSolution solution;
  solution.status = raw.status;
  if (raw.status != lp::SolveStatus::kOptimal) return solution;
  solution.objective = raw.objective;
  solution.max_violation = built.model.max_violation(raw.values);

  const std::size_t n = spec_.node_count;
  const std::size_t pairs = n * (n - 1) / 2;
  for (NodeId center = 0; center < n; ++center) {
    for (NodeId a = 0; a < n; ++a) {
      if (a == center) continue;
      for (NodeId b = a + 1; b < n; ++b) {
        if (b == center) continue;
        const lp::VarId var = built.sigma[center * pairs + pair_index(n, a, b)];
        const double rate = raw.values[var];
        solution.total_swap_rate += rate;
        // 1e-6 keeps anti-degeneracy perturbation residue out of the list.
        if (rate > 1e-6) {
          solution.swap_rates.push_back(SwapRate{center, NodePair(a, b), rate});
        }
      }
    }
  }
  for (std::size_t e = 0; e < spec_.generation_capacity.size(); ++e) {
    const double rate = raw.values[built.gen_vars[e]];
    solution.generation.push_back(RatedPair{spec_.generation_capacity[e].pair, rate});
    solution.total_generation += rate;
  }
  for (std::size_t d = 0; d < spec_.demand.size(); ++d) {
    double rate;
    if (!built.cons_vars.empty()) {
      rate = raw.values[built.cons_vars[d]];
    } else if (objective == SteadyStateObjective::kMaxConcurrentScale) {
      rate = raw.values[built.aux] * spec_.demand[d].rate;
    } else {
      rate = spec_.demand[d].rate;  // pinned
    }
    solution.consumption.push_back(RatedPair{spec_.demand[d].pair, rate});
    solution.total_consumption += rate;
  }
  return solution;
}

SteadyStateSolution SteadyStateLp::solve_lexicographic(
    const lp::SimplexOptions& options) const {
  const SteadyStateSolution first = solve(SteadyStateObjective::kMaxTotalConsumption,
                                          options);
  if (first.status != lp::SolveStatus::kOptimal) return first;

  SteadyStateSpec pinned = spec_;
  pinned.demand.clear();
  for (const RatedPair& achieved : first.consumption) {
    // Shave a whisker off the pinned rates so simplex round-off in the
    // first stage cannot render the second stage infeasible.
    pinned.demand.push_back(
        RatedPair{achieved.pair, std::max(0.0, achieved.rate - 1e-7)});
  }
  const SteadyStateLp second_stage(std::move(pinned));
  SteadyStateSolution second =
      second_stage.solve(SteadyStateObjective::kMinTotalGeneration, options);
  return second;
}

}  // namespace poq::core
