// The paper's path-oblivious LP (§3).
//
// Inputs: maximum generation rates gamma(x,y) (the physical architecture),
// desired consumption rates kappa(x,y) (teleportation demand), per-pair
// distillation overheads D_{x,y}, survival factors L_{x,y}, and a QEC
// overhead R that thins generation to g/R (§3.2). Decision variables are
// the swap rates sigma_i(x,y) — any node may swap any pair of its
// entanglement partners; no path structure is imposed — plus g and c where
// the objective frees them.
//
// Steady-state constraint per unordered pair (x, y)  (Eqs. 1-4):
//
//   L_xy ( g(x,y)/R + sum_i sigma_i(x,y) )
//     >= D_xy ( c(x,y) + sum_i ( sigma_x(i,y) + sigma_y(i,x) ) )
//
// (arrivals >= departures; equality holds at a tight optimum).
//
// Objectives (§3.3): conserve generation when supply is sufficient
// (minimize total or peak g), or share the shortfall fairly when it is
// not (maximize total c, the minimum c, or the largest alpha with
// c = alpha * kappa), plus the lexicographic combination (maximize
// consumption, then produce it with minimal generation).
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace poq::core {

struct RatedPair {
  NodePair pair;
  double rate = 0.0;
};

struct SteadyStateSpec {
  std::size_t node_count = 0;
  /// gamma: maximum generation rate per generating pair (only pairs with
  /// gamma > 0 appear; these edges form the generation graph).
  std::vector<RatedPair> generation_capacity;
  /// kappa: desired consumption rate per demand pair.
  std::vector<RatedPair> demand;
  PairMatrix distillation{1.0};  // D_{x,y} >= 1
  PairMatrix survival{1.0};      // L_{x,y} in (0, 1]
  double qec_overhead = 1.0;     // R >= 1 (physical qubits per logical)
};

enum class SteadyStateObjective {
  kMinTotalGeneration,   // demand pinned at kappa; minimize sum g
  kMinMaxGeneration,     // demand pinned at kappa; minimize max g
  kMaxTotalConsumption,  // g <= gamma, c <= kappa; maximize sum c
  kMaxMinConsumption,    // g <= gamma, c <= kappa; maximize min c
  kMaxConcurrentScale,   // c = alpha kappa; maximize alpha
};

/// A nonzero swap rate sigma_repeater({a, b}).
struct SwapRate {
  NodeId repeater = 0;
  NodePair pair;
  double rate = 0.0;
};

struct SteadyStateSolution {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<SwapRate> swap_rates;      // entries with rate > 1e-9
  std::vector<RatedPair> generation;     // achieved g
  std::vector<RatedPair> consumption;    // achieved c
  double total_generation = 0.0;
  double total_consumption = 0.0;
  double total_swap_rate = 0.0;
  /// Maximum steady-state constraint violation (sanity check; ~0).
  double max_violation = 0.0;
};

/// Builder/solver for the steady-state program.
class SteadyStateLp {
 public:
  explicit SteadyStateLp(SteadyStateSpec spec);

  [[nodiscard]] const SteadyStateSpec& spec() const { return spec_; }

  /// Solve under one §3.3 objective.
  [[nodiscard]] SteadyStateSolution solve(SteadyStateObjective objective,
                                          const lp::SimplexOptions& options = {}) const;

  /// §3.3 third bullet: first maximize total consumption, then rebuild
  /// with the achieved consumption pinned and minimize total generation.
  [[nodiscard]] SteadyStateSolution solve_lexicographic(
      const lp::SimplexOptions& options = {}) const;

  /// Number of sigma variables the formulation creates (for sizing tests).
  [[nodiscard]] std::size_t sigma_variable_count() const;

 private:
  struct Build;
  [[nodiscard]] Build build(SteadyStateObjective objective) const;

  SteadyStateSpec spec_;
};

}  // namespace poq::core
