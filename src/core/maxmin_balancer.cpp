#include "core/maxmin_balancer.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace poq::core {

MaxMinBalancer::MaxMinBalancer(
    DistillationMatrix distillation, BalancerPolicy policy,
    const std::vector<std::vector<std::uint32_t>>* generation_distances)
    : distillation_(std::move(distillation)),
      policy_(policy),
      generation_distances_(generation_distances) {
  require(!policy_.detour_slack.has_value() || generation_distances_ != nullptr,
          "MaxMinBalancer: detour policy requires generation distances");
}

bool MaxMinBalancer::detour_allowed(NodeId x, NodeId a, NodeId b) const {
  if (!policy_.detour_slack) return true;
  const auto& dist = *generation_distances_;
  const std::uint64_t through_x =
      static_cast<std::uint64_t>(dist[a][x]) + dist[x][b];
  const std::uint64_t direct = dist[a][b];
  return through_x <= direct + *policy_.detour_slack;
}

bool MaxMinBalancer::is_preferable(const PairLedger& ledger, NodeId x, NodeId left,
                                   NodeId right) const {
  return is_preferable_given_beneficiary(ledger, x, left, right,
                                         ledger.count(left, right));
}

bool MaxMinBalancer::is_preferable_given_beneficiary(
    const PairLedger& ledger, NodeId x, NodeId left, NodeId right,
    std::uint32_t beneficiary) const {
  require(left != right && left != x && right != x,
          "is_preferable: swap endpoints must be three distinct nodes");
  const double cap_right =
      static_cast<double>(ledger.count(x, right)) - distillation_.at(x, right);
  const double cap_left =
      static_cast<double>(ledger.count(x, left)) - distillation_.at(x, left);
  if (static_cast<double>(beneficiary) + 1.0 > std::min(cap_left, cap_right)) {
    return false;
  }
  return detour_allowed(x, left, right);
}

std::optional<SwapCandidate> MaxMinBalancer::best_swap(const PairLedger& ledger,
                                                       NodeId x) const {
  return best_swap(ledger, x, scratch_);
}

std::optional<SwapCandidate> MaxMinBalancer::best_swap(const PairLedger& ledger,
                                                       NodeId x,
                                                       Scratch& scratch) const {
  return best_swap_with_view(
      ledger, x, [&ledger](NodeId a, NodeId b) { return ledger.count(a, b); },
      scratch);
}

MaxMinBalancer::Execution MaxMinBalancer::execute_swap(PairLedger& ledger, NodeId x,
                                                       NodeId left, NodeId right,
                                                       util::Rng& rng) const {
  const auto rounded = [&rng](double d) {
    const double floor_part = std::floor(d);
    const double frac = d - floor_part;
    auto amount = static_cast<std::uint32_t>(floor_part);
    if (frac > 0.0 && rng.bernoulli(frac)) ++amount;
    return amount;
  };
  Execution execution;
  execution.consumed_left = rounded(distillation_.at(x, left));
  execution.consumed_right = rounded(distillation_.at(x, right));
  ledger.remove(x, left, execution.consumed_left);
  ledger.remove(x, right, execution.consumed_right);
  ledger.add(left, right, 1);
  return execution;
}

SweepStats run_swap_sweep(const MaxMinBalancer& balancer, PairLedger& ledger,
                          NodeId first_node, std::uint32_t swaps_per_node,
                          util::Rng& rng) {
  const auto node_count = static_cast<NodeId>(ledger.node_count());
  SweepStats stats;
  for (NodeId offset = 0; offset < node_count; ++offset) {
    const NodeId x = static_cast<NodeId>((first_node + offset) % node_count);
    for (std::uint32_t attempt = 0; attempt < swaps_per_node; ++attempt) {
      const auto candidate = balancer.best_swap(ledger, x);
      if (!candidate) break;
      const auto execution =
          balancer.execute_swap(ledger, x, candidate->left, candidate->right, rng);
      ++stats.swaps;
      stats.pairs_consumed += execution.consumed_left + execution.consumed_right;
      ++stats.pairs_produced;
    }
  }
  return stats;
}

}  // namespace poq::core
