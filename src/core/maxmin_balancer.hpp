// The paper's max-min distributed swapping protocol (§4).
//
// Node x, holding pairs toward y and y', may perform the swap
// y' <- x -> y. The swap is *preferable* when
//
//   C_y(y') + 1 <= min( C_x(y) - D_{x,y},  C_x(y') - D_{x,y'} )
//
// i.e. x only spends its own counts when the beneficiary pair would still
// be no better off than either donor pair after the swap. Among multiple
// preferable candidates x picks the one with minimal C_y(y'); with
// generation and consumption frozen this greedy process drives the count
// vector to a max-min fair fixed point (no count can rise without lowering
// a smaller one; cf. Jaffe's bottleneck allocation [16]).
//
// §6 extensions implemented as policy knobs:
//   * detour_slack: forbid swaps where x is far off the generation-graph
//     y--y' geodesic ("reducing the likelihood that node i, very distant
//     from both x and y ... implements a swap between x and y").
//   * beneficiary counts can be read through a stale view (gossip.hpp)
//     instead of ground truth.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/ledger.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace poq::core {

/// A chosen swap y' <- x -> y (left = y', right = y).
struct SwapCandidate {
  NodeId left = 0;
  NodeId right = 0;
  /// C_left(right) at decision time (through the decision view).
  std::uint32_t beneficiary_count = 0;
};

/// Optional §6 policy restrictions.
struct BalancerPolicy {
  /// If set, candidate (y, y') at node x is allowed only when
  /// dist(y,x) + dist(x,y') <= dist(y,y') + detour_slack in the
  /// generation graph. Requires distances to be supplied.
  std::optional<std::uint32_t> detour_slack;
};

/// Stateless decision engine for the §4 rule; all mutable state lives in
/// the PairLedger so alternative knowledge models can reuse the logic.
class MaxMinBalancer {
 public:
  /// `generation_distances` (all-pairs hop counts, aligned with node ids)
  /// is required iff policy.detour_slack is set; the caller keeps it alive.
  MaxMinBalancer(DistillationMatrix distillation, BalancerPolicy policy = {},
                 const std::vector<std::vector<std::uint32_t>>* generation_distances =
                     nullptr);

  /// The §4 preferability predicate, evaluated on true counts.
  [[nodiscard]] bool is_preferable(const PairLedger& ledger, NodeId x, NodeId left,
                                   NodeId right) const;

  /// Preferability with the beneficiary count supplied by the caller
  /// (stale-view protocols re-check commits against live *own* counts but
  /// a frozen view of C_left(right)); x's capacities read `ledger`.
  [[nodiscard]] bool is_preferable_given_beneficiary(const PairLedger& ledger,
                                                     NodeId x, NodeId left,
                                                     NodeId right,
                                                     std::uint32_t beneficiary) const;

  /// A partner x holds enough pairs toward to spend on a swap.
  struct Eligible {
    NodeId node;
    double capacity;  // C_x(node) - D_{x,node}
  };

  /// Reusable per-caller scratch for the candidate scan. best_swap is
  /// read-only on the ledger and the balancer, so concurrent callers (the
  /// sharded decide phase) are safe as long as each brings its own
  /// Scratch.
  struct Scratch {
    std::vector<Eligible> eligible;

    /// Pre-size for networks of `node_count` nodes (at most node_count-1
    /// partners are ever eligible), so the per-node scan never allocates.
    void reserve(std::size_t node_count) {
      eligible.reserve(node_count > 0 ? node_count - 1 : 0);
    }
  };

  /// Best preferable swap at x under true (global) knowledge; nullopt when
  /// no candidate is preferable.
  [[nodiscard]] std::optional<SwapCandidate> best_swap(const PairLedger& ledger,
                                                       NodeId x) const;

  /// Thread-safe variant: identical decision, caller-owned scratch.
  [[nodiscard]] std::optional<SwapCandidate> best_swap(const PairLedger& ledger,
                                                       NodeId x,
                                                       Scratch& scratch) const;

  /// Best preferable swap where the *beneficiary* count C_y(y') is read
  /// through `view(y, y')` (possibly stale); x's own counts are always
  /// ground truth (x owns them).
  template <typename View>
  [[nodiscard]] std::optional<SwapCandidate> best_swap_with_view(
      const PairLedger& ledger, NodeId x, View&& view) const {
    return best_swap_with_view(ledger, x, std::forward<View>(view), scratch_);
  }

  /// Thread-safe variant of best_swap_with_view with caller-owned scratch.
  template <typename View>
  [[nodiscard]] std::optional<SwapCandidate> best_swap_with_view(
      const PairLedger& ledger, NodeId x, View&& view, Scratch& scratch) const {
    const auto partner_list = ledger.partners(x);
    std::vector<Eligible>& eligible = scratch.eligible;
    eligible.clear();
    for (NodeId y : partner_list) {
      const double cap =
          static_cast<double>(ledger.count(x, y)) - distillation_.at(x, y);
      if (cap >= 1.0) eligible.push_back(Eligible{y, cap});
    }
    std::optional<SwapCandidate> best;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      for (std::size_t j = i + 1; j < eligible.size(); ++j) {
        const NodeId a = eligible[i].node;
        const NodeId b = eligible[j].node;
        const double cap = std::min(eligible[i].capacity, eligible[j].capacity);
        const std::uint32_t beneficiary = view(a, b);
        if (static_cast<double>(beneficiary) + 1.0 > cap) continue;
        if (!detour_allowed(x, a, b)) continue;
        if (!best || beneficiary < best->beneficiary_count) {
          best = SwapCandidate{a, b, beneficiary};
          if (beneficiary == 0) return best;  // cannot improve further
        }
      }
    }
    return best;
  }

  /// Execute left <- x -> right on the ledger: consumes D_{x,right} pairs
  /// of (x,right) and D_{x,left} of (x,left) (fractional D uses
  /// probabilistic rounding via `rng`), produces one (left,right) pair.
  /// Returns the amounts actually consumed.
  struct Execution {
    std::uint32_t consumed_left = 0;
    std::uint32_t consumed_right = 0;
  };
  Execution execute_swap(PairLedger& ledger, NodeId x, NodeId left, NodeId right,
                         util::Rng& rng) const;

  [[nodiscard]] const DistillationMatrix& distillation() const { return distillation_; }

 private:
  [[nodiscard]] bool detour_allowed(NodeId x, NodeId a, NodeId b) const;

  DistillationMatrix distillation_;
  BalancerPolicy policy_;
  const std::vector<std::vector<std::uint32_t>>* generation_distances_;
  mutable Scratch scratch_;  // single-threaded convenience path only
};

/// Outcome of one network-wide swap sweep.
struct SweepStats {
  std::uint64_t swaps = 0;
  std::uint64_t pairs_consumed = 0;  // donor pairs destroyed (distillation included)
  std::uint64_t pairs_produced = 0;  // one per swap
};

/// Round-robin sweep: give every node (starting at `first_node`) up to
/// `swaps_per_node` best-swap executions. This is the paper's "all nodes
/// perform the swapping process at an identical rate" step.
SweepStats run_swap_sweep(const MaxMinBalancer& balancer, PairLedger& ledger,
                          NodeId first_node, std::uint32_t swaps_per_node,
                          util::Rng& rng);

}  // namespace poq::core
