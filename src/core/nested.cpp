#include "core/nested.hpp"

#include "util/error.hpp"

namespace poq::core {

double nested_swap_cost_paper(std::uint32_t hops, double distillation) {
  require(hops >= 1, "nested_swap_cost_paper: hops must be >= 1");
  require(distillation >= 0.0, "nested_swap_cost_paper: D must be >= 0");
  if (hops == 1) return 0.0;
  if (hops == 2) return distillation;
  return distillation * (nested_swap_cost_paper(hops / 2, distillation) +
                         nested_swap_cost_paper(hops - hops / 2, distillation));
}

double nested_swap_cost_exact(std::uint32_t hops, double distillation) {
  require(hops >= 1, "nested_swap_cost_exact: hops must be >= 1");
  require(distillation >= 0.0, "nested_swap_cost_exact: D must be >= 0");
  if (hops == 1) return 0.0;
  return distillation * (1.0 + nested_swap_cost_exact(hops / 2, distillation) +
                         nested_swap_cost_exact(hops - hops / 2, distillation));
}

double nested_raw_pair_cost(std::uint32_t hops, double distillation) {
  require(hops >= 1, "nested_raw_pair_cost: hops must be >= 1");
  require(distillation >= 0.0, "nested_raw_pair_cost: D must be >= 0");
  if (hops == 1) return distillation;  // one usable elementary pair costs D raw
  return distillation * (nested_raw_pair_cost(hops / 2, distillation) +
                         nested_raw_pair_cost(hops - hops / 2, distillation));
}

}  // namespace poq::core
