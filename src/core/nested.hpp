// Nested-swapping cost model (§5).
//
// The paper's swap-overhead denominator: for a shortest path of n hops
// with uniform distillation overhead D, optimal nested swapping "requires
// s(n) swaps where s(1) = 0, s(2) = D and s(n) = D(s(floor(n/2)) +
// s(ceil(n/2))) for n > 2".
//
// Note the published recurrence omits the joining swap at levels above the
// base case (s(2) = D includes it; n > 2 does not), so with D = 1 it
// yields s(8) = 4 although an 8-hop chain needs 7 swaps. We implement the
// paper's formula verbatim — it defines the reported metric — plus an
// `exact` variant s_e(n) = D(1 + s_e(floor) + s_e(ceil)) that counts every
// swap the recursive protocol performs. EXPERIMENTS.md reports both.
#pragma once

#include <cstdint>

namespace poq::core {

/// The paper's s(n) (verbatim recurrence). Requires n >= 1, d >= 0.
[[nodiscard]] double nested_swap_cost_paper(std::uint32_t hops, double distillation);

/// Exact swap count of the recursive nested protocol (joining swap counted
/// at every level): s(1) = 0, s(n) = D(1 + s(floor) + s(ceil)).
[[nodiscard]] double nested_swap_cost_exact(std::uint32_t hops, double distillation);

/// Raw elementary pairs consumed per usable end-to-end pair under the
/// exact nested protocol, when every use of a pair costs D pairs (the
/// paper's §3.2 accounting): leaves cost D per usable elementary pair.
[[nodiscard]] double nested_raw_pair_cost(std::uint32_t hops, double distillation);

}  // namespace poq::core
