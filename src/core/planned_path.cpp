#include "core/planned_path.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <optional>

#include "core/nested.hpp"
#include "graph/shortest_path.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::core {

namespace {

void expand_demand(std::size_t lo, std::size_t hi, double usable_need,
                   double distillation, NestedDemand& out) {
  const std::size_t hops = hi - lo;
  if (hops == 1) {
    // One usable elementary pair costs D raw pairs from this edge.
    out.edge_raw_demand[lo] += distillation * usable_need;
    return;
  }
  // Each usable pair of this span is distilled from D raw copies; each
  // raw copy takes one joining swap of a usable pair of each half-span.
  const double raw_copies = distillation * usable_need;
  out.swap_count += raw_copies;
  const std::size_t mid = lo + hops / 2;
  expand_demand(lo, mid, raw_copies, distillation, out);
  expand_demand(mid, hi, raw_copies, distillation, out);
}

}  // namespace

NestedDemand compute_nested_demand(std::size_t path_edges, double distillation) {
  require(path_edges >= 1, "compute_nested_demand: need >= 1 edge");
  require(distillation >= 0.0, "compute_nested_demand: D must be >= 0");
  NestedDemand demand;
  demand.edge_raw_demand.assign(path_edges, 0.0);
  expand_demand(0, path_edges, 1.0, distillation, demand);
  return demand;
}

namespace {

struct Connection {
  std::size_t request_index = 0;
  std::vector<std::size_t> edge_indices;   // into graph.edges()
  std::vector<double> remaining;           // per edge_indices entry
  std::vector<double> demand;              // original per-edge demand
  double swap_count = 0.0;
  std::uint32_t admitted_round = 0;

  [[nodiscard]] bool done() const {
    for (double r : remaining) {
      if (r > 1e-9) return false;
    }
    return true;
  }
};

}  // namespace

PlannedPathResult run_planned_path(const graph::Graph& generation_graph,
                                   const Workload& workload,
                                   const PlannedPathConfig& config) {
  require(config.window >= 1, "PlannedPathConfig: window must be >= 1");
  require(config.distillation >= 0.0, "PlannedPathConfig: D must be >= 0");

  PlannedPathResult result;
  util::Rng rng(config.seed);
  util::Rng generation_rng = rng.fork(1);

  std::optional<sim::FaultPlan> fault_plan;
  if (config.faults.enabled()) {
    fault_plan.emplace(generation_graph, config.faults, config.seed);
  }
  bool round_degraded = false;
  bool in_degraded_episode = false;
  bool awaiting_recovery = false;
  std::uint32_t episode_end_round = 0;

  const bool sharded = config.tick.mode == sim::TickMode::kSharded;
  std::unique_ptr<sim::ParallelTickEngine> pool;
  std::size_t shard_count = 1;
  std::vector<std::uint64_t> shard_generated;
  if (sharded) {
    pool = std::make_unique<sim::ParallelTickEngine>(config.tick.threads);
    shard_count =
        pool->resolve_shards(config.tick.shards, generation_graph.edge_count());
    shard_generated.assign(shard_count, 0);
  }

  std::vector<double> buffer(generation_graph.edge_count(), 0.0);
  std::vector<bool> reserved(generation_graph.edge_count(), false);
  std::deque<Connection> active;
  std::size_t next_request = 0;

  const auto admit_head = [&]() -> bool {
    if (next_request >= workload.request_count() || active.size() >= config.window) {
      return false;
    }
    const NodePair& pair = workload.request(next_request);
    const auto path = graph::shortest_path(generation_graph, pair.first, pair.second);
    require(path.has_value(), "run_planned_path: consumer pair disconnected");
    const std::size_t hops = path->size() - 1;

    Connection connection;
    connection.request_index = next_request;
    connection.edge_indices.reserve(hops);
    for (std::size_t i = 0; i + 1 < path->size(); ++i) {
      const auto index = generation_graph.edge_index((*path)[i], (*path)[i + 1]);
      connection.edge_indices.push_back(*index);
    }
    if (config.mode == PlannedPathMode::kConnectionOriented) {
      // Head-of-line: if any edge is reserved by an in-flight connection,
      // the head request (and everything behind it) waits.
      for (std::size_t e : connection.edge_indices) {
        if (reserved[e]) return false;
      }
      for (std::size_t e : connection.edge_indices) reserved[e] = true;
    }
    NestedDemand demand = compute_nested_demand(hops, config.distillation);
    connection.remaining = demand.edge_raw_demand;
    connection.demand = std::move(demand.edge_raw_demand);
    connection.swap_count = demand.swap_count;
    connection.admitted_round = result.rounds;
    active.push_back(std::move(connection));
    ++next_request;
    return true;
  };

  const auto complete = [&](Connection& connection) {
    result.swaps_performed += connection.swap_count;
    ++result.requests_satisfied;
    if (round_degraded) ++result.delivered_under_fault;
    if (awaiting_recovery) {
      result.time_to_recover.add(
          static_cast<double>(result.rounds - episode_end_round));
      awaiting_recovery = false;
    }
    result.service_rounds.add(
        static_cast<double>(result.rounds - connection.admitted_round));
    const auto hops = static_cast<std::uint32_t>(connection.edge_indices.size());
    result.denominator_paper += nested_swap_cost_paper(hops, config.distillation);
    result.denominator_exact += nested_swap_cost_exact(hops, config.distillation);
    if (config.mode == PlannedPathMode::kConnectionOriented) {
      for (std::size_t e : connection.edge_indices) reserved[e] = false;
    }
  };

  while ((next_request < workload.request_count() || !active.empty()) &&
         result.rounds < config.max_rounds) {
    util::this_thread_check_cancelled();
    ++result.rounds;

    // 0. Fault phase: advance the plan, destroy the raw pairs buffered at
    //    a crashed node's links (claimed pairs included — the in-flight
    //    demand resets), track degraded episodes. Serial, keyed streams:
    //    the trajectory is identical at every threads/shards setting.
    if (fault_plan) {
      const std::vector<NodeId>& crashed = fault_plan->advance(result.rounds);
      for (const NodeId x : crashed) {
        for (const NodeId y : generation_graph.neighbors(x)) {
          const std::size_t e = *generation_graph.edge_index(x, y);
          result.pairs_purged_by_faults += static_cast<std::uint64_t>(buffer[e]);
          buffer[e] = 0.0;
          for (Connection& connection : active) {
            for (std::size_t k = 0; k < connection.edge_indices.size(); ++k) {
              if (connection.edge_indices[k] != e) continue;
              result.pairs_purged_by_faults += static_cast<std::uint64_t>(
                  connection.demand[k] - connection.remaining[k]);
              connection.remaining[k] = connection.demand[k];
            }
          }
        }
      }
      round_degraded = fault_plan->degraded();
      if (round_degraded) {
        in_degraded_episode = true;
      } else if (in_degraded_episode) {
        in_degraded_episode = false;
        awaiting_recovery = true;
        episode_end_round = result.rounds;
      }
    }

    // 1. Generation into shared edge buffers.
    const bool masked = fault_plan && fault_plan->any_edge_down();
    const double rate = config.generation_per_edge_per_round *
                        (fault_plan ? fault_plan->rate_factor() : 1.0);
    const double whole = std::floor(rate);
    const double frac = rate - whole;
    if (sharded) {
      // Per-(round, edge) streams + disjoint buffer slices per shard; the
      // per-shard totals merge in shard order, so any threads/shards
      // setting produces the same result bit for bit. Masked edges skip
      // their draw — each edge's stream is keyed, so no other stream
      // shifts.
      pool->run_shards(shard_count, [&](std::size_t shard) {
        const auto [begin, end] = sim::ParallelTickEngine::shard_range(
            buffer.size(), shard_count, shard);
        std::uint64_t generated = 0;
        for (std::size_t e = begin; e < end; ++e) {
          if (masked && !fault_plan->edge_up(e)) continue;
          double amount = whole;
          if (frac > 0.0) {
            util::Rng edge_rng = util::Rng::keyed(
                config.seed, sim::stream_tag::kGeneration, result.rounds, e);
            if (edge_rng.bernoulli(frac)) amount += 1.0;
          }
          buffer[e] += amount;
          generated += static_cast<std::uint64_t>(amount);
        }
        shard_generated[shard] = generated;
      });
      for (std::size_t shard = 0; shard < shard_count; ++shard) {
        result.pairs_generated += shard_generated[shard];
      }
    } else {
      for (std::size_t e = 0; e < buffer.size(); ++e) {
        if (masked && !fault_plan->edge_up(e)) continue;
        double amount = whole;
        if (frac > 0.0 && generation_rng.bernoulli(frac)) amount += 1.0;
        buffer[e] += amount;
        result.pairs_generated += static_cast<std::uint64_t>(amount);
      }
    }

    // 2. Admission, strictly in sequence order.
    while (admit_head()) {
    }

    // 3. Allocation: in-flight connections claim pairs in request order
    //    (connectionless competition is resolved oldest-first; with
    //    reservation the buffers on reserved edges are private anyway).
    for (Connection& connection : active) {
      for (std::size_t k = 0; k < connection.edge_indices.size(); ++k) {
        const std::size_t e = connection.edge_indices[k];
        if (connection.remaining[k] <= 0.0) continue;
        const double take = std::min(connection.remaining[k], buffer[e]);
        connection.remaining[k] -= take;
        buffer[e] -= take;
      }
    }

    // 4. Completions (any order within the window; admissions were FIFO).
    for (auto it = active.begin(); it != active.end();) {
      if (it->done()) {
        complete(*it);
        it = active.erase(it);
      } else {
        ++it;
      }
    }
  }

  if (fault_plan) {
    const sim::FaultStats& fault_stats = fault_plan->stats();
    result.availability = fault_stats.availability();
    result.fault_rounds_degraded = fault_stats.degraded_rounds;
    result.node_crashes = fault_stats.node_crashes;
    result.link_downs = fault_stats.link_downs;
  }
  result.completed = result.requests_satisfied == workload.request_count();
  return result;
}

}  // namespace poq::core
