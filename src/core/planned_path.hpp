// Executable planned-path baselines.
//
// The paper scores its balancer against the *analytic* optimum (nested
// swapping over the shortest path, §5) and argues the score is
// conservative versus practical planned-path systems. These simulators
// make that comparison executable:
//
//  * connection-oriented ([20]-style): a request reserves every edge of
//    its shortest generation-graph path, exclusively accumulates the raw
//    pairs nested swapping needs, performs the swaps, releases.
//  * connectionless ([32]-style): no reservation; concurrent requests'
//    paths criss-cross and compete for the pairs buffered at shared links.
//
// Both execute the same recursive nested-swapping schedule, whose
// per-edge raw-pair demands and exact swap count come from
// compute_nested_demand().
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "core/workload.hpp"
#include "graph/graph.hpp"
#include "sim/fault_plan.hpp"
#include "sim/parallel_engine.hpp"
#include "util/stats.hpp"

namespace poq::core {

/// Static resource schedule for one usable end-to-end pair over a path.
struct NestedDemand {
  /// Raw elementary pairs needed from each path edge (aligned with the
  /// path's edge sequence).
  std::vector<double> edge_raw_demand;
  /// Total swap operations performed (the exact count, joining swaps
  /// included at every level).
  double swap_count = 0.0;
};

/// Demands of symmetric nested swapping with uniform distillation D over
/// a path of `path_edges` >= 1 edges; every use of a pair costs D pairs.
[[nodiscard]] NestedDemand compute_nested_demand(std::size_t path_edges,
                                                 double distillation);

enum class PlannedPathMode { kConnectionOriented, kConnectionless };

struct PlannedPathConfig {
  double distillation = 1.0;
  double generation_per_edge_per_round = 1.0;
  /// Concurrent in-flight requests; admission is strictly in sequence
  /// order either way.
  std::uint32_t window = 1;
  std::uint32_t max_rounds = 200000;
  std::uint64_t seed = 1;
  PlannedPathMode mode = PlannedPathMode::kConnectionOriented;
  /// Intra-run engine: the per-round generation fill shards across a
  /// worker pool under kSharded (per-(round, edge) RNG streams, so results
  /// are bit-identical for any threads/shards). Admission/allocation stay
  /// sequential — they are head-of-line by definition.
  sim::TickConcurrency tick;

  /// Fault-injection plan. A crash destroys the raw pairs buffered at the
  /// node's incident links — including pairs already claimed by in-flight
  /// connections, whose per-edge demand resets — and reservation-based
  /// admission stalls behind the outage (the planned-path cliff the paper
  /// predicts). Disabled by default (bit-identical historical path).
  sim::FaultConfig faults;
};

struct PlannedPathResult {
  std::uint64_t requests_satisfied = 0;
  double swaps_performed = 0.0;
  std::uint64_t pairs_generated = 0;
  std::uint32_t rounds = 0;
  bool completed = false;
  double denominator_paper = 0.0;
  double denominator_exact = 0.0;
  /// Rounds from admission to completion per request.
  util::RunningStats service_rounds;
  /// Fault-injection resilience counters (zero / availability 1 when
  /// faults are disabled — the historical metric set is untouched).
  double availability = 1.0;
  std::uint64_t fault_rounds_degraded = 0;
  std::uint64_t delivered_under_fault = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t link_downs = 0;
  std::uint64_t pairs_purged_by_faults = 0;
  /// Rounds from the end of each degraded episode to the next completed
  /// request.
  util::RunningStats time_to_recover;

  [[nodiscard]] double swap_overhead_paper() const {
    return denominator_paper > 0.0 ? swaps_performed / denominator_paper : 0.0;
  }
  [[nodiscard]] double swap_overhead_exact() const {
    return denominator_exact > 0.0 ? swaps_performed / denominator_exact : 0.0;
  }
};

/// Run the baseline on the same workload the balancer consumes.
[[nodiscard]] PlannedPathResult run_planned_path(const graph::Graph& generation_graph,
                                                 const Workload& workload,
                                                 const PlannedPathConfig& config);

}  // namespace poq::core
