// Shared vocabulary types for the core protocols.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"

namespace poq::core {

using NodeId = graph::NodeId;

/// Unordered node pair; Bell pairs are interchangeable per endpoint pair
/// (§1: any pair between the same endpoints is "[N1, N2]"), so all keys
/// are normalized with first <= second.
struct NodePair {
  NodeId first = 0;
  NodeId second = 0;

  NodePair() = default;
  NodePair(NodeId a, NodeId b) : first(a < b ? a : b), second(a < b ? b : a) {}

  friend bool operator==(const NodePair&, const NodePair&) = default;
  friend auto operator<=>(const NodePair&, const NodePair&) = default;
};

struct NodePairHash {
  std::size_t operator()(const NodePair& pair) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(pair.first) << 32) | pair.second);
  }
};

/// Symmetric per-pair scalar with a cheap uniform representation. Used
/// for the distillation overheads D_{x,y} (expected pairs consumed per
/// use, §3.2) and the survival factors L_{x,y} (fraction of arrivals that
/// outlive distillation/decoherence, Eq. 3).
class PairMatrix {
 public:
  /// Uniform value for every pair.
  explicit PairMatrix(double uniform = 1.0) : uniform_(uniform) {}

  /// Per-pair values for `node_count` nodes, initialized to `uniform`.
  PairMatrix(std::size_t node_count, double uniform)
      : uniform_(uniform), node_count_(node_count),
        values_(node_count * node_count, uniform) {}

  [[nodiscard]] double at(NodeId x, NodeId y) const {
    if (values_.empty()) return uniform_;
    return values_[static_cast<std::size_t>(x) * node_count_ + y];
  }

  /// Per-pair override; only valid on instances built with a node count.
  void set(NodeId x, NodeId y, double value) {
    if (values_.empty() || x >= node_count_ || y >= node_count_) {
      throw std::out_of_range("PairMatrix::set: construct with a node count first");
    }
    values_[static_cast<std::size_t>(x) * node_count_ + y] = value;
    values_[static_cast<std::size_t>(y) * node_count_ + x] = value;
  }

 private:
  double uniform_;
  std::size_t node_count_ = 0;
  std::vector<double> values_;
};

/// D_{x,y} in protocol code reads better under its domain name.
using DistillationMatrix = PairMatrix;

}  // namespace poq::core
