#include "core/workload.hpp"

#include <unordered_set>

#include "graph/shortest_path.hpp"
#include "util/error.hpp"

namespace poq::core {

Workload make_uniform_workload(std::size_t node_count, std::size_t pair_count,
                               std::size_t request_count, util::Rng& rng) {
  require(node_count >= 2, "make_uniform_workload: need >= 2 nodes");
  const std::size_t all_pairs = node_count * (node_count - 1) / 2;
  require(pair_count >= 1 && pair_count <= all_pairs,
          "make_uniform_workload: pair_count must be in [1, C(n,2)]");

  // Enumerate pair index -> (x, y) lazily via a flat index sample. Small
  // pair spaces keep the exact historical draw sequence (pool shuffle);
  // megascale ones rejection-sample distinct flat indices instead — the
  // pool itself (C(n,2) entries, ~40 GB at n = 10^5) is never built.
  constexpr std::size_t kDensePairSampleLimit = std::size_t{1} << 20;
  std::vector<std::size_t> chosen;
  if (all_pairs <= kDensePairSampleLimit) {
    chosen = rng.sample_indices(all_pairs, pair_count);
  } else {
    std::unordered_set<std::size_t> seen;
    seen.reserve(pair_count * 2);
    chosen.reserve(pair_count);
    while (chosen.size() < pair_count) {
      const std::size_t flat = rng.uniform_index(all_pairs);
      if (seen.insert(flat).second) chosen.push_back(flat);
    }
  }
  Workload workload;
  workload.pairs.reserve(pair_count);
  for (std::size_t flat : chosen) {
    // Invert the triangular index: flat = x*(2n - x - 1)/2 + (y - x - 1).
    std::size_t x = 0;
    std::size_t remaining = flat;
    while (remaining >= node_count - 1 - x) {
      remaining -= node_count - 1 - x;
      ++x;
    }
    const std::size_t y = x + 1 + remaining;
    workload.pairs.emplace_back(static_cast<NodeId>(x), static_cast<NodeId>(y));
  }

  workload.sequence.reserve(request_count);
  for (std::size_t i = 0; i < request_count; ++i) {
    workload.sequence.push_back(
        static_cast<std::uint32_t>(rng.uniform_index(pair_count)));
  }
  return workload;
}

std::vector<std::uint32_t> request_hop_counts(const Workload& workload,
                                              const graph::Graph& generation_graph) {
  // BFS once per distinct source node among the consumer pairs.
  std::vector<std::vector<std::uint32_t>> cache(generation_graph.node_count());
  std::vector<std::uint32_t> hops;
  hops.reserve(workload.request_count());
  for (std::size_t i = 0; i < workload.request_count(); ++i) {
    const NodePair& pair = workload.request(i);
    if (cache[pair.first].empty()) {
      cache[pair.first] = graph::bfs_distances(generation_graph, pair.first);
    }
    const std::uint32_t distance = cache[pair.first][pair.second];
    require(distance != graph::kUnreachable,
            "request_hop_counts: consumer pair disconnected in generation graph");
    hops.push_back(distance);
  }
  return hops;
}

}  // namespace poq::core
