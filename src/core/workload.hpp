// Consumption workload construction (§5).
//
// The paper draws 35 consumer pairs from the |N| choose 2 possible pairs
// and builds "a sequence of consumption requests from these pairs that
// must be satisfied in the order of the sequence" — in-order (head-of-
// line) semantics chosen deliberately "to prevent biasing the cost toward
// easy-to-satisfy pair requests".
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace poq::core {

/// A consumption workload: the consumer pair set and the request sequence
/// (indices into `pairs`).
struct Workload {
  std::vector<NodePair> pairs;
  std::vector<std::uint32_t> sequence;  // request i consumes pairs[sequence[i]]

  [[nodiscard]] const NodePair& request(std::size_t i) const {
    return pairs[sequence[i]];
  }
  [[nodiscard]] std::size_t request_count() const { return sequence.size(); }
};

/// Draw `pair_count` distinct consumer pairs uniformly from all n-choose-2
/// pairs of `node_count` nodes, then a uniform request sequence of
/// `request_count` draws over those pairs. Requires pair_count <= C(n,2).
[[nodiscard]] Workload make_uniform_workload(std::size_t node_count,
                                             std::size_t pair_count,
                                             std::size_t request_count,
                                             util::Rng& rng);

/// Shortest-path hop count in `generation_graph` for every request;
/// the l(c) of the paper's overhead denominator. Throws if any consumer
/// pair is disconnected.
[[nodiscard]] std::vector<std::uint32_t> request_hop_counts(
    const Workload& workload, const graph::Graph& generation_graph);

}  // namespace poq::core
