#include "graph/connectivity.hpp"

#include "util/error.hpp"

namespace poq::graph {

DisjointSets::DisjointSets(std::size_t count)
    : parent_(count), size_(count, 1), sets_(count) {
  for (std::size_t i = 0; i < count; ++i) parent_[i] = i;
}

std::size_t DisjointSets::find(std::size_t x) {
  require(x < parent_.size(), "DisjointSets::find: index out of range");
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool DisjointSets::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --sets_;
  return true;
}

bool DisjointSets::same(std::size_t a, std::size_t b) { return find(a) == find(b); }

std::size_t DisjointSets::set_size(std::size_t x) { return size_[find(x)]; }

bool is_connected(const Graph& graph) {
  if (graph.node_count() <= 1) return true;
  DisjointSets sets(graph.node_count());
  for (const Edge& e : graph.edges()) sets.unite(e.a(), e.b());
  return sets.set_count() == 1;
}

std::vector<std::size_t> connected_components(const Graph& graph) {
  DisjointSets sets(graph.node_count());
  for (const Edge& e : graph.edges()) sets.unite(e.a(), e.b());
  std::vector<std::size_t> labels(graph.node_count());
  std::vector<std::size_t> remap(graph.node_count(), SIZE_MAX);
  std::size_t next = 0;
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    const std::size_t root = sets.find(v);
    if (remap[root] == SIZE_MAX) remap[root] = next++;
    labels[v] = remap[root];
  }
  return labels;
}

}  // namespace poq::graph
