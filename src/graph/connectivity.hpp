// Connectivity queries: union-find and component labelling.
//
// The paper's grid topology construction ("generation edges are added
// uniformly at random on the grid until the underlying generation graph
// connects all nodes", §5) needs an incremental connectivity structure;
// DisjointSets provides it in near-constant amortized time.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace poq::graph {

/// Union-find with path halving and union by size.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t count);

  /// Representative of x's set.
  [[nodiscard]] std::size_t find(std::size_t x);

  /// Merge the sets of a and b; returns false if already joined.
  bool unite(std::size_t a, std::size_t b);

  [[nodiscard]] bool same(std::size_t a, std::size_t b);

  /// Number of disjoint sets remaining.
  [[nodiscard]] std::size_t set_count() const { return sets_; }

  /// Size of the set containing x.
  [[nodiscard]] std::size_t set_size(std::size_t x);

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t sets_;
};

/// True when every node is reachable from every other (the paper's
/// prerequisite for network-wide Bell-pair construction, §3).
[[nodiscard]] bool is_connected(const Graph& graph);

/// Component label per node, labels dense from 0.
[[nodiscard]] std::vector<std::size_t> connected_components(const Graph& graph);

}  // namespace poq::graph
