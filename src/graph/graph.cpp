#include "graph/graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace poq::graph {

Graph::Graph(std::size_t node_count) : adjacency_(node_count) {}

void Graph::check_node(NodeId u) const {
  require(u < adjacency_.size(), "Graph: node id out of range");
}

bool Graph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  require(u != v, "Graph: self-loops are not allowed");
  if (has_edge(u, v)) return false;
  auto insert_sorted = [](std::vector<NodeId>& list, NodeId value) {
    list.insert(std::lower_bound(list.begin(), list.end(), value), value);
  };
  insert_sorted(adjacency_[u], v);
  insert_sorted(adjacency_[v], u);
  edges_.push_back(Edge{std::min(u, v), std::max(u, v)});
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (!has_edge(u, v)) return false;
  auto erase_sorted = [](std::vector<NodeId>& list, NodeId value) {
    auto it = std::lower_bound(list.begin(), list.end(), value);
    list.erase(it);
  };
  erase_sorted(adjacency_[u], v);
  erase_sorted(adjacency_[v], u);
  const Edge target{std::min(u, v), std::max(u, v)};
  edges_.erase(std::find(edges_.begin(), edges_.end(), target));
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto& list = adjacency_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

std::span<const NodeId> Graph::neighbors(NodeId u) const {
  check_node(u);
  return adjacency_[u];
}

std::size_t Graph::degree(NodeId u) const {
  check_node(u);
  return adjacency_[u].size();
}

std::optional<std::size_t> Graph::edge_index(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const Edge target{std::min(u, v), std::max(u, v)};
  const auto it = std::find(edges_.begin(), edges_.end(), target);
  if (it == edges_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - edges_.begin());
}

}  // namespace poq::graph
