// Undirected graph with contiguous integer node ids.
//
// poqnet uses one graph type for both roles the paper distinguishes:
//   * the *generation graph* G (edges where g(x,y) > 0, §3), and
//   * the instantaneous *entanglement graph* (pairs with C_x(y) > 0, §6).
// Nodes are dense ids 0..n-1 so adjacency state can live in flat vectors.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace poq::graph {

using NodeId = std::uint32_t;

/// Undirected edge; normalized so a() <= b().
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  [[nodiscard]] NodeId a() const { return u < v ? u : v; }
  [[nodiscard]] NodeId b() const { return u < v ? v : u; }

  friend bool operator==(const Edge& lhs, const Edge& rhs) {
    return lhs.a() == rhs.a() && lhs.b() == rhs.b();
  }
};

/// Undirected simple graph (no self-loops, no parallel edges).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  /// Adds an undirected edge; returns false (and changes nothing) if the
  /// edge already exists. Self-loops are a precondition violation.
  bool add_edge(NodeId u, NodeId v);

  /// Removes the edge if present; returns whether it was present.
  bool remove_edge(NodeId u, NodeId v);

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Neighbor ids in ascending order.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const;

  [[nodiscard]] std::size_t degree(NodeId u) const;

  /// All edges, normalized (a() <= b()), in insertion order.
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Position of edge {u,v} in edges(), if present.
  [[nodiscard]] std::optional<std::size_t> edge_index(NodeId u, NodeId v) const;

 private:
  void check_node(NodeId u) const;

  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<Edge> edges_;
};

}  // namespace poq::graph
