#include "graph/kpaths.hpp"

#include <algorithm>
#include <set>

#include "graph/shortest_path.hpp"
#include "util/error.hpp"

namespace poq::graph {

namespace {

/// Lexicographic comparison for deterministic candidate ordering.
struct PathLess {
  bool operator()(const std::vector<NodeId>& lhs,
                  const std::vector<NodeId>& rhs) const {
    if (lhs.size() != rhs.size()) return lhs.size() < rhs.size();
    return lhs < rhs;
  }
};

}  // namespace

std::vector<std::vector<NodeId>> k_shortest_paths(const Graph& graph, NodeId source,
                                                  NodeId target, std::size_t k) {
  require(k >= 1, "k_shortest_paths: k must be >= 1");
  std::vector<std::vector<NodeId>> accepted;
  const auto first = shortest_path(graph, source, target);
  if (!first) return accepted;
  accepted.push_back(*first);

  std::set<std::vector<NodeId>, PathLess> candidates;
  while (accepted.size() < k) {
    const auto& last = accepted.back();
    // Yen: for each spur node in the previous path, remove the edges used
    // by accepted paths sharing the same root, then find a spur path.
    for (std::size_t spur_index = 0; spur_index + 1 < last.size(); ++spur_index) {
      const NodeId spur_node = last[spur_index];
      const std::vector<NodeId> root(last.begin(),
                                     last.begin() + static_cast<long>(spur_index) + 1);
      Graph pruned = graph;
      for (const auto& path : accepted) {
        if (path.size() > spur_index &&
            std::equal(root.begin(), root.end(), path.begin())) {
          if (path.size() > spur_index + 1) {
            pruned.remove_edge(path[spur_index], path[spur_index + 1]);
          }
        }
      }
      // Exclude root nodes (except the spur) by detaching them entirely.
      for (std::size_t i = 0; i < spur_index; ++i) {
        const NodeId dead = root[i];
        const std::vector<NodeId> copy(pruned.neighbors(dead).begin(),
                                       pruned.neighbors(dead).end());
        for (NodeId v : copy) pruned.remove_edge(dead, v);
      }
      const auto spur = shortest_path(pruned, spur_node, target);
      if (!spur) continue;
      std::vector<NodeId> total(root.begin(), root.end() - 1);
      total.insert(total.end(), spur->begin(), spur->end());
      if (std::find(accepted.begin(), accepted.end(), total) == accepted.end()) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    accepted.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return accepted;
}

std::vector<std::vector<NodeId>> edge_disjoint_paths(Graph graph, NodeId source,
                                                     NodeId target,
                                                     std::size_t max_paths) {
  std::vector<std::vector<NodeId>> paths;
  while (paths.size() < max_paths) {
    const auto path = shortest_path(graph, source, target);
    if (!path || path->size() < 2) break;
    for (std::size_t i = 0; i + 1 < path->size(); ++i) {
      graph.remove_edge((*path)[i], (*path)[i + 1]);
    }
    paths.push_back(*path);
  }
  return paths;
}

}  // namespace poq::graph
