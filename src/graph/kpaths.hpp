// Multi-path routing support: Yen's k-shortest simple paths and greedy
// edge-disjoint path extraction.
//
// The connectionless planned-path baseline (§1, [32] in the paper) lets
// several candidate paths compete for pairs at shared links; it needs a
// set of alternative paths per demand, which these utilities supply.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace poq::graph {

/// Up to k loop-free shortest paths (by hop count, deterministic ties),
/// ascending length. Fewer than k are returned when the graph has fewer
/// simple paths.
[[nodiscard]] std::vector<std::vector<NodeId>> k_shortest_paths(const Graph& graph,
                                                                NodeId source,
                                                                NodeId target,
                                                                std::size_t k);

/// Greedy edge-disjoint shortest paths: repeatedly take a shortest path
/// and delete its edges. Not maximum-cardinality, but deterministic and
/// cheap; adequate for spreading reservations.
[[nodiscard]] std::vector<std::vector<NodeId>> edge_disjoint_paths(Graph graph,
                                                                   NodeId source,
                                                                   NodeId target,
                                                                   std::size_t max_paths);

}  // namespace poq::graph
