#include "graph/shortest_path.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace poq::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& graph, NodeId source) {
  require(source < graph.node_count(), "bfs_distances: source out of range");
  std::vector<std::uint32_t> dist(graph.node_count(), kUnreachable);
  dist[source] = 0;
  std::queue<NodeId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : graph.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::optional<std::vector<NodeId>> shortest_path(const Graph& graph, NodeId source,
                                                 NodeId target) {
  require(source < graph.node_count() && target < graph.node_count(),
          "shortest_path: node out of range");
  if (source == target) return std::vector<NodeId>{source};
  std::vector<NodeId> parent(graph.node_count(), source);
  std::vector<bool> seen(graph.node_count(), false);
  seen[source] = true;
  std::queue<NodeId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : graph.neighbors(u)) {  // ascending ids => deterministic ties
      if (seen[v]) continue;
      seen[v] = true;
      parent[v] = u;
      if (v == target) {
        std::vector<NodeId> path{target};
        for (NodeId at = target; at != source; at = parent[at]) {
          path.push_back(parent[at]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(v);
    }
  }
  return std::nullopt;
}

std::uint32_t hop_distance(const Graph& graph, NodeId source, NodeId target) {
  const auto dist = bfs_distances(graph, source);
  return dist[target];
}

std::vector<std::vector<std::uint32_t>> all_pairs_distances(const Graph& graph) {
  std::vector<std::vector<std::uint32_t>> result;
  result.reserve(graph.node_count());
  for (std::size_t u = 0; u < graph.node_count(); ++u) {
    result.push_back(bfs_distances(graph, static_cast<NodeId>(u)));
  }
  return result;
}

std::vector<double> dijkstra(const Graph& graph, NodeId source,
                             const std::vector<double>& edge_cost) {
  require(source < graph.node_count(), "dijkstra: source out of range");
  require(edge_cost.size() == graph.edge_count(),
          "dijkstra: edge_cost must align with graph.edges()");
  std::vector<double> dist(graph.node_count(), kInfCost);
  dist[source] = 0.0;
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    for (NodeId v : graph.neighbors(u)) {
      const auto idx = graph.edge_index(u, v);
      const double cost = edge_cost[*idx];
      require(cost >= 0.0, "dijkstra: negative edge cost");
      if (dist[u] + cost < dist[v]) {
        dist[v] = dist[u] + cost;
        heap.emplace(dist[v], v);
      }
    }
  }
  return dist;
}

std::optional<std::vector<NodeId>> dijkstra_path(const Graph& graph, NodeId source,
                                                 NodeId target,
                                                 const std::vector<double>& edge_cost) {
  require(target < graph.node_count(), "dijkstra_path: target out of range");
  const auto dist = dijkstra(graph, source, edge_cost);
  if (dist[target] == kInfCost) return std::nullopt;
  // Walk back from target choosing any predecessor on a tight edge.
  std::vector<NodeId> path{target};
  NodeId current = target;
  while (current != source) {
    bool stepped = false;
    for (NodeId v : graph.neighbors(current)) {
      const auto idx = graph.edge_index(current, v);
      if (std::abs(dist[v] + edge_cost[*idx] - dist[current]) < 1e-12) {
        path.push_back(v);
        current = v;
        stepped = true;
        break;
      }
    }
    ensure(stepped, "dijkstra_path: backtrack failed");
  }
  std::reverse(path.begin(), path.end());
  return path;
}

DistanceOracle::DistanceOracle(const Graph& graph, std::size_t max_cached_rows)
    : graph_(&graph), max_rows_(max_cached_rows == 0 ? 1 : max_cached_rows) {}

const std::vector<std::uint32_t>& DistanceOracle::row(NodeId source) {
  if (dense_ready_) return dense_[source];
  const auto it = rows_.find(source);
  if (it != rows_.end()) return it->second;
  if (rows_.size() >= max_rows_) {
    rows_.erase(eviction_order_.front());
    eviction_order_.pop_front();
  }
  eviction_order_.push_back(source);
  return rows_.emplace(source, bfs_distances(*graph_, source)).first->second;
}

std::uint32_t DistanceOracle::distance(NodeId source, NodeId target) {
  return row(source)[target];
}

const std::vector<std::vector<std::uint32_t>>& DistanceOracle::dense() {
  if (!dense_ready_) {
    dense_ = all_pairs_distances(*graph_);
    dense_ready_ = true;
    rows_.clear();
    eviction_order_.clear();
  }
  return dense_;
}

std::uint64_t DistanceOracle::memory_bytes() const {
  const auto n = static_cast<std::uint64_t>(graph_->node_count());
  if (dense_ready_) return n * n * sizeof(std::uint32_t);
  // One cached row = n distances plus a fixed map-entry overhead.
  return rows_.size() * (n * sizeof(std::uint32_t) + 32);
}

}  // namespace poq::graph
