// Shortest-path queries over generation/entanglement graphs.
//
// The paper's swap-overhead metric needs hop counts l(c) of shortest paths
// in the generation graph (§5), the hybrid protocol needs shortest paths in
// the instantaneous entanglement graph (§6), and the planned-path baselines
// route over explicit shortest paths.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace poq::graph {

/// Sentinel distance for unreachable nodes.
inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Hop distances from `source` to every node (BFS). Unreachable nodes get
/// kUnreachable.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& graph,
                                                       NodeId source);

/// One shortest path (inclusive of endpoints) from source to target, or
/// nullopt when unreachable. Ties broken toward smaller node ids, so the
/// result is deterministic.
[[nodiscard]] std::optional<std::vector<NodeId>> shortest_path(const Graph& graph,
                                                               NodeId source,
                                                               NodeId target);

/// Hop count of the shortest path, or kUnreachable.
[[nodiscard]] std::uint32_t hop_distance(const Graph& graph, NodeId source,
                                         NodeId target);

/// All-pairs hop distances via repeated BFS: result[u][v].
[[nodiscard]] std::vector<std::vector<std::uint32_t>> all_pairs_distances(
    const Graph& graph);

/// Dijkstra over non-negative edge weights supplied per edge index
/// (aligned with graph.edges()). Returns per-node distance, kInfCost when
/// unreachable.
inline constexpr double kInfCost = std::numeric_limits<double>::infinity();
[[nodiscard]] std::vector<double> dijkstra(const Graph& graph, NodeId source,
                                           const std::vector<double>& edge_cost);

/// Weighted shortest path (node sequence) under `edge_cost`; nullopt when
/// unreachable.
[[nodiscard]] std::optional<std::vector<NodeId>> dijkstra_path(
    const Graph& graph, NodeId source, NodeId target,
    const std::vector<double>& edge_cost);

}  // namespace poq::graph
