// Shortest-path queries over generation/entanglement graphs.
//
// The paper's swap-overhead metric needs hop counts l(c) of shortest paths
// in the generation graph (§5), the hybrid protocol needs shortest paths in
// the instantaneous entanglement graph (§6), and the planned-path baselines
// route over explicit shortest paths.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace poq::graph {

/// Sentinel distance for unreachable nodes.
inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Hop distances from `source` to every node (BFS). Unreachable nodes get
/// kUnreachable.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& graph,
                                                       NodeId source);

/// One shortest path (inclusive of endpoints) from source to target, or
/// nullopt when unreachable. Ties broken toward smaller node ids, so the
/// result is deterministic.
[[nodiscard]] std::optional<std::vector<NodeId>> shortest_path(const Graph& graph,
                                                               NodeId source,
                                                               NodeId target);

/// Hop count of the shortest path, or kUnreachable.
[[nodiscard]] std::uint32_t hop_distance(const Graph& graph, NodeId source,
                                         NodeId target);

/// All-pairs hop distances via repeated BFS: result[u][v].
[[nodiscard]] std::vector<std::vector<std::uint32_t>> all_pairs_distances(
    const Graph& graph);

/// Lazy hop-distance cache: the megascale replacement for eagerly
/// materializing all_pairs_distances (O(n^2) memory — the allocation that
/// capped runs at a few hundred nodes).
///
/// Two modes, chosen by the caller's access pattern:
///   * point queries (`distance`, `row`): BFS per distinct source, rows
///     cached with FIFO eviction under `max_cached_rows` — O(rows * n)
///     memory, right for workload validation and per-satisfaction hop
///     counts, whose source sets are small;
///   * `dense()`: materialize the full matrix once and serve everything
///     from it. Gossip latencies and the detour-slack decide read
///     distances per pair per round (and concurrently, from decide
///     shards), so they opt into the O(n^2) deliberately — megascale
///     paths simply never call it.
///
/// Values are pure BFS results: caching/eviction can never change what a
/// query returns, so the oracle is transparent to the determinism
/// contract. Point queries mutate the cache and are serial-context only;
/// once dense() has been called, reads are lock-free and safe from
/// concurrent decide shards.
class DistanceOracle {
 public:
  explicit DistanceOracle(const Graph& graph,
                          std::size_t max_cached_rows = 64);

  /// Hop distance (kUnreachable when disconnected). Serial contexts only
  /// (may BFS + cache). Served from the dense matrix when materialized.
  [[nodiscard]] std::uint32_t distance(NodeId source, NodeId target);

  /// Full BFS row from `source`; reference valid until the row is
  /// evicted (or forever once dense() has been called).
  [[nodiscard]] const std::vector<std::uint32_t>& row(NodeId source);

  /// Materialize (first call) and return the dense all-pairs matrix.
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& dense();
  [[nodiscard]] bool dense_materialized() const { return dense_ready_; }

  /// Deterministic logical bytes held (element counts times fixed
  /// constants; see PairLedger::memory_bytes).
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  const Graph* graph_;
  std::size_t max_rows_;
  std::vector<std::vector<std::uint32_t>> dense_;
  bool dense_ready_ = false;
  std::unordered_map<NodeId, std::vector<std::uint32_t>> rows_;
  std::deque<NodeId> eviction_order_;  // FIFO over cached rows
};

/// Dijkstra over non-negative edge weights supplied per edge index
/// (aligned with graph.edges()). Returns per-node distance, kInfCost when
/// unreachable.
inline constexpr double kInfCost = std::numeric_limits<double>::infinity();
[[nodiscard]] std::vector<double> dijkstra(const Graph& graph, NodeId source,
                                           const std::vector<double>& edge_cost);

/// Weighted shortest path (node sequence) under `edge_cost`; nullopt when
/// unreachable.
[[nodiscard]] std::optional<std::vector<NodeId>> dijkstra_path(
    const Graph& graph, NodeId source, NodeId target,
    const std::vector<double>& edge_cost);

}  // namespace poq::graph
