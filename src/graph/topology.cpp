#include "graph/topology.hpp"

#include <cmath>

#include "graph/connectivity.hpp"
#include "util/error.hpp"

namespace poq::graph {

namespace {

std::size_t integer_sqrt(std::size_t n) {
  auto root = static_cast<std::size_t>(std::llround(std::sqrt(static_cast<double>(n))));
  while (root * root > n) --root;
  while ((root + 1) * (root + 1) <= n) ++root;
  return root;
}

std::size_t require_perfect_square(std::size_t n) {
  const std::size_t side = integer_sqrt(n);
  require(side * side == n && n >= 9,
          "grid topology: node count must be a perfect square >= 9");
  return side;
}

/// All 2n torus edges for an side x side wraparound grid.
std::vector<Edge> torus_edges(std::size_t side) {
  std::vector<Edge> edges;
  edges.reserve(2 * side * side);
  const auto id = [side](std::size_t row, std::size_t col) {
    return static_cast<NodeId>(row * side + col);
  };
  for (std::size_t row = 0; row < side; ++row) {
    for (std::size_t col = 0; col < side; ++col) {
      edges.push_back(Edge{id(row, col), id(row, (col + 1) % side)});
      edges.push_back(Edge{id(row, col), id((row + 1) % side, col)});
    }
  }
  return edges;
}

}  // namespace

Graph make_cycle(std::size_t n) {
  require(n >= 3, "make_cycle: need at least 3 nodes");
  Graph graph(n);
  for (std::size_t i = 0; i < n; ++i) {
    graph.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return graph;
}

Graph make_path(std::size_t n) {
  require(n >= 2, "make_path: need at least 2 nodes");
  Graph graph(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    graph.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return graph;
}

Graph make_star(std::size_t n) {
  require(n >= 2, "make_star: need at least 2 nodes");
  Graph graph(n);
  for (std::size_t i = 1; i < n; ++i) {
    graph.add_edge(0, static_cast<NodeId>(i));
  }
  return graph;
}

Graph make_complete(std::size_t n) {
  require(n >= 2, "make_complete: need at least 2 nodes");
  Graph graph(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      graph.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return graph;
}

Graph make_torus_grid(std::size_t n) {
  const std::size_t side = require_perfect_square(n);
  Graph graph(n);
  for (const Edge& e : torus_edges(side)) graph.add_edge(e.u, e.v);
  return graph;
}

Graph make_random_connected_grid(std::size_t n, util::Rng& rng) {
  const std::size_t side = require_perfect_square(n);
  std::vector<Edge> candidates = torus_edges(side);
  rng.shuffle(std::span<Edge>(candidates));
  Graph graph(n);
  DisjointSets sets(n);
  // Paper, §5: add candidate grid edges uniformly at random until connected.
  for (const Edge& e : candidates) {
    graph.add_edge(e.u, e.v);
    sets.unite(e.a(), e.b());
    if (sets.set_count() == 1) break;
  }
  ensure(sets.set_count() == 1, "make_random_connected_grid: torus must connect");
  return graph;
}

Graph make_erdos_renyi(std::size_t n, double p, util::Rng& rng,
                       bool force_connected) {
  require(n >= 2, "make_erdos_renyi: need at least 2 nodes");
  require(p >= 0.0 && p <= 1.0, "make_erdos_renyi: p must be in [0,1]");
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Graph graph(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.bernoulli(p)) {
          graph.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
        }
      }
    }
    if (!force_connected || is_connected(graph)) return graph;
  }
  throw PreconditionError(
      "make_erdos_renyi: could not draw a connected graph in 1000 attempts; "
      "p is too small for force_connected");
}

Graph make_watts_strogatz(std::size_t n, std::size_t k, double beta,
                          util::Rng& rng) {
  require(k >= 1 && n > 2 * k, "make_watts_strogatz: need n > 2k, k >= 1");
  require(beta >= 0.0 && beta <= 1.0, "make_watts_strogatz: beta in [0,1]");
  Graph graph(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t offset = 1; offset <= k; ++offset) {
      const auto u = static_cast<NodeId>(i);
      auto v = static_cast<NodeId>((i + offset) % n);
      if (rng.bernoulli(beta)) {
        // Rewire to a uniform non-self, non-duplicate target; skip the
        // rewire (keep the lattice edge) if we fail to find one quickly.
        bool rewired = false;
        for (int tries = 0; tries < 32; ++tries) {
          const auto w = static_cast<NodeId>(rng.uniform_index(n));
          if (w != u && !graph.has_edge(u, w)) {
            graph.add_edge(u, w);
            rewired = true;
            break;
          }
        }
        if (rewired) continue;
      }
      if (!graph.has_edge(u, v)) graph.add_edge(u, v);
    }
  }
  return graph;
}

Graph make_barabasi_albert(std::size_t n, std::size_t m, util::Rng& rng) {
  require(m >= 1 && n > m, "make_barabasi_albert: need n > m >= 1");
  Graph graph(n);
  // Seed with a star over the first m+1 nodes so every seed node has degree
  // >= 1 before preferential attachment begins.
  std::vector<NodeId> attachment;  // node repeated once per unit of degree
  for (std::size_t i = 1; i <= m; ++i) {
    graph.add_edge(0, static_cast<NodeId>(i));
    attachment.push_back(0);
    attachment.push_back(static_cast<NodeId>(i));
  }
  for (std::size_t arrival = m + 1; arrival < n; ++arrival) {
    const auto u = static_cast<NodeId>(arrival);
    std::size_t added = 0;
    while (added < m) {
      const NodeId target = attachment[rng.uniform_index(attachment.size())];
      if (target != u && graph.add_edge(u, target)) {
        attachment.push_back(u);
        attachment.push_back(target);
        ++added;
      }
    }
  }
  return graph;
}

std::string family_name(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::kCycle: return "cycle";
    case TopologyFamily::kRandomGrid: return "random-grid";
    case TopologyFamily::kFullGrid: return "full-grid";
    case TopologyFamily::kErdosRenyi: return "erdos-renyi";
    case TopologyFamily::kWattsStrogatz: return "watts-strogatz";
    case TopologyFamily::kBarabasiAlbert: return "barabasi-albert";
  }
  return "?";
}

std::size_t min_topology_nodes(TopologyFamily family) {
  return min_topology_nodes(family, TopologyParams{});
}

std::size_t min_topology_nodes(TopologyFamily family,
                               const TopologyParams& params) {
  switch (family) {
    case TopologyFamily::kCycle: return 3;
    case TopologyFamily::kRandomGrid: return 9;
    case TopologyFamily::kFullGrid: return 9;
    case TopologyFamily::kErdosRenyi: return 2;
    // make_watts_strogatz needs n > 2k; make_barabasi_albert needs n > m.
    case TopologyFamily::kWattsStrogatz: return 2 * params.ws_k.value_or(2) + 1;
    case TopologyFamily::kBarabasiAlbert: return params.ba_m.value_or(2) + 1;
  }
  throw PreconditionError("min_topology_nodes: unknown family");
}

Graph make_topology(TopologyFamily family, std::size_t n, util::Rng& rng) {
  return make_topology(family, n, rng, TopologyParams{});
}

Graph make_topology(TopologyFamily family, std::size_t n, util::Rng& rng,
                    const TopologyParams& params) {
  switch (family) {
    case TopologyFamily::kCycle:
      return make_cycle(n);
    case TopologyFamily::kRandomGrid:
      return make_random_connected_grid(n, rng);
    case TopologyFamily::kFullGrid:
      return make_torus_grid(n);
    case TopologyFamily::kErdosRenyi: {
      const double default_p =
          2.0 * std::log(static_cast<double>(n)) / static_cast<double>(n);
      const double p = params.er_p.value_or(std::min(1.0, default_p));
      return make_erdos_renyi(n, p, rng, /*force_connected=*/true);
    }
    case TopologyFamily::kWattsStrogatz:
      return make_watts_strogatz(n, params.ws_k.value_or(2),
                                 params.ws_beta.value_or(0.2), rng);
    case TopologyFamily::kBarabasiAlbert:
      return make_barabasi_albert(n, params.ba_m.value_or(2), rng);
  }
  throw PreconditionError("make_topology: unknown family");
}

}  // namespace poq::graph
