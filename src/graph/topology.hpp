// Generation-graph topology generators.
//
// §5 of the paper evaluates on two families: a cycle over |N| nodes and a
// wraparound sqrt(|N|) x sqrt(|N|) grid whose generation edges are "added
// uniformly at random on the grid until the underlying generation graph
// connects all nodes". We provide those plus the standard families used by
// the ablation benches (full torus, Erdos-Renyi, Watts-Strogatz,
// Barabasi-Albert, path, star, complete).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace poq::graph {

/// Cycle 0-1-...-(n-1)-0. Requires n >= 3.
[[nodiscard]] Graph make_cycle(std::size_t n);

/// Simple path 0-1-...-(n-1). Requires n >= 2.
[[nodiscard]] Graph make_path(std::size_t n);

/// Star with node 0 as hub. Requires n >= 2.
[[nodiscard]] Graph make_star(std::size_t n);

/// Complete graph K_n. Requires n >= 2.
[[nodiscard]] Graph make_complete(std::size_t n);

/// Full wraparound grid (torus): every node links to its four neighbours
/// with modular wraparound. Requires n to be a perfect square >= 9.
[[nodiscard]] Graph make_torus_grid(std::size_t n);

/// The paper's grid construction (§5): candidate edges are the torus-grid
/// edges; they are added uniformly at random (without replacement) until
/// the graph is connected. The result is a sparse connected subgraph of
/// the torus. Requires n to be a perfect square >= 9.
[[nodiscard]] Graph make_random_connected_grid(std::size_t n, util::Rng& rng);

/// Erdos-Renyi G(n, p). If `force_connected`, resamples until connected
/// (requires p large enough for that to terminate quickly; callers should
/// use p >= ~2 ln n / n).
[[nodiscard]] Graph make_erdos_renyi(std::size_t n, double p, util::Rng& rng,
                                     bool force_connected = false);

/// Watts-Strogatz small world: ring lattice with k nearest neighbours per
/// side rewired with probability beta. Requires n > 2k, k >= 1.
[[nodiscard]] Graph make_watts_strogatz(std::size_t n, std::size_t k, double beta,
                                        util::Rng& rng);

/// Barabasi-Albert preferential attachment, m edges per arriving node.
/// Requires n > m >= 1.
[[nodiscard]] Graph make_barabasi_albert(std::size_t n, std::size_t m,
                                         util::Rng& rng);

/// Named topology families, used by benches and examples to sweep.
enum class TopologyFamily {
  kCycle,
  kRandomGrid,   // paper's random-until-connected torus subgraph
  kFullGrid,     // complete torus
  kErdosRenyi,
  kWattsStrogatz,
  kBarabasiAlbert,
};

[[nodiscard]] std::string family_name(TopologyFamily family);

/// Optional per-family parameter overrides for make_topology. Unset
/// fields fall back to the family defaults (ER: p = 2 ln n / n, connected;
/// WS: k=2, beta=0.2; BA: m=2). Parameters for other families are simply
/// ignored here; callers that surface them to users (the scenario frame)
/// reject mismatched parameters with a named error.
struct TopologyParams {
  std::optional<double> er_p;        // Erdos-Renyi edge probability
  std::optional<std::size_t> ws_k;   // Watts-Strogatz neighbours per side
  std::optional<double> ws_beta;     // Watts-Strogatz rewiring probability
  std::optional<std::size_t> ba_m;   // Barabasi-Albert edges per arrival
};

/// Smallest node count make_topology accepts for `family` with its default
/// parameters. Grid families additionally require n to be a perfect square;
/// callers validating user input should check that separately.
[[nodiscard]] std::size_t min_topology_nodes(TopologyFamily family);

/// Parameter-aware minimum (WS with k needs n > 2k, BA with m needs n > m).
[[nodiscard]] std::size_t min_topology_nodes(TopologyFamily family,
                                             const TopologyParams& params);

/// Build a topology of `family` over n nodes with default family
/// parameters (ER: p = 2 ln n / n, connected; WS: k=2, beta=0.2; BA: m=2).
[[nodiscard]] Graph make_topology(TopologyFamily family, std::size_t n,
                                  util::Rng& rng);

/// Build a topology with explicit parameter overrides; unset fields keep
/// the defaults above. ER always resamples until connected (the protocol
/// simulators require connected consumer pairs); a p too small for that
/// to terminate fails with a named error.
[[nodiscard]] Graph make_topology(TopologyFamily family, std::size_t n,
                                  util::Rng& rng, const TopologyParams& params);

}  // namespace poq::graph
