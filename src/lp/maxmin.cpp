#include "lp/maxmin.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace poq::lp {

namespace {

double evaluate(const LinearExpr& expr, const std::vector<double>& x) {
  double total = 0.0;
  for (const Term& term : expr) total += term.coefficient * x[term.var];
  return total;
}

/// Clears the objective of a copied model.
void clear_objective(LpModel& model) {
  for (VarId v = 0; v < model.variable_count(); ++v) {
    model.set_objective_coefficient(v, 0.0);
  }
}

}  // namespace

MaxMinResult maximize_minimum(const LpModel& model,
                              const std::vector<LinearExpr>& expressions,
                              const SimplexOptions& options) {
  require(!expressions.empty(), "maximize_minimum: need at least one expression");
  LpModel work = model;
  clear_objective(work);
  const VarId level = work.add_variable(-kInf, kInf, "maxmin_level");
  for (const LinearExpr& expr : expressions) {
    LinearExpr row = expr;
    row.push_back(Term{level, -1.0});
    work.add_constraint(std::move(row), Relation::kGreaterEqual, 0.0);
  }
  work.set_objective_sense(Sense::kMaximize);
  work.set_objective_coefficient(level, 1.0);

  const Solution solution = solve(work, options);
  MaxMinResult result;
  result.status = solution.status;
  if (solution.status != SolveStatus::kOptimal) return result;
  result.bottleneck_level = solution.objective;
  result.values.assign(solution.values.begin(),
                       solution.values.begin() + static_cast<long>(model.variable_count()));
  result.expression_values.reserve(expressions.size());
  for (const LinearExpr& expr : expressions) {
    result.expression_values.push_back(evaluate(expr, result.values));
  }
  return result;
}

MaxMinResult lexicographic_max_min(const LpModel& model,
                                   const std::vector<LinearExpr>& expressions,
                                   const SimplexOptions& options) {
  require(!expressions.empty(), "lexicographic_max_min: need >= 1 expression");
  const double tol = 1e-6;

  LpModel work = model;
  clear_objective(work);
  std::vector<bool> saturated(expressions.size(), false);
  std::vector<double> levels(expressions.size(), 0.0);

  MaxMinResult final_result;
  while (true) {
    std::vector<std::size_t> active;
    for (std::size_t k = 0; k < expressions.size(); ++k) {
      if (!saturated[k]) active.push_back(k);
    }
    if (active.empty()) break;

    // Raise the common level of the active expressions.
    LpModel round = work;
    const VarId level = round.add_variable(-kInf, kInf, "level");
    for (std::size_t k : active) {
      LinearExpr row = expressions[k];
      row.push_back(Term{level, -1.0});
      round.add_constraint(std::move(row), Relation::kGreaterEqual, 0.0);
    }
    round.set_objective_sense(Sense::kMaximize);
    round.set_objective_coefficient(level, 1.0);
    const Solution lifted = solve(round, options);
    if (lifted.status != SolveStatus::kOptimal) {
      final_result.status = lifted.status;
      return final_result;
    }
    const double reached = lifted.objective;

    // Decide which active expressions are stuck at `reached`.
    std::size_t newly_saturated = 0;
    for (std::size_t k : active) {
      LpModel probe = work;
      for (std::size_t j : active) {
        if (j == k) continue;
        probe.add_constraint(expressions[j], Relation::kGreaterEqual, reached - tol);
      }
      clear_objective(probe);
      probe.set_objective_sense(Sense::kMaximize);
      for (const Term& term : expressions[k]) {
        probe.add_objective_coefficient(term.var, term.coefficient);
      }
      const Solution head = solve(probe, options);
      if (head.status != SolveStatus::kOptimal) {
        final_result.status = head.status;
        return final_result;
      }
      if (head.objective <= reached + tol) {
        saturated[k] = true;
        levels[k] = reached;
        ++newly_saturated;
        // Pin it so later rounds keep this level exactly.
        work.add_constraint(expressions[k], Relation::kGreaterEqual, reached - tol);
      }
    }
    ensure(newly_saturated > 0, "lexicographic_max_min: no progress");
  }

  // Final solve: all saturation constraints active; maximize total of all
  // expressions to pick a deterministic representative solution.
  LpModel last = work;
  clear_objective(last);
  last.set_objective_sense(Sense::kMaximize);
  for (const LinearExpr& expr : expressions) {
    for (const Term& term : expr) last.add_objective_coefficient(term.var, term.coefficient);
  }
  const Solution solution = solve(last, options);
  final_result.status = solution.status;
  if (solution.status != SolveStatus::kOptimal) return final_result;
  final_result.values.assign(
      solution.values.begin(),
      solution.values.begin() + static_cast<long>(model.variable_count()));
  final_result.expression_values.reserve(expressions.size());
  for (const LinearExpr& expr : expressions) {
    final_result.expression_values.push_back(evaluate(expr, final_result.values));
  }
  final_result.bottleneck_level =
      *std::min_element(final_result.expression_values.begin(),
                        final_result.expression_values.end());
  final_result.saturation_levels = levels;
  return final_result;
}

}  // namespace poq::lp
