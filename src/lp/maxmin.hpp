// Max-min fairness over linear expressions.
//
// §3.3 of the paper lists "maximize the minimum c(x,y)" among its
// optimization objectives and §4's distributed balancer targets a max-min
// fair allocation of pair counts; this module provides the centralized
// optimum to compare against: the single-level max-min LP and the full
// lexicographic (water-filling) refinement.
#pragma once

#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace poq::lp {

struct MaxMinResult {
  SolveStatus status = SolveStatus::kInfeasible;
  /// Value of the smallest expression at the solution.
  double bottleneck_level = 0.0;
  /// Structural variable assignment.
  std::vector<double> values;
  /// Achieved value of each input expression.
  std::vector<double> expression_values;
  /// Per-expression saturation level (lexicographic solve only; empty for
  /// the single-level solve).
  std::vector<double> saturation_levels;
};

/// Maximize min_k expressions[k] subject to `model`'s constraints/bounds.
/// The model's own objective is ignored.
[[nodiscard]] MaxMinResult maximize_minimum(const LpModel& model,
                                            const std::vector<LinearExpr>& expressions,
                                            const SimplexOptions& options = {});

/// Lexicographic max-min (progressive filling): maximize the minimum, fix
/// the saturated expressions, recurse on the rest. Exact but solves
/// O(k^2) LPs; intended for small instances.
[[nodiscard]] MaxMinResult lexicographic_max_min(const LpModel& model,
                                                 const std::vector<LinearExpr>& expressions,
                                                 const SimplexOptions& options = {});

}  // namespace poq::lp
