#include "lp/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::lp {

VarId LpModel::add_variable(double lo, double hi, std::string name) {
  require(lo <= hi, "LpModel::add_variable: lo must be <= hi");
  require(!std::isnan(lo) && !std::isnan(hi), "LpModel::add_variable: NaN bound");
  require(lo != kInf && hi != -kInf, "LpModel::add_variable: empty box");
  const auto id = static_cast<VarId>(lower_.size());
  lower_.push_back(lo);
  upper_.push_back(hi);
  objective_.push_back(0.0);
  if (name.empty()) name = util::str_cat("x", id);
  names_.push_back(std::move(name));
  return id;
}

void LpModel::set_objective_coefficient(VarId var, double coefficient) {
  require(var < variable_count(), "LpModel: unknown variable");
  objective_[var] = coefficient;
}

void LpModel::add_objective_coefficient(VarId var, double delta) {
  require(var < variable_count(), "LpModel: unknown variable");
  objective_[var] += delta;
}

RowId LpModel::add_constraint(LinearExpr expr, Relation relation, double rhs) {
  for (const Term& term : expr) {
    require(term.var < variable_count(), "LpModel: constraint uses unknown variable");
    require(std::isfinite(term.coefficient), "LpModel: non-finite coefficient");
  }
  require(std::isfinite(rhs), "LpModel: non-finite rhs");
  const auto id = static_cast<RowId>(constraints_.size());
  constraints_.push_back(Constraint{std::move(expr), relation, rhs});
  return id;
}

void LpModel::set_bounds(VarId var, double lo, double hi) {
  require(var < variable_count(), "LpModel: unknown variable");
  require(lo <= hi, "LpModel::set_bounds: lo must be <= hi");
  lower_[var] = lo;
  upper_[var] = hi;
}

double LpModel::objective_value(const std::vector<double>& x) const {
  require(x.size() == variable_count(), "LpModel: assignment size mismatch");
  double total = 0.0;
  for (std::size_t v = 0; v < x.size(); ++v) total += objective_[v] * x[v];
  return total;
}

double LpModel::max_violation(const std::vector<double>& x) const {
  require(x.size() == variable_count(), "LpModel: assignment size mismatch");
  double worst = 0.0;
  for (std::size_t v = 0; v < x.size(); ++v) {
    worst = std::max(worst, lower_[v] - x[v]);
    if (upper_[v] != kInf) worst = std::max(worst, x[v] - upper_[v]);
  }
  for (const Constraint& row : constraints_) {
    double lhs = 0.0;
    for (const Term& term : row.expr) lhs += term.coefficient * x[term.var];
    switch (row.relation) {
      case Relation::kLessEqual:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case Relation::kGreaterEqual:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case Relation::kEqual:
        worst = std::max(worst, std::abs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace poq::lp
