// Linear program model builder.
//
// The paper's §3 formulation is a pure LP over swap rates sigma_i(x,y),
// generation rates g(x,y) and consumption rates c(x,y); this builder holds
// the variables (with box bounds), linear constraints and objective in the
// form the bundled simplex solver consumes.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace poq::lp {

using VarId = std::uint32_t;
using RowId = std::uint32_t;

/// +infinity for "no upper bound".
inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kMinimize, kMaximize };
enum class Relation { kLessEqual, kEqual, kGreaterEqual };

/// One term of a linear expression.
struct Term {
  VarId var;
  double coefficient;
};

/// Sparse linear expression: sum of terms (no constant part).
using LinearExpr = std::vector<Term>;

/// A single linear constraint `expr relation rhs`.
struct Constraint {
  LinearExpr expr;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// Mutable LP: box-bounded variables, linear constraints, one objective.
class LpModel {
 public:
  /// Adds a variable with bounds [lo, hi] (hi may be kInf). Returns its id.
  VarId add_variable(double lo, double hi, std::string name = {});

  /// Convenience: non-negative variable [0, kInf).
  VarId add_nonnegative(std::string name = {}) { return add_variable(0.0, kInf, std::move(name)); }

  void set_objective_sense(Sense sense) { sense_ = sense; }
  [[nodiscard]] Sense objective_sense() const { return sense_; }

  /// Sets (replaces) the objective coefficient of `var`.
  void set_objective_coefficient(VarId var, double coefficient);

  /// Adds `delta` to the objective coefficient of `var`.
  void add_objective_coefficient(VarId var, double delta);

  RowId add_constraint(LinearExpr expr, Relation relation, double rhs);

  /// Tightens bounds on an existing variable (used by lexicographic passes).
  void set_bounds(VarId var, double lo, double hi);

  [[nodiscard]] std::size_t variable_count() const { return lower_.size(); }
  [[nodiscard]] std::size_t constraint_count() const { return constraints_.size(); }

  [[nodiscard]] double lower_bound(VarId var) const { return lower_.at(var); }
  [[nodiscard]] double upper_bound(VarId var) const { return upper_.at(var); }
  [[nodiscard]] double objective_coefficient(VarId var) const { return objective_.at(var); }
  [[nodiscard]] const std::string& name(VarId var) const { return names_.at(var); }
  [[nodiscard]] const Constraint& constraint(RowId row) const { return constraints_.at(row); }
  [[nodiscard]] const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Objective value of an assignment (no feasibility check).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// Max constraint violation and bound violation of an assignment.
  [[nodiscard]] double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> objective_;
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
  Sense sense_ = Sense::kMinimize;
};

}  // namespace poq::lp
