#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>

#include "util/error.hpp"

namespace poq::lp {

std::string status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Sparse column of the constraint matrix.
struct Column {
  std::vector<std::uint32_t> rows;
  std::vector<double> coefficients;
};

/// Working solver state. Column layout: [structural | slack | artificial].
class Solver {
 public:
  /// `conservative` trades speed for robustness: Bland's rule throughout
  /// and frequent refactorization. Used on retry after numerical trouble.
  Solver(const LpModel& model, const SimplexOptions& options, bool conservative)
      : model_(model), options_(options), conservative_(conservative),
        use_bland_(conservative) {}

  Solution run();

 private:
  enum class VarState : std::uint8_t { kBasic, kAtLower, kAtUpper };

  void build_columns();
  void install_artificial_basis();
  void compute_basic_values();
  SolveStatus iterate(bool phase_one);
  void price(std::vector<double>& reduced) const;
  [[nodiscard]] double column_dot(std::size_t col, const std::vector<double>& y) const;
  void ftran(std::size_t col, std::vector<double>& w) const;
  void refactorize();

  const LpModel& model_;
  const SimplexOptions& options_;

  std::size_t rows_ = 0;
  std::size_t structural_ = 0;
  std::size_t total_ = 0;  // structural + slacks + artificials

  std::vector<Column> columns_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> cost_;       // active objective (phase 1 or 2)
  std::vector<double> real_cost_;  // phase-2 objective (minimization sense)
  std::vector<double> rhs_;

  std::vector<std::uint32_t> basis_;       // rows_ entries: column in row's basis slot
  std::vector<VarState> state_;            // per column
  std::vector<double> value_;              // per column current value
  std::vector<std::vector<double>> binv_;  // dense basis inverse, rows_ x rows_

  std::uint64_t iterations_ = 0;
  std::uint32_t stalled_ = 0;
  bool conservative_ = false;
  bool use_bland_ = false;

  [[nodiscard]] double bound_infeasibility() const;
};

void Solver::build_columns() {
  rows_ = model_.constraint_count();
  structural_ = model_.variable_count();
  total_ = structural_ + 2 * rows_;

  columns_.assign(total_, Column{});
  lower_.assign(total_, 0.0);
  upper_.assign(total_, kInfinity);
  cost_.assign(total_, 0.0);
  real_cost_.assign(total_, 0.0);
  rhs_.assign(rows_, 0.0);

  const double sense = model_.objective_sense() == Sense::kMinimize ? 1.0 : -1.0;
  for (std::size_t v = 0; v < structural_; ++v) {
    lower_[v] = model_.lower_bound(static_cast<VarId>(v));
    upper_[v] = model_.upper_bound(static_cast<VarId>(v));
    real_cost_[v] = sense * model_.objective_coefficient(static_cast<VarId>(v));
  }

  // Structural columns: accumulate duplicate terms defensively.
  std::vector<double> dense(rows_, 0.0);
  for (std::size_t v = 0; v < structural_; ++v) {
    columns_[v].rows.clear();
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const Constraint& row = model_.constraint(static_cast<RowId>(r));
    rhs_[r] = row.rhs;
    for (const Term& term : row.expr) {
      Column& col = columns_[term.var];
      if (!col.rows.empty() && col.rows.back() == r) {
        col.coefficients.back() += term.coefficient;
      } else {
        col.rows.push_back(static_cast<std::uint32_t>(r));
        col.coefficients.push_back(term.coefficient);
      }
    }
  }

  // Slack columns: one logical per row.
  //
  // Inequality right-hand sides are relaxed by tiny distinct amounts
  // (classic anti-degeneracy perturbation): highly symmetric programs like
  // the §3 steady-state LP otherwise trap the simplex on a combinatorial
  // plateau of t = 0 pivots at the optimal vertex. Relaxation direction
  // keeps the original feasible region contained, equalities stay exact,
  // and the perturbation is scaled to each row's coefficient magnitude so
  // the induced solution shift stays ~1e-9 relative regardless of row
  // scaling.
  std::vector<double> row_scale(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (const Term& term : model_.constraint(static_cast<RowId>(r)).expr) {
      row_scale[r] = std::max(row_scale[r], std::abs(term.coefficient));
    }
    row_scale[r] = std::max(row_scale[r], std::abs(rhs_[r]));
  }
  std::uint64_t mix = 0xD1B54A32D192ED03ULL;
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t s = structural_ + r;
    columns_[s].rows.push_back(static_cast<std::uint32_t>(r));
    columns_[s].coefficients.push_back(1.0);
    mix = mix * 6364136223846793005ULL + 1442695040888963407ULL;
    const double jitter = 0.5 + static_cast<double>(mix >> 40) * 0x1.0p-25;
    const double epsilon = 1e-9 * jitter * row_scale[r];
    switch (model_.constraint(static_cast<RowId>(r)).relation) {
      case Relation::kLessEqual:
        lower_[s] = 0.0;
        upper_[s] = kInfinity;
        rhs_[r] += epsilon;
        break;
      case Relation::kGreaterEqual:
        lower_[s] = -kInfinity;
        upper_[s] = 0.0;
        rhs_[r] -= epsilon;
        break;
      case Relation::kEqual:
        lower_[s] = 0.0;
        upper_[s] = 0.0;
        break;
    }
  }
}

void Solver::install_artificial_basis() {
  state_.assign(total_, VarState::kAtLower);
  value_.assign(total_, 0.0);

  // Nonbasic structural/slack variables start at their bound nearest zero.
  for (std::size_t j = 0; j < structural_ + rows_; ++j) {
    double v;
    if (lower_[j] > -kInfinity && upper_[j] < kInfinity) {
      v = std::abs(lower_[j]) <= std::abs(upper_[j]) ? lower_[j] : upper_[j];
      state_[j] = (v == lower_[j]) ? VarState::kAtLower : VarState::kAtUpper;
    } else if (lower_[j] > -kInfinity) {
      v = lower_[j];
      state_[j] = VarState::kAtLower;
    } else if (upper_[j] < kInfinity) {
      v = upper_[j];
      state_[j] = VarState::kAtUpper;
    } else {
      v = 0.0;  // free variable; treated as at a pseudo lower bound
      state_[j] = VarState::kAtLower;
    }
    value_[j] = v;
  }

  // Residual the artificials must absorb.
  std::vector<double> residual = rhs_;
  for (std::size_t j = 0; j < structural_ + rows_; ++j) {
    if (value_[j] == 0.0) continue;
    const Column& col = columns_[j];
    for (std::size_t k = 0; k < col.rows.size(); ++k) {
      residual[col.rows[k]] -= col.coefficients[k] * value_[j];
    }
  }

  basis_.assign(rows_, 0);
  binv_.assign(rows_, std::vector<double>(rows_, 0.0));
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t a = structural_ + rows_ + r;
    const double sign = residual[r] >= 0.0 ? 1.0 : -1.0;
    columns_[a].rows.push_back(static_cast<std::uint32_t>(r));
    columns_[a].coefficients.push_back(sign);
    lower_[a] = 0.0;
    upper_[a] = kInfinity;
    cost_[a] = 1.0;  // phase-1 objective: sum of artificials
    basis_[r] = static_cast<std::uint32_t>(a);
    state_[a] = VarState::kBasic;
    value_[a] = std::abs(residual[r]);
    binv_[r][r] = sign;  // inverse of the +-1 diagonal artificial basis
  }
}

void Solver::compute_basic_values() {
  // x_B = B^-1 (b - N x_N)
  std::vector<double> residual = rhs_;
  for (std::size_t j = 0; j < total_; ++j) {
    if (state_[j] == VarState::kBasic || value_[j] == 0.0) continue;
    const Column& col = columns_[j];
    for (std::size_t k = 0; k < col.rows.size(); ++k) {
      residual[col.rows[k]] -= col.coefficients[k] * value_[j];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < rows_; ++c) sum += binv_[r][c] * residual[c];
    value_[basis_[r]] = sum;
  }
}

double Solver::column_dot(std::size_t col_index, const std::vector<double>& y) const {
  const Column& col = columns_[col_index];
  double sum = 0.0;
  for (std::size_t k = 0; k < col.rows.size(); ++k) {
    sum += y[col.rows[k]] * col.coefficients[k];
  }
  return sum;
}

void Solver::ftran(std::size_t col_index, std::vector<double>& w) const {
  const Column& col = columns_[col_index];
  w.assign(rows_, 0.0);
  for (std::size_t k = 0; k < col.rows.size(); ++k) {
    const std::uint32_t row = col.rows[k];
    const double coeff = col.coefficients[k];
    for (std::size_t r = 0; r < rows_; ++r) w[r] += binv_[r][row] * coeff;
  }
}

void Solver::refactorize() {
  // Rebuild B^-1 from the basis columns by Gauss-Jordan with partial
  // pivoting; called only when incremental updates have drifted.
  std::vector<std::vector<double>> mat(rows_, std::vector<double>(rows_, 0.0));
  for (std::size_t slot = 0; slot < rows_; ++slot) {
    const Column& col = columns_[basis_[slot]];
    for (std::size_t k = 0; k < col.rows.size(); ++k) {
      mat[col.rows[k]][slot] = col.coefficients[k];
    }
  }
  std::vector<std::vector<double>> inv(rows_, std::vector<double>(rows_, 0.0));
  for (std::size_t r = 0; r < rows_; ++r) inv[r][r] = 1.0;
  for (std::size_t c = 0; c < rows_; ++c) {
    std::size_t pivot = c;
    for (std::size_t r = c + 1; r < rows_; ++r) {
      if (std::abs(mat[r][c]) > std::abs(mat[pivot][c])) pivot = r;
    }
    ensure(std::abs(mat[pivot][c]) > 1e-12, "simplex: singular basis");
    std::swap(mat[c], mat[pivot]);
    std::swap(inv[c], inv[pivot]);
    const double scale = 1.0 / mat[c][c];
    for (std::size_t k = 0; k < rows_; ++k) {
      mat[c][k] *= scale;
      inv[c][k] *= scale;
    }
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == c) continue;
      const double factor = mat[r][c];
      if (factor == 0.0) continue;
      for (std::size_t k = 0; k < rows_; ++k) {
        mat[r][k] -= factor * mat[c][k];
        inv[r][k] -= factor * inv[c][k];
      }
    }
  }
  binv_ = std::move(inv);
  compute_basic_values();
}

void Solver::price(std::vector<double>& reduced) const {
  // y^T = c_B^T B^-1, then d_j = c_j - y^T A_j for nonbasic j.
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double cb = cost_[basis_[r]];
    if (cb == 0.0) continue;
    for (std::size_t c = 0; c < rows_; ++c) y[c] += cb * binv_[r][c];
  }
  reduced.assign(total_, 0.0);
  for (std::size_t j = 0; j < total_; ++j) {
    if (state_[j] == VarState::kBasic) continue;
    if (lower_[j] == upper_[j]) continue;  // fixed: can never move
    reduced[j] = cost_[j] - column_dot(j, y);
  }
}

SolveStatus Solver::iterate(bool phase_one) {
  std::vector<double> reduced;
  std::vector<double> w;
  std::uint32_t since_refactor = 0;

  while (iterations_ < options_.max_iterations) {
    ++iterations_;
    if (options_.trace && iterations_ % 5000 == 0) {
      double objective = 0.0;
      for (std::size_t j = 0; j < total_; ++j) objective += cost_[j] * value_[j];
      std::cerr << "[simplex] iter=" << iterations_ << " phase=" << (phase_one ? 1 : 2)
                << " obj=" << objective << " stalled=" << stalled_
                << " bland=" << use_bland_ << '\n';
    }
    price(reduced);

    // --- entering variable ---
    const double opt_tol = options_.optimality_tolerance;
    std::size_t entering = total_;
    double best_violation = opt_tol;
    int direction = +1;
    for (std::size_t j = 0; j < total_; ++j) {
      if (state_[j] == VarState::kBasic || lower_[j] == upper_[j]) continue;
      const double d = reduced[j];
      double violation = 0.0;
      int dir = 0;
      const bool is_free = lower_[j] == -kInfinity && upper_[j] == kInfinity;
      if (state_[j] == VarState::kAtLower && d < -opt_tol) {
        violation = -d;
        dir = +1;
      } else if (state_[j] == VarState::kAtUpper && d > opt_tol) {
        violation = d;
        dir = -1;
      } else if (is_free && std::abs(d) > opt_tol) {
        violation = std::abs(d);
        dir = d < 0 ? +1 : -1;
      }
      if (dir == 0) continue;
      if (use_bland_) {  // Bland: first eligible index
        entering = j;
        direction = dir;
        break;
      }
      if (violation > best_violation) {
        best_violation = violation;
        entering = j;
        direction = dir;
      }
    }
    if (entering == total_) return SolveStatus::kOptimal;

    // --- ratio test ---
    ftran(entering, w);
    double t_limit = kInfinity;
    std::size_t leaving_slot = rows_;  // rows_ => bound flip
    double leaving_target = 0.0;
    bool leaving_to_upper = false;
    // Entering variable's own opposite bound.
    if (lower_[entering] > -kInfinity && upper_[entering] < kInfinity) {
      t_limit = upper_[entering] - lower_[entering];
    }
    const double pivot_tol = options_.pivot_tolerance;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double rate = direction * w[r];  // x_B[r] decreases at `rate`
      const std::size_t b = basis_[r];
      if (rate > pivot_tol) {
        if (lower_[b] == -kInfinity) continue;
        const double t = (value_[b] - lower_[b]) / rate;
        if (t < t_limit - 1e-12 ||
            (t < t_limit + 1e-12 && leaving_slot < rows_ &&
             (use_bland_ ? b < basis_[leaving_slot]
                         : std::abs(w[r]) > std::abs(w[leaving_slot])))) {
          t_limit = std::max(0.0, t);
          leaving_slot = r;
          leaving_target = lower_[b];
          leaving_to_upper = false;
        }
      } else if (rate < -pivot_tol) {
        if (upper_[b] == kInfinity) continue;
        const double t = (value_[b] - upper_[b]) / rate;
        if (t < t_limit - 1e-12 ||
            (t < t_limit + 1e-12 && leaving_slot < rows_ &&
             (use_bland_ ? b < basis_[leaving_slot]
                         : std::abs(w[r]) > std::abs(w[leaving_slot])))) {
          t_limit = std::max(0.0, t);
          leaving_slot = r;
          leaving_target = upper_[b];
          leaving_to_upper = true;
        }
      }
    }

    if (t_limit == kInfinity) {
      return phase_one ? SolveStatus::kInfeasible  // phase-1 is bounded below by 0
                       : SolveStatus::kUnbounded;
    }

    // Stall detection for anti-cycling.
    if (t_limit <= 1e-12) {
      if (++stalled_ >= options_.stall_threshold) use_bland_ = true;
    } else {
      stalled_ = 0;
      if (!conservative_) use_bland_ = false;
    }

    // --- update values ---
    for (std::size_t r = 0; r < rows_; ++r) {
      value_[basis_[r]] -= t_limit * direction * w[r];
    }
    value_[entering] += direction * t_limit;

    if (leaving_slot == rows_) {
      // Bound flip: entering moves across its box; basis unchanged.
      state_[entering] =
          state_[entering] == VarState::kAtLower ? VarState::kAtUpper : VarState::kAtLower;
      continue;
    }

    const std::size_t leaving = basis_[leaving_slot];
    value_[leaving] = leaving_target;
    state_[leaving] = leaving_to_upper ? VarState::kAtUpper : VarState::kAtLower;
    state_[entering] = VarState::kBasic;
    basis_[leaving_slot] = static_cast<std::uint32_t>(entering);

    // --- eta update of the dense inverse ---
    const double pivot = w[leaving_slot];
    ensure(std::abs(pivot) > pivot_tol, "simplex: zero pivot escaped ratio test");
    std::vector<double>& pivot_row = binv_[leaving_slot];
    const double inv_pivot = 1.0 / pivot;
    for (std::size_t c = 0; c < rows_; ++c) pivot_row[c] *= inv_pivot;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == leaving_slot) continue;
      const double factor = w[r];
      if (factor == 0.0) continue;
      std::vector<double>& row = binv_[r];
      for (std::size_t c = 0; c < rows_; ++c) row[c] -= factor * pivot_row[c];
    }

    if (++since_refactor >= (conservative_ ? 64u : 256u)) {
      refactorize();
      since_refactor = 0;
    }
  }
  return SolveStatus::kIterationLimit;
}

double Solver::bound_infeasibility() const {
  double worst = 0.0;
  for (std::size_t j = 0; j < total_; ++j) {
    if (lower_[j] > -kInfinity) worst = std::max(worst, lower_[j] - value_[j]);
    if (upper_[j] < kInfinity) worst = std::max(worst, value_[j] - upper_[j]);
  }
  return worst;
}

Solution Solver::run() {
  build_columns();
  install_artificial_basis();

  Solution result;

  // Phase 1: minimize sum of artificials.
  SolveStatus status = iterate(/*phase_one=*/true);
  if (status == SolveStatus::kIterationLimit) {
    result.status = status;
    result.iterations = iterations_;
    return result;
  }
  double infeasibility = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t a = structural_ + rows_ + r;
    infeasibility += value_[a];
  }
  if (status == SolveStatus::kInfeasible ||
      infeasibility > options_.feasibility_tolerance * (1.0 + std::abs(infeasibility))) {
    result.status = SolveStatus::kInfeasible;
    result.iterations = iterations_;
    return result;
  }

  // Phase 2: pin artificials to zero, restore the real objective.
  //
  // The §3 steady-state programs are massively degenerate (thousands of
  // structurally symmetric sigma columns), which can trap the simplex on
  // a plateau at the optimum without a certificate. Break the ties with a
  // deterministic, strictly positive cost perturbation: it cannot create
  // new unbounded directions (costs only increase in the minimization
  // sense) and shifts the optimum by at most sum(eps * x), far below the
  // reporting tolerances. The reported objective is evaluated with the
  // true costs.
  double cost_scale = 1.0;
  for (std::size_t j = 0; j < structural_; ++j) {
    cost_scale = std::max(cost_scale, std::abs(real_cost_[j]));
  }
  std::uint64_t mix = 0x9E3779B97F4A7C15ULL;
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t a = structural_ + rows_ + r;
    lower_[a] = upper_[a] = 0.0;
    cost_[a] = 0.0;
  }
  for (std::size_t j = 0; j < structural_ + rows_; ++j) {
    mix = mix * 6364136223846793005ULL + 1442695040888963407ULL;
    const double jitter = 0.5 + static_cast<double>(mix >> 40) * 0x1.0p-25;
    // Perturb toward the variable's finite bound so no new unbounded
    // direction can appear; leave free variables untouched.
    double sign = 0.0;
    if (lower_[j] > -kInfinity) {
      sign = 1.0;
    } else if (upper_[j] < kInfinity) {
      sign = -1.0;
    }
    cost_[j] = real_cost_[j] + sign * 1e-9 * cost_scale * jitter;
  }
  stalled_ = 0;
  use_bland_ = conservative_;

  status = iterate(/*phase_one=*/false);
  result.status = status;
  result.iterations = iterations_;
  if (status != SolveStatus::kOptimal) return result;

  refactorize();  // tighten values before extraction
  // Guard against numerical drift having led pivoting astray: the final
  // basis must respect every bound. A violation triggers the caller's
  // conservative retry.
  ensure(bound_infeasibility() <= 1e-6, "simplex: drifted to an infeasible basis");
  result.values.assign(structural_, 0.0);
  for (std::size_t v = 0; v < structural_; ++v) result.values[v] = value_[v];
  result.objective = model_.objective_value(result.values);
  return result;
}

}  // namespace

Solution solve(const LpModel& model, const SimplexOptions& options) {
  require(model.variable_count() > 0, "simplex: model has no variables");
  try {
    Solver solver(model, options, /*conservative=*/false);
    return solver.run();
  } catch (const InvariantError&) {
    // Numerical trouble (singular basis or drifted values): retry slowly
    // but safely — Bland's rule throughout and frequent refactorization.
  }
  try {
    Solver solver(model, options, /*conservative=*/true);
    return solver.run();
  } catch (const InvariantError&) {
    Solution failed;
    failed.status = SolveStatus::kIterationLimit;
    return failed;
  }
}

}  // namespace poq::lp
