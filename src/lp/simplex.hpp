// Bounded-variable two-phase revised simplex.
//
// Self-contained dense solver sized for the paper's steady-state programs:
// for |N| nodes the sigma/g/c formulation has Theta(|N|^3) variables and
// Theta(|N|^2) constraints, which a dense-inverse revised simplex handles
// comfortably up to |N| ~ 30 on one core. Box bounds on variables are
// handled natively (no bound rows), equality/inequality rows get logical
// slacks, and feasibility is found with explicit artificials (phase 1).
// Anti-cycling: Dantzig pricing with an automatic fallback to Bland's rule
// during degenerate stalls.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace poq::lp {

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

[[nodiscard]] std::string status_name(SolveStatus status);

struct SimplexOptions {
  std::uint32_t max_iterations = 200000;
  double feasibility_tolerance = 1e-7;
  double optimality_tolerance = 1e-7;
  double pivot_tolerance = 1e-8;
  /// Degenerate iterations tolerated before switching to Bland's rule.
  std::uint32_t stall_threshold = 64;
  /// Emit phase transitions and periodic progress to stderr (debugging).
  bool trace = false;
};

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Objective in the model's own sense (max problems are not negated).
  double objective = 0.0;
  /// One value per structural (model) variable; empty unless kOptimal.
  std::vector<double> values;
  std::uint64_t iterations = 0;
};

/// Solve `model`; never throws for solvable/unsolvable inputs (status
/// reports the outcome), throws PreconditionError for malformed models.
[[nodiscard]] Solution solve(const LpModel& model, const SimplexOptions& options = {});

}  // namespace poq::lp
