#include "net/bytes.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace poq::net {

void ByteWriter::write_u8(std::uint8_t value) { buffer_.push_back(value); }

void ByteWriter::write_u16(std::uint16_t value) {
  buffer_.push_back(static_cast<std::uint8_t>(value));
  buffer_.push_back(static_cast<std::uint8_t>(value >> 8));
}

void ByteWriter::write_u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void ByteWriter::write_u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void ByteWriter::write_varint(std::uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(value));
}

void ByteWriter::write_double(double value) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  write_u64(bits);
}

void ByteWriter::write_string(std::string_view value) {
  write_varint(value.size());
  buffer_.insert(buffer_.end(), value.begin(), value.end());
}

void ByteReader::need(std::size_t count) const {
  require(cursor_ + count <= bytes_.size(), "ByteReader: truncated input");
}

std::uint8_t ByteReader::read_u8() {
  need(1);
  return bytes_[cursor_++];
}

std::uint16_t ByteReader::read_u16() {
  need(2);
  std::uint16_t value = bytes_[cursor_];
  value |= static_cast<std::uint16_t>(bytes_[cursor_ + 1]) << 8;
  cursor_ += 2;
  return value;
}

std::uint32_t ByteReader::read_u32() {
  need(4);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(bytes_[cursor_ + i]) << (8 * i);
  }
  cursor_ += 4;
  return value;
}

std::uint64_t ByteReader::read_u64() {
  need(8);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(bytes_[cursor_ + i]) << (8 * i);
  }
  cursor_ += 8;
  return value;
}

std::uint64_t ByteReader::read_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const std::uint8_t byte = bytes_[cursor_++];
    require(shift < 64, "ByteReader: varint too long");
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

double ByteReader::read_double() {
  const std::uint64_t bits = read_u64();
  double value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

std::string ByteReader::read_string() {
  const std::uint64_t length = read_varint();
  need(length);
  std::string value(reinterpret_cast<const char*>(bytes_.data() + cursor_), length);
  cursor_ += length;
  return value;
}

}  // namespace poq::net
