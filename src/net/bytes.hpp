// Byte-level serialization for classical control messages.
//
// Every swap, count update and reservation in poqnet can be accounted in
// real bytes on the classical network (§2 "Classical overheads"); the
// encoders here are deterministic, little-endian, and varint-compressed so
// overhead numbers in the benches are meaningful rather than sizeof()
// guesses.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace poq::net {

/// Append-only encoder.
class ByteWriter {
 public:
  void write_u8(std::uint8_t value);
  void write_u16(std::uint16_t value);
  void write_u32(std::uint32_t value);
  void write_u64(std::uint64_t value);
  /// LEB128 unsigned varint (1 byte for values < 128).
  void write_varint(std::uint64_t value);
  /// IEEE-754 binary64, little-endian.
  void write_double(double value);
  /// Varint length prefix + raw bytes.
  void write_string(std::string_view value);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Sequential decoder over a byte span; throws PreconditionError on
/// truncated or malformed input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint16_t read_u16();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] std::uint64_t read_varint();
  [[nodiscard]] double read_double();
  [[nodiscard]] std::string read_string();

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - cursor_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  void need(std::size_t count) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace poq::net
