#include "net/fabric.hpp"

#include "util/error.hpp"

namespace poq::net {

namespace {
constexpr std::size_t kTypeCount = 9;  // tags 1..8 plus slot 0 unused

std::size_t type_slot(MessageType type) {
  const auto slot = static_cast<std::size_t>(type);
  ensure(slot >= 1 && slot < kTypeCount, "ClassicalFabric: bad message type");
  return slot;
}
}  // namespace

ClassicalFabric::ClassicalFabric(LatencyFn latency)
    : latency_(std::move(latency)), per_type_(kTypeCount) {
  require(static_cast<bool>(latency_), "ClassicalFabric: latency function required");
}

SimTime ClassicalFabric::send(NodeId src, NodeId dst, SimTime now, Message message) {
  const SimTime delay = latency_(src, dst);
  require(delay >= 0.0, "ClassicalFabric: negative latency");
  Envelope envelope;
  envelope.src = src;
  envelope.dst = dst;
  envelope.send_time = now;
  envelope.deliver_time = now + delay;

  TrafficStats& stats = per_type_[type_slot(message_type(message))];
  ++stats.messages;
  stats.bytes += encoded_size(message);

  const SimTime deliver_time = envelope.deliver_time;
  envelope.message = std::move(message);
  queue_.emplace(sequence_++, std::move(envelope));
  return deliver_time;
}

std::optional<Envelope> ClassicalFabric::poll(SimTime now) {
  if (queue_.empty() || queue_.top().second.deliver_time > now) return std::nullopt;
  Envelope envelope = queue_.top().second;
  queue_.pop();
  return envelope;
}

std::optional<SimTime> ClassicalFabric::next_delivery() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.top().second.deliver_time;
}

const TrafficStats& ClassicalFabric::stats(MessageType type) const {
  return per_type_[type_slot(type)];
}

TrafficStats ClassicalFabric::total_stats() const {
  TrafficStats total;
  for (const TrafficStats& stats : per_type_) {
    total.messages += stats.messages;
    total.bytes += stats.bytes;
  }
  return total;
}

}  // namespace poq::net
