// In-memory classical network fabric with latency and accounting.
//
// Both protocol families need a classical control plane: planned-path for
// reservations and swap notifications, path-oblivious for count
// dissemination (§2 "Classical overheads"). The fabric delivers encoded
// messages after a caller-supplied latency and keeps byte/message
// counters per message type so benches can report classical overhead per
// satisfied consumption.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "net/message.hpp"

namespace poq::net {

/// Simulation time in arbitrary units (the simulators use rounds or
/// seconds consistently within one experiment).
using SimTime = double;

/// Latency oracle: transfer delay from src to dst (e.g. per-hop delay
/// times hop distance). Must be non-negative.
using LatencyFn = std::function<SimTime(NodeId src, NodeId dst)>;

/// A message in flight or delivered.
struct Envelope {
  NodeId src = 0;
  NodeId dst = 0;
  SimTime send_time = 0.0;
  SimTime deliver_time = 0.0;
  Message message;
};

/// Per-type traffic counters.
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Deterministic store-and-forward fabric. Not thread-safe (the
/// simulators are single-threaded by design; determinism is a feature).
class ClassicalFabric {
 public:
  explicit ClassicalFabric(LatencyFn latency);

  /// Queue a message from src to dst at `now`; returns its delivery time.
  SimTime send(NodeId src, NodeId dst, SimTime now, Message message);

  /// Pop the next message with deliver_time <= `now` (FIFO among equal
  /// times by send order); nullopt when none is due.
  std::optional<Envelope> poll(SimTime now);

  /// Earliest pending delivery time; nullopt when idle.
  [[nodiscard]] std::optional<SimTime> next_delivery() const;

  [[nodiscard]] std::size_t in_flight() const { return queue_.size(); }

  [[nodiscard]] const TrafficStats& stats(MessageType type) const;
  [[nodiscard]] TrafficStats total_stats() const;

 private:
  struct Ordering {
    bool operator()(const std::pair<std::uint64_t, Envelope>& lhs,
                    const std::pair<std::uint64_t, Envelope>& rhs) const {
      if (lhs.second.deliver_time != rhs.second.deliver_time) {
        return lhs.second.deliver_time > rhs.second.deliver_time;
      }
      return lhs.first > rhs.first;  // FIFO tie-break by sequence
    }
  };

  LatencyFn latency_;
  std::uint64_t sequence_ = 0;
  std::priority_queue<std::pair<std::uint64_t, Envelope>,
                      std::vector<std::pair<std::uint64_t, Envelope>>, Ordering>
      queue_;
  std::vector<TrafficStats> per_type_;
};

}  // namespace poq::net
