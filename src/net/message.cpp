#include "net/message.hpp"

#include "util/error.hpp"

namespace poq::net {

MessageType message_type(const Message& message) {
  struct Visitor {
    MessageType operator()(const SwapNotify&) const { return MessageType::kSwapNotify; }
    MessageType operator()(const CountUpdate&) const { return MessageType::kCountUpdate; }
    MessageType operator()(const PathReserve&) const { return MessageType::kPathReserve; }
    MessageType operator()(const PathRelease&) const { return MessageType::kPathRelease; }
    MessageType operator()(const GossipControl&) const {
      return MessageType::kGossipControl;
    }
    MessageType operator()(const PairUpdate&) const { return MessageType::kPairUpdate; }
    MessageType operator()(const ConsumeOffer&) const {
      return MessageType::kConsumeOffer;
    }
    MessageType operator()(const ConsumeReply&) const {
      return MessageType::kConsumeReply;
    }
  };
  return std::visit(Visitor{}, message);
}

namespace {

void encode_body(ByteWriter& out, const SwapNotify& m) {
  out.write_varint(m.repeater);
  out.write_varint(m.left);
  out.write_varint(m.right);
  // The paper's "only 2 bits of classical information": packed into one
  // byte on the wire (bit 0 = z, bit 1 = x).
  out.write_u8(static_cast<std::uint8_t>((m.z_bit ? 1 : 0) | (m.x_bit ? 2 : 0)));
}

void encode_body(ByteWriter& out, const CountUpdate& m) {
  out.write_varint(m.reporter);
  out.write_varint(m.version);
  out.write_varint(m.entries.size());
  for (const CountUpdate::Entry& entry : m.entries) {
    out.write_varint(entry.peer);
    out.write_varint(entry.count);
  }
}

void encode_body(ByteWriter& out, const PathReserve& m) {
  out.write_varint(m.request_id);
  out.write_varint(m.path.size());
  for (NodeId node : m.path) out.write_varint(node);
}

void encode_body(ByteWriter& out, const PathRelease& m) {
  out.write_varint(m.request_id);
  out.write_u8(m.completed ? 1 : 0);
}

void encode_body(ByteWriter& out, const GossipControl& m) {
  out.write_varint(m.from);
  out.write_varint(m.to);
  out.write_u8(m.unchoke ? 1 : 0);
}

void encode_body(ByteWriter& out, const PairUpdate& m) {
  out.write_varint(m.to);
  out.write_varint(m.new_partner);
  out.write_varint(m.qubit);
  out.write_varint(m.new_partner_qubit);
  out.write_u8(static_cast<std::uint8_t>((m.z_bit ? 1 : 0) | (m.x_bit ? 2 : 0)));
}

void encode_body(ByteWriter& out, const ConsumeOffer& m) {
  out.write_varint(m.from);
  out.write_varint(m.to);
  out.write_varint(m.request_id);
  out.write_varint(m.initiator_qubit);
  out.write_varint(m.responder_qubit);
}

void encode_body(ByteWriter& out, const ConsumeReply& m) {
  out.write_varint(m.from);
  out.write_varint(m.to);
  out.write_varint(m.request_id);
  out.write_u8(m.accept ? 1 : 0);
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& message) {
  ByteWriter out;
  out.write_u8(static_cast<std::uint8_t>(message_type(message)));
  std::visit([&out](const auto& body) { encode_body(out, body); }, message);
  return out.bytes();
}

Message decode(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  const auto type = static_cast<MessageType>(in.read_u8());
  switch (type) {
    case MessageType::kSwapNotify: {
      SwapNotify m;
      m.repeater = static_cast<NodeId>(in.read_varint());
      m.left = static_cast<NodeId>(in.read_varint());
      m.right = static_cast<NodeId>(in.read_varint());
      const std::uint8_t bits = in.read_u8();
      m.z_bit = (bits & 1) != 0;
      m.x_bit = (bits & 2) != 0;
      return m;
    }
    case MessageType::kCountUpdate: {
      CountUpdate m;
      m.reporter = static_cast<NodeId>(in.read_varint());
      m.version = in.read_varint();
      const std::uint64_t count = in.read_varint();
      m.entries.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        CountUpdate::Entry entry;
        entry.peer = static_cast<NodeId>(in.read_varint());
        entry.count = static_cast<std::uint32_t>(in.read_varint());
        m.entries.push_back(entry);
      }
      return m;
    }
    case MessageType::kPathReserve: {
      PathReserve m;
      m.request_id = in.read_varint();
      const std::uint64_t length = in.read_varint();
      m.path.reserve(length);
      for (std::uint64_t i = 0; i < length; ++i) {
        m.path.push_back(static_cast<NodeId>(in.read_varint()));
      }
      return m;
    }
    case MessageType::kPathRelease: {
      PathRelease m;
      m.request_id = in.read_varint();
      m.completed = in.read_u8() != 0;
      return m;
    }
    case MessageType::kGossipControl: {
      GossipControl m;
      m.from = static_cast<NodeId>(in.read_varint());
      m.to = static_cast<NodeId>(in.read_varint());
      m.unchoke = in.read_u8() != 0;
      return m;
    }
    case MessageType::kPairUpdate: {
      PairUpdate m;
      m.to = static_cast<NodeId>(in.read_varint());
      m.new_partner = static_cast<NodeId>(in.read_varint());
      m.qubit = in.read_varint();
      m.new_partner_qubit = in.read_varint();
      const std::uint8_t bits = in.read_u8();
      m.z_bit = (bits & 1) != 0;
      m.x_bit = (bits & 2) != 0;
      return m;
    }
    case MessageType::kConsumeOffer: {
      ConsumeOffer m;
      m.from = static_cast<NodeId>(in.read_varint());
      m.to = static_cast<NodeId>(in.read_varint());
      m.request_id = in.read_varint();
      m.initiator_qubit = in.read_varint();
      m.responder_qubit = in.read_varint();
      return m;
    }
    case MessageType::kConsumeReply: {
      ConsumeReply m;
      m.from = static_cast<NodeId>(in.read_varint());
      m.to = static_cast<NodeId>(in.read_varint());
      m.request_id = in.read_varint();
      m.accept = in.read_u8() != 0;
      return m;
    }
  }
  throw PreconditionError("decode: unknown message type tag");
}

std::size_t encoded_size(const Message& message) { return encode(message).size(); }

}  // namespace poq::net
