// Classical control-plane messages.
//
// The paper's protocols exchange: the 2 bits completing each swap
// (Fig. 2), buffer-count state for the balancer (§4 assumes global
// knowledge; §6 relaxes it to gossip), and reservation traffic for the
// planned-path baselines (RSVP-like, cf. [33]). Each message encodes to a
// deterministic byte string so classical overhead is measured, not
// estimated.
#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "net/bytes.hpp"

namespace poq::net {

using NodeId = std::uint32_t;

/// Completion notice for swap left <- repeater -> right: carries the two
/// Bell-measurement bits the far end needs for its Pauli repair.
struct SwapNotify {
  NodeId repeater = 0;
  NodeId left = 0;
  NodeId right = 0;
  bool z_bit = false;
  bool x_bit = false;
};

/// One node's current Bell-pair counts toward a set of peers.
struct CountUpdate {
  NodeId reporter = 0;
  std::uint64_t version = 0;  // monotonically increasing per reporter
  struct Entry {
    NodeId peer = 0;
    std::uint32_t count = 0;
  };
  std::vector<Entry> entries;
};

/// Reserve swap capacity along an explicit path (planned-path baseline).
struct PathReserve {
  std::uint64_t request_id = 0;
  std::vector<NodeId> path;
};

/// Release a reservation after completion or failure.
struct PathRelease {
  std::uint64_t request_id = 0;
  bool completed = false;
};

/// BitTorrent-style neighbour management for partial-knowledge gossip
/// (§6): a node offers its counts to a rotating subset and chokes others.
struct GossipControl {
  NodeId from = 0;
  NodeId to = 0;
  bool unchoke = false;  // true: start exchanging counts; false: stop
};

/// Repointing notice after a remote swap (distributed protocol): "your
/// qubit `qubit` is now entangled with `new_partner_qubit` held at
/// `new_partner`". Carries the Bell-measurement bits for the Pauli frame.
struct PairUpdate {
  NodeId to = 0;
  NodeId new_partner = 0;
  std::uint64_t qubit = 0;
  std::uint64_t new_partner_qubit = 0;
  bool z_bit = false;
  bool x_bit = false;
};

/// Consumption handshake, initiator side: "let us consume the pair formed
/// by my `initiator_qubit` and your `responder_qubit`".
struct ConsumeOffer {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t request_id = 0;
  std::uint64_t initiator_qubit = 0;
  std::uint64_t responder_qubit = 0;
};

/// Consumption handshake, responder side.
struct ConsumeReply {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t request_id = 0;
  bool accept = false;
};

using Message = std::variant<SwapNotify, CountUpdate, PathReserve, PathRelease,
                             GossipControl, PairUpdate, ConsumeOffer, ConsumeReply>;

/// Stable wire tags (first byte of every encoded message).
enum class MessageType : std::uint8_t {
  kSwapNotify = 1,
  kCountUpdate = 2,
  kPathReserve = 3,
  kPathRelease = 4,
  kGossipControl = 5,
  kPairUpdate = 6,
  kConsumeOffer = 7,
  kConsumeReply = 8,
};

[[nodiscard]] MessageType message_type(const Message& message);

/// Serialize with a leading type tag.
[[nodiscard]] std::vector<std::uint8_t> encode(const Message& message);

/// Parse a message; throws PreconditionError on malformed input.
[[nodiscard]] Message decode(std::span<const std::uint8_t> bytes);

/// Encoded size in bytes without materializing the buffer twice.
[[nodiscard]] std::size_t encoded_size(const Message& message);

}  // namespace poq::net
