#include "quantum/circuits.hpp"

#include "quantum/gates.hpp"
#include "util/error.hpp"

namespace poq::quantum {

BellMeasurement bell_measure(Statevector& state, unsigned a, unsigned b,
                             util::Rng& rng) {
  state.apply_cnot(a, b);
  state.apply(gates::hadamard(), a);
  BellMeasurement bits;
  bits.z_bit = state.measure(a, rng);
  bits.x_bit = state.measure(b, rng);
  return bits;
}

BellMeasurement teleport(Statevector& state, unsigned source, unsigned bell_near,
                         unsigned bell_far, util::Rng& rng) {
  // Fig. 1(b)-(c): origin local operations and measurement.
  const BellMeasurement bits = bell_measure(state, source, bell_near, rng);
  // Fig. 1(d): destination repair using the 2 classical bits.
  if (bits.x_bit) state.apply(gates::pauli_x(), bell_far);
  if (bits.z_bit) state.apply(gates::pauli_z(), bell_far);
  return bits;
}

BellMeasurement entanglement_swap(Statevector& state, unsigned mid_a, unsigned mid_b,
                                  unsigned right, util::Rng& rng) {
  // Swapping is teleportation of mid_a's half through the (mid_b, right)
  // channel; afterwards mid_a's old partner is entangled with `right`.
  return teleport(state, mid_a, mid_b, right, rng);
}

Statevector swap_chain(unsigned hops, const std::vector<unsigned>& swap_order,
                       util::Rng& rng) {
  require(hops >= 1 && hops <= 11, "swap_chain: hops must be in [1, 11]");
  require(swap_order.size() + 1 == hops,
          "swap_chain: need exactly hops-1 repeater swaps");

  // Pair k spans nodes (k, k+1) on qubits (2k, 2k+1); repeater j in
  // 1..hops-1 holds qubits (2j-1, 2j).
  Statevector state(2 * hops);
  std::vector<unsigned> partner(2 * hops);
  for (unsigned k = 0; k < hops; ++k) {
    state.prepare_bell_phi_plus(2 * k, 2 * k + 1);
    partner[2 * k] = 2 * k + 1;
    partner[2 * k + 1] = 2 * k;
  }

  std::vector<bool> swapped(hops, false);
  for (unsigned repeater : swap_order) {
    require(repeater >= 1 && repeater < hops, "swap_chain: repeater out of range");
    require(!swapped[repeater], "swap_chain: repeater listed twice");
    swapped[repeater] = true;
    const unsigned left_half = 2 * repeater - 1;
    const unsigned right_half = 2 * repeater;
    const unsigned left_end = partner[left_half];
    const unsigned right_end = partner[right_half];
    entanglement_swap(state, left_half, right_half, right_end, rng);
    partner[left_end] = right_end;
    partner[right_end] = left_end;
  }

  const unsigned origin = 0;
  const unsigned destination = partner[origin];
  ensure(destination == 2 * hops - 1, "swap_chain: endpoints failed to connect");

  // All repeater qubits are measured out, so the register factorizes as
  // (definite bits) x (origin, destination); marginalize onto a fresh
  // 2-qubit register.
  Statevector result(2);
  std::vector<Amplitude> out(4, Amplitude{0.0, 0.0});
  const auto amps = state.amplitudes();
  for (std::size_t index = 0; index < amps.size(); ++index) {
    if (amps[index] == Amplitude{0.0, 0.0}) continue;
    const std::size_t bit0 = (index >> origin) & 1U;
    const std::size_t bit1 = (index >> destination) & 1U;
    out[bit0 + 2 * bit1] += amps[index];
  }
  result = Statevector::from_amplitudes(std::move(out));
  return result;
}

Statevector phi_plus_reference() {
  Statevector state(2);
  state.prepare_bell_phi_plus(0, 1);
  return state;
}

}  // namespace poq::quantum
