// The paper's mechanism circuits (Figs. 1-3) on exact state.
//
// Teleportation (Fig. 1): origin applies CNOT+H to (psi, bell half),
// measures both, sends 2 classical bits; destination repairs with X/Z.
// Entanglement swapping (Fig. 2) is teleportation where psi is itself half
// of another Bell pair: the repeater Bell-measures its two halves and the
// far ends become directly entangled. A swap chain (Fig. 3) iterates this
// along a repeater path — in any order, which tests verify.
#pragma once

#include <vector>

#include "quantum/statevector.hpp"
#include "util/rng.hpp"

namespace poq::quantum {

/// Result of a Bell-basis measurement: the two classical bits the paper's
/// Fig. 1(d)/Fig. 2(b) transmit.
struct BellMeasurement {
  bool z_bit = false;  // from measuring the H-transformed qubit
  bool x_bit = false;  // from measuring the CNOT target qubit
};

/// Bell-measure qubits (a, b): CNOT(a->b), H(a), measure both.
BellMeasurement bell_measure(Statevector& state, unsigned a, unsigned b,
                             util::Rng& rng);

/// Teleport the state of `source` onto `bell_far`, where (bell_near,
/// bell_far) hold a Phi+ pair. Performs the origin-side operations and
/// measurement, then the destination repair (X if x_bit, Z if z_bit).
/// After the call `bell_far` carries the source state; `source` and
/// `bell_near` are collapsed.
BellMeasurement teleport(Statevector& state, unsigned source, unsigned bell_near,
                         unsigned bell_far, util::Rng& rng);

/// Entanglement swap at a repeater (Fig. 2): pairs (left, mid_a) and
/// (mid_b, right) are each Phi+; after the call (left, right) are Phi+ and
/// the repeater qubits are measured out. Returns the 2 classical bits that
/// were "sent" to `right` for the repair.
BellMeasurement entanglement_swap(Statevector& state, unsigned mid_a, unsigned mid_b,
                                  unsigned right, util::Rng& rng);

/// Builds a repeater chain of `hops` elementary Phi+ pairs
/// (Fig. 3: origin R1 ... R_{hops-1} destination), performs all swaps in
/// `swap_order` (a permutation of the repeater indices 1..hops-1), and
/// returns the final 2-qubit state of (origin, destination) as qubits
/// (0, 1) of a fresh 2-qubit register for fidelity checks.
///
/// The register uses 2*hops qubits; hops is limited to 11.
Statevector swap_chain(unsigned hops, const std::vector<unsigned>& swap_order,
                       util::Rng& rng);

/// Reference Phi+ two-qubit state.
[[nodiscard]] Statevector phi_plus_reference();

}  // namespace poq::quantum
