#include "quantum/distillation.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::quantum {

DistillationStep bbpssw(double f1, double f2) {
  require(f1 >= 0.0 && f1 <= 1.0 && f2 >= 0.0 && f2 <= 1.0,
          "bbpssw: fidelities must lie in [0,1]");
  const double g1 = (1.0 - f1) / 3.0;  // weight of each non-target Bell state
  const double g2 = (1.0 - f2) / 3.0;
  const double success =
      f1 * f2 + f1 * g2 + g1 * f2 + 5.0 * g1 * g2;
  const double numerator = f1 * f2 + g1 * g2;
  DistillationStep step;
  step.success_probability = success;
  step.output_fidelity = success > 0.0 ? numerator / success : 0.0;
  return step;
}

DejmpsResult dejmps(const BellDiagonal& s1, const BellDiagonal& s2) {
  // DEJMPS recurrence for two Bell-diagonal states with weights
  // (a, b, c, d) on (Phi+, Psi+, Psi-, Phi-), after the standard local
  // rotations. Success keeps both target-correlated branches.
  const double n = (s1.a + s1.d) * (s2.a + s2.d) + (s1.b + s1.c) * (s2.b + s2.c);
  DejmpsResult result;
  result.success_probability = n;
  if (n <= 0.0) return result;
  result.output.a = (s1.a * s2.a + s1.d * s2.d) / n;
  result.output.b = (s1.b * s2.b + s1.c * s2.c) / n;
  result.output.c = (s1.b * s2.c + s1.c * s2.b) / n;
  result.output.d = (s1.a * s2.d + s1.d * s2.a) / n;
  return result;
}

DistillationCost nested_distillation_cost(double raw_fidelity, double target_fidelity,
                                          unsigned max_rounds) {
  require(raw_fidelity > 0.0 && raw_fidelity <= 1.0,
          "nested_distillation_cost: raw fidelity in (0,1]");
  require(target_fidelity > 0.0 && target_fidelity <= 1.0,
          "nested_distillation_cost: target fidelity in (0,1]");
  DistillationCost cost;
  double fidelity = raw_fidelity;
  double expected = 1.0;
  unsigned round = 0;
  while (fidelity + 1e-12 < target_fidelity && round < max_rounds) {
    const DistillationStep step = bbpssw(fidelity, fidelity);
    if (step.output_fidelity <= fidelity + 1e-12) {
      return cost;  // fixed point below target: unreachable
    }
    expected = 2.0 * expected / step.success_probability;
    fidelity = step.output_fidelity;
    ++round;
  }
  if (fidelity + 1e-12 < target_fidelity) return cost;  // ran out of rounds
  cost.reachable = true;
  cost.rounds = round;
  cost.expected_raw_pairs = expected;
  cost.output_fidelity = fidelity;
  return cost;
}

DistillationCost pumping_cost(double raw_fidelity, double target_fidelity,
                              unsigned max_rounds) {
  require(raw_fidelity > 0.0 && raw_fidelity <= 1.0,
          "pumping_cost: raw fidelity in (0,1]");
  require(target_fidelity > 0.0 && target_fidelity <= 1.0,
          "pumping_cost: target fidelity in (0,1]");
  DistillationCost cost;
  // Expected raw pairs E_k to hold a buffered pair at pump level k:
  // success at level k consumes E_{k-1} buffered cost + 1 fresh pair and
  // happens with probability p_k; on failure everything restarts. For a
  // sequential pump the standard recursion is
  //   E_k = (E_{k-1} + 1) / p_k
  // (fresh pair costs 1 raw pair; failures discard both).
  double fidelity = raw_fidelity;
  double expected = 1.0;
  unsigned round = 0;
  while (fidelity + 1e-12 < target_fidelity && round < max_rounds) {
    const DistillationStep step = bbpssw(fidelity, raw_fidelity);
    if (step.output_fidelity <= fidelity + 1e-12) return cost;
    expected = (expected + 1.0) / step.success_probability;
    fidelity = step.output_fidelity;
    ++round;
  }
  if (fidelity + 1e-12 < target_fidelity) return cost;
  cost.reachable = true;
  cost.rounds = round;
  cost.expected_raw_pairs = expected;
  cost.output_fidelity = fidelity;
  return cost;
}

double distillation_overhead(double raw_fidelity, double target_fidelity) {
  const DistillationCost cost = nested_distillation_cost(raw_fidelity, target_fidelity);
  require(cost.reachable,
          util::str_cat("distillation_overhead: target fidelity ", target_fidelity,
                        " unreachable from raw fidelity ", raw_fidelity));
  return cost.expected_raw_pairs;
}

}  // namespace poq::quantum
