// Entanglement distillation (a.k.a. purification) models.
//
// §2 of the paper: "a predictive process that uses (and destroys) one Bell
// pair to assess the correctness of another", and §3.2 folds its expected
// cost into a per-pair scalar D_{x,y}. This module implements the two
// canonical recurrence protocols the paper cites ([6] BBPSSW; DEJMPS) and
// derives D: the expected number of raw pairs consumed to produce one
// pair at target fidelity, via nested distillation or pumping.
#pragma once

#include "quantum/werner.hpp"

namespace poq::quantum {

/// Outcome of one probabilistic distillation round on two input pairs.
struct DistillationStep {
  double success_probability = 0.0;
  double output_fidelity = 0.0;  // conditioned on success
};

/// BBPSSW round on two Werner pairs (twirled back to Werner afterwards).
[[nodiscard]] DistillationStep bbpssw(double f1, double f2);

/// DEJMPS round on two Bell-diagonal states (no twirl; keeps the full
/// diagonal). Output state is Bell-diagonal again.
struct DejmpsResult {
  double success_probability = 0.0;
  BellDiagonal output;  // conditioned on success
};
[[nodiscard]] DejmpsResult dejmps(const BellDiagonal& s1, const BellDiagonal& s2);

/// Cost of reaching `target_fidelity` from raw Werner pairs of fidelity
/// `raw_fidelity`.
struct DistillationCost {
  bool reachable = false;
  unsigned rounds = 0;              // nesting depth (0 if raw already suffices)
  double expected_raw_pairs = 1.0;  // E[# raw pairs] per output pair
  double output_fidelity = 0.0;
};

/// Symmetric nested BBPSSW: level-k pairs are distilled from two level-
/// (k-1) pairs; expected raw cost E_k = 2 E_{k-1} / p_k. `max_rounds`
/// bounds the search (fidelity converges to a fixed point < 1, so some
/// targets are unreachable).
[[nodiscard]] DistillationCost nested_distillation_cost(double raw_fidelity,
                                                        double target_fidelity,
                                                        unsigned max_rounds = 32);

/// Entanglement pumping: keep one buffered pair, repeatedly distill it
/// with fresh raw pairs (restarting from raw on failure). Cheaper in
/// memory than nesting but converges to a lower fixed point.
[[nodiscard]] DistillationCost pumping_cost(double raw_fidelity, double target_fidelity,
                                            unsigned max_rounds = 64);

/// The paper's D_{x,y}: expected Bell pairs consumed per usable pair,
/// derived from nested BBPSSW. Returns 1.0 when raw fidelity already
/// meets the target (no distillation needed). Throws if unreachable.
[[nodiscard]] double distillation_overhead(double raw_fidelity, double target_fidelity);

}  // namespace poq::quantum
