#include "quantum/gates.hpp"

#include <cmath>

namespace poq::quantum::gates {

namespace {
using C = Amplitude;
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
}  // namespace

Gate1 identity() { return Gate1{{C{1, 0}, C{0, 0}, C{0, 0}, C{1, 0}}}; }

Gate1 pauli_x() { return Gate1{{C{0, 0}, C{1, 0}, C{1, 0}, C{0, 0}}}; }

Gate1 pauli_y() { return Gate1{{C{0, 0}, C{0, -1}, C{0, 1}, C{0, 0}}}; }

Gate1 pauli_z() { return Gate1{{C{1, 0}, C{0, 0}, C{0, 0}, C{-1, 0}}}; }

Gate1 hadamard() {
  return Gate1{{C{kInvSqrt2, 0}, C{kInvSqrt2, 0}, C{kInvSqrt2, 0}, C{-kInvSqrt2, 0}}};
}

Gate1 phase_s() { return Gate1{{C{1, 0}, C{0, 0}, C{0, 0}, C{0, 1}}}; }

Gate1 phase_t() {
  return Gate1{{C{1, 0}, C{0, 0}, C{0, 0}, C{kInvSqrt2, kInvSqrt2}}};
}

Gate1 rotation_x(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Gate1{{C{c, 0}, C{0, -s}, C{0, -s}, C{c, 0}}};
}

Gate1 rotation_y(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Gate1{{C{c, 0}, C{-s, 0}, C{s, 0}, C{c, 0}}};
}

Gate1 rotation_z(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Gate1{{C{c, -s}, C{0, 0}, C{0, 0}, C{c, s}}};
}

}  // namespace poq::quantum::gates
