// Standard single-qubit gates as Gate1 constants.
#pragma once

#include "quantum/statevector.hpp"

namespace poq::quantum::gates {

/// Identity.
[[nodiscard]] Gate1 identity();
/// Pauli-X (bit flip).
[[nodiscard]] Gate1 pauli_x();
/// Pauli-Y.
[[nodiscard]] Gate1 pauli_y();
/// Pauli-Z (phase flip).
[[nodiscard]] Gate1 pauli_z();
/// Hadamard.
[[nodiscard]] Gate1 hadamard();
/// Phase gate S = diag(1, i).
[[nodiscard]] Gate1 phase_s();
/// T gate = diag(1, e^{i pi/4}).
[[nodiscard]] Gate1 phase_t();
/// Rotation about X by angle theta.
[[nodiscard]] Gate1 rotation_x(double theta);
/// Rotation about Y by angle theta.
[[nodiscard]] Gate1 rotation_y(double theta);
/// Rotation about Z by angle theta.
[[nodiscard]] Gate1 rotation_z(double theta);

}  // namespace poq::quantum::gates
