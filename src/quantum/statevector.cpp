#include "quantum/statevector.hpp"

#include <cmath>

#include "util/error.hpp"

namespace poq::quantum {

Statevector::Statevector(unsigned qubit_count)
    : qubit_count_(qubit_count), amplitudes_(std::size_t{1} << qubit_count) {
  require(qubit_count >= 1 && qubit_count <= 24,
          "Statevector: qubit count must be in [1, 24]");
  amplitudes_[0] = Amplitude{1.0, 0.0};
}

Statevector Statevector::from_amplitudes(std::vector<Amplitude> amplitudes) {
  unsigned qubits = 0;
  while ((std::size_t{1} << qubits) < amplitudes.size()) ++qubits;
  require((std::size_t{1} << qubits) == amplitudes.size() && !amplitudes.empty(),
          "Statevector::from_amplitudes: size must be a power of two");
  Statevector state(qubits);
  double norm = 0.0;
  for (const Amplitude& a : amplitudes) norm += std::norm(a);
  require(norm > 1e-12, "Statevector::from_amplitudes: zero vector");
  const double scale = 1.0 / std::sqrt(norm);
  for (Amplitude& a : amplitudes) a *= scale;
  state.amplitudes_ = std::move(amplitudes);
  return state;
}

void Statevector::check_qubit(unsigned qubit) const {
  require(qubit < qubit_count_, "Statevector: qubit index out of range");
}

double Statevector::norm_squared() const {
  double total = 0.0;
  for (const Amplitude& a : amplitudes_) total += std::norm(a);
  return total;
}

double Statevector::fidelity_with(const Statevector& other) const {
  require(other.qubit_count_ == qubit_count_,
          "Statevector::fidelity_with: qubit count mismatch");
  Amplitude overlap{0.0, 0.0};
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    overlap += std::conj(other.amplitudes_[i]) * amplitudes_[i];
  }
  return std::norm(overlap);
}

void Statevector::apply(const Gate1& gate, unsigned qubit) {
  check_qubit(qubit);
  const std::size_t step = stride(qubit);
  for (std::size_t base = 0; base < amplitudes_.size(); base += 2 * step) {
    for (std::size_t offset = 0; offset < step; ++offset) {
      Amplitude& a0 = amplitudes_[base + offset];
      Amplitude& a1 = amplitudes_[base + offset + step];
      const Amplitude new0 = gate.m[0] * a0 + gate.m[1] * a1;
      const Amplitude new1 = gate.m[2] * a0 + gate.m[3] * a1;
      a0 = new0;
      a1 = new1;
    }
  }
}

void Statevector::apply_cnot(unsigned control, unsigned target) {
  check_qubit(control);
  check_qubit(target);
  require(control != target, "apply_cnot: control must differ from target");
  const std::size_t cbit = stride(control);
  const std::size_t tbit = stride(target);
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    // Swap amplitude with its target-flipped partner once per pair.
    if ((i & cbit) != 0 && (i & tbit) == 0) {
      std::swap(amplitudes_[i], amplitudes_[i | tbit]);
    }
  }
}

void Statevector::apply_cz(unsigned a, unsigned b) {
  check_qubit(a);
  check_qubit(b);
  require(a != b, "apply_cz: qubits must differ");
  const std::size_t abit = stride(a);
  const std::size_t bbit = stride(b);
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    if ((i & abit) != 0 && (i & bbit) != 0) amplitudes_[i] = -amplitudes_[i];
  }
}

double Statevector::probability_one(unsigned qubit) const {
  check_qubit(qubit);
  const std::size_t bit = stride(qubit);
  double total = 0.0;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    if ((i & bit) != 0) total += std::norm(amplitudes_[i]);
  }
  return total;
}

bool Statevector::measure(unsigned qubit, util::Rng& rng) {
  const double p1 = probability_one(qubit);
  const bool outcome = rng.uniform_double() < p1;
  project(qubit, outcome);
  return outcome;
}

double Statevector::project(unsigned qubit, bool outcome) {
  check_qubit(qubit);
  const double p1 = probability_one(qubit);
  const double p = outcome ? p1 : 1.0 - p1;
  require(p > 1e-12, "Statevector::project: branch has zero probability");
  const std::size_t bit = stride(qubit);
  const double scale = 1.0 / std::sqrt(p);
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    const bool is_one = (i & bit) != 0;
    if (is_one == outcome) {
      amplitudes_[i] *= scale;
    } else {
      amplitudes_[i] = Amplitude{0.0, 0.0};
    }
  }
  return p;
}

void Statevector::prepare_bell_phi_plus(unsigned a, unsigned b) {
  check_qubit(a);
  check_qubit(b);
  require(a != b, "prepare_bell_phi_plus: qubits must differ");
  // H on a, then CNOT a->b. Correct only if (a, b) start in |00>; callers
  // use fresh qubits so we do not pay for a full verification here.
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  const Gate1 hadamard{{Amplitude{inv_sqrt2, 0}, Amplitude{inv_sqrt2, 0},
                        Amplitude{inv_sqrt2, 0}, Amplitude{-inv_sqrt2, 0}}};
  apply(hadamard, a);
  apply_cnot(a, b);
}

}  // namespace poq::quantum
