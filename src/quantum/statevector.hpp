// Dense n-qubit statevector simulator.
//
// poqnet's protocol layers reason about Bell pairs abstractly (counts and
// fidelities); this module grounds those abstractions by executing the
// actual circuits of the paper's Figs. 1-3 — teleportation, entanglement
// swapping, and swap chains — on exact quantum state. It is sized for
// mechanism validation (tens of qubits), not large-scale simulation.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace poq::quantum {

using Amplitude = std::complex<double>;

/// 2x2 single-qubit gate, row-major: {m00, m01, m10, m11}.
struct Gate1 {
  Amplitude m[4];
};

/// Exact state of `qubit_count` qubits; qubit 0 is the least significant
/// bit of the basis index. Initialized to |0...0>.
class Statevector {
 public:
  explicit Statevector(unsigned qubit_count);

  /// Build a state directly from amplitudes (size must be a power of two);
  /// the vector is renormalized. Used when marginalizing a product state
  /// onto a subregister.
  [[nodiscard]] static Statevector from_amplitudes(std::vector<Amplitude> amplitudes);

  [[nodiscard]] unsigned qubit_count() const { return qubit_count_; }
  [[nodiscard]] std::size_t dimension() const { return amplitudes_.size(); }

  [[nodiscard]] std::span<const Amplitude> amplitudes() const { return amplitudes_; }

  /// Squared norm (should stay 1 up to rounding).
  [[nodiscard]] double norm_squared() const;

  /// |<other|this>|^2; requires equal qubit counts.
  [[nodiscard]] double fidelity_with(const Statevector& other) const;

  /// Apply a single-qubit gate to `qubit`.
  void apply(const Gate1& gate, unsigned qubit);

  /// Controlled-NOT with the given control and target qubits.
  void apply_cnot(unsigned control, unsigned target);

  /// Controlled-Z (symmetric in its arguments).
  void apply_cz(unsigned a, unsigned b);

  /// Probability that measuring `qubit` yields 1.
  [[nodiscard]] double probability_one(unsigned qubit) const;

  /// Projective measurement of `qubit` in the computational basis;
  /// collapses and renormalizes the state. Returns the outcome bit.
  bool measure(unsigned qubit, util::Rng& rng);

  /// Force a measurement outcome (for exhaustively testing all branches);
  /// returns the probability the outcome had. The state collapses to the
  /// chosen branch (renormalized). Requires the branch probability > 0.
  double project(unsigned qubit, bool outcome);

  /// Prepare the Phi+ Bell state (|00>+|11>)/sqrt(2) on qubits (a, b),
  /// which must currently be in |0> and unentangled with the rest
  /// (callers typically use fresh qubits).
  void prepare_bell_phi_plus(unsigned a, unsigned b);

 private:
  [[nodiscard]] std::size_t stride(unsigned qubit) const { return std::size_t{1} << qubit; }
  void check_qubit(unsigned qubit) const;

  unsigned qubit_count_;
  std::vector<Amplitude> amplitudes_;
};

}  // namespace poq::quantum
