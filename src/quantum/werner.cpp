#include "quantum/werner.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace poq::quantum {

double werner_parameter(double fidelity) {
  require(fidelity >= 0.0 && fidelity <= 1.0, "werner_parameter: F in [0,1]");
  return (4.0 * fidelity - 1.0) / 3.0;
}

double werner_fidelity(double parameter) {
  require(parameter >= -1.0 / 3.0 && parameter <= 1.0,
          "werner_fidelity: p in [-1/3, 1]");
  return parameter + (1.0 - parameter) / 4.0;
}

double swap_fidelity(double f1, double f2) {
  return werner_fidelity(werner_parameter(f1) * werner_parameter(f2));
}

double chain_fidelity(double f, unsigned segments) {
  require(segments >= 1, "chain_fidelity: need >= 1 segment");
  // p multiplies under swapping, so an n-segment chain has p^n.
  return werner_fidelity(std::pow(werner_parameter(f), segments));
}

double decohered_fidelity(double f0, double elapsed, double time_constant) {
  require(elapsed >= 0.0, "decohered_fidelity: negative time");
  require(time_constant > 0.0, "decohered_fidelity: non-positive time constant");
  return kMixedFidelity + (f0 - kMixedFidelity) * std::exp(-elapsed / time_constant);
}

double time_to_fidelity(double f0, double f_min, double time_constant) {
  require(time_constant > 0.0, "time_to_fidelity: non-positive time constant");
  if (f_min <= kMixedFidelity) return std::numeric_limits<double>::infinity();
  if (f0 <= f_min) return 0.0;
  return time_constant * std::log((f0 - kMixedFidelity) / (f_min - kMixedFidelity));
}

BellDiagonal BellDiagonal::werner(double fidelity) {
  const double rest = (1.0 - fidelity) / 3.0;
  return BellDiagonal{fidelity, rest, rest, rest};
}

}  // namespace poq::quantum
