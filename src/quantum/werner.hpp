// Werner / Bell-diagonal state algebra.
//
// Protocol-level simulations cannot afford statevectors per Bell pair, so
// poqnet tracks each stored pair as a Werner (or Bell-diagonal) state:
// fidelity F to Phi+ plus white noise. This module provides the standard
// closed forms: fidelity composition under entanglement swapping,
// depolarizing decoherence over storage time, and conversions. These are
// the quantities §2/§3.2 of the paper abstracts into D_{x,y} and L_{x,y}.
#pragma once

namespace poq::quantum {

/// Fidelity below which a Werner pair is no better than a classically
/// correlated pair (F = 1/2) — distillation only works above this.
inline constexpr double kDistillableThreshold = 0.5;

/// Fidelity of the maximally mixed two-qubit state.
inline constexpr double kMixedFidelity = 0.25;

/// Werner parameter p in rho = p |Phi+><Phi+| + (1-p) I/4 for fidelity F.
[[nodiscard]] double werner_parameter(double fidelity);

/// Fidelity for Werner parameter p.
[[nodiscard]] double werner_fidelity(double parameter);

/// Fidelity after a perfect-operation entanglement swap of two Werner
/// pairs with fidelities f1 and f2: F' = 1/4 + (3/4) p1 p2.
[[nodiscard]] double swap_fidelity(double f1, double f2);

/// Fidelity of an n-segment chain of identical Werner pairs (fidelity f)
/// after n-1 swaps; order-independent.
[[nodiscard]] double chain_fidelity(double f, unsigned segments);

/// Depolarizing decoherence in storage: F(t) = 1/4 + (F0 - 1/4) e^{-t/T}.
[[nodiscard]] double decohered_fidelity(double f0, double elapsed, double time_constant);

/// Time until fidelity decays from f0 to f_min under the same model;
/// +infinity if f_min <= 1/4, 0 if already below.
[[nodiscard]] double time_to_fidelity(double f0, double f_min, double time_constant);

/// Bell-diagonal state: weights on (Phi+, Psi+, Psi-, Phi-); a Werner
/// state has b = c = d = (1-a)/3.
struct BellDiagonal {
  double a = 1.0;  // fidelity to Phi+
  double b = 0.0;
  double c = 0.0;
  double d = 0.0;

  [[nodiscard]] static BellDiagonal werner(double fidelity);
  [[nodiscard]] double fidelity() const { return a; }
  [[nodiscard]] double weight_sum() const { return a + b + c + d; }
};

}  // namespace poq::quantum
