// Built-in protocol adapters: the bridge between the unified scenario API
// and the per-family simulators in core/. Each adapter declares its knob
// schema (which doubles as the poqsim CLI surface) and maps the family's
// Result struct onto RunMetrics. All per-protocol Config/Result plumbing
// in the repo lives here and nowhere else.
//
// Conventions shared by the adapters:
//   * config.seed = spec.seed, topology from Rng(seed), workload from
//     fork(42) — via scenario::instantiate, matching the historical CLI
//     seeding so numbers are comparable across the redesign;
//   * round-based runs publish label "completed" (yes/no) plus scalar
//     "starved" (1 when no satisfied request was costed), and overhead
//     metrics only when the denominator is positive, so sweep aggregation
//     reproduces the benches' starved-cell semantics.
#include <memory>

#include "core/async_routing.hpp"
#include "core/balancing_sim.hpp"
#include "core/distributed.hpp"
#include "core/fidelity_sim.hpp"
#include "core/gossip.hpp"
#include "core/hybrid.hpp"
#include "core/lp_formulation.hpp"
#include "core/planned_path.hpp"
#include "scenario/protocol.hpp"
#include "sim/fault_plan.hpp"
#include "sim/parallel_engine.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::scenario {

namespace {

/// Intra-run concurrency knobs shared by every protocol ported onto the
/// phase-kernel engine (balancing, planned, hybrid, gossip, fidelity) or
/// the vertex-program substrate (distributed, async_routing). The engine
/// default is sharded: its results are bit-identical for every
/// threads/shards setting, so parallelism is purely a performance
/// decision; `sequential` selects the single-threaded loop (for the
/// phase-kernel protocols that is the legacy stream discipline with
/// different numbers; for the vertex-program ones it is the same code
/// inline and bit-identical). Protocols with no engine at all (lp) do not
/// declare these knobs and the registry rejects them outright.
std::vector<KnobSpec> tick_knobs() {
  return {
      {"engine", KnobType::kString, std::string("sharded"),
       "tick engine: sharded (deterministic intra-run parallelism) or "
       "sequential (single-threaded loop)"},
      {"threads", KnobType::kInt, std::int64_t{1},
       "intra-run worker threads (0 = hardware; never changes results)"},
      {"shards", KnobType::kInt, std::int64_t{0},
       "work shards per phase (0 = auto; never changes results)"},
      {"decide", KnobType::kString, std::string("incremental"),
       "swap-decide mode: incremental (dirty-set candidate cache) or "
       "full (rescan every node); never changes results"},
  };
}

sim::TickConcurrency tick_from_spec(const std::string& protocol,
                                    const ScenarioSpec& spec) {
  sim::TickConcurrency tick;
  const std::string engine = spec.knob_string("engine", "sharded");
  if (engine == "sharded") {
    tick.mode = sim::TickMode::kSharded;
  } else if (engine == "sequential") {
    tick.mode = sim::TickMode::kSequential;
  } else {
    throw PreconditionError(util::str_cat(
        protocol, ": knob 'engine' must be sharded or sequential, got '",
        engine, "'"));
  }
  const std::int64_t threads = spec.knob_int("threads", 1);
  require(threads >= 0 && threads <= 4096,
          "knob 'threads' must be in [0, 4096]");
  tick.threads = static_cast<std::uint32_t>(threads);
  const std::int64_t shards = spec.knob_int("shards", 0);
  require(shards >= 0 && shards <= 1 << 20, "knob 'shards' must be >= 0");
  tick.shards = static_cast<std::uint32_t>(shards);
  const std::string decide = spec.knob_string("decide", "incremental");
  if (decide == "incremental") {
    tick.incremental_decide = true;
  } else if (decide == "full") {
    tick.incremental_decide = false;
  } else {
    throw PreconditionError(util::str_cat(
        protocol, ": knob 'decide' must be incremental or full, got '", decide,
        "'"));
  }
  return tick;
}

/// Fault-injection knobs shared by every simulator protocol (everything
/// except lp, which scales capacities by expected availability instead of
/// simulating churn). Scripted events travel as the spec's `faults` array,
/// not a knob: they are structured (round, kind, entity) rather than a
/// scalar.
std::vector<KnobSpec> fault_knobs() {
  return {
      {"fault-node-mtbf", KnobType::kDouble, 0.0,
       "mean rounds between crashes per node (0 = no stochastic node "
       "faults); crash purges the node's stored pairs"},
      {"fault-node-mttr", KnobType::kDouble, 10.0,
       "mean rounds to recover a crashed node"},
      {"fault-link-mtbf", KnobType::kDouble, 0.0,
       "mean rounds between failures per generation edge (0 = none); a "
       "down link halts generation, stored pairs survive"},
      {"fault-link-mttr", KnobType::kDouble, 10.0,
       "mean rounds to recover a failed link"},
      {"fault-rate-degradation", KnobType::kDouble, 0.0,
       "per-round generation-rate degradation depth in [0, 1)"},
  };
}

sim::FaultConfig fault_config_from_spec(const ScenarioSpec& spec) {
  sim::FaultConfig config;
  config.node_mtbf = spec.knob_double("fault-node-mtbf", 0.0);
  config.node_mttr = spec.knob_double("fault-node-mttr", 10.0);
  config.link_mtbf = spec.knob_double("fault-link-mtbf", 0.0);
  config.link_mttr = spec.knob_double("fault-link-mttr", 10.0);
  config.rate_degradation = spec.knob_double("fault-rate-degradation", 0.0);
  config.script = spec.faults;
  return config;
}

/// Resilience metrics, emitted only when faults are engaged so fault-free
/// runs (and every committed baseline) keep their historical metric set
/// byte for byte — the same conditional-emission discipline as the
/// streaming counters. Works on any family Result carrying the shared
/// resilience field set.
template <typename Result>
void add_fault_metrics(RunMetrics& metrics, const sim::FaultConfig& config,
                       const Result& result) {
  if (!config.enabled()) return;
  metrics.set_scalar("availability", result.availability);
  metrics.set_scalar("fault_rounds_degraded",
                     static_cast<double>(result.fault_rounds_degraded));
  metrics.set_scalar("delivered_under_fault",
                     static_cast<double>(result.delivered_under_fault));
  metrics.set_scalar("node_crashes", static_cast<double>(result.node_crashes));
  metrics.set_scalar("link_downs", static_cast<double>(result.link_downs));
  metrics.set_scalar("pairs_purged_by_faults",
                     static_cast<double>(result.pairs_purged_by_faults));
  metrics.set_stats("time_to_recover", result.time_to_recover);
}

/// Surface the phase-kernel wall-clock (RunMetrics timings; excluded from
/// every determinism/regression comparison, like wall_ms).
void add_phase_timings(RunMetrics& metrics, const sim::PhaseTimers& phase) {
  metrics.set_timing("phase_ms.generate", static_cast<double>(phase.generate_ns) / 1e6);
  metrics.set_timing("phase_ms.decide", static_cast<double>(phase.decide_ns) / 1e6);
  metrics.set_timing("phase_ms.commit", static_cast<double>(phase.commit_ns) / 1e6);
  metrics.set_timing("phase_ms.decohere", static_cast<double>(phase.decohere_ns) / 1e6);
  // Chunk-scheduler load balance (max-over-mean chunk wall-clock): a
  // timing like the phase_ms entries — observability only, never part of
  // a --check comparison. Phases that never dispatched chunks report
  // nothing.
  const auto add_imbalance = [&](const char* name,
                                 const sim::ChunkLoad& load) {
    if (load.chunks > 0) metrics.set_timing(name, load.imbalance());
  };
  add_imbalance("shard_imbalance.generate", phase.generate_load);
  add_imbalance("shard_imbalance.decide", phase.decide_load);
  add_imbalance("shard_imbalance.decohere", phase.decohere_load);
}

void add_overhead_metrics(RunMetrics& metrics, double swaps,
                          double denominator_paper, double denominator_exact) {
  metrics.set_scalar("starved", denominator_paper > 0.0 ? 0.0 : 1.0);
  if (denominator_paper > 0.0) {
    metrics.set_scalar("overhead_paper", swaps / denominator_paper);
  }
  if (denominator_exact > 0.0) {
    metrics.set_scalar("overhead_exact", swaps / denominator_exact);
  }
}

void add_balancing_metrics(RunMetrics& metrics, const core::BalancingResult& result) {
  metrics.set_label("completed", result.completed ? "yes" : "no");
  metrics.set_scalar("rounds", static_cast<double>(result.rounds));
  metrics.set_scalar("satisfied", static_cast<double>(result.requests_satisfied));
  metrics.set_scalar("swaps", static_cast<double>(result.swaps_performed));
  metrics.set_scalar("pairs_generated", static_cast<double>(result.pairs_generated));
  metrics.set_scalar("pairs_consumed", static_cast<double>(result.pairs_consumed));
  add_overhead_metrics(metrics, static_cast<double>(result.swaps_performed),
                       result.denominator_paper, result.denominator_exact);
  metrics.set_scalar("mean_head_wait", result.head_wait_rounds.mean());
  metrics.set_stats("head_wait_rounds", result.head_wait_rounds);
  // Streaming-mode counters only when requests streamed: fixed-sequence
  // runs keep their historical metric set (and committed baselines)
  // bit-identical.
  if (result.requests_arrived > 0 || result.backlog > 0) {
    metrics.set_scalar("arrivals", static_cast<double>(result.requests_arrived));
    metrics.set_scalar("backlog", static_cast<double>(result.backlog));
  }
  add_phase_timings(metrics, result.phase);
}

/// Resilience metrics of the balancing family (balancing, hybrid,
/// gossip): the shared set plus the backlog high-water mark, which only
/// this family tracks (streaming consumption is where churn shows up as
/// queue growth).
void add_balancing_fault_metrics(RunMetrics& metrics,
                                 const sim::FaultConfig& config,
                                 const core::BalancingResult& result) {
  add_fault_metrics(metrics, config, result);
  if (config.enabled()) {
    metrics.set_scalar("backlog_peak", static_cast<double>(result.backlog_peak));
  }
}

core::BalancingConfig balancing_config(const ScenarioSpec& spec) {
  core::BalancingConfig config;
  config.distillation = spec.knob_double("distillation", 1.0);
  config.max_rounds = static_cast<std::uint32_t>(spec.knob_int("max-rounds", 50000));
  config.swaps_per_node_per_round =
      static_cast<std::uint32_t>(spec.knob_int("swap-rate", 1));
  config.generation_per_edge_per_round = spec.knob_double("generation-rate", 1.0);
  config.seed = spec.seed;
  const std::int64_t detour_slack = spec.knob_int("detour-slack", -1);
  if (detour_slack >= 0) {
    config.policy.detour_slack = static_cast<std::uint32_t>(detour_slack);
  }
  config.arrival_rate = spec.knob_double("arrival-rate", 0.0);
  const std::int64_t consumer_pool = spec.knob_int("consumer-pool", 0);
  require(consumer_pool >= 0, "knob 'consumer-pool' must be >= 0");
  config.consumer_pool = static_cast<std::uint64_t>(consumer_pool);
  const std::int64_t max_requests = spec.knob_int("max-requests", 0);
  require(max_requests >= 0, "knob 'max-requests' must be >= 0");
  config.max_requests = static_cast<std::uint64_t>(max_requests);
  config.faults = fault_config_from_spec(spec);
  return config;
}

/// Knobs of the round-based core, without the tick-engine knobs.
std::vector<KnobSpec> balancing_knobs() {
  return {
      {"distillation", KnobType::kDouble, 1.0, "distillation overhead D"},
      {"max-rounds", KnobType::kInt, std::int64_t{50000}, "round budget"},
      {"swap-rate", KnobType::kInt, std::int64_t{1}, "swaps per node per round"},
      {"generation-rate", KnobType::kDouble, 1.0, "pairs per edge per round"},
      {"detour-slack", KnobType::kInt, std::int64_t{-1},
       "extra hops the swap policy tolerates (-1 = unrestricted)"},
      {"arrival-rate", KnobType::kDouble, 0.0,
       "streaming workload: Poisson request arrivals per round "
       "(0 = fixed request sequence)"},
      {"consumer-pool", KnobType::kInt, std::int64_t{0},
       "virtual consumer-pair pool for streaming arrivals (0 = C(n,2); "
       "pairs are derived lazily, the pool is never materialized)"},
      {"max-requests", KnobType::kInt, std::int64_t{0},
       "streaming stop: finish after satisfying this many requests "
       "(0 = run until max-rounds)"},
  };
}

std::vector<KnobSpec> balancing_knobs_with_tick() {
  std::vector<KnobSpec> knobs = balancing_knobs();
  for (KnobSpec& knob : tick_knobs()) knobs.push_back(std::move(knob));
  for (KnobSpec& knob : fault_knobs()) knobs.push_back(std::move(knob));
  return knobs;
}

class BalancingProtocol final : public Protocol {
 public:
  std::string name() const override { return "balancing"; }
  std::string describe() const override {
    return "round-based max-min balancing (paper Sections 4-5)";
  }
  std::vector<KnobSpec> knobs() const override {
    return balancing_knobs_with_tick();
  }
  RunMetrics run(const ScenarioSpec& spec) const override {
    const ScenarioInstance instance = instantiate(spec);
    core::BalancingConfig config = balancing_config(spec);
    config.tick = tick_from_spec("balancing", spec);
    core::BalancingSimulation simulation(instance.graph, instance.workload,
                                         config);
    const core::BalancingResult result = simulation.run();
    RunMetrics metrics;
    add_balancing_metrics(metrics, result);
    add_balancing_fault_metrics(metrics, config.faults, result);
    // Streaming (megascale) runs report the deterministic logical memory
    // footprint; at a fixed engine knob the scalar is identical for every
    // threads/shards setting, so the BENCH_megascale gate holds it to
    // 1e-9. Fixed-sequence runs keep their historical metric set.
    if (simulation.streaming()) {
      metrics.set_scalar("memory_bytes_per_node",
                         static_cast<double>(simulation.memory_bytes()) /
                             static_cast<double>(instance.graph.node_count()));
    }
    return metrics;
  }
};

class PlannedProtocol final : public Protocol {
 public:
  std::string name() const override { return "planned"; }
  std::string describe() const override {
    return "planned-path baselines (connection-oriented / connectionless)";
  }
  std::vector<KnobSpec> knobs() const override {
    std::vector<KnobSpec> knobs = {
        {"distillation", KnobType::kDouble, 1.0, "distillation overhead D"},
        {"mode", KnobType::kString, std::string("oriented"),
         "oriented|connectionless"},
        {"window", KnobType::kInt, std::int64_t{4},
         "concurrent connections window"},
        {"max-rounds", KnobType::kInt, std::int64_t{200000}, "round budget"},
    };
    for (KnobSpec& knob : tick_knobs()) knobs.push_back(std::move(knob));
    for (KnobSpec& knob : fault_knobs()) knobs.push_back(std::move(knob));
    return knobs;
  }
  RunMetrics run(const ScenarioSpec& spec) const override {
    core::PlannedPathConfig config;
    config.distillation = spec.knob_double("distillation", 1.0);
    config.window = static_cast<std::uint32_t>(spec.knob_int("window", 4));
    config.max_rounds =
        static_cast<std::uint32_t>(spec.knob_int("max-rounds", 200000));
    config.seed = spec.seed;
    config.tick = tick_from_spec("planned", spec);
    config.faults = fault_config_from_spec(spec);
    const std::string mode = spec.knob_string("mode", "oriented");
    if (mode == "connectionless") {
      config.mode = core::PlannedPathMode::kConnectionless;
    } else if (mode == "oriented") {
      config.mode = core::PlannedPathMode::kConnectionOriented;
    } else {
      throw PreconditionError(util::str_cat(
          "planned: knob 'mode' must be oriented or connectionless, got '", mode,
          "'"));
    }
    const ScenarioInstance instance = instantiate(spec);
    const core::PlannedPathResult result =
        core::run_planned_path(instance.graph, instance.workload, config);
    RunMetrics metrics;
    metrics.set_label("completed", result.completed ? "yes" : "no");
    metrics.set_label("mode", mode);
    metrics.set_scalar("rounds", static_cast<double>(result.rounds));
    metrics.set_scalar("satisfied", static_cast<double>(result.requests_satisfied));
    metrics.set_scalar("swaps", result.swaps_performed);
    metrics.set_scalar("pairs_generated",
                       static_cast<double>(result.pairs_generated));
    add_overhead_metrics(metrics, result.swaps_performed, result.denominator_paper,
                         result.denominator_exact);
    metrics.set_scalar("mean_service", result.service_rounds.mean());
    metrics.set_stats("service_rounds", result.service_rounds);
    add_fault_metrics(metrics, config.faults, result);
    return metrics;
  }
};

class HybridProtocol final : public Protocol {
 public:
  std::string name() const override { return "hybrid"; }
  std::string describe() const override {
    return "balancing + entanglement-path assist (Section 6)";
  }
  std::vector<KnobSpec> knobs() const override {
    std::vector<KnobSpec> knobs = balancing_knobs_with_tick();
    knobs.push_back({"max-assist-hops", KnobType::kInt, std::int64_t{8},
                     "assist search radius in the entanglement graph"});
    return knobs;
  }
  RunMetrics run(const ScenarioSpec& spec) const override {
    core::HybridConfig config;
    config.base = balancing_config(spec);
    config.base.tick = tick_from_spec("hybrid", spec);
    config.max_assist_hops =
        static_cast<std::uint32_t>(spec.knob_int("max-assist-hops", 8));
    const ScenarioInstance instance = instantiate(spec);
    const core::HybridResult result =
        core::run_hybrid(instance.graph, instance.workload, config);
    RunMetrics metrics;
    add_balancing_metrics(metrics, result.base);
    add_balancing_fault_metrics(metrics, config.base.faults, result.base);
    metrics.set_scalar("assists_attempted",
                       static_cast<double>(result.assists_attempted));
    metrics.set_scalar("assists_succeeded",
                       static_cast<double>(result.assists_succeeded));
    metrics.set_scalar("assist_swaps", result.assist_swaps);
    return metrics;
  }
};

class GossipProtocol final : public Protocol {
 public:
  std::string name() const override { return "gossip"; }
  std::string describe() const override {
    return "partial-knowledge balancing via count gossip (Section 6)";
  }
  std::vector<KnobSpec> knobs() const override {
    std::vector<KnobSpec> knobs = balancing_knobs_with_tick();
    knobs.push_back({"fanout", KnobType::kInt, std::int64_t{2},
                     "rotating peers contacted per round"});
    knobs.push_back({"optimistic-peer", KnobType::kBool, true,
                     "also contact one random peer per round"});
    knobs.push_back({"latency", KnobType::kDouble, 1.0,
                     "classical latency per hop (rounds)"});
    return knobs;
  }
  RunMetrics run(const ScenarioSpec& spec) const override {
    core::GossipConfig config;
    config.base = balancing_config(spec);
    config.base.tick = tick_from_spec("gossip", spec);
    config.fanout = static_cast<std::uint32_t>(spec.knob_int("fanout", 2));
    config.optimistic_peer = spec.knob_bool("optimistic-peer", true);
    config.latency_per_hop = spec.knob_double("latency", 1.0);
    const ScenarioInstance instance = instantiate(spec);
    const core::GossipResult result =
        core::run_gossip(instance.graph, instance.workload, config);
    RunMetrics metrics;
    add_balancing_metrics(metrics, result.base);
    add_balancing_fault_metrics(metrics, config.base.faults, result.base);
    metrics.set_scalar("view_age", result.mean_view_age);
    metrics.set_scalar("control_messages",
                       static_cast<double>(result.control_messages));
    metrics.set_scalar("control_bytes", static_cast<double>(result.control_bytes));
    return metrics;
  }
};

class DistributedProtocol final : public Protocol {
 public:
  std::string name() const override { return "distributed"; }
  std::string describe() const override {
    return "belief-based protocol with classical latency (Section 2)";
  }
  std::vector<KnobSpec> knobs() const override {
    std::vector<KnobSpec> knobs = {
        {"latency", KnobType::kDouble, 0.1, "classical latency per hop"},
        {"duration", KnobType::kDouble, 400.0, "simulated duration"},
        {"report-rate", KnobType::kDouble, 1.0, "belief report rate"},
        {"generation-rate", KnobType::kDouble, 1.0,
         "Poisson pair generation rate per edge"},
        {"scan-rate", KnobType::kDouble, 1.0, "per-node swap scan rate"},
        {"dt", KnobType::kDouble, 0.25,
         "epoch length of the vertex-program loop (time units)"},
    };
    for (KnobSpec& knob : tick_knobs()) knobs.push_back(std::move(knob));
    for (KnobSpec& knob : fault_knobs()) knobs.push_back(std::move(knob));
    return knobs;
  }
  RunMetrics run(const ScenarioSpec& spec) const override {
    core::DistributedConfig config;
    config.latency_per_hop = spec.knob_double("latency", 0.1);
    config.duration = spec.knob_double("duration", 400.0);
    config.report_rate = spec.knob_double("report-rate", 1.0);
    config.generation_rate = spec.knob_double("generation-rate", 1.0);
    config.scan_rate = spec.knob_double("scan-rate", 1.0);
    config.dt = spec.knob_double("dt", 0.25);
    config.seed = spec.seed;
    config.tick = tick_from_spec("distributed", spec);
    config.faults = fault_config_from_spec(spec);
    const ScenarioInstance instance = instantiate(spec);
    const core::DistributedResult result =
        core::run_distributed(instance.graph, instance.workload, config);
    RunMetrics metrics;
    metrics.set_scalar("satisfied", static_cast<double>(result.requests_satisfied));
    metrics.set_scalar("swaps", static_cast<double>(result.swaps));
    metrics.set_scalar("stale_swap_fraction", result.stale_swap_fraction());
    metrics.set_scalar("conflict_fraction", result.conflict_fraction());
    metrics.set_scalar("view_age", result.decision_view_age.mean());
    metrics.set_scalar("control_messages",
                       static_cast<double>(result.control_messages));
    metrics.set_scalar("control_bytes", static_cast<double>(result.control_bytes));
    metrics.set_scalar("pairs_generated",
                       static_cast<double>(result.pairs_generated));
    metrics.set_stats("request_latency", result.request_latency);
    metrics.set_stats("decision_view_age", result.decision_view_age);
    add_fault_metrics(metrics, config.faults, result);
    return metrics;
  }
};

class AsyncRoutingProtocol final : public Protocol {
 public:
  std::string name() const override { return "async_routing"; }
  std::string describe() const override {
    return "asynchronous entanglement routing of a Poisson request stream "
           "(after Yang et al.)";
  }
  std::vector<KnobSpec> knobs() const override {
    std::vector<KnobSpec> knobs = {
        {"arrival-rate", KnobType::kDouble, 0.5,
         "Poisson request arrival rate (per time unit)"},
        {"generation-rate", KnobType::kDouble, 1.0,
         "Poisson pair generation rate per edge"},
        {"latency", KnobType::kDouble, 0.1,
         "classical latency per hop for token handoffs"},
        {"timeout", KnobType::kDouble, 50.0,
         "drop a request waiting this long"},
        {"duration", KnobType::kDouble, 400.0, "simulated duration"},
        {"dt", KnobType::kDouble, 0.25,
         "epoch length of the vertex-program loop (time units)"},
    };
    for (KnobSpec& knob : tick_knobs()) knobs.push_back(std::move(knob));
    for (KnobSpec& knob : fault_knobs()) knobs.push_back(std::move(knob));
    return knobs;
  }
  RunMetrics run(const ScenarioSpec& spec) const override {
    core::AsyncRoutingConfig config;
    config.arrival_rate = spec.knob_double("arrival-rate", 0.5);
    config.generation_rate = spec.knob_double("generation-rate", 1.0);
    config.latency_per_hop = spec.knob_double("latency", 0.1);
    config.timeout = spec.knob_double("timeout", 50.0);
    config.duration = spec.knob_double("duration", 400.0);
    config.dt = spec.knob_double("dt", 0.25);
    config.seed = spec.seed;
    config.tick = tick_from_spec("async_routing", spec);
    config.faults = fault_config_from_spec(spec);
    const ScenarioInstance instance = instantiate(spec);
    const core::AsyncRoutingResult result =
        core::run_async_routing(instance.graph, instance.workload, config);
    RunMetrics metrics;
    metrics.set_scalar("arrived", static_cast<double>(result.requests_arrived));
    metrics.set_scalar("satisfied",
                       static_cast<double>(result.requests_satisfied));
    metrics.set_scalar("dropped", static_cast<double>(result.requests_dropped));
    metrics.set_scalar("satisfied_fraction", result.satisfied_fraction());
    metrics.set_scalar("drop_fraction", result.drop_fraction());
    metrics.set_scalar("swaps", static_cast<double>(result.swaps));
    metrics.set_scalar("pairs_generated",
                       static_cast<double>(result.pairs_generated));
    metrics.set_scalar("pairs_consumed",
                       static_cast<double>(result.pairs_consumed));
    metrics.set_scalar("control_messages",
                       static_cast<double>(result.control_messages));
    metrics.set_stats("request_latency", result.request_latency);
    metrics.set_stats("request_hops", result.request_hops);
    add_fault_metrics(metrics, config.faults, result);
    return metrics;
  }
};

class FidelityProtocol final : public Protocol {
 public:
  std::string name() const override { return "fidelity"; }
  std::string describe() const override {
    return "fidelity-aware event simulation (Section 3.2)";
  }
  std::vector<KnobSpec> knobs() const override {
    std::vector<KnobSpec> knobs = {
        {"raw-fidelity", KnobType::kDouble, 0.97, "generated-pair fidelity"},
        {"app-fidelity", KnobType::kDouble, 0.80, "application target fidelity"},
        {"usable-fidelity", KnobType::kDouble, 0.70, "discard threshold"},
        {"memory-T", KnobType::kDouble, 100.0, "memory decay constant"},
        {"duration", KnobType::kDouble, 500.0, "simulated duration"},
        {"distill", KnobType::kBool, true, "enable BBPSSW distillation"},
        {"pairing", KnobType::kString, std::string("freshest"),
         "freshest|oldest pairing policy"},
    };
    for (KnobSpec& knob : tick_knobs()) knobs.push_back(std::move(knob));
    for (KnobSpec& knob : fault_knobs()) knobs.push_back(std::move(knob));
    return knobs;
  }
  RunMetrics run(const ScenarioSpec& spec) const override {
    core::FidelitySimConfig config;
    config.raw_fidelity = spec.knob_double("raw-fidelity", 0.97);
    config.app_fidelity = spec.knob_double("app-fidelity", 0.80);
    config.usable_fidelity = spec.knob_double("usable-fidelity", 0.70);
    config.memory_time_constant = spec.knob_double("memory-T", 100.0);
    config.duration = spec.knob_double("duration", 500.0);
    config.distillation_enabled = spec.knob_bool("distill", true);
    config.seed = spec.seed;
    config.tick = tick_from_spec("fidelity", spec);
    config.faults = fault_config_from_spec(spec);
    const std::string pairing = spec.knob_string("pairing", "freshest");
    if (pairing == "oldest") {
      config.policy = core::PairingPolicy::kOldest;
    } else if (pairing == "freshest") {
      config.policy = core::PairingPolicy::kFreshest;
    } else {
      throw PreconditionError(util::str_cat(
          "fidelity: knob 'pairing' must be freshest or oldest, got '", pairing,
          "'"));
    }
    const ScenarioInstance instance = instantiate(spec);
    const core::FidelitySimResult result =
        core::run_fidelity_sim(instance.graph, instance.workload, config);
    RunMetrics metrics;
    metrics.set_label("pairing", pairing);
    metrics.set_scalar("satisfied", static_cast<double>(result.requests_satisfied));
    metrics.set_scalar("swaps", static_cast<double>(result.swaps));
    metrics.set_scalar("distills", static_cast<double>(result.distillations));
    metrics.set_scalar("distill_failures",
                       static_cast<double>(result.distillation_failures));
    metrics.set_scalar("pairs_generated",
                       static_cast<double>(result.pairs_generated));
    metrics.set_scalar("pairs_decayed", static_cast<double>(result.pairs_decayed));
    metrics.set_scalar("L_realized", result.realized_survival());
    metrics.set_scalar("D_realized", result.realized_distillation_overhead());
    if (result.consumed_fidelity.count() > 0) {
      metrics.set_scalar("mean_consumed_F", result.consumed_fidelity.mean());
    }
    metrics.set_stats("consumed_fidelity", result.consumed_fidelity);
    metrics.set_stats("request_latency", result.request_latency);
    metrics.set_stats("storage_age_at_use", result.storage_age_at_use);
    add_phase_timings(metrics, result.phase);
    add_fault_metrics(metrics, config.faults, result);
    return metrics;
  }
};

class LpProtocol final : public Protocol {
 public:
  std::string name() const override { return "lp"; }
  std::string describe() const override {
    return "steady-state linear program (Section 3)";
  }
  std::vector<KnobSpec> knobs() const override {
    std::vector<KnobSpec> knobs = {
        {"gamma", KnobType::kDouble, 1.0, "generation capacity per edge"},
        {"kappa", KnobType::kDouble, 0.1, "demand per consumer pair"},
        {"distillation", KnobType::kDouble, 1.0, "distillation matrix scalar"},
        {"survival", KnobType::kDouble, 1.0, "survival matrix scalar"},
        {"qec", KnobType::kDouble, 1.0, "QEC overhead R"},
        {"objective", KnobType::kString, std::string("min-generation"),
         "min-generation|min-max-generation|max-consumption|"
         "max-min-consumption|max-scale"},
    };
    // No tick knobs: the steady-state solve has no engine to select, and
    // accepting-then-ignoring engine/threads/shards would misrepresent the
    // run. The registry's knob validation rejects them with a clear error.
    for (KnobSpec& knob : fault_knobs()) knobs.push_back(std::move(knob));
    return knobs;
  }
  RunMetrics run(const ScenarioSpec& spec) const override {
    if (!spec.faults.empty()) {
      throw PreconditionError(
          "lp: scripted fault events are not supported — the steady-state "
          "LP has no rounds to apply them at; use the fault-*-mtbf/mttr "
          "knobs, which scale capacities by expected availability");
    }
    const sim::FaultConfig faults = fault_config_from_spec(spec);
    // Steady-state treatment of churn: each entity is up with probability
    // mtbf/(mtbf+mttr) (the alternating-renewal limit), so an edge's
    // expected generation capacity is gamma scaled by the link's
    // availability, both endpoints' availability, and the mean rate
    // factor 1 - degradation/2 (U is uniform on [0,1)).
    const double node_avail =
        faults.node_mtbf > 0.0
            ? faults.node_mtbf / (faults.node_mtbf + faults.node_mttr)
            : 1.0;
    const double link_avail =
        faults.link_mtbf > 0.0
            ? faults.link_mtbf / (faults.link_mtbf + faults.link_mttr)
            : 1.0;
    const double capacity_factor = link_avail * node_avail * node_avail *
                                   (1.0 - faults.rate_degradation / 2.0);
    const ScenarioInstance instance = instantiate(spec);
    core::SteadyStateSpec lp_spec;
    lp_spec.node_count = instance.graph.node_count();
    const double gamma = spec.knob_double("gamma", 1.0) * capacity_factor;
    for (const graph::Edge& edge : instance.graph.edges()) {
      lp_spec.generation_capacity.push_back(
          core::RatedPair{core::NodePair(edge.a(), edge.b()), gamma});
    }
    const double kappa = spec.knob_double("kappa", 0.1);
    for (const core::NodePair& pair : instance.workload.pairs) {
      lp_spec.demand.push_back(core::RatedPair{pair, kappa});
    }
    lp_spec.distillation = core::PairMatrix(spec.knob_double("distillation", 1.0));
    lp_spec.survival = core::PairMatrix(spec.knob_double("survival", 1.0));
    lp_spec.qec_overhead = spec.knob_double("qec", 1.0);

    const std::string objective_name =
        spec.knob_string("objective", "min-generation");
    core::SteadyStateObjective objective;
    if (objective_name == "min-generation") {
      objective = core::SteadyStateObjective::kMinTotalGeneration;
    } else if (objective_name == "min-max-generation") {
      objective = core::SteadyStateObjective::kMinMaxGeneration;
    } else if (objective_name == "max-consumption") {
      objective = core::SteadyStateObjective::kMaxTotalConsumption;
    } else if (objective_name == "max-min-consumption") {
      objective = core::SteadyStateObjective::kMaxMinConsumption;
    } else if (objective_name == "max-scale") {
      objective = core::SteadyStateObjective::kMaxConcurrentScale;
    } else {
      throw PreconditionError(util::str_cat(
          "lp: unknown knob value objective='", objective_name,
          "' (valid: min-generation, min-max-generation, max-consumption, "
          "max-min-consumption, max-scale)"));
    }
    const core::SteadyStateLp lp(std::move(lp_spec));
    const core::SteadyStateSolution solution = lp.solve(objective);
    RunMetrics metrics;
    metrics.set_label("status", lp::status_name(solution.status));
    metrics.set_label("objective_name", objective_name);
    metrics.set_scalar("objective", solution.objective);
    metrics.set_scalar("total_generation", solution.total_generation);
    metrics.set_scalar("total_consumption", solution.total_consumption);
    metrics.set_scalar("total_swap_rate", solution.total_swap_rate);
    metrics.set_scalar("active_swap_rules",
                       static_cast<double>(solution.swap_rates.size()));
    metrics.set_scalar("max_violation", solution.max_violation);
    // Emitted only under faults, like the simulators' resilience metrics,
    // so fault-free LP baselines stay byte-identical.
    if (faults.enabled()) {
      metrics.set_scalar("expected_capacity_factor", capacity_factor);
    }
    return metrics;
  }
};

}  // namespace

void register_builtin_protocols(Registry& target) {
  target.add(std::make_unique<BalancingProtocol>());
  target.add(std::make_unique<PlannedProtocol>());
  target.add(std::make_unique<HybridProtocol>());
  target.add(std::make_unique<GossipProtocol>());
  target.add(std::make_unique<DistributedProtocol>());
  target.add(std::make_unique<AsyncRoutingProtocol>());
  target.add(std::make_unique<FidelityProtocol>());
  target.add(std::make_unique<LpProtocol>());
}

}  // namespace poq::scenario
