#include "scenario/metrics.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::scenario {

namespace {

template <typename T>
T* find_entry(std::vector<std::pair<std::string, T>>& entries,
              const std::string& name) {
  for (auto& [key, value] : entries) {
    if (key == name) return &value;
  }
  return nullptr;
}

template <typename T>
const T* find_entry(const std::vector<std::pair<std::string, T>>& entries,
                    const std::string& name) {
  for (const auto& [key, value] : entries) {
    if (key == name) return &value;
  }
  return nullptr;
}

}  // namespace

void RunMetrics::set_label(const std::string& name, std::string value) {
  if (std::string* existing = find_entry(labels_, name)) {
    *existing = std::move(value);
    return;
  }
  labels_.emplace_back(name, std::move(value));
}

void RunMetrics::set_scalar(const std::string& name, double value) {
  if (double* existing = find_entry(scalars_, name)) {
    *existing = value;
    return;
  }
  scalars_.emplace_back(name, value);
}

void RunMetrics::set_stats(const std::string& name,
                           const util::RunningStats& stats) {
  if (util::RunningStats* existing = find_entry(stats_, name)) {
    *existing = stats;
    return;
  }
  stats_.emplace_back(name, stats);
}

void RunMetrics::set_timing(const std::string& name, double ms) {
  if (double* existing = find_entry(timings_, name)) {
    *existing = ms;
    return;
  }
  timings_.emplace_back(name, ms);
}

bool RunMetrics::has_label(const std::string& name) const {
  return find_entry(labels_, name) != nullptr;
}

bool RunMetrics::has_scalar(const std::string& name) const {
  return find_entry(scalars_, name) != nullptr;
}

bool RunMetrics::has_stats(const std::string& name) const {
  return find_entry(stats_, name) != nullptr;
}

const std::string& RunMetrics::label(const std::string& name) const {
  const std::string* value = find_entry(labels_, name);
  if (!value) throw PreconditionError(util::str_cat("no label metric '", name, "'"));
  return *value;
}

double RunMetrics::scalar(const std::string& name) const {
  const double* value = find_entry(scalars_, name);
  if (!value) throw PreconditionError(util::str_cat("no scalar metric '", name, "'"));
  return *value;
}

const util::RunningStats& RunMetrics::stats(const std::string& name) const {
  const util::RunningStats* value = find_entry(stats_, name);
  if (!value) throw PreconditionError(util::str_cat("no stats metric '", name, "'"));
  return *value;
}

bool RunMetrics::has_timing(const std::string& name) const {
  return find_entry(timings_, name) != nullptr;
}

double RunMetrics::timing(const std::string& name) const {
  const double* value = find_entry(timings_, name);
  if (!value) throw PreconditionError(util::str_cat("no timing metric '", name, "'"));
  return *value;
}

util::json::Value stats_to_json(const util::RunningStats& stats) {
  using util::json::Value;
  Value out = Value::object();
  out.set("count", static_cast<double>(stats.count()));
  out.set("mean", stats.mean());
  out.set("stddev", stats.stddev());
  out.set("min", stats.min());
  out.set("max", stats.max());
  return out;
}

util::json::Value RunMetrics::to_json(bool include_timings) const {
  using util::json::Value;
  Value out = Value::object();
  Value labels = Value::object();
  for (const auto& [name, value] : labels_) labels.set(name, value);
  out.set("labels", std::move(labels));
  Value scalars = Value::object();
  for (const auto& [name, value] : scalars_) scalars.set(name, value);
  out.set("scalars", std::move(scalars));
  Value stats = Value::object();
  for (const auto& [name, value] : stats_) stats.set(name, stats_to_json(value));
  out.set("stats", std::move(stats));
  if (include_timings && !timings_.empty()) {
    Value timings = Value::object();
    for (const auto& [name, value] : timings_) timings.set(name, value);
    out.set("timings", std::move(timings));
  }
  return out;
}

RunMetrics RunMetrics::from_json(const util::json::Value& value) {
  RunMetrics metrics;
  for (const auto& [name, label] : value.at("labels").members()) {
    metrics.set_label(name, label.as_string());
  }
  for (const auto& [name, scalar] : value.at("scalars").members()) {
    metrics.set_scalar(name, scalar.is_null() ? std::nan("") : scalar.as_number());
  }
  for (const auto& [name, summary] : value.at("stats").members()) {
    const auto count = static_cast<std::size_t>(summary.at("count").as_number());
    const double stddev = summary.at("stddev").as_number();
    metrics.set_stats(name, util::RunningStats::from_moments(
                                count, summary.at("mean").as_number(),
                                stddev * stddev, summary.at("min").as_number(),
                                summary.at("max").as_number()));
  }
  if (value.contains("timings")) {
    for (const auto& [name, timing] : value.at("timings").members()) {
      metrics.set_timing(name, timing.as_number());
    }
  }
  return metrics;
}

}  // namespace poq::scenario
