// Uniform run result for the scenario API.
//
// Every protocol adapter reports the same shape: insertion-ordered named
// labels (small categorical facts like completed=yes / status=optimal),
// named scalar metrics, named RunningStats distributions, and named
// wall-clock timings (the phase-kernel `phase_ms.*` entries). Consumers
// (poqsim printing, BENCH_*.json emission, sweep aggregation) read this
// one type instead of six bespoke Result structs, and JSON serialization
// lives here and nowhere else.
//
// Timings are a separate category from scalars on purpose: scalars are
// covered by the determinism contract and the --check regression gates,
// while timings are wall-clock observability (like a sweep cell's
// wall_ms) and are excluded from every bit-identity comparison —
// to_json(false) drops them for exactly that use.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"
#include "util/stats.hpp"

namespace poq::scenario {

class RunMetrics {
 public:
  /// Insert or overwrite; first insertion fixes the display position.
  void set_label(const std::string& name, std::string value);
  void set_scalar(const std::string& name, double value);
  void set_stats(const std::string& name, const util::RunningStats& stats);
  /// Wall-clock observability (milliseconds), e.g. "phase_ms.decide".
  void set_timing(const std::string& name, double ms);

  [[nodiscard]] bool has_label(const std::string& name) const;
  [[nodiscard]] bool has_scalar(const std::string& name) const;
  [[nodiscard]] bool has_stats(const std::string& name) const;
  [[nodiscard]] bool has_timing(const std::string& name) const;

  /// Lookups throw PreconditionError naming the missing metric.
  [[nodiscard]] const std::string& label(const std::string& name) const;
  [[nodiscard]] double scalar(const std::string& name) const;
  [[nodiscard]] const util::RunningStats& stats(const std::string& name) const;
  [[nodiscard]] double timing(const std::string& name) const;

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& labels()
      const {
    return labels_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& scalars() const {
    return scalars_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, util::RunningStats>>&
  stats() const {
    return stats_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& timings()
      const {
    return timings_;
  }

  /// {"labels": {...}, "scalars": {...}, "stats": {name: {count, mean,
  /// stddev, min, max}}, "timings": {...}}. Stats round-trip through
  /// their summary (count / mean / stddev / min / max), which is all
  /// downstream consumers read; the "timings" key appears only when
  /// non-empty. Pass include_timings = false for the dumps the
  /// determinism suites compare bit for bit — timings are wall-clock and
  /// explicitly outside that contract.
  [[nodiscard]] util::json::Value to_json(bool include_timings = true) const;
  [[nodiscard]] static RunMetrics from_json(const util::json::Value& value);

 private:
  std::vector<std::pair<std::string, std::string>> labels_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, util::RunningStats>> stats_;
  std::vector<std::pair<std::string, double>> timings_;
};

/// Summarize a RunningStats into the JSON object shape to_json uses.
[[nodiscard]] util::json::Value stats_to_json(const util::RunningStats& stats);

}  // namespace poq::scenario
