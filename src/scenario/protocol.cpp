#include "scenario/protocol.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::scenario {

namespace {

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

void Registry::add(std::unique_ptr<Protocol> protocol) {
  ensure(protocol != nullptr, "registry: null protocol");
  const std::string name = protocol->name();
  for (const auto& existing : protocols_) {
    ensure(existing->name() != name,
           util::str_cat("registry: duplicate protocol '", name, "'"));
  }
  protocols_.push_back(std::move(protocol));
}

bool Registry::contains(const std::string& name) const {
  for (const auto& protocol : protocols_) {
    if (protocol->name() == name) return true;
  }
  return false;
}

const Protocol& Registry::find(const std::string& name) const {
  for (const auto& protocol : protocols_) {
    if (protocol->name() == name) return *protocol;
  }
  throw PreconditionError(util::str_cat("unknown protocol '", name,
                                        "' (registered: ", join(names()), ")"));
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(protocols_.size());
  for (const auto& protocol : protocols_) out.push_back(protocol->name());
  return out;
}

void Registry::validate_knobs(const Protocol& protocol,
                              const ScenarioSpec& spec) const {
  const std::vector<KnobSpec> schema = protocol.knobs();
  for (const auto& [name, value] : spec.knobs) {
    const KnobSpec* declared = nullptr;
    for (const KnobSpec& knob : schema) {
      if (knob.name == name) {
        declared = &knob;
        break;
      }
    }
    if (!declared) {
      std::vector<std::string> valid;
      valid.reserve(schema.size());
      for (const KnobSpec& knob : schema) valid.push_back(knob.name);
      throw PreconditionError(util::str_cat(
          "protocol '", protocol.name(), "' has no knob '", name,
          "' (valid knobs: ", valid.empty() ? "none" : join(valid), ")"));
    }
    const KnobType actual = knob_value_type(value);
    const bool ok = actual == declared->type ||
                    (declared->type == KnobType::kDouble && actual == KnobType::kInt);
    if (!ok) {
      throw PreconditionError(util::str_cat(
          "knob '", name, "' of protocol '", protocol.name(), "' expects a ",
          knob_type_name(declared->type), ", got ", knob_type_name(actual), " '",
          knob_value_text(value), "'"));
    }
  }
}

RunMetrics Registry::run(const std::string& name, const ScenarioSpec& spec) const {
  const Protocol& protocol = find(name);
  validate_frame(spec);
  validate_knobs(protocol, spec);
  return protocol.run(spec);
}

util::json::Value registry_to_json(const Registry& source) {
  using util::json::Value;
  const auto knob_default = [](const KnobValue& value) -> Value {
    switch (value.index()) {
      case 0: return Value(std::get<bool>(value));
      case 1: return Value(std::get<std::int64_t>(value));
      case 2: return Value(std::get<double>(value));
      default: return Value(std::get<std::string>(value));
    }
  };
  Value protocols = Value::array();
  for (const std::string& name : source.names()) {
    const Protocol& protocol = source.find(name);
    Value entry = Value::object();
    entry.set("name", protocol.name());
    entry.set("description", protocol.describe());
    Value knobs = Value::array();
    for (const KnobSpec& knob : protocol.knobs()) {
      Value k = Value::object();
      k.set("name", knob.name);
      k.set("type", knob_type_name(knob.type));
      k.set("default", knob_default(knob.default_value));
      k.set("help", knob.help);
      knobs.push_back(std::move(k));
    }
    entry.set("knobs", std::move(knobs));
    protocols.push_back(std::move(entry));
  }
  Value out = Value::object();
  out.set("protocols", std::move(protocols));
  return out;
}

Registry& registry() {
  static Registry instance = [] {
    Registry built;
    register_builtin_protocols(built);
    return built;
  }();
  return instance;
}

}  // namespace poq::scenario
