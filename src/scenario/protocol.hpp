// Polymorphic protocol interface + static registry (the scenario API's
// dispatch half).
//
// Each protocol family the repo implements (balancing, planned-path,
// hybrid, gossip, distributed, fidelity, lp) registers one adapter that
// declares its knobs and maps ScenarioSpec -> RunMetrics. Consumers never
// see per-protocol Config/Result structs:
//
//   scenario::RunMetrics m = scenario::registry().run("balancing", spec);
//
// The registry validates the spec frame and the knob overlay against the
// protocol's declared schema before running, so misuse fails with an
// actionable message instead of silently running defaults.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "scenario/metrics.hpp"
#include "scenario/spec.hpp"
#include "util/json.hpp"

namespace poq::scenario {

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Registry key ("balancing", "planned", ...).
  [[nodiscard]] virtual std::string name() const = 0;
  /// One-line human description (CLI help, docs).
  [[nodiscard]] virtual std::string describe() const = 0;
  /// The knob schema: every key a spec may set for this protocol.
  [[nodiscard]] virtual std::vector<KnobSpec> knobs() const = 0;
  /// Run the scenario. The spec has already been validated when invoked
  /// through Registry::run.
  [[nodiscard]] virtual RunMetrics run(const ScenarioSpec& spec) const = 0;
};

class Registry {
 public:
  /// Register a protocol; duplicate names are a bug.
  void add(std::unique_ptr<Protocol> protocol);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Lookup; throws PreconditionError listing the registered names.
  [[nodiscard]] const Protocol& find(const std::string& name) const;
  /// Registered names in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Validate the spec frame and knob overlay, then dispatch.
  /// spec.protocol is ignored in favor of `name` so one base spec can be
  /// re-run under several protocols.
  [[nodiscard]] RunMetrics run(const std::string& name,
                               const ScenarioSpec& spec) const;

  /// The knob-overlay half of validation, usable standalone (CLI --help
  /// paths, tests): unknown keys and type mismatches throw
  /// PreconditionError naming the knob and the expected type; ints are
  /// accepted for double knobs.
  void validate_knobs(const Protocol& protocol, const ScenarioSpec& spec) const;

 private:
  std::vector<std::unique_ptr<Protocol>> protocols_;
};

/// The process-wide registry, with all built-in protocols registered on
/// first use.
[[nodiscard]] Registry& registry();

/// Register the built-in adapters into `target` (exposed so tests can
/// build isolated registries).
void register_builtin_protocols(Registry& target);

/// Machine-readable registry listing, shared by `poqsim list --json` and
/// the serve protocol's `list` op:
///   {"protocols": [{"name": ..., "description": ...,
///                   "knobs": [{"name", "type", "default", "help"}, ...]}]}
/// Knob defaults keep their declared type (bool/number/string); knob order
/// follows each protocol's declaration, protocol order is registration
/// order — both deterministic, so dumps are diffable.
[[nodiscard]] util::json::Value registry_to_json(const Registry& source);

}  // namespace poq::scenario
