#include "scenario/spec.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace poq::scenario {

namespace {

constexpr const char* kFamilyNames =
    "cycle, random-grid, full-grid, erdos-renyi, watts-strogatz, "
    "barabasi-albert";

std::size_t nearest_perfect_square(std::size_t n, std::size_t minimum) {
  if (n <= minimum) return minimum;
  const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  const std::size_t below = std::max<std::size_t>(side * side, minimum);
  const std::size_t above = (side + 1) * (side + 1);
  return (n - below <= above - n) ? below : above;
}

[[noreturn]] void knob_type_fail(const std::string& name, KnobType wanted,
                                 const KnobValue& actual) {
  throw PreconditionError(util::str_cat(
      "knob '", name, "' holds a ", knob_type_name(knob_value_type(actual)),
      " but a ", knob_type_name(wanted), " was requested"));
}

const char* fault_event_name(sim::FaultEventKind kind) {
  switch (kind) {
    case sim::FaultEventKind::kNodeDown: return "node-down";
    case sim::FaultEventKind::kNodeUp: return "node-up";
    case sim::FaultEventKind::kLinkDown: return "link-down";
    case sim::FaultEventKind::kLinkUp: return "link-up";
    case sim::FaultEventKind::kRateFactor: return "rate-factor";
  }
  return "?";
}

sim::FaultEventKind parse_fault_event(const std::string& name) {
  if (name == "node-down") return sim::FaultEventKind::kNodeDown;
  if (name == "node-up") return sim::FaultEventKind::kNodeUp;
  if (name == "link-down") return sim::FaultEventKind::kLinkDown;
  if (name == "link-up") return sim::FaultEventKind::kLinkUp;
  if (name == "rate-factor") return sim::FaultEventKind::kRateFactor;
  throw PreconditionError(util::str_cat(
      "unknown fault event '", name,
      "' (valid: node-down, node-up, link-down, link-up, rate-factor)"));
}

}  // namespace

std::string knob_type_name(KnobType type) {
  switch (type) {
    case KnobType::kBool: return "bool";
    case KnobType::kInt: return "int";
    case KnobType::kDouble: return "double";
    case KnobType::kString: return "string";
  }
  return "?";
}

KnobType knob_value_type(const KnobValue& value) {
  switch (value.index()) {
    case 0: return KnobType::kBool;
    case 1: return KnobType::kInt;
    case 2: return KnobType::kDouble;
    default: return KnobType::kString;
  }
}

std::string knob_value_text(const KnobValue& value) {
  switch (value.index()) {
    case 0: return std::get<bool>(value) ? "true" : "false";
    case 1: return std::to_string(std::get<std::int64_t>(value));
    case 2: return util::json::dump_number(std::get<double>(value));
    default: return std::get<std::string>(value);
  }
}

bool ScenarioSpec::knob_bool(const std::string& name, bool fallback) const {
  const auto found = knobs.find(name);
  if (found == knobs.end()) return fallback;
  if (const bool* value = std::get_if<bool>(&found->second)) return *value;
  knob_type_fail(name, KnobType::kBool, found->second);
}

std::int64_t ScenarioSpec::knob_int(const std::string& name,
                                    std::int64_t fallback) const {
  const auto found = knobs.find(name);
  if (found == knobs.end()) return fallback;
  if (const auto* value = std::get_if<std::int64_t>(&found->second)) return *value;
  knob_type_fail(name, KnobType::kInt, found->second);
}

double ScenarioSpec::knob_double(const std::string& name, double fallback) const {
  const auto found = knobs.find(name);
  if (found == knobs.end()) return fallback;
  if (const double* value = std::get_if<double>(&found->second)) return *value;
  // Ints promote to doubles; anything else is a caller bug.
  if (const auto* value = std::get_if<std::int64_t>(&found->second)) {
    return static_cast<double>(*value);
  }
  knob_type_fail(name, KnobType::kDouble, found->second);
}

std::string ScenarioSpec::knob_string(const std::string& name,
                                      const std::string& fallback) const {
  const auto found = knobs.find(name);
  if (found == knobs.end()) return fallback;
  if (const auto* value = std::get_if<std::string>(&found->second)) return *value;
  knob_type_fail(name, KnobType::kString, found->second);
}

ScenarioSpec ScenarioSpec::with_seed(std::uint64_t new_seed) const {
  ScenarioSpec copy = *this;
  copy.seed = new_seed;
  return copy;
}

util::json::Value ScenarioSpec::to_json() const {
  using util::json::Value;
  Value out = Value::object();
  out.set("protocol", protocol);
  out.set("topology", topology);
  // Emitted only when set so parameter-free specs round-trip byte-for-byte
  // with pre-parameter baselines.
  if (!topology_params.empty()) {
    Value params = Value::object();
    for (const auto& [name, value] : topology_params) params.set(name, value);
    out.set("topology_params", std::move(params));
  }
  out.set("nodes", nodes);
  out.set("consumer_pairs", consumer_pairs);
  out.set("requests", requests);
  out.set("seed", static_cast<double>(seed));
  Value knob_object = Value::object();
  for (const auto& [name, value] : knobs) {
    switch (knob_value_type(value)) {
      case KnobType::kBool: knob_object.set(name, std::get<bool>(value)); break;
      case KnobType::kInt:
        knob_object.set(name, static_cast<double>(std::get<std::int64_t>(value)));
        break;
      case KnobType::kDouble: knob_object.set(name, std::get<double>(value)); break;
      case KnobType::kString: knob_object.set(name, std::get<std::string>(value)); break;
    }
  }
  out.set("knobs", std::move(knob_object));
  // Emitted only when scripted so fault-free specs round-trip
  // byte-for-byte with pre-fault baselines.
  if (!faults.empty()) {
    Value script = Value::array();
    for (const sim::FaultEvent& event : faults) {
      Value entry = Value::object();
      entry.set("round", static_cast<double>(event.round));
      entry.set("event", std::string(fault_event_name(event.kind)));
      switch (event.kind) {
        case sim::FaultEventKind::kNodeDown:
        case sim::FaultEventKind::kNodeUp:
          entry.set("node", static_cast<double>(event.node));
          break;
        case sim::FaultEventKind::kLinkDown:
        case sim::FaultEventKind::kLinkUp: {
          Value edge = Value::array();
          edge.push_back(Value(static_cast<double>(event.a)));
          edge.push_back(Value(static_cast<double>(event.b)));
          entry.set("edge", std::move(edge));
          break;
        }
        case sim::FaultEventKind::kRateFactor:
          entry.set("factor", event.factor);
          break;
      }
      script.push_back(std::move(entry));
    }
    out.set("faults", std::move(script));
  }
  return out;
}

ScenarioSpec ScenarioSpec::from_json(const util::json::Value& value) {
  ScenarioSpec spec;
  spec.protocol = value.at("protocol").as_string();
  spec.topology = value.at("topology").as_string();
  if (value.contains("topology_params")) {
    for (const auto& [name, param] : value.at("topology_params").members()) {
      spec.topology_params.emplace(name, param.as_number());
    }
  }
  spec.nodes = static_cast<std::size_t>(value.at("nodes").as_number());
  spec.consumer_pairs =
      static_cast<std::size_t>(value.at("consumer_pairs").as_number());
  spec.requests = static_cast<std::size_t>(value.at("requests").as_number());
  spec.seed = static_cast<std::uint64_t>(value.at("seed").as_number());
  // "knobs" is optional so hand-written spec files (poqsim run --spec,
  // serve submits) can omit the empty overlay.
  if (value.contains("knobs")) {
    for (const auto& [name, knob] : value.at("knobs").members()) {
      if (knob.is_bool()) {
        spec.knobs.emplace(name, knob.as_bool());
      } else if (knob.is_string()) {
        spec.knobs.emplace(name, knob.as_string());
      } else {
        // JSON numbers are doubles; integral values round-trip as ints so
        // int-typed knobs re-validate cleanly.
        const double number = knob.as_number();
        if (number == std::floor(number) && std::abs(number) < 9.0e15) {
          spec.knobs.emplace(name, static_cast<std::int64_t>(number));
        } else {
          spec.knobs.emplace(name, number);
        }
      }
    }
  }
  if (value.contains("faults")) {
    for (const util::json::Value& entry : value.at("faults").items()) {
      sim::FaultEvent event;
      event.round = static_cast<std::uint64_t>(entry.at("round").as_number());
      event.kind = parse_fault_event(entry.at("event").as_string());
      switch (event.kind) {
        case sim::FaultEventKind::kNodeDown:
        case sim::FaultEventKind::kNodeUp:
          event.node =
              static_cast<core::NodeId>(entry.at("node").as_number());
          break;
        case sim::FaultEventKind::kLinkDown:
        case sim::FaultEventKind::kLinkUp: {
          const util::json::Value& edge = entry.at("edge");
          require(edge.is_array() && edge.size() == 2,
                  "fault event: 'edge' must be a [a, b] pair");
          event.a = static_cast<core::NodeId>(edge.at(0).as_number());
          event.b = static_cast<core::NodeId>(edge.at(1).as_number());
          break;
        }
        case sim::FaultEventKind::kRateFactor:
          event.factor = entry.at("factor").as_number();
          break;
      }
      spec.faults.push_back(event);
    }
  }
  return spec;
}

graph::TopologyFamily parse_topology_family(const std::string& name) {
  if (name == "cycle") return graph::TopologyFamily::kCycle;
  if (name == "random-grid") return graph::TopologyFamily::kRandomGrid;
  if (name == "full-grid") return graph::TopologyFamily::kFullGrid;
  if (name == "erdos-renyi") return graph::TopologyFamily::kErdosRenyi;
  if (name == "watts-strogatz") return graph::TopologyFamily::kWattsStrogatz;
  if (name == "barabasi-albert") return graph::TopologyFamily::kBarabasiAlbert;
  throw PreconditionError(util::str_cat("unknown topology '", name,
                                  "' (valid families: ", kFamilyNames, ")"));
}

namespace {

/// Parameter names each family defines (the spec's topology_params keys).
std::vector<std::string> family_param_names(graph::TopologyFamily family) {
  switch (family) {
    case graph::TopologyFamily::kErdosRenyi: return {"p"};
    case graph::TopologyFamily::kWattsStrogatz: return {"k", "beta"};
    case graph::TopologyFamily::kBarabasiAlbert: return {"m"};
    default: return {};
  }
}

/// Require an integral parameter value >= 1 (k, m).
std::size_t integral_param(const std::string& name, double value) {
  if (value < 1.0 || value != std::floor(value) || value > 1.0e9) {
    throw PreconditionError(util::str_cat("topology parameter '", name,
                                          "' must be a positive integer (got ",
                                          util::json::dump_number(value), ")"));
  }
  return static_cast<std::size_t>(value);
}

/// Typed view of the spec's topology_params overlay (already validated
/// against the family by validate_frame).
graph::TopologyParams topology_params_of(const ScenarioSpec& spec) {
  graph::TopologyParams params;
  for (const auto& [name, value] : spec.topology_params) {
    if (name == "p") {
      params.er_p = value;
    } else if (name == "k") {
      params.ws_k = integral_param(name, value);
    } else if (name == "beta") {
      params.ws_beta = value;
    } else if (name == "m") {
      params.ba_m = integral_param(name, value);
    }
  }
  return params;
}

}  // namespace

void validate_frame(const ScenarioSpec& spec) {
  const graph::TopologyFamily family = parse_topology_family(spec.topology);
  const std::vector<std::string> param_names = family_param_names(family);
  for (const auto& [name, value] : spec.topology_params) {
    if (std::find(param_names.begin(), param_names.end(), name) ==
        param_names.end()) {
      throw PreconditionError(util::str_cat(
          "topology ", spec.topology, " does not define parameter '", name,
          "' (valid: er p; ws k, beta; ba m)"));
    }
    if ((name == "p" || name == "beta") && (value < 0.0 || value > 1.0)) {
      throw PreconditionError(util::str_cat("topology parameter '", name,
                                            "' must be in [0, 1] (got ",
                                            util::json::dump_number(value), ")"));
    }
  }
  const graph::TopologyParams params = topology_params_of(spec);
  const std::size_t min_nodes = graph::min_topology_nodes(family, params);
  const bool grid = family == graph::TopologyFamily::kRandomGrid ||
                    family == graph::TopologyFamily::kFullGrid;
  const auto fail = [&](const std::string& requirement, std::size_t nearest) {
    throw PreconditionError(util::str_cat(
        "topology ", spec.topology, " requires nodes to be ", requirement,
        " (got ", spec.nodes, "; nearest valid count: ", nearest, ")"));
  };
  if (grid) {
    const bool square_ok = [&] {
      if (spec.nodes < min_nodes) return false;
      const auto side = static_cast<std::size_t>(
          std::sqrt(static_cast<double>(spec.nodes)) + 0.5);
      return side * side == spec.nodes;
    }();
    if (!square_ok) {
      fail(util::str_cat("a perfect square >= ", min_nodes),
           nearest_perfect_square(spec.nodes, std::max<std::size_t>(min_nodes, 9)));
    }
  } else if (spec.nodes < min_nodes) {
    fail(util::str_cat("at least ", min_nodes), min_nodes);
  }
  require(spec.consumer_pairs > 0, "scenario: consumer_pairs must be positive");
  require(spec.requests > 0, "scenario: requests must be positive");
}

ScenarioInstance instantiate(const ScenarioSpec& spec) {
  validate_frame(spec);
  const graph::TopologyFamily family = parse_topology_family(spec.topology);
  ScenarioInstance instance;
  util::Rng rng(spec.seed);
  instance.graph =
      graph::make_topology(family, spec.nodes, rng, topology_params_of(spec));
  const std::size_t max_pairs = spec.nodes * (spec.nodes - 1) / 2;
  const std::size_t pairs = std::min(spec.consumer_pairs, max_pairs);
  util::Rng workload_rng = rng.fork(42);
  instance.workload =
      core::make_uniform_workload(spec.nodes, pairs, spec.requests, workload_rng);
  return instance;
}

}  // namespace poq::scenario
