// Unified experiment specification (the scenario API's input half).
//
// Every protocol variant in the repo consumes the same experimental frame
// — a generation-graph topology, a consumption workload, a seed — plus a
// handful of protocol-specific knobs. ScenarioSpec captures the frame as
// typed fields and the knobs as a validated key/value overlay, so one
// spec can drive any registered protocol and a sweep is just a vector of
// specs. Construction of the graph/workload from a spec is centralized
// here (instantiate), replicating the CLI's historical seeding discipline
// (topology from Rng(seed), workload from fork(42)) so results stay
// comparable with pre-registry drivers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "core/workload.hpp"
#include "graph/graph.hpp"
#include "graph/topology.hpp"
#include "sim/fault_plan.hpp"
#include "util/json.hpp"

namespace poq::scenario {

/// A protocol knob value. Integers and doubles are distinct on purpose:
/// the registry coerces int -> double where a protocol declares a double
/// knob, but never the reverse.
using KnobValue = std::variant<bool, std::int64_t, double, std::string>;

enum class KnobType { kBool, kInt, kDouble, kString };

[[nodiscard]] std::string knob_type_name(KnobType type);
[[nodiscard]] KnobType knob_value_type(const KnobValue& value);
[[nodiscard]] std::string knob_value_text(const KnobValue& value);

/// One knob a protocol declares: name, type, default, one-line help.
/// The declaration doubles as CLI surface (poqsim forwards matching
/// options) and as the validation schema for ScenarioSpec::knobs.
struct KnobSpec {
  std::string name;
  KnobType type = KnobType::kDouble;
  KnobValue default_value = 0.0;
  std::string help;
};

/// The experiment frame shared by all protocols.
struct ScenarioSpec {
  std::string protocol = "balancing";
  /// Topology family name (graph::family_name vocabulary).
  std::string topology = "random-grid";
  /// Topology family parameter overrides, keyed by the family's parameter
  /// name: "p" (erdos-renyi edge probability), "k" / "beta"
  /// (watts-strogatz neighbours per side / rewiring probability), "m"
  /// (barabasi-albert edges per arrival). Keys a family does not define
  /// are rejected by validate_frame; unset keys keep the make_topology
  /// defaults. Part of the frame (not the knob overlay) because the
  /// generation graph is protocol-independent.
  std::map<std::string, double> topology_params;
  std::size_t nodes = 25;
  /// Consumer pairs drawn from C(nodes, 2); clamped when n is small.
  std::size_t consumer_pairs = 35;
  /// Request backlog length (head-of-line order).
  std::size_t requests = 200;
  std::uint64_t seed = 1;
  /// Protocol-specific overlay, validated against the protocol's KnobSpecs.
  std::map<std::string, KnobValue> knobs;
  /// Scripted fault events (the `faults` JSON array), applied by the
  /// protocol's fault phase at their stamped rounds. Part of the frame
  /// rather than the knob overlay because events are structured (round,
  /// kind, entity) and shared verbatim by every simulator protocol.
  /// Stochastic fault processes are ordinary knobs (fault-node-mtbf, ...).
  std::vector<sim::FaultEvent> faults;

  [[nodiscard]] bool has_knob(const std::string& name) const {
    return knobs.count(name) != 0;
  }

  /// Typed knob reads with fallback; throw PreconditionError naming the
  /// knob on a type mismatch (int is accepted where a double is asked).
  [[nodiscard]] bool knob_bool(const std::string& name, bool fallback) const;
  [[nodiscard]] std::int64_t knob_int(const std::string& name,
                                      std::int64_t fallback) const;
  [[nodiscard]] double knob_double(const std::string& name, double fallback) const;
  [[nodiscard]] std::string knob_string(const std::string& name,
                                        const std::string& fallback) const;

  /// Derived copy with a different seed (sweep replication).
  [[nodiscard]] ScenarioSpec with_seed(std::uint64_t new_seed) const;

  [[nodiscard]] util::json::Value to_json() const;
  [[nodiscard]] static ScenarioSpec from_json(const util::json::Value& value);
};

/// Parse a topology family name; throws PreconditionError listing the
/// valid names on failure.
[[nodiscard]] graph::TopologyFamily parse_topology_family(const std::string& name);

/// Reject specs the topology layer cannot build: unknown family, node
/// count below graph::min_topology_nodes, non-square counts for grid
/// families (the error names the nearest valid count), zero
/// consumer_pairs/requests. Knob validation lives in the registry, which
/// knows the protocol's schema.
void validate_frame(const ScenarioSpec& spec);

/// A spec made concrete: the generation graph and workload every
/// protocol adapter consumes.
struct ScenarioInstance {
  graph::Graph graph{0};
  core::Workload workload;
};

/// Deterministically build graph + workload from the spec (validates the
/// frame first). Same spec => same instance, bit for bit.
[[nodiscard]] ScenarioInstance instantiate(const ScenarioSpec& spec);

}  // namespace poq::scenario
