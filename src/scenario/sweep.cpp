#include "scenario/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "scenario/protocol.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::scenario {

namespace {

using Clock = std::chrono::steady_clock;

struct TaskResult {
  RunMetrics metrics;
  double wall_ms = 0.0;
  std::exception_ptr error;
};

}  // namespace

bool CellAggregate::has(const std::string& name) const {
  for (const auto& [key, stats] : scalars) {
    if (key == name) return true;
  }
  return false;
}

const util::RunningStats& CellAggregate::at(const std::string& name) const {
  for (const auto& [key, stats] : scalars) {
    if (key == name) return stats;
  }
  throw PreconditionError(util::str_cat("sweep cell has no scalar '", name, "'"));
}

util::json::Value CellAggregate::to_json() const {
  using util::json::Value;
  Value out = Value::object();
  out.set("spec", spec.to_json());
  out.set("seeds", static_cast<double>(seeds));
  Value label_object = Value::object();
  for (const auto& [name, value] : labels) label_object.set(name, value);
  out.set("labels", std::move(label_object));
  Value metric_object = Value::object();
  for (const auto& [name, stats] : scalars) {
    metric_object.set(name, stats_to_json(stats));
  }
  out.set("metrics", std::move(metric_object));
  if (!timings.empty()) {
    Value timing_object = Value::object();
    for (const auto& [name, stats] : timings) {
      timing_object.set(name, stats_to_json(stats));
    }
    out.set("timings", std::move(timing_object));
  }
  out.set("wall_ms", wall_ms);
  return out;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {
  require(options_.seeds_per_cell > 0, "sweep: seeds_per_cell must be positive");
}

unsigned SweepRunner::effective_threads(std::size_t task_count) const {
  unsigned threads = options_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    // Auto-sizing shares the hardware with the intra-run engine: a pool of
    // T tasks each sharding across K threads wants T*K <= hardware
    // (intra_run_threads == 0 means each run takes the whole machine).
    const unsigned intra =
        options_.intra_run_threads == 0 ? threads : options_.intra_run_threads;
    if (intra > 1) threads = std::max(1u, threads / intra);
  }
  if (threads > task_count) threads = static_cast<unsigned>(task_count);
  return threads == 0 ? 1 : threads;
}

void apply_intra_run_threads(std::vector<ScenarioSpec>& grid, unsigned threads) {
  for (ScenarioSpec& spec : grid) {
    if (!registry().contains(spec.protocol)) continue;
    for (const KnobSpec& knob : registry().find(spec.protocol).knobs()) {
      if (knob.name == "threads") {
        spec.knobs["threads"] = static_cast<std::int64_t>(threads);
        break;
      }
    }
  }
}

std::vector<CellAggregate> SweepRunner::run(
    const std::vector<ScenarioSpec>& grid) const {
  const std::size_t reps = options_.seeds_per_cell;
  const std::size_t task_count = grid.size() * reps;
  std::vector<TaskResult> results(task_count);
  if (task_count > 0) {
    // Workers pull the next task index from a shared counter; results land
    // in the task's own slot so completion order never matters.
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      while (true) {
        const std::size_t task = next.fetch_add(1, std::memory_order_relaxed);
        if (task >= task_count) return;
        const std::size_t cell = task / reps;
        const std::size_t rep = task % reps;
        TaskResult& slot = results[task];
        const Clock::time_point start = Clock::now();
        try {
          const ScenarioSpec run_spec = grid[cell].with_seed(
              grid[cell].seed + static_cast<std::uint64_t>(rep));
          slot.metrics = registry().run(run_spec.protocol, run_spec);
        } catch (...) {
          slot.error = std::current_exception();
        }
        slot.wall_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start)
                .count();
      }
    };
    const unsigned thread_count = effective_threads(task_count);
    if (thread_count <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(thread_count);
      for (unsigned i = 0; i < thread_count; ++i) pool.emplace_back(worker);
      for (std::thread& thread : pool) thread.join();
    }
    for (const TaskResult& result : results) {
      if (result.error) std::rethrow_exception(result.error);
    }
  }

  std::vector<CellAggregate> aggregates;
  aggregates.reserve(grid.size());
  for (std::size_t cell = 0; cell < grid.size(); ++cell) {
    CellAggregate aggregate;
    aggregate.spec = grid[cell];
    aggregate.seeds = static_cast<std::uint32_t>(reps);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const TaskResult& result = results[cell * reps + rep];
      aggregate.wall_ms += result.wall_ms;
      if (rep == 0) {
        aggregate.labels = result.metrics.labels();
      } else {
        // Labels that vary across replications (e.g. "completed" when
        // only some seeds finish in budget) are reported as "mixed"
        // rather than as replication 0's value.
        for (auto& [name, value] : aggregate.labels) {
          if (!result.metrics.has_label(name) ||
              result.metrics.label(name) != value) {
            value = "mixed";
          }
        }
      }
      const auto accumulate =
          [](std::vector<std::pair<std::string, util::RunningStats>>& into,
             const std::string& name, double value) {
            for (auto& [key, existing] : into) {
              if (key == name) {
                existing.add(value);
                return;
              }
            }
            into.emplace_back(name, util::RunningStats{});
            into.back().second.add(value);
          };
      for (const auto& [name, value] : result.metrics.scalars()) {
        accumulate(aggregate.scalars, name, value);
      }
      for (const auto& [name, value] : result.metrics.timings()) {
        accumulate(aggregate.timings, name, value);
      }
    }
    aggregates.push_back(std::move(aggregate));
  }
  return aggregates;
}

}  // namespace poq::scenario
