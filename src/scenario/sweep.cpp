#include "scenario/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "scenario/protocol.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::scenario {

namespace {

using Clock = std::chrono::steady_clock;

struct TaskResult {
  RunMetrics metrics;
  double wall_ms = 0.0;
  std::exception_ptr error;
  bool ran = false;        // metrics is valid
  bool cancelled = false;  // aborted by OperationCancelled or never claimed
};

/// Aggregate one cell from its per-replication results — task order, never
/// completion order, so the output is bit-identical for any thread count.
CellAggregate aggregate_cell(const ScenarioSpec& spec, std::size_t reps,
                             const TaskResult* results) {
  CellAggregate aggregate;
  aggregate.spec = spec;
  aggregate.seeds = static_cast<std::uint32_t>(reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const TaskResult& result = results[rep];
    aggregate.wall_ms += result.wall_ms;
    if (rep == 0) {
      aggregate.labels = result.metrics.labels();
    } else {
      // Labels that vary across replications (e.g. "completed" when
      // only some seeds finish in budget) are reported as "mixed"
      // rather than as replication 0's value.
      for (auto& [name, value] : aggregate.labels) {
        if (!result.metrics.has_label(name) ||
            result.metrics.label(name) != value) {
          value = "mixed";
        }
      }
    }
    const auto accumulate =
        [](std::vector<std::pair<std::string, util::RunningStats>>& into,
           const std::string& name, double value) {
          for (auto& [key, existing] : into) {
            if (key == name) {
              existing.add(value);
              return;
            }
          }
          into.emplace_back(name, util::RunningStats{});
          into.back().second.add(value);
        };
    for (const auto& [name, value] : result.metrics.scalars()) {
      accumulate(aggregate.scalars, name, value);
    }
    for (const auto& [name, value] : result.metrics.timings()) {
      accumulate(aggregate.timings, name, value);
    }
  }
  return aggregate;
}

}  // namespace

bool CellAggregate::has(const std::string& name) const {
  for (const auto& [key, stats] : scalars) {
    if (key == name) return true;
  }
  return false;
}

const util::RunningStats& CellAggregate::at(const std::string& name) const {
  for (const auto& [key, stats] : scalars) {
    if (key == name) return stats;
  }
  throw PreconditionError(util::str_cat("sweep cell has no scalar '", name, "'"));
}

util::json::Value CellAggregate::to_json() const {
  using util::json::Value;
  Value out = Value::object();
  out.set("spec", spec.to_json());
  out.set("seeds", static_cast<double>(seeds));
  Value label_object = Value::object();
  for (const auto& [name, value] : labels) label_object.set(name, value);
  out.set("labels", std::move(label_object));
  Value metric_object = Value::object();
  for (const auto& [name, stats] : scalars) {
    metric_object.set(name, stats_to_json(stats));
  }
  out.set("metrics", std::move(metric_object));
  if (!timings.empty()) {
    Value timing_object = Value::object();
    for (const auto& [name, stats] : timings) {
      timing_object.set(name, stats_to_json(stats));
    }
    out.set("timings", std::move(timing_object));
  }
  out.set("wall_ms", wall_ms);
  return out;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {
  require(options_.seeds_per_cell > 0, "sweep: seeds_per_cell must be positive");
}

unsigned SweepRunner::effective_threads(std::size_t task_count) const {
  unsigned threads = options_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    // Auto-sizing shares the hardware with the intra-run engine: a pool of
    // T tasks each sharding across K threads wants T*K <= hardware
    // (intra_run_threads == 0 means each run takes the whole machine).
    const unsigned intra =
        options_.intra_run_threads == 0 ? threads : options_.intra_run_threads;
    if (intra > 1) threads = std::max(1u, threads / intra);
  }
  if (threads > task_count) threads = static_cast<unsigned>(task_count);
  return threads == 0 ? 1 : threads;
}

void apply_intra_run_threads(std::vector<ScenarioSpec>& grid, unsigned threads) {
  for (ScenarioSpec& spec : grid) {
    if (!registry().contains(spec.protocol)) continue;
    for (const KnobSpec& knob : registry().find(spec.protocol).knobs()) {
      if (knob.name == "threads") {
        spec.knobs["threads"] = static_cast<std::int64_t>(threads);
        break;
      }
    }
  }
}

std::vector<CellAggregate> SweepRunner::run(
    const std::vector<ScenarioSpec>& grid) const {
  // Without a token nothing can be cancelled, so every cell aggregates.
  SweepReport report = run_controlled(grid, nullptr);
  return std::move(report.cells);
}

SweepReport SweepRunner::run_controlled(const std::vector<ScenarioSpec>& grid,
                                        const util::CancelToken* cancel,
                                        const SweepObserver& observe) const {
  const std::size_t reps = options_.seeds_per_cell;
  const std::size_t task_count = grid.size() * reps;
  std::vector<TaskResult> results(task_count);
  std::mutex observe_mutex;
  if (task_count > 0) {
    // Workers pull the next task index from a shared counter; results land
    // in the task's own slot so completion order never matters. A fired
    // token stops the claiming loop; in-flight runs abort through the
    // thread-local install at their next per-round check.
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      // Only install when a token was passed: an install of nullptr would
      // mask a token an enclosing driver (e.g. a serve job) put on the
      // calling thread, and the single-threaded path runs right on it.
      std::optional<util::ScopedCancel> install;
      if (cancel != nullptr) install.emplace(cancel);
      while (true) {
        if (cancel != nullptr && cancel->requested()) return;
        const std::size_t task = next.fetch_add(1, std::memory_order_relaxed);
        if (task >= task_count) return;
        const std::size_t cell = task / reps;
        const std::size_t rep = task % reps;
        TaskResult& slot = results[task];
        const Clock::time_point start = Clock::now();
        try {
          const ScenarioSpec run_spec = grid[cell].with_seed(
              grid[cell].seed + static_cast<std::uint64_t>(rep));
          slot.metrics = registry().run(run_spec.protocol, run_spec);
          slot.ran = true;
        } catch (const util::OperationCancelled&) {
          slot.cancelled = true;
        } catch (...) {
          slot.error = std::current_exception();
        }
        slot.wall_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start)
                .count();
        if (observe) {
          const std::lock_guard<std::mutex> lock(observe_mutex);
          SweepEvent event;
          event.cell = cell;
          event.rep = rep;
          event.spec = &grid[cell];
          event.metrics = slot.ran ? &slot.metrics : nullptr;
          event.wall_ms = slot.wall_ms;
          observe(event);
        }
      }
    };
    const unsigned thread_count = effective_threads(task_count);
    if (thread_count <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(thread_count);
      for (unsigned i = 0; i < thread_count; ++i) pool.emplace_back(worker);
      for (std::thread& thread : pool) thread.join();
    }
    for (const TaskResult& result : results) {
      if (result.error) std::rethrow_exception(result.error);
    }
  }

  SweepReport report;
  report.cancelled = cancel != nullptr && cancel->requested();
  report.cells.reserve(grid.size());
  for (std::size_t cell = 0; cell < grid.size(); ++cell) {
    bool complete = true;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      if (!results[cell * reps + rep].ran) complete = false;
    }
    if (!complete) {
      ++report.cancelled_cells;
      continue;
    }
    report.cells.push_back(
        aggregate_cell(grid[cell], reps, results.data() + cell * reps));
    report.cell_indices.push_back(cell);
  }
  return report;
}

}  // namespace poq::scenario
