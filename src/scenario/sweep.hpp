// Parallel grid sweeps over scenarios.
//
// A sweep is a vector of ScenarioSpecs (the grid cells); each cell is
// replicated over `seeds_per_cell` seeds (spec.seed + r) and every
// (cell, seed) run is an independent task fanned across a std::thread
// pool. Determinism contract: aggregation order is fixed by (cell index,
// replication index), never by completion order, so the aggregated
// metrics of a sweep are bit-identical for any thread count — the
// sweep_determinism test and the BENCH regression gate both lean on this.
// Wall-clock timings are recorded per cell but excluded from that
// contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "scenario/metrics.hpp"
#include "scenario/spec.hpp"
#include "util/cancel.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace poq::scenario {

struct SweepOptions {
  /// Replications per cell; replication r runs spec.with_seed(spec.seed + r).
  std::uint32_t seeds_per_cell = 1;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Intra-run worker threads each task is expected to spawn (the
  /// sharded tick engine's `threads` knob). Auto-sized pools (threads ==
  /// 0) divide the hardware budget by this so the two parallelism levels
  /// compose without oversubscription; an explicit `threads` is taken as
  /// is.
  unsigned intra_run_threads = 1;
};

/// Aggregated result of one grid cell.
struct CellAggregate {
  ScenarioSpec spec;           // the cell's base spec (seed = base seed)
  std::uint32_t seeds = 0;     // replications aggregated
  /// Labels agreed on by every replication; a label whose value varies
  /// across seeds (e.g. "completed") is reported as "mixed".
  std::vector<std::pair<std::string, std::string>> labels;
  /// Per-scalar aggregation across replications, in first-seen metric
  /// order. A scalar a run omits (e.g. overhead of a starved run) simply
  /// contributes no sample.
  std::vector<std::pair<std::string, util::RunningStats>> scalars;
  /// Per-timing aggregation (phase_ms.* wall-clock): observability only,
  /// excluded — like wall_ms — from every determinism/regression compare.
  std::vector<std::pair<std::string, util::RunningStats>> timings;
  /// Wall-clock spent running this cell's replications, summed (ms).
  double wall_ms = 0.0;

  [[nodiscard]] bool has(const std::string& name) const;
  /// Aggregate for one scalar; throws PreconditionError if absent.
  [[nodiscard]] const util::RunningStats& at(const std::string& name) const;

  /// {"spec": ..., "seeds": n, "labels": {...},
  ///  "metrics": {name: {count, mean, stddev, min, max}},
  ///  "timings": {...} (when present), "wall_ms": t}
  [[nodiscard]] util::json::Value to_json() const;
};

/// One finished (cell, replication) task of a controlled sweep, reported
/// live while later tasks are still running. `metrics` carries the full
/// RunMetrics including the phase_ms.* timings (the serve daemon streams
/// these as progress events); it is null when the task was cancelled
/// mid-run. Events arrive in completion order — which worker threads make
/// nondeterministic — but the *aggregate* stays ordered by (cell, rep),
/// so streaming never weakens the determinism contract.
struct SweepEvent {
  std::size_t cell = 0;  ///< grid index
  std::size_t rep = 0;   ///< replication index within the cell
  const ScenarioSpec* spec = nullptr;   ///< the cell's base spec
  const RunMetrics* metrics = nullptr;  ///< null when cancelled
  double wall_ms = 0.0;
};

/// Invoked from worker threads, but serialized by the runner (never
/// concurrently with itself); the pointers are valid only for the call.
using SweepObserver = std::function<void(const SweepEvent&)>;

/// Result of a controlled (cancellable) sweep. Cancellation contract:
/// cells whose every replication completed before the cancel aggregate
/// exactly as in an uncancelled run — bit-identical, since each (cell,
/// seed) task is deterministic in isolation — and appear in `cells` with
/// their grid index in `cell_indices`; cells with any replication
/// cancelled or never started are excluded whole and counted in
/// `cancelled_cells`. No partially-aggregated cell is ever reported.
struct SweepReport {
  std::vector<CellAggregate> cells;
  std::vector<std::size_t> cell_indices;  ///< grid index per aggregate
  std::size_t cancelled_cells = 0;
  bool cancelled = false;  ///< the token fired before the sweep drained
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Run every (cell, replication) task across the pool and aggregate.
  /// The first exception thrown by any task (in task order) is rethrown
  /// after all workers drain. Cells dispatch through scenario::registry().
  [[nodiscard]] std::vector<CellAggregate> run(
      const std::vector<ScenarioSpec>& grid) const;

  /// run() with cooperative cancellation and live per-task events. When
  /// `cancel` fires, workers stop claiming tasks and in-flight runs abort
  /// at their next round/epoch boundary (the token is installed on each
  /// worker via util::ScopedCancel, so the core loops' per-round checks
  /// see it). Exceptions other than cancellation still rethrow, first in
  /// task order.
  [[nodiscard]] SweepReport run_controlled(const std::vector<ScenarioSpec>& grid,
                                           const util::CancelToken* cancel,
                                           const SweepObserver& observe = {}) const;

  /// Threads the runner will actually use for `task_count` tasks.
  [[nodiscard]] unsigned effective_threads(std::size_t task_count) const;

 private:
  SweepOptions options_;
};

/// Set the intra-run `threads` knob on every grid spec whose protocol
/// declares it (the ported protocols: balancing, planned, hybrid); specs
/// of sequential-only protocols are left untouched. Callers pair this
/// with SweepOptions::intra_run_threads so pool x intra-run threads stays
/// within the hardware budget.
void apply_intra_run_threads(std::vector<ScenarioSpec>& grid, unsigned threads);

}  // namespace poq::scenario
