#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::serve {

Client::Client(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}

Client::~Client() { close(); }

void Client::connect(int attempts, int delay_ms) {
  require(fd_ < 0, "serve client: already connected");
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  require(socket_path_.size() < sizeof(address.sun_path),
          util::str_cat("serve client: socket path '", socket_path_,
                        "' exceeds the AF_UNIX limit"));
  std::memcpy(address.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  int last_errno = 0;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    require(fd >= 0, util::str_cat("serve client: socket() failed: ",
                                   std::strerror(errno)));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof address) == 0) {
      fd_ = fd;
      return;
    }
    last_errno = errno;
    ::close(fd);
  }
  throw PreconditionError(util::str_cat(
      "serve client: cannot connect to '", socket_path_, "' after ", attempts,
      " attempts: ", std::strerror(last_errno)));
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_line(const std::string& line) {
  require(fd_ >= 0, "serve client: not connected");
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    require(n > 0, "serve client: connection lost while sending");
    sent += static_cast<std::size_t>(n);
  }
}

util::json::Value Client::read_frame() {
  require(fd_ >= 0, "serve client: not connected");
  for (;;) {
    if (std::optional<std::string> frame = reader_.next()) {
      return util::json::Value::parse(*frame);
    }
    char buffer[4096];
    const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
    require(n > 0, "serve client: server closed the connection");
    reader_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
}

util::json::Value Client::request(const util::json::Value& frame) {
  send_line(encode_frame(frame));
  return read_frame();
}

util::json::Value Client::read_events(
    const std::function<void(const util::json::Value&)>& on_event) {
  for (;;) {
    util::json::Value frame = read_frame();
    require(frame.is_object() && frame.contains("event"),
            util::str_cat("serve client: expected an event frame, got ",
                          frame.dump()));
    if (on_event) on_event(frame);
    if (is_terminal_event(frame.at("event").as_string())) return frame;
  }
}

}  // namespace poq::serve
