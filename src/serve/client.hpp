// Blocking client for the `poqsim serve` protocol.
//
// One connection, synchronous request/response: request() writes a frame
// and reads exactly one response frame; read_events() then consumes the
// streamed event frames of a watched job until a terminal event. The CLI
// (`poqsim client`), the serve tests, and the BENCH_serve suite all speak
// through this one class, so the wire format has a single client-side
// implementation to get right.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "serve/protocol.hpp"
#include "util/json.hpp"

namespace poq::serve {

class Client {
 public:
  explicit Client(std::string socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect, retrying while the daemon's socket comes up (covers the
  /// fork-then-connect startup race). Throws PreconditionError once the
  /// attempts are exhausted.
  void connect(int attempts = 100, int delay_ms = 20);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request frame and block for its response frame.
  [[nodiscard]] util::json::Value request(const util::json::Value& frame);

  /// Read event frames until a terminal one ("job_done", "job_failed",
  /// "job_cancelled"), invoking `on_event` (when set) for every frame
  /// including the terminal; returns the terminal frame.
  [[nodiscard]] util::json::Value read_events(
      const std::function<void(const util::json::Value&)>& on_event = {});

  /// Read exactly one frame (response or event) from the stream.
  [[nodiscard]] util::json::Value read_frame();

 private:
  void send_line(const std::string& line);

  std::string socket_path_;
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace poq::serve
