#include "serve/protocol.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::serve {

void FrameReader::feed(std::string_view bytes) {
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not accrete every frame it ever received.
  if (start_ > 0 && start_ >= buffer_.size() / 2) {
    buffer_.erase(0, start_);
    start_ = 0;
  }
  buffer_.append(bytes);
}

std::optional<std::string> FrameReader::next() {
  const std::size_t newline = buffer_.find('\n', start_);
  if (newline == std::string::npos) {
    require(pending() <= kMaxFrameBytes,
            util::str_cat("serve: frame exceeds ", kMaxFrameBytes,
                          " bytes without a newline"));
    return std::nullopt;
  }
  std::string frame = buffer_.substr(start_, newline - start_);
  start_ = newline + 1;
  require(frame.size() <= kMaxFrameBytes,
          util::str_cat("serve: frame of ", frame.size(), " bytes exceeds the ",
                        kMaxFrameBytes, "-byte limit"));
  // Tolerate CRLF-minded clients.
  if (!frame.empty() && frame.back() == '\r') frame.pop_back();
  return frame;
}

std::string op_name(Op op) {
  switch (op) {
    case Op::kSubmitRun: return "submit_run";
    case Op::kSubmitSweep: return "submit_sweep";
    case Op::kStatus: return "status";
    case Op::kWatch: return "watch";
    case Op::kCancel: return "cancel";
    case Op::kReset: return "reset";
    case Op::kShutdown: return "shutdown";
    case Op::kList: return "list";
  }
  return "?";
}

std::string job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

bool job_state_is_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

bool is_terminal_event(std::string_view event) {
  return event == "job_done" || event == "job_failed" ||
         event == "job_cancelled";
}

namespace {

using util::json::Value;

std::uint64_t parse_uint(const Value& value, const char* field) {
  require(value.is_number(), util::str_cat("serve: '", field,
                                           "' must be a number"));
  const double number = value.as_number();
  require(number >= 0 && number == static_cast<double>(
                                       static_cast<std::uint64_t>(number)),
          util::str_cat("serve: '", field,
                        "' must be a non-negative integer"));
  return static_cast<std::uint64_t>(number);
}

}  // namespace

Request parse_request(const std::string& frame) {
  const Value root = Value::parse(frame);
  require(root.is_object(), "serve: request frame must be a JSON object");
  require(root.contains("op"), "serve: request is missing 'op'");
  require(root.at("op").is_string(), "serve: 'op' must be a string");

  Request request;
  const std::string& op = root.at("op").as_string();
  if (op == "submit_run") request.op = Op::kSubmitRun;
  else if (op == "submit_sweep") request.op = Op::kSubmitSweep;
  else if (op == "status") request.op = Op::kStatus;
  else if (op == "watch") request.op = Op::kWatch;
  else if (op == "cancel") request.op = Op::kCancel;
  else if (op == "reset") request.op = Op::kReset;
  else if (op == "shutdown") request.op = Op::kShutdown;
  else if (op == "list") request.op = Op::kList;
  else {
    throw PreconditionError(util::str_cat(
        "serve: unknown op '", op,
        "' (valid: submit_run, submit_sweep, status, watch, cancel, reset, "
        "shutdown, list)"));
  }

  if (root.contains("id")) {
    require(root.at("id").is_string(), "serve: 'id' must be a string");
    request.id = root.at("id").as_string();
  }
  if (root.contains("watch")) {
    require(root.at("watch").is_bool(), "serve: 'watch' must be a bool");
    request.watch = root.at("watch").as_bool();
  }
  if (root.contains("job")) {
    request.job = parse_uint(root.at("job"), "job");
    request.has_job = true;
  }

  switch (request.op) {
    case Op::kSubmitRun:
      require(root.contains("spec"), "serve: submit_run needs a 'spec'");
      request.spec = scenario::ScenarioSpec::from_json(root.at("spec"));
      break;
    case Op::kSubmitSweep: {
      require(root.contains("grid"), "serve: submit_sweep needs a 'grid'");
      require(root.at("grid").is_array() && root.at("grid").size() > 0,
              "serve: 'grid' must be a non-empty array of specs");
      request.grid.reserve(root.at("grid").size());
      for (const Value& cell : root.at("grid").items()) {
        request.grid.push_back(scenario::ScenarioSpec::from_json(cell));
      }
      if (root.contains("seeds_per_cell")) {
        const std::uint64_t seeds =
            parse_uint(root.at("seeds_per_cell"), "seeds_per_cell");
        require(seeds >= 1 && seeds <= 100000,
                "serve: 'seeds_per_cell' must be in [1, 100000]");
        request.seeds_per_cell = static_cast<std::uint32_t>(seeds);
      }
      break;
    }
    case Op::kWatch:
    case Op::kCancel:
      require(request.has_job,
              util::str_cat("serve: ", op, " needs a 'job'"));
      break;
    case Op::kStatus:
    case Op::kReset:
    case Op::kShutdown:
    case Op::kList:
      break;
  }
  return request;
}

util::json::Value ok_response(const std::string& id) {
  Value out = Value::object();
  out.set("ok", true);
  if (!id.empty()) out.set("id", id);
  return out;
}

util::json::Value error_response(const std::string& id, const std::string& code,
                                 const std::string& error) {
  Value out = Value::object();
  out.set("ok", false);
  if (!id.empty()) out.set("id", id);
  out.set("code", code);
  out.set("error", error);
  return out;
}

util::json::Value event_frame(const std::string& event, std::uint64_t job) {
  Value out = Value::object();
  out.set("event", event);
  out.set("job", job);
  return out;
}

std::string encode_frame(const util::json::Value& value) {
  std::string line = value.dump();
  line.push_back('\n');
  return line;
}

}  // namespace poq::serve
