// Wire protocol for `poqsim serve`: newline-delimited JSON over a local
// AF_UNIX stream socket.
//
// Every frame is one JSON object on one line, terminated by '\n'. Clients
// send request frames ({"op": ..., ...}); the server answers each request
// with exactly one response frame ({"ok": true, ...} or {"ok": false,
// "code": ..., "error": ...}) and, for watched jobs, follows with event
// frames ({"event": ..., "job": ...}) until the job reaches a terminal
// state. The response/event split keeps the client side trivial: read a
// line, parse it, look at one discriminating key.
//
// This layer is pure data — framing, request parsing/validation, and
// response/event builders — with no sockets or threads, so the protocol
// tests exercise every malformed-input path without a running server.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/metrics.hpp"
#include "scenario/spec.hpp"
#include "util/json.hpp"

namespace poq::serve {

/// Upper bound on one frame, request or response, in bytes (excluding the
/// terminating newline). The guard runs while a partial line is still
/// buffering, so a client streaming garbage without a newline is rejected
/// after 1 MiB instead of growing the buffer without bound.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 20;

/// Incremental splitter of a byte stream into newline-terminated frames.
/// feed() appends raw bytes as they arrive from the socket; next() yields
/// complete frames (without the '\n') in order, or nullopt when the
/// buffered tail is still partial. A partial line exceeding kMaxFrameBytes
/// throws PreconditionError — the connection is beyond recovery at that
/// point, since frame boundaries are lost.
class FrameReader {
 public:
  void feed(std::string_view bytes);
  [[nodiscard]] std::optional<std::string> next();
  /// Bytes buffered but not yet returned (a truncated trailing frame).
  [[nodiscard]] std::size_t pending() const { return buffer_.size() - start_; }

 private:
  std::string buffer_;
  std::size_t start_ = 0;  // consumed prefix, compacted lazily
};

enum class Op {
  kSubmitRun,    // run one ScenarioSpec as a job
  kSubmitSweep,  // run a grid of specs as one sweep job
  kStatus,       // snapshot one job or the whole table
  kWatch,        // stream a job's events until it is terminal
  kCancel,       // request cooperative cancellation of a job
  kReset,        // cancel everything and clear the job table
  kShutdown,     // stop the daemon
  kList,         // protocol/knob registry listing
};

[[nodiscard]] std::string op_name(Op op);

/// A parsed, validated client request. Parsing throws PreconditionError
/// on anything malformed — unknown op, missing/mistyped fields, specs that
/// fail ScenarioSpec::from_json — with the json parser's located messages
/// passed through verbatim so remote clients see line/column context.
struct Request {
  Op op = Op::kStatus;
  /// Client-chosen correlation id, echoed in the response ("" when unset).
  std::string id;
  /// submit_run: the scenario to run.
  scenario::ScenarioSpec spec;
  /// submit_sweep: the grid cells and replications per cell.
  std::vector<scenario::ScenarioSpec> grid;
  std::uint32_t seeds_per_cell = 1;
  /// status/watch/cancel: the target job. has_job distinguishes
  /// {"op":"status"} (whole table) from {"op":"status","job":N}.
  std::uint64_t job = 0;
  bool has_job = false;
  /// submit_*: stream this job's events on the submitting connection
  /// right after the response frame.
  bool watch = false;
};

[[nodiscard]] Request parse_request(const std::string& frame);

/// Lifecycle of a job in the server's table. Terminal states are kDone,
/// kFailed and kCancelled; watch streams end on the first terminal event.
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

[[nodiscard]] std::string job_state_name(JobState state);
[[nodiscard]] bool job_state_is_terminal(JobState state);

/// True for the event names that end a watch stream: "job_done",
/// "job_failed", "job_cancelled".
[[nodiscard]] bool is_terminal_event(std::string_view event);

// --- response / event builders (server side) -----------------------------

/// {"ok": true, "id": <id if non-empty>, ...extra members appended by the
/// caller on the returned object}.
[[nodiscard]] util::json::Value ok_response(const std::string& id);

/// {"ok": false, "id": ..., "code": ..., "error": ...}. Codes the server
/// uses: "bad_request" (unparseable/invalid frame), "queue_full"
/// (admission control rejected the submit), "unknown_job", and
/// "shutting_down".
[[nodiscard]] util::json::Value error_response(const std::string& id,
                                               const std::string& code,
                                               const std::string& error);

/// {"event": <name>, "job": N}; callers append event-specific members.
/// Event names: "job_queued", "job_started", "task_done" (one sweep
/// (cell, rep) finished, carrying its phase timings), "job_done",
/// "job_failed", "job_cancelled".
[[nodiscard]] util::json::Value event_frame(const std::string& event,
                                            std::uint64_t job);

/// Serialize a frame for the wire: compact dump plus the '\n' terminator.
[[nodiscard]] std::string encode_frame(const util::json::Value& value);

}  // namespace poq::serve
