#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "scenario/protocol.hpp"
#include "scenario/sweep.hpp"
#include "serve/protocol.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::serve {

namespace {

using util::json::Value;

/// One submitted job. Events are stored pre-encoded (frame + '\n') so a
/// watcher replays them with plain writes; the log is append-only, which
/// lets late watchers start from index 0 and still see the full history.
struct Job {
  std::uint64_t id = 0;
  bool is_sweep = false;
  scenario::ScenarioSpec spec;               // run jobs
  std::vector<scenario::ScenarioSpec> grid;  // sweep jobs
  std::uint32_t seeds_per_cell = 1;
  JobState state = JobState::kQueued;
  util::CancelToken cancel;
  /// Wall-clock deadline, armed when a worker dequeues the job (only when
  /// ServerOptions::job_timeout > 0). The reaper cancels the job past it.
  bool has_deadline = false;
  bool timed_out = false;
  std::chrono::steady_clock::time_point deadline;
  std::vector<std::string> events;
  Value result;  // null until done (or cancelled with partial cells)
  std::string error;
};

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions options) : options(std::move(options)) {}

  ServerOptions options;
  int listen_fd = -1;
  bool started = false;
  std::atomic<bool> stopping{false};

  // One mutex + one condvar guard everything below; waiters (workers,
  // watchers, wait()) share the condvar and re-check their predicates.
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs;
  std::deque<std::uint64_t> queue;
  std::uint64_t next_job_id = 1;
  bool shutdown_requested = false;
  std::vector<int> conn_fds;

  std::thread listener;
  std::thread reaper;
  std::vector<std::thread> workers;
  std::vector<std::thread> connections;

  // --- socket helpers -----------------------------------------------------

  static bool write_all(int fd, const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      // MSG_NOSIGNAL: a vanished peer must surface as an error on this
      // thread, not SIGPIPE the whole process.
      const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  // --- job lifecycle ------------------------------------------------------

  void append_event_locked(Job& job, const Value& event) {
    job.events.push_back(encode_frame(event));
    cv.notify_all();
  }

  void finish_job(Job& job, JobState state, Value result, std::string error) {
    const std::lock_guard<std::mutex> lock(mu);
    job.state = state;
    job.result = std::move(result);
    job.error = std::move(error);
    Value event = event_frame(state == JobState::kDone     ? "job_done"
                              : state == JobState::kFailed ? "job_failed"
                                                           : "job_cancelled",
                              job.id);
    // A cancelled sweep still carries its completed cells — they are
    // bit-identical to a batch run and too expensive to throw away.
    if (!job.result.is_null()) event.set("result", job.result);
    if (!job.error.empty()) event.set("error", job.error);
    append_event_locked(job, event);
  }

  void run_job(Job& job) {
    try {
      const util::ScopedCancel install(&job.cancel);
      util::this_thread_check_cancelled();  // cancelled while being dequeued
      if (!job.is_sweep) {
        const scenario::RunMetrics metrics =
            scenario::registry().run(job.spec.protocol, job.spec);
        Value result = Value::object();
        result.set("metrics", metrics.to_json());
        finish_job(job, JobState::kDone, std::move(result), "");
        return;
      }
      scenario::SweepOptions sweep_options;
      sweep_options.seeds_per_cell = job.seeds_per_cell;
      sweep_options.threads = options.sweep_threads;
      sweep_options.intra_run_threads = options.intra_run_threads;
      const scenario::SweepRunner runner(sweep_options);
      const auto observe = [&](const scenario::SweepEvent& task) {
        Value event = event_frame("task_done", job.id);
        event.set("cell", static_cast<std::uint64_t>(task.cell));
        event.set("rep", static_cast<std::uint64_t>(task.rep));
        event.set("wall_ms", task.wall_ms);
        if (task.metrics == nullptr) {
          event.set("cancelled", true);
        } else if (!task.metrics->timings().empty()) {
          // The per-task progress events carry the phase-kernel timings so
          // a live dashboard sees where each run's wall-clock went.
          Value timings = Value::object();
          for (const auto& [name, ms] : task.metrics->timings()) {
            timings.set(name, ms);
          }
          event.set("timings", std::move(timings));
        }
        const std::lock_guard<std::mutex> lock(mu);
        append_event_locked(job, event);
      };
      const scenario::SweepReport report =
          runner.run_controlled(job.grid, &job.cancel, observe);
      Value result = Value::object();
      Value cells = Value::array();
      for (const scenario::CellAggregate& cell : report.cells) {
        cells.push_back(cell.to_json());
      }
      result.set("cells", std::move(cells));
      Value indices = Value::array();
      for (const std::size_t index : report.cell_indices) {
        indices.push_back(static_cast<std::uint64_t>(index));
      }
      result.set("cell_indices", std::move(indices));
      result.set("cancelled_cells",
                 static_cast<std::uint64_t>(report.cancelled_cells));
      result.set("cancelled", report.cancelled);
      finish_job(job, report.cancelled ? JobState::kCancelled : JobState::kDone,
                 std::move(result), "");
    } catch (const util::OperationCancelled&) {
      // Same unwind for a client cancel and a deadline kill; the reaper's
      // timed_out mark (written under mu) tells them apart.
      bool timed_out = false;
      {
        const std::lock_guard<std::mutex> lock(mu);
        timed_out = job.timed_out;
      }
      if (timed_out) {
        finish_job(job, JobState::kFailed, Value(), "timeout");
      } else {
        finish_job(job, JobState::kCancelled, Value(), "");
      }
    } catch (const std::exception& error) {
      finish_job(job, JobState::kFailed, Value(), error.what());
    }
  }

  /// Deadline reaper: wakes every 100 ms (or on any state change) and
  /// cancels running jobs past their deadline. Cancellation latency is
  /// therefore bounded by one poll interval plus one core round/slice.
  void reaper_loop() {
    std::unique_lock<std::mutex> lock(mu);
    while (!stopping.load()) {
      const auto now = std::chrono::steady_clock::now();
      for (auto& [id, job] : jobs) {
        if (job->state == JobState::kRunning && job->has_deadline &&
            !job->timed_out && now >= job->deadline) {
          job->timed_out = true;
          job->cancel.request();
        }
      }
      cv.wait_for(lock, std::chrono::milliseconds(100));
    }
  }

  void worker_loop() {
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stopping.load() || !queue.empty(); });
        if (stopping.load()) return;
        const std::uint64_t id = queue.front();
        queue.pop_front();
        job = jobs.at(id).get();
        // Dequeue and state change are one atomic step: a job is never
        // "queued" without being in the queue (cancel relies on that).
        job->state = JobState::kRunning;
        if (options.job_timeout > 0.0) {
          job->has_deadline = true;
          job->deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(
                                  options.job_timeout));
        }
        append_event_locked(*job, event_frame("job_started", id));
      }
      run_job(*job);
    }
  }

  // --- request handlers (connection threads) ------------------------------

  static Value job_to_json(const Job& job, bool detail) {
    Value out = Value::object();
    out.set("job", job.id);
    out.set("kind", job.is_sweep ? "sweep" : "run");
    out.set("state", job_state_name(job.state));
    if (detail) {
      out.set("events", static_cast<std::uint64_t>(job.events.size()));
      if (!job.error.empty()) out.set("error", job.error);
      if (!job.result.is_null()) out.set("result", job.result);
    }
    return out;
  }

  bool handle_submit(int fd, const Request& request) {
    // Validate against the registry at the protocol boundary so a bad
    // spec fails the submit synchronously instead of inside a worker.
    try {
      const auto check = [](const scenario::ScenarioSpec& spec) {
        const scenario::Protocol& protocol =
            scenario::registry().find(spec.protocol);
        scenario::validate_frame(spec);
        scenario::registry().validate_knobs(protocol, spec);
      };
      if (request.op == Op::kSubmitRun) {
        check(request.spec);
      } else {
        for (const scenario::ScenarioSpec& spec : request.grid) check(spec);
      }
    } catch (const std::exception& error) {
      return write_all(fd, encode_frame(error_response(
                               request.id, "bad_request", error.what())));
    }

    std::uint64_t id = 0;
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (shutdown_requested || stopping.load()) {
        return write_all(
            fd, encode_frame(error_response(request.id, "shutting_down",
                                            "server is shutting down")));
      }
      if (queue.size() >= options.queue_depth) {
        return write_all(
            fd, encode_frame(error_response(
                    request.id, "queue_full",
                    util::str_cat("job queue is full (depth ",
                                  options.queue_depth, "); retry later"))));
      }
      id = next_job_id++;
      auto job = std::make_unique<Job>();
      job->id = id;
      job->is_sweep = request.op == Op::kSubmitSweep;
      job->spec = request.spec;
      job->grid = request.grid;
      job->seeds_per_cell = request.seeds_per_cell;
      job->events.push_back(encode_frame(event_frame("job_queued", id)));
      jobs.emplace(id, std::move(job));
      queue.push_back(id);
      cv.notify_all();
    }
    Value reply = ok_response(request.id);
    reply.set("job", id);
    reply.set("state", job_state_name(JobState::kQueued));
    if (!write_all(fd, encode_frame(reply))) return false;
    if (request.watch) return stream_job_events(fd, id);
    return true;
  }

  bool stream_job_events(int fd, std::uint64_t id) {
    std::size_t index = 0;
    for (;;) {
      std::vector<std::string> batch;
      bool vanished = false;
      bool finished = false;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] {
          if (stopping.load()) return true;
          const auto it = jobs.find(id);
          if (it == jobs.end()) return true;
          return index < it->second->events.size() ||
                 job_state_is_terminal(it->second->state);
        });
        const auto it = jobs.find(id);
        if (it == jobs.end()) {
          vanished = true;  // a reset cleared the table mid-watch
        } else {
          Job& job = *it->second;
          while (index < job.events.size()) batch.push_back(job.events[index++]);
          finished = job_state_is_terminal(job.state) &&
                     index == job.events.size();
        }
        if (stopping.load()) finished = true;
      }
      for (const std::string& line : batch) {
        if (!write_all(fd, line)) return false;
      }
      if (vanished) {
        // Close the stream with a terminal frame so the client's
        // read-until-terminal loop cannot hang.
        return write_all(fd, encode_frame(event_frame("job_cancelled", id)));
      }
      if (finished) return true;
    }
  }

  bool handle_status(int fd, const Request& request) {
    const std::lock_guard<std::mutex> lock(mu);
    Value reply = ok_response(request.id);
    if (request.has_job) {
      const auto it = jobs.find(request.job);
      if (it == jobs.end()) {
        return write_all(
            fd, encode_frame(error_response(
                    request.id, "unknown_job",
                    util::str_cat("no job ", request.job, " in the table"))));
      }
      reply.set("status", job_to_json(*it->second, /*detail=*/true));
    } else {
      Value table = Value::array();
      for (const auto& [id, job] : jobs) {
        table.push_back(job_to_json(*job, /*detail=*/false));
      }
      reply.set("jobs", std::move(table));
      reply.set("queued", static_cast<std::uint64_t>(queue.size()));
    }
    return write_all(fd, encode_frame(reply));
  }

  bool handle_watch(int fd, const Request& request) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      const auto it = jobs.find(request.job);
      if (it == jobs.end()) {
        return write_all(
            fd, encode_frame(error_response(
                    request.id, "unknown_job",
                    util::str_cat("no job ", request.job, " in the table"))));
      }
      // The response is written before any event frame: conn writes all
      // happen on this thread, so ordering is by construction.
    }
    Value reply = ok_response(request.id);
    reply.set("job", request.job);
    if (!write_all(fd, encode_frame(reply))) return false;
    return stream_job_events(fd, request.job);
  }

  bool handle_cancel(int fd, const Request& request) {
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = jobs.find(request.job);
    if (it == jobs.end()) {
      return write_all(
          fd, encode_frame(error_response(
                  request.id, "unknown_job",
                  util::str_cat("no job ", request.job, " in the table"))));
    }
    Job& job = *it->second;
    if (!job_state_is_terminal(job.state)) {
      job.cancel.request();
      if (job.state == JobState::kQueued) {
        // Never ran: cancel it right here instead of waking a worker just
        // to observe the token.
        for (auto queued = queue.begin(); queued != queue.end(); ++queued) {
          if (*queued == job.id) {
            queue.erase(queued);
            break;
          }
        }
        job.state = JobState::kCancelled;
        append_event_locked(job, event_frame("job_cancelled", job.id));
      }
    }
    Value reply = ok_response(request.id);
    reply.set("job", job.id);
    reply.set("state", job_state_name(job.state));
    return write_all(fd, encode_frame(reply));
  }

  bool handle_reset(int fd, const Request& request) {
    const std::lock_guard<std::mutex> lock(mu);
    std::uint64_t cancelled = 0;
    std::uint64_t cleared = 0;
    queue.clear();
    for (auto it = jobs.begin(); it != jobs.end();) {
      Job& job = *it->second;
      if (job.state == JobState::kQueued) {
        job.cancel.request();
        job.state = JobState::kCancelled;
        append_event_locked(job, event_frame("job_cancelled", job.id));
        ++cancelled;
        ++it;
      } else if (job.state == JobState::kRunning) {
        // A worker still references this Job; ask it to stop and let it
        // reach a terminal state on its own.
        job.cancel.request();
        ++cancelled;
        ++it;
      } else {
        it = jobs.erase(it);
        ++cleared;
      }
    }
    cv.notify_all();
    Value reply = ok_response(request.id);
    reply.set("cancelled", cancelled);
    reply.set("cleared", cleared);
    return write_all(fd, encode_frame(reply));
  }

  bool handle_shutdown(int fd, const Request& request) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      shutdown_requested = true;
      for (auto& [id, job] : jobs) job->cancel.request();
      cv.notify_all();
    }
    Value reply = ok_response(request.id);
    reply.set("shutdown", true);
    return write_all(fd, encode_frame(reply));
  }

  bool handle_frame(int fd, const std::string& frame) {
    Request request;
    try {
      request = parse_request(frame);
    } catch (const std::exception& error) {
      return write_all(
          fd, encode_frame(error_response("", "bad_request", error.what())));
    }
    switch (request.op) {
      case Op::kSubmitRun:
      case Op::kSubmitSweep: return handle_submit(fd, request);
      case Op::kStatus: return handle_status(fd, request);
      case Op::kWatch: return handle_watch(fd, request);
      case Op::kCancel: return handle_cancel(fd, request);
      case Op::kReset: return handle_reset(fd, request);
      case Op::kShutdown: return handle_shutdown(fd, request);
      case Op::kList: {
        Value reply = ok_response(request.id);
        reply.set("registry", scenario::registry_to_json(scenario::registry()));
        return write_all(fd, encode_frame(reply));
      }
    }
    return true;
  }

  void connection_loop(int fd) {
    FrameReader reader;
    char buffer[4096];
    while (!stopping.load()) {
      std::optional<std::string> frame;
      try {
        frame = reader.next();
      } catch (const std::exception& error) {
        // Oversized partial frame: framing is lost, so answer and drop
        // the connection rather than resynchronize on garbage.
        write_all(fd,
                  encode_frame(error_response("", "bad_request", error.what())));
        break;
      }
      if (frame.has_value()) {
        if (!handle_frame(fd, *frame)) break;
        continue;
      }
      const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
      if (n <= 0) break;
      reader.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    }
    ::close(fd);
    const std::lock_guard<std::mutex> lock(mu);
    for (auto it = conn_fds.begin(); it != conn_fds.end(); ++it) {
      if (*it == fd) {
        conn_fds.erase(it);
        break;
      }
    }
  }

  void listen_loop() {
    while (!stopping.load()) {
      pollfd poll_fd{};
      poll_fd.fd = listen_fd;
      poll_fd.events = POLLIN;
      // The timeout bounds how long stop() waits for the listener to
      // notice the stopping flag.
      const int ready = ::poll(&poll_fd, 1, 200);
      if (ready <= 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      const std::lock_guard<std::mutex> lock(mu);
      if (stopping.load()) {
        ::close(fd);
        return;
      }
      conn_fds.push_back(fd);
      connections.emplace_back([this, fd] { connection_loop(fd); });
    }
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { stop(); }

const std::string& Server::socket_path() const {
  return impl_->options.socket_path;
}

void Server::start() {
  Impl& impl = *impl_;
  require(!impl.started, "serve: server already started");
  require(!impl.options.socket_path.empty(), "serve: socket path is empty");
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  require(impl.options.socket_path.size() < sizeof(address.sun_path),
          util::str_cat("serve: socket path '", impl.options.socket_path,
                        "' exceeds the AF_UNIX limit of ",
                        sizeof(address.sun_path) - 1, " bytes"));
  std::memcpy(address.sun_path, impl.options.socket_path.c_str(),
              impl.options.socket_path.size() + 1);
  impl.listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(impl.listen_fd >= 0,
          util::str_cat("serve: socket() failed: ", std::strerror(errno)));
  ::unlink(impl.options.socket_path.c_str());  // replace a stale socket file
  if (::bind(impl.listen_fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
    throw PreconditionError(util::str_cat("serve: bind('",
                                          impl.options.socket_path,
                                          "') failed: ", reason));
  }
  if (::listen(impl.listen_fd, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
    throw PreconditionError(util::str_cat("serve: listen failed: ", reason));
  }
  const unsigned workers = impl.options.workers == 0 ? 1 : impl.options.workers;
  impl.workers.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    impl.workers.emplace_back([&impl] { impl.worker_loop(); });
  }
  impl.listener = std::thread([&impl] { impl.listen_loop(); });
  if (impl.options.job_timeout > 0.0) {
    impl.reaper = std::thread([&impl] { impl.reaper_loop(); });
  }
  impl.started = true;
}

void Server::wait() {
  Impl& impl = *impl_;
  std::unique_lock<std::mutex> lock(impl.mu);
  impl.cv.wait(lock, [&] {
    return impl.shutdown_requested || impl.stopping.load();
  });
}

void Server::stop() {
  Impl& impl = *impl_;
  if (!impl.started) return;
  impl.stopping.store(true);
  {
    const std::lock_guard<std::mutex> lock(impl.mu);
    impl.shutdown_requested = true;
    for (auto& [id, job] : impl.jobs) job->cancel.request();
    impl.cv.notify_all();
  }
  if (impl.listener.joinable()) impl.listener.join();
  if (impl.reaper.joinable()) impl.reaper.join();
  {
    // Unblock connection threads stuck in recv()/send().
    const std::lock_guard<std::mutex> lock(impl.mu);
    for (const int fd : impl.conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& connection : impl.connections) {
    if (connection.joinable()) connection.join();
  }
  for (std::thread& worker : impl.workers) {
    if (worker.joinable()) worker.join();
  }
  impl.connections.clear();
  impl.workers.clear();
  if (impl.listen_fd >= 0) {
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
  }
  ::unlink(impl.options.socket_path.c_str());
  impl.started = false;
}

}  // namespace poq::serve
