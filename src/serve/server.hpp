// The `poqsim serve` daemon: a long-running process owning warm scenario
// machinery, accepting jobs over a local AF_UNIX socket speaking the
// newline-delimited JSON protocol of serve/protocol.hpp.
//
// Why a daemon at all: launching a fresh poqsim process per run pays
// process startup, registry construction and (for sweeps) thread-pool
// spin-up on every request. A warm server amortizes all of that — the
// BENCH_serve suite measures the gap — and adds the operational pieces a
// batch CLI cannot offer: a bounded job queue with admission control,
// cooperative cancellation of in-flight sweeps, and live per-task progress
// streaming.
//
// Threading model (one mutex, one condvar, no lock ordering to get wrong):
//  - a listener thread accepts connections and spawns one reader thread
//    per connection; every byte written to a connection is written by that
//    connection's own thread, never by workers;
//  - `workers` job-runner threads pull job ids off a FIFO queue bounded by
//    `queue_depth` (a full queue rejects submits with code "queue_full");
//  - jobs append encoded event frames to their per-job log under the
//    mutex; watcher connections replay the log from index 0 and block on
//    the condvar for more, so late watchers see the full history;
//  - cancellation: each job owns a util::CancelToken; the runner installs
//    it via util::ScopedCancel, so the core per-round checks abort the run
//    at the next round/slice/epoch boundary. Completed sweep cells stay
//    bit-identical to a batch run; cancelled cells are excluded whole.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace poq::serve {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX socket; created on start (replacing a
  /// stale file), unlinked on stop.
  std::string socket_path;
  /// Concurrent job-runner threads (max jobs in flight).
  unsigned workers = 1;
  /// Max jobs waiting in the queue (excluding running ones); submits
  /// beyond this are rejected with code "queue_full".
  std::size_t queue_depth = 8;
  /// SweepOptions::threads for sweep jobs (0 = auto from hardware).
  unsigned sweep_threads = 1;
  /// SweepOptions::intra_run_threads for sweep jobs.
  unsigned intra_run_threads = 1;
  /// Per-job wall-clock budget in seconds (0 = no deadline). A job still
  /// running this long after it was dequeued is cancelled through its
  /// CancelToken and fails with error "timeout" — distinguishing the
  /// deadline from a client cancel, which stays a clean job_cancelled.
  double job_timeout = 0.0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // stop()s if still running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and spawn listener + workers. Throws
  /// PreconditionError when the path is unusable (too long for
  /// sockaddr_un, bind failure).
  void start();

  /// Block until a client's shutdown op (or stop()) is observed.
  void wait();

  /// Cancel all jobs, drain threads, close connections, unlink the
  /// socket. Idempotent; also invoked by the destructor.
  void stop();

  [[nodiscard]] const std::string& socket_path() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace poq::serve
