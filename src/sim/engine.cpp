#include "sim/engine.hpp"

#include <memory>

#include "util/cancel.hpp"
#include "util/error.hpp"

namespace poq::sim {

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

EventId Engine::at(SimTime time, std::function<void()> action) {
  require(time >= now_, "Engine::at: cannot schedule in the past");
  return queue_.schedule(time, std::move(action));
}

EventId Engine::after(SimTime delay, std::function<void()> action) {
  require(delay >= 0.0, "Engine::after: negative delay");
  return queue_.schedule(now_ + delay, std::move(action));
}

void Engine::every(SimTime period, std::function<bool()> action) {
  require(period > 0.0, "Engine::every: period must be positive");
  // Self-rescheduling closure, owned by `recurring_` (see engine.hpp).
  auto step = std::make_shared<std::function<void()>>();
  std::function<void()>* raw = step.get();
  recurring_.push_back(std::move(step));
  *raw = [this, period, action = std::move(action), raw]() {
    if (action()) after(period, *raw);
  };
  after(period, *raw);
}

void Engine::poisson_process(double rate, std::function<bool()> action) {
  require(rate > 0.0, "Engine::poisson_process: rate must be positive");
  auto stream = std::make_shared<util::Rng>(rng_.fork(0xB0550000 + poisson_streams_++));
  auto step = std::make_shared<std::function<void()>>();
  std::function<void()>* raw = step.get();
  recurring_.push_back(std::move(step));
  *raw = [this, rate, stream, action = std::move(action), raw]() {
    if (action()) after(stream->exponential(rate), *raw);
  };
  after(stream->exponential(rate), *raw);
}

std::uint64_t Engine::run(SimTime until, std::uint64_t max_events) {
  std::uint64_t executed = 0;
  stopping_ = false;
  while (executed < max_events && !stopping_) {
    util::this_thread_check_cancelled();
    const auto next_time = queue_.peek_time();
    if (!next_time) return executed;  // drained; clock stays at last event
    if (*next_time > until) {
      // Advance the clock to `until` so repeated run(t1), run(t2) calls
      // behave like one continuous run.
      now_ = until;
      return executed;
    }
    auto event = queue_.pop();
    ensure(event.has_value(), "Engine::run: queue raced");
    ensure(event->time >= now_, "Engine::run: time went backwards");
    now_ = event->time;
    event->action();
    ++executed;
  }
  return executed;  // stopped early (max_events or stop()); clock unchanged
}

}  // namespace poq::sim
