// Discrete-event simulation engine.
//
// Drives an EventQueue with a monotone clock, periodic processes, and
// stop conditions. The fidelity-aware simulations (decoherence timers,
// Poisson generation, classical-latency delivery) run on this engine; the
// paper's round-based evaluation (§5) uses the simpler lockstep driver in
// core/balancing_sim, which needs no event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace poq::sim {

/// Single-threaded deterministic event loop.
class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }
  [[nodiscard]] EventQueue& queue() { return queue_; }

  /// Schedule at absolute time (must be >= now).
  EventId at(SimTime time, std::function<void()> action);

  /// Schedule after a delay (must be >= 0).
  EventId after(SimTime delay, std::function<void()> action);

  /// Recurring process with a fixed period, first firing after one period.
  /// The process stops when `action` returns false.
  void every(SimTime period, std::function<bool()> action);

  /// Poisson process: exponential gaps at `rate`; stops when action
  /// returns false. Draws from a forked stream so other randomness is
  /// unaffected by how long the process runs.
  void poisson_process(double rate, std::function<bool()> action);

  /// Run until the queue drains, `until` is reached, or `max_events` have
  /// executed. Returns the number of events executed.
  std::uint64_t run(SimTime until = kForever, std::uint64_t max_events = UINT64_MAX);

  /// Request an early stop from inside an event handler.
  void stop() { stopping_ = true; }

  static constexpr SimTime kForever = 1e300;

 private:
  SimTime now_ = 0.0;
  bool stopping_ = false;
  EventQueue queue_;
  util::Rng rng_;
  std::uint64_t poisson_streams_ = 0;
  /// Canonical closures of the recurring processes (every/poisson). The
  /// engine owns them; the closures reschedule through a raw pointer into
  /// this storage. A closure that captured its own shared_ptr would be a
  /// reference cycle and leak one closure per recurring process.
  std::vector<std::shared_ptr<std::function<void()>>> recurring_;
};

}  // namespace poq::sim
