#include "sim/event_queue.hpp"

#include "util/error.hpp"

namespace poq::sim {

EventId EventQueue::schedule(SimTime time, std::function<void()> action) {
  require(static_cast<bool>(action), "EventQueue::schedule: empty action");
  const EventId id = next_id_++;
  cancelled_.push_back(false);
  heap_.push(Event{time, id, std::move(action)});
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id >= cancelled_.size() || cancelled_[id]) return false;
  cancelled_[id] = true;
  if (live_count_ > 0) --live_count_;
  return true;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && cancelled_[heap_.top().id]) heap_.pop();
}

std::optional<SimTime> EventQueue::peek_time() const {
  // const_cast-free lazy skip: we cannot mutate here, so scan via copy of
  // top; cancelled tops are rare and popped by the next pop() call.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().time;
}

std::optional<Event> EventQueue::pop() {
  drop_cancelled();
  if (heap_.empty()) return std::nullopt;
  // priority_queue::top() is const; move via const_cast is safe after pop
  // pattern, but keep it simple and copy the small struct + move handler.
  Event event = heap_.top();
  heap_.pop();
  cancelled_[event.id] = true;  // mark consumed so cancel() reports false
  if (live_count_ > 0) --live_count_;
  return event;
}

}  // namespace poq::sim
