// Time-ordered event queue with stable FIFO tie-breaking.
//
// Determinism matters more than raw speed here: two events at the same
// timestamp must always execute in schedule order, or simulation results
// would depend on heap internals and seeds would not reproduce.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

namespace poq::sim {

using SimTime = double;
using EventId = std::uint64_t;

/// A scheduled callback.
struct Event {
  SimTime time = 0.0;
  EventId id = 0;  // schedule order; also used to cancel
  std::function<void()> action;
};

/// Min-heap of events ordered by (time, schedule order). Supports lazy
/// cancellation.
class EventQueue {
 public:
  /// Schedule `action` at absolute time `time`; returns a cancellation id.
  EventId schedule(SimTime time, std::function<void()> action);

  /// Cancel a pending event; returns false if it already ran/was cancelled.
  bool cancel(EventId id);

  /// Time of the next pending event.
  [[nodiscard]] std::optional<SimTime> peek_time() const;

  /// Pop and return the next event (skipping cancelled ones).
  [[nodiscard]] std::optional<Event> pop();

  [[nodiscard]] std::size_t pending() const { return live_count_; }
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

 private:
  struct Ordering {
    bool operator()(const Event& lhs, const Event& rhs) const {
      if (lhs.time != rhs.time) return lhs.time > rhs.time;
      return lhs.id > rhs.id;
    }
  };

  void drop_cancelled();

  std::priority_queue<Event, std::vector<Event>, Ordering> heap_;
  std::vector<bool> cancelled_;  // indexed by EventId
  EventId next_id_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace poq::sim
