#include "sim/fault_plan.hpp"

#include <algorithm>
#include <numeric>

#include "sim/parallel_engine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace poq::sim {

FaultPlan::FaultPlan(const graph::Graph& graph, const FaultConfig& config,
                     std::uint64_t seed)
    : graph_(graph), config_(config), seed_(seed) {
  require(config.node_mtbf >= 0.0, "FaultConfig: node mtbf must be >= 0");
  require(config.link_mtbf >= 0.0, "FaultConfig: link mtbf must be >= 0");
  require(config.node_mtbf == 0.0 || config.node_mttr >= 1.0,
          "FaultConfig: node mttr must be >= 1 round");
  require(config.link_mtbf == 0.0 || config.link_mttr >= 1.0,
          "FaultConfig: link mttr must be >= 1 round");
  require(config.rate_degradation >= 0.0 && config.rate_degradation < 1.0,
          "FaultConfig: rate degradation must be in [0, 1)");

  const std::size_t n = graph.node_count();
  node_up_.assign(n, 1);
  link_up_.assign(graph.edge_count(), 1);
  edge_available_.assign(graph.edge_count(), 1);
  if (config_.node_mtbf > 0.0) {
    fail_flags_.resize(std::max(fail_flags_.size(), n));
    recover_flags_.resize(std::max(recover_flags_.size(), n));
  }
  if (config_.link_mtbf > 0.0) {
    fail_flags_.resize(std::max(fail_flags_.size(), graph.edge_count()));
    recover_flags_.resize(std::max(recover_flags_.size(), graph.edge_count()));
  }
  crashed_.reserve(n);

  // Validate + resolve the script once; advance() then only walks the
  // cursor. Same-round events must keep list order, so sort an index
  // permutation on (round, position) — a total order, in place, no
  // stable_sort temporary buffer.
  std::vector<std::size_t> order(config_.script.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    if (config_.script[i].round != config_.script[j].round) {
      return config_.script[i].round < config_.script[j].round;
    }
    return i < j;
  });
  script_.clear();
  script_.reserve(order.size());
  for (const std::size_t i : order) script_.push_back(config_.script[i]);
  script_edges_.assign(script_.size(), 0);
  for (std::size_t i = 0; i < script_.size(); ++i) {
    const FaultEvent& event = script_[i];
    switch (event.kind) {
      case FaultEventKind::kNodeDown:
      case FaultEventKind::kNodeUp:
        require(event.node < n, util::str_cat("fault script: node ",
                                              event.node, " does not exist"));
        break;
      case FaultEventKind::kLinkDown:
      case FaultEventKind::kLinkUp: {
        const auto index = graph.edge_index(event.a, event.b);
        if (!index.has_value()) {
          throw PreconditionError(util::str_cat(
              "fault script: no generation edge between nodes ", event.a,
              " and ", event.b));
        }
        script_edges_[i] = *index;
        break;
      }
      case FaultEventKind::kRateFactor:
        require(event.factor >= 0.0 && event.factor <= 1.0,
                "fault script: rate factor must be in [0, 1]");
        break;
    }
  }
}

void FaultPlan::set_node(core::NodeId x, bool up) {
  if ((node_up_[x] != 0) == up) return;
  node_up_[x] = up ? 1 : 0;
  if (up) {
    --nodes_down_;
  } else {
    ++nodes_down_;
    ++stats_.node_crashes;
    crashed_.push_back(x);
  }
}

void FaultPlan::set_link(std::size_t edge, bool up) {
  if ((link_up_[edge] != 0) == up) return;
  link_up_[edge] = up ? 1 : 0;
  if (up) {
    --links_down_;
  } else {
    ++links_down_;
    ++stats_.link_downs;
  }
}

void FaultPlan::apply_event(const FaultEvent& event, std::size_t edge_index) {
  switch (event.kind) {
    case FaultEventKind::kNodeDown: set_node(event.node, false); break;
    case FaultEventKind::kNodeUp: set_node(event.node, true); break;
    case FaultEventKind::kLinkDown: set_link(edge_index, false); break;
    case FaultEventKind::kLinkUp: set_link(edge_index, true); break;
    case FaultEventKind::kRateFactor:
      scripted_rate_factor_ = event.factor;
      break;
  }
}

void FaultPlan::refresh_edges() {
  // O(edges) once per round; only paid while faults are enabled.
  edges_down_ = 0;
  const auto& edges = graph_.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const bool up = link_up_[e] != 0 && node_up_[edges[e].a()] != 0 &&
                    node_up_[edges[e].b()] != 0;
    edge_available_[e] = up ? 1 : 0;
    if (!up) ++edges_down_;
  }
}

const std::vector<core::NodeId>& FaultPlan::advance(std::uint64_t round) {
  crashed_.clear();

  // 1. Scripted events stamped with this round, in canonical order.
  while (script_cursor_ < script_.size() &&
         script_[script_cursor_].round <= round) {
    apply_event(script_[script_cursor_], script_edges_[script_cursor_]);
    ++script_cursor_;
  }

  // 2. Stochastic transitions, one keyed stream per (round, entity).
  // Both hazard thresholds are tested against the same stream element
  // (bernoulli_batch reads the stream's first raw output), so one batch
  // pair covers whichever state the entity is in.
  if (config_.node_mtbf > 0.0) {
    const std::size_t n = node_up_.size();
    util::Rng::bernoulli_batch(seed_, stream_tag::kFaultNode, round, 0,
                               1.0 / config_.node_mtbf,
                               std::span(fail_flags_.data(), n));
    util::Rng::bernoulli_batch(seed_, stream_tag::kFaultNode, round, 0,
                               1.0 / config_.node_mttr,
                               std::span(recover_flags_.data(), n));
    for (core::NodeId x = 0; x < n; ++x) {
      if (node_up_[x] != 0) {
        if (fail_flags_[x] != 0) set_node(x, false);
      } else if (recover_flags_[x] != 0) {
        set_node(x, true);
      }
    }
  }
  if (config_.link_mtbf > 0.0) {
    const std::size_t m = link_up_.size();
    util::Rng::bernoulli_batch(seed_, stream_tag::kFaultLink, round, 0,
                               1.0 / config_.link_mtbf,
                               std::span(fail_flags_.data(), m));
    util::Rng::bernoulli_batch(seed_, stream_tag::kFaultLink, round, 0,
                               1.0 / config_.link_mttr,
                               std::span(recover_flags_.data(), m));
    for (std::size_t e = 0; e < m; ++e) {
      if (link_up_[e] != 0) {
        if (fail_flags_[e] != 0) set_link(e, false);
      } else if (recover_flags_[e] != 0) {
        set_link(e, true);
      }
    }
  }

  // 3. Derived state for the round: edge availability and rate factor.
  refresh_edges();
  rate_factor_ = scripted_rate_factor_;
  if (config_.rate_degradation > 0.0) {
    util::Rng rate_rng =
        util::Rng::keyed(seed_, stream_tag::kFaultRate, round, 0);
    rate_factor_ *= 1.0 - config_.rate_degradation * rate_rng.uniform_double();
  }

  // 4. Resilience accounting.
  ++stats_.rounds;
  const auto entities =
      static_cast<double>(node_up_.size() + link_up_.size());
  stats_.availability_sum +=
      entities > 0.0
          ? static_cast<double>(node_up_.size() - nodes_down_ +
                                link_up_.size() - links_down_) /
                entities
          : 1.0;
  if (degraded()) ++stats_.degraded_rounds;

  std::sort(crashed_.begin(), crashed_.end());
  return crashed_;
}

}  // namespace poq::sim
