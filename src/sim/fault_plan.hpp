// Deterministic fault injection for the round/epoch-based simulators.
//
// A FaultPlan evolves a quantum-plane availability mask — per-node up/down,
// per-generation-edge up/down, and a per-round generation-rate factor —
// from two deterministic sources:
//
//   * a scripted event list (explicit round-stamped node/link/rate events,
//     the `faults` array of a --spec file), and
//   * stochastic crash/recover processes driven by counter-based streams
//     keyed (seed, fault-tag, round, entity) — one geometric-hazard draw
//     per entity per round, with failure probability 1/mtbf while up and
//     recovery probability 1/mttr while down.
//
// advance(round) is a serial phase: every draw comes from its own keyed
// stream and no kernel consumes them, so the fault trajectory is
// bit-identical for every threads/shards setting and never perturbs the
// generation/swap/decide streams of the fault-free run.
//
// Modeled semantics (the drivers enforce them):
//   * node crash  — the node's quantum memory is lost: every stored pair
//     it shares is purged through the ledger, and generation on its
//     incident edges halts until recovery;
//   * link down   — generation on that edge halts; already-stored pairs
//     survive (they live in node memories, not on the fiber);
//   * rate degradation — the per-round generation rate is scaled by
//     scripted_factor * (1 - degradation * U_round), U_round uniform from
//     the per-round keyed stream.
// The classical control plane stays reliable throughout: gossip,
// belief reports and token handoffs keep flowing while the quantum plane
// churns — path-obliviousness is a quantum-plane property.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "graph/graph.hpp"
#include "util/stats.hpp"

namespace poq::sim {

enum class FaultEventKind {
  kNodeDown,
  kNodeUp,
  kLinkDown,
  kLinkUp,
  kRateFactor,
};

/// One scripted fault event, applied when advance() reaches its round.
struct FaultEvent {
  std::uint64_t round = 0;
  FaultEventKind kind = FaultEventKind::kNodeDown;
  /// Node events: the node. Link events: the edge endpoints (either
  /// order). Rate events ignore all three.
  core::NodeId node = 0;
  core::NodeId a = 0;
  core::NodeId b = 0;
  /// kRateFactor: persistent multiplicative generation factor from this
  /// round on (1 restores nominal).
  double factor = 1.0;
};

/// Fault process parameters. All-defaults means "no faults": enabled()
/// is false and every driver takes its historical fault-free path,
/// bit for bit.
struct FaultConfig {
  /// Mean rounds between failures per node (0 = no stochastic node
  /// faults). Per-round crash hazard is 1/mtbf.
  double node_mtbf = 0.0;
  /// Mean rounds to recover a crashed node (recovery hazard 1/mttr).
  double node_mttr = 10.0;
  /// Mean rounds between failures per generation edge (0 = none).
  double link_mtbf = 0.0;
  double link_mttr = 10.0;
  /// Per-round generation-rate degradation depth in [0, 1): each round
  /// scales the rate by 1 - degradation * U, U ~ uniform[0,1) keyed per
  /// round (0 = no degradation).
  double rate_degradation = 0.0;
  /// Scripted events (applied at their round, in list order, before the
  /// stochastic transitions of the same round).
  std::vector<FaultEvent> script;

  [[nodiscard]] bool enabled() const {
    return node_mtbf > 0.0 || link_mtbf > 0.0 || rate_degradation > 0.0 ||
           !script.empty();
  }
};

/// Cumulative resilience accounting over the advanced rounds.
struct FaultStats {
  std::uint64_t rounds = 0;
  /// Sum over rounds of (up nodes + up links) / (nodes + links).
  double availability_sum = 0.0;
  std::uint64_t degraded_rounds = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t link_downs = 0;

  /// Mean per-round fraction of up entities (1 when never advanced).
  [[nodiscard]] double availability() const {
    return rounds == 0 ? 1.0
                       : availability_sum / static_cast<double>(rounds);
  }
};

/// The evolving availability mask. Construction validates the script
/// (known nodes, existing generation edges, sane factors) and resolves
/// link events to edge indices; advance(round) is then allocation-free.
class FaultPlan {
 public:
  FaultPlan(const graph::Graph& graph, const FaultConfig& config,
            std::uint64_t seed);

  /// Advance the mask to `round` (serial phase; rounds must be passed in
  /// strictly increasing order). Applies scripted events stamped with
  /// this round, then the stochastic transitions, then refreshes the
  /// derived edge availability and the round's rate factor. Returns the
  /// nodes that crashed this round (ascending) — the caller purges their
  /// stored pairs.
  const std::vector<core::NodeId>& advance(std::uint64_t round);

  [[nodiscard]] bool node_up(core::NodeId x) const {
    return node_up_[x] != 0;
  }
  /// Edge availability: the link is up AND both endpoints are up.
  [[nodiscard]] bool edge_up(std::size_t edge) const {
    return edge_available_[edge] != 0;
  }
  /// Whether any generation edge is currently masked out.
  [[nodiscard]] bool any_edge_down() const { return edges_down_ != 0; }
  /// This round's multiplicative generation-rate factor.
  [[nodiscard]] double rate_factor() const { return rate_factor_; }
  /// Whether the current round is degraded (any entity down or the rate
  /// factor below 1).
  [[nodiscard]] bool degraded() const {
    return nodes_down_ != 0 || links_down_ != 0 || rate_factor_ < 1.0;
  }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  void apply_event(const FaultEvent& event, std::size_t edge_index);
  void set_node(core::NodeId x, bool up);
  void set_link(std::size_t edge, bool up);
  void refresh_edges();

  const graph::Graph& graph_;
  FaultConfig config_;
  std::uint64_t seed_ = 0;
  /// Script sorted stably by round (ties keep list order), with each link
  /// event's resolved edge index alongside.
  std::vector<FaultEvent> script_;
  std::vector<std::size_t> script_edges_;
  std::size_t script_cursor_ = 0;
  std::vector<std::uint8_t> node_up_;
  std::vector<std::uint8_t> link_up_;        // the link itself
  std::vector<std::uint8_t> edge_available_; // link up && endpoints up
  std::size_t nodes_down_ = 0;
  std::size_t links_down_ = 0;
  std::size_t edges_down_ = 0;
  double scripted_rate_factor_ = 1.0;
  double rate_factor_ = 1.0;
  FaultStats stats_;
  std::vector<core::NodeId> crashed_;
  /// Batched per-entity hazard flags (fail/recover thresholds over the
  /// same keyed stream element), reused every round.
  std::vector<std::uint8_t> fail_flags_;
  std::vector<std::uint8_t> recover_flags_;
};

}  // namespace poq::sim
