#include "sim/network_state.hpp"

#include <cmath>

#include "quantum/werner.hpp"
#include "util/error.hpp"

namespace poq::sim {

NetworkState::NetworkState(const graph::Graph& generation_graph,
                           std::uint64_t seed, const TickConcurrency& tick,
                           std::optional<DecayModel> decay)
    : graph_(generation_graph),
      seed_(seed),
      tick_(tick),
      ledger_(generation_graph.node_count()),
      decay_(decay) {
  if (tick_.mode == TickMode::kSharded) {
    pool_ = std::make_unique<ParallelTickEngine>(tick_.threads);
    shard_count_ = pool_->resolve_shards(tick_.shards, graph_.node_count());
    shard_scratch_.resize(shard_count_);
    generation_amounts_.assign(graph_.edge_count(), 0);
    candidates_.assign(graph_.node_count(), std::nullopt);
    committed_.assign(graph_.node_count(), 0);
    executions_.resize(graph_.node_count());
    uf_parent_.resize(graph_.node_count());
    group_of_root_.assign(graph_.node_count(), -1);
  }
  if (decay_) {
    const std::size_t n = graph_.node_count();
    pair_meta_.resize(n * (n - 1) / 2);
    purge_dropped_.assign(pair_meta_.size(), 0);
  }
}

ParallelTickEngine& NetworkState::pool() {
  require(pool_ != nullptr, "NetworkState: kernel requires the sharded engine");
  return *pool_;
}

std::size_t NetworkState::shard_count() const { return shard_count_; }

std::uint64_t NetworkState::generate(std::uint32_t round, double rate,
                                     util::Rng* sequential_rng) {
  const double whole = std::floor(rate);
  const double frac = rate - whole;
  const auto whole_amount = static_cast<std::uint32_t>(whole);
  std::uint64_t generated = 0;
  if (!sharded()) {
    require(sequential_rng != nullptr,
            "NetworkState::generate: sequential mode needs an RNG stream");
    for (const graph::Edge& edge : graph_.edges()) {
      std::uint32_t amount = whole_amount;
      if (frac > 0.0 && sequential_rng->bernoulli(frac)) ++amount;
      if (amount == 0) continue;
      ledger_.add(edge.a(), edge.b(), amount);
      generated += amount;
    }
    return generated;
  }
  // Each edge draws from its own stream keyed (seed, round, edge), so the
  // draws are identical however the edge range is partitioned. Workers
  // fill disjoint slices of generation_amounts_; the ledger merge below
  // runs on the caller in canonical edge order (adds commute, but a fixed
  // order keeps the ledger internals single-threaded here).
  const std::size_t edge_count = graph_.edge_count();
  pool_->run_shards(shard_count_, [&](std::size_t shard) {
    const auto [begin, end] =
        ParallelTickEngine::shard_range(edge_count, shard_count_, shard);
    for (std::size_t e = begin; e < end; ++e) {
      std::uint32_t amount = whole_amount;
      if (frac > 0.0) {
        util::Rng edge_rng =
            util::Rng::keyed(seed_, stream_tag::kGeneration, round, e);
        if (edge_rng.bernoulli(frac)) ++amount;
      }
      generation_amounts_[e] = amount;
    }
  });
  const auto& edges = graph_.edges();
  for (std::size_t e = 0; e < edge_count; ++e) {
    const std::uint32_t amount = generation_amounts_[e];
    if (amount == 0) continue;
    ledger_.add(edges[e].a(), edges[e].b(), amount);
    generated += amount;
  }
  return generated;
}

void NetworkState::decide_swaps(const DecideFn& decide) {
  require(pool_ != nullptr, "NetworkState: kernel requires the sharded engine");
  const std::size_t node_count = graph_.node_count();
  pool_->run_shards(shard_count_, [&](std::size_t shard) {
    const auto [begin, end] =
        ParallelTickEngine::shard_range(node_count, shard_count_, shard);
    core::MaxMinBalancer::Scratch& scratch = shard_scratch_[shard];
    for (std::size_t x = begin; x < end; ++x) {
      candidates_[x] = decide(static_cast<core::NodeId>(x), scratch);
    }
  });
}

NetworkState::CommitStats NetworkState::commit_swaps(
    const core::MaxMinBalancer& balancer, core::NodeId first,
    std::uint32_t round, std::uint32_t attempt, const RecheckFn& recheck,
    const ObserveFn& observe) {
  require(pool_ != nullptr, "NetworkState: kernel requires the sharded engine");
  const auto node_count = static_cast<core::NodeId>(graph_.node_count());

  // Level-1 grouping: union the node triple of every candidate; swaps in
  // different components touch disjoint ledger entries (a pair entry
  // (a, b) is touched only when both endpoints are in the triple), so
  // components are fully independent and their commits commute.
  for (core::NodeId x = 0; x < node_count; ++x) uf_parent_[x] = x;
  const auto find = [&](core::NodeId x) {
    while (uf_parent_[x] != x) {
      uf_parent_[x] = uf_parent_[uf_parent_[x]];  // path halving
      x = uf_parent_[x];
    }
    return x;
  };
  const auto unite = [&](core::NodeId a, core::NodeId b) {
    a = find(a);
    b = find(b);
    if (a != b) uf_parent_[b] = a;
  };
  bool any_candidate = false;
  for (core::NodeId x = 0; x < node_count; ++x) {
    committed_[x] = 0;
    if (!candidates_[x]) continue;
    any_candidate = true;
    unite(x, candidates_[x]->left);
    unite(x, candidates_[x]->right);
  }
  CommitStats stats;
  if (!any_candidate) return stats;

  // Enumerate components in canonical rotating order of their first
  // member, members in rotating order too — grouping depends only on the
  // candidate table, never on the worker schedule.
  groups_.clear();
  std::vector<core::NodeId> touched_roots;
  for (core::NodeId offset = 0; offset < node_count; ++offset) {
    const auto x = static_cast<core::NodeId>((first + offset) % node_count);
    if (!candidates_[x]) continue;
    const core::NodeId root = find(x);
    if (group_of_root_[root] < 0) {
      group_of_root_[root] = static_cast<std::int32_t>(groups_.size());
      groups_.emplace_back();
      touched_roots.push_back(root);
    }
    groups_[static_cast<std::size_t>(group_of_root_[root])].push_back(x);
  }
  for (const core::NodeId root : touched_roots) group_of_root_[root] = -1;

  // Level 2: each component commits serially in its canonical member
  // order; disjoint components fan across the pool. Re-checks read only
  // entries within the member's triple, so concurrent components never
  // interfere, and the outcome equals the fully serial canonical commit.
  pool_->run_shards(groups_.size(), [&](std::size_t group) {
    for (const core::NodeId x : groups_[group]) {
      const core::SwapCandidate& candidate = *candidates_[x];
      if (!recheck(x, candidate)) continue;
      // Key packs (attempt, round) without collision: rounds is 32-bit.
      util::Rng commit_rng = util::Rng::keyed(
          seed_, stream_tag::kSwap,
          (static_cast<std::uint64_t>(attempt) << 32) | round, x);
      executions_[x] = balancer.execute_swap(ledger_, x, candidate.left,
                                             candidate.right, commit_rng);
      committed_[x] = 1;
    }
  });

  // Serial canonical walk: accumulate stats and report executed swaps in
  // exactly the order a serial commit would have produced them, so even
  // floating-point accumulation in `observe` is schedule-independent.
  for (core::NodeId offset = 0; offset < node_count; ++offset) {
    const auto x = static_cast<core::NodeId>((first + offset) % node_count);
    if (!committed_[x]) continue;
    ++stats.swaps;
    stats.pairs_consumed +=
        executions_[x].consumed_left + executions_[x].consumed_right;
    ++stats.pairs_produced;
    if (observe) observe(CommittedSwap{x, *candidates_[x], executions_[x]});
  }
  return stats;
}

const DecayModel& NetworkState::decay() const {
  require(decay_.has_value(), "NetworkState: no decay model configured");
  return *decay_;
}

std::size_t NetworkState::bucket_index(core::NodeId x, core::NodeId y) const {
  if (x > y) std::swap(x, y);
  const std::size_t n = graph_.node_count();
  return static_cast<std::size_t>(x) * (2 * n - x - 1) / 2 + (y - x - 1);
}

double NetworkState::fidelity_now(const TrackedPair& pair, double now) const {
  // The sharded slice kernels apply a whole slice's arrivals up front, so
  // an event earlier in the slice can observe a pair time-stamped after
  // it; such a pair simply has not decayed yet.
  const double elapsed = std::max(0.0, now - pair.created);
  return quantum::decohered_fidelity(pair.initial_fidelity, elapsed,
                                     decay().memory_time_constant);
}

void NetworkState::add_pair(core::NodeId x, core::NodeId y, double now,
                            double fidelity) {
  require(decay_.has_value(), "NetworkState::add_pair: decay tracking is off");
  pair_meta_[bucket_index(x, y)].push_back(TrackedPair{now, fidelity});
  ledger_.add(x, y, 1);
}

TrackedPair NetworkState::take_pair(core::NodeId x, core::NodeId y, double now,
                                    bool freshest) {
  auto& bucket = pair_meta_[bucket_index(x, y)];
  ensure(!bucket.empty(), "NetworkState::take_pair: bucket empty");
  std::size_t chosen = 0;
  for (std::size_t i = 1; i < bucket.size(); ++i) {
    if (freshest ? fidelity_now(bucket[i], now) > fidelity_now(bucket[chosen], now)
                 : bucket[i].created < bucket[chosen].created) {
      chosen = i;
    }
  }
  const TrackedPair pair = bucket[chosen];
  bucket.erase(bucket.begin() + static_cast<long>(chosen));
  ledger_.remove(x, y, 1);
  return pair;
}

double NetworkState::best_fidelity(core::NodeId x, core::NodeId y,
                                   double now) const {
  double best = 0.0;
  for (const TrackedPair& pair : pair_meta_[bucket_index(x, y)]) {
    best = std::max(best, fidelity_now(pair, now));
  }
  return best;
}

std::uint64_t NetworkState::purge_pair_type(core::NodeId x, core::NodeId y,
                                            double now) {
  auto& bucket = pair_meta_[bucket_index(x, y)];
  std::uint64_t dropped = 0;
  for (std::size_t i = bucket.size(); i-- > 0;) {
    if (fidelity_now(bucket[i], now) < decay().usable_fidelity) {
      bucket.erase(bucket.begin() + static_cast<long>(i));
      ledger_.remove(x, y, 1);
      ++dropped;
    }
  }
  return dropped;
}

std::uint64_t NetworkState::decohere_all(double now) {
  require(pool_ != nullptr, "NetworkState: kernel requires the sharded engine");
  require(decay_.has_value(), "NetworkState::decohere_all: decay tracking off");
  // Phase 1 (sharded over buckets): the exp()-heavy fidelity scan;
  // each bucket compacts its own metadata vector, a bucket-local effect.
  const std::size_t buckets = pair_meta_.size();
  const double usable = decay().usable_fidelity;
  pool_->run_shards(shard_count_, [&](std::size_t shard) {
    const auto [begin, end] =
        ParallelTickEngine::shard_range(buckets, shard_count_, shard);
    for (std::size_t b = begin; b < end; ++b) {
      auto& bucket = pair_meta_[b];
      std::uint32_t dropped = 0;
      for (std::size_t i = bucket.size(); i-- > 0;) {
        if (fidelity_now(bucket[i], now) < usable) {
          bucket.erase(bucket.begin() + static_cast<long>(i));
          ++dropped;
        }
      }
      purge_dropped_[b] = dropped;
    }
  });
  // Phase 2 (serial, canonical bucket order): ledger updates — buckets
  // sharing an endpoint touch the same partner list, so these stay on the
  // caller.
  std::uint64_t total_dropped = 0;
  const auto n = static_cast<core::NodeId>(graph_.node_count());
  std::size_t b = 0;
  for (core::NodeId x = 0; x < n; ++x) {
    for (core::NodeId y = x + 1; y < n; ++y, ++b) {
      if (purge_dropped_[b] > 0) {
        ledger_.remove(x, y, purge_dropped_[b]);
        total_dropped += purge_dropped_[b];
      }
    }
  }
  return total_dropped;
}

}  // namespace poq::sim
