#include "sim/network_state.hpp"

#include <algorithm>
#include <cmath>

#include "quantum/werner.hpp"
#include "util/error.hpp"

namespace poq::sim {

namespace {

// Default chunk grains (entities per chunk) for the dynamically
// scheduled kernels, tuned for cheap-per-entity generation flags vs the
// partner-scan-heavy decide and the exp()-heavy decohere. Pure
// performance constants — never part of the determinism contract.
constexpr std::size_t kGenerateGrain = 2048;
constexpr std::size_t kDecideGrain = 64;
constexpr std::size_t kDecohereGrain = 256;

}  // namespace

NetworkState::NetworkState(const graph::Graph& generation_graph,
                           std::uint64_t seed, const TickConcurrency& tick,
                           std::optional<DecayModel> decay)
    : graph_(generation_graph),
      seed_(seed),
      tick_(tick),
      ledger_(generation_graph.node_count()),
      decay_(decay) {
  if (tick_.mode == TickMode::kSharded) {
    const std::size_t n = graph_.node_count();
    pool_ = std::make_unique<ParallelTickEngine>(tick_.threads);
    shard_count_ = pool_->resolve_shards(tick_.shards, n);
    // Decide scratch is per pool worker (chunks of the frontier are
    // claimed dynamically; any worker may run any chunk, and scratch
    // never leaks into results).
    worker_scratch_.resize(pool_->thread_count());
    // Pre-size every per-round scratch once: the steady-state round
    // allocates nothing (asserted by the hot-path allocation test). The
    // eligible list is bounded by a node's partner degree, so megascale
    // networks cap the reserve at the full-reserve limit — on sparse
    // topologies degrees never approach it, and a denser node just grows
    // its worker's scratch once, amortized.
    const std::size_t scratch_nodes =
        std::min(n, core::PairLedger::kFullReserveNodeLimit + 1);
    for (core::MaxMinBalancer::Scratch& scratch : worker_scratch_) {
      scratch.reserve(scratch_nodes);
    }
    generation_flags_.assign(graph_.edge_count(), 0);
    // Chunk grains for the dynamically scheduled kernels. Fixed ranges
    // (edges, all nodes) resolve once here; the decide grain resolves per
    // call against the live frontier size. Grain is a pure performance
    // knob — chunk boundaries are canonical, results never move.
    generate_grain_ = ParallelTickEngine::resolve_grain(
        tick_.shards, graph_.edge_count(), kGenerateGrain);
    decohere_grain_ =
        ParallelTickEngine::resolve_grain(tick_.shards, n, kDecohereGrain);
    candidates_.assign(n, std::nullopt);
    committed_.assign(n, 0);
    executions_.resize(n);
    uf_parent_.resize(n);
    uf_version_.assign(n, 0);
    group_of_root_.assign(n, -1);
    touched_roots_.reserve(n);
    group_start_.assign(n + 1, 0);
    group_fill_.assign(n, 0);
    group_members_.assign(n, 0);
    dirty_nodes_.reserve(n);
    candidate_nodes_.reserve(n);
    candidate_scratch_.reserve(n);
    // The incremental decide consumes the ledger's dirty frontier; every
    // node starts dirty so the first decide computes the full table.
    // Full-rescan mode leaves tracking off entirely — it re-decides every
    // node anyway, so it should not pay the per-mutation marking either.
    if (tick_.incremental_decide) ledger_.enable_dirty_tracking();
  }
  if (decay_) {
    pair_store_.emplace(graph_.node_count());
    // One drop list per decohere chunk (the chunk count is fixed: nodes
    // and grain never change after construction).
    purge_entries_.resize(
        pool_ ? (graph_.node_count() + decohere_grain_ - 1) / decohere_grain_
              : 1);
  }
}

ParallelTickEngine& NetworkState::pool() {
  require(pool_ != nullptr, "NetworkState: kernel requires the sharded engine");
  return *pool_;
}

std::size_t NetworkState::shard_count() const { return shard_count_; }

void NetworkState::generate_chunk(std::size_t begin, std::size_t end) {
  // One batched draw over the chunk's edge range: bernoulli_batch is
  // element-for-element the scalar keyed(seed, tag, round, e).bernoulli
  // decision, so the flags are identical however the range is chunked.
  util::Rng::bernoulli_batch(
      seed_, stream_tag::kGeneration, gen_round_, begin, gen_frac_,
      std::span<std::uint8_t>(generation_flags_.data() + begin, end - begin));
}

std::uint64_t NetworkState::generate(std::uint32_t round, double rate,
                                     util::Rng* sequential_rng) {
  const PhaseStopwatch stopwatch(timers_.generate_ns);
  // Fault phase: the plan's per-round rate factor scales the rate before
  // the whole/fraction split, and unavailable edges are masked out of the
  // merge below.
  const bool faulty = fault_plan_ != nullptr;
  if (faulty) rate *= fault_plan_->rate_factor();
  const bool masked = faulty && fault_plan_->any_edge_down();
  const double whole = std::floor(rate);
  const double frac = rate - whole;
  const auto whole_amount = static_cast<std::uint32_t>(whole);
  if (!sharded()) {
    require(sequential_rng != nullptr,
            "NetworkState::generate: sequential mode needs an RNG stream");
    std::uint64_t generated = 0;
    const auto& edges = graph_.edges();
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (masked && !fault_plan_->edge_up(e)) continue;
      std::uint32_t amount = whole_amount;
      if (frac > 0.0 && sequential_rng->bernoulli(frac)) ++amount;
      if (amount == 0) continue;
      ledger_.add(edges[e].a(), edges[e].b(), amount);
      generated += amount;
    }
    return generated;
  }
  // The merge runs on the caller in canonical edge order through the
  // ledger's batched add_edges (adds commute, but a fixed order keeps the
  // ledger internals single-threaded here; the batch hoists the global
  // bookkeeping without changing any observable state).
  const std::span<const graph::Edge> edges(graph_.edges());
  if (frac > 0.0) {
    // Fractional rate: each edge's rounding flag comes from its own stream
    // keyed (seed, tag, round, edge), batch-derived over dynamically
    // scheduled chunks into disjoint slices of generation_flags_. Masked
    // edges still get their flag derived (so masking never shifts another
    // edge's stream); only their merged amount is zeroed.
    gen_round_ = round;
    gen_frac_ = frac;
    pool_->run_chunks(edges.size(), generate_grain_, &timers_.generate_load,
                      [this](std::size_t begin, std::size_t end, unsigned) {
                        generate_chunk(begin, end);
                      });
    if (!masked) return ledger_.add_edges(edges, whole_amount, generation_flags_);
  } else {
    // Integral rate: every edge adds the same amount — no draws at all,
    // straight to the merge (the hot regime of the megascale cells).
    if (whole_amount == 0) return 0;
    if (!masked) return ledger_.add_edges(edges, whole_amount);
  }
  // Masked merge: per-edge amounts with zeros for unavailable edges.
  generation_amounts_.resize(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    std::uint32_t amount = whole_amount;
    if (frac > 0.0) amount += generation_flags_[e];
    generation_amounts_[e] = fault_plan_->edge_up(e) ? amount : 0;
  }
  return ledger_.add_edges(edges, generation_amounts_);
}

std::uint64_t NetworkState::purge_node(core::NodeId x) {
  // Copy the partner row first: remove() mutates it. Each remove goes
  // through the ledger's normal path, so histogram, totals and dirty-set
  // reader marks stay exact.
  const std::span<const core::NodeId> row = ledger_.partners(x);
  purge_partners_.assign(row.begin(), row.end());
  std::uint64_t purged = 0;
  for (const core::NodeId y : purge_partners_) {
    const std::uint32_t count = ledger_.count(x, y);
    if (count == 0) continue;
    if (pair_store_) {
      if (std::vector<TrackedPair>* bucket = pair_store_->find(x, y)) {
        bucket->clear();
      }
    }
    ledger_.remove(x, y, count);
    purged += count;
  }
  return purged;
}

void NetworkState::decide_chunk(std::size_t begin, std::size_t end,
                                unsigned worker) {
  // Scratch is indexed by worker, not chunk: it is pure workspace, so the
  // dynamic chunk-to-worker assignment never reaches a result.
  core::MaxMinBalancer::Scratch& scratch = worker_scratch_[worker];
  for (std::size_t i = begin; i < end; ++i) {
    const core::NodeId x = dirty_nodes_[i];
    candidates_[x] = (*decide_fn_)(x, scratch);
  }
}

void NetworkState::decide_swaps(const DecideFn& decide) {
  require(pool_ != nullptr, "NetworkState: kernel requires the sharded engine");
  const PhaseStopwatch stopwatch(timers_.decide_ns);
  // The frontier: only nodes whose readable counts (or views — the
  // protocol marks those itself) changed since their last decision. A
  // clean node's cached candidate is exactly what `decide` would return,
  // so recomputing the frontier alone equals the full rescan. Full-rescan
  // mode (no dirty tracking) simply makes the frontier everything.
  dirty_nodes_.clear();
  if (tick_.incremental_decide) {
    ledger_.drain_dirty(dirty_nodes_);
    if (dirty_nodes_.empty()) return;
  } else {
    const auto n = static_cast<core::NodeId>(graph_.node_count());
    for (core::NodeId x = 0; x < n; ++x) dirty_nodes_.push_back(x);
  }
  decide_fn_ = &decide;
  // The grain resolves against the live frontier size (an explicit
  // shards knob keeps its partitioning meaning); a frontier within one
  // grain hits the engine's inline fast path, so a 1-node decide still
  // skips the pool handshake. Chunking never affects results.
  const std::size_t grain = ParallelTickEngine::resolve_grain(
      tick_.shards, dirty_nodes_.size(), kDecideGrain);
  pool_->run_chunks(dirty_nodes_.size(), grain, &timers_.decide_load,
                    [this](std::size_t begin, std::size_t end,
                           unsigned worker) {
                      decide_chunk(begin, end, worker);
                    });
  decide_fn_ = nullptr;
  // Fold the frontier into the sorted candidate-node list (two-pointer
  // merge, both inputs ascending): frontier nodes are re-tested against
  // their freshly computed candidate, everything else carries over. The
  // commit enumerates this list instead of scanning all n nodes.
  candidate_scratch_.clear();
  std::size_t old_i = 0;
  std::size_t new_j = 0;
  while (old_i < candidate_nodes_.size() || new_j < dirty_nodes_.size()) {
    if (new_j == dirty_nodes_.size() ||
        (old_i < candidate_nodes_.size() &&
         candidate_nodes_[old_i] < dirty_nodes_[new_j])) {
      candidate_scratch_.push_back(candidate_nodes_[old_i++]);
      continue;
    }
    const core::NodeId x = dirty_nodes_[new_j++];
    if (old_i < candidate_nodes_.size() && candidate_nodes_[old_i] == x) {
      ++old_i;
    }
    if (candidates_[x].has_value()) candidate_scratch_.push_back(x);
  }
  candidate_nodes_.swap(candidate_scratch_);
}

void NetworkState::commit_group(std::size_t group) {
  for (std::uint32_t slot = group_start_[group];
       slot < group_start_[group + 1]; ++slot) {
    const core::NodeId x = group_members_[slot];
    const core::SwapCandidate& candidate = *candidates_[x];
    if (!(*commit_recheck_)(x, candidate)) continue;
    // Key packs (attempt, round) without collision: rounds is 32-bit.
    util::Rng commit_rng = util::Rng::keyed(
        seed_, stream_tag::kSwap,
        (static_cast<std::uint64_t>(commit_attempt_) << 32) | commit_round_, x);
    executions_[x] = commit_balancer_->execute_swap(
        ledger_, x, candidate.left, candidate.right, commit_rng);
    committed_[x] = 1;
  }
}

NetworkState::CommitStats NetworkState::commit_swaps(
    const core::MaxMinBalancer& balancer, core::NodeId first,
    std::uint32_t round, std::uint32_t attempt, const RecheckFn& recheck,
    const ObserveFn& observe) {
  require(pool_ != nullptr, "NetworkState: kernel requires the sharded engine");
  const PhaseStopwatch stopwatch(timers_.commit_ns);
  last_commit_probes_ = 0;
  // Quiescent fast path: nothing decided anywhere, nothing to group.
  if (candidate_nodes_.empty()) return CommitStats{};

  // Every walk below enumerates the sorted candidate-node list rotated at
  // `first` — the same visit order as filtering a (first + offset) % n
  // scan, at O(#candidates) instead of O(n).
  const auto split = static_cast<std::size_t>(
      std::lower_bound(candidate_nodes_.begin(), candidate_nodes_.end(),
                       first) -
      candidate_nodes_.begin());
  const std::size_t list_size = candidate_nodes_.size();
  const auto rotated = [&](std::size_t i) {
    const std::size_t at = split + i;
    return candidate_nodes_[at < list_size ? at : at - list_size];
  };

  // Level-1 grouping: union the node triple of every candidate; swaps in
  // different components touch disjoint ledger entries (a pair entry
  // (a, b) is touched only when both endpoints are in the triple), so
  // components are fully independent and their commits commute. The
  // union-find is version-stamped: a slot last written under an older
  // epoch reads as the singleton {x}, so no O(n) reset is ever paid.
  if (++uf_epoch_ == 0) {  // stamp wrap: invalidate everything once
    std::fill(uf_version_.begin(), uf_version_.end(), 0);
    uf_epoch_ = 1;
  }
  const auto find = [&](core::NodeId x) {
    if (uf_version_[x] != uf_epoch_) {
      uf_version_[x] = uf_epoch_;
      uf_parent_[x] = x;
      return x;
    }
    // Parent chains only ever link nodes united this epoch, so the walk
    // below never reads a stale slot.
    while (uf_parent_[x] != x) {
      uf_parent_[x] = uf_parent_[uf_parent_[x]];  // path halving
      x = uf_parent_[x];
    }
    return x;
  };
  const auto unite = [&](core::NodeId a, core::NodeId b) {
    a = find(a);
    b = find(b);
    if (a != b) uf_parent_[b] = a;
  };
  for (const core::NodeId x : candidate_nodes_) {
    ++last_commit_probes_;
    committed_[x] = 0;
    unite(x, candidates_[x]->left);
    unite(x, candidates_[x]->right);
  }
  CommitStats stats;

  // Enumerate components in canonical rotating order of their first
  // member, members in rotating order too — grouping depends only on the
  // candidate table, never on the worker schedule. Two passes over the
  // pre-sized flat arrays (assign group ids + sizes, then fill members)
  // keep the commit allocation-free.
  group_count_ = 0;
  touched_roots_.clear();
  for (std::size_t i = 0; i < list_size; ++i) {
    ++last_commit_probes_;
    const core::NodeId x = rotated(i);
    const core::NodeId root = find(x);
    std::int32_t group = group_of_root_[root];
    if (group < 0) {
      group = static_cast<std::int32_t>(group_count_++);
      group_of_root_[root] = group;
      touched_roots_.push_back(root);
      group_start_[static_cast<std::size_t>(group) + 1] = 0;
    }
    ++group_start_[static_cast<std::size_t>(group) + 1];
  }
  group_start_[0] = 0;
  for (std::size_t g = 0; g < group_count_; ++g) {
    group_start_[g + 1] += group_start_[g];
    group_fill_[g] = group_start_[g];
  }
  for (std::size_t i = 0; i < list_size; ++i) {
    ++last_commit_probes_;
    const core::NodeId x = rotated(i);
    const auto group = static_cast<std::size_t>(group_of_root_[find(x)]);
    group_members_[group_fill_[group]++] = x;
  }
  for (const core::NodeId root : touched_roots_) group_of_root_[root] = -1;

  // Level 2: each component commits serially in its canonical member
  // order; disjoint components fan across the pool. Re-checks read only
  // entries within the member's triple, so concurrent components never
  // interfere, and the outcome equals the fully serial canonical commit.
  commit_balancer_ = &balancer;
  commit_recheck_ = &recheck;
  commit_round_ = round;
  commit_attempt_ = attempt;
  pool_->run_shards(group_count_,
                    [this](std::size_t group) { commit_group(group); });
  commit_balancer_ = nullptr;
  commit_recheck_ = nullptr;

  // Serial canonical walk: accumulate stats and report executed swaps in
  // exactly the order a serial commit would have produced them, so even
  // floating-point accumulation in `observe` is schedule-independent.
  for (std::size_t i = 0; i < list_size; ++i) {
    ++last_commit_probes_;
    const core::NodeId x = rotated(i);
    if (!committed_[x]) continue;
    ++stats.swaps;
    stats.pairs_consumed +=
        executions_[x].consumed_left + executions_[x].consumed_right;
    ++stats.pairs_produced;
    if (observe) observe(CommittedSwap{x, *candidates_[x], executions_[x]});
  }
  return stats;
}

const DecayModel& NetworkState::decay() const {
  require(decay_.has_value(), "NetworkState: no decay model configured");
  return *decay_;
}

double NetworkState::fidelity_now(const TrackedPair& pair, double now) const {
  // The sharded slice kernels apply a whole slice's arrivals up front, so
  // an event earlier in the slice can observe a pair time-stamped after
  // it; such a pair simply has not decayed yet.
  const double elapsed = std::max(0.0, now - pair.created);
  return quantum::decohered_fidelity(pair.initial_fidelity, elapsed,
                                     decay().memory_time_constant);
}

void NetworkState::add_pair(core::NodeId x, core::NodeId y, double now,
                            double fidelity) {
  require(decay_.has_value(), "NetworkState::add_pair: decay tracking is off");
  pair_store_->bucket(x, y).push_back(TrackedPair{now, fidelity});
  ledger_.add(x, y, 1);
}

TrackedPair NetworkState::take_pair(core::NodeId x, core::NodeId y, double now,
                                    bool freshest) {
  std::vector<TrackedPair>* slot = pair_store_->find(x, y);
  ensure(slot != nullptr && !slot->empty(),
         "NetworkState::take_pair: bucket empty");
  std::vector<TrackedPair>& bucket = *slot;
  std::size_t chosen = 0;
  for (std::size_t i = 1; i < bucket.size(); ++i) {
    if (freshest ? fidelity_now(bucket[i], now) > fidelity_now(bucket[chosen], now)
                 : bucket[i].created < bucket[chosen].created) {
      chosen = i;
    }
  }
  const TrackedPair pair = bucket[chosen];
  bucket.erase(bucket.begin() + static_cast<long>(chosen));
  ledger_.remove(x, y, 1);
  return pair;
}

double NetworkState::best_fidelity(core::NodeId x, core::NodeId y,
                                   double now) const {
  const std::vector<TrackedPair>* bucket = pair_store_->find(x, y);
  if (bucket == nullptr) return 0.0;
  double best = 0.0;
  for (const TrackedPair& pair : *bucket) {
    best = std::max(best, fidelity_now(pair, now));
  }
  return best;
}

std::uint64_t NetworkState::purge_pair_type(core::NodeId x, core::NodeId y,
                                            double now) {
  std::vector<TrackedPair>* slot = pair_store_->find(x, y);
  if (slot == nullptr) return 0;
  std::vector<TrackedPair>& bucket = *slot;
  std::uint64_t dropped = 0;
  for (std::size_t i = bucket.size(); i-- > 0;) {
    if (fidelity_now(bucket[i], now) < decay().usable_fidelity) {
      bucket.erase(bucket.begin() + static_cast<long>(i));
      ledger_.remove(x, y, 1);
      ++dropped;
    }
  }
  return dropped;
}

void NetworkState::decohere_chunk(std::size_t begin, std::size_t end) {
  // A bucket belongs to the chunk of its smaller endpoint; the live pairs
  // of a node come from its ledger partner row (read-only here), so the
  // scan touches exactly the live buckets — never n^2 of them. Buckets of
  // different chunks are disjoint, so compaction is race-free.
  const double usable = decay().usable_fidelity;
  std::vector<PurgeEntry>& drops = purge_entries_[begin / decohere_grain_];
  drops.clear();
  for (auto x = static_cast<core::NodeId>(begin); x < end; ++x) {
    for (const core::NodeId y : ledger_.partners(x)) {
      if (y <= x) continue;  // owned by y's shard when y < x
      std::vector<TrackedPair>* slot = pair_store_->find(x, y);
      if (slot == nullptr || slot->empty()) continue;
      std::vector<TrackedPair>& bucket = *slot;
      std::uint32_t dropped = 0;
      for (std::size_t i = bucket.size(); i-- > 0;) {
        if (fidelity_now(bucket[i], decohere_now_) < usable) {
          bucket.erase(bucket.begin() + static_cast<long>(i));
          ++dropped;
        }
      }
      if (dropped > 0) drops.push_back(PurgeEntry{x, y, dropped});
    }
  }
}

std::uint64_t NetworkState::decohere_all(double now) {
  require(pool_ != nullptr, "NetworkState: kernel requires the sharded engine");
  require(decay_.has_value(), "NetworkState::decohere_all: decay tracking off");
  const PhaseStopwatch stopwatch(timers_.decohere_ns);
  // Phase 1 (chunked over nodes): the exp()-heavy fidelity scan; each
  // bucket compacts its own metadata vector, a bucket-local effect.
  decohere_now_ = now;
  pool_->run_chunks(graph_.node_count(), decohere_grain_,
                    &timers_.decohere_load,
                    [this](std::size_t begin, std::size_t end, unsigned) {
                      decohere_chunk(begin, end);
                    });
  // Phase 2 (serial, canonical bucket order): ledger updates — buckets
  // sharing an endpoint touch the same partner row, so these stay on the
  // caller. Chunk ranges are contiguous ascending node ranges and each
  // chunk's drop list ascends in (x, y), so concatenating the lists in
  // chunk order replays exactly the ascending-(x, y) walk the dense
  // triangle produced — bit-identical remove sequence at every
  // threads/shards setting.
  std::uint64_t total_dropped = 0;
  for (const std::vector<PurgeEntry>& drops : purge_entries_) {
    for (const PurgeEntry& entry : drops) {
      ledger_.remove(entry.x, entry.y, entry.dropped);
      total_dropped += entry.dropped;
    }
  }
  return total_dropped;
}

std::uint64_t NetworkState::memory_bytes() const {
  std::uint64_t bytes = ledger_.memory_bytes();
  if (pool_ != nullptr) {
    // Sharded-engine per-node scratch (candidate table, commit outcome
    // slots, union-find, group arenas, frontier/candidate lists): fixed
    // logical bytes per node, plus one generation slot per edge.
    constexpr std::uint64_t kShardedPerNodeBytes = 72;
    bytes += kShardedPerNodeBytes * graph_.node_count();
    bytes += sizeof(std::uint32_t) *
             static_cast<std::uint64_t>(graph_.edge_count());
  }
  if (pair_store_) bytes += pair_store_->memory_bytes();
  return bytes;
}

}  // namespace poq::sim
