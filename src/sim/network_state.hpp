// Shared simulation substrate for the phase-kernel protocols.
//
// Every round/slice-based protocol in the repo decomposes into the same
// ordered phase kernels over one network state:
//
//   generate -> observe/message-merge -> decide -> commit -> decohere
//
// NetworkState owns the state those kernels share — the Bell-pair count
// ledger, optional per-pair decay metadata (creation time + fidelity),
// the ParallelTickEngine worker pool, and the counter-based keyed RNG
// streams — so the protocol drivers in core/ (balancing, gossip, hybrid,
// fidelity) are reduced to sequencing kernels and supplying the
// protocol-defining decide/observe callbacks. The scheduling/ordering of
// swaps is the protocol's degree of freedom; the substrate is common.
//
// Determinism contract (inherited from the PR 3 engine): kernels draw
// randomness from streams keyed per (phase-tag, round, entity), shard
// work over contiguous index ranges, and merge all effects in canonical
// entity order — so results are bit-identical for every threads/shards
// setting. The two-level swap commit extends the contract: swaps whose
// node triples are disjoint commit in parallel (they touch disjoint
// ledger entries), conflicting swaps serialize in canonical rotating
// order, and the outcome equals the fully serial canonical commit.
//
// Incremental decide (tick.incremental_decide, default on): the decide
// kernel caches each node's last SwapCandidate in the candidate table and
// re-runs the decide callback only over the ledger's dirty frontier — the
// nodes whose readable counts changed since their last decision (marked
// by every ledger mutation: generation merges, swap commits, decoherence
// purges, consumption; gossip additionally marks view-install owners).
// The decide callback must be a pure function of the node's readable
// state (its own counts, the beneficiary counts / views of its partner
// pairs, and immutable protocol state) — then an unchanged readable view
// implies an unchanged decision, and the dirty-set decide is exactly
// equivalent to the full rescan at every threads/shards setting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/ledger.hpp"
#include "core/maxmin_balancer.hpp"
#include "graph/graph.hpp"
#include "sim/fault_plan.hpp"
#include "sim/pair_store.hpp"
#include "sim/parallel_engine.hpp"
#include "util/rng.hpp"

namespace poq::sim {

/// Decay model for tracked pairs (fidelity-aware protocols).
struct DecayModel {
  /// Memory decoherence time constant T (simulation time units).
  double memory_time_constant = 50.0;
  /// Below this fidelity a stored pair is useless and discarded.
  double usable_fidelity = 0.70;
};

class NetworkState {
 public:
  /// `tick` selects the engine: kSharded spins up the worker pool and the
  /// keyed-stream kernels; kSequential keeps the state passive (the
  /// legacy single-stream loops drive the ledger directly). Pass `decay`
  /// to track per-pair creation time/fidelity (the decohere kernel).
  NetworkState(const graph::Graph& generation_graph, std::uint64_t seed,
               const TickConcurrency& tick,
               std::optional<DecayModel> decay = std::nullopt);

  [[nodiscard]] bool sharded() const { return pool_ != nullptr; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::size_t node_count() const { return ledger_.node_count(); }
  [[nodiscard]] const graph::Graph& generation_graph() const { return graph_; }
  [[nodiscard]] core::PairLedger& ledger() { return ledger_; }
  [[nodiscard]] const core::PairLedger& ledger() const { return ledger_; }
  /// Worker pool; requires sharded().
  [[nodiscard]] ParallelTickEngine& pool();
  /// Node shards resolved for this network (1 when sequential).
  [[nodiscard]] std::size_t shard_count() const;
  /// Whether the decide kernel runs over the dirty frontier only.
  [[nodiscard]] bool incremental_decide() const {
    return tick_.incremental_decide;
  }
  /// Cumulative per-phase wall-clock spent in this state's kernels.
  /// Mutable so drivers with bespoke kernel loops (fidelity slices, the
  /// sequential sweep) can account their phases here too.
  [[nodiscard]] PhaseTimers& timers() { return timers_; }
  [[nodiscard]] const PhaseTimers& timers() const { return timers_; }

  // --- generation kernel ----------------------------------------------
  /// Add `rate` Bell pairs per generation edge (fractional rates use
  /// Bernoulli rounding). Sharded mode draws each edge's rounding flag
  /// from a stream keyed (seed, generation-tag, round, edge) — batched
  /// per chunk through util::Rng::bernoulli_batch, bit-identical to the
  /// scalar draws — and merges into the ledger in canonical edge order
  /// via the batched PairLedger::add_edges. Integral rates skip the draw
  /// pass entirely and merge directly. Sequential mode consumes
  /// `sequential_rng` edge by edge, reproducing the legacy loop bit for
  /// bit. Returns the number of pairs generated.
  std::uint64_t generate(std::uint32_t round, double rate,
                         util::Rng* sequential_rng);

  // --- fault phase ------------------------------------------------------
  /// Attach the driver's fault plan (may be null to detach). While a plan
  /// is attached, generate() scales the rate by the plan's current rate
  /// factor and masks unavailable edges out of the sweep. Masking never
  /// shifts another edge's keyed stream: the sharded path still derives
  /// the per-(round, edge) rounding flag for every edge and only zeroes
  /// the merged amount, so the same plan trajectory yields bit-identical
  /// results at every threads/shards setting. (The sequential path skips
  /// masked edges without drawing — its single-stream discipline has no
  /// cross-setting contract to preserve.)
  void set_fault_plan(const FaultPlan* plan) { fault_plan_ = plan; }
  [[nodiscard]] const FaultPlan* fault_plan() const { return fault_plan_; }
  /// Crash purge: remove every stored pair the node shares — ledger
  /// counts via the sparse partner row (which marks readers per the
  /// dirty-set discipline) and, when pairs are tracked, the decay
  /// metadata buckets. Serial phase; returns the pairs purged.
  std::uint64_t purge_node(core::NodeId x);

  // --- swap decide kernel ---------------------------------------------
  /// Per-node swap choice against the frozen (post-generation) state.
  /// Must be pure on shared state; each invocation gets a caller-owned
  /// scratch. Requires sharded().
  using DecideFn = std::function<std::optional<core::SwapCandidate>(
      core::NodeId, core::MaxMinBalancer::Scratch&)>;
  /// Refresh the candidate table: fan `decide` across dynamically
  /// scheduled chunks of the dirty frontier (incremental mode) or of
  /// every node (full-rescan mode) — chunk boundaries are canonical, so
  /// the schedule never affects results. Clean nodes keep their cached
  /// candidate, which by the purity contract equals what `decide` would
  /// return.
  void decide_swaps(const DecideFn& decide);
  [[nodiscard]] const std::vector<std::optional<core::SwapCandidate>>&
  candidates() const {
    return candidates_;
  }
  /// Nodes whose cached candidate is non-null, ascending. Maintained by
  /// decide_swaps (two-pointer merge of the dirty frontier into the
  /// previous list); commit_swaps enumerates only this list.
  [[nodiscard]] const std::vector<core::NodeId>& candidate_nodes() const {
    return candidate_nodes_;
  }
  /// Candidate-list entries visited by the last commit_swaps call, summed
  /// over its walks (grouping, member fill, stats). Test hook for the
  /// O(#candidates) contract: with a fixed candidate set this must not
  /// grow with the node count.
  [[nodiscard]] std::uint64_t last_commit_probes() const {
    return last_commit_probes_;
  }

  // --- two-level swap commit kernel -----------------------------------
  /// Re-validation of a decided swap against the live ledger, invoked
  /// immediately before execution. May run concurrently with re-checks
  /// and executions of swaps whose node triples are disjoint, so it must
  /// only read ledger entries among {node, left, right} (every §4-style
  /// predicate does) plus immutable protocol state.
  using RecheckFn =
      std::function<bool(core::NodeId, const core::SwapCandidate&)>;
  /// One executed swap, reported to `observe` in canonical rotating order.
  struct CommittedSwap {
    core::NodeId node = 0;
    core::SwapCandidate candidate;
    core::MaxMinBalancer::Execution execution;
  };
  using ObserveFn = std::function<void(const CommittedSwap&)>;
  struct CommitStats {
    std::uint64_t swaps = 0;
    std::uint64_t pairs_consumed = 0;  // donor pairs destroyed
    std::uint64_t pairs_produced = 0;  // one per swap
  };
  /// Commit the decided candidates. Level 1: candidates are grouped into
  /// conflict components (union-find over their node triples) and
  /// disjoint components commit in parallel across the pool. Level 2:
  /// within a component, members commit serially in canonical rotating
  /// order from `first`, each re-checked via `recheck` against the live
  /// ledger. Fractional-D rounding draws come from streams keyed
  /// (seed, swap-tag, attempt|round, node), so the outcome — including
  /// the stats and the `observe` callback sequence, both produced by a
  /// serial canonical walk afterwards — is bit-identical for every
  /// threads/shards setting and equal to a fully serial canonical commit.
  /// Cost is O(#candidates), not O(n): every walk enumerates the sorted
  /// candidate-node list rotated at `first` (identical visit order to the
  /// old filtered 0..n scan), and the union-find resets by version stamp
  /// instead of re-initializing all n slots. Requires sharded().
  CommitStats commit_swaps(const core::MaxMinBalancer& balancer,
                           core::NodeId first, std::uint32_t round,
                           std::uint32_t attempt, const RecheckFn& recheck,
                           const ObserveFn& observe = {});

  // --- decay state + decohere kernel (decay model required) ------------
  [[nodiscard]] bool tracks_pairs() const { return decay_.has_value(); }
  [[nodiscard]] const DecayModel& decay() const;
  /// Current fidelity of a tracked pair under the decay model.
  [[nodiscard]] double fidelity_now(const TrackedPair& pair, double now) const;
  /// Store one pair between x and y (ledger count + metadata).
  void add_pair(core::NodeId x, core::NodeId y, double now, double fidelity);
  /// Remove and return the (x, y) pair chosen by the pairing policy:
  /// freshest = highest current fidelity, otherwise oldest creation time.
  /// The bucket must be non-empty (check the ledger count first).
  TrackedPair take_pair(core::NodeId x, core::NodeId y, double now,
                        bool freshest);
  /// Best current fidelity of the (x, y) bucket (0 when empty).
  [[nodiscard]] double best_fidelity(core::NodeId x, core::NodeId y,
                                     double now) const;
  /// Drop (x, y) pairs decayed below usable_fidelity at `now`; returns
  /// how many were dropped.
  std::uint64_t purge_pair_type(core::NodeId x, core::NodeId y, double now);
  /// Decohere kernel: purge every live bucket at `now`. The per-pair
  /// fidelity scan fans across dynamically scheduled node chunks — a
  /// bucket belongs to the chunk of its smaller endpoint, enumerated via
  /// the ledger partner rows, so only live pairs are ever visited
  /// (O(live pairs), not O(n^2)). Buckets own their metadata vectors, so
  /// compaction is chunk-local; the ledger updates apply on the caller by
  /// concatenating the per-chunk drop lists in chunk order, which is
  /// exactly ascending (x, y) — the same canonical order as a full
  /// triangular walk over the non-empty buckets. Returns the total pairs
  /// dropped. Requires sharded().
  std::uint64_t decohere_all(double now);

  /// Deterministic logical bytes held by the simulation state (ledger
  /// rows, candidate/commit scratch, decay store). Element counts times
  /// fixed constants — bit-identical across compilers, so bench gates can
  /// compare memory-per-node at 1e-9 tolerance.
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  /// Chunk/shard bodies for the kernels. Their contexts live in members
  /// (not lambda captures) so the std::function handed to the pool stays
  /// within the small-object buffer — the hot path never allocates. The
  /// chunked kernels (generate, decide, decohere) go through the engine's
  /// dynamic chunk scheduler; commit keeps the one-shard-per-conflict-
  /// group mapping (groups are the unit of serial order).
  void generate_chunk(std::size_t begin, std::size_t end);
  void decide_chunk(std::size_t begin, std::size_t end, unsigned worker);
  void commit_group(std::size_t group);
  void decohere_chunk(std::size_t begin, std::size_t end);

  const graph::Graph& graph_;
  std::uint64_t seed_;
  TickConcurrency tick_;
  core::PairLedger ledger_;
  PhaseTimers timers_;

  // Sharded-engine state (null/empty when sequential).
  std::unique_ptr<ParallelTickEngine> pool_;
  std::size_t shard_count_ = 1;
  // Decide scratch is pure per-invocation workspace, so one per pool
  // worker suffices under the chunk scheduler (results never depend on
  // which worker ran a chunk).
  std::vector<core::MaxMinBalancer::Scratch> worker_scratch_;
  // Per-edge Bernoulli rounding flags for fractional generation rates,
  // filled chunk-parallel by bernoulli_batch and merged through
  // add_edges (integral rates never touch it).
  std::vector<std::uint8_t> generation_flags_;
  // Per-edge merge amounts for the fault-masked generation path (sized on
  // first faulty generate; fault-free runs never touch it).
  std::vector<std::uint32_t> generation_amounts_;
  const FaultPlan* fault_plan_ = nullptr;
  // Scratch for purge_node's partner-row walk (the row mutates under the
  // removes).
  std::vector<core::NodeId> purge_partners_;
  std::vector<std::optional<core::SwapCandidate>> candidates_;  // per node
  // Per-node commit outcome slots (filled by concurrent groups, read by
  // the canonical walk; a node belongs to exactly one conflict group).
  std::vector<std::uint8_t> committed_;
  std::vector<core::MaxMinBalancer::Execution> executions_;
  // commit_swaps scratch: union-find + flat group membership (CSR-style:
  // members of group g live in group_members_[group_start_[g] ..
  // group_start_[g+1]), in canonical rotating order). All pre-sized at
  // construction; a commit allocates nothing. The union-find is
  // version-stamped: a slot whose stamp differs from the current commit
  // epoch reads as the singleton {x}, so a commit never pays an O(n)
  // reset — it touches only the nodes its candidates name.
  std::vector<core::NodeId> uf_parent_;
  std::vector<std::uint64_t> uf_version_;  // stamp of uf_parent_ validity
  std::uint64_t uf_epoch_ = 0;
  std::vector<std::int32_t> group_of_root_;
  std::vector<core::NodeId> touched_roots_;
  std::vector<std::uint32_t> group_start_;   // node_count + 1 slots
  std::vector<std::uint32_t> group_fill_;    // per-group fill cursor
  std::vector<core::NodeId> group_members_;  // flat member arena
  std::size_t group_count_ = 0;
  // Dirty frontier of the current decide call (pre-sized to node_count).
  std::vector<core::NodeId> dirty_nodes_;
  // Sorted list of nodes with a non-null cached candidate, plus the merge
  // scratch decide_swaps folds the frontier through. Both pre-sized; the
  // swap between them keeps the decide phase allocation-free.
  std::vector<core::NodeId> candidate_nodes_;
  std::vector<core::NodeId> candidate_scratch_;
  std::uint64_t last_commit_probes_ = 0;
  // Per-kernel contexts (see the chunk bodies above), plus the fixed
  // chunk grains each kernel resolved at construction (grain is a pure
  // performance knob; an explicit shards setting keeps its partitioning
  // meaning through ParallelTickEngine::resolve_grain).
  std::size_t generate_grain_ = 1;
  std::size_t decide_grain_ = 1;
  std::size_t decohere_grain_ = 1;
  std::uint32_t gen_round_ = 0;
  double gen_frac_ = 0.0;
  const DecideFn* decide_fn_ = nullptr;
  const core::MaxMinBalancer* commit_balancer_ = nullptr;
  const RecheckFn* commit_recheck_ = nullptr;
  std::uint32_t commit_round_ = 0;
  std::uint32_t commit_attempt_ = 0;
  double decohere_now_ = 0.0;

  // Decay state (tracks_pairs() only): sparse metadata buckets keyed by
  // live pairs, mirroring the ledger counts (bucket size == count).
  std::optional<DecayModel> decay_;
  std::optional<PairStore> pair_store_;
  /// One (x, y, dropped) record per bucket the decohere scan purged from;
  /// per-chunk lists so the concurrent phase appends without contention
  /// and the serial merge replays canonical (x, y) order by walking the
  /// lists in chunk order. Capacities persist across rounds (steady state
  /// appends only).
  struct PurgeEntry {
    core::NodeId x = 0;
    core::NodeId y = 0;
    std::uint32_t dropped = 0;
  };
  std::vector<std::vector<PurgeEntry>> purge_entries_;  // per chunk
};

}  // namespace poq::sim
