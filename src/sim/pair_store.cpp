#include "sim/pair_store.hpp"

namespace poq::sim {

PairStore::PairStore(std::size_t node_count) {
  // Seed the map capacity with the sparse expectation (a few live pair
  // types per node); it grows amortized beyond that. Never O(n^2).
  slot_of_.reserve(node_count * 4);
  buckets_.reserve(node_count * 4);
}

std::vector<TrackedPair>& PairStore::bucket(core::NodeId x, core::NodeId y) {
  const auto [it, inserted] =
      slot_of_.try_emplace(key(x, y), static_cast<std::uint32_t>(buckets_.size()));
  if (inserted) buckets_.emplace_back();
  return buckets_[it->second];
}

std::vector<TrackedPair>* PairStore::find(core::NodeId x, core::NodeId y) {
  const auto it = slot_of_.find(key(x, y));
  return it == slot_of_.end() ? nullptr : &buckets_[it->second];
}

const std::vector<TrackedPair>* PairStore::find(core::NodeId x,
                                                core::NodeId y) const {
  const auto it = slot_of_.find(key(x, y));
  return it == slot_of_.end() ? nullptr : &buckets_[it->second];
}

std::uint64_t PairStore::memory_bytes() const {
  // Fixed logical constants: one map entry (key + slot + bucket overhead)
  // plus one vector header per slot, plus the live pairs themselves.
  constexpr std::uint64_t kPerSlotBytes = 16 + 24;
  constexpr std::uint64_t kPerPairBytes = sizeof(TrackedPair);
  std::uint64_t bytes = kPerSlotBytes * buckets_.size();
  for (const std::vector<TrackedPair>& bucket : buckets_) {
    bytes += kPerPairBytes * bucket.size();
  }
  return bytes;
}

}  // namespace poq::sim
