// Sparse per-pair decay-metadata store.
//
// Fidelity-aware protocols track, for every stored Bell pair, when it was
// created and at what fidelity. The natural key is the unordered endpoint
// pair — but a dense triangular array of n(n-1)/2 buckets is the n^2
// allocation that caps runs at a few hundred nodes. The store below keys
// buckets by *live* pairs only: an open-addressed map from the packed
// endpoint pair to a slot in a bucket arena. Memory is O(live pair types
// + bucket capacity high-water mark), independent of n^2.
//
// Concurrency contract (mirrors PairLedger's rows): a bucket is touched
// only by the owner of both its endpoints — the decohere kernel shards
// buckets by their smaller endpoint, and the slice kernels touch only
// their own component's pairs — so bucket mutation never races. Slot
// *creation* (the map insert) happens only on serial paths (add_pair on
// the caller thread); concurrent phases only look up existing slots.
//
// Slots are never unmapped: a bucket that drains to empty keeps its map
// entry and its vector capacity, so the steady state (pairs churning over
// the same generation edges round after round) stops allocating once the
// working set is warm. The ledger invariant `count(x, y) == bucket size`
// means iterating a node's ledger partner row visits exactly the
// non-empty buckets — no store-side iteration order exists or is needed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace poq::sim {

/// One stored Bell pair's decay metadata: when it was created and at what
/// fidelity (F(t) = 1/4 + (F0 - 1/4) e^{-t/T} under storage).
struct TrackedPair {
  double created = 0.0;
  double initial_fidelity = 1.0;
};

/// Sparse map from unordered node pair to its metadata bucket.
class PairStore {
 public:
  explicit PairStore(std::size_t node_count);

  /// Bucket for (x, y), creating an empty one on first touch. Serial
  /// contexts only (may insert into the slot map).
  std::vector<TrackedPair>& bucket(core::NodeId x, core::NodeId y);

  /// Bucket for (x, y) if a slot exists (it may be empty), else nullptr.
  /// Safe concurrently with other lookups and bucket-local mutation of
  /// disjoint pairs.
  [[nodiscard]] std::vector<TrackedPair>* find(core::NodeId x, core::NodeId y);
  [[nodiscard]] const std::vector<TrackedPair>* find(core::NodeId x,
                                                     core::NodeId y) const;

  /// Live pair-type slots (never shrinks; empty buckets keep theirs).
  [[nodiscard]] std::size_t slot_count() const { return buckets_.size(); }

  /// Deterministic logical memory accounting: element counts times fixed
  /// per-element constants, bit-identical across compilers/allocators.
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  [[nodiscard]] static std::uint64_t key(core::NodeId x, core::NodeId y) {
    if (x > y) std::swap(x, y);
    return (static_cast<std::uint64_t>(x) << 32) | y;
  }

  std::unordered_map<std::uint64_t, std::uint32_t> slot_of_;
  std::vector<std::vector<TrackedPair>> buckets_;
};

}  // namespace poq::sim
