#include "sim/parallel_engine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace poq::sim {

unsigned ParallelTickEngine::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

std::pair<std::size_t, std::size_t> ParallelTickEngine::shard_range(
    std::size_t items, std::size_t shard_count, std::size_t shard) {
  require(shard_count > 0, "shard_range: shard_count must be positive");
  require(shard < shard_count, "shard_range: shard out of range");
  const std::size_t base = items / shard_count;
  const std::size_t extra = items % shard_count;
  // First `extra` shards carry one extra item; offsets stay contiguous.
  const std::size_t begin = shard * base + std::min(shard, extra);
  const std::size_t size = base + (shard < extra ? 1 : 0);
  return {begin, begin + size};
}

std::size_t ParallelTickEngine::resolve_shards(std::uint32_t requested,
                                               std::size_t items) const {
  if (requested != 0) return requested;
  // A few shards per thread keeps the pool balanced when per-entity cost
  // varies (hub nodes cost more in the swap scan than leaves). Shards are
  // a pure partitioning knob, so the auto value never affects results.
  const std::size_t auto_shards = static_cast<std::size_t>(threads_) * 4;
  return std::max<std::size_t>(
      1, std::min(auto_shards, std::max<std::size_t>(items, 1)));
}

ParallelTickEngine::ParallelTickEngine(unsigned threads)
    : threads_(resolve_threads(threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelTickEngine::~ParallelTickEngine() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ParallelTickEngine::drain(const std::shared_ptr<Job>& job) {
  // Claim shard indices off the job's counter until it drains. A stale
  // drain (a worker waking after the job completed) claims an exhausted
  // index and returns without touching the callback, so the callback
  // reference is never dereferenced after run_shards returns.
  while (true) {
    const std::size_t shard = job->next.fetch_add(1, std::memory_order_relaxed);
    if (shard >= job->shards) return;
    std::exception_ptr failure;
    try {
      (*job->fn)(shard);
    } catch (...) {
      failure = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (failure && !job->error) job->error = failure;
      if (++job->completed == job->shards) done_cv_.notify_all();
    }
  }
}

void ParallelTickEngine::worker_loop() {
  std::uint64_t seen_job = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || job_id_ != seen_job; });
      if (shutdown_) return;
      seen_job = job_id_;
      job = job_;
    }
    if (job) drain(job);
  }
}

void ParallelTickEngine::run_shards(
    std::size_t shard_count, const std::function<void(std::size_t)>& shard_fn) {
  if (shard_count == 0) return;
  if (threads_ == 1 || shard_count == 1) {
    // Inline fast path: no atomics, no handshake. Exceptions propagate
    // directly, matching the pooled path's first-failure semantics.
    for (std::size_t shard = 0; shard < shard_count; ++shard) shard_fn(shard);
    return;
  }
  std::shared_ptr<Job> job;
  if (spare_ && spare_.use_count() == 1) {
    // No late-waking worker still holds the previous phase's Job, so its
    // allocation can be reused — the steady state allocates nothing.
    job = spare_;
    job->error = nullptr;
  } else {
    job = std::make_shared<Job>();
    spare_ = job;
  }
  job->fn = &shard_fn;
  job->shards = shard_count;
  job->next.store(0, std::memory_order_relaxed);
  job->completed = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++job_id_;
  }
  work_cv_.notify_all();
  drain(job);  // the caller is a pool member too
  std::exception_ptr failure;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job->completed == job->shards; });
    if (job_ == job) job_.reset();
    failure = job->error;
  }
  if (failure) std::rethrow_exception(failure);
}

}  // namespace poq::sim
