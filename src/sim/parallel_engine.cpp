#include "sim/parallel_engine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace poq::sim {

unsigned ParallelTickEngine::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

std::pair<std::size_t, std::size_t> ParallelTickEngine::shard_range(
    std::size_t items, std::size_t shard_count, std::size_t shard) {
  require(shard_count > 0, "shard_range: shard_count must be positive");
  require(shard < shard_count, "shard_range: shard out of range");
  const std::size_t base = items / shard_count;
  const std::size_t extra = items % shard_count;
  // First `extra` shards carry one extra item; offsets stay contiguous.
  const std::size_t begin = shard * base + std::min(shard, extra);
  const std::size_t size = base + (shard < extra ? 1 : 0);
  return {begin, begin + size};
}

std::size_t ParallelTickEngine::resolve_shards(std::uint32_t requested,
                                               std::size_t items) const {
  if (requested != 0) return requested;
  // A few shards per thread keeps the pool balanced when per-entity cost
  // varies (hub nodes cost more in the swap scan than leaves). Shards are
  // a pure partitioning knob, so the auto value never affects results.
  const std::size_t auto_shards = static_cast<std::size_t>(threads_) * 4;
  return std::max<std::size_t>(
      1, std::min(auto_shards, std::max<std::size_t>(items, 1)));
}

std::size_t ParallelTickEngine::resolve_grain(std::uint32_t requested_shards,
                                              std::size_t items,
                                              std::size_t default_grain) {
  if (requested_shards == 0) return std::max<std::size_t>(1, default_grain);
  // An explicit shards knob keeps its pre-chunking meaning: partition the
  // range into that many near-equal chunks.
  return std::max<std::size_t>(1,
                               (items + requested_shards - 1) / requested_shards);
}

ParallelTickEngine::ParallelTickEngine(unsigned threads)
    : threads_(resolve_threads(threads)) {
  // Adapter bodies are built once; each captures only `this` so the
  // std::function stays in its small-object buffer and a phase dispatch
  // never allocates.
  shard_body_ = [this](std::size_t index, unsigned) { (*shard_fn_)(index); };
  chunk_body_ = [this](std::size_t chunk, unsigned worker) {
    run_one_chunk(chunk, worker);
  };
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ParallelTickEngine::~ParallelTickEngine() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ParallelTickEngine::drain(const std::shared_ptr<Job>& job,
                               unsigned worker) {
  // Claim work indices off the job's counter until it drains — this
  // atomic cursor IS the work-stealing: a worker that finishes a cheap
  // chunk immediately claims the next canonical index, so a skewed range
  // never serializes on one pre-assigned partition. A stale drain (a
  // worker waking after the job completed) claims an exhausted index and
  // returns without touching the callback, so the callback reference is
  // never dereferenced after the dispatching call returns.
  while (true) {
    const std::size_t index = job->next.fetch_add(1, std::memory_order_relaxed);
    if (index >= job->shards) return;
    std::exception_ptr failure;
    try {
      (*job->fn)(index, worker);
    } catch (...) {
      failure = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (failure && !job->error) job->error = failure;
      if (++job->completed == job->shards) done_cv_.notify_all();
    }
  }
}

void ParallelTickEngine::worker_loop(unsigned worker) {
  std::uint64_t seen_job = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || job_id_ != seen_job; });
      if (shutdown_) return;
      seen_job = job_id_;
      job = job_;
    }
    if (job) drain(job, worker);
  }
}

void ParallelTickEngine::dispatch(
    std::size_t count, const std::function<void(std::size_t, unsigned)>& body) {
  std::shared_ptr<Job> job;
  if (spare_ && spare_.use_count() == 1) {
    // No late-waking worker still holds the previous phase's Job, so its
    // allocation can be reused — the steady state allocates nothing.
    job = spare_;
    job->error = nullptr;
  } else {
    job = std::make_shared<Job>();
    spare_ = job;
  }
  job->fn = &body;
  job->shards = count;
  job->next.store(0, std::memory_order_relaxed);
  job->completed = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++job_id_;
  }
  work_cv_.notify_all();
  drain(job, /*worker=*/0);  // the caller is a pool member too
  std::exception_ptr failure;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job->completed == job->shards; });
    if (job_ == job) job_.reset();
    failure = job->error;
  }
  if (failure) std::rethrow_exception(failure);
}

void ParallelTickEngine::run_shards(
    std::size_t shard_count, const std::function<void(std::size_t)>& shard_fn) {
  if (shard_count == 0) return;
  if (threads_ == 1 || shard_count == 1) {
    // Inline fast path: no atomics, no handshake. Exceptions propagate
    // directly, matching the pooled path's first-failure semantics.
    for (std::size_t shard = 0; shard < shard_count; ++shard) shard_fn(shard);
    return;
  }
  shard_fn_ = &shard_fn;
  dispatch(shard_count, shard_body_);
  shard_fn_ = nullptr;
}

void ParallelTickEngine::run_one_chunk(std::size_t chunk, unsigned worker) {
  const std::size_t begin = chunk * chunk_grain_;
  const std::size_t end = std::min(begin + chunk_grain_, chunk_items_);
  if (chunk_load_ == nullptr) {
    (*chunk_fn_)(begin, end, worker);
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  (*chunk_fn_)(begin, end, worker);
  const auto elapsed = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  // Concurrent workers accumulate into the same load record; relaxed
  // atomics suffice (the phase barrier orders the final read).
  std::atomic_ref<std::uint64_t>(chunk_load_->total_ns)
      .fetch_add(elapsed, std::memory_order_relaxed);
  std::atomic_ref<std::uint64_t>(chunk_load_->chunks)
      .fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<std::uint64_t> max_ref(chunk_load_->max_ns);
  std::uint64_t seen = max_ref.load(std::memory_order_relaxed);
  while (elapsed > seen &&
         !max_ref.compare_exchange_weak(seen, elapsed,
                                        std::memory_order_relaxed)) {
  }
}

void ParallelTickEngine::run_chunks(std::size_t items, std::size_t grain,
                                    ChunkLoad* load, const ChunkFn& chunk_fn) {
  if (items == 0) return;
  require(grain > 0, "run_chunks: grain must be positive");
  const std::size_t chunk_count = (items + grain - 1) / grain;
  chunk_fn_ = &chunk_fn;
  chunk_items_ = items;
  chunk_grain_ = grain;
  chunk_load_ = load;
  if (threads_ == 1 || chunk_count == 1) {
    // Inline fast path: same canonical chunk walk, no handshake. The
    // load accounting still runs so shard_imbalance is observable at
    // every threads setting.
    for (std::size_t chunk = 0; chunk < chunk_count; ++chunk) {
      run_one_chunk(chunk, /*worker=*/0);
    }
  } else {
    dispatch(chunk_count, chunk_body_);
  }
  chunk_fn_ = nullptr;
  chunk_load_ = nullptr;
}

}  // namespace poq::sim
