// Intra-run parallel tick engine.
//
// The round-based simulators decompose each tick into phases whose work
// factors over independent entities (generation over edges, swap decisions
// over nodes). ParallelTickEngine is the worker pool that executes such a
// phase: the caller partitions the entity range into `shard_count` shards
// and the pool runs one callback per shard across its threads, blocking
// until every shard has finished.
//
// Determinism contract (leaned on by the parallel_determinism test suite
// and the BENCH_parallel_scaling gate): the engine itself never introduces
// nondeterminism. Shards are identified by index, randomness comes from
// counter-based streams keyed per entity (util::Rng::keyed), and callers
// merge shard effects in canonical shard order — so a run's results are
// bit-identical for every thread count and every shard count. Threads and
// shards are pure performance knobs.
//
// The pool threads are created once and parked on a condition variable
// between phases, so driving ~10^4 rounds × 2 phases through the engine
// costs two notify/wait handshakes per phase, not two thread spawns. With
// one thread (or one shard) the engine runs inline on the caller with no
// synchronization at all.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace poq::sim {

/// Which tick discipline drives a round-based simulator.
enum class TickMode {
  /// Legacy single-stream loop: one thread, one RNG stream per subsystem,
  /// the swap sweep strictly sequential (each node observes every earlier
  /// swap of the same round).
  kSequential,
  /// Sharded deterministic engine: generation draws from counter-based
  /// per-(round, edge) streams, swap decisions are computed against the
  /// post-generation snapshot (in parallel across node shards) and
  /// committed in canonical node order with per-(round, node) streams.
  /// Results are bit-identical for every threads/shards setting; they
  /// differ from kSequential, whose stream discipline and in-sweep
  /// visibility are inherently serial.
  kSharded,
};

/// Stream tags for the counter-based RNG keying used by sharded phases:
/// util::Rng::keyed(seed, tag, round, entity). Distinct tags keep phase
/// streams decorrelated however rounds and entity ids collide.
namespace stream_tag {
inline constexpr std::uint64_t kGeneration = 0x67656E65726174ULL;  // "generat"
inline constexpr std::uint64_t kSwap = 0x73776170ULL;              // "swap"
inline constexpr std::uint64_t kGossip = 0x676F73736970ULL;        // "gossip"
inline constexpr std::uint64_t kEventTimes = 0x6576656E74ULL;      // "event"
inline constexpr std::uint64_t kEventDraw = 0x64726177ULL;         // "draw"
// Vertex-program epochs (distributed, async_routing): per-(epoch, node)
// scan/report schedules, per-(epoch, node) swap correction bits, and the
// per-epoch request arrival stream.
inline constexpr std::uint64_t kScan = 0x7363616EULL;      // "scan"
inline constexpr std::uint64_t kReport = 0x7265706F7274ULL;  // "report"
inline constexpr std::uint64_t kSwapBits = 0x73626974ULL;  // "sbit"
inline constexpr std::uint64_t kArrival = 0x61727276ULL;   // "arrv"
// Streaming consumption workload (balancing family): the per-round
// request-arrival draw keyed (seed, tag, round, 0), and the lazy
// consumer-pool pair derivation keyed (seed, tag, pool index, 0) — the
// pool itself is never materialized.
inline constexpr std::uint64_t kConsumerArrival = 0x63617272ULL;  // "carr"
inline constexpr std::uint64_t kConsumerPair = 0x63706169ULL;     // "cpai"
// Fault-injection phase (sim::FaultPlan): per-(round, node) crash/recover
// transitions, per-(round, edge) link down/up transitions, and the
// per-round generation-rate degradation draw. Serial phase — the keying
// only guarantees the streams stay decorrelated from every kernel above.
inline constexpr std::uint64_t kFaultNode = 0x666C746EULL;  // "fltn"
inline constexpr std::uint64_t kFaultLink = 0x666C746CULL;  // "fltl"
inline constexpr std::uint64_t kFaultRate = 0x666C7472ULL;  // "fltr"
}  // namespace stream_tag

/// The intra-run concurrency knobs every ported simulator carries.
struct TickConcurrency {
  TickMode mode = TickMode::kSequential;
  /// Worker threads for the sharded engine (0 = hardware). Never affects
  /// results.
  std::uint32_t threads = 1;
  /// Work shards per phase (0 = auto). Never affects results.
  std::uint32_t shards = 0;
  /// Incremental dirty-set swap decide: re-run best_swap only over the
  /// nodes whose readable counts changed since their last decision
  /// (false = full rescan every round). An unchanged readable view
  /// implies an unchanged decision, so this never affects results either
  /// — it is the steady-state hot-path knob the BENCH_hotpath suite
  /// measures.
  bool incremental_decide = true;
};

/// Per-phase chunk-load accounting from the dynamic chunk scheduler:
/// max/total wall-clock across the chunks a phase dispatched, cumulative
/// over a run. max/(total/chunks) is the scheduler's load-imbalance
/// signal (1.0 = perfectly even chunks), surfaced as the shard_imbalance
/// timings. Observability only — never part of the determinism contract.
struct ChunkLoad {
  std::uint64_t max_ns = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t chunks = 0;
  /// Max-over-mean chunk time (0 when the phase never dispatched chunks).
  [[nodiscard]] double imbalance() const {
    if (chunks == 0 || total_ns == 0) return 0.0;
    return static_cast<double>(max_ns) * static_cast<double>(chunks) /
           static_cast<double>(total_ns);
  }
};

/// Cumulative wall-clock nanoseconds spent in each phase kernel of one
/// run. Pure observability: timings ride along in RunMetrics/BENCH JSON
/// but are explicitly outside the determinism contract (like wall_ms) and
/// are never compared by the regression gates.
struct PhaseTimers {
  std::uint64_t generate_ns = 0;
  std::uint64_t decide_ns = 0;
  std::uint64_t commit_ns = 0;
  std::uint64_t decohere_ns = 0;
  ChunkLoad generate_load;
  ChunkLoad decide_load;
  ChunkLoad decohere_load;
};

/// RAII accumulator for one PhaseTimers field: adds the scope's elapsed
/// wall-clock on destruction. The single timing implementation for every
/// phase accounting site (NetworkState kernels, the fidelity slice
/// kernels, the sequential sweep).
class PhaseStopwatch {
 public:
  explicit PhaseStopwatch(std::uint64_t& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~PhaseStopwatch() {
    sink_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  PhaseStopwatch(const PhaseStopwatch&) = delete;
  PhaseStopwatch& operator=(const PhaseStopwatch&) = delete;

 private:
  std::uint64_t& sink_;
  std::chrono::steady_clock::time_point start_;
};

class ParallelTickEngine {
 public:
  /// `threads` = worker threads the engine may use, caller included;
  /// 0 = hardware concurrency. The pool spawns threads-1 workers.
  explicit ParallelTickEngine(unsigned threads = 0);
  ~ParallelTickEngine();

  ParallelTickEngine(const ParallelTickEngine&) = delete;
  ParallelTickEngine& operator=(const ParallelTickEngine&) = delete;

  [[nodiscard]] unsigned thread_count() const { return threads_; }

  /// Execute `shard_fn(shard)` for every shard in [0, shard_count), fanned
  /// across the pool (the calling thread participates). Blocks until all
  /// shards complete; the first exception thrown by any shard is rethrown
  /// on the caller after the phase drains. Not reentrant: a shard callback
  /// must not call back into the same engine.
  void run_shards(std::size_t shard_count,
                  const std::function<void(std::size_t)>& shard_fn);

  /// Chunked dynamic scheduling (deterministic work stealing): split
  /// [0, items) into canonical contiguous chunks of `grain` entities
  /// (the last chunk may be short) and run
  /// `chunk_fn(begin, end, worker)` for each, with chunks claimed off an
  /// atomic cursor by whichever worker is free. Chunk boundaries depend
  /// only on (items, grain) — never on the thread count or the claiming
  /// schedule — so per-chunk effects merged in ascending chunk order
  /// replay canonical entity order and results are bit-identical at every
  /// threads setting. `worker` (< thread_count(), 0 = the caller) indexes
  /// per-worker scratch only; results must never depend on it. When
  /// `load` is non-null each chunk's wall-clock is accumulated into it
  /// (max/total/count) for the shard_imbalance observability. Blocks
  /// until all chunks complete; first exception rethrown on the caller.
  /// Not reentrant.
  using ChunkFn = std::function<void(std::size_t begin, std::size_t end,
                                     unsigned worker)>;
  void run_chunks(std::size_t items, std::size_t grain, ChunkLoad* load,
                  const ChunkFn& chunk_fn);

  /// Resolve a threads knob: 0 = hardware concurrency (minimum 1).
  [[nodiscard]] static unsigned resolve_threads(unsigned requested);

  /// Resolve the chunk grain for `items` entities: an explicit shards
  /// knob partitions the range into that many near-equal chunks (its
  /// pre-chunking meaning); 0 = auto, the kernel's default grain. Pure
  /// performance knob — grain never affects results.
  [[nodiscard]] static std::size_t resolve_grain(std::uint32_t requested_shards,
                                                 std::size_t items,
                                                 std::size_t default_grain);

  /// Contiguous [begin, end) range of shard `shard` when `items` entities
  /// are split into `shard_count` near-equal blocks. Trailing shards may
  /// be empty when shard_count > items (n-smaller-than-shards is legal).
  [[nodiscard]] static std::pair<std::size_t, std::size_t> shard_range(
      std::size_t items, std::size_t shard_count, std::size_t shard);

  /// Resolve a shards knob for `items` entities: explicit values pass
  /// through; 0 = auto (a few shards per pool thread, for balance).
  [[nodiscard]] std::size_t resolve_shards(std::uint32_t requested,
                                           std::size_t items) const;

 private:
  /// One run_shards/run_chunks call. Heap-allocated and shared so a
  /// worker waking late for an already-finished phase operates on that
  /// phase's own (exhausted) counter instead of racing the next phase's
  /// state. `fn` takes (index, worker): run_shards and run_chunks adapt
  /// their callbacks through the pre-built members below, so dispatching
  /// a phase never constructs (or allocates) a std::function.
  struct Job {
    const std::function<void(std::size_t, unsigned)>* fn = nullptr;
    std::size_t shards = 0;
    std::atomic<std::size_t> next{0};
    std::size_t completed = 0;  // guarded by mutex_
    std::exception_ptr error;   // first failure, guarded by mutex_
  };

  void worker_loop(unsigned worker);
  void drain(const std::shared_ptr<Job>& job, unsigned worker);
  void dispatch(std::size_t count,
                const std::function<void(std::size_t, unsigned)>& body);
  void run_one_chunk(std::size_t chunk, unsigned worker);

  unsigned threads_ = 1;

  // Phase contexts for the pre-built adapter bodies (single-word lambda
  // captures keep the std::function in its small-object buffer; the
  // contexts live here because run_* is not reentrant anyway).
  const std::function<void(std::size_t)>* shard_fn_ = nullptr;
  const ChunkFn* chunk_fn_ = nullptr;
  std::size_t chunk_items_ = 0;
  std::size_t chunk_grain_ = 1;
  ChunkLoad* chunk_load_ = nullptr;
  std::function<void(std::size_t, unsigned)> shard_body_;
  std::function<void(std::size_t, unsigned)> chunk_body_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  std::uint64_t job_id_ = 0;     // bumps once per run_shards call
  std::shared_ptr<Job> job_;     // current phase, guarded by mutex_
  /// Recycled Job allocation: reused when no late-waking worker still
  /// holds a reference (use_count == 1), so steady-state phases allocate
  /// nothing. Only touched by the run_shards caller.
  std::shared_ptr<Job> spare_;

  std::vector<std::thread> workers_;
};

}  // namespace poq::sim
