#include "sim/vertex_program.hpp"

#include "util/error.hpp"

namespace poq::sim {

SignalSet::SignalSet(std::size_t vertex_count) : bits_(vertex_count, 0) {
  require(vertex_count > 0, "SignalSet: vertex_count must be positive");
  budget_.store(kBudgetPerVertex * static_cast<std::int64_t>(vertex_count),
                std::memory_order_relaxed);
}

void SignalSet::signal(std::uint32_t vertex) {
  if (relaxed(bits_[vertex]).exchange(1, std::memory_order_relaxed) == 0) {
    count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SignalSet::signal_all() {
  std::size_t marked = 0;
  for (std::uint8_t& byte : bits_) {
    if (relaxed(byte).exchange(1, std::memory_order_relaxed) == 0) ++marked;
  }
  count_.fetch_add(marked, std::memory_order_relaxed);
}

bool SignalSet::charge(std::size_t cost) {
  if (overflow_.load(std::memory_order_relaxed) != 0) return false;
  const std::int64_t left = budget_.fetch_sub(
      static_cast<std::int64_t>(cost), std::memory_order_relaxed);
  if (left < static_cast<std::int64_t>(cost)) {
    overflow_.store(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool SignalSet::test(std::uint32_t vertex) const {
  if (overflow_.load(std::memory_order_relaxed) != 0) return true;
  return relaxed(bits_[vertex]).load(std::memory_order_relaxed) != 0;
}

void SignalSet::clear(std::uint32_t vertex) {
  if (overflow_.load(std::memory_order_relaxed) != 0) return;
  if (relaxed(bits_[vertex]).exchange(0, std::memory_order_relaxed) != 0) {
    count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::size_t SignalSet::signaled_count() const {
  if (overflow_.load(std::memory_order_relaxed) != 0) return bits_.size();
  return count_.load(std::memory_order_relaxed);
}

void SignalSet::reset_budget() {
  if (overflow_.load(std::memory_order_relaxed) != 0) {
    // The epoch lost precision: everything counts as signaled. Convert the
    // latch back to explicit marks so per-vertex clear() works again.
    overflow_.store(0, std::memory_order_relaxed);
    signal_all();
  }
  budget_.store(kBudgetPerVertex * static_cast<std::int64_t>(bits_.size()),
                std::memory_order_relaxed);
}

std::size_t SignalSet::drain(std::vector<std::uint32_t>& out) {
  const std::size_t before = out.size();
  if (overflow_.load(std::memory_order_relaxed) != 0) {
    overflow_.store(0, std::memory_order_relaxed);
    for (std::uint32_t v = 0; v < bits_.size(); ++v) {
      bits_[v] = 0;
      out.push_back(v);
    }
    count_.store(0, std::memory_order_relaxed);
    return out.size() - before;
  }
  if (count_.load(std::memory_order_relaxed) == 0) return 0;
  for (std::uint32_t v = 0; v < bits_.size(); ++v) {
    if (bits_[v] != 0) {
      bits_[v] = 0;
      out.push_back(v);
    }
  }
  count_.store(0, std::memory_order_relaxed);
  return out.size() - before;
}

}  // namespace poq::sim
