// Message-driven vertex-program substrate.
//
// The phase-kernel protocols share state through the PairLedger; the
// control-plane protocols (distributed, async_routing) share nothing —
// each node owns local state, learns about the rest of the network only
// through typed messages, and acts when something it can observe changed.
// VertexProgram is the substrate for that second family, in the
// signal/apply/scatter shape of GraphLab-style vertex programs:
//
//   * nodes hold local state (owned by the driver, one slot per vertex);
//   * an *apply* kernel consumes each vertex's inbox and may mutate only
//     that vertex's state;
//   * sends go through per-shard outboxes and *signal* marks the vertices
//     whose cached decisions must be recomputed.
//
// Time advances in epochs (fixed dt chosen by the driver). Within an
// epoch the driver alternates parallel kernels (fanned across the
// ParallelTickEngine worker pool) with serial canonical phases that may
// touch shared state (ground-truth physics, the ledger).
//
// Determinism contract — canonical message merge: every message has a
// canonical position (deliver epoch, send phase, sender, per-sender send
// index), independent of the threads/shards partitioning:
//   * a parallel kernel iterates an ascending entity list; shard s covers
//     a contiguous ascending slice, so concatenating the per-shard
//     outboxes in shard order yields ascending-sender, program-send-order
//     — the same sequence for every shard count (seal() per kernel keeps
//     different kernels' sends from interleaving shard-wise);
//   * serial-phase sends append after the epoch's sealed kernels in call
//     order, which is itself canonical;
//   * delivery walks the due queue in that canonical order, so each
//     target's inbox is folded in a fixed sequence however many workers
//     carried the messages.
// With all randomness drawn from counter-based keyed streams
// (util::Rng::keyed per (tag, epoch, entity)), a vertex program's results
// are bit-identical for every threads/shards setting, and the sequential
// engine (no pool) is the shard_count = 1 special case of the same code.
//
// The signaled-set reuses the PairLedger dirty-set discipline: relaxed
// atomic marks (safe from concurrent kernels), a per-epoch marking budget
// for fan-out marking loops, and an overflow latch that degrades to
// everything-signaled rather than paying unbounded precision (dense
// regimes recompute everything anyway).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "sim/parallel_engine.hpp"
#include "util/error.hpp"

namespace poq::sim {

/// The vertices whose cached decisions must be recomputed because their
/// readable state changed. PairLedger dirty-set discipline: O(1) relaxed
/// atomic marks, a per-epoch budget charged by fan-out marking loops, and
/// an overflow latch that converts to everything-signaled at the epoch
/// boundary.
class SignalSet {
 public:
  /// Precision budget for fan-out marking loops, per vertex per epoch
  /// (mirrors PairLedger::kMarkingBudgetPerNode).
  static constexpr std::int64_t kBudgetPerVertex = 8;

  explicit SignalSet(std::size_t vertex_count);

  [[nodiscard]] std::size_t vertex_count() const { return bits_.size(); }

  /// Mark one vertex. Thread-safe (relaxed), callable from kernels.
  void signal(std::uint32_t vertex);
  /// Mark every vertex (serial).
  void signal_all();

  /// Charge `cost` against the epoch's marking budget before a fan-out
  /// marking loop of that size. Returns false — and latches the overflow
  /// — once the epoch's scans have cost more than the budget; the caller
  /// skips its loop (the latch makes everything signaled instead).
  /// Thread-safe (relaxed).
  bool charge(std::size_t cost);
  [[nodiscard]] bool overflowed() const {
    return overflow_.load(std::memory_order_relaxed) != 0;
  }

  /// Whether `vertex` is signaled (everything is, under the latch).
  [[nodiscard]] bool test(std::uint32_t vertex) const;
  /// Clear one vertex's mark (no-op under the latch — precision is gone
  /// for the epoch). Thread-safe against concurrent marks of *other*
  /// vertices; callers clear only vertices they own.
  void clear(std::uint32_t vertex);
  [[nodiscard]] std::size_t signaled_count() const;

  /// Epoch boundary: refill the budget; if the epoch overflowed, convert
  /// the latch back to bits conservatively (everything signaled).
  void reset_budget();

  /// Append all signaled vertices to `out` in ascending order and clear
  /// every mark (serial).
  std::size_t drain(std::vector<std::uint32_t>& out);

 private:
  [[nodiscard]] std::atomic<std::uint8_t>& relaxed(std::uint8_t& byte) const {
    return reinterpret_cast<std::atomic<std::uint8_t>&>(byte);
  }

  mutable std::vector<std::uint8_t> bits_;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::int64_t> budget_{0};
  std::atomic<std::uint8_t> overflow_{0};
};

/// Typed message substrate for one vertex program. `Message` is the
/// driver's payload type (a struct or a std::variant for multi-kind
/// protocols). The driver owns the per-vertex state and the epoch loop;
/// VertexProgram owns delivery, the canonical merge, and the signals.
template <typename Message>
class VertexProgram {
 public:
  /// Per-shard send/signal surface handed to parallel kernels. Sends are
  /// buffered per shard and merged canonically at seal(); signals go to
  /// the shared SignalSet (relaxed marks).
  class Context {
   public:
    /// Queue `payload` for `target`, `delay_epochs` epochs from now.
    /// Parallel kernels cannot deliver into the epoch they run in, so the
    /// delay is clamped to >= 1; sub-epoch latencies are the driver's
    /// serial phase's business.
    void send(std::uint32_t target, std::uint64_t delay_epochs,
              Message payload) {
      outbox_.push_back(Pending{std::max<std::uint64_t>(1, delay_epochs),
                                target, std::move(payload)});
    }
    void signal(std::uint32_t vertex) { signals_->signal(vertex); }

   private:
    friend class VertexProgram;
    struct Pending {
      std::uint64_t delay = 1;
      std::uint32_t target = 0;
      Message payload;
    };
    std::vector<Pending> outbox_;
    SignalSet* signals_ = nullptr;
  };

  /// `pool` may be null (sequential engine): kernels then run inline on
  /// the caller with one shard — the same canonical orders, bit for bit.
  VertexProgram(std::size_t vertex_count, ParallelTickEngine* pool,
                std::size_t shard_count)
      : vertex_count_(vertex_count),
        pool_(pool),
        shard_count_(pool == nullptr ? 1 : std::max<std::size_t>(1, shard_count)),
        signals_(vertex_count),
        contexts_(shard_count_),
        inboxes_(vertex_count) {
    for (Context& context : contexts_) context.signals_ = &signals_;
  }

  [[nodiscard]] std::size_t vertex_count() const { return vertex_count_; }
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  [[nodiscard]] SignalSet& signals() { return signals_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return messages_delivered_;
  }

  /// Move the messages due at `epoch` into per-target inboxes, folding
  /// each inbox in canonical order, and return the targets with non-empty
  /// inboxes (ascending). Serial; call once per epoch, before kernels.
  const std::vector<std::uint32_t>& deliver(std::uint64_t epoch) {
    epoch_ = epoch;
    for (const std::uint32_t target : active_) inboxes_[target].clear();
    active_.clear();
    const auto due = pending_.find(epoch);
    if (due == pending_.end()) return active_;
    for (Envelope& envelope : due->second) {
      if (inboxes_[envelope.target].empty()) active_.push_back(envelope.target);
      inboxes_[envelope.target].push_back(std::move(envelope.payload));
      ++messages_delivered_;
    }
    pending_.erase(due);
    std::sort(active_.begin(), active_.end());
    return active_;
  }

  /// The targets returned by the last deliver() (ascending).
  [[nodiscard]] const std::vector<std::uint32_t>& active() const {
    return active_;
  }

  /// This epoch's inbox of `target`, in canonical merge order.
  [[nodiscard]] std::span<const Message> inbox(std::uint32_t target) const {
    return inboxes_[target];
  }

  /// Run `kernel(shard, context)` over every shard, fanned across the
  /// pool (inline when sequential). The kernel must partition its entity
  /// list with ParallelTickEngine::shard_range over shard_count() shards
  /// — ascending contiguous slices are what make seal() canonical.
  template <typename Kernel>
  void run_kernel(Kernel&& kernel) {
    if (pool_ == nullptr) {
      kernel(std::size_t{0}, contexts_[0]);
      seal();
      return;
    }
    pool_->run_shards(shard_count_, [this, &kernel](std::size_t shard) {
      kernel(shard, contexts_[shard]);
    });
    seal();
  }

  /// Serial-phase send: appends after everything the epoch's sealed
  /// kernels queued, in call order (canonical by construction).
  /// `delay_epochs` must be >= 1 — a serial phase applies sub-epoch
  /// effects itself instead of mailing them.
  void send(std::uint32_t target, std::uint64_t delay_epochs, Message payload) {
    require(delay_epochs >= 1,
            "VertexProgram::send: serial sends deliver next epoch at the "
            "earliest (apply sub-epoch effects directly)");
    pending_[epoch_ + delay_epochs].push_back(
        Envelope{target, std::move(payload)});
    ++messages_sent_;
  }

  /// Whether any message is still queued for a future epoch.
  [[nodiscard]] bool idle() const { return pending_.empty(); }

 private:
  struct Envelope {
    std::uint32_t target = 0;
    Message payload;
  };

  /// Merge the per-shard outboxes into the pending queue in canonical
  /// order: shard 0..S-1 concatenation == ascending-sender program order
  /// for every S, because each kernel walks an ascending contiguous
  /// entity slice per shard.
  void seal() {
    for (Context& context : contexts_) {
      for (typename Context::Pending& pending : context.outbox_) {
        pending_[epoch_ + pending.delay].push_back(
            Envelope{pending.target, std::move(pending.payload)});
        ++messages_sent_;
      }
      context.outbox_.clear();
    }
  }

  std::size_t vertex_count_;
  ParallelTickEngine* pool_;
  std::size_t shard_count_;
  SignalSet signals_;
  std::vector<Context> contexts_;
  std::uint64_t epoch_ = 0;
  /// deliver_epoch -> envelopes in canonical order. Keyed lookups only;
  /// the map's iteration order is never observed beyond the due bucket.
  std::map<std::uint64_t, std::vector<Envelope>> pending_;
  std::vector<std::vector<Message>> inboxes_;
  std::vector<std::uint32_t> active_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
};

}  // namespace poq::sim
