#include "util/args.hpp"

#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (!starts_with(token, "--")) {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    require(!body.empty(), "ArgParser: bare '--' is not a valid option");
    const std::size_t equals = body.find('=');
    if (equals != std::string::npos) {
      options_[body.substr(0, equals)] = body.substr(equals + 1);
      continue;
    }
    // `--name value` when the next token is not itself an option.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  touched_[name] = true;
  return options_.contains(name);
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  touched_[name] = true;
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name, std::int64_t fallback) const {
  touched_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  require(end != nullptr && *end == '\0' && !it->second.empty(),
          str_cat("ArgParser: --", name, " expects an integer, got '", it->second,
                  "'"));
  return value;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  touched_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  require(end != nullptr && *end == '\0' && !it->second.empty(),
          str_cat("ArgParser: --", name, " expects a number, got '", it->second,
                  "'"));
  return value;
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  touched_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw PreconditionError(
      str_cat("ArgParser: --", name, " expects a boolean, got '", it->second, "'"));
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> result;
  for (const auto& [name, value] : options_) {
    if (!touched_.contains(name)) result.push_back(name);
  }
  return result;
}

}  // namespace poq::util
