// Minimal command-line argument parsing for the poqnet tools.
//
// Supports `--name value`, `--name=value` and boolean `--flag` syntax with
// typed accessors and defaults; unknown options are an error so typos
// fail loudly rather than silently running a default experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace poq::util {

class ArgParser {
 public:
  /// Parse argv; positional arguments (no leading --) are collected in
  /// order. Throws PreconditionError on malformed input.
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// True if `--name` was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  /// A bare `--flag` or `--flag true|1` reads as true.
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Names that were provided but never read by any accessor; callers use
  /// this to reject typos after reading everything they understand.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> options_;  // name -> raw value ("" = bare)
  mutable std::map<std::string, bool> touched_;
  std::vector<std::string> positional_;
};

}  // namespace poq::util
