#include "util/cancel.hpp"

namespace poq::util {

namespace {
thread_local const CancelToken* t_active_token = nullptr;
}  // namespace

ScopedCancel::ScopedCancel(const CancelToken* token)
    : previous_(t_active_token) {
  t_active_token = token;
}

ScopedCancel::~ScopedCancel() { t_active_token = previous_; }

bool this_thread_cancelled() {
  return t_active_token != nullptr && t_active_token->requested();
}

void this_thread_check_cancelled() {
  if (this_thread_cancelled()) throw OperationCancelled();
}

}  // namespace poq::util
