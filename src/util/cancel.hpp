// Cooperative cancellation for long-running simulations.
//
// A CancelToken is a shared flag a controller (the serve job manager, a
// sweep driver, a test) sets to ask in-flight work to stop. The work side
// never takes a token parameter: the driver installs the token on its own
// thread with a ScopedCancel, and the core round/epoch loops poll
// this_thread_cancelled() once per round — one thread_local read plus one
// relaxed atomic load, cheap enough for hot loops. When the flag is set
// the loop throws OperationCancelled, which unwinds through RAII back to
// the installer (the sweep worker or serve job runner), so a cancelled
// run leaves no partial results behind.
//
// The token is installed per thread on purpose: a sweep fans (cell, seed)
// tasks across workers, and each worker installs the job's token only
// while running its task, so cancelling one job never aborts unrelated
// work sharing the pool. Engine pool threads inside a run do not see the
// token; the driver thread's per-round check bounds the cancellation
// latency at one round/slice/epoch, which is the granularity the
// determinism contract needs anyway (completed cells stay bit-identical,
// cancelled cells are excluded whole).
#pragma once

#include <atomic>
#include <stdexcept>

namespace poq::util {

/// Thrown by this_thread_check_cancelled() when the installed token has
/// been cancelled. Derives from runtime_error, not PreconditionError:
/// cancellation is a normal control event, not a caller bug.
class OperationCancelled : public std::runtime_error {
 public:
  OperationCancelled() : std::runtime_error("operation cancelled") {}
};

class CancelToken {
 public:
  /// Ask work observing this token to stop (idempotent, thread-safe).
  void request() { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arm a token for reuse (serve Reset). Only safe when no work is
  /// currently observing it.
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Install `token` as the calling thread's active cancellation token for
/// the scope's lifetime; restores the previous token (scopes nest). Pass
/// nullptr to mask an outer token.
class ScopedCancel {
 public:
  explicit ScopedCancel(const CancelToken* token);
  ~ScopedCancel();
  ScopedCancel(const ScopedCancel&) = delete;
  ScopedCancel& operator=(const ScopedCancel&) = delete;

 private:
  const CancelToken* previous_;
};

/// True when the calling thread's installed token (if any) is cancelled.
[[nodiscard]] bool this_thread_cancelled();

/// Throw OperationCancelled if the calling thread's token is cancelled.
/// The per-round check every core simulation loop performs.
void this_thread_check_cancelled();

}  // namespace poq::util
