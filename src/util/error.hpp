// Error-handling helpers shared by all poqnet modules.
//
// The library reports contract violations and unrecoverable runtime
// conditions with exceptions (Core Guidelines E.2): callers that can
// recover catch them, everything else unwinds through RAII cleanly.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace poq {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant fails (a poqnet bug, not a caller bug).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Verify a documented precondition; throws PreconditionError on failure.
inline void require(bool condition, std::string_view message) {
  if (!condition) throw PreconditionError(std::string(message));
}

/// Verify an internal invariant; throws InvariantError on failure.
inline void ensure(bool condition, std::string_view message) {
  if (!condition) throw InvariantError(std::string(message));
}

}  // namespace poq
