#include "util/json.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::util::json {

namespace {

/// Cursor over the input with located error reporting: every parse error
/// names the byte offset, the line/column, and an excerpt of the
/// offending line with a caret — the serve protocol echoes these messages
/// back to remote clients, where "unexpected end of input" alone is
/// useless.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] std::string locate(const std::string& message) const {
    std::size_t line = 1;
    std::size_t line_start = 0;
    const std::size_t at = std::min(pos, text.size());
    for (std::size_t i = 0; i < at; ++i) {
      if (text[i] == '\n') {
        ++line;
        line_start = i + 1;
      }
    }
    const std::size_t column = at - line_start + 1;
    // Excerpt: up to 30 bytes of the offending line on either side of the
    // cursor, with a caret marking the position.
    std::size_t line_end = at;
    while (line_end < text.size() && text[line_end] != '\n') ++line_end;
    const std::size_t from = std::max(line_start, at > 30 ? at - 30 : 0);
    const std::size_t to = std::min(line_end, at + 30);
    std::string excerpt;
    for (std::size_t i = from; i < to; ++i) {
      const char c = text[i];
      excerpt.push_back((c == '\t' || c == '\r') ? ' ' : c);
    }
    std::string caret(at - from, ' ');
    caret.push_back('^');
    return str_cat("json parse error at byte ", at, " (line ", line,
                   ", column ", column, "): ", message, "\n  ", excerpt,
                   "\n  ", caret);
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw PreconditionError(locate(message));
  }

  void skip_whitespace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  [[nodiscard]] char peek() const {
    if (pos >= text.size()) fail_eof();
    return text[pos];
  }

  [[noreturn]] void fail_eof() const {
    throw PreconditionError(locate("unexpected end of input"));
  }

  void expect(char c) {
    if (pos >= text.size() || text[pos] != c) {
      fail(str_cat("expected '", std::string(1, c), "'"));
    }
    ++pos;
  }

  bool consume_literal(std::string_view literal) {
    if (text.substr(pos, literal.size()) != literal) return false;
    pos += literal.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail_eof();
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail_eof();
      const char escape = text[pos++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) fail_eof();
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // poqnet only emits ASCII; decode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text.data() + start, text.data() + pos, value);
    if (ec != std::errc{} || end != text.data() + pos || pos == start) {
      pos = start;
      fail("invalid number");
    }
    return Value(value);
  }

  Value parse_array() {
    expect('[');
    Value out = Value::array();
    skip_whitespace();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_whitespace();
      if (pos >= text.size()) fail_eof();
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      expect(']');
      return out;
    }
  }

  Value parse_object() {
    expect('{');
    Value out = Value::object();
    skip_whitespace();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return out;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      out.set(std::move(key), parse_value());
      skip_whitespace();
      if (pos >= text.size()) fail_eof();
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      expect('}');
      return out;
    }
  }
};

void dump_string(std::string& out, const std::string& text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string dump_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
  ensure(ec == std::errc{}, "json: number formatting failed");
  return std::string(buffer, end);
}

Value::Value(double value) {
  if (std::isfinite(value)) {
    type_ = Type::kNumber;
    number_ = value;
  }  // else stays null: JSON has no NaN/Inf
}

Value Value::array() {
  Value out;
  out.type_ = Type::kArray;
  return out;
}

Value Value::object() {
  Value out;
  out.type_ = Type::kObject;
  return out;
}

Value Value::parse(std::string_view text) {
  Parser parser{text};
  Value out = parser.parse_value();
  parser.skip_whitespace();
  if (parser.pos != text.size()) parser.fail("trailing characters");
  return out;
}

bool Value::as_bool() const {
  require(is_bool(), "json: value is not a bool");
  return bool_;
}

double Value::as_number() const {
  require(is_number(), "json: value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  require(is_string(), "json: value is not a string");
  return string_;
}

std::size_t Value::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  throw PreconditionError("json: size() needs an array or object");
}

const Value& Value::at(std::size_t index) const {
  require(is_array(), "json: value is not an array");
  require(index < array_.size(), "json: array index out of range");
  return array_[index];
}

Value& Value::push_back(Value element) {
  require(is_array(), "json: value is not an array");
  array_.push_back(std::move(element));
  return array_.back();
}

const std::vector<Value>& Value::items() const {
  require(is_array(), "json: value is not an array");
  return array_;
}

bool Value::contains(std::string_view key) const {
  require(is_object(), "json: value is not an object");
  for (const Member& member : object_) {
    if (member.first == key) return true;
  }
  return false;
}

const Value& Value::at(std::string_view key) const {
  require(is_object(), "json: value is not an object");
  for (const Member& member : object_) {
    if (member.first == key) return member.second;
  }
  throw PreconditionError(str_cat("json: missing key '", key, "'"));
}

Value& Value::set(std::string key, Value value) {
  require(is_object(), "json: value is not an object");
  for (Member& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return member.second;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return object_.back().second;
}

const std::vector<Member>& Value::members() const {
  require(is_object(), "json: value is not an object");
  return object_;
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out.push_back('\n');
  return out;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int levels) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * levels, ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: out += dump_number(number_); return;
    case Type::kString: dump_string(out, string_); return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(depth + 1);
        dump_string(out, object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back('}');
      return;
    }
  }
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Value::Type::kNull: return true;
    case Value::Type::kBool: return a.bool_ == b.bool_;
    case Value::Type::kNumber: return a.number_ == b.number_;
    case Value::Type::kString: return a.string_ == b.string_;
    case Value::Type::kArray: return a.array_ == b.array_;
    case Value::Type::kObject: return a.object_ == b.object_;
  }
  return false;
}

}  // namespace poq::util::json
