// Minimal JSON document model: parse, build, dump.
//
// poqnet emits machine-readable artifacts (scenario metrics, BENCH_*.json)
// and diffs them against committed baselines, so it needs a real JSON
// round-trip rather than ad-hoc string assembly — but not a third-party
// dependency. This covers the JSON poqnet itself produces: null, bool,
// finite doubles (NaN/Inf dump as null), strings with standard escapes,
// arrays, and insertion-ordered objects (deterministic output is part of
// the bench-diff contract).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace poq::util::json {

class Value;

/// Object members preserve insertion order so dumps are deterministic.
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  Value(bool value) : type_(Type::kBool), bool_(value) {}
  Value(double value);  // non-finite collapses to null
  Value(int value) : Value(static_cast<double>(value)) {}
  Value(std::int64_t value) : Value(static_cast<double>(value)) {}
  Value(std::uint64_t value) : Value(static_cast<double>(value)) {}
  Value(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Value(const char* value) : Value(std::string(value)) {}

  [[nodiscard]] static Value array();
  [[nodiscard]] static Value object();

  /// Parse a complete JSON document; trailing non-whitespace is an error.
  /// Throws PreconditionError on malformed input, locating the failure by
  /// byte offset, line and column, plus a caret-marked excerpt of the
  /// offending line (the serve protocol replies with these messages, so
  /// they must pinpoint the problem in the client's frame).
  [[nodiscard]] static Value parse(std::string_view text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw PreconditionError on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  // --- array interface ---
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Value& at(std::size_t index) const;
  Value& push_back(Value element);
  [[nodiscard]] const std::vector<Value>& items() const;

  // --- object interface ---
  [[nodiscard]] bool contains(std::string_view key) const;
  /// Lookup; throws PreconditionError naming the missing key.
  [[nodiscard]] const Value& at(std::string_view key) const;
  /// Insert or overwrite, preserving first-insertion position.
  Value& set(std::string key, Value value);
  [[nodiscard]] const std::vector<Member>& members() const;

  /// Serialize. indent < 0 yields compact one-line output; indent >= 0
  /// pretty-prints with that many spaces per level. Numbers use the
  /// shortest representation that round-trips (std::to_chars).
  [[nodiscard]] std::string dump(int indent = -1) const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

/// Render a double exactly as Value::dump would (shared by tests).
[[nodiscard]] std::string dump_number(double value);

}  // namespace poq::util::json
