#include "util/logging.hpp"

#include <atomic>
#include <iostream>

namespace poq::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  std::cerr << "[poq:" << level_name(level) << "] " << message << '\n';
}

void log(LogLevel level, const std::function<std::string()>& make_message) {
  if (level < log_level()) return;
  log(level, std::string_view(make_message()));
}

}  // namespace poq::util
