// Minimal leveled logging to stderr.
//
// Simulation libraries need a way to trace rare decisions (a swap choice, a
// reservation rejection) without paying for string construction when the
// level is off; the lambda-taking overloads below evaluate the message
// lazily.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace poq::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global threshold; messages below it are discarded. Default: kWarn.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit `message` at `level` if the threshold allows.
void log(LogLevel level, std::string_view message);

/// Lazy variant: `make_message` runs only when the level is enabled.
void log(LogLevel level, const std::function<std::string()>& make_message);

inline void log_debug(std::string_view m) { log(LogLevel::kDebug, m); }
inline void log_info(std::string_view m) { log(LogLevel::kInfo, m); }
inline void log_warn(std::string_view m) { log(LogLevel::kWarn, m); }
inline void log_error(std::string_view m) { log(LogLevel::kError, m); }

}  // namespace poq::util
