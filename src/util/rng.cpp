#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace poq::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

constexpr std::uint64_t kSplitmixGamma = 0x9E3779B97F4A7C15ULL;

/// The stateless finalizer of splitmix64: splitmix64(s) == mix64(s + gamma).
/// The batch derivation loops over this directly, with the counter folded
/// into the pre-increment value, so it never threads mutable state.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The (seed, a, b) sponge prefix of Rng::keyed — everything that does not
/// depend on the per-entity key word c, hoisted once per batch.
constexpr std::uint64_t keyed_prefix(std::uint64_t seed, std::uint64_t a,
                                     std::uint64_t b) {
  std::uint64_t sm = seed;
  std::uint64_t hash = mix64(sm + kSplitmixGamma);
  sm = hash ^ a;
  hash = mix64(sm + kSplitmixGamma);
  sm = hash ^ b;
  hash = mix64(sm + kSplitmixGamma);
  return hash;
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  return mix64(state += kSplitmixGamma);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the current state with the stream id through splitmix64 so child
  // streams are decorrelated from the parent and from each other.
  std::uint64_t sm = state_[0] ^ rotl(state_[2], 13) ^
                     (stream_id * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL);
  Rng child(splitmix64(sm));
  return child;
}

Rng Rng::keyed(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
               std::uint64_t c) {
  // Sponge-style fold: absorb each key word into the running hash through
  // a full splitmix64 mix, so tuples differing in any word (including by
  // swaps across positions) land on decorrelated streams.
  std::uint64_t sm = seed;
  std::uint64_t hash = splitmix64(sm);
  sm = hash ^ a;
  hash = splitmix64(sm);
  sm = hash ^ b;
  hash = splitmix64(sm);
  sm = hash ^ c;
  hash = splitmix64(sm);
  return Rng(hash);
}

void Rng::keyed_batch(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                      std::uint64_t c0, std::span<Rng> out) {
  const std::uint64_t prefix = keyed_prefix(seed, a, b);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t hash = mix64((prefix ^ (c0 + i)) + kSplitmixGamma);
    out[i] = Rng(hash);
  }
}

void Rng::bernoulli_batch(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c0, double p,
                          std::span<std::uint8_t> out) {
  // Scalar equivalence: bernoulli(p) for p in (0, 1) draws one output and
  // tests (output >> 11) * 2^-53 < p. Both sides scale exactly by 2^53
  // (power-of-two scaling of a 53-bit integer and of p), so the test is
  // the integer compare (output >> 11) < ceil(p * 2^53) — for an integer
  // k, k < x iff k < ceil(x). p <= 0 / p >= 1 reproduce the scalar
  // early-outs as thresholds 0 / 2^53 (no 53-bit value reaches 2^53).
  std::uint64_t threshold = 0;
  if (p >= 1.0) {
    threshold = 1ULL << 53;
  } else if (p > 0.0) {
    threshold = static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53));
  }
  // The stream's first raw output depends only on state_[1] — the second
  // seeding step of Rng(hash) — so one derivation mix and one seeding mix
  // per entity suffice: 3 mix64 calls replace the scalar path's 8 plus an
  // engine step, and the loop body is branch-free and independent across
  // entities (auto-vectorizable).
  const std::uint64_t prefix = keyed_prefix(seed, a, b);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t hash = mix64((prefix ^ (c0 + i)) + kSplitmixGamma);
    const std::uint64_t state1 = mix64(hash + 2 * kSplitmixGamma);
    const std::uint64_t output = rotl(state1 * 5, 7) * 9;
    out[i] = static_cast<std::uint8_t>((output >> 11) < threshold);
  }
}

void Rng::poisson_batch(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c0, double mean,
                        std::span<std::uint64_t> out) {
  const std::uint64_t prefix = keyed_prefix(seed, a, b);
  for (std::size_t i = 0; i < out.size(); ++i) {
    Rng rng(mix64((prefix ^ (c0 + i)) + kSplitmixGamma));
    out[i] = rng.poisson(mean);
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo must be <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling (Lemire-style threshold) for exact uniformity.
  const std::uint64_t threshold = (0 - span) % span;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
  }
}

std::size_t Rng::uniform_index(std::size_t n) {
  require(n > 0, "Rng::uniform_index: n must be positive");
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform_double() {
  // 53 random bits mapped to [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) {
  require(lo <= hi, "Rng::uniform_double: lo must be <= hi");
  return lo + (hi - lo) * uniform_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

double Rng::exponential(double rate) {
  require(rate > 0.0, "Rng::exponential: rate must be positive");
  double u;
  do {
    u = uniform_double();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  require(mean >= 0.0, "Rng::poisson: mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product method; exact and fast for small means.
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform_double();
    while (product > limit) {
      ++count;
      product *= uniform_double();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means; the
  // simulators only use large means for stress scenarios where the
  // approximation error is immaterial.
  const double sample = normal(mean, std::sqrt(mean));
  return sample <= 0.5 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform_double();
  } while (u1 == 0.0);
  const double u2 = uniform_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  require(k <= n, "Rng::sample_indices: k must be <= n");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace poq::util
