// Deterministic, forkable pseudo-random number generation.
//
// Simulation experiments must be exactly reproducible from a single seed,
// and independent subsystems (generation, consumption, per-node swap
// scheduling) must draw from statistically independent streams so that
// adding draws in one subsystem does not perturb another.  `Rng` wraps a
// xoshiro256** engine seeded via splitmix64 (the initialization the xoshiro
// authors recommend) and supports cheap stream forking.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace poq::util {

/// splitmix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** 1.0 engine wrapped as a C++ UniformRandomBitGenerator.
///
/// Satisfies `std::uniform_random_bit_generator`, so it can drive any
/// standard <random> distribution, but the convenience members below are
/// preferred inside poqnet for clarity and cross-platform determinism
/// (libstdc++/libc++ distributions differ; ours do not).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Derive an independent stream for subsystem `stream_id`.
  ///
  /// Forking is stable: fork(k) of an `Rng` in a given state always yields
  /// the same child stream, and consuming the child does not advance the
  /// parent.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const;

  /// Counter-based stream derivation: an independent stream keyed by the
  /// tuple (seed, a, b, c), with no sequential state anywhere.
  ///
  /// This is the primitive the sharded tick engine builds on — a stream
  /// keyed per (phase, round, entity) can be constructed by whichever
  /// worker processes the entity, so draws are identical for every
  /// thread/shard partitioning of the work. Distinct tuples yield
  /// decorrelated streams (each key word is folded through splitmix64).
  [[nodiscard]] static Rng keyed(std::uint64_t seed, std::uint64_t a,
                                 std::uint64_t b = 0, std::uint64_t c = 0);

  // --- batched counter-based derivation ---------------------------------
  // The hot kernels key one stream per entity and consume one decision
  // from it. Deriving the streams one by one repeats the (seed, a, b)
  // sponge prefix per entity; the batch forms below hoist that prefix
  // once and run one tight loop over the entity counter. Every element
  // is bit-identical to the scalar path — out[i] equals
  // Rng::keyed(seed, a, b, c0 + i) (resp. its .bernoulli(p) / .poisson(mean)
  // decision) — so batching a kernel never moves a baseline.

  /// Fill `out` with streams keyed (seed, a, b, c0 + i).
  static void keyed_batch(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c0, std::span<Rng> out);

  /// out[i] = Rng::keyed(seed, a, b, c0 + i).bernoulli(p), computed as a
  /// branch-free integer threshold compare on the stream's first raw
  /// output (exactly equivalent to the scalar uniform_double() < p: the
  /// 53-bit mantissa compare scales both sides by 2^53, which is exact).
  static void bernoulli_batch(std::uint64_t seed, std::uint64_t a,
                              std::uint64_t b, std::uint64_t c0, double p,
                              std::span<std::uint8_t> out);

  /// out[i] = Rng::keyed(seed, a, b, c0 + i).poisson(mean). Only the
  /// stream derivation is batched; the per-entity draw consumes a
  /// variable number of stream outputs, so it runs the scalar sampler on
  /// the derived stream (bit-identical by construction).
  static void poisson_batch(std::uint64_t seed, std::uint64_t a,
                            std::uint64_t b, std::uint64_t c0, double mean,
                            std::span<std::uint64_t> out);

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n); requires n > 0.
  std::size_t uniform_index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Poisson-distributed count with the given mean (>= 0).
  std::uint64_t poisson(double mean);

  /// Standard normal variate (Box-Muller, no cached spare for determinism).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample `k` distinct indices from [0, n) without replacement.
  ///
  /// Uses a partial Fisher-Yates over an index vector: O(n) memory, O(n)
  /// time, exact uniformity. Requires k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t state_[4];
};

}  // namespace poq::util
