#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace poq::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats RunningStats::from_moments(std::size_t count, double mean,
                                        double variance, double min, double max) {
  require(variance >= 0.0, "RunningStats::from_moments: variance must be >= 0");
  RunningStats stats;
  if (count == 0) return stats;
  stats.count_ = count;
  stats.mean_ = mean;
  stats.m2_ = variance * static_cast<double>(count);
  stats.min_ = min;
  stats.max_ = max;
  return stats;
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  require(hi > lo, "Histogram: hi must be > lo");
  require(buckets > 0, "Histogram: need at least one bucket");
}

void Histogram::add(double x) {
  const auto raw = static_cast<long>(std::floor((x - lo_) / width_));
  const long clamped =
      std::clamp<long>(raw, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(clamped)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  require(i < counts_.size(), "Histogram::bucket_lo: index out of range");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }

double Histogram::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "Histogram::quantile: q must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double inside =
          counts_[i] == 0 ? 0.0
                          : (target - cumulative) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + inside * width_;
    }
    cumulative = next;
  }
  return bucket_hi(counts_.size() - 1);
}

double percentile(std::vector<double> samples, double q) {
  require(!samples.empty(), "percentile: empty sample set");
  require(q >= 0.0 && q <= 1.0, "percentile: q must be in [0,1]");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= samples.size()) return samples.back();
  return samples[lower] * (1.0 - frac) + samples[lower + 1] * frac;
}

}  // namespace poq::util
