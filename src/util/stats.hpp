// Streaming statistics used by the simulators and benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace poq::util {

/// Welford online accumulator: mean/variance/min/max in O(1) per sample
/// without storing the samples.
class RunningStats {
 public:
  void add(double x);

  /// Merge another accumulator (parallel Welford / Chan et al.).
  void merge(const RunningStats& other);

  /// Reconstruct an accumulator from its summary moments (population
  /// variance). Used when deserializing persisted metrics; merging such a
  /// reconstruction behaves exactly like the original accumulator.
  [[nodiscard]] static RunningStats from_moments(std::size_t count, double mean,
                                                 double variance, double min,
                                                 double max);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Population variance; 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  /// Sample (Bessel-corrected) variance; 0 for fewer than 2 samples.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi); samples outside the range
/// are clamped into the first/last bucket so mass is never dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Linear-interpolated quantile estimate, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact percentile of a sample vector (copies and sorts; for small data).
/// q in [0,1]; linear interpolation between order statistics.
double percentile(std::vector<double> samples, double q);

}  // namespace poq::util
