#include "util/strings.hpp"

#include <cstdio>

namespace poq::util {

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace poq::util
