// Small string utilities (libstdc++ 12 lacks std::format; these cover the
// formatting poqnet needs without a third-party dependency).
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace poq::util {

/// Concatenate any streamable values into one string.
template <typename... Args>
std::string str_cat(const Args&... args) {
  std::ostringstream out;
  ((out << args), ...);
  return out.str();
}

/// Fixed-precision decimal rendering (printf %.*f semantics).
std::string format_double(double value, int precision);

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Left-pad with spaces to at least `width` characters.
std::string pad_left(std::string_view text, std::size_t width);

/// Right-pad with spaces to at least `width` characters.
std::string pad_right(std::string_view text, std::size_t width);

}  // namespace poq::util
