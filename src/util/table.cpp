#include "util/table.hpp"

#include <algorithm>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace poq::util {

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must not be empty");
}

void Table::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "Table: row width must match header");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << pad_left(row[c], widths[c]);
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_csv() const {
  std::string out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace poq::util
