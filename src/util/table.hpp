// Console tables and CSV emission for experiment harnesses.
//
// Every bench binary prints the same rows/series the paper's figures report;
// `Table` renders them aligned for humans and `to_csv` emits the same data
// for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace poq::util {

/// Column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with column alignment and a separator under the header.
  void print(std::ostream& out) const;

  /// Render as RFC-4180-ish CSV (fields containing commas/quotes get quoted).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace poq::util
