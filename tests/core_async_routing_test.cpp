#include "core/async_routing.hpp"

#include <gtest/gtest.h>

#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::core {
namespace {

Workload grid_workload(std::size_t nodes, std::uint64_t seed) {
  util::Rng rng(seed);
  return make_uniform_workload(nodes, 10, 100000, rng);
}

AsyncRoutingConfig base_config() {
  AsyncRoutingConfig config;
  config.seed = 3;
  config.duration = 200.0;
  return config;
}

TEST(AsyncRouting, SatisfiesRequestsOnAWellSuppliedNetwork) {
  const graph::Graph graph = graph::make_torus_grid(16);
  AsyncRoutingConfig config = base_config();
  config.generation_rate = 2.0;
  const AsyncRoutingResult result =
      run_async_routing(graph, grid_workload(16, 1), config);
  EXPECT_GT(result.requests_arrived, 0u);
  EXPECT_GT(result.requests_satisfied, 0u);
  EXPECT_GT(result.satisfied_fraction(), 0.5);
  EXPECT_GT(result.pairs_generated, 0u);
  EXPECT_GT(result.pairs_consumed, 0u);
  // Latency counts at least the waiting epoch granularity, and every
  // satisfied request consumed at least one segment (none is degenerate
  // under make_uniform_workload).
  EXPECT_GT(result.request_latency.mean(), 0.0);
  EXPECT_GE(result.request_hops.mean(), 1.0);
}

TEST(AsyncRouting, DeterministicForFixedSeed) {
  const graph::Graph graph = graph::make_torus_grid(16);
  const AsyncRoutingResult a =
      run_async_routing(graph, grid_workload(16, 1), base_config());
  const AsyncRoutingResult b =
      run_async_routing(graph, grid_workload(16, 1), base_config());
  EXPECT_EQ(a.requests_satisfied, b.requests_satisfied);
  EXPECT_EQ(a.requests_dropped, b.requests_dropped);
  EXPECT_EQ(a.swaps, b.swaps);
  EXPECT_EQ(a.pairs_consumed, b.pairs_consumed);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.request_latency.mean(), b.request_latency.mean());
}

TEST(AsyncRouting, StarvedNetworkDropsEveryRequestOnTimeout) {
  // No pair generation at all: every token waits at its source until the
  // timeout expires. The request sequence is short enough (60 requests at
  // rate 0.5 arrive by t ~ 120) that the run outlasts the last arrival
  // plus the timeout, so nothing is left in flight at the end.
  const graph::Graph graph = graph::make_cycle(8);
  AsyncRoutingConfig config = base_config();
  config.generation_rate = 0.0;
  config.timeout = 20.0;
  config.duration = 400.0;
  util::Rng rng(2);
  const Workload workload = make_uniform_workload(8, 10, 60, rng);
  const AsyncRoutingResult result =
      run_async_routing(graph, workload, config);
  ASSERT_GT(result.requests_arrived, 0u);
  EXPECT_EQ(result.requests_satisfied, 0u);
  EXPECT_EQ(result.requests_dropped, result.requests_arrived);
  EXPECT_EQ(result.drop_fraction(), 1.0);
  EXPECT_EQ(result.swaps, 0u);
}

TEST(AsyncRouting, TighterTimeoutDropsMore) {
  const graph::Graph graph = graph::make_torus_grid(16);
  AsyncRoutingConfig patient = base_config();
  patient.generation_rate = 0.3;  // scarce: waiting actually happens
  patient.timeout = 80.0;
  AsyncRoutingConfig impatient = patient;
  impatient.timeout = 2.0;
  const AsyncRoutingResult relaxed =
      run_async_routing(graph, grid_workload(16, 3), patient);
  const AsyncRoutingResult strict =
      run_async_routing(graph, grid_workload(16, 3), impatient);
  ASSERT_GT(relaxed.requests_arrived, 0u);
  EXPECT_GE(strict.drop_fraction(), relaxed.drop_fraction());
  EXPECT_LE(strict.requests_satisfied, relaxed.requests_satisfied);
}

TEST(AsyncRouting, SwapsAndHandoffsAreConsistent) {
  const graph::Graph graph = graph::make_torus_grid(16);
  AsyncRoutingConfig config = base_config();
  config.generation_rate = 1.5;
  const AsyncRoutingResult result =
      run_async_routing(graph, grid_workload(16, 4), config);
  ASSERT_GT(result.requests_satisfied, 0u);
  // Every swap chains two consumed segments at a junction the token was
  // handed to, so neither can exceed the consumed-segment count.
  EXPECT_LE(result.swaps, result.pairs_consumed);
  EXPECT_LE(result.control_messages, result.pairs_consumed);
  EXPECT_GT(result.swaps, 0u);
}

TEST(AsyncRouting, RejectsBadInputs) {
  const graph::Graph one(1);
  Workload workload;
  workload.pairs = {NodePair(0, 1)};
  workload.sequence = {0};
  EXPECT_THROW(
      [&] { (void)run_async_routing(one, workload, base_config()); }(),
      PreconditionError);
  const graph::Graph graph = graph::make_cycle(6);
  AsyncRoutingConfig negative_latency = base_config();
  negative_latency.latency_per_hop = -0.5;
  EXPECT_THROW(
      [&] { (void)run_async_routing(graph, workload, negative_latency); }(),
      PreconditionError);
  AsyncRoutingConfig zero_dt = base_config();
  zero_dt.dt = 0.0;
  EXPECT_THROW([&] { (void)run_async_routing(graph, workload, zero_dt); }(),
               PreconditionError);
  AsyncRoutingConfig zero_timeout = base_config();
  zero_timeout.timeout = 0.0;
  EXPECT_THROW(
      [&] { (void)run_async_routing(graph, workload, zero_timeout); }(),
      PreconditionError);
}

}  // namespace
}  // namespace poq::core
