#include "core/maxmin_balancer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/ledger.hpp"
#include "graph/shortest_path.hpp"
#include "graph/topology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::core {
namespace {

MaxMinBalancer unit_balancer(double distillation = 1.0) {
  return MaxMinBalancer(DistillationMatrix(distillation));
}

// §4's rule, literal reading: swap y' <- x -> y is preferable iff
// C_y(y') + 1 <= min(C_x(y) - D_xy, C_x(y') - D_xy').
TEST(Preferable, BasicCase) {
  PairLedger ledger(4);
  const MaxMinBalancer balancer = unit_balancer();
  ledger.add(0, 1, 3);  // C_x(y') with x=0, y'=1
  ledger.add(0, 2, 3);  // C_x(y) with y=2
  // beneficiary (1,2) at 0: 0 + 1 <= min(3-1, 3-1) = 2 -> preferable.
  EXPECT_TRUE(balancer.is_preferable(ledger, 0, 1, 2));
}

TEST(Preferable, ExactBoundaryIsPreferable) {
  PairLedger ledger(4);
  const MaxMinBalancer balancer = unit_balancer();
  ledger.add(0, 1, 3);
  ledger.add(0, 2, 3);
  ledger.add(1, 2, 1);  // 1 + 1 = 2 <= min(2, 2) -> still preferable
  EXPECT_TRUE(balancer.is_preferable(ledger, 0, 1, 2));
}

TEST(Preferable, BeneficiaryTooRichBlocksSwap) {
  PairLedger ledger(4);
  const MaxMinBalancer balancer = unit_balancer();
  ledger.add(0, 1, 3);
  ledger.add(0, 2, 3);
  ledger.add(1, 2, 2);  // 2 + 1 = 3 > 2 -> not preferable
  EXPECT_FALSE(balancer.is_preferable(ledger, 0, 1, 2));
}

TEST(Preferable, DonorTooPoorBlocksSwap) {
  PairLedger ledger(4);
  const MaxMinBalancer balancer = unit_balancer();
  ledger.add(0, 1, 1);  // cap = 1 - 1 = 0 < 1
  ledger.add(0, 2, 5);
  EXPECT_FALSE(balancer.is_preferable(ledger, 0, 1, 2));
}

TEST(Preferable, DistillationRaisesBar) {
  PairLedger ledger(4);
  const MaxMinBalancer d2 = unit_balancer(2.0);
  ledger.add(0, 1, 3);
  ledger.add(0, 2, 3);
  // caps = 3 - 2 = 1; beneficiary 0 + 1 <= 1 -> exactly preferable.
  EXPECT_TRUE(d2.is_preferable(ledger, 0, 1, 2));
  const MaxMinBalancer d3 = unit_balancer(3.0);
  // caps = 0 -> not preferable.
  EXPECT_FALSE(d3.is_preferable(ledger, 0, 1, 2));
}

TEST(Preferable, RejectsDegenerateTriples) {
  PairLedger ledger(4);
  const MaxMinBalancer balancer = unit_balancer();
  EXPECT_THROW((void)balancer.is_preferable(ledger, 0, 0, 1), PreconditionError);
  EXPECT_THROW((void)balancer.is_preferable(ledger, 0, 1, 1), PreconditionError);
}

TEST(BestSwap, NoneWhenNoPairs) {
  PairLedger ledger(4);
  const MaxMinBalancer balancer = unit_balancer();
  EXPECT_FALSE(balancer.best_swap(ledger, 0).has_value());
}

TEST(BestSwap, PicksMinimalBeneficiary) {
  PairLedger ledger(5);
  const MaxMinBalancer balancer = unit_balancer();
  ledger.add(0, 1, 10);
  ledger.add(0, 2, 10);
  ledger.add(0, 3, 10);
  ledger.add(1, 2, 4);  // candidate (1,2) beneficiary 4
  ledger.add(1, 3, 2);  // candidate (1,3) beneficiary 2  <- minimal
  ledger.add(2, 3, 6);  // candidate (2,3) beneficiary 6
  const auto best = balancer.best_swap(ledger, 0);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(NodePair(best->left, best->right), NodePair(1, 3));
  EXPECT_EQ(best->beneficiary_count, 2u);
}

TEST(BestSwap, ZeroBeneficiaryShortCircuits) {
  PairLedger ledger(5);
  const MaxMinBalancer balancer = unit_balancer();
  ledger.add(0, 1, 5);
  ledger.add(0, 2, 5);
  const auto best = balancer.best_swap(ledger, 0);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->beneficiary_count, 0u);
}

TEST(ExecuteSwap, MovesCounts) {
  PairLedger ledger(4);
  const MaxMinBalancer balancer = unit_balancer();
  util::Rng rng(1);
  ledger.add(0, 1, 3);
  ledger.add(0, 2, 3);
  const auto execution = balancer.execute_swap(ledger, 0, 1, 2, rng);
  EXPECT_EQ(execution.consumed_left, 1u);
  EXPECT_EQ(execution.consumed_right, 1u);
  EXPECT_EQ(ledger.count(0, 1), 2u);
  EXPECT_EQ(ledger.count(0, 2), 2u);
  EXPECT_EQ(ledger.count(1, 2), 1u);
}

TEST(ExecuteSwap, IntegerDistillationConsumesD) {
  PairLedger ledger(4);
  const MaxMinBalancer balancer = unit_balancer(3.0);
  util::Rng rng(1);
  ledger.add(0, 1, 5);
  ledger.add(0, 2, 7);
  balancer.execute_swap(ledger, 0, 1, 2, rng);
  EXPECT_EQ(ledger.count(0, 1), 2u);
  EXPECT_EQ(ledger.count(0, 2), 4u);
  EXPECT_EQ(ledger.count(1, 2), 1u);
}

TEST(ExecuteSwap, FractionalDistillationAveragesD) {
  util::Rng rng(5);
  const MaxMinBalancer balancer = unit_balancer(1.5);
  std::uint64_t consumed = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    PairLedger ledger(4);
    ledger.add(0, 1, 5);
    ledger.add(0, 2, 5);
    const auto execution = balancer.execute_swap(ledger, 0, 1, 2, rng);
    consumed += execution.consumed_left + execution.consumed_right;
  }
  EXPECT_NEAR(static_cast<double>(consumed) / trials, 3.0, 0.05);
}

// A preferable swap never lowers the global minimum pair count.
TEST(MaxMinProperty, GlobalMinimumNeverDecreases) {
  util::Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    PairLedger ledger(6);
    const MaxMinBalancer balancer = unit_balancer();
    for (NodeId x = 0; x < 6; ++x) {
      for (NodeId y = x + 1; y < 6; ++y) {
        ledger.add(x, y, static_cast<std::uint32_t>(rng.uniform_index(6)));
      }
    }
    for (int step = 0; step < 200; ++step) {
      const NodeId x = static_cast<NodeId>(rng.uniform_index(6));
      const auto candidate = balancer.best_swap(ledger, x);
      if (!candidate) continue;
      const std::uint32_t before = ledger.minimum_pair_count();
      balancer.execute_swap(ledger, x, candidate->left, candidate->right, rng);
      EXPECT_GE(ledger.minimum_pair_count(), before);
    }
  }
}

// With generation and consumption frozen, sweeps reach a fixed point where
// no node has a preferable swap (the max-min allocation of §4).
TEST(MaxMinProperty, FrozenSystemReachesFixedPoint) {
  util::Rng rng(23);
  PairLedger ledger(8);
  const MaxMinBalancer balancer = unit_balancer();
  for (NodeId x = 0; x < 8; ++x) {
    for (NodeId y = x + 1; y < 8; ++y) {
      ledger.add(x, y, static_cast<std::uint32_t>(rng.uniform_index(10)));
    }
  }
  bool converged = false;
  for (int sweep = 0; sweep < 10000 && !converged; ++sweep) {
    const SweepStats stats = run_swap_sweep(balancer, ledger, 0, 1, rng);
    converged = stats.swaps == 0;
  }
  ASSERT_TRUE(converged) << "balancing did not reach a fixed point";
  for (NodeId x = 0; x < 8; ++x) {
    EXPECT_FALSE(balancer.best_swap(ledger, x).has_value());
  }
}

// Parameterized over distillation levels: the fixed point always exists.
class FrozenConvergenceSweep : public ::testing::TestWithParam<double> {};

TEST_P(FrozenConvergenceSweep, TerminatesForAllDistillation) {
  util::Rng rng(29);
  PairLedger ledger(6);
  const MaxMinBalancer balancer = unit_balancer(GetParam());
  for (NodeId x = 0; x < 6; ++x) {
    for (NodeId y = x + 1; y < 6; ++y) {
      ledger.add(x, y, static_cast<std::uint32_t>(rng.uniform_index(12)));
    }
  }
  int sweeps = 0;
  while (run_swap_sweep(balancer, ledger, 0, 1, rng).swaps > 0) {
    ASSERT_LT(++sweeps, 20000);
  }
}

INSTANTIATE_TEST_SUITE_P(Distillation, FrozenConvergenceSweep,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0));

TEST(DetourPolicy, RestrictsFarSwaps) {
  // Cycle of 6; node 3 holds pairs with 2 and 4 whose direct distance is
  // 2 via node 3. With slack 0 the swap is on-geodesic and allowed; for
  // nodes far off the geodesic it must be rejected.
  const graph::Graph graph = graph::make_cycle(6);
  const auto distances = graph::all_pairs_distances(graph);
  BalancerPolicy policy;
  policy.detour_slack = 0;
  const MaxMinBalancer balancer(DistillationMatrix(1.0), policy, &distances);

  PairLedger on_path(6);
  on_path.add(3, 2, 4);
  on_path.add(3, 4, 4);
  EXPECT_TRUE(balancer.is_preferable(on_path, 3, 2, 4));

  PairLedger detour(6);
  detour.add(0, 2, 4);  // dist(2,0)=2, dist(0,4)=2; direct dist(2,4)=2
  detour.add(0, 4, 4);  // through-0 distance 4 > 2 + 0 -> rejected
  EXPECT_FALSE(balancer.is_preferable(detour, 0, 2, 4));

  // Positive slack re-allows it.
  BalancerPolicy loose;
  loose.detour_slack = 2;
  const MaxMinBalancer relaxed(DistillationMatrix(1.0), loose, &distances);
  EXPECT_TRUE(relaxed.is_preferable(detour, 0, 2, 4));
}

TEST(DetourPolicy, RequiresDistances) {
  BalancerPolicy policy;
  policy.detour_slack = 1;
  EXPECT_THROW(MaxMinBalancer(DistillationMatrix(1.0), policy, nullptr),
               PreconditionError);
}

TEST(SweepStats, AccountsConservation) {
  util::Rng rng(31);
  PairLedger ledger(5);
  const MaxMinBalancer balancer = unit_balancer(2.0);
  for (NodeId x = 0; x < 5; ++x) {
    for (NodeId y = x + 1; y < 5; ++y) ledger.add(x, y, 8);
  }
  const std::uint64_t before = ledger.total_pairs();
  const SweepStats stats = run_swap_sweep(balancer, ledger, 0, 3, rng);
  EXPECT_EQ(ledger.total_pairs(),
            before - stats.pairs_consumed + stats.pairs_produced);
  EXPECT_EQ(stats.pairs_produced, stats.swaps);
}

}  // namespace
}  // namespace poq::core
