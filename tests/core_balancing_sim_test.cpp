#include "core/balancing_sim.hpp"

#include <gtest/gtest.h>

#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::core {
namespace {

Workload small_workload(std::size_t nodes, std::size_t pairs, std::size_t requests,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  return make_uniform_workload(nodes, pairs, requests, rng);
}

TEST(BalancingSim, CompletesOnCycle) {
  const graph::Graph graph = graph::make_cycle(9);
  const Workload workload = small_workload(9, 6, 30, 1);
  BalancingConfig config;
  config.seed = 7;
  const BalancingResult result = run_balancing(graph, workload, config);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.requests_satisfied, 30u);
  EXPECT_GT(result.swaps_performed, 0u);
  EXPECT_GT(result.rounds, 0u);
}

TEST(BalancingSim, CompletesOnRandomGrid) {
  util::Rng topo_rng(3);
  const graph::Graph graph = graph::make_random_connected_grid(16, topo_rng);
  const Workload workload = small_workload(16, 10, 40, 2);
  BalancingConfig config;
  config.seed = 11;
  const BalancingResult result = run_balancing(graph, workload, config);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.requests_satisfied, 40u);
}

TEST(BalancingSim, OverheadAtLeastOneAgainstExactCost) {
  // The exact nested cost is a true lower bound on swaps per satisfied
  // request, so overhead measured against it must be >= 1.
  const graph::Graph graph = graph::make_cycle(9);
  const Workload workload = small_workload(9, 6, 40, 3);
  BalancingConfig config;
  config.seed = 13;
  const BalancingResult result = run_balancing(graph, workload, config);
  ASSERT_TRUE(result.completed);
  if (result.denominator_exact > 0.0) {
    EXPECT_GE(result.swap_overhead_exact(), 1.0);
  }
}

TEST(BalancingSim, DeterministicForFixedSeed) {
  const graph::Graph graph = graph::make_cycle(8);
  const Workload workload = small_workload(8, 5, 20, 4);
  BalancingConfig config;
  config.seed = 99;
  const BalancingResult a = run_balancing(graph, workload, config);
  const BalancingResult b = run_balancing(graph, workload, config);
  EXPECT_EQ(a.swaps_performed, b.swaps_performed);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.pairs_generated, b.pairs_generated);
  EXPECT_EQ(a.pairs_consumed, b.pairs_consumed);
}

TEST(BalancingSim, SeedChangesGenerationOrdering) {
  // Different seeds change stochastic choices (e.g. fractional rounding);
  // with integer rates the trajectory is actually identical, so use a
  // fractional generation rate to observe the difference.
  const graph::Graph graph = graph::make_cycle(8);
  const Workload workload = small_workload(8, 5, 20, 4);
  BalancingConfig config;
  config.generation_per_edge_per_round = 0.7;
  config.seed = 1;
  const BalancingResult a = run_balancing(graph, workload, config);
  config.seed = 2;
  const BalancingResult b = run_balancing(graph, workload, config);
  EXPECT_NE(a.pairs_generated, b.pairs_generated);
}

TEST(BalancingSim, ConservationLaw) {
  // generated = consumed + destroyed-by-swaps - produced-by-swaps + stored.
  const graph::Graph graph = graph::make_cycle(9);
  const Workload workload = small_workload(9, 6, 25, 5);
  BalancingConfig config;
  config.seed = 17;
  BalancingSimulation sim(graph, workload, config);
  const BalancingResult result = sim.run();
  const std::uint64_t stored = sim.ledger().total_pairs();
  EXPECT_EQ(result.pairs_generated + result.pairs_produced_by_swaps,
            result.pairs_consumed + result.pairs_spent_on_swaps + stored);
}

TEST(BalancingSim, HigherDistillationCostsMoreSwaps) {
  const graph::Graph graph = graph::make_cycle(9);
  const Workload workload = small_workload(9, 6, 25, 6);
  BalancingConfig config;
  config.seed = 19;
  config.distillation = 1.0;
  const BalancingResult d1 = run_balancing(graph, workload, config);
  config.distillation = 2.0;
  config.max_rounds = 200000;
  const BalancingResult d2 = run_balancing(graph, workload, config);
  ASSERT_TRUE(d1.completed);
  ASSERT_TRUE(d2.completed);
  EXPECT_GT(d2.swaps_performed, d1.swaps_performed);
}

TEST(BalancingSim, MaxRoundsGuardsStarvation) {
  // A star graph with tiny generation makes long requests starve; the
  // simulation must stop at max_rounds and report incomplete.
  const graph::Graph graph = graph::make_cycle(9);
  Workload workload = small_workload(9, 6, 1000, 7);
  BalancingConfig config;
  config.max_rounds = 10;
  const BalancingResult result = run_balancing(graph, workload, config);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.rounds, 10u);
}

TEST(BalancingSim, ZeroGenerationSatisfiesNothingFar) {
  const graph::Graph graph = graph::make_cycle(9);
  // Build a workload whose first request is definitely non-adjacent.
  Workload workload;
  workload.pairs = {NodePair(0, 4)};
  workload.sequence = {0};
  BalancingConfig config;
  config.generation_per_edge_per_round = 0.0;
  config.max_rounds = 50;
  const BalancingResult result = run_balancing(graph, workload, config);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.pairs_generated, 0u);
  EXPECT_EQ(result.swaps_performed, 0u);
}

TEST(BalancingSim, AdjacentRequestNeedsNoSwaps) {
  const graph::Graph graph = graph::make_cycle(9);
  Workload workload;
  workload.pairs = {NodePair(0, 1)};
  workload.sequence = {0};
  BalancingConfig config;
  const BalancingResult result = run_balancing(graph, workload, config);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 1u);
  // A 1-hop request contributes s(1) = 0 to the denominator.
  EXPECT_EQ(result.denominator_paper, 0.0);
}

TEST(BalancingSim, HeadOfLineBlocking) {
  // Second request is adjacent and trivially satisfiable, but the first is
  // far: the second must not complete before the first.
  const graph::Graph graph = graph::make_cycle(12);
  Workload workload;
  workload.pairs = {NodePair(0, 6), NodePair(3, 4)};
  workload.sequence = {0, 1};
  BalancingConfig config;
  config.seed = 23;
  BalancingSimulation sim(graph, workload, config);
  while (!sim.finished()) {
    sim.step_round();
    // Request order means satisfied count can only be 0, 1, or 2 with
    // request 0 strictly first; head_request() tracks the sequence point.
    if (sim.result().requests_satisfied == 1) {
      EXPECT_EQ(sim.head_request(), 1u);
    }
  }
  EXPECT_TRUE(sim.result().completed);
}

TEST(BalancingSim, SwapRateKnobDoesNotBreakCompletion) {
  // The paper: "varying this rate did not significantly alter the
  // results" — at minimum, higher rates must still complete.
  const graph::Graph graph = graph::make_cycle(9);
  const Workload workload = small_workload(9, 6, 25, 8);
  for (std::uint32_t rate : {1u, 2u, 4u}) {
    BalancingConfig config;
    config.swaps_per_node_per_round = rate;
    config.seed = 29;
    const BalancingResult result = run_balancing(graph, workload, config);
    EXPECT_TRUE(result.completed) << "rate=" << rate;
  }
}

TEST(BalancingSim, RejectsDisconnectedConsumerPair) {
  graph::Graph graph(6);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(3, 4);
  graph.add_edge(4, 5);
  Workload workload;
  workload.pairs = {NodePair(0, 5)};
  workload.sequence = {0};
  BalancingConfig config;
  EXPECT_THROW(BalancingSimulation(graph, workload, config), PreconditionError);
}

TEST(BalancingSim, WaitStatsPopulated) {
  const graph::Graph graph = graph::make_cycle(9);
  const Workload workload = small_workload(9, 6, 25, 9);
  BalancingConfig config;
  config.seed = 31;
  const BalancingResult result = run_balancing(graph, workload, config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.head_wait_rounds.count(), 25u);
  EXPECT_GE(result.head_wait_rounds.max(), result.head_wait_rounds.mean());
}

}  // namespace
}  // namespace poq::core
