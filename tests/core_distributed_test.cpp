#include "core/distributed.hpp"

#include <gtest/gtest.h>

#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::core {
namespace {

Workload grid_workload(std::size_t nodes, std::uint64_t seed) {
  util::Rng rng(seed);
  return make_uniform_workload(nodes, 10, 100000, rng);
}

DistributedConfig base_config() {
  DistributedConfig config;
  config.seed = 3;
  config.duration = 150.0;
  return config;
}

TEST(Distributed, ServesRequestsUnderLatency) {
  const graph::Graph graph = graph::make_torus_grid(16);
  const DistributedResult result =
      run_distributed(graph, grid_workload(16, 1), base_config());
  EXPECT_GT(result.requests_satisfied, 0u);
  EXPECT_GT(result.swaps, 0u);
  EXPECT_GT(result.pairs_generated, 0u);
  EXPECT_GT(result.control_messages, 0u);
  EXPECT_GT(result.control_bytes, result.control_messages);
}

TEST(Distributed, DeterministicForFixedSeed) {
  const graph::Graph graph = graph::make_torus_grid(16);
  const DistributedResult a =
      run_distributed(graph, grid_workload(16, 1), base_config());
  const DistributedResult b =
      run_distributed(graph, grid_workload(16, 1), base_config());
  EXPECT_EQ(a.requests_satisfied, b.requests_satisfied);
  EXPECT_EQ(a.swaps, b.swaps);
  EXPECT_EQ(a.stale_swaps, b.stale_swaps);
  EXPECT_EQ(a.consume_conflicts, b.consume_conflicts);
  EXPECT_EQ(a.control_bytes, b.control_bytes);
}

TEST(Distributed, NearZeroLatencyMeansFewStaleSwaps) {
  const graph::Graph graph = graph::make_torus_grid(16);
  DistributedConfig config = base_config();
  config.latency_per_hop = 1e-6;
  const DistributedResult result =
      run_distributed(graph, grid_workload(16, 2), config);
  ASSERT_GT(result.swaps, 0u);
  // With (near) instant control, beliefs track truth; stale decisions
  // should be rare.
  EXPECT_LT(result.stale_swap_fraction(), 0.05);
}

TEST(Distributed, HigherLatencyIncreasesStaleness) {
  const graph::Graph graph = graph::make_torus_grid(16);
  DistributedConfig fast = base_config();
  fast.latency_per_hop = 0.01;
  DistributedConfig slow = base_config();
  slow.latency_per_hop = 2.0;
  const DistributedResult quick_net =
      run_distributed(graph, grid_workload(16, 3), fast);
  const DistributedResult slow_net =
      run_distributed(graph, grid_workload(16, 3), slow);
  ASSERT_GT(quick_net.swaps, 0u);
  ASSERT_GT(slow_net.swaps, 0u);
  EXPECT_GT(slow_net.decision_view_age.mean(),
            quick_net.decision_view_age.mean());
  EXPECT_GE(slow_net.stale_swap_fraction() + 0.02,
            quick_net.stale_swap_fraction());
}

TEST(Distributed, FractionsWithinRange) {
  const graph::Graph graph = graph::make_torus_grid(16);
  const DistributedResult result =
      run_distributed(graph, grid_workload(16, 4), base_config());
  EXPECT_GE(result.stale_swap_fraction(), 0.0);
  EXPECT_LE(result.stale_swap_fraction(), 1.0);
  EXPECT_GE(result.conflict_fraction(), 0.0);
  EXPECT_LE(result.conflict_fraction(), 1.0);
}

TEST(Distributed, MoreReportingFreshensViews) {
  const graph::Graph graph = graph::make_torus_grid(16);
  DistributedConfig sparse = base_config();
  sparse.report_rate = 0.2;
  DistributedConfig dense = base_config();
  dense.report_rate = 4.0;
  const DistributedResult rare =
      run_distributed(graph, grid_workload(16, 5), sparse);
  const DistributedResult frequent =
      run_distributed(graph, grid_workload(16, 5), dense);
  ASSERT_GT(rare.swaps, 0u);
  ASSERT_GT(frequent.swaps, 0u);
  EXPECT_LT(frequent.decision_view_age.mean(), rare.decision_view_age.mean());
  EXPECT_GT(frequent.control_bytes, rare.control_bytes);
}

TEST(Distributed, ControlPlaneScalesSubQuadratically) {
  // Count rows travel as sparse CountUpdate messages to a node's believed
  // partners, not as dense n^2 view matrices to everyone. On a cycle
  // (constant degree) the per-run control traffic should grow roughly
  // linearly in n: quadrupling the nodes must stay far from the 16x a
  // quadratic broadcast would cost.
  const auto bytes_at = [](std::size_t nodes) {
    DistributedConfig config;
    config.seed = 9;
    config.duration = 60.0;
    const graph::Graph graph = graph::make_cycle(nodes);
    util::Rng rng(5);
    const Workload workload = make_uniform_workload(nodes, 10, 100000, rng);
    const DistributedResult result = run_distributed(graph, workload, config);
    EXPECT_GT(result.control_bytes, 0u) << "n=" << nodes;
    return static_cast<double>(result.control_bytes);
  };
  const double small = bytes_at(64);
  const double large = bytes_at(256);
  EXPECT_LT(large / small, 8.0)
      << "control bytes grew x" << (large / small)
      << " for 4x the nodes: the dense-broadcast regression is back";
}

TEST(Distributed, RejectsBadInputs) {
  const graph::Graph tiny(2);
  Workload workload;
  workload.pairs = {NodePair(0, 1)};
  workload.sequence = {0};
  EXPECT_THROW([&] { (void)run_distributed(tiny, workload, base_config()); }(),
               PreconditionError);
  const graph::Graph graph = graph::make_cycle(6);
  DistributedConfig negative = base_config();
  negative.latency_per_hop = -1.0;
  EXPECT_THROW([&] { (void)run_distributed(graph, workload, negative); }(),
               PreconditionError);
}

}  // namespace
}  // namespace poq::core
