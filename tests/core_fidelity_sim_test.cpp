#include "core/fidelity_sim.hpp"

#include <gtest/gtest.h>

#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::core {
namespace {

Workload near_and_far_workload() {
  Workload workload;
  workload.pairs = {NodePair(0, 1), NodePair(0, 3), NodePair(2, 5)};
  for (int i = 0; i < 60; ++i) {
    workload.sequence.push_back(static_cast<std::uint32_t>(i % 3));
  }
  return workload;
}

FidelitySimConfig base_config() {
  FidelitySimConfig config;
  config.seed = 11;
  config.duration = 300.0;
  config.raw_fidelity = 0.92;
  config.memory_time_constant = 60.0;
  return config;
}

TEST(FidelitySim, SatisfiesRequestsOnCycle) {
  const graph::Graph graph = graph::make_cycle(8);
  const FidelitySimResult result =
      run_fidelity_sim(graph, near_and_far_workload(), base_config());
  EXPECT_GT(result.requests_satisfied, 0u);
  EXPECT_GT(result.pairs_generated, 0u);
  EXPECT_GT(result.swaps, 0u);
}

TEST(FidelitySim, ConsumedFidelityRespectsThreshold) {
  const graph::Graph graph = graph::make_cycle(8);
  const FidelitySimConfig config = base_config();
  const FidelitySimResult result =
      run_fidelity_sim(graph, near_and_far_workload(), config);
  ASSERT_GT(result.requests_satisfied, 0u);
  EXPECT_GE(result.consumed_fidelity.min(), config.app_fidelity - 1e-9);
  EXPECT_LE(result.consumed_fidelity.max(), 1.0);
}

TEST(FidelitySim, DeterministicForFixedSeed) {
  const graph::Graph graph = graph::make_cycle(8);
  const FidelitySimResult a =
      run_fidelity_sim(graph, near_and_far_workload(), base_config());
  const FidelitySimResult b =
      run_fidelity_sim(graph, near_and_far_workload(), base_config());
  EXPECT_EQ(a.requests_satisfied, b.requests_satisfied);
  EXPECT_EQ(a.swaps, b.swaps);
  EXPECT_EQ(a.pairs_decayed, b.pairs_decayed);
  EXPECT_EQ(a.distillations, b.distillations);
}

TEST(FidelitySim, ShortMemoryLosesMorePairs) {
  const graph::Graph graph = graph::make_cycle(8);
  FidelitySimConfig short_memory = base_config();
  short_memory.memory_time_constant = 8.0;
  FidelitySimConfig long_memory = base_config();
  long_memory.memory_time_constant = 200.0;
  const FidelitySimResult fragile =
      run_fidelity_sim(graph, near_and_far_workload(), short_memory);
  const FidelitySimResult robust =
      run_fidelity_sim(graph, near_and_far_workload(), long_memory);
  EXPECT_LT(fragile.realized_survival(), robust.realized_survival());
  EXPECT_LE(fragile.requests_satisfied, robust.requests_satisfied);
}

TEST(FidelitySim, SurvivalWithinUnitRange) {
  const graph::Graph graph = graph::make_cycle(8);
  const FidelitySimResult result =
      run_fidelity_sim(graph, near_and_far_workload(), base_config());
  EXPECT_GE(result.realized_survival(), 0.0);
  EXPECT_LE(result.realized_survival(), 1.0);
}

TEST(FidelitySim, DistillationRunsWhenEnabled) {
  const graph::Graph graph = graph::make_cycle(6);
  FidelitySimConfig config = base_config();
  config.app_fidelity = 0.93;  // above raw fidelity: forces distillation
  config.raw_fidelity = 0.90;
  const FidelitySimResult result =
      run_fidelity_sim(graph, near_and_far_workload(), config);
  EXPECT_GT(result.distillations + result.distillation_failures, 0u);
}

TEST(FidelitySim, DistillationDisabledMeansNone) {
  const graph::Graph graph = graph::make_cycle(6);
  FidelitySimConfig config = base_config();
  config.distillation_enabled = false;
  const FidelitySimResult result =
      run_fidelity_sim(graph, near_and_far_workload(), config);
  EXPECT_EQ(result.distillations, 0u);
  EXPECT_EQ(result.distillation_failures, 0u);
}

TEST(FidelitySim, FreshestPolicyBeatsOldestOnFarRequests) {
  // With aggressive decoherence, pairing the freshest pairs should deliver
  // at least as many far-request completions as draining stale pairs.
  const graph::Graph graph = graph::make_cycle(10);
  Workload far;
  far.pairs = {NodePair(0, 5)};
  far.sequence.assign(40, 0);
  FidelitySimConfig fresh = base_config();
  fresh.memory_time_constant = 25.0;
  fresh.policy = PairingPolicy::kFreshest;
  FidelitySimConfig old_first = fresh;
  old_first.policy = PairingPolicy::kOldest;
  const FidelitySimResult a = run_fidelity_sim(graph, far, fresh);
  const FidelitySimResult b = run_fidelity_sim(graph, far, old_first);
  EXPECT_GE(a.requests_satisfied + 2, b.requests_satisfied);  // allow noise
}

TEST(FidelitySim, RealizedOverheadAtLeastTwo) {
  // Every swap or distillation consumes two pairs for at most one output.
  const graph::Graph graph = graph::make_cycle(8);
  const FidelitySimResult result =
      run_fidelity_sim(graph, near_and_far_workload(), base_config());
  if (result.swaps + result.distillations > 0) {
    EXPECT_GE(result.realized_distillation_overhead(), 2.0);
  }
}

TEST(FidelitySim, RejectsBadConfig) {
  const graph::Graph graph = graph::make_cycle(6);
  FidelitySimConfig config = base_config();
  config.raw_fidelity = 0.5;
  config.usable_fidelity = 0.7;
  EXPECT_THROW(
      [&] { (void)run_fidelity_sim(graph, near_and_far_workload(), config); }(),
      PreconditionError);
  FidelitySimConfig zero = base_config();
  zero.duration = 0.0;
  EXPECT_THROW(
      [&] { (void)run_fidelity_sim(graph, near_and_far_workload(), zero); }(),
      PreconditionError);
}

}  // namespace
}  // namespace poq::core
