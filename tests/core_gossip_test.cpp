#include "core/gossip.hpp"

#include <gtest/gtest.h>

#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::core {
namespace {

Workload workload_for(std::size_t nodes, std::size_t requests, std::uint64_t seed) {
  util::Rng rng(seed);
  return make_uniform_workload(nodes, std::min<std::size_t>(8, nodes), requests, rng);
}

TEST(Gossip, CompletesWithPartialKnowledge) {
  const graph::Graph graph = graph::make_cycle(10);
  const Workload workload = workload_for(10, 25, 1);
  GossipConfig config;
  config.base.seed = 3;
  const GossipResult result = run_gossip(graph, workload, config);
  EXPECT_TRUE(result.base.completed);
  EXPECT_EQ(result.base.requests_satisfied, 25u);
}

TEST(Gossip, AccountsControlTraffic) {
  const graph::Graph graph = graph::make_cycle(8);
  const Workload workload = workload_for(8, 15, 2);
  GossipConfig config;
  config.base.seed = 5;
  config.fanout = 2;
  const GossipResult result = run_gossip(graph, workload, config);
  ASSERT_TRUE(result.base.completed);
  EXPECT_GT(result.control_messages, 0u);
  EXPECT_GT(result.control_bytes, result.control_messages);  // > 1 byte each
  // fanout + optimistic peer messages per node per round.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(result.base.rounds) * 8 * (2 + 1);
  EXPECT_EQ(result.control_messages, expected);
}

TEST(Gossip, NoOptimisticPeerReducesTraffic) {
  const graph::Graph graph = graph::make_cycle(8);
  const Workload workload = workload_for(8, 15, 3);
  GossipConfig with_peer;
  with_peer.base.seed = 7;
  GossipConfig without_peer = with_peer;
  without_peer.optimistic_peer = false;
  const GossipResult a = run_gossip(graph, workload, with_peer);
  const GossipResult b = run_gossip(graph, workload, without_peer);
  ASSERT_TRUE(a.base.completed);
  ASSERT_TRUE(b.base.completed);
  const double per_round_a =
      static_cast<double>(a.control_messages) / a.base.rounds;
  const double per_round_b =
      static_cast<double>(b.control_messages) / b.base.rounds;
  EXPECT_GT(per_round_a, per_round_b);
}

TEST(Gossip, ViewsAreStale) {
  const graph::Graph graph = graph::make_cycle(12);
  const Workload workload = workload_for(12, 20, 4);
  GossipConfig config;
  config.base.seed = 9;
  config.fanout = 1;  // slow rotation -> stale views
  const GossipResult result = run_gossip(graph, workload, config);
  ASSERT_TRUE(result.base.completed);
  EXPECT_GT(result.mean_view_age, 0.0);
}

TEST(Gossip, LargerFanoutFreshensViews) {
  const graph::Graph graph = graph::make_cycle(12);
  const Workload workload = workload_for(12, 30, 5);
  GossipConfig slow;
  slow.base.seed = 11;
  slow.fanout = 1;
  slow.optimistic_peer = false;
  GossipConfig fast = slow;
  fast.fanout = 6;
  const GossipResult a = run_gossip(graph, workload, slow);
  const GossipResult b = run_gossip(graph, workload, fast);
  ASSERT_TRUE(a.base.completed);
  ASSERT_TRUE(b.base.completed);
  EXPECT_LT(b.mean_view_age, a.mean_view_age);
}

TEST(Gossip, StillCompletesWithDistillation) {
  const graph::Graph graph = graph::make_cycle(9);
  const Workload workload = workload_for(9, 12, 6);
  GossipConfig config;
  config.base.seed = 13;
  config.base.distillation = 2.0;
  config.base.max_rounds = 200000;
  const GossipResult result = run_gossip(graph, workload, config);
  EXPECT_TRUE(result.base.completed);
}

TEST(Gossip, RejectsZeroFanout) {
  const graph::Graph graph = graph::make_cycle(8);
  const Workload workload = workload_for(8, 5, 7);
  GossipConfig config;
  config.fanout = 0;
  EXPECT_THROW([&] { (void)run_gossip(graph, workload, config); }(),
               PreconditionError);
}

}  // namespace
}  // namespace poq::core
