#include "core/hybrid.hpp"

#include <gtest/gtest.h>

#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"

namespace poq::core {
namespace {

Workload workload_for(std::size_t nodes, std::size_t requests, std::uint64_t seed) {
  util::Rng rng(seed);
  return make_uniform_workload(nodes, std::min<std::size_t>(8, nodes), requests, rng);
}

TEST(Hybrid, CompletesOnCycle) {
  const graph::Graph graph = graph::make_cycle(10);
  const Workload workload = workload_for(10, 30, 1);
  HybridConfig config;
  config.base.seed = 5;
  const HybridResult result = run_hybrid(graph, workload, config);
  EXPECT_TRUE(result.base.completed);
  EXPECT_EQ(result.base.requests_satisfied, 30u);
}

TEST(Hybrid, AssistsBlockedRequests) {
  // On a sparse cycle with far consumer pairs the head request is usually
  // blocked at least once, so assists should trigger.
  const graph::Graph graph = graph::make_cycle(12);
  Workload workload;
  workload.pairs = {NodePair(0, 6), NodePair(2, 8), NodePair(4, 10)};
  workload.sequence = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  HybridConfig config;
  config.base.seed = 9;
  const HybridResult result = run_hybrid(graph, workload, config);
  EXPECT_TRUE(result.base.completed);
  EXPECT_GT(result.assists_attempted, 0u);
}

TEST(Hybrid, NeverSlowerThanPureBalancingByMuch) {
  // Hybrid adds an extra way to satisfy the head request; round counts
  // should not regress beyond noise.
  const graph::Graph graph = graph::make_cycle(12);
  const Workload workload = workload_for(12, 40, 2);
  BalancingConfig base;
  base.seed = 11;
  const BalancingResult pure = run_balancing(graph, workload, base);
  HybridConfig config;
  config.base = base;
  const HybridResult hybrid = run_hybrid(graph, workload, config);
  ASSERT_TRUE(pure.completed);
  ASSERT_TRUE(hybrid.base.completed);
  EXPECT_LE(hybrid.base.rounds, pure.rounds + pure.rounds / 2 + 8);
}

TEST(Hybrid, AssistSwapsCountedInOverhead) {
  const graph::Graph graph = graph::make_cycle(12);
  Workload workload;
  workload.pairs = {NodePair(0, 6)};
  workload.sequence = {0, 0, 0, 0};
  HybridConfig config;
  config.base.seed = 13;
  const HybridResult result = run_hybrid(graph, workload, config);
  ASSERT_TRUE(result.base.completed);
  if (result.assists_succeeded > 0) {
    EXPECT_GT(result.assist_swaps, 0.0);
    // swaps_performed includes the assist swaps.
    EXPECT_GE(result.base.swaps_performed,
              static_cast<std::uint64_t>(result.assist_swaps));
  }
}

TEST(Hybrid, MaxAssistHopsZeroDisablesAssists) {
  const graph::Graph graph = graph::make_cycle(10);
  const Workload workload = workload_for(10, 20, 3);
  HybridConfig config;
  config.base.seed = 17;
  config.max_assist_hops = 0;
  const HybridResult result = run_hybrid(graph, workload, config);
  EXPECT_TRUE(result.base.completed);
  EXPECT_EQ(result.assists_succeeded, 0u);
}

TEST(Hybrid, WithDistillation) {
  const graph::Graph graph = graph::make_cycle(9);
  const Workload workload = workload_for(9, 15, 4);
  HybridConfig config;
  config.base.seed = 19;
  config.base.distillation = 2.0;
  config.base.max_rounds = 200000;
  const HybridResult result = run_hybrid(graph, workload, config);
  EXPECT_TRUE(result.base.completed);
}

}  // namespace
}  // namespace poq::core
