#include "core/ledger.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::core {
namespace {

TEST(PairLedger, StartsEmpty) {
  PairLedger ledger(4);
  EXPECT_EQ(ledger.total_pairs(), 0u);
  EXPECT_EQ(ledger.count(0, 1), 0u);
  EXPECT_TRUE(ledger.partners(0).empty());
  EXPECT_EQ(ledger.minimum_pair_count(), 0u);
}

TEST(PairLedger, CountsAreSymmetric) {
  PairLedger ledger(4);
  ledger.add(2, 0, 3);
  EXPECT_EQ(ledger.count(0, 2), 3u);
  EXPECT_EQ(ledger.count(2, 0), 3u);
  EXPECT_EQ(ledger.total_pairs(), 3u);
}

TEST(PairLedger, PartnersTrackNonzeroCounts) {
  PairLedger ledger(5);
  ledger.add(1, 3);
  ledger.add(1, 0);
  ledger.add(1, 4);
  const auto partners = ledger.partners(1);
  ASSERT_EQ(partners.size(), 3u);
  EXPECT_EQ(partners[0], 0u);
  EXPECT_EQ(partners[1], 3u);
  EXPECT_EQ(partners[2], 4u);
  EXPECT_EQ(ledger.partners(3).size(), 1u);
  EXPECT_EQ(ledger.partners(2).size(), 0u);
}

TEST(PairLedger, RemoveUpdatesPartners) {
  PairLedger ledger(4);
  ledger.add(0, 1, 2);
  ledger.remove(0, 1, 1);
  EXPECT_EQ(ledger.count(0, 1), 1u);
  EXPECT_EQ(ledger.partners(0).size(), 1u);
  ledger.remove(1, 0, 1);
  EXPECT_EQ(ledger.count(0, 1), 0u);
  EXPECT_TRUE(ledger.partners(0).empty());
  EXPECT_TRUE(ledger.partners(1).empty());
  EXPECT_EQ(ledger.total_pairs(), 0u);
}

TEST(PairLedger, RemoveUnderflowThrows) {
  PairLedger ledger(3);
  ledger.add(0, 1, 1);
  EXPECT_THROW(ledger.remove(0, 1, 2), PreconditionError);
}

TEST(PairLedger, RejectsSelfPairs) {
  PairLedger ledger(3);
  EXPECT_THROW(ledger.add(1, 1), PreconditionError);
  EXPECT_THROW((void)ledger.count(2, 2), PreconditionError);
}

TEST(PairLedger, RejectsOutOfRange) {
  PairLedger ledger(3);
  EXPECT_THROW(ledger.add(0, 3), PreconditionError);
  EXPECT_THROW((void)ledger.partners(5), PreconditionError);
}

TEST(PairLedger, ZeroAmountIsNoop) {
  PairLedger ledger(3);
  ledger.add(0, 1, 0);
  EXPECT_EQ(ledger.count(0, 1), 0u);
  EXPECT_TRUE(ledger.partners(0).empty());
  ledger.add(0, 1, 2);
  ledger.remove(0, 1, 0);
  EXPECT_EQ(ledger.count(0, 1), 2u);
}

TEST(PairLedger, MinimumPairCount) {
  PairLedger ledger(3);
  ledger.add(0, 1, 2);
  ledger.add(0, 2, 3);
  EXPECT_EQ(ledger.minimum_pair_count(), 0u);  // (1,2) still empty
  ledger.add(1, 2, 1);
  EXPECT_EQ(ledger.minimum_pair_count(), 1u);
}

TEST(PairLedger, EntanglementGraphThreshold) {
  PairLedger ledger(4);
  ledger.add(0, 1, 1);
  ledger.add(1, 2, 3);
  ledger.add(2, 3, 5);
  const auto any = ledger.entanglement_graph(1);
  EXPECT_EQ(any.edge_count(), 3u);
  const auto strong = ledger.entanglement_graph(3);
  EXPECT_EQ(strong.edge_count(), 2u);
  EXPECT_TRUE(strong.has_edge(1, 2));
  EXPECT_TRUE(strong.has_edge(2, 3));
  EXPECT_FALSE(strong.has_edge(0, 1));
}

TEST(PairLedger, TotalPairsAccumulates) {
  PairLedger ledger(5);
  ledger.add(0, 1, 10);
  ledger.add(2, 3, 5);
  ledger.remove(0, 1, 4);
  EXPECT_EQ(ledger.total_pairs(), 11u);
}

/// Brute-force reference for minimum_pair_count: the dense matrix scan.
std::uint32_t scan_minimum(const PairLedger& ledger) {
  std::uint32_t minimum = UINT32_MAX;
  const auto n = static_cast<NodeId>(ledger.node_count());
  for (NodeId x = 0; x < n; ++x) {
    for (NodeId y = x + 1; y < n; ++y) {
      minimum = std::min(minimum, ledger.count(x, y));
    }
  }
  return minimum;
}

TEST(PairLedger, MinimumPairCountMatchesScanUnderRandomChurn) {
  // The incremental count histogram must agree with the full matrix scan
  // after every mutation of a randomized add/remove workload.
  PairLedger ledger(6);
  util::Rng rng(0xC0FFEE);
  for (int step = 0; step < 4000; ++step) {
    const auto x = static_cast<NodeId>(rng.uniform_index(6));
    auto y = static_cast<NodeId>(rng.uniform_index(6));
    if (y == x) y = (y + 1) % 6;
    const auto amount = static_cast<std::uint32_t>(1 + rng.uniform_index(3));
    if (rng.bernoulli(0.55) || ledger.count(x, y) < amount) {
      ledger.add(x, y, amount);
    } else {
      ledger.remove(x, y, amount);
    }
    ASSERT_EQ(ledger.minimum_pair_count(), scan_minimum(ledger))
        << "histogram minimum diverged at step " << step;
  }
}

TEST(PairLedger, MinimumPairCountFallsBackAboveHistogramCap) {
  // Saturate every unordered pair past the histogram range: the exact
  // minimum must still come out (via the dense-scan fallback).
  PairLedger ledger(3);
  const std::uint32_t above = PairLedger::kMinHistogramCap + 40;
  ledger.add(0, 1, above + 2);
  ledger.add(0, 2, above);
  ledger.add(1, 2, above + 7);
  EXPECT_EQ(ledger.minimum_pair_count(), above);
  ledger.remove(0, 2, above - 1);  // drop one pair back into range
  EXPECT_EQ(ledger.minimum_pair_count(), 1u);
}

std::vector<NodeId> drained(PairLedger& ledger) {
  std::vector<NodeId> nodes;
  ledger.drain_dirty(nodes);
  return nodes;
}

TEST(PairLedger, DirtyMarksEndpointsAndEligibleCommonPartners) {
  // 0-1 counts change; 2 holds eligible pairs toward both endpoints and
  // reads C_0(1) as a beneficiary count; 3 holds a pair toward 0 only.
  PairLedger ledger(5);
  ledger.enable_dirty_tracking();
  ledger.set_reader_threshold(2);
  ledger.add(0, 2, 2);
  ledger.add(1, 2, 2);
  ledger.add(0, 3, 2);
  (void)drained(ledger);  // start clean
  ledger.add(0, 1, 2);
  EXPECT_EQ(drained(ledger), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(ledger.dirty_count(), 0u);
}

TEST(PairLedger, DirtySkipsMutationsBelowReaderThreshold) {
  // With eligibility from count 2 (uniform D = 1), a 0 -> 1 add is
  // invisible to the endpoints' scans (the new partner stays ineligible)
  // — only eligible common partners read its exact value.
  PairLedger ledger(5);
  ledger.enable_dirty_tracking();
  ledger.set_reader_threshold(2);
  ledger.add(0, 2, 2);
  ledger.add(1, 2, 2);
  (void)drained(ledger);
  ledger.add(0, 1, 1);  // below threshold: endpoints unmarked
  EXPECT_EQ(drained(ledger), (std::vector<NodeId>{2}));
  ledger.add(0, 1, 1);  // 1 -> 2 crosses the threshold: endpoints marked
  EXPECT_EQ(drained(ledger), (std::vector<NodeId>{0, 1, 2}));
}

TEST(PairLedger, MarkingBudgetOverflowLatchesEverythingDirty) {
  // Hammer one epoch with far more reader scans than the O(n) budget:
  // the ledger must degrade to "everything dirty" (over-marking is safe)
  // and the next drain must emit every node and start a fresh epoch.
  PairLedger ledger(8);
  ledger.enable_dirty_tracking();
  // Dense counts so every mutation scans a full partner row.
  for (NodeId x = 0; x < 8; ++x) {
    for (NodeId y = static_cast<NodeId>(x + 1); y < 8; ++y) ledger.add(x, y, 3);
  }
  std::vector<NodeId> nodes;
  ledger.drain_dirty(nodes);
  nodes.clear();
  const std::int64_t budget = PairLedger::kMarkingBudgetPerNode * 8;
  for (std::int64_t i = 0; i < budget; ++i) {
    ledger.add(0, 1, 1);
    ledger.remove(0, 1, 1);
  }
  EXPECT_EQ(ledger.dirty_count(), 8u);  // latched: everything reads dirty
  EXPECT_TRUE(ledger.dirty(7));
  EXPECT_EQ(ledger.drain_dirty(nodes), 8u);
  EXPECT_EQ(nodes.size(), 8u);
  EXPECT_EQ(ledger.dirty_count(), 0u);
  // Fresh epoch: precise (bit-level, unlatched) marking works again — in
  // this dense ledger every node reads C_0(1), but the marks are real
  // bits now, so a per-node clear takes effect (a latch would not).
  ledger.add(0, 1, 1);
  EXPECT_EQ(ledger.dirty_count(), 8u);
  ledger.clear_dirty(5);
  EXPECT_EQ(ledger.dirty_count(), 7u);
  EXPECT_FALSE(ledger.dirty(5));
}

TEST(PairLedger, ResetMarkingBudgetConvertsOverflowToBits) {
  PairLedger ledger(6);
  ledger.enable_dirty_tracking();
  for (NodeId x = 0; x < 6; ++x) {
    for (NodeId y = static_cast<NodeId>(x + 1); y < 6; ++y) ledger.add(x, y, 3);
  }
  std::vector<NodeId> nodes;
  ledger.drain_dirty(nodes);
  for (int i = 0; i < 200; ++i) {
    ledger.add(0, 1, 1);
    ledger.remove(0, 1, 1);
  }
  ASSERT_EQ(ledger.dirty_count(), 6u);  // overflowed
  ledger.reset_marking_budget();        // the fidelity slice boundary
  // The latch is gone but the information loss was conservative: every
  // node's bit is set, and per-node clears work again.
  EXPECT_EQ(ledger.dirty_count(), 6u);
  ledger.clear_dirty(3);
  EXPECT_EQ(ledger.dirty_count(), 5u);
  EXPECT_FALSE(ledger.dirty(3));
}

// add_edges must be indistinguishable from the scalar add() loop it
// replaces in the generation merge: same rows, same totals, same
// minimum, and the same dirty frontier in the same drain order.
TEST(PairLedger, AddEdgesMatchesScalarAddLoop) {
  constexpr std::size_t kNodes = 24;
  util::Rng rng(90210);
  std::vector<graph::Edge> edges;
  for (NodeId x = 0; x < kNodes; ++x) {
    for (NodeId y = static_cast<NodeId>(x + 1); y < kNodes; ++y) {
      if (rng.uniform_double() < 0.4) {
        // Mix endpoint orders: add_edges must normalize via a()/b().
        if (rng.uniform_double() < 0.5) edges.push_back({x, y});
        else edges.push_back({y, x});
      }
    }
  }
  ASSERT_GT(edges.size(), 50u);
  std::vector<std::uint32_t> amounts(edges.size());
  std::vector<std::uint8_t> extra(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    amounts[i] = static_cast<std::uint32_t>(rng.uniform_index(4));  // has zeros
    extra[i] = static_cast<std::uint8_t>(rng.uniform_index(2));
  }

  const auto expect_equivalent = [&](PairLedger& batched, PairLedger& scalar,
                                     auto amount_of, std::uint64_t added) {
    std::uint64_t expected_added = 0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      scalar.add(edges[i].a(), edges[i].b(), amount_of(i));
      expected_added += amount_of(i);
    }
    EXPECT_EQ(added, expected_added);
    EXPECT_EQ(batched.total_pairs(), scalar.total_pairs());
    EXPECT_EQ(batched.minimum_pair_count(), scalar.minimum_pair_count());
    for (NodeId x = 0; x < kNodes; ++x) {
      for (NodeId y = static_cast<NodeId>(x + 1); y < kNodes; ++y) {
        EXPECT_EQ(batched.count(x, y), scalar.count(x, y));
      }
    }
    std::vector<NodeId> batched_dirty;
    std::vector<NodeId> scalar_dirty;
    batched.drain_dirty(batched_dirty);
    scalar.drain_dirty(scalar_dirty);
    EXPECT_EQ(batched_dirty, scalar_dirty);
  };

  const auto fresh_pair = [&](PairLedger& ledger) {
    ledger.enable_dirty_tracking();
    ledger.set_reader_threshold(2);
    // Seed some counts so mark_pair_readers has common partners to walk,
    // then start from a clean frontier.
    ledger.add(0, 1, 2);
    ledger.add(1, 2, 2);
    ledger.add(2, 3, 1);
    std::vector<NodeId> drain;
    ledger.drain_dirty(drain);
  };

  {  // Uniform-amount overload.
    PairLedger batched(kNodes), scalar(kNodes);
    fresh_pair(batched);
    fresh_pair(scalar);
    const std::uint64_t added = batched.add_edges(edges, 3);
    expect_equivalent(batched, scalar, [](std::size_t) { return 3u; }, added);
  }
  {  // Per-edge amounts overload (zero amounts skipped).
    PairLedger batched(kNodes), scalar(kNodes);
    fresh_pair(batched);
    fresh_pair(scalar);
    const std::uint64_t added =
        batched.add_edges(edges, std::span<const std::uint32_t>(amounts));
    expect_equivalent(
        batched, scalar, [&](std::size_t i) { return amounts[i]; }, added);
  }
  {  // base + 0/1 flags overload (the generation-merge shape).
    PairLedger batched(kNodes), scalar(kNodes);
    fresh_pair(batched);
    fresh_pair(scalar);
    const std::uint64_t added =
        batched.add_edges(edges, 2, std::span<const std::uint8_t>(extra));
    expect_equivalent(
        batched, scalar, [&](std::size_t i) { return 2u + extra[i]; }, added);
  }
  {  // base 0 + flags: exercises the amount == 0 skip path heavily.
    PairLedger batched(kNodes), scalar(kNodes);
    fresh_pair(batched);
    fresh_pair(scalar);
    const std::uint64_t added =
        batched.add_edges(edges, 0, std::span<const std::uint8_t>(extra));
    expect_equivalent(
        batched, scalar,
        [&](std::size_t i) { return static_cast<std::uint32_t>(extra[i]); },
        added);
  }
}

TEST(PairLedger, AddEdgesValidatesLikeScalarAdd) {
  PairLedger ledger(4);
  const std::vector<graph::Edge> self_loop{{2, 2}};
  EXPECT_THROW((void)ledger.add_edges(self_loop, 1), PreconditionError);
  const std::vector<graph::Edge> out_of_range{{1, 9}};
  EXPECT_THROW((void)ledger.add_edges(out_of_range, 1), PreconditionError);
  const std::vector<graph::Edge> edges{{0, 1}, {1, 2}};
  const std::vector<std::uint32_t> short_amounts{1};
  EXPECT_THROW(
      (void)ledger.add_edges(edges,
                             std::span<const std::uint32_t>(short_amounts)),
      PreconditionError);
  EXPECT_EQ(ledger.total_pairs(), 0u);  // failed batches may not commit totals
}

TEST(PairLedger, DirtyTrackingOffByDefaultAndMarkAllOnEnable) {
  PairLedger ledger(4);
  EXPECT_FALSE(ledger.dirty_tracking());
  ledger.add(0, 1, 3);
  EXPECT_EQ(ledger.dirty_count(), 0u);
  ledger.enable_dirty_tracking();
  EXPECT_TRUE(ledger.dirty_tracking());
  EXPECT_EQ(ledger.dirty_count(), 4u);  // everything starts dirty
  std::vector<NodeId> nodes;
  EXPECT_EQ(ledger.drain_dirty(nodes), 4u);
  EXPECT_TRUE(ledger.dirty(0) == false && ledger.dirty_count() == 0u);
  ledger.mark_dirty(2);
  EXPECT_TRUE(ledger.dirty(2));
  ledger.clear_dirty(2);
  EXPECT_EQ(ledger.dirty_count(), 0u);
}

}  // namespace
}  // namespace poq::core
