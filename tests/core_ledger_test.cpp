#include "core/ledger.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace poq::core {
namespace {

TEST(PairLedger, StartsEmpty) {
  PairLedger ledger(4);
  EXPECT_EQ(ledger.total_pairs(), 0u);
  EXPECT_EQ(ledger.count(0, 1), 0u);
  EXPECT_TRUE(ledger.partners(0).empty());
  EXPECT_EQ(ledger.minimum_pair_count(), 0u);
}

TEST(PairLedger, CountsAreSymmetric) {
  PairLedger ledger(4);
  ledger.add(2, 0, 3);
  EXPECT_EQ(ledger.count(0, 2), 3u);
  EXPECT_EQ(ledger.count(2, 0), 3u);
  EXPECT_EQ(ledger.total_pairs(), 3u);
}

TEST(PairLedger, PartnersTrackNonzeroCounts) {
  PairLedger ledger(5);
  ledger.add(1, 3);
  ledger.add(1, 0);
  ledger.add(1, 4);
  const auto partners = ledger.partners(1);
  ASSERT_EQ(partners.size(), 3u);
  EXPECT_EQ(partners[0], 0u);
  EXPECT_EQ(partners[1], 3u);
  EXPECT_EQ(partners[2], 4u);
  EXPECT_EQ(ledger.partners(3).size(), 1u);
  EXPECT_EQ(ledger.partners(2).size(), 0u);
}

TEST(PairLedger, RemoveUpdatesPartners) {
  PairLedger ledger(4);
  ledger.add(0, 1, 2);
  ledger.remove(0, 1, 1);
  EXPECT_EQ(ledger.count(0, 1), 1u);
  EXPECT_EQ(ledger.partners(0).size(), 1u);
  ledger.remove(1, 0, 1);
  EXPECT_EQ(ledger.count(0, 1), 0u);
  EXPECT_TRUE(ledger.partners(0).empty());
  EXPECT_TRUE(ledger.partners(1).empty());
  EXPECT_EQ(ledger.total_pairs(), 0u);
}

TEST(PairLedger, RemoveUnderflowThrows) {
  PairLedger ledger(3);
  ledger.add(0, 1, 1);
  EXPECT_THROW(ledger.remove(0, 1, 2), PreconditionError);
}

TEST(PairLedger, RejectsSelfPairs) {
  PairLedger ledger(3);
  EXPECT_THROW(ledger.add(1, 1), PreconditionError);
  EXPECT_THROW((void)ledger.count(2, 2), PreconditionError);
}

TEST(PairLedger, RejectsOutOfRange) {
  PairLedger ledger(3);
  EXPECT_THROW(ledger.add(0, 3), PreconditionError);
  EXPECT_THROW((void)ledger.partners(5), PreconditionError);
}

TEST(PairLedger, ZeroAmountIsNoop) {
  PairLedger ledger(3);
  ledger.add(0, 1, 0);
  EXPECT_EQ(ledger.count(0, 1), 0u);
  EXPECT_TRUE(ledger.partners(0).empty());
  ledger.add(0, 1, 2);
  ledger.remove(0, 1, 0);
  EXPECT_EQ(ledger.count(0, 1), 2u);
}

TEST(PairLedger, MinimumPairCount) {
  PairLedger ledger(3);
  ledger.add(0, 1, 2);
  ledger.add(0, 2, 3);
  EXPECT_EQ(ledger.minimum_pair_count(), 0u);  // (1,2) still empty
  ledger.add(1, 2, 1);
  EXPECT_EQ(ledger.minimum_pair_count(), 1u);
}

TEST(PairLedger, EntanglementGraphThreshold) {
  PairLedger ledger(4);
  ledger.add(0, 1, 1);
  ledger.add(1, 2, 3);
  ledger.add(2, 3, 5);
  const auto any = ledger.entanglement_graph(1);
  EXPECT_EQ(any.edge_count(), 3u);
  const auto strong = ledger.entanglement_graph(3);
  EXPECT_EQ(strong.edge_count(), 2u);
  EXPECT_TRUE(strong.has_edge(1, 2));
  EXPECT_TRUE(strong.has_edge(2, 3));
  EXPECT_FALSE(strong.has_edge(0, 1));
}

TEST(PairLedger, TotalPairsAccumulates) {
  PairLedger ledger(5);
  ledger.add(0, 1, 10);
  ledger.add(2, 3, 5);
  ledger.remove(0, 1, 4);
  EXPECT_EQ(ledger.total_pairs(), 11u);
}

}  // namespace
}  // namespace poq::core
