#include "core/lp_formulation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/nested.hpp"
#include "graph/topology.hpp"
#include "util/error.hpp"

namespace poq::core {
namespace {

/// Spec over a generation graph with gamma = capacity on every edge.
SteadyStateSpec spec_from_graph(const graph::Graph& graph, double capacity) {
  SteadyStateSpec spec;
  spec.node_count = graph.node_count();
  for (const graph::Edge& edge : graph.edges()) {
    spec.generation_capacity.push_back(
        RatedPair{NodePair(edge.a(), edge.b()), capacity});
  }
  return spec;
}

TEST(SteadyStateLp, SigmaVariableCount) {
  SteadyStateSpec spec = spec_from_graph(graph::make_cycle(5), 1.0);
  const SteadyStateLp lp(spec);
  // n * C(n-1, 2) = 5 * 6 = 30.
  EXPECT_EQ(lp.sigma_variable_count(), 30u);
}

TEST(SteadyStateLp, TwoHopMinGeneration) {
  // Path 0-1-2, demand (0,2) at rate 1, D=1: the only way to serve the
  // demand is sigma_1({0,2}) = 1, costing one pair on each edge.
  SteadyStateSpec spec = spec_from_graph(graph::make_path(3), 10.0);
  spec.demand.push_back(RatedPair{NodePair(0, 2), 1.0});
  const SteadyStateLp lp(spec);
  const SteadyStateSolution solution =
      lp.solve(SteadyStateObjective::kMinTotalGeneration);
  ASSERT_EQ(solution.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(solution.total_generation, 2.0, 1e-5);
  EXPECT_LT(solution.max_violation, 1e-5);
  // The swap rate through node 1 must be >= the demand.
  double through_one = 0.0;
  for (const SwapRate& swap : solution.swap_rates) {
    if (swap.repeater == 1 && swap.pair == NodePair(0, 2)) through_one += swap.rate;
  }
  EXPECT_NEAR(through_one, 1.0, 1e-5);
}

TEST(SteadyStateLp, DistillationSquaresTwoHopCost) {
  // With uniform D, serving one unit of 2-hop demand needs D sigma and
  // D^2 generation per edge: total 2 D^2 (matches nested_raw_pair_cost).
  for (double d : {1.0, 2.0, 3.0}) {
    SteadyStateSpec spec = spec_from_graph(graph::make_path(3), 100.0);
    spec.demand.push_back(RatedPair{NodePair(0, 2), 1.0});
    spec.distillation = PairMatrix(d);
    const SteadyStateLp lp(spec);
    const SteadyStateSolution solution =
        lp.solve(SteadyStateObjective::kMinTotalGeneration);
    ASSERT_EQ(solution.status, lp::SolveStatus::kOptimal);
    EXPECT_NEAR(solution.total_generation, nested_raw_pair_cost(2, d), 1e-4)
        << "D=" << d;
  }
}

TEST(SteadyStateLp, ThreeHopMatchesNestedRawCost) {
  SteadyStateSpec spec = spec_from_graph(graph::make_path(4), 100.0);
  spec.demand.push_back(RatedPair{NodePair(0, 3), 1.0});
  const SteadyStateLp lp(spec);
  const SteadyStateSolution solution =
      lp.solve(SteadyStateObjective::kMinTotalGeneration);
  ASSERT_EQ(solution.status, lp::SolveStatus::kOptimal);
  // D=1: three raw pairs, one per edge.
  EXPECT_NEAR(solution.total_generation, 3.0, 1e-5);
}

TEST(SteadyStateLp, QecThinningScalesGeneration) {
  SteadyStateSpec spec = spec_from_graph(graph::make_path(3), 100.0);
  spec.demand.push_back(RatedPair{NodePair(0, 2), 1.0});
  spec.qec_overhead = 4.0;
  const SteadyStateLp lp(spec);
  const SteadyStateSolution solution =
      lp.solve(SteadyStateObjective::kMinTotalGeneration);
  ASSERT_EQ(solution.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(solution.total_generation, 8.0, 1e-4);  // 4x the unthinned 2.0
}

TEST(SteadyStateLp, SurvivalLossScalesGeneration) {
  SteadyStateSpec spec = spec_from_graph(graph::make_path(3), 100.0);
  spec.demand.push_back(RatedPair{NodePair(0, 2), 1.0});
  spec.survival = PairMatrix(0.5);  // half of arrivals survive
  const SteadyStateLp lp(spec);
  const SteadyStateSolution solution =
      lp.solve(SteadyStateObjective::kMinTotalGeneration);
  ASSERT_EQ(solution.status, lp::SolveStatus::kOptimal);
  // Each constraint needs L*(g or sigma) >= departures: the edge rows need
  // g >= sigma / L and the demand row needs sigma >= c / L:
  // sigma = 2, g = 4 per edge -> total 8.
  EXPECT_NEAR(solution.total_generation, 8.0, 1e-4);
}

TEST(SteadyStateLp, InfeasibleWhenDemandExceedsCapacity) {
  SteadyStateSpec spec = spec_from_graph(graph::make_path(3), 0.5);
  spec.demand.push_back(RatedPair{NodePair(0, 2), 1.0});  // needs 1.0 per edge
  const SteadyStateLp lp(spec);
  const SteadyStateSolution solution =
      lp.solve(SteadyStateObjective::kMinTotalGeneration);
  EXPECT_EQ(solution.status, lp::SolveStatus::kInfeasible);
}

TEST(SteadyStateLp, MaxTotalConsumptionSaturatesCapacity) {
  // Cycle of 4 with unit capacities; two opposite demands can each be
  // served via two 2-hop routes. Total elementary supply 4, each unit of
  // consumption costs 2 elementary pairs: optimum total consumption 2.
  SteadyStateSpec spec = spec_from_graph(graph::make_cycle(4), 1.0);
  spec.demand.push_back(RatedPair{NodePair(0, 2), 5.0});
  spec.demand.push_back(RatedPair{NodePair(1, 3), 5.0});
  const SteadyStateLp lp(spec);
  const SteadyStateSolution solution =
      lp.solve(SteadyStateObjective::kMaxTotalConsumption);
  ASSERT_EQ(solution.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(solution.total_consumption, 2.0, 1e-5);
}

TEST(SteadyStateLp, MaxMinConsumptionIsFair) {
  // Same cycle; max-min must give each demand 1.0 rather than starving one.
  SteadyStateSpec spec = spec_from_graph(graph::make_cycle(4), 1.0);
  spec.demand.push_back(RatedPair{NodePair(0, 2), 5.0});
  spec.demand.push_back(RatedPair{NodePair(1, 3), 5.0});
  const SteadyStateLp lp(spec);
  const SteadyStateSolution solution =
      lp.solve(SteadyStateObjective::kMaxMinConsumption);
  ASSERT_EQ(solution.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(solution.consumption.size(), 2u);
  EXPECT_NEAR(solution.consumption[0].rate, 1.0, 1e-4);
  EXPECT_NEAR(solution.consumption[1].rate, 1.0, 1e-4);
}

TEST(SteadyStateLp, ConcurrentScaleMatchesHandAnalysis) {
  // See analysis in the formulation docs: alpha* = 1 for the unit cycle
  // with opposite unit demands.
  SteadyStateSpec spec = spec_from_graph(graph::make_cycle(4), 1.0);
  spec.demand.push_back(RatedPair{NodePair(0, 2), 1.0});
  spec.demand.push_back(RatedPair{NodePair(1, 3), 1.0});
  const SteadyStateLp lp(spec);
  const SteadyStateSolution solution =
      lp.solve(SteadyStateObjective::kMaxConcurrentScale);
  ASSERT_EQ(solution.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 1.0, 1e-5);
  EXPECT_NEAR(solution.consumption[0].rate, 1.0, 1e-5);
}

TEST(SteadyStateLp, MinMaxGenerationBalancesLoad) {
  // Path 0-1-2 with demand (0,2): any solution needs g >= 1 per edge
  // (D=1), so the min-max equals 1; a star detour cannot help on a path.
  SteadyStateSpec spec = spec_from_graph(graph::make_path(3), 10.0);
  spec.demand.push_back(RatedPair{NodePair(0, 2), 1.0});
  const SteadyStateLp lp(spec);
  const SteadyStateSolution solution =
      lp.solve(SteadyStateObjective::kMinMaxGeneration);
  ASSERT_EQ(solution.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 1.0, 1e-5);
}

TEST(SteadyStateLp, LexicographicMatchesMinGenerationOfMaxConsumption) {
  SteadyStateSpec spec = spec_from_graph(graph::make_cycle(4), 1.0);
  spec.demand.push_back(RatedPair{NodePair(0, 2), 5.0});
  spec.demand.push_back(RatedPair{NodePair(1, 3), 5.0});
  const SteadyStateLp lp(spec);
  const SteadyStateSolution solution = lp.solve_lexicographic();
  ASSERT_EQ(solution.status, lp::SolveStatus::kOptimal);
  // Max consumption 2.0 needs all 4 units of generation.
  EXPECT_NEAR(solution.total_consumption, 2.0, 1e-3);
  EXPECT_NEAR(solution.total_generation, 4.0, 1e-3);
}

TEST(SteadyStateLp, PathObliviousnessUsesAnyRepeater) {
  // Complete graph over 4 nodes with only edges (0,1),(1,2),(2,3),(3,0)
  // generating: demand (0,2) can route through 1 or 3; min generation is
  // indifferent, but the solution must be feasible and tight either way.
  SteadyStateSpec spec = spec_from_graph(graph::make_cycle(4), 10.0);
  spec.demand.push_back(RatedPair{NodePair(0, 2), 2.0});
  const SteadyStateLp lp(spec);
  const SteadyStateSolution solution =
      lp.solve(SteadyStateObjective::kMinTotalGeneration);
  ASSERT_EQ(solution.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(solution.total_generation, 4.0, 1e-4);
  double via_repeaters = 0.0;
  for (const SwapRate& swap : solution.swap_rates) {
    if (swap.pair == NodePair(0, 2)) {
      EXPECT_TRUE(swap.repeater == 1 || swap.repeater == 3);
      via_repeaters += swap.rate;
    }
  }
  EXPECT_NEAR(via_repeaters, 2.0, 1e-4);
}

// Regression: the torus formulation with D > 1 is massively degenerate and
// used to trap the simplex on a plateau at the optimum (no certificate
// within the iteration limit). Anti-degeneracy perturbation must solve it.
TEST(SteadyStateLp, DegeneratePlateauRegression) {
  SteadyStateSpec spec = spec_from_graph(graph::make_torus_grid(9), 20.0);
  spec.demand.push_back(RatedPair{NodePair(0, 4), 0.3});
  spec.demand.push_back(RatedPair{NodePair(1, 5), 0.2});
  spec.distillation = PairMatrix(2.0);
  const SteadyStateLp lp(spec);
  const SteadyStateSolution solution =
      lp.solve(SteadyStateObjective::kMinTotalGeneration);
  ASSERT_EQ(solution.status, lp::SolveStatus::kOptimal);
  // Both demands span 2 torus hops: raw cost 2 D^2 kappa each.
  EXPECT_NEAR(solution.total_generation, 8.0 * (0.3 + 0.2), 1e-4);
  EXPECT_LT(solution.max_violation, 1e-6);
}

TEST(SteadyStateLp, RejectsBadSpecs) {
  SteadyStateSpec tiny;
  tiny.node_count = 2;
  EXPECT_THROW(SteadyStateLp{tiny}, PreconditionError);

  SteadyStateSpec bad_qec = spec_from_graph(graph::make_cycle(4), 1.0);
  bad_qec.qec_overhead = 0.5;
  EXPECT_THROW(SteadyStateLp{bad_qec}, PreconditionError);

  SteadyStateSpec bad_gamma = spec_from_graph(graph::make_cycle(4), 1.0);
  bad_gamma.generation_capacity[0].rate = 0.0;
  EXPECT_THROW(SteadyStateLp{bad_gamma}, PreconditionError);
}

}  // namespace
}  // namespace poq::core
