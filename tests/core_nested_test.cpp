#include "core/nested.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace poq::core {
namespace {

TEST(NestedCost, PaperBaseCases) {
  // s(1) = 0, s(2) = D.
  EXPECT_DOUBLE_EQ(nested_swap_cost_paper(1, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(nested_swap_cost_paper(2, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(nested_swap_cost_paper(2, 3.0), 3.0);
}

TEST(NestedCost, PaperRecurrenceValues) {
  // s(n) = D(s(floor(n/2)) + s(ceil(n/2))).
  // D=1: s(3) = s(1)+s(2) = 1; s(4) = 2; s(5) = s(2)+s(3) = 2; s(8) = 4.
  EXPECT_DOUBLE_EQ(nested_swap_cost_paper(3, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(nested_swap_cost_paper(4, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(nested_swap_cost_paper(5, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(nested_swap_cost_paper(8, 1.0), 4.0);
  // D=2: s(2)=2, s(3)=2*(0+2)=4, s(4)=2*(2+2)=8, s(8)=2*(8+8)=32.
  EXPECT_DOUBLE_EQ(nested_swap_cost_paper(3, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(nested_swap_cost_paper(4, 2.0), 8.0);
  EXPECT_DOUBLE_EQ(nested_swap_cost_paper(8, 2.0), 32.0);
}

TEST(NestedCost, ExactCountsEverySwap) {
  // With D=1 the recursive protocol performs exactly hops-1 swaps.
  for (std::uint32_t hops = 1; hops <= 32; ++hops) {
    EXPECT_DOUBLE_EQ(nested_swap_cost_exact(hops, 1.0),
                     static_cast<double>(hops - 1))
        << "hops=" << hops;
  }
}

TEST(NestedCost, ExactBaseCases) {
  EXPECT_DOUBLE_EQ(nested_swap_cost_exact(1, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(nested_swap_cost_exact(2, 5.0), 5.0);
  // D=2, n=4: 2*(1 + 2 + 2) = 10.
  EXPECT_DOUBLE_EQ(nested_swap_cost_exact(4, 2.0), 10.0);
}

TEST(NestedCost, ExactDominatesPaperFormula) {
  for (std::uint32_t hops = 1; hops <= 20; ++hops) {
    for (double d : {1.0, 1.5, 2.0, 3.0}) {
      EXPECT_GE(nested_swap_cost_exact(hops, d),
                nested_swap_cost_paper(hops, d))
          << "hops=" << hops << " D=" << d;
    }
  }
}

TEST(NestedCost, GrowsExponentiallyInDistillation) {
  // For fixed hops, doubling D should much more than double the cost
  // (the paper's Fig. 4 behaviour).
  const double d1 = nested_swap_cost_paper(8, 1.0);
  const double d2 = nested_swap_cost_paper(8, 2.0);
  const double d4 = nested_swap_cost_paper(8, 4.0);
  EXPECT_GT(d2 / d1, 4.0);
  EXPECT_GT(d4 / d2, 4.0);
}

TEST(NestedCost, MonotoneInHops) {
  for (double d : {1.0, 2.0, 3.0}) {
    double previous = 0.0;
    for (std::uint32_t hops = 1; hops <= 32; ++hops) {
      const double cost = nested_swap_cost_paper(hops, d);
      EXPECT_GE(cost, previous) << "hops=" << hops << " D=" << d;
      previous = cost;
    }
  }
}

TEST(NestedCost, RawPairCost) {
  // One usable elementary pair costs D raw pairs.
  EXPECT_DOUBLE_EQ(nested_raw_pair_cost(1, 3.0), 3.0);
  // Two hops: D swaps each consuming one usable pair per side, each of
  // which costs D raw: 2 D^2.
  EXPECT_DOUBLE_EQ(nested_raw_pair_cost(2, 2.0), 8.0);
  EXPECT_DOUBLE_EQ(nested_raw_pair_cost(2, 1.0), 2.0);
  // D=1: raw pairs = hops (one per edge).
  for (std::uint32_t hops = 1; hops <= 16; ++hops) {
    EXPECT_DOUBLE_EQ(nested_raw_pair_cost(hops, 1.0), static_cast<double>(hops));
  }
}

TEST(NestedCost, ZeroHopsRejected) {
  EXPECT_THROW((void)nested_swap_cost_paper(0, 1.0), PreconditionError);
  EXPECT_THROW((void)nested_swap_cost_exact(0, 1.0), PreconditionError);
  EXPECT_THROW((void)nested_raw_pair_cost(0, 1.0), PreconditionError);
  EXPECT_THROW((void)nested_swap_cost_paper(4, -1.0), PreconditionError);
}

}  // namespace
}  // namespace poq::core
