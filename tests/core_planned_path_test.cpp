#include "core/planned_path.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/nested.hpp"
#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::core {
namespace {

TEST(NestedDemand, SingleEdge) {
  const NestedDemand demand = compute_nested_demand(1, 2.0);
  ASSERT_EQ(demand.edge_raw_demand.size(), 1u);
  EXPECT_DOUBLE_EQ(demand.edge_raw_demand[0], 2.0);  // D raw per usable
  EXPECT_DOUBLE_EQ(demand.swap_count, 0.0);
}

TEST(NestedDemand, TwoEdgesUnitDistillation) {
  const NestedDemand demand = compute_nested_demand(2, 1.0);
  EXPECT_DOUBLE_EQ(demand.swap_count, 1.0);
  EXPECT_DOUBLE_EQ(demand.edge_raw_demand[0], 1.0);
  EXPECT_DOUBLE_EQ(demand.edge_raw_demand[1], 1.0);
}

TEST(NestedDemand, TwoEdgesWithDistillation) {
  const NestedDemand demand = compute_nested_demand(2, 2.0);
  // D raw top copies -> D swaps; each swap eats one usable per side and a
  // usable elementary costs D raw: D*D per edge.
  EXPECT_DOUBLE_EQ(demand.swap_count, 2.0);
  EXPECT_DOUBLE_EQ(demand.edge_raw_demand[0], 4.0);
  EXPECT_DOUBLE_EQ(demand.edge_raw_demand[1], 4.0);
}

TEST(NestedDemand, SwapCountMatchesExactRecurrence) {
  for (std::size_t hops = 1; hops <= 20; ++hops) {
    for (double d : {1.0, 1.5, 2.0, 3.0}) {
      const NestedDemand demand = compute_nested_demand(hops, d);
      EXPECT_NEAR(demand.swap_count,
                  nested_swap_cost_exact(static_cast<std::uint32_t>(hops), d), 1e-9)
          << "hops=" << hops << " D=" << d;
    }
  }
}

TEST(NestedDemand, RawTotalMatchesClosedForm) {
  for (std::size_t hops = 1; hops <= 16; ++hops) {
    for (double d : {1.0, 2.0}) {
      const NestedDemand demand = compute_nested_demand(hops, d);
      const double total = std::accumulate(demand.edge_raw_demand.begin(),
                                           demand.edge_raw_demand.end(), 0.0);
      EXPECT_NEAR(total, nested_raw_pair_cost(static_cast<std::uint32_t>(hops), d),
                  1e-9);
    }
  }
}

TEST(NestedDemand, UnitDistillationDemandsOnePerEdge) {
  const NestedDemand demand = compute_nested_demand(7, 1.0);
  for (double edge : demand.edge_raw_demand) EXPECT_DOUBLE_EQ(edge, 1.0);
}

Workload cycle_workload(std::size_t nodes, std::size_t requests, std::uint64_t seed) {
  util::Rng rng(seed);
  return make_uniform_workload(nodes, std::min<std::size_t>(6, nodes), requests, rng);
}

TEST(PlannedPath, ConnectionOrientedCompletes) {
  const graph::Graph graph = graph::make_cycle(10);
  const Workload workload = cycle_workload(10, 25, 1);
  PlannedPathConfig config;
  const PlannedPathResult result = run_planned_path(graph, workload, config);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.requests_satisfied, 25u);
}

TEST(PlannedPath, OverheadEqualsExactOverPaperRatio) {
  // With window=1 and exclusive reservations, the baseline performs
  // exactly the nested schedule: swaps == sum of exact costs.
  const graph::Graph graph = graph::make_cycle(10);
  const Workload workload = cycle_workload(10, 25, 2);
  PlannedPathConfig config;
  config.distillation = 2.0;
  const PlannedPathResult result = run_planned_path(graph, workload, config);
  ASSERT_TRUE(result.completed);
  EXPECT_NEAR(result.swaps_performed, result.denominator_exact, 1e-6);
  EXPECT_NEAR(result.swap_overhead_exact(), 1.0, 1e-9);
  EXPECT_GE(result.swap_overhead_paper(), 1.0);
}

TEST(PlannedPath, ConnectionlessCompletes) {
  const graph::Graph graph = graph::make_torus_grid(16);
  const Workload workload = cycle_workload(16, 30, 3);
  PlannedPathConfig config;
  config.mode = PlannedPathMode::kConnectionless;
  config.window = 4;
  const PlannedPathResult result = run_planned_path(graph, workload, config);
  EXPECT_TRUE(result.completed);
}

TEST(PlannedPath, WiderWindowNoSlowerThanSerial) {
  const graph::Graph graph = graph::make_torus_grid(16);
  const Workload workload = cycle_workload(16, 40, 4);
  PlannedPathConfig serial;
  serial.mode = PlannedPathMode::kConnectionless;
  serial.window = 1;
  PlannedPathConfig wide = serial;
  wide.window = 8;
  const PlannedPathResult a = run_planned_path(graph, workload, serial);
  const PlannedPathResult b = run_planned_path(graph, workload, wide);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_LE(b.rounds, a.rounds);
}

TEST(PlannedPath, SwapsIdenticalAcrossModes) {
  // Both modes execute the same nested schedules; only timing differs.
  const graph::Graph graph = graph::make_cycle(12);
  const Workload workload = cycle_workload(12, 20, 5);
  PlannedPathConfig oriented;
  PlannedPathConfig connectionless;
  connectionless.mode = PlannedPathMode::kConnectionless;
  connectionless.window = 3;
  const PlannedPathResult a = run_planned_path(graph, workload, oriented);
  const PlannedPathResult b = run_planned_path(graph, workload, connectionless);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_NEAR(a.swaps_performed, b.swaps_performed, 1e-9);
}

TEST(PlannedPath, HigherDistillationTakesLonger) {
  const graph::Graph graph = graph::make_cycle(10);
  const Workload workload = cycle_workload(10, 15, 6);
  PlannedPathConfig config;
  config.distillation = 1.0;
  const PlannedPathResult d1 = run_planned_path(graph, workload, config);
  config.distillation = 3.0;
  const PlannedPathResult d3 = run_planned_path(graph, workload, config);
  ASSERT_TRUE(d1.completed);
  ASSERT_TRUE(d3.completed);
  EXPECT_GT(d3.rounds, d1.rounds);
  EXPECT_GT(d3.swaps_performed, d1.swaps_performed);
}

TEST(PlannedPath, MaxRoundsGuard) {
  const graph::Graph graph = graph::make_cycle(10);
  const Workload workload = cycle_workload(10, 50, 7);
  PlannedPathConfig config;
  config.generation_per_edge_per_round = 0.0;  // nothing ever completes
  config.max_rounds = 25;
  const PlannedPathResult result = run_planned_path(graph, workload, config);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.rounds, 25u);
  EXPECT_EQ(result.requests_satisfied, 0u);
}

TEST(PlannedPath, ServiceStatsPopulated) {
  const graph::Graph graph = graph::make_cycle(10);
  const Workload workload = cycle_workload(10, 20, 8);
  PlannedPathConfig config;
  const PlannedPathResult result = run_planned_path(graph, workload, config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.service_rounds.count(), 20u);
}

TEST(PlannedPath, RejectsBadConfig) {
  const graph::Graph graph = graph::make_cycle(6);
  const Workload workload = cycle_workload(6, 5, 9);
  PlannedPathConfig config;
  config.window = 0;
  EXPECT_THROW([&] { (void)run_planned_path(graph, workload, config); }(),
               PreconditionError);
}

}  // namespace
}  // namespace poq::core
