#include "core/workload.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/topology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::core {
namespace {

TEST(Workload, DrawsDistinctPairs) {
  util::Rng rng(1);
  const Workload workload = make_uniform_workload(25, 35, 100, rng);
  EXPECT_EQ(workload.pairs.size(), 35u);
  std::set<NodePair> unique(workload.pairs.begin(), workload.pairs.end());
  EXPECT_EQ(unique.size(), 35u);
  for (const NodePair& pair : workload.pairs) {
    EXPECT_LT(pair.first, pair.second);
    EXPECT_LT(pair.second, 25u);
  }
}

TEST(Workload, SequenceIndexesPairs) {
  util::Rng rng(2);
  const Workload workload = make_uniform_workload(10, 5, 50, rng);
  EXPECT_EQ(workload.request_count(), 50u);
  for (std::uint32_t index : workload.sequence) EXPECT_LT(index, 5u);
}

TEST(Workload, CanDrawEveryPair) {
  util::Rng rng(3);
  const Workload workload = make_uniform_workload(6, 15, 1, rng);
  // C(6,2) = 15: drawing all pairs must enumerate each exactly once.
  std::set<NodePair> unique(workload.pairs.begin(), workload.pairs.end());
  EXPECT_EQ(unique.size(), 15u);
}

// The flat-index inversion must map uniformly: every pair of a small node
// set should be drawn with roughly equal frequency across many draws.
TEST(Workload, PairSelectionIsUniform) {
  util::Rng rng(4);
  std::map<NodePair, int> hits;
  const int trials = 6000;
  for (int t = 0; t < trials; ++t) {
    const Workload workload = make_uniform_workload(8, 1, 1, rng);
    ++hits[workload.pairs[0]];
  }
  EXPECT_EQ(hits.size(), 28u);  // C(8,2): every pair seen
  for (const auto& [pair, count] : hits) {
    EXPECT_NEAR(count, trials / 28.0, trials / 28.0 * 0.45)
        << "(" << pair.first << "," << pair.second << ")";
  }
}

TEST(Workload, RequestSequenceRoughlyUniform) {
  util::Rng rng(5);
  const Workload workload = make_uniform_workload(10, 4, 40000, rng);
  std::vector<int> counts(4, 0);
  for (std::uint32_t index : workload.sequence) ++counts[index];
  for (int count : counts) EXPECT_NEAR(count, 10000, 500);
}

TEST(Workload, RejectsBadArguments) {
  util::Rng rng(6);
  EXPECT_THROW(make_uniform_workload(1, 1, 1, rng), PreconditionError);
  EXPECT_THROW(make_uniform_workload(5, 0, 1, rng), PreconditionError);
  EXPECT_THROW(make_uniform_workload(5, 11, 1, rng), PreconditionError);  // > C(5,2)
}

TEST(Workload, HopCountsMatchBfs) {
  util::Rng rng(7);
  const graph::Graph graph = graph::make_cycle(12);
  Workload workload;
  workload.pairs = {NodePair(0, 6), NodePair(0, 1), NodePair(2, 11)};
  workload.sequence = {0, 1, 2, 0};
  const auto hops = request_hop_counts(workload, graph);
  ASSERT_EQ(hops.size(), 4u);
  EXPECT_EQ(hops[0], 6u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 3u);  // 11 -> 0 -> 1 -> 2 via wraparound
  EXPECT_EQ(hops[3], 6u);
}

TEST(Workload, HopCountsRejectDisconnected) {
  graph::Graph graph(4);
  graph.add_edge(0, 1);
  Workload workload;
  workload.pairs = {NodePair(0, 3)};
  workload.sequence = {0};
  EXPECT_THROW(request_hop_counts(workload, graph), PreconditionError);
}

TEST(Workload, DeterministicGivenRng) {
  util::Rng a(9);
  util::Rng b(9);
  const Workload first = make_uniform_workload(20, 10, 30, a);
  const Workload second = make_uniform_workload(20, 10, 30, b);
  EXPECT_EQ(first.pairs.size(), second.pairs.size());
  for (std::size_t i = 0; i < first.pairs.size(); ++i) {
    EXPECT_EQ(first.pairs[i], second.pairs[i]);
  }
  EXPECT_EQ(first.sequence, second.sequence);
}

}  // namespace
}  // namespace poq::core
