#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "util/error.hpp"

namespace poq::graph {
namespace {

TEST(Graph, StartsEmpty) {
  Graph graph(4);
  EXPECT_EQ(graph.node_count(), 4u);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_FALSE(graph.has_edge(0, 1));
}

TEST(Graph, AddEdgeIsSymmetric) {
  Graph graph(4);
  EXPECT_TRUE(graph.add_edge(2, 0));
  EXPECT_TRUE(graph.has_edge(0, 2));
  EXPECT_TRUE(graph.has_edge(2, 0));
  EXPECT_EQ(graph.edge_count(), 1u);
}

TEST(Graph, AddDuplicateEdgeIsNoop) {
  Graph graph(3);
  EXPECT_TRUE(graph.add_edge(0, 1));
  EXPECT_FALSE(graph.add_edge(1, 0));
  EXPECT_EQ(graph.edge_count(), 1u);
}

TEST(Graph, RejectsSelfLoop) {
  Graph graph(3);
  EXPECT_THROW(graph.add_edge(1, 1), PreconditionError);
}

TEST(Graph, RejectsOutOfRangeNode) {
  Graph graph(3);
  EXPECT_THROW(graph.add_edge(0, 3), PreconditionError);
  EXPECT_THROW((void)graph.has_edge(5, 0), PreconditionError);
}

TEST(Graph, NeighborsSortedAscending) {
  Graph graph(5);
  graph.add_edge(2, 4);
  graph.add_edge(2, 0);
  graph.add_edge(2, 3);
  const auto neighbors = graph.neighbors(2);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0], 0u);
  EXPECT_EQ(neighbors[1], 3u);
  EXPECT_EQ(neighbors[2], 4u);
  EXPECT_EQ(graph.degree(2), 3u);
}

TEST(Graph, RemoveEdge) {
  Graph graph(4);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  EXPECT_TRUE(graph.remove_edge(0, 1));
  EXPECT_FALSE(graph.has_edge(0, 1));
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_FALSE(graph.remove_edge(0, 1));
  EXPECT_EQ(graph.degree(1), 1u);
}

TEST(Graph, EdgeIndexTracksEdges) {
  Graph graph(4);
  graph.add_edge(0, 1);
  graph.add_edge(2, 3);
  EXPECT_EQ(graph.edge_index(1, 0).value(), 0u);
  EXPECT_EQ(graph.edge_index(3, 2).value(), 1u);
  EXPECT_FALSE(graph.edge_index(0, 3).has_value());
}

TEST(Graph, EdgesNormalized) {
  Graph graph(4);
  graph.add_edge(3, 1);
  const Edge& edge = graph.edges().front();
  EXPECT_EQ(edge.a(), 1u);
  EXPECT_EQ(edge.b(), 3u);
}

TEST(DisjointSets, BasicUnion) {
  DisjointSets sets(5);
  EXPECT_EQ(sets.set_count(), 5u);
  EXPECT_TRUE(sets.unite(0, 1));
  EXPECT_TRUE(sets.unite(1, 2));
  EXPECT_FALSE(sets.unite(0, 2));
  EXPECT_EQ(sets.set_count(), 3u);
  EXPECT_TRUE(sets.same(0, 2));
  EXPECT_FALSE(sets.same(0, 3));
  EXPECT_EQ(sets.set_size(2), 3u);
}

TEST(Connectivity, DetectsConnectedGraph) {
  Graph graph(4);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(2, 3);
  EXPECT_TRUE(is_connected(graph));
}

TEST(Connectivity, DetectsDisconnectedGraph) {
  Graph graph(4);
  graph.add_edge(0, 1);
  graph.add_edge(2, 3);
  EXPECT_FALSE(is_connected(graph));
}

TEST(Connectivity, SingleNodeIsConnected) {
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
}

TEST(Connectivity, ComponentLabels) {
  Graph graph(6);
  graph.add_edge(0, 1);
  graph.add_edge(2, 3);
  graph.add_edge(3, 4);
  const auto labels = connected_components(graph);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[5], labels[0]);
  EXPECT_NE(labels[5], labels[2]);
}

}  // namespace
}  // namespace poq::graph
