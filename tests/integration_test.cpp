// Cross-module integration and model-based property tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/balancing_sim.hpp"
#include "core/lp_formulation.hpp"
#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace poq {
namespace {

// ---------------------------------------------------------------------------
// The §3 LP is the asymptotic ceiling for the §4 protocol: the simulated
// balancer's sustained consumption rate can never exceed the LP's maximum
// concurrent scale (the simulator also pays swap-rate limits the LP
// ignores, so the bound holds with margin).
TEST(Integration, SimulatedThroughputRespectsLpCeiling) {
  const graph::Graph graph = graph::make_cycle(6);

  // Demands: three pairs at distance 2 requested round-robin.
  const std::vector<core::NodePair> demand_pairs = {
      core::NodePair(0, 2), core::NodePair(2, 4), core::NodePair(4, 0)};

  core::SteadyStateSpec spec;
  spec.node_count = 6;
  for (const graph::Edge& edge : graph.edges()) {
    spec.generation_capacity.push_back(
        core::RatedPair{core::NodePair(edge.a(), edge.b()), 1.0});
  }
  for (const core::NodePair& pair : demand_pairs) {
    spec.demand.push_back(core::RatedPair{pair, 1.0});
  }
  const core::SteadyStateLp lp(spec);
  const core::SteadyStateSolution ceiling =
      lp.solve(core::SteadyStateObjective::kMaxConcurrentScale);
  ASSERT_EQ(ceiling.status, lp::SolveStatus::kOptimal);
  // 6 unit edges; each distance-2 consumption costs 2 elementary pairs:
  // total rate 3*alpha*2 <= 6 => alpha <= 1.
  EXPECT_NEAR(ceiling.objective, 1.0, 1e-5);

  core::Workload workload;
  workload.pairs = demand_pairs;
  for (int i = 0; i < 100000; ++i) {
    workload.sequence.push_back(static_cast<std::uint32_t>(i % 3));
  }
  core::BalancingConfig config;
  config.seed = 5;
  config.max_rounds = 4000;
  const core::BalancingResult result = core::run_balancing(graph, workload, config);
  const double per_pair_rate = static_cast<double>(result.requests_satisfied) /
                               3.0 / static_cast<double>(result.rounds);
  EXPECT_LE(per_pair_rate, ceiling.objective + 0.05);
  EXPECT_GT(per_pair_rate, 0.0);
}

// The LP's minimum generation for a pinned demand is a true lower bound on
// what the simulator consumes per satisfied request (raw pairs per unit of
// demand), again because the simulator is strictly less efficient.
TEST(Integration, SimulatedGenerationPerRequestAboveLpMinimum) {
  const graph::Graph graph = graph::make_cycle(6);
  const core::NodePair demand(0, 3);  // distance 3

  core::SteadyStateSpec spec;
  spec.node_count = 6;
  for (const graph::Edge& edge : graph.edges()) {
    spec.generation_capacity.push_back(
        core::RatedPair{core::NodePair(edge.a(), edge.b()), 10.0});
  }
  spec.demand.push_back(core::RatedPair{demand, 1.0});
  const core::SteadyStateLp lp(spec);
  const core::SteadyStateSolution optimum =
      lp.solve(core::SteadyStateObjective::kMinTotalGeneration);
  ASSERT_EQ(optimum.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(optimum.total_generation, 3.0, 1e-5);  // one raw pair per hop

  core::Workload workload;
  workload.pairs = {demand};
  workload.sequence.assign(2000, 0);
  core::BalancingConfig config;
  config.seed = 9;
  config.max_rounds = 3000;
  const core::BalancingResult result = core::run_balancing(graph, workload, config);
  ASSERT_GT(result.requests_satisfied, 0u);
  const double generation_per_request =
      static_cast<double>(result.pairs_generated) /
      static_cast<double>(result.requests_satisfied);
  // The balancer can only be less efficient than the LP optimum. (It
  // banks unconsumed inventory, so the measured ratio overshoots.)
  EXPECT_GE(generation_per_request, optimum.total_generation - 1e-6);
}

// ---------------------------------------------------------------------------
// EventQueue fuzz against a naive reference model.
TEST(Integration, EventQueueMatchesReferenceModel) {
  util::Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    sim::EventQueue queue;
    struct Ref {
      double time;
      sim::EventId id;
      bool cancelled = false;
    };
    std::vector<Ref> model;
    std::vector<sim::EventId> fired;

    for (int op = 0; op < 200; ++op) {
      const double roll = rng.uniform_double();
      if (roll < 0.6 || model.empty()) {
        const double time = rng.uniform_double(0.0, 100.0);
        const sim::EventId id = queue.schedule(time, [] {});
        model.push_back(Ref{time, id});
      } else if (roll < 0.8) {
        Ref& target = model[rng.uniform_index(model.size())];
        const bool accepted = queue.cancel(target.id);
        EXPECT_EQ(accepted, !target.cancelled);
        target.cancelled = true;
      } else {
        const auto event = queue.pop();
        // Reference: earliest (time, id) among non-cancelled entries.
        auto best = model.end();
        for (auto it = model.begin(); it != model.end(); ++it) {
          if (it->cancelled) continue;
          if (best == model.end() || it->time < best->time ||
              (it->time == best->time && it->id < best->id)) {
            best = it;
          }
        }
        if (best == model.end()) {
          EXPECT_FALSE(event.has_value());
        } else {
          ASSERT_TRUE(event.has_value());
          EXPECT_EQ(event->id, best->id);
          EXPECT_DOUBLE_EQ(event->time, best->time);
          best->cancelled = true;  // consumed
        }
      }
    }
    // Drain and verify global ordering of the remainder.
    double last_time = -1.0;
    while (auto event = queue.pop()) {
      EXPECT_GE(event->time, last_time);
      last_time = event->time;
    }
  }
}

// ---------------------------------------------------------------------------
// Graph mutation fuzz against a std::set reference.
TEST(Integration, GraphMatchesReferenceModel) {
  util::Rng rng(321);
  const graph::NodeId n = 12;
  graph::Graph graph(n);
  std::set<std::pair<graph::NodeId, graph::NodeId>> model;

  const auto key = [](graph::NodeId a, graph::NodeId b) {
    return std::make_pair(std::min(a, b), std::max(a, b));
  };

  for (int op = 0; op < 3000; ++op) {
    auto a = static_cast<graph::NodeId>(rng.uniform_index(n));
    auto b = static_cast<graph::NodeId>(rng.uniform_index(n));
    if (a == b) continue;
    if (rng.bernoulli(0.6)) {
      EXPECT_EQ(graph.add_edge(a, b), model.insert(key(a, b)).second);
    } else {
      EXPECT_EQ(graph.remove_edge(a, b), model.erase(key(a, b)) > 0);
    }
    if (op % 100 == 0) {
      EXPECT_EQ(graph.edge_count(), model.size());
      for (graph::NodeId v = 0; v < n; ++v) {
        std::size_t expected_degree = 0;
        for (const auto& edge : model) {
          if (edge.first == v || edge.second == v) ++expected_degree;
        }
        EXPECT_EQ(graph.degree(v), expected_degree);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The full round-based pipeline completes on every topology family.
class FamilyCompletionSweep
    : public ::testing::TestWithParam<graph::TopologyFamily> {};

TEST_P(FamilyCompletionSweep, BalancingCompletesEverywhere) {
  util::Rng rng(7);
  const graph::Graph graph = graph::make_topology(GetParam(), 16, rng);
  util::Rng workload_rng = rng.fork(1);
  const core::Workload workload =
      core::make_uniform_workload(16, 10, 40, workload_rng);
  core::BalancingConfig config;
  config.seed = 13;
  const core::BalancingResult result = core::run_balancing(graph, workload, config);
  EXPECT_TRUE(result.completed) << graph::family_name(GetParam());
  if (result.denominator_exact > 0.0) {
    EXPECT_GE(result.swap_overhead_exact(), 1.0) << graph::family_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilyCompletionSweep,
    ::testing::Values(graph::TopologyFamily::kCycle,
                      graph::TopologyFamily::kRandomGrid,
                      graph::TopologyFamily::kFullGrid,
                      graph::TopologyFamily::kErdosRenyi,
                      graph::TopologyFamily::kWattsStrogatz,
                      graph::TopologyFamily::kBarabasiAlbert));

}  // namespace
}  // namespace poq
