#include "graph/kpaths.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/topology.hpp"

namespace poq::graph {
namespace {

TEST(KShortestPaths, CycleHasExactlyTwoSimpleRoutes) {
  const Graph graph = make_cycle(6);
  const auto paths = k_shortest_paths(graph, 0, 3, 5);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].size(), 4u);  // both directions are 3 hops
  EXPECT_EQ(paths[1].size(), 4u);
  EXPECT_NE(paths[0], paths[1]);
}

TEST(KShortestPaths, AscendingLengths) {
  const Graph graph = make_torus_grid(16);
  const auto paths = k_shortest_paths(graph, 0, 5, 6);
  ASSERT_GE(paths.size(), 2u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].size(), paths[i - 1].size());
  }
}

TEST(KShortestPaths, AllPathsSimpleAndValid) {
  const Graph graph = make_torus_grid(16);
  const auto paths = k_shortest_paths(graph, 0, 10, 8);
  for (const auto& path : paths) {
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 10u);
    std::set<NodeId> seen(path.begin(), path.end());
    EXPECT_EQ(seen.size(), path.size()) << "path revisits a node";
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(graph.has_edge(path[i], path[i + 1]));
    }
  }
}

TEST(KShortestPaths, DistinctPaths) {
  const Graph graph = make_torus_grid(16);
  const auto paths = k_shortest_paths(graph, 0, 10, 8);
  std::set<std::vector<NodeId>> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), paths.size());
}

TEST(KShortestPaths, DisconnectedReturnsEmpty) {
  Graph graph(4);
  graph.add_edge(0, 1);
  EXPECT_TRUE(k_shortest_paths(graph, 0, 3, 3).empty());
}

TEST(EdgeDisjointPaths, TorusOffersFourDisjointRoutes) {
  const Graph graph = make_torus_grid(25);
  const auto paths = edge_disjoint_paths(graph, 0, 12, 8);
  // A 4-regular graph cannot have more than 4 edge-disjoint paths.
  EXPECT_GE(paths.size(), 2u);
  EXPECT_LE(paths.size(), 4u);
  std::set<std::pair<NodeId, NodeId>> used;
  for (const auto& path : paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto key = std::minmax(path[i], path[i + 1]);
      EXPECT_TRUE(used.emplace(key.first, key.second).second)
          << "edge reused across paths";
    }
  }
}

TEST(EdgeDisjointPaths, CycleHasExactlyTwo) {
  const Graph graph = make_cycle(8);
  const auto paths = edge_disjoint_paths(graph, 0, 4, 8);
  EXPECT_EQ(paths.size(), 2u);
}

}  // namespace
}  // namespace poq::graph
