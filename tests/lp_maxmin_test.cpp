#include "lp/maxmin.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace poq::lp {
namespace {

// Two flows share one unit of capacity: max-min splits it evenly.
TEST(MaxMin, EvenSplitOnSharedLink) {
  LpModel model;
  const VarId a = model.add_nonnegative("a");
  const VarId b = model.add_nonnegative("b");
  model.add_constraint({{a, 1.0}, {b, 1.0}}, Relation::kLessEqual, 1.0);
  const MaxMinResult result = maximize_minimum(model, {{{a, 1.0}}, {{b, 1.0}}});
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.bottleneck_level, 0.5, 1e-6);
}

// Asymmetric capacities: the bottleneck is the tight shared link.
TEST(MaxMin, BottleneckSetsLevel) {
  LpModel model;
  const VarId a = model.add_variable(0.0, 0.2, "a");
  const VarId b = model.add_nonnegative("b");
  model.add_constraint({{b, 1.0}}, Relation::kLessEqual, 5.0);
  const MaxMinResult result = maximize_minimum(model, {{{a, 1.0}}, {{b, 1.0}}});
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.bottleneck_level, 0.2, 1e-6);
}

TEST(MaxMin, SingleExpression) {
  LpModel model;
  const VarId a = model.add_variable(0.0, 3.0, "a");
  const MaxMinResult result = maximize_minimum(model, {{{a, 1.0}}});
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.bottleneck_level, 3.0, 1e-6);
}

TEST(MaxMin, InfeasibleBasePropagates) {
  LpModel model;
  const VarId a = model.add_variable(0.0, 1.0, "a");
  model.add_constraint({{a, 1.0}}, Relation::kGreaterEqual, 2.0);
  const MaxMinResult result = maximize_minimum(model, {{{a, 1.0}}});
  EXPECT_EQ(result.status, SolveStatus::kInfeasible);
}

// Classic water-filling instance: flows f0 (link 1), f1 (links 1+2),
// f2 (link 2). Capacities: link1 = 1, link2 = 2.
// Level 1: all rise to 0.5 (link1 saturates f0, f1).
// Level 2: f2 rises alone to 1.5 on link2.
TEST(LexicographicMaxMin, WaterFillingLevels) {
  LpModel model;
  const VarId f0 = model.add_nonnegative("f0");
  const VarId f1 = model.add_nonnegative("f1");
  const VarId f2 = model.add_nonnegative("f2");
  model.add_constraint({{f0, 1.0}, {f1, 1.0}}, Relation::kLessEqual, 1.0);
  model.add_constraint({{f1, 1.0}, {f2, 1.0}}, Relation::kLessEqual, 2.0);
  const MaxMinResult result =
      lexicographic_max_min(model, {{{f0, 1.0}}, {{f1, 1.0}}, {{f2, 1.0}}});
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  ASSERT_EQ(result.expression_values.size(), 3u);
  EXPECT_NEAR(result.expression_values[0], 0.5, 1e-5);
  EXPECT_NEAR(result.expression_values[1], 0.5, 1e-5);
  EXPECT_NEAR(result.expression_values[2], 1.5, 1e-5);
  EXPECT_NEAR(result.bottleneck_level, 0.5, 1e-5);
}

// Lexicographic max-min must weakly dominate the single-level solve on the
// sorted-ascending comparison; here just check the first level agrees.
TEST(LexicographicMaxMin, FirstLevelMatchesSingleLevel) {
  LpModel model;
  const VarId a = model.add_nonnegative("a");
  const VarId b = model.add_nonnegative("b");
  const VarId c = model.add_nonnegative("c");
  model.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Relation::kLessEqual, 3.0);
  model.add_constraint({{a, 1.0}}, Relation::kLessEqual, 0.4);
  const std::vector<LinearExpr> exprs{{{a, 1.0}}, {{b, 1.0}}, {{c, 1.0}}};
  const MaxMinResult single = maximize_minimum(model, exprs);
  const MaxMinResult lexi = lexicographic_max_min(model, exprs);
  ASSERT_EQ(single.status, SolveStatus::kOptimal);
  ASSERT_EQ(lexi.status, SolveStatus::kOptimal);
  EXPECT_NEAR(single.bottleneck_level, 0.4, 1e-6);
  EXPECT_NEAR(lexi.bottleneck_level, single.bottleneck_level, 1e-5);
  // Remaining capacity goes to b and c evenly: (3 - 0.4) / 2 = 1.3.
  auto sorted = lexi.expression_values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NEAR(sorted[1], 1.3, 1e-4);
  EXPECT_NEAR(sorted[2], 1.3, 1e-4);
}

}  // namespace
}  // namespace poq::lp
