// Edge cases and stress for the bounded-variable simplex — the most
// numerically subtle substrate in poqnet.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace poq::lp {
namespace {

TEST(SimplexEdge, FixedVariableIsRespected) {
  LpModel model;
  const VarId x = model.add_variable(2.0, 2.0, "x");  // pinned
  const VarId y = model.add_nonnegative("y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 5.0);
  model.set_objective_sense(Sense::kMaximize);
  model.set_objective_coefficient(y, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], 2.0, 1e-9);
  EXPECT_NEAR(solution.values[y], 3.0, 1e-6);
}

TEST(SimplexEdge, AllVariablesFixed) {
  LpModel model;
  const VarId x = model.add_variable(1.0, 1.0, "x");
  const VarId y = model.add_variable(-2.0, -2.0, "y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 0.0);
  model.set_objective_coefficient(x, 3.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 3.0, 1e-9);
}

TEST(SimplexEdge, FixedVariablesCanBeInfeasible) {
  LpModel model;
  const VarId x = model.add_variable(1.0, 1.0, "x");
  model.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  EXPECT_EQ(solve(model).status, SolveStatus::kInfeasible);
}

TEST(SimplexEdge, NegativeCostsWithNegativeBounds) {
  // min -x - 2y with x in [-3, -1], y in [-2, 2], x + y >= -4.
  LpModel model;
  const VarId x = model.add_variable(-3.0, -1.0, "x");
  const VarId y = model.add_variable(-2.0, 2.0, "y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, -4.0);
  model.set_objective_coefficient(x, -1.0);
  model.set_objective_coefficient(y, -2.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  // Best: x = -1, y = 2 -> objective -(-1) - 2(2) = 1 - 4 = -3.
  EXPECT_NEAR(solution.objective, -3.0, 1e-7);
}

TEST(SimplexEdge, RedundantEqualityRows) {
  // Duplicated equality rows must not confuse phase 1 (dependent basis).
  LpModel model;
  const VarId x = model.add_nonnegative("x");
  const VarId y = model.add_nonnegative("y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 4.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 4.0);
  model.add_constraint({{x, 2.0}, {y, 2.0}}, Relation::kEqual, 8.0);
  model.set_objective_coefficient(x, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.0, 1e-7);
  EXPECT_NEAR(solution.values[y], 4.0, 1e-6);
}

TEST(SimplexEdge, ZeroRhsEqualities) {
  LpModel model;
  const VarId x = model.add_nonnegative("x");
  const VarId y = model.add_nonnegative("y");
  model.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEqual, 0.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 6.0);
  model.set_objective_sense(Sense::kMaximize);
  model.set_objective_coefficient(x, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], solution.values[y], 1e-6);
  EXPECT_NEAR(solution.objective, 3.0, 1e-6);
}

TEST(SimplexEdge, DuplicateTermsInExpression) {
  // The column builder must accumulate repeated terms for one variable.
  LpModel model;
  const VarId x = model.add_nonnegative("x");
  model.add_constraint({{x, 1.0}, {x, 1.0}, {x, 1.0}}, Relation::kLessEqual, 6.0);
  model.set_objective_sense(Sense::kMaximize);
  model.set_objective_coefficient(x, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], 2.0, 1e-7);
}

TEST(SimplexEdge, EmptyConstraintListJustBounds) {
  LpModel model;
  const VarId x = model.add_variable(-1.0, 4.0, "x");
  model.set_objective_coefficient(x, -2.0);  // min -2x -> x = 4
  // No constraints at all: phase 1 is trivial.
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], 4.0, 1e-9);
}

TEST(SimplexEdge, TinyCoefficientsSurvive) {
  LpModel model;
  const VarId x = model.add_nonnegative("x");
  model.add_constraint({{x, 1e-6}}, Relation::kLessEqual, 1e-6);
  model.set_objective_sense(Sense::kMaximize);
  model.set_objective_coefficient(x, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], 1.0, 1e-4);
}

TEST(SimplexEdge, LargeScaleDifferencesSurvive) {
  LpModel model;
  const VarId x = model.add_nonnegative("x");
  const VarId y = model.add_nonnegative("y");
  model.add_constraint({{x, 1e6}, {y, 1.0}}, Relation::kLessEqual, 1e6);
  model.add_constraint({{x, 1.0}, {y, 1e-3}}, Relation::kLessEqual, 2.0);
  model.set_objective_sense(Sense::kMaximize);
  model.set_objective_coefficient(x, 1.0);
  model.set_objective_coefficient(y, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_LT(model.max_violation(solution.values), 1e-4);
}

// Deterministic: solving the same model twice yields identical solutions
// (the anti-degeneracy perturbations are seeded, not random).
TEST(SimplexEdge, SolveIsDeterministic) {
  util::Rng rng(5);
  LpModel model;
  std::vector<VarId> vars;
  for (int v = 0; v < 20; ++v) {
    vars.push_back(model.add_variable(0.0, rng.uniform_double(0.5, 2.0)));
    model.set_objective_coefficient(vars.back(), rng.uniform_double(-1.0, 1.0));
  }
  for (int r = 0; r < 10; ++r) {
    LinearExpr expr;
    for (int v = 0; v < 20; ++v) {
      expr.push_back({vars[v], rng.uniform_double(0.0, 1.0)});
    }
    model.add_constraint(expr, Relation::kLessEqual, rng.uniform_double(1.0, 5.0));
  }
  model.set_objective_sense(Sense::kMaximize);
  const Solution a = solve(model);
  const Solution b = solve(model);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_EQ(a.iterations, b.iterations);
  for (std::size_t v = 0; v < a.values.size(); ++v) {
    EXPECT_DOUBLE_EQ(a.values[v], b.values[v]);
  }
}

}  // namespace
}  // namespace poq::lp
