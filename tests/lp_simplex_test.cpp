#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/model.hpp"
#include "util/rng.hpp"

namespace poq::lp {
namespace {

TEST(Simplex, TrivialBoundedMaximum) {
  LpModel model;
  const VarId x = model.add_variable(0.0, 5.0, "x");
  model.set_objective_sense(Sense::kMaximize);
  model.set_objective_coefficient(x, 3.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 15.0, 1e-7);
  EXPECT_NEAR(solution.values[x], 5.0, 1e-9);
}

TEST(Simplex, TextbookTwoVariable) {
  // max 3x + 5y st x <= 4; 2y <= 12; 3x + 2y <= 18  ->  (2, 6), obj 36.
  LpModel model;
  const VarId x = model.add_nonnegative("x");
  const VarId y = model.add_nonnegative("y");
  model.add_constraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  model.add_constraint({{y, 2.0}}, Relation::kLessEqual, 12.0);
  model.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  model.set_objective_sense(Sense::kMaximize);
  model.set_objective_coefficient(x, 3.0);
  model.set_objective_coefficient(y, 5.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 36.0, 1e-7);
  EXPECT_NEAR(solution.values[x], 2.0, 1e-7);
  EXPECT_NEAR(solution.values[y], 6.0, 1e-7);
}

TEST(Simplex, MinimizationWithGreaterEqual) {
  // min 2x + 3y st x + y >= 4; x >= 1  ->  (4, 0)? check: obj(4,0)=8,
  // obj(1,3)=11, so optimum x=4,y=0.
  LpModel model;
  const VarId x = model.add_nonnegative("x");
  const VarId y = model.add_nonnegative("y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 4.0);
  model.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 1.0);
  model.set_objective_coefficient(x, 2.0);
  model.set_objective_coefficient(y, 3.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 8.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y st x + 2y = 6, x,y >= 0  ->  y=3,x=0, obj 3.
  LpModel model;
  const VarId x = model.add_nonnegative("x");
  const VarId y = model.add_nonnegative("y");
  model.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kEqual, 6.0);
  model.set_objective_coefficient(x, 1.0);
  model.set_objective_coefficient(y, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 3.0, 1e-7);
  EXPECT_NEAR(solution.values[y], 3.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  LpModel model;
  const VarId x = model.add_variable(0.0, 1.0, "x");
  model.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  const Solution solution = solve(model);
  EXPECT_EQ(solution.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEqualitySystem) {
  LpModel model;
  const VarId x = model.add_nonnegative("x");
  const VarId y = model.add_nonnegative("y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 1.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 2.0);
  EXPECT_EQ(solve(model).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpModel model;
  const VarId x = model.add_nonnegative("x");
  model.set_objective_sense(Sense::kMaximize);
  model.set_objective_coefficient(x, 1.0);
  model.add_constraint({{x, -1.0}}, Relation::kLessEqual, 0.0);  // no upper limit
  EXPECT_EQ(solve(model).status, SolveStatus::kUnbounded);
}

TEST(Simplex, BoundedVariableNotUnbounded) {
  // Same shape but box bounds save it.
  LpModel model;
  const VarId x = model.add_variable(0.0, 7.0, "x");
  model.set_objective_sense(Sense::kMaximize);
  model.set_objective_coefficient(x, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 7.0, 1e-9);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x st x >= -3 with x in [-5, 5]  ->  -3 ... constraint beats bound.
  LpModel model;
  const VarId x = model.add_variable(-5.0, 5.0, "x");
  model.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, -3.0);
  model.set_objective_coefficient(x, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -3.0, 1e-7);
}

TEST(Simplex, FreeVariable) {
  // min x + y st x + y >= 2, x free, y in [0, 1]: pick y = 1... any split
  // with x + y = 2 gives objective 2.
  LpModel model;
  const VarId x = model.add_variable(-kInf, kInf, "x");
  const VarId y = model.add_variable(0.0, 1.0, "y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 2.0);
  model.set_objective_coefficient(x, 1.0);
  model.set_objective_coefficient(y, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 2.0, 1e-7);
}

TEST(Simplex, DegenerateVertexStillSolves) {
  // Redundant constraints meeting at the optimum (classic degeneracy).
  LpModel model;
  const VarId x = model.add_nonnegative("x");
  const VarId y = model.add_nonnegative("y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 1.0);
  model.add_constraint({{x, 1.0}}, Relation::kLessEqual, 1.0);
  model.add_constraint({{y, 1.0}}, Relation::kLessEqual, 1.0);
  model.add_constraint({{x, 2.0}, {y, 1.0}}, Relation::kLessEqual, 2.0);
  model.set_objective_sense(Sense::kMaximize);
  model.set_objective_coefficient(x, 1.0);
  model.set_objective_coefficient(y, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 1.0, 1e-7);
}

TEST(Simplex, SolutionSatisfiesAllConstraints) {
  LpModel model;
  const VarId x = model.add_nonnegative("x");
  const VarId y = model.add_nonnegative("y");
  const VarId z = model.add_variable(0.0, 2.0, "z");
  model.add_constraint({{x, 1.0}, {y, 2.0}, {z, 1.0}}, Relation::kLessEqual, 10.0);
  model.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kGreaterEqual, 1.0);
  model.add_constraint({{y, 1.0}, {z, 1.0}}, Relation::kEqual, 2.0);
  model.set_objective_sense(Sense::kMaximize);
  model.set_objective_coefficient(x, 1.0);
  model.set_objective_coefficient(y, 1.0);
  model.set_objective_coefficient(z, 1.0);
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_LT(model.max_violation(solution.values), 1e-7);
}

// Property sweep: transportation-style problems with known optimal value.
// Ship from supplies to demands over all (i,j) lanes with unit costs
// c_ij = |i - j| + 1; with equal total supply and demand the LP is
// feasible, and the optimum is computable by the greedy matching of
// sorted supplies to demands when costs are Monge (|i-j| is).
class TransportSweep : public ::testing::TestWithParam<int> {};

TEST_P(TransportSweep, FeasibleAndTight) {
  const int size = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(size) * 977);
  std::vector<double> supply(size);
  std::vector<double> demand(size);
  double total = 0.0;
  for (int i = 0; i < size; ++i) {
    supply[i] = static_cast<double>(rng.uniform_int(1, 9));
    total += supply[i];
  }
  double remaining = total;
  for (int j = 0; j < size - 1; ++j) {
    demand[j] = std::floor(remaining / 2.0);
    remaining -= demand[j];
  }
  demand[size - 1] = remaining;

  LpModel model;
  std::vector<std::vector<VarId>> ship(size, std::vector<VarId>(size));
  for (int i = 0; i < size; ++i) {
    for (int j = 0; j < size; ++j) {
      ship[i][j] = model.add_nonnegative();
      model.set_objective_coefficient(ship[i][j], std::abs(i - j) + 1.0);
    }
  }
  for (int i = 0; i < size; ++i) {
    LinearExpr row;
    for (int j = 0; j < size; ++j) row.push_back({ship[i][j], 1.0});
    model.add_constraint(row, Relation::kEqual, supply[i]);
  }
  for (int j = 0; j < size; ++j) {
    LinearExpr column;
    for (int i = 0; i < size; ++i) column.push_back({ship[i][j], 1.0});
    model.add_constraint(column, Relation::kEqual, demand[j]);
  }
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_LT(model.max_violation(solution.values), 1e-6);
  // Cost at least total (every unit pays >= 1) and no more than the
  // worst lane cost times volume.
  EXPECT_GE(solution.objective, total - 1e-6);
  EXPECT_LE(solution.objective, total * static_cast<double>(size));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransportSweep, ::testing::Values(2, 3, 5, 8, 12));

// Property: the simplex optimum of max c^T x over random box+knapsack
// problems must dominate any random feasible point.
class RandomLpSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpSweep, OptimumDominatesRandomFeasiblePoints) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 5);
  const int variables = 3 + GetParam() % 6;
  const int constraints = 2 + GetParam() % 4;

  LpModel model;
  std::vector<VarId> vars;
  for (int v = 0; v < variables; ++v) {
    vars.push_back(model.add_variable(0.0, rng.uniform_double(0.5, 3.0)));
  }
  std::vector<std::vector<double>> coeffs(constraints,
                                          std::vector<double>(variables));
  std::vector<double> rhs(constraints);
  for (int r = 0; r < constraints; ++r) {
    LinearExpr expr;
    for (int v = 0; v < variables; ++v) {
      coeffs[r][v] = rng.uniform_double(0.0, 1.0);
      expr.push_back({vars[v], coeffs[r][v]});
    }
    rhs[r] = rng.uniform_double(0.5, 2.0);
    model.add_constraint(expr, Relation::kLessEqual, rhs[r]);
  }
  model.set_objective_sense(Sense::kMaximize);
  std::vector<double> objective(variables);
  for (int v = 0; v < variables; ++v) {
    objective[v] = rng.uniform_double(0.0, 2.0);
    model.set_objective_coefficient(vars[v], objective[v]);
  }
  const Solution solution = solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);  // x = 0 is feasible
  EXPECT_LT(model.max_violation(solution.values), 1e-7);

  // Sample feasible points by scaled rejection; none may beat the optimum.
  for (int sample = 0; sample < 200; ++sample) {
    std::vector<double> point(variables);
    for (int v = 0; v < variables; ++v) {
      point[v] = rng.uniform_double(0.0, model.upper_bound(vars[v]));
    }
    double worst = 1.0;
    for (int r = 0; r < constraints; ++r) {
      double lhs = 0.0;
      for (int v = 0; v < variables; ++v) lhs += coeffs[r][v] * point[v];
      if (lhs > rhs[r]) worst = std::max(worst, lhs / rhs[r]);
    }
    double value = 0.0;
    for (int v = 0; v < variables; ++v) value += objective[v] * point[v] / worst;
    EXPECT_LE(value, solution.objective + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace poq::lp
