#include "net/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::net {
namespace {

TEST(Bytes, FixedWidthRoundTrip) {
  ByteWriter writer;
  writer.write_u8(0xAB);
  writer.write_u16(0xBEEF);
  writer.write_u32(0xDEADBEEF);
  writer.write_u64(0x0123456789ABCDEFULL);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_u8(), 0xAB);
  EXPECT_EQ(reader.read_u16(), 0xBEEF);
  EXPECT_EQ(reader.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter writer;
  writer.write_u32(0x01020304);
  ASSERT_EQ(writer.size(), 4u);
  EXPECT_EQ(writer.bytes()[0], 0x04);
  EXPECT_EQ(writer.bytes()[3], 0x01);
}

TEST(Bytes, VarintSmallValuesOneByte) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL}) {
    ByteWriter writer;
    writer.write_varint(v);
    EXPECT_EQ(writer.size(), 1u) << v;
    ByteReader reader(writer.bytes());
    EXPECT_EQ(reader.read_varint(), v);
  }
}

TEST(Bytes, VarintBoundaries) {
  for (std::uint64_t v : {std::uint64_t{128}, std::uint64_t{16383},
                          std::uint64_t{16384}, std::uint64_t{1} << 32,
                          std::numeric_limits<std::uint64_t>::max()}) {
    ByteWriter writer;
    writer.write_varint(v);
    ByteReader reader(writer.bytes());
    EXPECT_EQ(reader.read_varint(), v);
  }
}

TEST(Bytes, VarintRandomRoundTrip) {
  util::Rng rng(3);
  ByteWriter writer;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    const int bits = static_cast<int>(rng.uniform_index(64)) + 1;
    const std::uint64_t v = rng() >> (64 - bits);
    values.push_back(v);
    writer.write_varint(v);
  }
  ByteReader reader(writer.bytes());
  for (std::uint64_t v : values) EXPECT_EQ(reader.read_varint(), v);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Bytes, DoubleRoundTrip) {
  ByteWriter writer;
  for (double v : {0.0, -1.5, 3.14159, 1e300, -1e-300}) writer.write_double(v);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_double(), 0.0);
  EXPECT_EQ(reader.read_double(), -1.5);
  EXPECT_EQ(reader.read_double(), 3.14159);
  EXPECT_EQ(reader.read_double(), 1e300);
  EXPECT_EQ(reader.read_double(), -1e-300);
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter writer;
  writer.write_string("hello");
  writer.write_string("");
  writer.write_string(std::string(300, 'x'));
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_string(), "hello");
  EXPECT_EQ(reader.read_string(), "");
  EXPECT_EQ(reader.read_string(), std::string(300, 'x'));
}

TEST(Bytes, TruncatedInputThrows) {
  ByteWriter writer;
  writer.write_u32(42);
  ByteReader reader(
      std::span<const std::uint8_t>(writer.bytes().data(), 2));
  EXPECT_THROW((void)reader.read_u32(), PreconditionError);
}

TEST(Bytes, TruncatedStringThrows) {
  ByteWriter writer;
  writer.write_varint(100);  // length prefix promising 100 bytes
  ByteReader reader(writer.bytes());
  EXPECT_THROW((void)reader.read_string(), PreconditionError);
}

TEST(Bytes, OverlongVarintThrows) {
  std::vector<std::uint8_t> bad(11, 0x80);  // never terminates within 64 bits
  ByteReader reader(bad);
  EXPECT_THROW((void)reader.read_varint(), PreconditionError);
}

TEST(Bytes, RemainingTracksCursor) {
  ByteWriter writer;
  writer.write_u16(7);
  writer.write_u8(1);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.remaining(), 3u);
  (void)reader.read_u16();
  EXPECT_EQ(reader.remaining(), 1u);
}

}  // namespace
}  // namespace poq::net
