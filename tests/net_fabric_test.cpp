#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace poq::net {
namespace {

ClassicalFabric unit_latency_fabric() {
  return ClassicalFabric([](NodeId, NodeId) { return 1.0; });
}

TEST(Fabric, DeliversAfterLatency) {
  ClassicalFabric fabric([](NodeId src, NodeId dst) {
    return static_cast<SimTime>(dst > src ? dst - src : src - dst);
  });
  const SimTime due = fabric.send(0, 3, 10.0, SwapNotify{});
  EXPECT_DOUBLE_EQ(due, 13.0);
  EXPECT_FALSE(fabric.poll(12.9).has_value());
  const auto envelope = fabric.poll(13.0);
  ASSERT_TRUE(envelope.has_value());
  EXPECT_EQ(envelope->src, 0u);
  EXPECT_EQ(envelope->dst, 3u);
  EXPECT_DOUBLE_EQ(envelope->send_time, 10.0);
}

TEST(Fabric, DeliveryOrderedByTime) {
  ClassicalFabric fabric([](NodeId src, NodeId) {
    return src == 0 ? 5.0 : 1.0;
  });
  fabric.send(0, 1, 0.0, PathRelease{1, false});  // due t=5
  fabric.send(2, 1, 0.0, PathRelease{2, false});  // due t=1
  const auto first = fabric.poll(10.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(std::get<PathRelease>(first->message).request_id, 2u);
  const auto second = fabric.poll(10.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(std::get<PathRelease>(second->message).request_id, 1u);
}

TEST(Fabric, FifoAmongEqualDeliveryTimes) {
  ClassicalFabric fabric = unit_latency_fabric();
  for (std::uint64_t i = 0; i < 10; ++i) {
    fabric.send(0, 1, 0.0, PathRelease{i, false});
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto envelope = fabric.poll(1.0);
    ASSERT_TRUE(envelope.has_value());
    EXPECT_EQ(std::get<PathRelease>(envelope->message).request_id, i);
  }
}

TEST(Fabric, NextDeliveryPeek) {
  ClassicalFabric fabric = unit_latency_fabric();
  EXPECT_FALSE(fabric.next_delivery().has_value());
  fabric.send(0, 1, 2.5, SwapNotify{});
  ASSERT_TRUE(fabric.next_delivery().has_value());
  EXPECT_DOUBLE_EQ(*fabric.next_delivery(), 3.5);
}

TEST(Fabric, TracksPerTypeTraffic) {
  ClassicalFabric fabric = unit_latency_fabric();
  fabric.send(0, 1, 0.0, SwapNotify{});
  fabric.send(0, 1, 0.0, SwapNotify{});
  CountUpdate update;
  update.entries = {{1, 5}, {2, 6}};
  fabric.send(1, 0, 0.0, update);
  EXPECT_EQ(fabric.stats(MessageType::kSwapNotify).messages, 2u);
  EXPECT_EQ(fabric.stats(MessageType::kCountUpdate).messages, 1u);
  EXPECT_GT(fabric.stats(MessageType::kSwapNotify).bytes, 0u);
  const TrafficStats total = fabric.total_stats();
  EXPECT_EQ(total.messages, 3u);
  EXPECT_EQ(total.bytes, fabric.stats(MessageType::kSwapNotify).bytes +
                             fabric.stats(MessageType::kCountUpdate).bytes);
}

TEST(Fabric, InFlightCount) {
  ClassicalFabric fabric = unit_latency_fabric();
  fabric.send(0, 1, 0.0, SwapNotify{});
  fabric.send(0, 1, 0.0, SwapNotify{});
  EXPECT_EQ(fabric.in_flight(), 2u);
  (void)fabric.poll(1.0);
  EXPECT_EQ(fabric.in_flight(), 1u);
}

TEST(Fabric, RejectsNegativeLatency) {
  ClassicalFabric fabric([](NodeId, NodeId) { return -1.0; });
  EXPECT_THROW(fabric.send(0, 1, 0.0, SwapNotify{}), PreconditionError);
}

TEST(Fabric, RequiresLatencyFunction) {
  EXPECT_THROW(ClassicalFabric(nullptr), PreconditionError);
}

}  // namespace
}  // namespace poq::net
