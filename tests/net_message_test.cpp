#include "net/message.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::net {
namespace {

TEST(Message, SwapNotifyRoundTrip) {
  SwapNotify original;
  original.repeater = 7;
  original.left = 2;
  original.right = 19;
  original.z_bit = true;
  original.x_bit = false;
  const auto bytes = encode(original);
  const Message decoded = decode(bytes);
  const auto& m = std::get<SwapNotify>(decoded);
  EXPECT_EQ(m.repeater, 7u);
  EXPECT_EQ(m.left, 2u);
  EXPECT_EQ(m.right, 19u);
  EXPECT_TRUE(m.z_bit);
  EXPECT_FALSE(m.x_bit);
}

TEST(Message, SwapNotifyIsCompact) {
  // The classical completion notice is tiny: tag + 3 small varints + the
  // packed 2 bits — 5 bytes for small node ids.
  SwapNotify m;
  m.repeater = 3;
  m.left = 1;
  m.right = 5;
  EXPECT_EQ(encoded_size(m), 5u);
}

TEST(Message, AllFourBitCombinationsSurvive) {
  for (bool z : {false, true}) {
    for (bool x : {false, true}) {
      SwapNotify m;
      m.z_bit = z;
      m.x_bit = x;
      const Message decoded = decode(encode(m));
      const auto& round = std::get<SwapNotify>(decoded);
      EXPECT_EQ(round.z_bit, z);
      EXPECT_EQ(round.x_bit, x);
    }
  }
}

TEST(Message, CountUpdateRoundTrip) {
  CountUpdate original;
  original.reporter = 4;
  original.version = 123456;
  original.entries = {{0, 3}, {2, 0}, {9, 77}};
  const Message decoded = decode(encode(original));
  const auto& m = std::get<CountUpdate>(decoded);
  EXPECT_EQ(m.reporter, 4u);
  EXPECT_EQ(m.version, 123456u);
  ASSERT_EQ(m.entries.size(), 3u);
  EXPECT_EQ(m.entries[2].peer, 9u);
  EXPECT_EQ(m.entries[2].count, 77u);
}

TEST(Message, CountUpdateEmptyEntries) {
  CountUpdate original;
  original.reporter = 1;
  const Message decoded = decode(encode(original));
  const auto& m = std::get<CountUpdate>(decoded);
  EXPECT_TRUE(m.entries.empty());
}

TEST(Message, PathReserveRoundTrip) {
  PathReserve original;
  original.request_id = 999;
  original.path = {0, 5, 2, 8};
  const Message decoded = decode(encode(original));
  const auto& m = std::get<PathReserve>(decoded);
  EXPECT_EQ(m.request_id, 999u);
  EXPECT_EQ(m.path, (std::vector<NodeId>{0, 5, 2, 8}));
}

TEST(Message, PathReleaseRoundTrip) {
  PathRelease original;
  original.request_id = 31337;
  original.completed = true;
  const Message decoded = decode(encode(original));
  const auto& m = std::get<PathRelease>(decoded);
  EXPECT_EQ(m.request_id, 31337u);
  EXPECT_TRUE(m.completed);
}

TEST(Message, GossipControlRoundTrip) {
  GossipControl original;
  original.from = 3;
  original.to = 11;
  original.unchoke = true;
  const Message decoded = decode(encode(original));
  const auto& m = std::get<GossipControl>(decoded);
  EXPECT_EQ(m.from, 3u);
  EXPECT_EQ(m.to, 11u);
  EXPECT_TRUE(m.unchoke);
}

TEST(Message, PairUpdateRoundTrip) {
  PairUpdate original;
  original.to = 6;
  original.new_partner = 14;
  original.qubit = 9001;
  original.new_partner_qubit = 9002;
  original.z_bit = true;
  original.x_bit = true;
  const Message decoded = decode(encode(original));
  const auto& m = std::get<PairUpdate>(decoded);
  EXPECT_EQ(m.to, 6u);
  EXPECT_EQ(m.new_partner, 14u);
  EXPECT_EQ(m.qubit, 9001u);
  EXPECT_EQ(m.new_partner_qubit, 9002u);
  EXPECT_TRUE(m.z_bit);
  EXPECT_TRUE(m.x_bit);
}

TEST(Message, ConsumeOfferRoundTrip) {
  ConsumeOffer original;
  original.from = 2;
  original.to = 9;
  original.request_id = 555;
  original.initiator_qubit = 1234567;
  original.responder_qubit = 7654321;
  const Message decoded = decode(encode(original));
  const auto& m = std::get<ConsumeOffer>(decoded);
  EXPECT_EQ(m.from, 2u);
  EXPECT_EQ(m.to, 9u);
  EXPECT_EQ(m.request_id, 555u);
  EXPECT_EQ(m.initiator_qubit, 1234567u);
  EXPECT_EQ(m.responder_qubit, 7654321u);
}

TEST(Message, ConsumeReplyRoundTrip) {
  ConsumeReply original;
  original.from = 9;
  original.to = 2;
  original.request_id = 555;
  original.accept = true;
  const Message decoded = decode(encode(original));
  const auto& m = std::get<ConsumeReply>(decoded);
  EXPECT_EQ(m.from, 9u);
  EXPECT_EQ(m.to, 2u);
  EXPECT_EQ(m.request_id, 555u);
  EXPECT_TRUE(m.accept);
}

TEST(Message, TypeTagsStable) {
  EXPECT_EQ(message_type(SwapNotify{}), MessageType::kSwapNotify);
  EXPECT_EQ(message_type(CountUpdate{}), MessageType::kCountUpdate);
  EXPECT_EQ(message_type(PathReserve{}), MessageType::kPathReserve);
  EXPECT_EQ(message_type(PathRelease{}), MessageType::kPathRelease);
  EXPECT_EQ(message_type(GossipControl{}), MessageType::kGossipControl);
  EXPECT_EQ(encode(SwapNotify{}).front(), 1u);
}

TEST(Message, DecodeRejectsUnknownTag) {
  const std::vector<std::uint8_t> junk{200, 0, 0};
  EXPECT_THROW((void)decode(junk), PreconditionError);
}

TEST(Message, DecodeRejectsTruncatedBody) {
  auto bytes = encode(PathReserve{42, {1, 2, 3}});
  bytes.resize(bytes.size() - 2);
  EXPECT_THROW((void)decode(bytes), PreconditionError);
}

TEST(Message, EncodedSizeMatchesEncodeLength) {
  util::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    CountUpdate m;
    m.reporter = static_cast<NodeId>(rng.uniform_index(1000));
    const auto entries = rng.uniform_index(20);
    for (std::size_t e = 0; e < entries; ++e) {
      m.entries.push_back({static_cast<NodeId>(rng.uniform_index(1000)),
                           static_cast<std::uint32_t>(rng.uniform_index(100000))});
    }
    EXPECT_EQ(encoded_size(m), encode(m).size());
  }
}

}  // namespace
}  // namespace poq::net
