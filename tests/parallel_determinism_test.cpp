// The intra-run determinism contract (docs/ARCHITECTURE.md): for every
// tick-driven protocol in the registry, RunMetrics are bit-identical
// across intra-run thread counts and shard counts — threads and shards
// are pure performance knobs. These tests compare full RunMetrics JSON
// dumps (labels, scalars, stats) for exact equality: the phase-kernel
// protocols (balancing, planned, hybrid, gossip, fidelity) exercise the
// sharded NetworkState engine, the message-driven ones (distributed,
// async_routing) the vertex-program substrate. lp has no tick engine at
// all and must *reject* the knobs with a clear error.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/balancing_sim.hpp"
#include "scenario/protocol.hpp"
#include "sim/fault_plan.hpp"
#include "scenario/sweep.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace poq::scenario {
namespace {

/// Every protocol with a tick engine: the phase-kernel family runs on the
/// sharded NetworkState, the message-driven family (distributed,
/// async_routing) on the vertex-program substrate. All of them must be
/// threads/shards/decide-invariant. lp is deliberately absent: it has no
/// engine and rejects the knobs (LpRejectsEngineKnobs below).
const std::vector<std::string> kPortedProtocols = {
    "balancing", "planned",  "hybrid",        "gossip",
    "distributed", "fidelity", "async_routing"};

ScenarioSpec base_spec(const std::string& protocol, std::size_t nodes = 25) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.topology = "random-grid";
  spec.nodes = nodes;
  spec.consumer_pairs = 20;
  spec.requests = 40;
  spec.seed = 11;
  spec.knobs["max-rounds"] = std::int64_t{5000};
  if (protocol == "planned") spec.knobs.erase("max-rounds");
  if (protocol == "fidelity" || protocol == "distributed" ||
      protocol == "async_routing") {
    // Event-driven protocols take a duration, not a round budget; keep it
    // short enough for the full threads x shards cross product.
    spec.knobs.erase("max-rounds");
    spec.knobs["duration"] = 60.0;
  }
  if (protocol == "lp") spec.knobs.erase("max-rounds");
  return spec;
}

std::string run_dump(const ScenarioSpec& spec) {
  // to_json(false): drop the phase_ms.* wall-clock timings — they are
  // observability, explicitly outside the determinism contract.
  return registry().run(spec.protocol, spec).to_json(false).dump(2);
}

TEST(ParallelDeterminism, ThreadsNeverChangeResults) {
  for (const std::string& protocol : kPortedProtocols) {
    ScenarioSpec spec = base_spec(protocol);
    spec.knobs["threads"] = std::int64_t{1};
    const std::string reference = run_dump(spec);
    for (const std::int64_t threads : {2, 8}) {
      spec.knobs["threads"] = threads;
      EXPECT_EQ(run_dump(spec), reference)
          << protocol << " drifted at threads=" << threads;
    }
  }
}

TEST(ParallelDeterminism, AutoThreadsMatchExplicit) {
  for (const std::string& protocol : kPortedProtocols) {
    ScenarioSpec spec = base_spec(protocol);
    spec.knobs["threads"] = std::int64_t{1};
    const std::string reference = run_dump(spec);
    spec.knobs["threads"] = std::int64_t{0};  // hardware concurrency
    EXPECT_EQ(run_dump(spec), reference) << protocol;
  }
}

TEST(ParallelDeterminism, ShardCountNeverChangesResults) {
  for (const std::string& protocol : kPortedProtocols) {
    ScenarioSpec spec = base_spec(protocol);
    spec.knobs["threads"] = std::int64_t{2};
    spec.knobs["shards"] = std::int64_t{1};
    const std::string reference = run_dump(spec);
    for (const std::int64_t shards : {3, 16}) {
      spec.knobs["shards"] = shards;
      EXPECT_EQ(run_dump(spec), reference)
          << protocol << " drifted at shards=" << shards;
    }
  }
}

TEST(ParallelDeterminism, FullThreadShardCrossProduct) {
  // The acceptance grid: threads {1,2,8} x shards {1,3,16} must agree on
  // every ported protocol (smaller spec to keep the 9-way product cheap).
  for (const std::string& protocol : kPortedProtocols) {
    ScenarioSpec spec = base_spec(protocol, 16);
    spec.consumer_pairs = 10;
    spec.requests = 20;
    if (protocol == "fidelity") spec.knobs["duration"] = 40.0;
    std::string reference;
    for (const std::int64_t threads : {1, 2, 8}) {
      for (const std::int64_t shards : {1, 3, 16}) {
        spec.knobs["threads"] = threads;
        spec.knobs["shards"] = shards;
        const std::string dump = run_dump(spec);
        if (reference.empty()) {
          reference = dump;
        } else {
          EXPECT_EQ(dump, reference) << protocol << " drifted at threads="
                                     << threads << " shards=" << shards;
        }
      }
    }
  }
}

TEST(ParallelDeterminism, MoreShardsThanNodesIsLegalAndIdentical) {
  // n = 9 nodes with 32 shards: trailing shards are empty ranges.
  for (const std::string& protocol : kPortedProtocols) {
    ScenarioSpec spec = base_spec(protocol, 9);
    spec.consumer_pairs = 8;
    spec.requests = 10;
    if (protocol == "fidelity") spec.knobs["duration"] = 40.0;
    spec.knobs["shards"] = std::int64_t{1};
    const std::string reference = run_dump(spec);
    spec.knobs["shards"] = std::int64_t{32};
    for (const std::int64_t threads : {1, 4}) {
      spec.knobs["threads"] = threads;
      EXPECT_EQ(run_dump(spec), reference)
          << protocol << " drifted with 32 shards, threads=" << threads;
    }
  }
}

TEST(ParallelDeterminism, FractionalRatesStayDeterministic) {
  // Fractional generation rate and distillation exercise every RNG stream
  // the sharded engine keys (per-edge generation, per-commit rounding).
  ScenarioSpec spec = base_spec("balancing");
  spec.knobs["generation-rate"] = 0.7;
  spec.knobs["distillation"] = 1.5;
  spec.knobs["threads"] = std::int64_t{1};
  const std::string reference = run_dump(spec);
  for (const std::int64_t threads : {2, 8}) {
    spec.knobs["threads"] = threads;
    EXPECT_EQ(run_dump(spec), reference) << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, GossipStaleViewRoundsStayDeterministic) {
  // Slow gossip (fanout 1, two-round latency) keeps beneficiary views
  // genuinely stale across rounds, exercising the canonical message-merge
  // and the view-based two-level commit re-check.
  ScenarioSpec spec = base_spec("gossip");
  spec.knobs["fanout"] = std::int64_t{1};
  spec.knobs["latency"] = 2.0;
  spec.knobs["threads"] = std::int64_t{1};
  const std::string reference = run_dump(spec);
  const RunMetrics reference_metrics = registry().run("gossip", spec);
  EXPECT_GT(reference_metrics.scalar("view_age"), 0.0)
      << "spec too easy: views never went stale";
  for (const std::int64_t threads : {2, 8}) {
    for (const std::int64_t shards : {3, 16}) {
      spec.knobs["threads"] = threads;
      spec.knobs["shards"] = shards;
      EXPECT_EQ(run_dump(spec), reference)
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(ParallelDeterminism, FidelityEventOrderingStaysDeterministic) {
  // A dense event schedule (high scan activity over a long horizon) makes
  // the canonical (timestamp, node id) commit order carry real weight.
  ScenarioSpec spec = base_spec("fidelity", 16);
  spec.consumer_pairs = 10;
  spec.requests = 10000;  // never drains: events keep flowing all run
  spec.knobs["duration"] = 120.0;
  spec.knobs["memory-T"] = 30.0;  // fast decay keeps the purge kernels busy
  spec.knobs["threads"] = std::int64_t{1};
  const std::string reference = run_dump(spec);
  const RunMetrics reference_metrics = registry().run("fidelity", spec);
  EXPECT_GT(reference_metrics.scalar("swaps"), 0.0);
  EXPECT_GT(reference_metrics.scalar("pairs_decayed"), 0.0);
  for (const std::int64_t threads : {2, 8}) {
    for (const std::int64_t shards : {3, 16}) {
      spec.knobs["threads"] = threads;
      spec.knobs["shards"] = shards;
      EXPECT_EQ(run_dump(spec), reference)
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(ParallelDeterminism, MegascaleSparseCellStaysDeterministic) {
  // A 10^4-node sparse torus with streaming arrivals — the megascale
  // regime the BENCH_megascale gate runs at. Everything the round loop
  // touches at this scale is sparse (partner rows, live-pair buckets,
  // lazy distance rows), so this cell pins the whole sparse path to the
  // determinism contract: threads {1,8} x shards {1,16} bit-identical,
  // including the memory_bytes_per_node scalar.
  ScenarioSpec spec;
  spec.protocol = "balancing";
  spec.topology = "full-grid";
  spec.nodes = 10000;  // 100^2
  spec.consumer_pairs = 4;
  spec.requests = 1;
  spec.seed = 41;
  spec.knobs["arrival-rate"] = 8.0;
  spec.knobs["consumer-pool"] = std::int64_t{2000000};
  spec.knobs["max-rounds"] = std::int64_t{40};
  std::string reference;
  for (const std::int64_t threads : {1, 8}) {
    for (const std::int64_t shards : {1, 16}) {
      ScenarioSpec cell = spec;
      cell.knobs["threads"] = threads;
      cell.knobs["shards"] = shards;
      const std::string dump = run_dump(cell);
      if (reference.empty()) {
        reference = dump;
        EXPECT_NE(dump.find("memory_bytes_per_node"), std::string::npos);
      } else {
        EXPECT_EQ(dump, reference) << "megascale cell drifted at threads="
                                   << threads << " shards=" << shards;
      }
    }
  }
}

TEST(ParallelDeterminism, StreamingArrivalsStayDeterministic) {
  // Small streaming run that actually serves requests: the Poisson
  // arrival stream, the lazily derived pool pairs, and the backlog
  // accounting must all be pure functions of (seed, round), never of the
  // worker schedule.
  ScenarioSpec spec;
  spec.protocol = "balancing";
  spec.topology = "full-grid";
  spec.nodes = 49;
  spec.consumer_pairs = 4;
  spec.requests = 1;
  spec.seed = 41;
  spec.knobs["arrival-rate"] = 2.0;
  spec.knobs["consumer-pool"] = std::int64_t{2000000};
  spec.knobs["max-rounds"] = std::int64_t{2000};
  spec.knobs["max-requests"] = std::int64_t{100};
  spec.knobs["threads"] = std::int64_t{1};
  const std::string reference = run_dump(spec);
  const RunMetrics reference_metrics = registry().run("balancing", spec);
  EXPECT_EQ(reference_metrics.scalar("satisfied"), 100.0);
  EXPECT_GT(reference_metrics.scalar("arrivals"), 0.0);
  for (const std::int64_t threads : {2, 8}) {
    for (const std::int64_t shards : {3, 16}) {
      spec.knobs["threads"] = threads;
      spec.knobs["shards"] = shards;
      EXPECT_EQ(run_dump(spec), reference)
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(ParallelDeterminism, FaultChurnStaysDeterministic) {
  // Node + link churn plus rate degradation on the three protocols whose
  // fault phases stress different machinery (ledger purges + generation
  // masks, gossip's message substrate, the fidelity event engine): the
  // fault trajectory comes from its own keyed streams, so the full
  // resilience metric set — crashes, purges, availability, recovery
  // timings in simulated time — must be bit-identical across the
  // acceptance grid threads {1,2,8} x shards {1,3,16}.
  for (const std::string protocol : {"balancing", "gossip", "fidelity"}) {
    ScenarioSpec spec = base_spec(protocol, 16);
    spec.consumer_pairs = 10;
    spec.requests = 30;
    if (protocol == "fidelity") spec.knobs["duration"] = 40.0;
    spec.knobs["fault-node-mtbf"] = 50.0;
    spec.knobs["fault-node-mttr"] = 6.0;
    spec.knobs["fault-link-mtbf"] = 30.0;
    spec.knobs["fault-link-mttr"] = 4.0;
    spec.knobs["fault-rate-degradation"] = 0.3;
    // A scripted crash on top of the stochastic churn exercises the
    // script cursor alongside the keyed transitions.
    spec.faults.push_back({3, sim::FaultEventKind::kNodeDown, 2, 0, 0, 1.0});
    spec.faults.push_back({9, sim::FaultEventKind::kNodeUp, 2, 0, 0, 1.0});
    std::string reference;
    for (const std::int64_t threads : {1, 2, 8}) {
      for (const std::int64_t shards : {1, 3, 16}) {
        spec.knobs["threads"] = threads;
        spec.knobs["shards"] = shards;
        const std::string dump = run_dump(spec);
        if (reference.empty()) {
          reference = dump;
          EXPECT_NE(dump.find("node_crashes"), std::string::npos)
              << protocol << ": resilience metrics missing under faults";
          EXPECT_NE(dump.find("availability"), std::string::npos);
        } else {
          EXPECT_EQ(dump, reference) << protocol << " drifted at threads="
                                     << threads << " shards=" << shards;
        }
      }
    }
    const RunMetrics metrics = registry().run(protocol, spec);
    EXPECT_GT(metrics.scalar("node_crashes"), 0.0) << protocol;
    EXPECT_LT(metrics.scalar("availability"), 1.0) << protocol;
  }
}

TEST(ParallelDeterminism, FaultFreeRunsKeepHistoricalMetrics) {
  // All-default fault knobs must leave every protocol on its historical
  // path: same numbers, and no resilience metrics in the dump (committed
  // baselines depend on the metric set not growing).
  for (const std::string& protocol : kPortedProtocols) {
    ScenarioSpec spec = base_spec(protocol, 16);
    spec.consumer_pairs = 10;
    spec.requests = 20;
    if (protocol == "fidelity" || protocol == "distributed" ||
        protocol == "async_routing") {
      spec.knobs["duration"] = 30.0;
    }
    const std::string reference = run_dump(spec);
    EXPECT_EQ(reference.find("node_crashes"), std::string::npos) << protocol;
    EXPECT_EQ(reference.find("pairs_purged_by_faults"), std::string::npos)
        << protocol;
    ScenarioSpec explicit_defaults = spec;
    explicit_defaults.knobs["fault-node-mtbf"] = 0.0;
    explicit_defaults.knobs["fault-link-mtbf"] = 0.0;
    explicit_defaults.knobs["fault-rate-degradation"] = 0.0;
    EXPECT_EQ(run_dump(explicit_defaults), reference) << protocol;
  }
}

TEST(ParallelDeterminism, SeedReplicatedSweepCellIsThreadInvariant) {
  // One sweep cell replicated over seeds, swept at different pool sizes
  // and intra-run thread counts: the aggregated cell JSON must not move.
  // Compare the aggregated labels + metrics only: the echoed spec differs
  // by design (it carries the threads knob) and wall_ms is explicitly
  // outside the determinism contract.
  const auto aggregate_dump = [](unsigned pool_threads,
                                 std::int64_t intra_threads) {
    ScenarioSpec spec = base_spec("balancing");
    spec.requests = 20;
    spec.knobs["threads"] = intra_threads;
    SweepOptions options;
    options.seeds_per_cell = 3;
    options.threads = pool_threads;
    options.intra_run_threads =
        static_cast<unsigned>(intra_threads > 0 ? intra_threads : 1);
    const std::vector<CellAggregate> cells = SweepRunner(options).run({spec});
    const util::json::Value cell = cells.front().to_json();
    return cell.at("labels").dump(2) + "\n" + cell.at("metrics").dump(2);
  };
  const std::string reference = aggregate_dump(1, 1);
  EXPECT_EQ(aggregate_dump(4, 1), reference);
  EXPECT_EQ(aggregate_dump(1, 8), reference);
  EXPECT_EQ(aggregate_dump(2, 2), reference);
}

TEST(ParallelDeterminism, SequentialEngineStaysLegacy) {
  // engine=sequential must keep reproducing the pre-port sequential
  // simulator bit for bit (the core unit suites pin that path too).
  ScenarioSpec spec = base_spec("balancing");
  spec.knobs["engine"] = std::string("sequential");
  const RunMetrics metrics = registry().run("balancing", spec);

  const ScenarioInstance instance = instantiate(spec);
  core::BalancingConfig config;
  config.max_rounds = 5000;
  config.seed = spec.seed;
  ASSERT_EQ(config.tick.mode, sim::TickMode::kSequential);  // the default
  const core::BalancingResult direct =
      core::run_balancing(instance.graph, instance.workload, config);
  EXPECT_EQ(metrics.scalar("rounds"), static_cast<double>(direct.rounds));
  EXPECT_EQ(metrics.scalar("swaps"),
            static_cast<double>(direct.swaps_performed));
  EXPECT_EQ(metrics.scalar("satisfied"),
            static_cast<double>(direct.requests_satisfied));
}

TEST(ParallelDeterminism, EveryProtocolAcceptsBothEngines) {
  for (const std::string& protocol : kPortedProtocols) {
    ScenarioSpec spec = base_spec(protocol, 16);
    spec.consumer_pairs = 10;
    spec.requests = 15;
    if (protocol == "fidelity" || protocol == "distributed" ||
        protocol == "async_routing") {
      spec.knobs["duration"] = 30.0;
    }
    for (const char* engine : {"sharded", "sequential"}) {
      spec.knobs["engine"] = std::string(engine);
      EXPECT_NO_THROW((void)registry().run(protocol, spec))
          << protocol << " rejected engine=" << engine;
    }
  }
}

TEST(ParallelDeterminism, EngineKnobRejectsUnknownValues) {
  for (const std::string& protocol : kPortedProtocols) {
    ScenarioSpec spec = base_spec(protocol);
    spec.knobs["engine"] = std::string("warp-drive");
    EXPECT_THROW((void)registry().run(protocol, spec), PreconditionError);
  }
}

TEST(ParallelDeterminism, LpRejectsEngineKnobs) {
  // lp's steady-state solve has no tick engine to select: its schema
  // deliberately declares no tick knobs, so the registry's knob
  // validation must reject them with a clear error instead of silently
  // accepting and ignoring them (the old adapter lie).
  for (const char* knob : {"engine", "threads", "shards", "decide"}) {
    ScenarioSpec spec = base_spec("lp");
    spec.knobs[knob] = std::string("anything");
    try {
      (void)registry().run("lp", spec);
      FAIL() << "lp accepted tick knob '" << knob << "'";
    } catch (const PreconditionError& error) {
      EXPECT_NE(std::string(error.what()).find("has no knob"),
                std::string::npos)
          << "unhelpful error for knob '" << knob << "': " << error.what();
    }
  }
}

}  // namespace
}  // namespace poq::scenario
