#include "quantum/circuits.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "quantum/gates.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::quantum {
namespace {

/// Prepare an arbitrary test state cos(t/2)|0> + e^{ip} sin(t/2)|1> on a
/// fresh qubit.
void prepare_arbitrary(Statevector& state, unsigned qubit, double theta, double phi) {
  state.apply(gates::rotation_y(theta), qubit);
  state.apply(gates::rotation_z(phi), qubit);
}

// Fig. 1: teleportation moves an arbitrary state intact, for every random
// measurement branch.
TEST(Teleportation, TransfersArbitraryState) {
  util::Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const double theta = rng.uniform_double(0.0, 3.14159);
    const double phi = rng.uniform_double(0.0, 6.28318);

    // Reference: the state we teleport, alone on one qubit.
    Statevector reference(1);
    prepare_arbitrary(reference, 0, theta, phi);

    // Register: qubit 0 = psi, qubits (1, 2) = Bell channel.
    Statevector state(3);
    prepare_arbitrary(state, 0, theta, phi);
    state.prepare_bell_phi_plus(1, 2);
    teleport(state, 0, 1, 2, rng);

    // Destination qubit 2 must carry the state (same Born statistics)...
    EXPECT_NEAR(state.probability_one(2), reference.probability_one(0), 1e-9);
    // ...including phase: undoing the preparation must return it to |0>.
    state.apply(gates::rotation_z(-phi), 2);
    state.apply(gates::rotation_y(-theta), 2);
    EXPECT_NEAR(state.probability_one(2), 0.0, 1e-9);
  }
}

// All four Bell-measurement branches repair correctly (exhaustive, using
// forced projections rather than sampling).
TEST(Teleportation, AllFourBranchesRepair) {
  for (int z_bit = 0; z_bit < 2; ++z_bit) {
    for (int x_bit = 0; x_bit < 2; ++x_bit) {
      const double theta = 1.234;
      const double phi = 0.731;
      Statevector state(3);
      prepare_arbitrary(state, 0, theta, phi);
      state.prepare_bell_phi_plus(1, 2);
      // Origin operations (Fig. 1b-c).
      state.apply_cnot(0, 1);
      state.apply(gates::hadamard(), 0);
      state.project(0, z_bit == 1);
      state.project(1, x_bit == 1);
      // Destination repair (Fig. 1d).
      if (x_bit == 1) state.apply(gates::pauli_x(), 2);
      if (z_bit == 1) state.apply(gates::pauli_z(), 2);
      // Undo the preparation; destination must return to |0>.
      state.apply(gates::rotation_z(-phi), 2);
      state.apply(gates::rotation_y(-theta), 2);
      EXPECT_NEAR(state.probability_one(2), 0.0, 1e-9)
          << "branch z=" << z_bit << " x=" << x_bit;
    }
  }
}

TEST(PhiPlusReference, IsMaximallyEntangled) {
  const Statevector phi = phi_plus_reference();
  EXPECT_NEAR(phi.probability_one(0), 0.5, 1e-12);
  EXPECT_NEAR(phi.probability_one(1), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(phi.amplitudes()[0]), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(phi.amplitudes()[3]), 0.5, 1e-12);
}

// Fig. 2: a single swap leaves the far ends in Phi+.
TEST(EntanglementSwap, ProducesEndToEndBellPair) {
  util::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const Statevector result = swap_chain(2, {1}, rng);
    EXPECT_NEAR(result.fidelity_with(phi_plus_reference()), 1.0, 1e-9);
  }
}

// Fig. 3: swap order along the path is arbitrary — every permutation of
// repeater order yields a perfect end-to-end pair.
TEST(SwapChain, AnyOrderWorksForFourHops) {
  util::Rng rng(13);
  std::vector<unsigned> order{1, 2, 3};
  do {
    const Statevector result = swap_chain(4, order, rng);
    EXPECT_NEAR(result.fidelity_with(phi_plus_reference()), 1.0, 1e-9);
  } while (std::next_permutation(order.begin(), order.end()));
}

// The paper's Fig. 3 scenario: R3 swaps before R1/R2 have acted — i.e. a
// middle repeater extracts itself first.
TEST(SwapChain, MiddleFirstMatchesPaper) {
  util::Rng rng(17);
  const Statevector result = swap_chain(5, {3, 1, 2, 4}, rng);
  EXPECT_NEAR(result.fidelity_with(phi_plus_reference()), 1.0, 1e-9);
}

class SwapChainLengthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SwapChainLengthSweep, SequentialOrderAlwaysPerfect) {
  util::Rng rng(19);
  const unsigned hops = GetParam();
  std::vector<unsigned> order(hops - 1);
  std::iota(order.begin(), order.end(), 1u);
  const Statevector result = swap_chain(hops, order, rng);
  EXPECT_NEAR(result.fidelity_with(phi_plus_reference()), 1.0, 1e-9);
}

TEST_P(SwapChainLengthSweep, ReverseOrderAlwaysPerfect) {
  util::Rng rng(23);
  const unsigned hops = GetParam();
  std::vector<unsigned> order(hops - 1);
  std::iota(order.begin(), order.end(), 1u);
  std::reverse(order.begin(), order.end());
  const Statevector result = swap_chain(hops, order, rng);
  EXPECT_NEAR(result.fidelity_with(phi_plus_reference()), 1.0, 1e-9);
}

TEST_P(SwapChainLengthSweep, RandomOrderAlwaysPerfect) {
  util::Rng rng(29 + GetParam());
  const unsigned hops = GetParam();
  std::vector<unsigned> order(hops - 1);
  std::iota(order.begin(), order.end(), 1u);
  rng.shuffle(std::span<unsigned>(order));
  const Statevector result = swap_chain(hops, order, rng);
  EXPECT_NEAR(result.fidelity_with(phi_plus_reference()), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Hops, SwapChainLengthSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(SwapChain, RejectsBadArguments) {
  util::Rng rng(1);
  EXPECT_THROW(swap_chain(0, {}, rng), PreconditionError);
  EXPECT_THROW(swap_chain(3, {1}, rng), PreconditionError);      // missing swap
  EXPECT_THROW(swap_chain(3, {1, 1}, rng), PreconditionError);   // duplicate
  EXPECT_THROW(swap_chain(3, {1, 3}, rng), PreconditionError);   // out of range
}

TEST(BellMeasure, OutcomesUniformOnPhiPlus) {
  util::Rng rng(31);
  int counts[4] = {0, 0, 0, 0};
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    Statevector state(2);
    state.prepare_bell_phi_plus(0, 1);
    // Bell-measuring one half of Phi+ against a fresh |0> ancilla is not
    // meaningful; instead measure the pair itself in the Bell basis: the
    // outcome must always be (0, 0) since the state IS Phi+.
    const BellMeasurement bits = bell_measure(state, 0, 1, rng);
    ++counts[(bits.z_bit ? 1 : 0) + (bits.x_bit ? 2 : 0)];
  }
  EXPECT_EQ(counts[0], trials);
}

}  // namespace
}  // namespace poq::quantum
