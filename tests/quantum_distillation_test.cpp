#include "quantum/distillation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace poq::quantum {
namespace {

TEST(Bbpssw, PerfectInputsPassThrough) {
  const DistillationStep step = bbpssw(1.0, 1.0);
  EXPECT_NEAR(step.success_probability, 1.0, 1e-12);
  EXPECT_NEAR(step.output_fidelity, 1.0, 1e-12);
}

TEST(Bbpssw, ImprovesAboveThreshold) {
  for (double f : {0.6, 0.7, 0.8, 0.9, 0.95}) {
    const DistillationStep step = bbpssw(f, f);
    EXPECT_GT(step.output_fidelity, f) << "F=" << f;
    EXPECT_GT(step.success_probability, 0.25);
    EXPECT_LE(step.success_probability, 1.0);
  }
}

TEST(Bbpssw, DoesNotImproveAtOrBelowThreshold) {
  const DistillationStep at = bbpssw(0.5, 0.5);
  EXPECT_LE(at.output_fidelity, 0.5 + 1e-12);
  const DistillationStep below = bbpssw(0.4, 0.4);
  EXPECT_LE(below.output_fidelity, 0.4 + 1e-9);
}

TEST(Bbpssw, MixedInputStaysMixed) {
  const DistillationStep step = bbpssw(0.25, 0.25);
  EXPECT_NEAR(step.output_fidelity, 0.25, 1e-12);
}

TEST(Bbpssw, AsymmetricInputsBetweenInputs) {
  const DistillationStep step = bbpssw(0.99, 0.7);
  EXPECT_GT(step.output_fidelity, 0.7);
}

TEST(Dejmps, MatchesKnownRecurrence) {
  const BellDiagonal w = BellDiagonal::werner(0.8);
  const DejmpsResult result = dejmps(w, w);
  const double n = (w.a + w.d) * (w.a + w.d) + (w.b + w.c) * (w.b + w.c);
  EXPECT_NEAR(result.success_probability, n, 1e-12);
  EXPECT_NEAR(result.output.a, (w.a * w.a + w.d * w.d) / n, 1e-12);
  EXPECT_NEAR(result.output.weight_sum(), 1.0, 1e-12);
}

TEST(Dejmps, ImprovesWernerAboveHalf) {
  for (double f : {0.6, 0.75, 0.9}) {
    const BellDiagonal w = BellDiagonal::werner(f);
    const DejmpsResult result = dejmps(w, w);
    EXPECT_GT(result.output.fidelity(), f);
  }
}

TEST(Dejmps, OutputIsNormalizedDistribution) {
  const BellDiagonal s1{0.7, 0.1, 0.15, 0.05};
  const BellDiagonal s2{0.6, 0.2, 0.1, 0.1};
  const DejmpsResult result = dejmps(s1, s2);
  EXPECT_NEAR(result.output.weight_sum(), 1.0, 1e-12);
  EXPECT_GE(result.output.a, 0.0);
  EXPECT_GE(result.output.b, 0.0);
  EXPECT_GE(result.output.c, 0.0);
  EXPECT_GE(result.output.d, 0.0);
  EXPECT_GT(result.success_probability, 0.0);
  EXPECT_LE(result.success_probability, 1.0);
}

TEST(Dejmps, BeatsOrMatchesBbpsswOnWerner) {
  // DEJMPS keeps the Bell-diagonal structure instead of twirling, so its
  // one-round output fidelity on Werner inputs is at least BBPSSW's.
  for (double f : {0.6, 0.75, 0.85, 0.95}) {
    const double bb = bbpssw(f, f).output_fidelity;
    const double dj = dejmps(BellDiagonal::werner(f), BellDiagonal::werner(f)).output.a;
    EXPECT_GE(dj + 1e-12, bb) << "F=" << f;
  }
}

TEST(NestedCost, NoRoundsWhenRawSuffices) {
  const DistillationCost cost = nested_distillation_cost(0.95, 0.9);
  ASSERT_TRUE(cost.reachable);
  EXPECT_EQ(cost.rounds, 0u);
  EXPECT_NEAR(cost.expected_raw_pairs, 1.0, 1e-12);
}

TEST(NestedCost, RoundsAndCostGrowWithTarget) {
  const DistillationCost easy = nested_distillation_cost(0.8, 0.85);
  const DistillationCost hard = nested_distillation_cost(0.8, 0.95);
  ASSERT_TRUE(easy.reachable);
  ASSERT_TRUE(hard.reachable);
  EXPECT_LE(easy.rounds, hard.rounds);
  EXPECT_LT(easy.expected_raw_pairs, hard.expected_raw_pairs);
  EXPECT_GE(hard.output_fidelity, 0.95);
}

TEST(NestedCost, CostAtLeastTwoPerRound) {
  const DistillationCost cost = nested_distillation_cost(0.8, 0.9);
  ASSERT_TRUE(cost.reachable);
  EXPECT_GE(cost.expected_raw_pairs,
            std::pow(2.0, static_cast<double>(cost.rounds)) - 1e-9);
}

TEST(NestedCost, UnreachableBelowThreshold) {
  const DistillationCost cost = nested_distillation_cost(0.45, 0.9);
  EXPECT_FALSE(cost.reachable);
}

TEST(PumpingCost, ReachesModestTargets) {
  const DistillationCost cost = pumping_cost(0.85, 0.9);
  ASSERT_TRUE(cost.reachable);
  EXPECT_GT(cost.expected_raw_pairs, 1.0);
}

TEST(PumpingCost, FixedPointLimitsTargets) {
  // Pumping with low raw fidelity converges to a fixed point; targets
  // above it are unreachable even with many rounds.
  const DistillationCost cost = pumping_cost(0.7, 0.99);
  EXPECT_FALSE(cost.reachable);
}

TEST(PumpingCost, NestingReachesHigherThanPumping) {
  // Nesting distills distilled pairs with each other, so its fixed point
  // is 1.0; pumping re-uses raw pairs and plateaus below that.
  const double raw = 0.75;
  const double target = 0.97;
  EXPECT_TRUE(nested_distillation_cost(raw, target).reachable);
  EXPECT_FALSE(pumping_cost(raw, target).reachable);
}

TEST(DistillationOverhead, OneWhenRawMeetsTarget) {
  EXPECT_NEAR(distillation_overhead(0.95, 0.9), 1.0, 1e-12);
}

TEST(DistillationOverhead, GrowsWithTarget) {
  const double d1 = distillation_overhead(0.85, 0.9);
  const double d2 = distillation_overhead(0.85, 0.97);
  EXPECT_GT(d1, 1.0);
  EXPECT_GT(d2, d1);
}

TEST(DistillationOverhead, ThrowsWhenUnreachable) {
  EXPECT_THROW((void)distillation_overhead(0.4, 0.9), PreconditionError);
}

TEST(Distillation, RejectsBadFidelities) {
  EXPECT_THROW((void)bbpssw(-0.1, 0.5), PreconditionError);
  EXPECT_THROW((void)bbpssw(0.5, 1.1), PreconditionError);
  EXPECT_THROW((void)nested_distillation_cost(0.0, 0.5), PreconditionError);
}

}  // namespace
}  // namespace poq::quantum
