#include "quantum/statevector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "quantum/gates.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::quantum {
namespace {

constexpr double kTol = 1e-12;

TEST(Statevector, InitializesToAllZeros) {
  Statevector state(3);
  EXPECT_EQ(state.qubit_count(), 3u);
  EXPECT_EQ(state.dimension(), 8u);
  EXPECT_NEAR(std::norm(state.amplitudes()[0]), 1.0, kTol);
  EXPECT_NEAR(state.norm_squared(), 1.0, kTol);
}

TEST(Statevector, PauliXFlipsQubit) {
  Statevector state(2);
  state.apply(gates::pauli_x(), 0);
  EXPECT_NEAR(std::norm(state.amplitudes()[1]), 1.0, kTol);  // |01> (qubit0=1)
  state.apply(gates::pauli_x(), 1);
  EXPECT_NEAR(std::norm(state.amplitudes()[3]), 1.0, kTol);  // |11>
}

TEST(Statevector, HadamardCreatesUniformSuperposition) {
  Statevector state(1);
  state.apply(gates::hadamard(), 0);
  EXPECT_NEAR(state.probability_one(0), 0.5, kTol);
  // H is self-inverse.
  state.apply(gates::hadamard(), 0);
  EXPECT_NEAR(state.probability_one(0), 0.0, kTol);
}

TEST(Statevector, GatesPreserveNorm) {
  util::Rng rng(3);
  Statevector state(4);
  for (int step = 0; step < 50; ++step) {
    const unsigned q = static_cast<unsigned>(rng.uniform_index(4));
    switch (rng.uniform_index(5)) {
      case 0: state.apply(gates::hadamard(), q); break;
      case 1: state.apply(gates::phase_t(), q); break;
      case 2: state.apply(gates::rotation_y(rng.uniform_double(0, 3.1)), q); break;
      case 3: state.apply_cnot(q, (q + 1) % 4); break;
      case 4: state.apply_cz(q, (q + 2) % 4); break;
    }
    ASSERT_NEAR(state.norm_squared(), 1.0, 1e-9);
  }
}

TEST(Statevector, PauliAlgebra) {
  // XZ = -iY on |psi>: check via fidelity of XZ|0> against Y|0> (global
  // phase invisible to fidelity).
  Statevector a(1);
  a.apply(gates::pauli_z(), 0);
  a.apply(gates::pauli_x(), 0);
  Statevector b(1);
  b.apply(gates::pauli_y(), 0);
  EXPECT_NEAR(a.fidelity_with(b), 1.0, 1e-12);
}

TEST(Statevector, CnotEntangles) {
  Statevector state(2);
  state.apply(gates::hadamard(), 0);
  state.apply_cnot(0, 1);
  // (|00> + |11>)/sqrt(2)
  EXPECT_NEAR(std::norm(state.amplitudes()[0]), 0.5, kTol);
  EXPECT_NEAR(std::norm(state.amplitudes()[3]), 0.5, kTol);
  EXPECT_NEAR(std::norm(state.amplitudes()[1]), 0.0, kTol);
  EXPECT_NEAR(std::norm(state.amplitudes()[2]), 0.0, kTol);
}

TEST(Statevector, PrepareBellPhiPlus) {
  Statevector state(4);
  state.prepare_bell_phi_plus(1, 3);
  EXPECT_NEAR(state.probability_one(1), 0.5, kTol);
  EXPECT_NEAR(state.probability_one(3), 0.5, kTol);
  EXPECT_NEAR(state.probability_one(0), 0.0, kTol);
  EXPECT_NEAR(state.norm_squared(), 1.0, kTol);
}

TEST(Statevector, MeasurementCollapsesAndIsConsistent) {
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Statevector state(2);
    state.prepare_bell_phi_plus(0, 1);
    const bool first = state.measure(0, rng);
    // Phi+ correlations: the second measurement must match the first.
    EXPECT_NEAR(state.probability_one(1), first ? 1.0 : 0.0, kTol);
    const bool second = state.measure(1, rng);
    EXPECT_EQ(first, second);
  }
}

TEST(Statevector, MeasurementStatisticsMatchBornRule) {
  util::Rng rng(11);
  int ones = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    Statevector state(1);
    state.apply(gates::rotation_y(2.0 * std::acos(std::sqrt(0.3))), 0);
    // P(1) = 1 - 0.3 = 0.7 for this rotation angle.
    if (state.measure(0, rng)) ++ones;
  }
  EXPECT_NEAR(ones / static_cast<double>(trials), 0.7, 0.03);
}

TEST(Statevector, ProjectReturnsBranchProbability) {
  Statevector state(1);
  state.apply(gates::hadamard(), 0);
  const double p = state.project(0, true);
  EXPECT_NEAR(p, 0.5, kTol);
  EXPECT_NEAR(state.probability_one(0), 1.0, kTol);
  EXPECT_NEAR(state.norm_squared(), 1.0, kTol);
}

TEST(Statevector, ProjectRejectsImpossibleBranch) {
  Statevector state(1);  // |0>
  EXPECT_THROW(state.project(0, true), PreconditionError);
}

TEST(Statevector, FidelityWithSelfIsOne) {
  Statevector state(3);
  state.prepare_bell_phi_plus(0, 2);
  state.apply(gates::phase_t(), 1);
  EXPECT_NEAR(state.fidelity_with(state), 1.0, kTol);
}

TEST(Statevector, FidelityOrthogonalStates) {
  Statevector a(1);
  Statevector b(1);
  b.apply(gates::pauli_x(), 0);
  EXPECT_NEAR(a.fidelity_with(b), 0.0, kTol);
}

TEST(Statevector, FromAmplitudesNormalizes) {
  const auto state = Statevector::from_amplitudes(
      {Amplitude{3.0, 0.0}, Amplitude{0.0, 0.0}, Amplitude{0.0, 0.0},
       Amplitude{4.0, 0.0}});
  EXPECT_EQ(state.qubit_count(), 2u);
  EXPECT_NEAR(state.norm_squared(), 1.0, kTol);
  EXPECT_NEAR(std::norm(state.amplitudes()[0]), 0.36, kTol);
  EXPECT_NEAR(std::norm(state.amplitudes()[3]), 0.64, kTol);
}

TEST(Statevector, FromAmplitudesRejectsBadSizes) {
  EXPECT_THROW(Statevector::from_amplitudes({Amplitude{1, 0}, Amplitude{0, 0},
                                             Amplitude{0, 0}}),
               PreconditionError);
  EXPECT_THROW(Statevector::from_amplitudes({}), PreconditionError);
}

TEST(Statevector, RejectsOutOfRangeQubit) {
  Statevector state(2);
  EXPECT_THROW(state.apply(gates::pauli_x(), 2), PreconditionError);
  EXPECT_THROW(state.apply_cnot(0, 0), PreconditionError);
  EXPECT_THROW((void)state.probability_one(5), PreconditionError);
}

TEST(Statevector, RotationGatesComposeToIdentity) {
  Statevector state(1);
  state.apply(gates::hadamard(), 0);
  Statevector reference = state;
  state.apply(gates::rotation_z(1.1), 0);
  state.apply(gates::rotation_z(-1.1), 0);
  EXPECT_NEAR(state.fidelity_with(reference), 1.0, 1e-12);
}

}  // namespace
}  // namespace poq::quantum
