#include "quantum/werner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace poq::quantum {
namespace {

TEST(Werner, ParameterFidelityRoundTrip) {
  for (double f : {0.25, 0.3, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_NEAR(werner_fidelity(werner_parameter(f)), f, 1e-12);
  }
}

TEST(Werner, PerfectPairHasUnitParameter) {
  EXPECT_NEAR(werner_parameter(1.0), 1.0, 1e-12);
  EXPECT_NEAR(werner_parameter(0.25), 0.0, 1e-12);  // maximally mixed
}

TEST(Werner, SwapOfPerfectPairsIsPerfect) {
  EXPECT_NEAR(swap_fidelity(1.0, 1.0), 1.0, 1e-12);
}

TEST(Werner, SwapDegradesFidelity) {
  const double f = 0.95;
  const double swapped = swap_fidelity(f, f);
  EXPECT_LT(swapped, f);
  EXPECT_GT(swapped, 0.25);
}

TEST(Werner, SwapIsCommutative) {
  EXPECT_NEAR(swap_fidelity(0.8, 0.95), swap_fidelity(0.95, 0.8), 1e-12);
}

TEST(Werner, SwapWithMixedGivesMixed) {
  EXPECT_NEAR(swap_fidelity(0.9, 0.25), 0.25, 1e-12);
}

TEST(Werner, SwapMatchesClosedForm) {
  // F' = 1/4 + (3/4) p1 p2.
  const double f1 = 0.85;
  const double f2 = 0.92;
  const double expected =
      0.25 + 0.75 * ((4 * f1 - 1) / 3) * ((4 * f2 - 1) / 3);
  EXPECT_NEAR(swap_fidelity(f1, f2), expected, 1e-12);
}

TEST(Werner, ChainFidelityIsOrderFreeProduct) {
  const double f = 0.93;
  // Composing (f, f) then with f equals the 3-segment closed form.
  const double two_then_one = swap_fidelity(swap_fidelity(f, f), f);
  EXPECT_NEAR(chain_fidelity(f, 3), two_then_one, 1e-12);
  EXPECT_NEAR(chain_fidelity(f, 1), f, 1e-12);
}

TEST(Werner, ChainFidelityDecaysExponentially) {
  const double f = 0.95;
  double previous = 1.0;
  for (unsigned segments = 1; segments <= 16; segments *= 2) {
    const double current = chain_fidelity(f, segments);
    EXPECT_LT(current, previous);
    previous = current;
  }
  EXPECT_NEAR(chain_fidelity(f, 64), 0.25, 0.02);  // long chains decohere
}

TEST(Decoherence, NoTimeNoDecay) {
  EXPECT_NEAR(decohered_fidelity(0.9, 0.0, 5.0), 0.9, 1e-12);
}

TEST(Decoherence, DecaysTowardMixed) {
  const double f0 = 0.95;
  double previous = f0;
  for (double t : {0.5, 1.0, 2.0, 5.0, 20.0}) {
    const double f = decohered_fidelity(f0, t, 2.0);
    EXPECT_LT(f, previous);
    EXPECT_GT(f, kMixedFidelity - 1e-12);
    previous = f;
  }
  EXPECT_NEAR(decohered_fidelity(f0, 1000.0, 2.0), kMixedFidelity, 1e-6);
}

TEST(Decoherence, TimeToFidelityInvertsDecay) {
  const double f0 = 0.98;
  const double target = 0.8;
  const double t = time_to_fidelity(f0, target, 3.0);
  EXPECT_NEAR(decohered_fidelity(f0, t, 3.0), target, 1e-9);
}

TEST(Decoherence, TimeToFidelityEdgeCases) {
  EXPECT_EQ(time_to_fidelity(0.7, 0.8, 1.0), 0.0);  // already below target
  EXPECT_TRUE(std::isinf(time_to_fidelity(0.9, 0.2, 1.0)));  // below mixed floor
}

TEST(BellDiagonal, WernerConstruction) {
  const BellDiagonal state = BellDiagonal::werner(0.85);
  EXPECT_NEAR(state.fidelity(), 0.85, 1e-12);
  EXPECT_NEAR(state.b, 0.05, 1e-12);
  EXPECT_NEAR(state.c, 0.05, 1e-12);
  EXPECT_NEAR(state.d, 0.05, 1e-12);
  EXPECT_NEAR(state.weight_sum(), 1.0, 1e-12);
}

TEST(Werner, RejectsOutOfRange) {
  EXPECT_THROW((void)werner_parameter(1.5), PreconditionError);
  EXPECT_THROW((void)werner_parameter(-0.1), PreconditionError);
  EXPECT_THROW((void)decohered_fidelity(0.9, -1.0, 1.0), PreconditionError);
  EXPECT_THROW((void)decohered_fidelity(0.9, 1.0, 0.0), PreconditionError);
  EXPECT_THROW((void)chain_fidelity(0.9, 0), PreconditionError);
}

}  // namespace
}  // namespace poq::quantum
