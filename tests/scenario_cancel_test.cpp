// Cooperative cancellation: the util::CancelToken substrate, the per-round
// checks in the core simulators, and SweepRunner::run_controlled's
// contract that completed cells stay bit-identical while cancelled cells
// are excluded whole.
#include "scenario/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "scenario/protocol.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

namespace poq::scenario {
namespace {

ScenarioSpec cell_spec(std::size_t nodes, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.protocol = "balancing";
  spec.topology = "cycle";
  spec.nodes = nodes;
  spec.consumer_pairs = 4;
  spec.requests = 12;
  spec.seed = seed;
  return spec;
}

std::vector<ScenarioSpec> small_grid() {
  return {cell_spec(9, 11), cell_spec(16, 11), cell_spec(25, 11)};
}

TEST(SweepCancel, ScopedCancelInstallsPerThreadAndNests) {
  EXPECT_FALSE(util::this_thread_cancelled());
  util::CancelToken token;
  {
    const util::ScopedCancel install(&token);
    EXPECT_FALSE(util::this_thread_cancelled());
    token.request();
    EXPECT_TRUE(util::this_thread_cancelled());
    {
      // An inner nullptr install masks the outer token...
      const util::ScopedCancel mask(nullptr);
      EXPECT_FALSE(util::this_thread_cancelled());
    }
    // ...and unwinding restores it.
    EXPECT_TRUE(util::this_thread_cancelled());
    EXPECT_THROW(util::this_thread_check_cancelled(), util::OperationCancelled);
  }
  EXPECT_FALSE(util::this_thread_cancelled());
  token.reset();
  EXPECT_FALSE(token.requested());
}

TEST(SweepCancel, CoreRunAbortsWithOperationCancelled) {
  util::CancelToken token;
  token.request();
  const util::ScopedCancel install(&token);
  const ScenarioSpec spec = cell_spec(9, 1);
  EXPECT_THROW((void)registry().run(spec.protocol, spec),
               util::OperationCancelled);
}

TEST(SweepCancel, PreCancelledTokenRunsNoCell) {
  util::CancelToken token;
  token.request();
  const SweepRunner runner(SweepOptions{1, 1, 1});
  const SweepReport report = runner.run_controlled(small_grid(), &token);
  EXPECT_TRUE(report.cancelled);
  EXPECT_TRUE(report.cells.empty());
  EXPECT_EQ(report.cancelled_cells, small_grid().size());
}

TEST(SweepCancel, NullTokenBehavesLikeRun) {
  const std::vector<ScenarioSpec> grid = small_grid();
  SweepOptions options;
  options.seeds_per_cell = 2;
  options.threads = 2;
  const SweepRunner runner(options);
  const SweepReport controlled = runner.run_controlled(grid, nullptr);
  const std::vector<CellAggregate> plain = runner.run(grid);
  EXPECT_FALSE(controlled.cancelled);
  EXPECT_EQ(controlled.cancelled_cells, 0u);
  ASSERT_EQ(controlled.cells.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(controlled.cell_indices[i], i);
    for (const char* key : {"spec", "seeds", "labels", "metrics"}) {
      EXPECT_EQ(controlled.cells[i].to_json().at(key),
                plain[i].to_json().at(key));
    }
  }
}

TEST(SweepCancel, ObserverSeesEveryTaskOfAFullSweep) {
  const std::vector<ScenarioSpec> grid = small_grid();
  SweepOptions options;
  options.seeds_per_cell = 2;
  options.threads = 2;
  const SweepRunner runner(options);
  std::size_t events = 0;
  std::size_t with_metrics = 0;
  const SweepReport report =
      runner.run_controlled(grid, nullptr, [&](const SweepEvent& event) {
        ++events;
        if (event.metrics != nullptr) ++with_metrics;
        EXPECT_LT(event.cell, grid.size());
        EXPECT_LT(event.rep, 2u);
        EXPECT_EQ(event.spec, &grid[event.cell]);
      });
  EXPECT_EQ(events, grid.size() * 2);
  EXPECT_EQ(with_metrics, events);
  EXPECT_EQ(report.cells.size(), grid.size());
}

TEST(SweepCancel, CancelAfterFirstTaskKeepsCompletedCellsBitIdentical) {
  const std::vector<ScenarioSpec> grid = small_grid();
  SweepOptions options;
  options.seeds_per_cell = 1;
  options.threads = 1;  // tasks complete in (cell, rep) order
  const SweepRunner runner(options);
  util::CancelToken token;
  const SweepReport report =
      runner.run_controlled(grid, &token, [&](const SweepEvent&) {
        // Fire after the first completed task: the claiming loop stops, so
        // later cells never start.
        token.request();
      });
  EXPECT_TRUE(report.cancelled);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.cell_indices.front(), 0u);
  EXPECT_EQ(report.cancelled_cells, grid.size() - 1);

  // The surviving cell aggregates exactly as in an uncancelled batch run.
  const std::vector<CellAggregate> batch = runner.run({grid[0]});
  ASSERT_EQ(batch.size(), 1u);
  for (const char* key : {"spec", "seeds", "labels", "metrics"}) {
    EXPECT_EQ(report.cells[0].to_json().at(key), batch[0].to_json().at(key));
  }
}

TEST(SweepCancel, TaskErrorsStillRethrowUnderControl) {
  std::vector<ScenarioSpec> grid{cell_spec(9, 1)};
  grid[0].knobs["no-such-knob"] = 1.0;  // registry validation throws
  const SweepRunner runner(SweepOptions{1, 1, 1});
  util::CancelToken token;
  EXPECT_THROW((void)runner.run_controlled(grid, &token), PreconditionError);
}

}  // namespace
}  // namespace poq::scenario
