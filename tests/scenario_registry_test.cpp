#include "scenario/protocol.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/balancing_sim.hpp"
#include "core/planned_path.hpp"
#include "core/workload.hpp"
#include "graph/topology.hpp"
#include "scenario/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace poq::scenario {
namespace {

ScenarioSpec small_spec(const std::string& protocol) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.topology = "random-grid";
  spec.nodes = 9;
  spec.consumer_pairs = 8;
  spec.requests = 5;
  spec.seed = 3;
  return spec;
}

TEST(Registry, AllSixSimulatorsPlusLpAreRegistered) {
  const std::vector<std::string> names = registry().names();
  for (const char* expected : {"balancing", "planned", "hybrid", "gossip",
                               "distributed", "fidelity", "lp"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing protocol " << expected;
  }
}

TEST(Registry, EveryProtocolRunsASmallScenario) {
  for (const std::string& name : registry().names()) {
    ScenarioSpec spec = small_spec(name);
    if (name == "distributed" || name == "fidelity") {
      spec.knobs["duration"] = 30.0;
    }
    const RunMetrics metrics = registry().run(name, spec);
    EXPECT_FALSE(metrics.scalars().empty()) << "protocol " << name;
  }
}

TEST(Registry, BalancingAdapterMatchesDirectSimulatorCall) {
  const ScenarioSpec spec = [] {
    ScenarioSpec s = small_spec("balancing");
    s.requests = 12;
    s.knobs["distillation"] = 2.0;
    s.knobs["max-rounds"] = std::int64_t{4000};
    return s;
  }();
  const RunMetrics metrics = registry().run("balancing", spec);

  // Rebuild the experiment by hand with the historical seeding discipline.
  util::Rng rng(spec.seed);
  const graph::Graph graph =
      graph::make_topology(graph::TopologyFamily::kRandomGrid, spec.nodes, rng);
  util::Rng workload_rng = rng.fork(42);
  const core::Workload workload = core::make_uniform_workload(
      spec.nodes, spec.consumer_pairs, spec.requests, workload_rng);
  core::BalancingConfig config;
  config.distillation = 2.0;
  config.max_rounds = 4000;
  config.seed = spec.seed;
  // The adapter's default engine is the sharded deterministic one.
  config.tick.mode = sim::TickMode::kSharded;
  const core::BalancingResult direct = core::run_balancing(graph, workload, config);

  EXPECT_EQ(metrics.label("completed"), direct.completed ? "yes" : "no");
  EXPECT_EQ(metrics.scalar("rounds"), static_cast<double>(direct.rounds));
  EXPECT_EQ(metrics.scalar("swaps"), static_cast<double>(direct.swaps_performed));
  EXPECT_EQ(metrics.scalar("satisfied"),
            static_cast<double>(direct.requests_satisfied));
  if (direct.denominator_paper > 0.0) {
    EXPECT_DOUBLE_EQ(metrics.scalar("overhead_paper"),
                     direct.swap_overhead_paper());
  }
}

TEST(Registry, PlannedAdapterHonorsModeKnob) {
  ScenarioSpec spec = small_spec("planned");
  spec.knobs["mode"] = std::string("connectionless");
  const RunMetrics connectionless = registry().run("planned", spec);
  EXPECT_EQ(connectionless.label("mode"), "connectionless");
  spec.knobs["mode"] = std::string("sideways");
  EXPECT_THROW((void)registry().run("planned", spec), PreconditionError);
}

TEST(Registry, SameSpecSameMetrics) {
  const ScenarioSpec spec = small_spec("gossip");
  const RunMetrics a = registry().run("gossip", spec);
  const RunMetrics b = registry().run("gossip", spec);
  ASSERT_EQ(a.scalars().size(), b.scalars().size());
  for (std::size_t i = 0; i < a.scalars().size(); ++i) {
    EXPECT_EQ(a.scalars()[i].first, b.scalars()[i].first);
    EXPECT_EQ(a.scalars()[i].second, b.scalars()[i].second);  // bit-identical
  }
}

TEST(Registry, LpProtocolReportsStatus) {
  const RunMetrics metrics = registry().run("lp", small_spec("lp"));
  EXPECT_EQ(metrics.label("status"), "optimal");
  EXPECT_TRUE(metrics.has_scalar("total_generation"));
}

TEST(Registry, IsolatedRegistryCanHostCustomProtocols) {
  class Probe final : public Protocol {
   public:
    std::string name() const override { return "probe"; }
    std::string describe() const override { return "test probe"; }
    std::vector<KnobSpec> knobs() const override { return {}; }
    RunMetrics run(const ScenarioSpec&) const override {
      RunMetrics metrics;
      metrics.set_scalar("answer", 42.0);
      return metrics;
    }
  };
  Registry isolated;
  isolated.add(std::make_unique<Probe>());
  ScenarioSpec spec = small_spec("probe");
  EXPECT_EQ(isolated.run("probe", spec).scalar("answer"), 42.0);
  EXPECT_FALSE(isolated.contains("balancing"));
}

TEST(RunMetrics, JsonRoundTrip) {
  RunMetrics metrics;
  metrics.set_label("completed", "yes");
  metrics.set_scalar("rounds", 123.0);
  metrics.set_scalar("overhead_paper", 1.875);
  util::RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  stats.add(4.0);
  metrics.set_stats("head_wait_rounds", stats);

  const RunMetrics round = RunMetrics::from_json(
      util::json::Value::parse(metrics.to_json().dump(2)));
  EXPECT_EQ(round.label("completed"), "yes");
  EXPECT_EQ(round.scalar("rounds"), 123.0);
  EXPECT_EQ(round.scalar("overhead_paper"), 1.875);
  const util::RunningStats& restored = round.stats("head_wait_rounds");
  EXPECT_EQ(restored.count(), 3u);
  EXPECT_DOUBLE_EQ(restored.mean(), stats.mean());
  EXPECT_NEAR(restored.stddev(), stats.stddev(), 1e-12);
  EXPECT_EQ(restored.min(), 1.0);
  EXPECT_EQ(restored.max(), 4.0);
}

}  // namespace
}  // namespace poq::scenario
