#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "scenario/protocol.hpp"
#include "util/error.hpp"

namespace poq::scenario {
namespace {

std::string message_of(const std::function<void()>& action) {
  try {
    action();
  } catch (const PreconditionError& error) {
    return error.what();
  }
  return "";
}

TEST(ScenarioSpec, KnobAccessorsReadTypedValues) {
  ScenarioSpec spec;
  spec.knobs["distillation"] = 2.5;
  spec.knobs["max-rounds"] = std::int64_t{500};
  spec.knobs["distill"] = true;
  spec.knobs["mode"] = std::string("oriented");
  EXPECT_DOUBLE_EQ(spec.knob_double("distillation", 1.0), 2.5);
  EXPECT_EQ(spec.knob_int("max-rounds", 1), 500);
  EXPECT_TRUE(spec.knob_bool("distill", false));
  EXPECT_EQ(spec.knob_string("mode", "x"), "oriented");
  // Absent knobs fall back.
  EXPECT_DOUBLE_EQ(spec.knob_double("absent", 7.0), 7.0);
  // Ints promote to double, but not the reverse.
  EXPECT_DOUBLE_EQ(spec.knob_double("max-rounds", 0.0), 500.0);
  EXPECT_THROW((void)spec.knob_int("distillation", 0), PreconditionError);
  const std::string message =
      message_of([&] { (void)spec.knob_bool("mode", false); });
  EXPECT_NE(message.find("mode"), std::string::npos);
  EXPECT_NE(message.find("bool"), std::string::npos);
}

TEST(ScenarioSpec, ValidateRejectsUnknownTopology) {
  ScenarioSpec spec;
  spec.topology = "moebius";
  const std::string message = message_of([&] { validate_frame(spec); });
  EXPECT_NE(message.find("moebius"), std::string::npos);
  EXPECT_NE(message.find("random-grid"), std::string::npos);  // lists valid names
}

TEST(ScenarioSpec, ValidateRejectsNonSquareGridCounts) {
  ScenarioSpec spec;
  spec.topology = "random-grid";
  spec.nodes = 24;
  const std::string message = message_of([&] { validate_frame(spec); });
  EXPECT_NE(message.find("perfect square"), std::string::npos);
  EXPECT_NE(message.find("25"), std::string::npos);  // nearest valid count
}

TEST(ScenarioSpec, ValidateRejectsTooFewNodes) {
  ScenarioSpec spec;
  spec.topology = "cycle";
  spec.nodes = 2;  // cycles need >= 3
  const std::string message = message_of([&] { validate_frame(spec); });
  EXPECT_NE(message.find("at least"), std::string::npos);
  EXPECT_NE(message.find("got 2"), std::string::npos);
}

TEST(ScenarioSpec, RegistryRejectsUnknownProtocol) {
  ScenarioSpec spec;
  const std::string message =
      message_of([&] { (void)registry().run("warp-drive", spec); });
  EXPECT_NE(message.find("warp-drive"), std::string::npos);
  EXPECT_NE(message.find("balancing"), std::string::npos);  // lists options
}

TEST(ScenarioSpec, RegistryRejectsUnknownKnob) {
  ScenarioSpec spec;
  spec.nodes = 9;
  spec.knobs["flux-capacitance"] = 1.0;
  const std::string message =
      message_of([&] { (void)registry().run("balancing", spec); });
  EXPECT_NE(message.find("flux-capacitance"), std::string::npos);
  EXPECT_NE(message.find("distillation"), std::string::npos);  // valid knobs
}

TEST(ScenarioSpec, RegistryRejectsKnobTypeMismatch) {
  ScenarioSpec spec;
  spec.nodes = 9;
  spec.knobs["max-rounds"] = std::string("many");
  const std::string message =
      message_of([&] { (void)registry().run("balancing", spec); });
  EXPECT_NE(message.find("max-rounds"), std::string::npos);
  EXPECT_NE(message.find("int"), std::string::npos);
  EXPECT_NE(message.find("many"), std::string::npos);
}

TEST(ScenarioSpec, RegistryAcceptsIntForDoubleKnob) {
  ScenarioSpec spec;
  spec.nodes = 9;
  spec.requests = 5;
  spec.knobs["distillation"] = std::int64_t{2};
  const RunMetrics metrics = registry().run("balancing", spec);
  EXPECT_TRUE(metrics.has_scalar("rounds"));
}

TEST(ScenarioSpec, JsonRoundTripPreservesEverything) {
  ScenarioSpec spec;
  spec.protocol = "gossip";
  spec.topology = "cycle";
  spec.nodes = 12;
  spec.consumer_pairs = 10;
  spec.requests = 44;
  spec.seed = 99;
  spec.knobs["fanout"] = std::int64_t{4};
  spec.knobs["latency"] = 1.5;
  spec.knobs["optimistic-peer"] = false;
  spec.knobs["mode"] = std::string("x");
  const ScenarioSpec round = ScenarioSpec::from_json(
      util::json::Value::parse(spec.to_json().dump()));
  EXPECT_EQ(round.protocol, spec.protocol);
  EXPECT_EQ(round.topology, spec.topology);
  EXPECT_EQ(round.nodes, spec.nodes);
  EXPECT_EQ(round.consumer_pairs, spec.consumer_pairs);
  EXPECT_EQ(round.requests, spec.requests);
  EXPECT_EQ(round.seed, spec.seed);
  EXPECT_EQ(round.knobs, spec.knobs);
}

TEST(ScenarioSpec, FaultScriptRoundTripsAndStaysOptional) {
  ScenarioSpec spec;
  spec.faults.push_back({3, sim::FaultEventKind::kNodeDown, 5, 0, 0, 1.0});
  spec.faults.push_back({7, sim::FaultEventKind::kNodeUp, 5, 0, 0, 1.0});
  spec.faults.push_back({2, sim::FaultEventKind::kLinkDown, 0, 1, 2, 1.0});
  spec.faults.push_back({9, sim::FaultEventKind::kLinkUp, 0, 1, 2, 1.0});
  spec.faults.push_back({4, sim::FaultEventKind::kRateFactor, 0, 0, 0, 0.5});
  const ScenarioSpec round = ScenarioSpec::from_json(
      util::json::Value::parse(spec.to_json().dump(2)));
  ASSERT_EQ(round.faults.size(), spec.faults.size());
  for (std::size_t i = 0; i < spec.faults.size(); ++i) {
    EXPECT_EQ(round.faults[i].round, spec.faults[i].round) << i;
    EXPECT_EQ(round.faults[i].kind, spec.faults[i].kind) << i;
    EXPECT_EQ(round.faults[i].node, spec.faults[i].node) << i;
    EXPECT_EQ(round.faults[i].a, spec.faults[i].a) << i;
    EXPECT_EQ(round.faults[i].b, spec.faults[i].b) << i;
    EXPECT_DOUBLE_EQ(round.faults[i].factor, spec.faults[i].factor) << i;
  }
  // Fault-free specs must serialize without the key (committed baseline
  // JSON cannot grow), and pre-fault JSON must still parse.
  ScenarioSpec plain;
  EXPECT_EQ(plain.to_json().dump().find("faults"), std::string::npos);
  const ScenarioSpec legacy = ScenarioSpec::from_json(
      util::json::Value::parse(plain.to_json().dump()));
  EXPECT_TRUE(legacy.faults.empty());
  // Unknown event names fail with the valid vocabulary in the message.
  util::json::Value bad = spec.to_json();
  EXPECT_NE(bad.dump().find("node-down"), std::string::npos);
  const std::string text = bad.dump();
  const util::json::Value mangled = util::json::Value::parse(
      std::string(text).replace(text.find("node-down"), 9, "node-boom"));
  EXPECT_THROW((void)ScenarioSpec::from_json(mangled), PreconditionError);
}

TEST(ScenarioSpec, LpRejectsScriptedFaults) {
  ScenarioSpec spec;
  spec.protocol = "lp";
  spec.nodes = 9;
  spec.faults.push_back({1, sim::FaultEventKind::kNodeDown, 0, 0, 0, 1.0});
  EXPECT_NE(message_of([&] { (void)registry().run("lp", spec); })
                .find("scripted fault events are not supported"),
            std::string::npos);
}

TEST(ScenarioSpec, TopologyParamsRoundTripAndStayOptional) {
  ScenarioSpec spec;
  spec.topology = "watts-strogatz";
  spec.nodes = 12;
  spec.topology_params["k"] = 3;
  spec.topology_params["beta"] = 0.4;
  const ScenarioSpec round = ScenarioSpec::from_json(
      util::json::Value::parse(spec.to_json().dump(2)));
  EXPECT_EQ(round.topology_params, spec.topology_params);
  // Parameter-free specs must serialize without the key, so pre-parameter
  // baseline JSON keeps matching cell by cell.
  ScenarioSpec plain;
  EXPECT_EQ(plain.to_json().dump().find("topology_params"), std::string::npos);
  // And pre-parameter JSON (no key) must still parse.
  const ScenarioSpec legacy = ScenarioSpec::from_json(
      util::json::Value::parse(plain.to_json().dump()));
  EXPECT_TRUE(legacy.topology_params.empty());
}

TEST(ScenarioSpec, TopologyParamsValidatePerFamily) {
  ScenarioSpec spec;
  spec.topology = "cycle";
  spec.nodes = 12;
  spec.topology_params["p"] = 0.5;
  EXPECT_NE(message_of([&] { validate_frame(spec); })
                .find("does not define parameter 'p'"),
            std::string::npos);
  spec.topology = "erdos-renyi";
  EXPECT_NO_THROW(validate_frame(spec));
  spec.topology_params["p"] = 1.5;  // out of range
  EXPECT_THROW(validate_frame(spec), PreconditionError);
  spec.topology_params.clear();
  spec.topology = "watts-strogatz";
  spec.topology_params["k"] = 2.5;  // not integral
  EXPECT_THROW(validate_frame(spec), PreconditionError);
  spec.topology_params["k"] = 5;  // needs n > 2k = 10; 12 is fine
  EXPECT_NO_THROW(validate_frame(spec));
  spec.nodes = 10;
  EXPECT_THROW(validate_frame(spec), PreconditionError);
}

TEST(ScenarioSpec, TopologyParamsShapeTheInstance) {
  ScenarioSpec sparse;
  sparse.topology = "erdos-renyi";
  sparse.nodes = 20;
  sparse.seed = 3;
  sparse.topology_params["p"] = 0.3;
  ScenarioSpec dense = sparse;
  dense.topology_params["p"] = 0.9;
  EXPECT_LT(instantiate(sparse).graph.edge_count(),
            instantiate(dense).graph.edge_count());

  ScenarioSpec ba;
  ba.topology = "barabasi-albert";
  ba.nodes = 20;
  ba.topology_params["m"] = 4;
  // n nodes, m edges per arrival after an m-star seed: m + (n-m-1)*m edges.
  EXPECT_EQ(instantiate(ba).graph.edge_count(), 4u + 15u * 4u);
}

TEST(ScenarioSpec, InstantiateIsDeterministic) {
  ScenarioSpec spec;
  spec.nodes = 16;
  spec.requests = 20;
  spec.seed = 5;
  const ScenarioInstance a = instantiate(spec);
  const ScenarioInstance b = instantiate(spec);
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  ASSERT_EQ(a.workload.sequence.size(), b.workload.sequence.size());
  EXPECT_EQ(a.workload.sequence, b.workload.sequence);
  ASSERT_EQ(a.workload.pairs.size(), b.workload.pairs.size());
  for (std::size_t i = 0; i < a.workload.pairs.size(); ++i) {
    EXPECT_EQ(a.workload.pairs[i], b.workload.pairs[i]);
  }
}

}  // namespace
}  // namespace poq::scenario
