#include "scenario/sweep.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "scenario/protocol.hpp"
#include "util/error.hpp"

namespace poq::scenario {
namespace {

std::vector<ScenarioSpec> small_grid() {
  std::vector<ScenarioSpec> grid;
  for (const std::size_t n : {std::size_t{9}, std::size_t{16}}) {
    for (const double distillation : {1.0, 2.0}) {
      ScenarioSpec spec;
      spec.protocol = "balancing";
      spec.topology = "random-grid";
      spec.nodes = n;
      spec.consumer_pairs = 8;
      spec.requests = 6;
      spec.seed = 1000;
      spec.knobs["distillation"] = distillation;
      spec.knobs["max-rounds"] = std::int64_t{4000};
      grid.push_back(std::move(spec));
    }
  }
  return grid;
}

std::vector<CellAggregate> run_with_threads(unsigned threads,
                                            std::uint32_t seeds) {
  SweepOptions options;
  options.seeds_per_cell = seeds;
  options.threads = threads;
  return SweepRunner(options).run(small_grid());
}

TEST(SweepRunner, ThreadCountNeverChangesAggregatedMetrics) {
  const std::vector<CellAggregate> serial = run_with_threads(1, 3);
  for (const unsigned threads : {2u, 4u, 7u}) {
    const std::vector<CellAggregate> parallel = run_with_threads(threads, 3);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i].scalars.size(), parallel[i].scalars.size())
          << "cell " << i << " with " << threads << " threads";
      for (std::size_t k = 0; k < serial[i].scalars.size(); ++k) {
        EXPECT_EQ(serial[i].scalars[k].first, parallel[i].scalars[k].first);
        const util::RunningStats& a = serial[i].scalars[k].second;
        const util::RunningStats& b = parallel[i].scalars[k].second;
        EXPECT_EQ(a.count(), b.count());
        // Bit-identical, not approximately equal: aggregation order is
        // fixed by (cell, replication), never by completion order.
        EXPECT_EQ(a.mean(), b.mean());
        EXPECT_EQ(a.variance(), b.variance());
        EXPECT_EQ(a.min(), b.min());
        EXPECT_EQ(a.max(), b.max());
      }
    }
  }
}

TEST(SweepRunner, ReplicatesEachCellAcrossSeeds) {
  const std::vector<CellAggregate> cells = run_with_threads(2, 4);
  for (const CellAggregate& cell : cells) {
    EXPECT_EQ(cell.seeds, 4u);
    // Every run reports rounds, so its aggregate has one sample per seed.
    EXPECT_EQ(cell.at("rounds").count(), 4u);
  }
}

TEST(SweepRunner, SeedReplicationMatchesManualRuns) {
  std::vector<ScenarioSpec> grid = small_grid();
  grid.resize(1);
  SweepOptions options;
  options.seeds_per_cell = 3;
  options.threads = 2;
  const CellAggregate aggregate = SweepRunner(options).run(grid).front();
  util::RunningStats expected;
  for (std::uint64_t rep = 0; rep < 3; ++rep) {
    const RunMetrics metrics = registry().run(
        grid.front().protocol, grid.front().with_seed(grid.front().seed + rep));
    expected.add(metrics.scalar("rounds"));
  }
  EXPECT_EQ(aggregate.at("rounds").count(), expected.count());
  EXPECT_EQ(aggregate.at("rounds").mean(), expected.mean());
  EXPECT_EQ(aggregate.at("rounds").variance(), expected.variance());
}

TEST(SweepRunner, EmptyGridYieldsNoCells) {
  EXPECT_TRUE(SweepRunner().run({}).empty());
}

TEST(SweepRunner, TaskErrorsPropagateAfterDraining) {
  std::vector<ScenarioSpec> grid = small_grid();
  grid[1].protocol = "no-such-protocol";
  SweepOptions options;
  options.seeds_per_cell = 2;
  options.threads = 3;
  EXPECT_THROW((void)SweepRunner(options).run(grid), PreconditionError);
}

TEST(SweepRunner, ZeroSeedsIsRejected) {
  SweepOptions options;
  options.seeds_per_cell = 0;
  EXPECT_THROW(SweepRunner runner(options), PreconditionError);
}

TEST(SweepRunner, CellJsonCarriesSpecAndMetrics) {
  const std::vector<CellAggregate> cells = run_with_threads(1, 2);
  const util::json::Value json = cells.front().to_json();
  EXPECT_EQ(json.at("spec").at("protocol").as_string(), "balancing");
  EXPECT_EQ(json.at("seeds").as_number(), 2.0);
  EXPECT_TRUE(json.at("metrics").contains("rounds"));
  EXPECT_EQ(json.at("metrics").at("rounds").at("count").as_number(), 2.0);
  // Round-trips through the parser.
  EXPECT_EQ(util::json::Value::parse(json.dump(2)), json);
}

}  // namespace
}  // namespace poq::scenario
