#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "scenario/protocol.hpp"
#include "util/error.hpp"

namespace poq::serve {
namespace {

using util::json::Value;

TEST(ServeProtocol, FrameReaderSplitsAcrossFeeds) {
  FrameReader reader;
  reader.feed("{\"op\":");
  EXPECT_FALSE(reader.next().has_value());
  reader.feed("\"status\"}\n{\"op\":\"list\"}\n{\"partial");
  EXPECT_EQ(reader.next().value(), "{\"op\":\"status\"}");
  EXPECT_EQ(reader.next().value(), "{\"op\":\"list\"}");
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.pending(), std::string("{\"partial").size());
  reader.feed("\"}\n");
  EXPECT_EQ(reader.next().value(), "{\"partial\"}");
  EXPECT_EQ(reader.pending(), 0u);
}

TEST(ServeProtocol, FrameReaderStripsCarriageReturn) {
  FrameReader reader;
  reader.feed("{\"op\":\"status\"}\r\n");
  EXPECT_EQ(reader.next().value(), "{\"op\":\"status\"}");
}

TEST(ServeProtocol, FrameReaderRejectsOversizedPartialFrame) {
  FrameReader reader;
  reader.feed(std::string(kMaxFrameBytes + 1, 'x'));
  EXPECT_THROW((void)reader.next(), PreconditionError);
}

TEST(ServeProtocol, FrameReaderAcceptsFrameAtTheLimit) {
  FrameReader reader;
  reader.feed(std::string(kMaxFrameBytes, 'x'));
  EXPECT_FALSE(reader.next().has_value());  // still partial, still legal
  reader.feed("\n");
  EXPECT_EQ(reader.next().value().size(), kMaxFrameBytes);
}

TEST(ServeProtocol, ParseRequestRejectsMalformedJsonWithLocation) {
  try {
    (void)parse_request("{\"op\": \"status\",}");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& error) {
    const std::string message = error.what();
    // The located json error must reach remote clients verbatim.
    EXPECT_NE(message.find("line 1"), std::string::npos) << message;
    EXPECT_NE(message.find("column"), std::string::npos) << message;
  }
}

TEST(ServeProtocol, ParseRequestRejectsNonObjectAndMissingOp) {
  EXPECT_THROW((void)parse_request("[1,2]"), PreconditionError);
  EXPECT_THROW((void)parse_request("{\"spec\":{}}"), PreconditionError);
  EXPECT_THROW((void)parse_request("{\"op\":\"frobnicate\"}"), PreconditionError);
  EXPECT_THROW((void)parse_request("{\"op\":42}"), PreconditionError);
}

TEST(ServeProtocol, ParseRequestValidatesPerOpFields) {
  // submit_run needs a spec; submit_sweep a non-empty grid; watch/cancel a job.
  EXPECT_THROW((void)parse_request("{\"op\":\"submit_run\"}"), PreconditionError);
  EXPECT_THROW((void)parse_request("{\"op\":\"submit_sweep\",\"grid\":[]}"),
               PreconditionError);
  EXPECT_THROW((void)parse_request("{\"op\":\"watch\"}"), PreconditionError);
  EXPECT_THROW((void)parse_request("{\"op\":\"cancel\"}"), PreconditionError);
  EXPECT_THROW((void)parse_request("{\"op\":\"cancel\",\"job\":-1}"),
               PreconditionError);
  EXPECT_THROW((void)parse_request("{\"op\":\"cancel\",\"job\":1.5}"),
               PreconditionError);
}

TEST(ServeProtocol, ParseRequestReadsSubmitRun) {
  const Request request = parse_request(
      "{\"op\":\"submit_run\",\"id\":\"r1\",\"watch\":true,"
      "\"spec\":{\"protocol\":\"balancing\",\"topology\":\"cycle\","
      "\"nodes\":9,\"consumer_pairs\":4,\"requests\":10,\"seed\":7}}");
  EXPECT_EQ(request.op, Op::kSubmitRun);
  EXPECT_EQ(request.id, "r1");
  EXPECT_TRUE(request.watch);
  EXPECT_EQ(request.spec.protocol, "balancing");
  EXPECT_EQ(request.spec.nodes, 9u);
  EXPECT_EQ(request.spec.seed, 7u);
}

TEST(ServeProtocol, ParseRequestReadsSubmitSweep) {
  const Request request = parse_request(
      "{\"op\":\"submit_sweep\",\"seeds_per_cell\":3,\"grid\":["
      "{\"protocol\":\"balancing\",\"topology\":\"cycle\",\"nodes\":9,"
      "\"consumer_pairs\":4,\"requests\":10,\"seed\":1},"
      "{\"protocol\":\"balancing\",\"topology\":\"cycle\",\"nodes\":16,"
      "\"consumer_pairs\":4,\"requests\":10,\"seed\":1}]}");
  EXPECT_EQ(request.op, Op::kSubmitSweep);
  EXPECT_EQ(request.seeds_per_cell, 3u);
  ASSERT_EQ(request.grid.size(), 2u);
  EXPECT_EQ(request.grid[1].nodes, 16u);
}

TEST(ServeProtocol, ResponseAndEventBuilders) {
  EXPECT_EQ(ok_response("x").dump(), "{\"ok\":true,\"id\":\"x\"}");
  EXPECT_EQ(ok_response("").dump(), "{\"ok\":true}");
  const Value error = error_response("y", "queue_full", "full");
  EXPECT_FALSE(error.at("ok").as_bool());
  EXPECT_EQ(error.at("code").as_string(), "queue_full");
  const Value event = event_frame("job_started", 4);
  EXPECT_EQ(event.at("event").as_string(), "job_started");
  EXPECT_EQ(event.at("job").as_number(), 4.0);
  const std::string line = encode_frame(event);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // one line, one frame
}

TEST(ServeProtocol, TerminalStateAndEventHelpers) {
  EXPECT_FALSE(job_state_is_terminal(JobState::kQueued));
  EXPECT_FALSE(job_state_is_terminal(JobState::kRunning));
  EXPECT_TRUE(job_state_is_terminal(JobState::kDone));
  EXPECT_TRUE(job_state_is_terminal(JobState::kFailed));
  EXPECT_TRUE(job_state_is_terminal(JobState::kCancelled));
  EXPECT_TRUE(is_terminal_event("job_done"));
  EXPECT_TRUE(is_terminal_event("job_failed"));
  EXPECT_TRUE(is_terminal_event("job_cancelled"));
  EXPECT_FALSE(is_terminal_event("job_started"));
  EXPECT_FALSE(is_terminal_event("task_done"));
}

TEST(ServeProtocol, RegistryToJsonListsProtocolsAndKnobs) {
  const Value listing = scenario::registry_to_json(scenario::registry());
  const Value& protocols = listing.at("protocols");
  ASSERT_TRUE(protocols.is_array());
  ASSERT_GT(protocols.size(), 0u);
  bool saw_balancing = false;
  for (const Value& protocol : protocols.items()) {
    EXPECT_TRUE(protocol.at("name").is_string());
    EXPECT_TRUE(protocol.at("description").is_string());
    ASSERT_TRUE(protocol.at("knobs").is_array());
    if (protocol.at("name").as_string() != "balancing") continue;
    saw_balancing = true;
    bool saw_distillation = false;
    for (const Value& knob : protocol.at("knobs").items()) {
      if (knob.at("name").as_string() != "distillation") continue;
      saw_distillation = true;
      EXPECT_EQ(knob.at("type").as_string(), "double");
      EXPECT_EQ(knob.at("default").as_number(), 1.0);
      EXPECT_TRUE(knob.at("help").is_string());
    }
    EXPECT_TRUE(saw_distillation);
  }
  EXPECT_TRUE(saw_balancing);
}

}  // namespace
}  // namespace poq::serve
