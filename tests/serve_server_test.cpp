// End-to-end tests of the serve daemon over a real AF_UNIX socket: job
// round trips, admission control, cancellation, and the determinism
// contract (server results bit-identical to batch runs, cancelled cells
// excluded whole). These suites also run under the TSan CI leg.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "scenario/metrics.hpp"
#include "scenario/protocol.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/error.hpp"

namespace poq::serve {
namespace {

using util::json::Value;

std::string unique_socket_path() {
  static int counter = 0;
  return "/tmp/poqsim-serve-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(++counter) + ".sock";
}

scenario::ScenarioSpec quick_spec(std::size_t nodes, std::uint64_t seed) {
  scenario::ScenarioSpec spec;
  spec.protocol = "balancing";
  spec.topology = "cycle";
  spec.nodes = nodes;
  spec.consumer_pairs = 4;
  spec.requests = 12;
  spec.seed = seed;
  return spec;
}

/// A job that never finishes on its own: zero generation means no request
/// is ever satisfiable, and the round budget is effectively infinite, so
/// only cancellation (one cheap round away) ends it.
scenario::ScenarioSpec blocker_spec() {
  scenario::ScenarioSpec spec = quick_spec(9, 1);
  spec.knobs["generation-rate"] = 0.0;
  spec.knobs["max-rounds"] = std::int64_t{2000000000};
  return spec;
}

Value submit_run_request(const scenario::ScenarioSpec& spec, bool watch) {
  Value request = Value::object();
  request.set("op", "submit_run");
  request.set("spec", spec.to_json());
  request.set("watch", watch);
  return request;
}

Value submit_sweep_request(const std::vector<scenario::ScenarioSpec>& grid,
                           std::uint32_t seeds, bool watch) {
  Value request = Value::object();
  request.set("op", "submit_sweep");
  Value cells = Value::array();
  for (const scenario::ScenarioSpec& spec : grid) cells.push_back(spec.to_json());
  request.set("grid", std::move(cells));
  request.set("seeds_per_cell", static_cast<std::uint64_t>(seeds));
  request.set("watch", watch);
  return request;
}

Value op_request(const std::string& op) {
  Value request = Value::object();
  request.set("op", op);
  return request;
}

Value job_request(const std::string& op, std::uint64_t job) {
  Value request = op_request(op);
  request.set("job", job);
  return request;
}

/// The determinism-relevant members of a cell aggregate: everything except
/// the wall-clock "timings" and "wall_ms".
void expect_cells_equal(const Value& actual, const Value& expected) {
  for (const char* key : {"spec", "seeds", "labels", "metrics"}) {
    EXPECT_EQ(actual.at(key), expected.at(key)) << "member '" << key << "'";
  }
}

struct ServerFixture {
  explicit ServerFixture(ServerOptions options) : server(std::move(options)) {
    server.start();
  }
  Server server;
};

ServerOptions options_with(const std::string& socket, unsigned workers,
                           std::size_t depth) {
  ServerOptions options;
  options.socket_path = socket;
  options.workers = workers;
  options.queue_depth = depth;
  return options;
}

TEST(ServeServer, RunJobMatchesDirectRegistryRun) {
  const std::string socket = unique_socket_path();
  ServerFixture fixture(options_with(socket, 1, 4));
  Client client(socket);
  client.connect();

  const scenario::ScenarioSpec spec = quick_spec(16, 21);
  const Value reply = client.request(submit_run_request(spec, /*watch=*/true));
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  const Value terminal = client.read_events();
  ASSERT_EQ(terminal.at("event").as_string(), "job_done") << terminal.dump();

  const scenario::RunMetrics served = scenario::RunMetrics::from_json(
      terminal.at("result").at("metrics"));
  const scenario::RunMetrics direct =
      scenario::registry().run(spec.protocol, spec);
  // Bit-identical modulo wall-clock timings.
  EXPECT_EQ(served.to_json(/*include_timings=*/false).dump(),
            direct.to_json(/*include_timings=*/false).dump());
}

TEST(ServeServer, SweepJobMatchesBatchSweepRunner) {
  const std::string socket = unique_socket_path();
  ServerFixture fixture(options_with(socket, 1, 4));
  Client client(socket);
  client.connect();

  const std::vector<scenario::ScenarioSpec> grid{quick_spec(9, 5),
                                                 quick_spec(16, 5)};
  const Value reply =
      client.request(submit_sweep_request(grid, /*seeds=*/2, /*watch=*/true));
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  std::size_t task_events = 0;
  const Value terminal = client.read_events([&](const Value& event) {
    if (event.at("event").as_string() == "task_done") ++task_events;
  });
  ASSERT_EQ(terminal.at("event").as_string(), "job_done") << terminal.dump();
  EXPECT_EQ(task_events, grid.size() * 2);  // every (cell, rep) reported

  scenario::SweepOptions sweep_options;
  sweep_options.seeds_per_cell = 2;
  sweep_options.threads = 1;
  const std::vector<scenario::CellAggregate> batch =
      scenario::SweepRunner(sweep_options).run(grid);
  const Value& cells = terminal.at("result").at("cells");
  ASSERT_EQ(cells.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_cells_equal(cells.at(i), batch[i].to_json());
  }
  EXPECT_EQ(terminal.at("result").at("cancelled").as_bool(), false);
}

TEST(ServeServer, QueueFullSubmitsAreRejected) {
  const std::string socket = unique_socket_path();
  ServerFixture fixture(options_with(socket, 1, 1));
  Client client(socket);
  client.connect();

  // Occupy the single worker...
  const Value running =
      client.request(submit_run_request(blocker_spec(), false));
  ASSERT_TRUE(running.at("ok").as_bool()) << running.dump();
  const auto blocker_id =
      static_cast<std::uint64_t>(running.at("job").as_number());
  for (int spin = 0; spin < 500; ++spin) {
    const Value status = client.request(job_request("status", blocker_id));
    if (status.at("status").at("state").as_string() == "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // ...fill the queue (depth 1)...
  const Value queued = client.request(submit_run_request(blocker_spec(), false));
  ASSERT_TRUE(queued.at("ok").as_bool()) << queued.dump();
  // ...and watch admission control reject the next submit.
  const Value rejected =
      client.request(submit_run_request(quick_spec(9, 1), false));
  ASSERT_FALSE(rejected.at("ok").as_bool()) << rejected.dump();
  EXPECT_EQ(rejected.at("code").as_string(), "queue_full");

  // Cancelling the blocker frees the worker; the queued job then runs and
  // is itself cancellable — the queue drains rather than wedging.
  const Value cancel = client.request(job_request("cancel", blocker_id));
  ASSERT_TRUE(cancel.at("ok").as_bool()) << cancel.dump();
}

TEST(ServeServer, CancelMidSweepKeepsCompletedCellsBitIdentical) {
  const std::string socket = unique_socket_path();
  ServerOptions options = options_with(socket, 1, 4);
  options.sweep_threads = 1;  // tasks complete in (cell, rep) order
  ServerFixture fixture(options);
  Client watcher(socket);
  watcher.connect();

  // Two quick cells, then a cell that only cancellation can end.
  const std::vector<scenario::ScenarioSpec> grid{
      quick_spec(9, 31), quick_spec(16, 31), blocker_spec()};
  const Value reply =
      watcher.request(submit_sweep_request(grid, /*seeds=*/1, /*watch=*/true));
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  const auto job = static_cast<std::uint64_t>(reply.at("job").as_number());

  Client controller(socket);
  controller.connect();
  bool cancel_sent = false;
  const Value terminal = watcher.read_events([&](const Value& event) {
    if (!cancel_sent && event.at("event").as_string() == "task_done") {
      // First completed task: ask for cancellation while the sweep runs.
      const Value cancelled = controller.request(job_request("cancel", job));
      ASSERT_TRUE(cancelled.at("ok").as_bool()) << cancelled.dump();
      cancel_sent = true;
    }
  });
  ASSERT_TRUE(cancel_sent);
  ASSERT_EQ(terminal.at("event").as_string(), "job_cancelled")
      << terminal.dump();

  const Value& result = terminal.at("result");
  EXPECT_TRUE(result.at("cancelled").as_bool());
  const Value& cells = result.at("cells");
  const Value& indices = result.at("cell_indices");
  ASSERT_EQ(cells.size(), indices.size());
  ASSERT_GE(cells.size(), 1u);  // the observed task_done cell must be there
  ASSERT_GT(result.at("cancelled_cells").as_number(), 0.0);
  // Every completed cell is bit-identical to a batch run of that spec;
  // cancelled cells are excluded whole, never partially aggregated.
  scenario::SweepOptions sweep_options;
  sweep_options.seeds_per_cell = 1;
  sweep_options.threads = 1;
  const scenario::SweepRunner batch(sweep_options);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto index = static_cast<std::size_t>(indices.at(i).as_number());
    ASSERT_LT(index, grid.size());
    ASSERT_NE(index, 2u) << "the blocker cell can never complete";
    const std::vector<scenario::CellAggregate> expected =
        batch.run({grid[index]});
    ASSERT_EQ(expected.size(), 1u);
    expect_cells_equal(cells.at(i), expected[0].to_json());
  }
}

TEST(ServeServer, MalformedFramesGetBadRequestAndKeepTheConnection) {
  const std::string socket = unique_socket_path();
  ServerFixture fixture(options_with(socket, 1, 4));
  Client client(socket);
  client.connect();

  const Value garbage = client.request(Value("not an object"));
  ASSERT_FALSE(garbage.at("ok").as_bool());
  EXPECT_EQ(garbage.at("code").as_string(), "bad_request");

  Value truncated_spec = op_request("submit_run");  // missing "spec"
  const Value missing = client.request(truncated_spec);
  ASSERT_FALSE(missing.at("ok").as_bool());
  EXPECT_EQ(missing.at("code").as_string(), "bad_request");

  // The connection survives malformed frames: a valid request still works.
  const Value status = client.request(op_request("status"));
  EXPECT_TRUE(status.at("ok").as_bool()) << status.dump();
}

TEST(ServeServer, OversizedFrameClosesTheConnection) {
  const std::string socket = unique_socket_path();
  ServerFixture fixture(options_with(socket, 1, 4));
  Client client(socket);
  client.connect();

  // > kMaxFrameBytes without a newline: framing is unrecoverable, so the
  // server answers bad_request and drops the connection.
  Value huge = op_request("status");
  huge.set("id", std::string(kMaxFrameBytes + 1, 'x'));
  const Value reply = client.request(huge);
  ASSERT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("code").as_string(), "bad_request");
  EXPECT_THROW((void)client.read_frame(), PreconditionError);  // closed
}

TEST(ServeServer, UnknownJobAndBadSpecErrors) {
  const std::string socket = unique_socket_path();
  ServerFixture fixture(options_with(socket, 1, 4));
  Client client(socket);
  client.connect();

  const Value watch = client.request(job_request("watch", 999));
  ASSERT_FALSE(watch.at("ok").as_bool());
  EXPECT_EQ(watch.at("code").as_string(), "unknown_job");
  const Value cancel = client.request(job_request("cancel", 999));
  ASSERT_FALSE(cancel.at("ok").as_bool());
  EXPECT_EQ(cancel.at("code").as_string(), "unknown_job");

  // Registry validation runs at the submit boundary: an unknown knob
  // fails synchronously with bad_request, not inside a worker.
  scenario::ScenarioSpec bad = quick_spec(9, 1);
  bad.knobs["no-such-knob"] = 1.0;
  const Value rejected = client.request(submit_run_request(bad, false));
  ASSERT_FALSE(rejected.at("ok").as_bool());
  EXPECT_EQ(rejected.at("code").as_string(), "bad_request");
}

TEST(ServeServer, ConcurrentClientsGetIsolatedIdenticalResults) {
  const std::string socket = unique_socket_path();
  ServerFixture fixture(options_with(socket, 2, 16));

  constexpr int kClients = 4;
  std::vector<std::string> dumps(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      Client client(socket);
      client.connect();
      // Same spec from every client: the results must agree bit for bit.
      const Value reply =
          client.request(submit_run_request(quick_spec(16, 77), true));
      ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
      const Value terminal = client.read_events();
      ASSERT_EQ(terminal.at("event").as_string(), "job_done");
      dumps[i] = scenario::RunMetrics::from_json(
                     terminal.at("result").at("metrics"))
                     .to_json(/*include_timings=*/false)
                     .dump();
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (int i = 1; i < kClients; ++i) EXPECT_EQ(dumps[i], dumps[0]);
}

TEST(ServeServer, ResetCancelsQueuedJobsAndClearsFinishedOnes) {
  const std::string socket = unique_socket_path();
  ServerFixture fixture(options_with(socket, 1, 8));
  Client client(socket);
  client.connect();

  const Value done = client.request(submit_run_request(quick_spec(9, 3), true));
  ASSERT_TRUE(done.at("ok").as_bool());
  (void)client.read_events();  // wait for it to finish

  const Value blocker = client.request(submit_run_request(blocker_spec(), false));
  ASSERT_TRUE(blocker.at("ok").as_bool());
  const Value queued = client.request(submit_run_request(blocker_spec(), false));
  ASSERT_TRUE(queued.at("ok").as_bool());

  const Value reset = client.request(op_request("reset"));
  ASSERT_TRUE(reset.at("ok").as_bool()) << reset.dump();
  EXPECT_GE(reset.at("cancelled").as_number(), 1.0);
  EXPECT_GE(reset.at("cleared").as_number(), 1.0);

  // The running blocker winds down to cancelled; nothing is left queued.
  const auto blocker_id =
      static_cast<std::uint64_t>(blocker.at("job").as_number());
  Value status = client.request(job_request("status", blocker_id));
  for (int spin = 0; spin < 500; ++spin) {
    if (status.at("ok").as_bool() &&
        status.at("status").at("state").as_string() == "cancelled") {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    status = client.request(job_request("status", blocker_id));
  }
  EXPECT_EQ(status.at("status").at("state").as_string(), "cancelled")
      << status.dump();
}

TEST(ServeServer, ShutdownOpUnblocksWaitAndRefusesNewSubmits) {
  const std::string socket = unique_socket_path();
  ServerFixture fixture(options_with(socket, 1, 4));
  Client client(socket);
  client.connect();

  const Value reply = client.request(op_request("shutdown"));
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  fixture.server.wait();  // returns now that shutdown was requested
  const Value rejected =
      client.request(submit_run_request(quick_spec(9, 1), false));
  ASSERT_FALSE(rejected.at("ok").as_bool());
  EXPECT_EQ(rejected.at("code").as_string(), "shutting_down");
  fixture.server.stop();
  // The socket file is gone after stop().
  EXPECT_NE(::access(socket.c_str(), F_OK), 0);
}

TEST(ServeServer, JobTimeoutFailsWithTimeoutError) {
  // A job past its wall-clock budget is cancelled by the reaper and
  // fails with error "timeout" — not job_cancelled, which is reserved
  // for client cancels.
  const std::string socket = unique_socket_path();
  ServerOptions options = options_with(socket, 1, 4);
  options.job_timeout = 0.3;
  ServerFixture fixture(options);
  Client client(socket);
  client.connect();

  const Value reply =
      client.request(submit_run_request(blocker_spec(), /*watch=*/true));
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  const Value terminal = client.read_events();
  EXPECT_EQ(terminal.at("event").as_string(), "job_failed") << terminal.dump();
  ASSERT_TRUE(terminal.contains("error")) << terminal.dump();
  EXPECT_EQ(terminal.at("error").as_string(), "timeout");
}

TEST(ServeServer, QuickJobsFinishInsideGenerousTimeout) {
  // The deadline must not perturb jobs that finish in time: same result,
  // same terminal event as an undeadlined server.
  const std::string socket = unique_socket_path();
  ServerOptions options = options_with(socket, 1, 4);
  options.job_timeout = 60.0;
  ServerFixture fixture(options);
  Client client(socket);
  client.connect();

  const scenario::ScenarioSpec spec = quick_spec(16, 21);
  const Value reply = client.request(submit_run_request(spec, /*watch=*/true));
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  const Value terminal = client.read_events();
  ASSERT_EQ(terminal.at("event").as_string(), "job_done") << terminal.dump();
  const scenario::RunMetrics served = scenario::RunMetrics::from_json(
      terminal.at("result").at("metrics"));
  const scenario::RunMetrics direct =
      scenario::registry().run(spec.protocol, spec);
  EXPECT_EQ(served.to_json(/*include_timings=*/false).dump(),
            direct.to_json(/*include_timings=*/false).dump());
}

TEST(ServeServer, ClientCancelUnderDeadlineStaysJobCancelled) {
  // Cancel before the (generous) deadline: the unwind must report a clean
  // job_cancelled, proving the timed_out mark really distinguishes the
  // two paths.
  const std::string socket = unique_socket_path();
  ServerOptions options = options_with(socket, 1, 4);
  options.job_timeout = 60.0;
  ServerFixture fixture(options);
  Client client(socket);
  client.connect();

  const Value reply =
      client.request(submit_run_request(blocker_spec(), /*watch=*/false));
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  const std::uint64_t job =
      static_cast<std::uint64_t>(reply.at("job").as_number());

  Client canceller(socket);
  canceller.connect();
  // Give the worker a moment to dequeue, then cancel and watch to the end.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const Value cancel_reply = canceller.request(job_request("cancel", job));
  ASSERT_TRUE(cancel_reply.at("ok").as_bool()) << cancel_reply.dump();
  const Value watch_reply = client.request(job_request("watch", job));
  ASSERT_TRUE(watch_reply.at("ok").as_bool()) << watch_reply.dump();
  const Value terminal = client.read_events();
  EXPECT_EQ(terminal.at("event").as_string(), "job_cancelled")
      << terminal.dump();
}

TEST(ServeServer, StartRejectsOverlongSocketPaths) {
  ServerOptions options;
  options.socket_path = "/tmp/" + std::string(200, 'x') + ".sock";
  Server server(options);
  EXPECT_THROW(server.start(), PreconditionError);
}

}  // namespace
}  // namespace poq::serve
