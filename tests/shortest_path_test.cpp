#include "graph/shortest_path.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"
#include "util/rng.hpp"

namespace poq::graph {
namespace {

TEST(ShortestPath, BfsDistancesOnPathGraph) {
  const Graph graph = make_path(6);
  const auto dist = bfs_distances(graph, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
}

TEST(ShortestPath, UnreachableMarked) {
  Graph graph(4);
  graph.add_edge(0, 1);
  const auto dist = bfs_distances(graph, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(ShortestPath, PathEndpointsAndLength) {
  const Graph graph = make_cycle(8);
  const auto path = shortest_path(graph, 1, 5);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->front(), 1u);
  EXPECT_EQ(path->back(), 5u);
  EXPECT_EQ(path->size(), 5u);  // 4 hops
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    EXPECT_TRUE(graph.has_edge((*path)[i], (*path)[i + 1]));
  }
}

TEST(ShortestPath, TrivialSelfPath) {
  const Graph graph = make_cycle(4);
  const auto path = shortest_path(graph, 2, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

TEST(ShortestPath, NoPathReturnsNullopt) {
  Graph graph(4);
  graph.add_edge(0, 1);
  EXPECT_FALSE(shortest_path(graph, 0, 3).has_value());
}

TEST(ShortestPath, DeterministicTieBreak) {
  // Two equal-length routes 0-1-3 and 0-2-3; BFS visits ascending
  // neighbour ids, so 0-1-3 must win every time.
  Graph graph(4);
  graph.add_edge(0, 1);
  graph.add_edge(0, 2);
  graph.add_edge(1, 3);
  graph.add_edge(2, 3);
  const auto path = shortest_path(graph, 0, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ((*path)[1], 1u);
}

TEST(ShortestPath, AllPairsMatchesSingleSource) {
  util::Rng rng(3);
  const Graph graph = make_random_connected_grid(16, rng);
  const auto all = all_pairs_distances(graph);
  for (NodeId u = 0; u < 16; ++u) {
    const auto single = bfs_distances(graph, u);
    EXPECT_EQ(all[u], single);
  }
}

TEST(ShortestPath, AllPairsSymmetric) {
  util::Rng rng(5);
  const Graph graph = make_random_connected_grid(25, rng);
  const auto all = all_pairs_distances(graph);
  for (NodeId u = 0; u < 25; ++u) {
    for (NodeId v = 0; v < 25; ++v) EXPECT_EQ(all[u][v], all[v][u]);
  }
}

TEST(ShortestPath, TriangleInequalityHolds) {
  util::Rng rng(7);
  const Graph graph = make_random_connected_grid(25, rng);
  const auto all = all_pairs_distances(graph);
  for (NodeId u = 0; u < 25; ++u) {
    for (NodeId v = 0; v < 25; ++v) {
      for (NodeId w = 0; w < 25; ++w) {
        EXPECT_LE(all[u][w], all[u][v] + all[v][w]);
      }
    }
  }
}

TEST(Dijkstra, MatchesBfsOnUnitWeights) {
  const Graph graph = make_cycle(9);
  const std::vector<double> unit(graph.edge_count(), 1.0);
  const auto weighted = dijkstra(graph, 0, unit);
  const auto hops = bfs_distances(graph, 0);
  for (NodeId v = 0; v < 9; ++v) {
    EXPECT_DOUBLE_EQ(weighted[v], static_cast<double>(hops[v]));
  }
}

TEST(Dijkstra, PrefersCheapDetour) {
  // 0-1 expensive direct edge; 0-2-1 cheap detour.
  Graph graph(3);
  graph.add_edge(0, 1);
  graph.add_edge(0, 2);
  graph.add_edge(1, 2);
  std::vector<double> cost(graph.edge_count());
  cost[*graph.edge_index(0, 1)] = 10.0;
  cost[*graph.edge_index(0, 2)] = 1.0;
  cost[*graph.edge_index(1, 2)] = 1.0;
  const auto dist = dijkstra(graph, 0, cost);
  EXPECT_DOUBLE_EQ(dist[1], 2.0);
  const auto path = dijkstra_path(graph, 0, 1, cost);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 3u);
  EXPECT_EQ((*path)[1], 2u);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  Graph graph(3);
  graph.add_edge(0, 1);
  const std::vector<double> cost{1.0};
  const auto dist = dijkstra(graph, 0, cost);
  EXPECT_EQ(dist[2], kInfCost);
  EXPECT_FALSE(dijkstra_path(graph, 0, 2, cost).has_value());
}

}  // namespace
}  // namespace poq::graph
