// sim::FaultPlan: the deterministic availability mask under scripted and
// stochastic churn. The contract the drivers lean on: advance() is a pure
// function of (seed, round, script), crashed lists come back sorted, edge
// availability is link-up AND both endpoints up, and an all-defaults
// config is exactly "no faults".
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/graph.hpp"
#include "sim/fault_plan.hpp"
#include "util/error.hpp"

namespace poq::sim {
namespace {

using core::NodeId;

/// 5-cycle: edges (0,1) (1,2) (2,3) (3,4) (4,0).
graph::Graph cycle5() {
  graph::Graph graph(5);
  for (NodeId x = 0; x < 5; ++x) {
    graph.add_edge(x, static_cast<NodeId>((x + 1) % 5));
  }
  return graph;
}

TEST(FaultPlan, DefaultConfigIsDisabled) {
  const FaultConfig config;
  EXPECT_FALSE(config.enabled());
  FaultConfig stochastic;
  stochastic.node_mtbf = 100.0;
  EXPECT_TRUE(stochastic.enabled());
  FaultConfig scripted;
  scripted.script.push_back({5, FaultEventKind::kNodeDown, 1, 0, 0, 1.0});
  EXPECT_TRUE(scripted.enabled());
}

TEST(FaultPlan, ScriptedNodeCrashAndRecovery) {
  const graph::Graph graph = cycle5();
  FaultConfig config;
  config.script.push_back({2, FaultEventKind::kNodeDown, 3, 0, 0, 1.0});
  config.script.push_back({5, FaultEventKind::kNodeUp, 3, 0, 0, 1.0});
  FaultPlan plan(graph, config, 7);

  EXPECT_TRUE(plan.advance(1).empty());
  EXPECT_TRUE(plan.node_up(3));
  EXPECT_FALSE(plan.degraded());

  const std::vector<NodeId>& crashed = plan.advance(2);
  ASSERT_EQ(crashed.size(), 1u);
  EXPECT_EQ(crashed[0], 3u);
  EXPECT_FALSE(plan.node_up(3));
  EXPECT_TRUE(plan.degraded());
  // Both incident edges (2,3) and (3,4) lose availability; the link
  // itself is still up.
  EXPECT_FALSE(plan.edge_up(2));
  EXPECT_FALSE(plan.edge_up(3));
  EXPECT_TRUE(plan.edge_up(0));
  EXPECT_TRUE(plan.any_edge_down());

  EXPECT_TRUE(plan.advance(3).empty());  // stays down, no new crash
  EXPECT_TRUE(plan.advance(4).empty());
  EXPECT_TRUE(plan.advance(5).empty());  // recovery is not a crash
  EXPECT_TRUE(plan.node_up(3));
  EXPECT_FALSE(plan.any_edge_down());
  EXPECT_EQ(plan.stats().node_crashes, 1u);
  EXPECT_EQ(plan.stats().degraded_rounds, 3u);
}

TEST(FaultPlan, ScriptedLinkDownMasksOnlyThatEdge) {
  const graph::Graph graph = cycle5();
  FaultConfig config;
  config.script.push_back({1, FaultEventKind::kLinkDown, 0, 4, 0, 1.0});
  FaultPlan plan(graph, config, 7);
  EXPECT_TRUE(plan.advance(1).empty());  // link faults purge nothing
  EXPECT_FALSE(plan.edge_up(4));         // edge (4,0), scripted either order
  for (std::size_t e = 0; e < 4; ++e) EXPECT_TRUE(plan.edge_up(e));
  EXPECT_TRUE(plan.node_up(4));
  EXPECT_TRUE(plan.node_up(0));
  EXPECT_EQ(plan.stats().link_downs, 1u);
}

TEST(FaultPlan, ScriptedRateFactorPersists) {
  const graph::Graph graph = cycle5();
  FaultConfig config;
  config.script.push_back({3, FaultEventKind::kRateFactor, 0, 0, 0, 0.25});
  config.script.push_back({6, FaultEventKind::kRateFactor, 0, 0, 0, 1.0});
  FaultPlan plan(graph, config, 7);
  plan.advance(1);
  EXPECT_DOUBLE_EQ(plan.rate_factor(), 1.0);
  plan.advance(3);
  EXPECT_DOUBLE_EQ(plan.rate_factor(), 0.25);
  plan.advance(4);  // persists until the restoring event
  EXPECT_DOUBLE_EQ(plan.rate_factor(), 0.25);
  EXPECT_TRUE(plan.degraded());
  plan.advance(6);
  EXPECT_DOUBLE_EQ(plan.rate_factor(), 1.0);
  EXPECT_FALSE(plan.degraded());
}

TEST(FaultPlan, StochasticChurnIsSeedDeterministic) {
  const graph::Graph graph = cycle5();
  FaultConfig config;
  config.node_mtbf = 8.0;
  config.node_mttr = 3.0;
  config.link_mtbf = 6.0;
  config.link_mttr = 2.0;
  config.rate_degradation = 0.5;

  const auto trajectory = [&](std::uint64_t seed) {
    FaultPlan plan(graph, config, seed);
    std::vector<std::uint64_t> out;
    for (std::uint64_t round = 1; round <= 200; ++round) {
      const std::vector<NodeId>& crashed = plan.advance(round);
      std::uint64_t mask = crashed.size();
      for (NodeId x = 0; x < 5; ++x) mask = mask * 2 + (plan.node_up(x) ? 1 : 0);
      for (std::size_t e = 0; e < 5; ++e) mask = mask * 2 + (plan.edge_up(e) ? 1 : 0);
      out.push_back(mask);
    }
    return out;
  };
  EXPECT_EQ(trajectory(11), trajectory(11));
  EXPECT_NE(trajectory(11), trajectory(12)) << "seed does not reach the streams";

  FaultPlan plan(graph, config, 11);
  for (std::uint64_t round = 1; round <= 200; ++round) {
    const std::vector<NodeId>& crashed = plan.advance(round);
    EXPECT_TRUE(std::is_sorted(crashed.begin(), crashed.end()));
    EXPECT_GT(plan.rate_factor(), 0.5 - 1e-12);
    EXPECT_LE(plan.rate_factor(), 1.0);
  }
  EXPECT_GT(plan.stats().node_crashes, 0u);
  EXPECT_GT(plan.stats().link_downs, 0u);
  EXPECT_EQ(plan.stats().rounds, 200u);
  EXPECT_GT(plan.stats().availability(), 0.0);
  EXPECT_LT(plan.stats().availability(), 1.0);
}

TEST(FaultPlan, ValidationRejectsBadScriptsAndParameters) {
  const graph::Graph graph = cycle5();
  {
    FaultConfig config;
    config.script.push_back({1, FaultEventKind::kNodeDown, 9, 0, 0, 1.0});
    EXPECT_THROW(FaultPlan(graph, config, 1), PreconditionError);
  }
  {
    FaultConfig config;  // (0,2) is a chord the cycle does not have
    config.script.push_back({1, FaultEventKind::kLinkDown, 0, 0, 2, 1.0});
    EXPECT_THROW(FaultPlan(graph, config, 1), PreconditionError);
  }
  {
    FaultConfig config;
    config.script.push_back({1, FaultEventKind::kRateFactor, 0, 0, 0, 1.5});
    EXPECT_THROW(FaultPlan(graph, config, 1), PreconditionError);
  }
  {
    FaultConfig config;
    config.node_mtbf = 10.0;
    config.node_mttr = 0.5;  // would recover faster than one round
    EXPECT_THROW(FaultPlan(graph, config, 1), PreconditionError);
  }
  {
    FaultConfig config;
    config.rate_degradation = 1.0;  // could zero the rate forever
    EXPECT_THROW(FaultPlan(graph, config, 1), PreconditionError);
  }
}

TEST(FaultPlan, AvailabilityTracksDowntimeExactly) {
  // One node of five down for 2 of 4 rounds, links untouched: per-round
  // availability is 9/10 while down, 1 otherwise.
  const graph::Graph graph = cycle5();
  FaultConfig config;
  config.script.push_back({2, FaultEventKind::kNodeDown, 0, 0, 0, 1.0});
  config.script.push_back({4, FaultEventKind::kNodeUp, 0, 0, 0, 1.0});
  FaultPlan plan(graph, config, 3);
  for (std::uint64_t round = 1; round <= 4; ++round) plan.advance(round);
  EXPECT_DOUBLE_EQ(plan.stats().availability(), (1.0 + 0.9 + 0.9 + 1.0) / 4.0);
  EXPECT_EQ(plan.stats().degraded_rounds, 2u);
}

}  // namespace
}  // namespace poq::sim
